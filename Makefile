# VERRO build/test entry points. Everything is stdlib-only Go; no tools
# beyond the go toolchain are required.

GO ?= go

## LINTCACHE: where verrolint's incremental fact cache lives. CI persists
## this directory across runs (keyed on toolchain + analyzer sources), so a
## PR that doesn't touch a package's dependency cone replays its facts
## instead of re-type-checking it.
LINTCACHE ?= .lint-cache

.PHONY: check nightly vet build lint lint-flow lint-absint lint-perf lint-life bench-lint fmt-check test test-stream test-server test-leak race race-par fuzz fuzz-short bench bench-json bench-hotpath bench-compare clean

## check: the PR CI gate — vet, build, verrolint (classic + flow, baselined),
## the interval analyzers (-absint), the performance analyzers (-perf), the
## lifecycle analyzers (-life), gofmt, the streaming equivalence and
## memory-ceiling suite, the verrod job-service suite, the targeted
## worker-pool race gate, and a short fuzz pass over both the .vvf codec and
## the stream-window planner. Fails on any new lint diagnostic or
## unformatted file. The full -race suite, the job-churn leak harness, and
## the long fuzz/benchmark gates run in `make nightly` so the PR path stays
## fast.
check: vet build lint lint-absint lint-perf lint-life fmt-check test-stream test-server race-par fuzz-short

## nightly: the slow gate (see .github/workflows/nightly.yml) — the whole
## PR gate plus the full race suite (which runs the job-churn leak harness
## under the race detector), a long fuzz pass on both fuzz targets, and the
## benchmark regression comparison against the committed BENCH_*.json
## records.
nightly: check race
	$(MAKE) fuzz FUZZTIME=150s
	$(GO) test -run='^$$' -fuzz=FuzzStreamWindow -fuzztime=150s .
	$(MAKE) bench-compare

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

## lint: the in-repo static-analysis suite (cmd/verrolint) — the classic
## determinism/privacy-math/panic-freedom analyzers (DESIGN.md §2d) plus the
## verroflow taint analyzers (§2e). Findings recorded in lint-baseline.json
## are absorbed; only new diagnostics fail.
lint:
	$(GO) run ./cmd/verrolint -cache $(LINTCACHE) -baseline lint-baseline.json ./...

## lint-flow: only the taint-tracking dataflow analyzers (privleak,
## epsconsist, epshttp, capturerace), without the classic suite or the
## baseline.
lint-flow:
	$(GO) run ./cmd/verrolint -classic=false -cache $(LINTCACHE) ./...

## lint-absint: only the interval abstract-interpretation analyzers
## (probrange, divzero, idxbound — DESIGN.md §2f), sharing the same
## baseline file; analyzer names are unique across all three suites, so
## the multiset diff cannot collide across passes.
lint-absint:
	$(GO) run ./cmd/verrolint -classic=false -flow=false -absint -cache $(LINTCACHE) -baseline lint-baseline.json ./...

## lint-perf: only the hot-path performance analyzers (hotalloc, hotescape,
## bce — DESIGN.md §2j). No baseline: the tree must sweep clean, with
## deliberate exceptions carrying justified //lint:allow directives (which
## the stale-allow pass keeps honest).
lint-perf:
	$(GO) run ./cmd/verrolint -classic=false -flow=false -perf -cache $(LINTCACHE) ./...

## lint-life: only the lifecycle analyzers (goleak, mustclose, lockorder,
## ctxflow — DESIGN.md §2k), scoped to the service-arc packages. No
## baseline: the tree must sweep clean, with deliberate exceptions carrying
## justified //lint:allow directives (kept honest by the stale-allow pass).
lint-life:
	$(GO) run ./cmd/verrolint -classic=false -flow=false -life -cache $(LINTCACHE) ./...

## bench-lint: regenerate BENCH_lint.json — wall time of a cold incremental
## run (cache populated from scratch) vs. a warm replay of the whole repo
## with every suite enabled.
bench-lint:
	rm -rf $(LINTCACHE)
	$(GO) run ./cmd/verrolint -absint -cache $(LINTCACHE) -bench BENCH_lint.json ./...

## fmt-check: fail if any tracked Go file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

## test-stream: the bounded-memory streaming gate — batch/stream
## bit-identity over every preset × window × worker combination, the
## disk-to-disk file path, the end-of-stream edge cases, the fuzz seed
## corpus, and the 4×-clip/1.3×-heap memory ceiling (stream_*_test.go plus
## the internal/stream and internal/vid window tests).
test-stream:
	$(GO) test -run 'TestStream|FuzzStreamWindow' .
	$(GO) test ./internal/stream/ ./internal/vid/

## test-server: the verrod job-service gate — store round-trip/atomicity,
## resumable-cursor equivalence, job lifecycle, 429 admission control +
## rate limiting, SSE monotonic window progress, event-log eviction, and
## the kill-and-resume acceptance test asserting the resumed .vvf is
## byte-identical to an uninterrupted run's. -short skips only the
## job-churn leak harness, which has its own target below.
test-server:
	$(GO) test -run 'TestSanitizeStreamFrom' ./internal/core/
	$(GO) test -short ./internal/store/ ./internal/server/

## test-leak: the job-churn leak harness (leak_test.go) — 200+ jobs through
## every lifecycle shape (sequential, slot-saturating concurrent batches,
## SSE subscribers yanked mid-stream, checkpoint resume re-runs), then
## asserts goroutines, file descriptors, event logs, and post-GC heap all
## return to the pre-churn baseline. The runtime complement of
## `make lint-life`; `make nightly` repeats it under -race via the full
## race suite.
test-leak:
	$(GO) test -run TestChurnNoLeaks -count=1 -v ./internal/server/

race:
	$(GO) test -race ./...

## race-par: the targeted race gate — worker-pool equivalence, the scoped
## concurrent-sanitize test, the streaming equivalence matrix (whose
## per-window render fan-out is the newest pool user), and the verrod
## handlers (concurrent jobs + SSE subscribers share the trace-observer
## path) under the race detector. A fast early failure before the full
## race suite.
race-par:
	$(GO) test -race -run 'TestParallelEquivalence|TestConcurrentSanitizeScopedWorkers|TestStreamEquivalence' .
	$(GO) test -race -run 'TestJobLifecycle|TestAdmissionControl|TestEventsMonotonicWindowProgress' ./internal/server/
	$(GO) test -race ./internal/store/ ./internal/stream/ ./internal/lint/incr/

## fuzz: a short .vvf codec fuzz pass; lengthen with FUZZTIME=60s.
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzVVF -fuzztime=$(FUZZTIME) ./internal/vid/

## fuzz-short: the CI fuzz gate — 10s each on the .vvf codec decoder and
## the stream-window planner, the two parser-shaped surfaces.
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzVVF -fuzztime=10s ./internal/vid/
	$(GO) test -run='^$$' -fuzz=FuzzStreamWindow -fuzztime=10s .

## bench: every benchmark once (paper tables/figures + worker-pool paths).
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

## bench-json: regenerate BENCH_parallel.json (worker-pool ns/op at 1 vs 4
## workers, best of 3 runs — the recorder keeps the minimum per name).
bench-json:
	VERRO_BENCH_JSON=BENCH_parallel.json $(GO) test -run='^$$' -bench=BenchmarkPar -benchtime=2x -count=3 .

## bench-hotpath: regenerate the measured side of BENCH_hotpath.json (the
## single-threaded kernel hot paths). Note this rewrites the file in the
## plain recorder schema — the committed baseline_ns_per_op/speedup fields
## document the pre-sweep tree and are historical.
bench-hotpath:
	VERRO_BENCH_JSON=BENCH_hotpath.json $(GO) test -run='^$$' -bench=BenchmarkHot -benchtime=50x .

## bench-compare: the benchmark regression gate — re-measure the worker-pool
## and hot-path benchmarks into a scratch dir and fail if any committed
## reference number regressed by more than 15% (cmd/benchcmp).
BENCHTMP ?= .bench-tmp
bench-compare:
	@mkdir -p $(BENCHTMP)
	VERRO_BENCH_JSON=$(BENCHTMP)/parallel.json $(GO) test -run='^$$' -bench=BenchmarkPar -benchtime=2x -count=3 .
	VERRO_BENCH_JSON=$(BENCHTMP)/hotpath.json $(GO) test -run='^$$' -bench=BenchmarkHot -benchtime=20x -count=3 .
	$(GO) run ./cmd/benchcmp -ref BENCH_parallel.json -new $(BENCHTMP)/parallel.json -tolerance 0.15
	$(GO) run ./cmd/benchcmp -ref BENCH_hotpath.json -new $(BENCHTMP)/hotpath.json -tolerance 0.15

clean:
	rm -rf results $(BENCHTMP)
