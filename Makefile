# VERRO build/test entry points. Everything is stdlib-only Go; no tools
# beyond the go toolchain are required.

GO ?= go

.PHONY: check vet build lint lint-flow lint-absint fmt-check test test-stream test-server race race-par fuzz bench bench-json clean

## check: the CI gate — vet, build, verrolint (classic + flow, baselined),
## the interval analyzers (-absint), gofmt, the streaming equivalence and
## memory-ceiling suite, the verrod job-service suite, the targeted
## worker-pool race gate, the full race suite, and a short fuzz pass.
## Fails on any new lint diagnostic or unformatted file.
check: vet build lint lint-absint fmt-check test-stream test-server race-par race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

## lint: the in-repo static-analysis suite (cmd/verrolint) — the classic
## determinism/privacy-math/panic-freedom analyzers (DESIGN.md §2d) plus the
## verroflow taint analyzers (§2e). Findings recorded in lint-baseline.json
## are absorbed; only new diagnostics fail.
lint:
	$(GO) run ./cmd/verrolint -baseline lint-baseline.json ./...

## lint-flow: only the taint-tracking dataflow analyzers (privleak,
## epsconsist, capturerace), without the classic suite or the baseline.
lint-flow:
	$(GO) run ./cmd/verrolint -classic=false ./...

## lint-absint: only the interval abstract-interpretation analyzers
## (probrange, divzero, idxbound — DESIGN.md §2f), sharing the same
## baseline file; analyzer names are unique across all three suites, so
## the multiset diff cannot collide across passes.
lint-absint:
	$(GO) run ./cmd/verrolint -classic=false -flow=false -absint -baseline lint-baseline.json ./...

## fmt-check: fail if any tracked Go file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

## test-stream: the bounded-memory streaming gate — batch/stream
## bit-identity over every preset × window × worker combination, the
## disk-to-disk file path, the end-of-stream edge cases, the fuzz seed
## corpus, and the 4×-clip/1.3×-heap memory ceiling (stream_*_test.go plus
## the internal/stream and internal/vid window tests).
test-stream:
	$(GO) test -run 'TestStream|FuzzStreamWindow' .
	$(GO) test ./internal/stream/ ./internal/vid/

## test-server: the verrod job-service gate — store round-trip/atomicity,
## resumable-cursor equivalence, job lifecycle, 429 admission control, SSE
## monotonic window progress, and the kill-and-resume acceptance test
## asserting the resumed .vvf is byte-identical to an uninterrupted run's.
test-server:
	$(GO) test -run 'TestSanitizeStreamFrom' ./internal/core/
	$(GO) test ./internal/store/ ./internal/server/

race:
	$(GO) test -race ./...

## race-par: the targeted race gate — worker-pool equivalence, the scoped
## concurrent-sanitize test, the streaming equivalence matrix (whose
## per-window render fan-out is the newest pool user), and the verrod
## handlers (concurrent jobs + SSE subscribers share the trace-observer
## path) under the race detector. A fast early failure before the full
## race suite.
race-par:
	$(GO) test -race -run 'TestParallelEquivalence|TestConcurrentSanitizeScopedWorkers|TestStreamEquivalence' .
	$(GO) test -race -run 'TestJobLifecycle|TestAdmissionControl|TestEventsMonotonicWindowProgress' ./internal/server/

## fuzz: a short .vvf codec fuzz pass; lengthen with FUZZTIME=60s.
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzVVF -fuzztime=$(FUZZTIME) ./internal/vid/

## bench: every benchmark once (paper tables/figures + worker-pool paths).
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

## bench-json: regenerate BENCH_parallel.json (worker-pool ns/op at 1 vs 4 workers).
bench-json:
	VERRO_BENCH_JSON=BENCH_parallel.json $(GO) test -run='^$$' -bench=BenchmarkPar -benchtime=2x .

clean:
	rm -rf results
