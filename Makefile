# VERRO build/test entry points. Everything is stdlib-only Go; no tools
# beyond the go toolchain are required.

GO ?= go

.PHONY: check vet build test race fuzz bench bench-json clean

## check: the CI gate — vet, build, race-enabled tests, and a short fuzz pass.
check: vet build race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz: a short .vvf codec fuzz pass; lengthen with FUZZTIME=60s.
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzVVF -fuzztime=$(FUZZTIME) ./internal/vid/

## bench: every benchmark once (paper tables/figures + worker-pool paths).
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

## bench-json: regenerate BENCH_parallel.json (worker-pool ns/op at 1 vs 4 workers).
bench-json:
	VERRO_BENCH_JSON=BENCH_parallel.json $(GO) test -run='^$$' -bench=BenchmarkPar -benchtime=2x .

clean:
	rm -rf results
