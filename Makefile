# VERRO build/test entry points. Everything is stdlib-only Go; no tools
# beyond the go toolchain are required.

GO ?= go

.PHONY: check vet build lint fmt-check test race fuzz bench bench-json clean

## check: the CI gate — vet, build, verrolint, gofmt, race-enabled tests, and
## a short fuzz pass. Fails on any lint diagnostic or unformatted file.
check: vet build lint fmt-check race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

## lint: the in-repo static-analysis suite (cmd/verrolint) — determinism,
## privacy-math and panic-freedom invariants. See DESIGN.md §2d.
lint:
	$(GO) run ./cmd/verrolint ./...

## fmt-check: fail if any tracked Go file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz: a short .vvf codec fuzz pass; lengthen with FUZZTIME=60s.
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzVVF -fuzztime=$(FUZZTIME) ./internal/vid/

## bench: every benchmark once (paper tables/figures + worker-pool paths).
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .

## bench-json: regenerate BENCH_parallel.json (worker-pool ns/op at 1 vs 4 workers).
bench-json:
	VERRO_BENCH_JSON=BENCH_parallel.json $(GO) test -run='^$$' -bench=BenchmarkPar -benchtime=2x .

clean:
	rm -rf results
