package verro

// Hot-path micro-benchmarks: one benchmark per kernel family the perf
// lint sweep rewrote (BENCH_hotpath.json records before/after). Unlike
// bench_parallel_test.go these stay single-worker — they measure the
// per-element cost the bounds-check and allocation fixes target, not
// pool scheduling. Regenerate with:
//
//	VERRO_BENCH_JSON=BENCH_hotpath.json go test -bench=BenchmarkHot -benchtime=100x .

import (
	"sync"
	"testing"

	"verro/internal/blur"
	"verro/internal/geom"
	"verro/internal/hog"
	"verro/internal/img"
	"verro/internal/inpaint"
	"verro/internal/motio"
	"verro/internal/par"
	"verro/internal/scene"
	"verro/internal/vid"
)

// hotScene caches one deterministic synthetic clip for the frame-level
// benchmarks so generation cost stays out of the timed region.
var (
	hotOnce   sync.Once
	hotVideo  *vid.Video
	hotTracks *motio.TrackSet
	hotErr    error
)

func hotClip(b *testing.B) (*vid.Video, *motio.TrackSet) {
	b.Helper()
	hotOnce.Do(func() {
		p := scene.Preset{
			Name: "hotpath", W: 160, H: 120, Frames: 12, Objects: 4,
			FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 9,
		}
		g, err := scene.Generate(p)
		if err != nil {
			hotErr = err
			return
		}
		hotVideo, hotTracks = g.Video, g.Truth
	})
	if hotErr != nil {
		b.Fatal(hotErr)
	}
	return hotVideo, hotTracks
}

// singleWorker pins the pool to one worker for the duration of b.
func singleWorker(b *testing.B) {
	b.Helper()
	prev := par.SetWorkers(1)
	b.Cleanup(func() { par.SetWorkers(prev) })
}

// BenchmarkHotSSD measures patch comparison (criminisi's inner loop).
func BenchmarkHotSSD(b *testing.B) {
	recordBench(b)
	m := img.NewFilled(256, 256, img.RGB{R: 40, G: 80, B: 120})
	m.AddNoise(30, 7)
	n := m.Clone()
	n.AddNoise(10, 11)
	r := geom.RectAt(16, 16, 192, 192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if img.SSD(m, r, n, r, nil) < 0 {
			b.Fatal("negative SSD")
		}
	}
}

// BenchmarkHotGradients measures the Sobel-style gradient planes feeding
// both HOG and the inpainting data term.
func BenchmarkHotGradients(b *testing.B) {
	recordBench(b)
	m := img.NewFilled(320, 240, img.RGB{R: 90, G: 90, B: 90})
	m.AddNoise(40, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gx, gy := m.Gradients()
		if len(gx) != len(gy) {
			b.Fatal("plane mismatch")
		}
	}
}

// BenchmarkHotHOG measures descriptor computation over a detection window.
func BenchmarkHotHOG(b *testing.B) {
	recordBench(b)
	m := img.NewFilled(64, 128, img.RGB{R: 120, G: 60, B: 60})
	m.AddNoise(35, 5)
	cfg := hog.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		desc, err := hog.Compute(m, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(desc) == 0 {
			b.Fatal("empty descriptor")
		}
	}
}

// BenchmarkHotHist measures HSV histogram extraction plus the two
// similarity kernels used by key-frame segmentation and re-identification.
func BenchmarkHotHist(b *testing.B) {
	recordBench(b)
	m := img.NewFilled(160, 120, img.RGB{R: 200, G: 140, B: 40})
	m.AddNoise(50, 13)
	n := m.Clone()
	n.AddNoise(20, 17)
	r := geom.RectAt(8, 8, 144, 104)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ha := img.NewHSVHistRegion(m, r, 12, 4, 4)
		hb := img.NewHSVHistRegion(n, r, 12, 4, 4)
		s := img.Intersection(ha.H, hb.H) + img.CosineSim(ha.S, hb.S)
		if s <= 0 {
			b.Fatal("degenerate similarity")
		}
	}
}

// BenchmarkHotBlur measures full-clip sanitization by blurring, whose cost
// is dominated by the boxBlur kernel.
func BenchmarkHotBlur(b *testing.B) {
	recordBench(b)
	singleWorker(b)
	v, tracks := hotClip(b)
	cfg := blur.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blur.Sanitize(v, tracks, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotInpaint measures exemplar-based inpainting of a rectangular
// hole (patch search + confidence/data terms + patch copy).
func BenchmarkHotInpaint(b *testing.B) {
	recordBench(b)
	singleWorker(b)
	m := img.NewFilled(128, 96, img.RGB{R: 60, G: 110, B: 160})
	m.AddNoise(25, 19)
	mask := inpaint.NewMask(128, 96)
	mask.SetRect(geom.RectAt(48, 32, 24, 24), true)
	cfg := inpaint.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inpaint.Inpaint(m, mask.Clone(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotBackground measures median background extraction (the
// per-pixel sample gather + medianU8 loops).
func BenchmarkHotBackground(b *testing.B) {
	recordBench(b)
	singleWorker(b)
	v, tracks := hotClip(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inpaint.StaticBackground(v, tracks, 2, inpaint.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}
