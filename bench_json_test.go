package verro

// Machine-readable benchmark emission: when VERRO_BENCH_JSON names a file,
// every benchmark that calls recordBench appends its measured ns/op there as
// JSON after the run. This feeds BENCH_parallel.json (the worker-pool
// speedup record) and any external tracking without parsing `go test` text
// output:
//
//	VERRO_BENCH_JSON=BENCH_parallel.json go test -bench=Par -benchtime=2x .

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
)

// benchRecord is one benchmark measurement.
type benchRecord struct {
	Name    string  `json:"name"`
	N       int     `json:"n"`
	NsPerOp float64 `json:"ns_per_op"`
}

// benchReport is the file-level JSON shape. GOMAXPROCS is recorded because
// speedup numbers are meaningless without the host's parallelism.
type benchReport struct {
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Note       string        `json:"note,omitempty"`
	Records    []benchRecord `json:"records"`
}

var (
	benchMu      sync.Mutex
	benchRecords []benchRecord
)

// recordBench registers b for JSON emission; call it at the top of a
// benchmark (or sub-benchmark) body. Timing is captured in a Cleanup so the
// full measured run is included.
func recordBench(b *testing.B) {
	b.Helper()
	b.Cleanup(func() {
		if b.N == 0 || b.Failed() {
			return
		}
		rec := benchRecord{
			Name:    b.Name(),
			N:       b.N,
			NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		}
		benchMu.Lock()
		defer benchMu.Unlock()
		// The harness re-runs a benchmark while ramping b.N (keep the
		// longest run) and -count repeats it at the final N (keep the
		// fastest: min-of-N is the standard noise-robust estimator, and on
		// the shared CI hosts single measurements can swing 20%).
		for i := range benchRecords {
			if benchRecords[i].Name == rec.Name {
				if rec.N > benchRecords[i].N ||
					(rec.N == benchRecords[i].N && rec.NsPerOp < benchRecords[i].NsPerOp) {
					benchRecords[i] = rec
				}
				return
			}
		}
		benchRecords = append(benchRecords, rec)
	})
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("VERRO_BENCH_JSON"); path != "" && code == 0 {
		benchMu.Lock()
		report := benchReport{
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			Records:    benchRecords,
		}
		if report.GoMaxProcs == 1 {
			report.Note = "single-CPU host: workers>1 variants measure pool overhead, not speedup; re-run on a multi-core machine for scaling numbers"
		}
		benchMu.Unlock()
		if len(report.Records) > 0 {
			data, err := json.MarshalIndent(report, "", "  ")
			if err == nil {
				data = append(data, '\n')
				err = os.WriteFile(path, data, 0o644)
			}
			if err != nil {
				os.Stderr.WriteString("verro: bench json: " + err.Error() + "\n")
				code = 1
			}
		}
	}
	os.Exit(code)
}
