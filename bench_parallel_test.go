package verro

// Worker-pool benchmarks: each converted hot path measured at workers=1 and
// workers=4 so the speedup (and the parallel overhead at 1 worker) is
// directly visible. Combined with VERRO_BENCH_JSON these produce
// BENCH_parallel.json:
//
//	VERRO_BENCH_JSON=BENCH_parallel.json go test -bench=BenchmarkPar -benchtime=2x .

import (
	"fmt"
	"testing"

	"verro/internal/detect"
	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/inpaint"
	"verro/internal/keyframe"
	"verro/internal/par"
)

func benchAtWorkers(b *testing.B, fn func(b *testing.B)) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			recordBench(b)
			prev := par.SetWorkers(workers)
			defer par.SetWorkers(prev)
			fn(b)
		})
	}
}

// BenchmarkParMedianBackground times the per-pixel temporal median model.
func BenchmarkParMedianBackground(b *testing.B) {
	frames := make([]*img.Image, 40)
	for i := range frames {
		f := img.New(160, 120)
		for p := range f.Pix {
			f.Pix[p] = uint8((p*13 + i*29) % 256)
		}
		frames[i] = f
	}
	benchAtWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := detect.MedianBackground(frames, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParHOGDetect times one sliding-window pyramid pass.
func BenchmarkParHOGDetect(b *testing.B) {
	det, err := detect.NewPedestrianDetector(DefaultPipelineConfig().Style, 1)
	if err != nil {
		b.Fatal(err)
	}
	d := dataset(b, "MOT01")
	frame := d.Gen.Video.Frame(0)
	benchAtWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := det.Detect(frame); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParInpaint times the Criminisi filler (fill-front priorities +
// SSD patch search), the most compute-dense converted loop.
func BenchmarkParInpaint(b *testing.B) {
	src := img.New(96, 72)
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			src.Set(x, y, img.RGB{
				R: uint8(40 + 3*(x%16)),
				G: uint8(90 + 5*(y%8)),
				B: uint8((x + y) % 256),
			})
		}
	}
	mask := inpaint.NewMask(96, 72)
	mask.SetRect(geom.RectAt(30, 22, 24, 16), true)
	benchAtWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := inpaint.Inpaint(src, mask, inpaint.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParKeyframe times HSV-histogram key-frame extraction.
func BenchmarkParKeyframe(b *testing.B) {
	d := dataset(b, "MOT01")
	benchAtWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := keyframe.Extract(d.Gen.Video, keyframe.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParSanitizeRender times the full sanitization including the
// Phase II frame rendering loop.
func BenchmarkParSanitizeRender(b *testing.B) {
	d := dataset(b, "MOT01")
	cfg := d.SanitizerConfig(0.1, 1, true)
	benchAtWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg.Seed = int64(i) + 1
			if _, err := Sanitize(d.Gen.Video, d.Tracks, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
