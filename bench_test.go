package verro

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Section 6) under `go test -bench`. Each benchmark drives the
// same internal/exp code as cmd/experiments, so timings here measure the
// real experiment pipelines. Benchmarks default to quarter-scale datasets
// to stay laptop-friendly; set VERRO_BENCH_SCALE=1 to run the full
// paper-sized videos (cmd/experiments is the tool of record for those).

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"verro/internal/exp"
	"verro/internal/scene"
)

func benchScale() float64 {
	if s := os.Getenv("VERRO_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 && v <= 1 {
			return v
		}
	}
	return 0.25
}

// Dataset cache: loading MOT videos is expensive; benchmarks share one
// loaded copy per (preset, scale).
var (
	dsMu    sync.Mutex
	dsCache = map[string]*exp.Dataset{}
)

func dataset(b *testing.B, name string) *exp.Dataset {
	b.Helper()
	scale := benchScale()
	key := fmt.Sprintf("%s@%v", name, scale)
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsCache[key]; ok {
		return d
	}
	preset, err := scene.PresetByName(name)
	if err != nil {
		b.Fatal(err)
	}
	d, err := exp.LoadDataset(preset, exp.Options{Scale: scale, Trials: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	dsCache[key] = d
	return d
}

func allDatasets(b *testing.B) []*exp.Dataset {
	return []*exp.Dataset{dataset(b, "MOT01"), dataset(b, "MOT03"), dataset(b, "MOT06")}
}

// BenchmarkTable1Characteristics regenerates Table 1 (video
// characteristics): dataset generation plus preprocessing.
func BenchmarkTable1Characteristics(b *testing.B) {
	recordBench(b)
	for i := 0; i < b.N; i++ {
		rows := exp.Table1(allDatasets(b))
		if len(rows) != 3 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkTable2KeyFrames regenerates Table 2 (distinct objects after key
// frame extraction).
func BenchmarkTable2KeyFrames(b *testing.B) {
	recordBench(b)
	ds := allDatasets(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range ds {
			row := exp.Table2(d)
			if row.Remaining == 0 || row.Remaining > row.Objects {
				b.Fatalf("bad row %+v", row)
			}
			b.ReportMetric(float64(row.Remaining)/float64(row.Objects), row.Video+"_retention")
		}
	}
}

// BenchmarkTable3Overheads regenerates Table 3: the full sanitization
// (Phase I + Phase II + rendering + encoding) per video at f = 0.1.
func BenchmarkTable3Overheads(b *testing.B) {
	for _, name := range []string{"MOT01", "MOT03", "MOT06"} {
		b.Run(name, func(b *testing.B) {
			recordBench(b)
			d := dataset(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				row, _, err := exp.Table3(d, 0.1, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(row.Phase1.Seconds(), "phase1_s")
				b.ReportMetric(row.Phase2.Seconds(), "phase2_s")
				b.ReportMetric(row.BandwidthMB, "bandwidth_MB")
			}
		})
	}
}

// BenchmarkFig5DistinctObjects regenerates the Figure 5(a,c,e) retention
// curves (Phase I utility across the f sweep).
func BenchmarkFig5DistinctObjects(b *testing.B) {
	for _, name := range []string{"MOT01", "MOT03", "MOT06"} {
		b.Run(name, func(b *testing.B) {
			recordBench(b)
			d := dataset(b, name)
			fs := []float64{0.1, 0.5, 0.9}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var rrTotal float64
				for _, f := range fs {
					r, err := d.Retention(f, 1, int64(i)+1)
					if err != nil {
						b.Fatal(err)
					}
					rrTotal += r.RR
				}
				b.ReportMetric(rrTotal/float64(len(fs)), "mean_rr_retained")
			}
		})
	}
}

// BenchmarkFig5Deviation regenerates the Figure 5(b,d,f) trajectory
// deviation curves (Phase I + Phase II, track-level only).
func BenchmarkFig5Deviation(b *testing.B) {
	for _, name := range []string{"MOT01", "MOT03", "MOT06"} {
		b.Run(name, func(b *testing.B) {
			recordBench(b)
			d := dataset(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				points, err := exp.Fig5(d, []float64{0.1, 0.9}, 1, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(points[0].DevAfter, "dev_after_f0.1")
				b.ReportMetric(points[len(points)-1].DevAfter, "dev_after_f0.9")
			}
		})
	}
}

// BenchmarkFig678Trajectories regenerates the Figures 6-8 trajectory
// extractions (two sampled objects, original vs synthetic at f=0.1/0.9).
func BenchmarkFig678Trajectories(b *testing.B) {
	for _, name := range []string{"MOT01", "MOT03", "MOT06"} {
		b.Run(name, func(b *testing.B) {
			recordBench(b)
			d := dataset(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fig, err := exp.Fig678(d, []float64{0.1, 0.9}, int64(i)+1)
				if err != nil {
					b.Fatal(err)
				}
				if len(fig.Series) == 0 {
					b.Fatal("no series")
				}
			}
		})
	}
}

// BenchmarkFig91011Frames regenerates the Figures 9-11 representative
// frames (input, reconstructed background, synthetic at f=0.1) without
// writing PNGs.
func BenchmarkFig91011Frames(b *testing.B) {
	for _, name := range []string{"MOT01", "MOT06"} {
		b.Run(name, func(b *testing.B) {
			recordBench(b)
			d := dataset(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exp.Fig91011(d, d.Gen.Video.Len()/2, []float64{0.1}, int64(i)+1, ""); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12KeyFrameCounts regenerates the Figure 12 aggregate counts
// in optimized key frames.
func BenchmarkFig12KeyFrameCounts(b *testing.B) {
	recordBench(b)
	d := dataset(b, "MOT03")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig12(d, []float64{0.1, 0.9}, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13FrameCounts regenerates the Figure 13 per-frame counts in
// the synthetic videos.
func BenchmarkFig13FrameCounts(b *testing.B) {
	recordBench(b)
	d := dataset(b, "MOT03")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig13(d, []float64{0.1, 0.9}, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineNaiveRR runs the Algorithm 1 baseline comparison (the
// Section 3.1 "poor utility" argument).
func BenchmarkBaselineNaiveRR(b *testing.B) {
	recordBench(b)
	d := dataset(b, "MOT03")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exp.Baseline(d, 0.1, 1, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NaiveOnesFrac, "naive_ones_frac")
		b.ReportMetric(r.NaiveCountMAE, "naive_count_MAE")
		b.ReportMetric(r.VerroCountMAE, "verro_count_MAE")
	}
}

// BenchmarkAblationDimensionReduction measures the retention each design
// stage buys (naive RR vs key frames vs key frames + OPT).
func BenchmarkAblationDimensionReduction(b *testing.B) {
	recordBench(b)
	d := dataset(b, "MOT01")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exp.Ablation(d, 0.1, 1, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.KFOptRet, "opt_retained")
	}
}

// BenchmarkSanitizeEndToEnd measures the public-API sanitization path a
// library user hits, per video.
func BenchmarkSanitizeEndToEnd(b *testing.B) {
	for _, name := range []string{"MOT01", "MOT03", "MOT06"} {
		b.Run(name, func(b *testing.B) {
			recordBench(b)
			d := dataset(b, name)
			cfg := d.SanitizerConfig(0.1, 1, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i) + 1
				if _, err := Sanitize(d.Gen.Video, d.Tracks, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetectAndTrack measures the preprocessing pipeline (median
// background + subtraction + SORT tracking) per frame.
func BenchmarkDetectAndTrack(b *testing.B) {
	recordBench(b)
	d := dataset(b, "MOT01")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracks, err := DetectAndTrack(d.Gen.Video, DefaultPipelineConfig())
		if err != nil {
			b.Fatal(err)
		}
		if tracks.Len() == 0 {
			b.Fatal("no tracks")
		}
	}
}

// BenchmarkAttackReidentification runs the background-knowledge
// re-identification comparison (unsanitized vs blur vs VERRO).
func BenchmarkAttackReidentification(b *testing.B) {
	recordBench(b)
	d := dataset(b, "MOT01")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exp.Attack(d, 0.1, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Blur, "blur_top1")
		b.ReportMetric(r.Verro, "verro_top1")
	}
}
