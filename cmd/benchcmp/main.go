// Command benchcmp compares two VERRO_BENCH_JSON reports (see
// bench_json_test.go for the schema) and fails when any benchmark in the
// reference slowed down by more than the tolerance in the new measurement.
// It is the `make bench-compare` regression gate:
//
//	benchcmp -ref BENCH_parallel.json -new /tmp/bench.json -tolerance 0.15
//
// Matching is by benchmark name. Benchmarks present only in the reference
// are reported as missing and fail the gate (a silently dropped benchmark
// is indistinguishable from an unbounded regression); benchmarks present
// only in the new report are listed but do not fail. Speedups never fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type record struct {
	Name    string  `json:"name"`
	N       int     `json:"n"`
	NsPerOp float64 `json:"ns_per_op"`
}

type report struct {
	GoMaxProcs int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Note       string   `json:"note,omitempty"`
	Records    []record `json:"records"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	refPath := flag.String("ref", "", "committed reference report (required)")
	newPath := flag.String("new", "", "freshly measured report (required)")
	tolerance := flag.Float64("tolerance", 0.15, "allowed slowdown fraction before failing")
	flag.Parse()
	if *refPath == "" || *newPath == "" || *tolerance < 0 {
		flag.Usage()
		os.Exit(2)
	}

	ref, err := load(*refPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	cur, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	if ref.GoMaxProcs != cur.GoMaxProcs || ref.NumCPU != cur.NumCPU {
		fmt.Printf("note: host mismatch (ref %d/%d procs, new %d/%d) — ratios may reflect the host, not the code\n",
			ref.GoMaxProcs, ref.NumCPU, cur.GoMaxProcs, cur.NumCPU)
	}

	curByName := make(map[string]record, len(cur.Records))
	for _, r := range cur.Records {
		curByName[r.Name] = r
	}
	refNames := make(map[string]bool, len(ref.Records))

	failed := 0
	for _, old := range ref.Records {
		refNames[old.Name] = true
		now, ok := curByName[old.Name]
		if !ok {
			fmt.Printf("FAIL %-40s missing from new report\n", old.Name)
			failed++
			continue
		}
		if old.NsPerOp <= 0 {
			fmt.Printf("skip %-40s non-positive reference ns/op\n", old.Name)
			continue
		}
		ratio := now.NsPerOp/old.NsPerOp - 1
		verdict := "ok  "
		if ratio > *tolerance {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%s %-40s %12.0f -> %12.0f ns/op  %+6.1f%%\n",
			verdict, old.Name, old.NsPerOp, now.NsPerOp, ratio*100)
	}
	for _, r := range cur.Records {
		if !refNames[r.Name] {
			fmt.Printf("new  %-40s %12.0f ns/op (not in reference)\n", r.Name, r.NsPerOp)
		}
	}

	if failed > 0 {
		fmt.Printf("benchcmp: %d benchmark(s) regressed beyond %.0f%%\n", failed, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchcmp: %d benchmark(s) within %.0f%% of %s\n", len(ref.Records), *tolerance*100, *refPath)
}
