// Command experiments regenerates every table and figure of the paper's
// evaluation section over the three synthetic benchmark videos. Text
// results go to stdout; CSV series and PNG frames are written under -out.
//
// Usage:
//
//	experiments [-run all|table1|table2|table3|fig5|fig678|fig91011|fig12|fig13|baseline|ablation|attack]
//	            [-scale 1.0] [-trials 5] [-seed 1] [-out results] [-video MOT01,MOT03,MOT06]
//	            [-tracked] [-html results/report.html] [-trace out.json] [-pprof addr]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"verro/internal/exp"
	"verro/internal/obs"
	"verro/internal/par"
	"verro/internal/report"
	"verro/internal/scene"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment to run (all, table1, table2, table3, fig5, fig678, fig91011, fig12, fig13, baseline, ablation, attack)")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor in (0,1]")
		trials  = flag.Int("trials", 5, "random-response trials to average")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "results", "output directory for CSVs and PNGs ('' disables)")
		videos  = flag.String("video", "MOT01,MOT03,MOT06", "comma-separated benchmark videos")
		tracked = flag.Bool("tracked", false, "use detected+tracked objects instead of ground truth")
		html    = flag.String("html", "", "also write a self-contained HTML report to this path")
		workers = flag.Int("workers", 0, "worker-pool size for the hot CV loops (0 = VERRO_WORKERS or GOMAXPROCS; output is identical at any setting)")
		traceP  = flag.String("trace", "", "write a JSON run report (span tree + counters; schema in DESIGN.md)")
		pprofA  = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *workers > 0 {
		par.SetWorkers(*workers)
	}
	if *pprofA != "" {
		if err := obs.ServeDebug(*pprofA); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	opt := exp.Options{Scale: *scale, Trials: *trials, Seed: *seed, UseTrackedObjects: *tracked}
	if *traceP != "" {
		opt.Trace = obs.NewTrace("experiments")
	}
	if err := runAll(*run, *videos, *out, *html, opt); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if opt.Trace != nil {
		if err := opt.Trace.WriteFile(*traceP); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote trace to %s\n%s", *traceP, opt.Trace.Report().Summary())
	}
}

func runAll(which, videos, out, htmlPath string, opt exp.Options) error {
	want := map[string]bool{}
	for _, w := range strings.Split(which, ",") {
		want[strings.TrimSpace(w)] = true
	}
	sel := func(name string) bool { return want["all"] || want[name] }

	var names []string
	for _, v := range strings.Split(videos, ",") {
		names = append(names, strings.TrimSpace(v))
	}

	// Load datasets one at a time to bound memory; Table 1 needs them all,
	// so collect its rows incrementally.
	var t1 []exp.Table1Row
	var t2 []exp.Table2Row
	var t3 []exp.Table3Row
	rep := &report.Data{
		Title:  "VERRO experiment report",
		Fig5:   map[string][]exp.Fig5Point{},
		Frames: map[string]string{},
	}
	fsweep := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	fpair := []float64{0.1, 0.9}

	for _, name := range names {
		preset, err := scene.PresetByName(name)
		if err != nil {
			return err
		}
		fmt.Printf("=== %s (scale %.2f) ===\n", name, opt.Scale)
		d, err := exp.LoadDataset(preset, opt)
		if err != nil {
			return err
		}

		if sel("table1") {
			t1 = append(t1, exp.Table1([]*exp.Dataset{d})...)
		}
		if sel("table2") {
			t2 = append(t2, exp.Table2(d))
		}
		if sel("fig5") {
			points, err := exp.Fig5(d, fsweep, opt.Trials, opt.Seed)
			if err != nil {
				return err
			}
			exp.PrintFig5(os.Stdout, d.Preset.Name, points)
			rep.Fig5[d.Preset.Name] = points
			if out != "" {
				path := filepath.Join(out, fmt.Sprintf("fig5-%s.csv", d.Preset.Name))
				tab, err := exp.Fig5Table(points)
				if err != nil {
					return err
				}
				if err := tab.SaveCSV(path); err != nil {
					return err
				}
				fmt.Println("  wrote", path)
			}
		}
		if sel("fig678") {
			fig, err := exp.Fig678(d, fpair, opt.Seed)
			if err != nil {
				return err
			}
			exp.PrintTrajectorySummary(os.Stdout, fig)
			if out != "" {
				// Figures 6-8 plot original against sanitized trajectories; the
				// unsanitized series are half of the published comparison by the
				// paper's design, not an accidental leak.
				//lint:allow privleak figure data includes the original trajectories on purpose
				if err := fig.SaveCSVs(out); err != nil {
					return err
				}
				fmt.Println("  wrote trajectory CSVs to", out)
			}
		}
		if sel("fig12") {
			t, err := exp.Fig12(d, fpair, opt.Seed)
			if err != nil {
				return err
			}
			exp.PrintCountSummary(os.Stdout, fmt.Sprintf("Figure 12 (%s): counts in optimized key frames", d.Preset.Name), t)
			if out != "" {
				path := filepath.Join(out, fmt.Sprintf("fig12-%s.csv", d.Preset.Name))
				if err := t.SaveCSV(path); err != nil {
					return err
				}
				fmt.Println("  wrote", path)
			}
		}
		if sel("fig13") {
			t, err := exp.Fig13(d, fpair, opt.Seed)
			if err != nil {
				return err
			}
			exp.PrintCountSummary(os.Stdout, fmt.Sprintf("Figure 13 (%s): per-frame counts in synthetic video", d.Preset.Name), t)
			if out != "" {
				path := filepath.Join(out, fmt.Sprintf("fig13-%s.csv", d.Preset.Name))
				if err := t.SaveCSV(path); err != nil {
					return err
				}
				fmt.Println("  wrote", path)
			}
		}
		if sel("baseline") {
			r, err := exp.Baseline(d, 0.1, opt.Trials, opt.Seed)
			if err != nil {
				return err
			}
			exp.PrintBaseline(os.Stdout, r)
			rep.Baselines = append(rep.Baselines, r)
		}
		if sel("ablation") {
			r, err := exp.Ablation(d, 0.1, opt.Trials, opt.Seed)
			if err != nil {
				return err
			}
			exp.PrintAblation(os.Stdout, r)
			rows, err := exp.InterpAblation(d, 0.1, opt.Trials, opt.Seed)
			if err != nil {
				return err
			}
			exp.PrintInterpAblation(os.Stdout, rows)
			kfRows, err := exp.KeyframeAblation(d)
			if err != nil {
				return err
			}
			exp.PrintKeyframeAblation(os.Stdout, kfRows)
		}
		if sel("attack") {
			r, err := exp.Attack(d, 0.1, opt.Seed)
			if err != nil {
				return err
			}
			exp.PrintAttack(os.Stdout, r)
			rep.Attacks = append(rep.Attacks, r)
		}
		if sel("fig91011") {
			frame := d.Gen.Video.Len() / 2
			files, err := exp.Fig91011(d, frame, fpair, opt.Seed, out)
			if err != nil {
				return err
			}
			fmt.Printf("Figures 9-11 (%s): frame %d\n", d.Preset.Name, frame)
			tags := make([]string, 0, len(files))
			for tag := range files {
				tags = append(tags, tag)
			}
			sort.Strings(tags)
			for _, tag := range tags {
				path := files[tag]
				fmt.Printf("  %-18s %s\n", tag, path)
				rep.Frames[fmt.Sprintf("%s %s (frame %d)", d.Preset.Name, tag, frame)] = path
			}
		}
		if sel("table3") {
			row, _, err := exp.Table3(d, 0.1, opt.Seed)
			if err != nil {
				return err
			}
			t3 = append(t3, row)
		}
	}

	if sel("table1") {
		exp.PrintTable1(os.Stdout, t1)
	}
	if sel("table2") {
		exp.PrintTable2(os.Stdout, t2)
	}
	if sel("table3") {
		exp.PrintTable3(os.Stdout, t3)
	}
	if htmlPath != "" {
		rep.Table1, rep.Table2, rep.Table3 = t1, t2, t3
		if err := report.Save(htmlPath, rep); err != nil {
			return err
		}
		fmt.Println("wrote", htmlPath)
	}
	return nil
}
