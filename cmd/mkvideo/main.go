// Command mkvideo generates the synthetic benchmark videos (the MOT16
// stand-ins of Table 1) to disk as .vvf containers with ground-truth track
// CSVs, plus optional PNG frame dumps.
//
// Usage:
//
//	mkvideo [-video MOT01,MOT03,MOT06] [-scale 1.0] [-out data] [-png 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"verro/internal/scene"
	"verro/internal/vid"
)

func main() {
	var (
		videos = flag.String("video", "MOT01,MOT03,MOT06", "comma-separated presets")
		scale  = flag.Float64("scale", 1.0, "scale factor in (0,1]")
		out    = flag.String("out", "data", "output directory")
		pngN   = flag.Int("png", 0, "also dump every Nth frame as PNG (0 = none)")
		y4m    = flag.Bool("y4m", false, "also export a .y4m (YUV4MPEG2) copy for standard players")
	)
	flag.Parse()
	if err := run(*videos, *scale, *out, *pngN, *y4m); err != nil {
		fmt.Fprintln(os.Stderr, "mkvideo:", err)
		os.Exit(1)
	}
}

func run(videos string, scale float64, out string, pngN int, y4m bool) error {
	for _, name := range strings.Split(videos, ",") {
		name = strings.TrimSpace(name)
		p, err := scene.PresetByName(name)
		if err != nil {
			return err
		}
		if scale > 0 && scale < 1 {
			p = p.Scaled(scale)
		}
		fmt.Printf("generating %s: %dx%d, %d frames, %d objects...\n",
			p.Name, p.W, p.H, p.Frames, p.Objects)
		g, err := scene.Generate(p)
		if err != nil {
			return err
		}
		// mkvideo is the dataset generator: its entire purpose is to write the
		// raw synthetic benchmark (video, ground-truth tracks, previews) that
		// the sanitizer pipeline later consumes. Nothing here is published
		// output in the paper's threat model.
		vpath := filepath.Join(out, p.Name+".vvf")
		//lint:allow privleak raw benchmark video is this tool's product
		n, err := vid.WriteFile(vpath, g.Video)
		if err != nil {
			return err
		}
		tpath := filepath.Join(out, p.Name+"-gt.csv")
		//lint:allow privleak ground-truth CSV is the benchmark's labelled answer key
		if err := g.Truth.SaveCSV(tpath); err != nil {
			return err
		}
		//lint:allow privleak compressed byte count of the raw benchmark is as public as the file it sizes
		fmt.Printf("  %s (%.2f MB), %s (%d objects)\n",
			vpath, float64(n)/(1<<20), tpath, g.Truth.Len())
		if y4m {
			ypath := filepath.Join(out, p.Name+".y4m")
			//lint:allow privleak Y4M export is a player-compatible copy of the raw benchmark
			if err := vid.SaveY4M(ypath, g.Video); err != nil {
				return err
			}
			fmt.Printf("  %s\n", ypath)
		}
		if pngN > 0 {
			dir := filepath.Join(out, p.Name+"-frames")
			count := 0
			for k := 0; k < g.Video.Len(); k += pngN {
				path := filepath.Join(dir, fmt.Sprintf("frame%05d.png", k))
				//lint:allow privleak PNG dumps are debugging previews of the raw benchmark
				if err := g.Video.Frame(k).WritePNG(path); err != nil {
					return err
				}
				count++
			}
			fmt.Printf("  %d PNG frames in %s\n", count, dir)
		}
	}
	return nil
}
