// Command verro sanitizes a video: it reads a .vvf container (and
// optionally a tracks CSV), runs the VERRO pipeline, and writes the
// synthetic video. Without a tracks file it runs the built-in
// detection+tracking preprocessing first.
//
// Usage:
//
//	verro -in video.vvf [-tracks gt.csv] -out synthetic.vvf
//	      [-f 0.1] [-eps 0] [-seed 1] [-png 0] [-laplace 0] [-no-opt]
//	      [-workers N] [-window N] [-trace out.json] [-pprof addr]
//
// Either -f (flip probability) or -eps (total ε budget; converted to f
// using the number of key frames picked on a dry run) sets the privacy
// level; -f wins when both are given.
//
// -trace writes a machine-readable run report (span tree per pipeline
// stage, stage counters, worker-pool gauges; schema in DESIGN.md) and
// prints a human-readable summary. -pprof serves net/http/pprof and expvar
// (including live worker-pool stats) on the given address, e.g.
// -pprof localhost:6060.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"verro"
	"verro/internal/obs"
	"verro/internal/par"
)

// options collects the run parameters; flags bind to the fields directly.
type options struct {
	in, tracksPath, out string
	f, eps              float64
	seed                int64
	pngN, gifN          int
	laplace             float64
	noOpt, multi        bool
	workers             int
	window              int
	tracePath           string
	pprofAddr           string
}

func main() {
	var opt options
	flag.StringVar(&opt.in, "in", "", "input .vvf video (required)")
	flag.StringVar(&opt.tracksPath, "tracks", "", "object tracks CSV (optional; detected when empty)")
	flag.StringVar(&opt.out, "out", "synthetic.vvf", "output .vvf video")
	flag.Float64Var(&opt.f, "f", 0.1, "flip probability in (0,1]")
	flag.Float64Var(&opt.eps, "eps", 0, "total epsilon budget (overrides -f when > 0)")
	flag.Int64Var(&opt.seed, "seed", 1, "random seed")
	flag.IntVar(&opt.pngN, "png", 0, "dump every Nth synthetic frame as PNG next to -out (0 = none)")
	flag.Float64Var(&opt.laplace, "laplace", 0, "epsilon' for Laplace noise on optimization statistics (0 = off)")
	flag.BoolVar(&opt.noOpt, "no-opt", false, "disable key-frame optimization (use all key frames)")
	flag.BoolVar(&opt.multi, "multitype", false, "sanitize each object class independently (Section 5)")
	flag.IntVar(&opt.gifN, "gif", 0, "also export an animated GIF sampling every Nth frame (0 = none)")
	flag.IntVar(&opt.workers, "workers", 0, "worker-pool size for the hot CV loops (0 = VERRO_WORKERS or GOMAXPROCS; output is identical at any setting)")
	flag.IntVar(&opt.window, "window", 0, "stream the pipeline in windows of N frames, bounding memory to O(N) (0 = whole-clip batch; output is identical at any setting)")
	flag.StringVar(&opt.tracePath, "trace", "", "write a JSON run report (span tree + counters; schema in DESIGN.md)")
	flag.StringVar(&opt.pprofAddr, "pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	flag.Parse()
	if opt.in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if opt.workers > 0 {
		par.SetWorkers(opt.workers)
	}
	if opt.pprofAddr != "" {
		// The user asked for diagnostics explicitly; an unbindable address is
		// an error worth stopping for, not one to discover minutes later.
		if err := obs.ServeDebug(opt.pprofAddr); err != nil {
			fmt.Fprintln(os.Stderr, "verro:", err)
			os.Exit(1)
		}
	}
	if err := run(opt); err != nil {
		fmt.Fprintln(os.Stderr, "verro:", err)
		os.Exit(1)
	}
}

// runStream is the bounded-memory file-to-file path behind -window: the
// input decodes from disk in windows, the sanitizer streams, and the output
// encodes to disk in windows, so peak memory is O(window) regardless of
// clip length. The written file is byte-identical to the batch path's.
func runStream(opt options) error {
	if opt.multi {
		return fmt.Errorf("-multitype drives per-class batch runs and does not compose with -window")
	}
	src, err := verro.OpenVideoSource(opt.in)
	if err != nil {
		return err
	}
	defer src.Close()
	meta := src.Meta()
	fmt.Printf("input: %s %dx%d %d frames (streaming, window %d)\n", meta.Name, meta.W, meta.H, meta.Frames, opt.window)

	var trace *verro.Trace
	if opt.tracePath != "" {
		trace = verro.NewTrace("verro")
	}

	var tracks *verro.TrackSet
	if opt.tracksPath != "" {
		tracks, err = verro.LoadTracks(opt.tracksPath)
		if err != nil {
			return err
		}
		fmt.Printf("tracks: %d objects from %s\n", tracks.Len(), opt.tracksPath)
	} else {
		fmt.Println("no tracks given; running detection + tracking...")
		pcfg := verro.DefaultPipelineConfig()
		pcfg.Trace = trace
		pcfg.WindowFrames = opt.window
		tracks, err = verro.DetectAndTrackStream(src, pcfg)
		if err != nil {
			return err
		}
		if err := src.Reset(); err != nil {
			return err
		}
		fmt.Printf("tracked %d objects\n", tracks.Len())
	}

	cfg := verro.DefaultConfig()
	cfg.Seed = opt.seed
	cfg.Phase1.F = opt.f
	cfg.Phase1.Optimize = !opt.noOpt
	cfg.Phase1.LaplaceEps = opt.laplace
	cfg.Trace = trace
	cfg.WindowFrames = opt.window
	if opt.eps > 0 {
		// Same ε→f conversion as the batch path, on a render-free streaming
		// dry run (untraced so its stages don't double-count).
		dry := cfg
		dry.Phase2.SkipRender = true
		dry.Trace = nil
		dryRes, err := verro.SanitizeStream(src, tracks, dry, nil)
		if err != nil {
			return fmt.Errorf("dry run: %w", err)
		}
		if err := src.Reset(); err != nil {
			return err
		}
		k := len(dryRes.Phase1.Picked)
		conv, err := verro.FlipProbability(k, opt.eps)
		if err != nil {
			return err
		}
		cfg.Phase1.F = conv
		fmt.Printf("eps=%.3f over %d picked key frames -> f=%.4f\n", opt.eps, k, conv)
	}

	sink, err := verro.NewVideoSink(opt.out, verro.StreamOutputMeta(meta))
	if err != nil {
		return err
	}
	wrote := false
	defer func() {
		// Close is idempotent, so this is a no-op after the success path
		// (SanitizeStream closes the sink itself). On any error return
		// between here and there it releases the descriptor and removes the
		// truncated output — a half-written .vvf must not survive where a
		// caller could mistake it for a sanitized artifact.
		sink.Close()
		if !wrote {
			os.Remove(opt.out)
		}
	}()
	res, err := verro.SanitizeStream(src, tracks, cfg, sink)
	if err != nil {
		return err
	}
	wrote = true
	fmt.Printf("sanitized: eps=%.3f, phase1=%v phase2=%v\n",
		res.Epsilon, res.Phase1Time.Round(1e6), res.Phase2Time.Round(1e6))
	fmt.Printf("%d/%d objects retained over %d windows\n",
		res.SyntheticTracks.Len(), tracks.Len(), len(res.Windows))
	fmt.Printf("wrote %s (%.2f MB)\n", opt.out, float64(sink.Written())/(1<<20))

	if opt.pngN > 0 || opt.gifN > 0 {
		// The synthetic frames went straight to disk; read the output back
		// for the optional exports. The decoded frames are SanitizeStream's
		// own published output, not raw footage — the taint analyzer only
		// sees a video decode.
		synthetic, err := verro.ReadVideo(opt.out)
		if err != nil {
			return err
		}
		if opt.pngN > 0 {
			dir := opt.out + "-frames"
			count := 0
			for k := 0; k < synthetic.Len(); k += opt.pngN {
				path := filepath.Join(dir, fmt.Sprintf("frame%05d.png", k))
				//lint:allow privleak frames decoded from our own sanitized output file
				if err := synthetic.Frame(k).WritePNG(path); err != nil {
					return err
				}
				count++
			}
			fmt.Printf("wrote %d PNG frames to %s\n", count, dir)
		}
		if opt.gifN > 0 {
			gifPath := opt.out + ".gif"
			//lint:allow privleak GIF re-encodes our own sanitized output file
			if err := synthetic.WriteGIF(gifPath, opt.gifN); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", gifPath)
		}
	}
	if trace != nil {
		if err := trace.WriteFile(opt.tracePath); err != nil {
			return err
		}
		fmt.Printf("wrote trace to %s\n%s", opt.tracePath, trace.Report().Summary())
	}
	return nil
}

func run(opt options) error {
	if opt.window > 0 {
		return runStream(opt)
	}
	video, err := verro.ReadVideo(opt.in)
	if err != nil {
		return err
	}
	// Video.String() prints dimensions and frame count only — metadata the
	// operator already knows, not pixel or trajectory data.
	//lint:allow privleak %v formats the video's size summary, not its content
	fmt.Printf("input: %v\n", video)

	// One trace covers the whole run: detection+tracking (when it runs) and
	// the sanitizer stages all land in the same span tree.
	var trace *verro.Trace
	if opt.tracePath != "" {
		trace = verro.NewTrace("verro")
	}

	var tracks *verro.TrackSet
	if opt.tracksPath != "" {
		tracks, err = verro.LoadTracks(opt.tracksPath)
		if err != nil {
			return err
		}
		fmt.Printf("tracks: %d objects from %s\n", tracks.Len(), opt.tracksPath)
	} else {
		fmt.Println("no tracks given; running detection + tracking...")
		pcfg := verro.DefaultPipelineConfig()
		pcfg.Trace = trace
		tracks, err = verro.DetectAndTrack(video, pcfg)
		if err != nil {
			return err
		}
		fmt.Printf("tracked %d objects\n", tracks.Len())
	}

	cfg := verro.DefaultConfig()
	cfg.Seed = opt.seed
	cfg.Phase1.F = opt.f
	cfg.Phase1.Optimize = !opt.noOpt
	cfg.Phase1.LaplaceEps = opt.laplace
	cfg.Trace = trace
	if opt.eps > 0 {
		// Convert the ε budget to a flip probability: dry-run Phase I at a
		// neutral f to learn how many key frames get picked, then invert.
		// The dry run is untraced so its stages don't double-count.
		dry := cfg
		dry.Phase2.SkipRender = true
		dry.Trace = nil
		dryRes, err := verro.Sanitize(video, tracks, dry)
		if err != nil {
			return fmt.Errorf("dry run: %w", err)
		}
		k := len(dryRes.Phase1.Picked)
		conv, err := verro.FlipProbability(k, opt.eps)
		if err != nil {
			return err
		}
		cfg.Phase1.F = conv
		fmt.Printf("eps=%.3f over %d picked key frames -> f=%.4f\n", opt.eps, k, conv)
	}

	var synthetic *verro.Video
	var synthTracks *verro.TrackSet
	if opt.multi {
		res, err := verro.SanitizeMultiType(video, tracks, cfg)
		if err != nil {
			return err
		}
		synthetic = res.Synthetic
		synthTracks = res.SyntheticTracks
		classes := make([]string, 0, len(res.PerClass))
		for name := range res.PerClass {
			classes = append(classes, name)
		}
		sort.Strings(classes)
		for _, name := range classes {
			p1 := res.PerClass[name]
			fmt.Printf("class %-11s eps=%.3f over %d picked key frames\n", name, p1.Epsilon, len(p1.Picked))
		}
	} else {
		res, err := verro.Sanitize(video, tracks, cfg)
		if err != nil {
			return err
		}
		synthetic = res.Synthetic
		synthTracks = res.SyntheticTracks
		fmt.Printf("sanitized: eps=%.3f, phase1=%v phase2=%v\n",
			res.Epsilon, res.Phase1Time.Round(1e6), res.Phase2Time.Round(1e6))
	}
	fmt.Printf("%d/%d objects retained\n", synthTracks.Len(), tracks.Len())

	n, err := verro.WriteVideo(opt.out, synthetic)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%.2f MB)\n", opt.out, float64(n)/(1<<20))

	if opt.pngN > 0 {
		dir := opt.out + "-frames"
		count := 0
		for k := 0; k < synthetic.Len(); k += opt.pngN {
			path := filepath.Join(dir, fmt.Sprintf("frame%05d.png", k))
			if err := synthetic.Frame(k).WritePNG(path); err != nil {
				return err
			}
			count++
		}
		fmt.Printf("wrote %d PNG frames to %s\n", count, dir)
	}
	if opt.gifN > 0 {
		gifPath := opt.out + ".gif"
		if err := synthetic.WriteGIF(gifPath, opt.gifN); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", gifPath)
	}
	if trace != nil {
		if err := trace.WriteFile(opt.tracePath); err != nil {
			return err
		}
		fmt.Printf("wrote trace to %s\n%s", opt.tracePath, trace.Report().Summary())
	}
	return nil
}
