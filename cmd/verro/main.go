// Command verro sanitizes a video: it reads a .vvf container (and
// optionally a tracks CSV), runs the VERRO pipeline, and writes the
// synthetic video. Without a tracks file it runs the built-in
// detection+tracking preprocessing first.
//
// Usage:
//
//	verro -in video.vvf [-tracks gt.csv] -out synthetic.vvf
//	      [-f 0.1] [-eps 0] [-seed 1] [-png 0] [-laplace 0] [-no-opt]
//	      [-workers N]
//
// Either -f (flip probability) or -eps (total ε budget; converted to f
// using the number of key frames picked on a dry run) sets the privacy
// level; -f wins when both are given.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"verro"
	"verro/internal/par"
)

func main() {
	var (
		in      = flag.String("in", "", "input .vvf video (required)")
		tracksP = flag.String("tracks", "", "object tracks CSV (optional; detected when empty)")
		out     = flag.String("out", "synthetic.vvf", "output .vvf video")
		f       = flag.Float64("f", 0.1, "flip probability in (0,1]")
		eps     = flag.Float64("eps", 0, "total epsilon budget (overrides -f when > 0)")
		seed    = flag.Int64("seed", 1, "random seed")
		pngN    = flag.Int("png", 0, "dump every Nth synthetic frame as PNG next to -out (0 = none)")
		laplace = flag.Float64("laplace", 0, "epsilon' for Laplace noise on optimization statistics (0 = off)")
		noOpt   = flag.Bool("no-opt", false, "disable key-frame optimization (use all key frames)")
		multi   = flag.Bool("multitype", false, "sanitize each object class independently (Section 5)")
		gifN    = flag.Int("gif", 0, "also export an animated GIF sampling every Nth frame (0 = none)")
		workers = flag.Int("workers", 0, "worker-pool size for the hot CV loops (0 = VERRO_WORKERS or GOMAXPROCS; output is identical at any setting)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *workers > 0 {
		par.SetWorkers(*workers)
	}
	if err := run(*in, *tracksP, *out, *f, *eps, *seed, *pngN, *laplace, *noOpt, *multi, *gifN); err != nil {
		fmt.Fprintln(os.Stderr, "verro:", err)
		os.Exit(1)
	}
}

func run(in, tracksPath, out string, f, eps float64, seed int64, pngN int, laplace float64, noOpt, multi bool, gifN int) error {
	video, err := verro.ReadVideo(in)
	if err != nil {
		return err
	}
	fmt.Printf("input: %v\n", video)

	var tracks *verro.TrackSet
	if tracksPath != "" {
		tracks, err = verro.LoadTracks(tracksPath)
		if err != nil {
			return err
		}
		fmt.Printf("tracks: %d objects from %s\n", tracks.Len(), tracksPath)
	} else {
		fmt.Println("no tracks given; running detection + tracking...")
		tracks, err = verro.DetectAndTrack(video, verro.DefaultPipelineConfig())
		if err != nil {
			return err
		}
		fmt.Printf("tracked %d objects\n", tracks.Len())
	}

	cfg := verro.DefaultConfig()
	cfg.Seed = seed
	cfg.Phase1.F = f
	cfg.Phase1.Optimize = !noOpt
	cfg.Phase1.LaplaceEps = laplace
	if eps > 0 {
		// Convert the ε budget to a flip probability: dry-run Phase I at a
		// neutral f to learn how many key frames get picked, then invert.
		dry := cfg
		dry.Phase2.SkipRender = true
		dryRes, err := verro.Sanitize(video, tracks, dry)
		if err != nil {
			return fmt.Errorf("dry run: %w", err)
		}
		k := len(dryRes.Phase1.Picked)
		conv, err := verro.FlipProbability(k, eps)
		if err != nil {
			return err
		}
		cfg.Phase1.F = conv
		fmt.Printf("eps=%.3f over %d picked key frames -> f=%.4f\n", eps, k, conv)
	}

	var synthetic *verro.Video
	var synthTracks *verro.TrackSet
	if multi {
		res, err := verro.SanitizeMultiType(video, tracks, cfg)
		if err != nil {
			return err
		}
		synthetic = res.Synthetic
		synthTracks = res.SyntheticTracks
		for name, p1 := range res.PerClass {
			fmt.Printf("class %-11s eps=%.3f over %d picked key frames\n", name, p1.Epsilon, len(p1.Picked))
		}
	} else {
		res, err := verro.Sanitize(video, tracks, cfg)
		if err != nil {
			return err
		}
		synthetic = res.Synthetic
		synthTracks = res.SyntheticTracks
		fmt.Printf("sanitized: eps=%.3f, phase1=%v phase2=%v\n",
			res.Epsilon, res.Phase1Time.Round(1e6), res.Phase2Time.Round(1e6))
	}
	fmt.Printf("%d/%d objects retained\n", synthTracks.Len(), tracks.Len())

	n, err := verro.WriteVideo(out, synthetic)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%.2f MB)\n", out, float64(n)/(1<<20))

	if pngN > 0 {
		dir := out + "-frames"
		count := 0
		for k := 0; k < synthetic.Len(); k += pngN {
			path := filepath.Join(dir, fmt.Sprintf("frame%05d.png", k))
			if err := synthetic.Frame(k).WritePNG(path); err != nil {
				return err
			}
			count++
		}
		fmt.Printf("wrote %d PNG frames to %s\n", count, dir)
	}
	if gifN > 0 {
		gifPath := out + ".gif"
		if err := synthetic.WriteGIF(gifPath, gifN); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", gifPath)
	}
	return nil
}
