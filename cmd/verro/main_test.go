package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"verro"
	"verro/internal/obs"
)

// TestTraceGoldenSchema is the end-to-end contract for -trace: a seeded run
// over the scaled MOT01 benchmark (detection+tracking included, f high
// enough that random response demonstrably flips bits) must emit a span for
// every pipeline stage with its headline counter non-zero, and tracing must
// not change the published video by a single byte.
func TestTraceGoldenSchema(t *testing.T) {
	preset, err := verro.BenchmarkPreset("MOT01")
	if err != nil {
		t.Fatal(err)
	}
	g, err := verro.GenerateBenchmark(preset.Scaled(0.25))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.vvf")
	if _, err := verro.WriteVideo(in, g.Video); err != nil {
		t.Fatal(err)
	}

	tracePath := filepath.Join(dir, "trace.json")
	traced := options{
		in: in, out: filepath.Join(dir, "out-traced.vvf"),
		f: 0.5, seed: 3, tracePath: tracePath,
	}
	if err := run(traced); err != nil {
		t.Fatal(err)
	}
	untraced := options{
		in: in, out: filepath.Join(dir, "out-plain.vvf"),
		f: 0.5, seed: 3,
	}
	if err := run(untraced); err != nil {
		t.Fatal(err)
	}

	// Tracing must not perturb the seeded output.
	a, err := os.ReadFile(traced.out)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(untraced.out)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("-trace changed the published video bytes")
	}

	// The report must follow the documented schema.
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var rep obs.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("trace file is not a valid report: %v", err)
	}
	if rep.Name != "verro" || rep.Span == nil {
		t.Fatalf("report missing root span: %+v", rep)
	}
	if rep.DurationNS <= 0 {
		t.Errorf("non-positive run duration %d", rep.DurationNS)
	}
	if rep.Pool == nil || rep.Pool.ChunksDispatched == 0 || rep.Pool.Workers <= 0 {
		t.Errorf("missing or empty pool gauges: %+v", rep.Pool)
	}

	// Every pipeline stage must appear with its headline counter > 0.
	stages := []struct{ span, counter string }{
		{"detect", obs.CFramesDetected},
		{"track", obs.CFramesTracked},
		{"keyframes", obs.CKeyFrames},
		{"inpaint", obs.CBGFramesSampled},
		{"phase1", obs.CKeyFramesPicked},
		{"phase2", obs.CFramesRendered},
	}
	for _, s := range stages {
		sp := rep.Span.Find(s.span)
		if sp == nil {
			t.Errorf("stage span %q missing from trace", s.span)
			continue
		}
		if got := sp.Counters[s.counter]; got <= 0 {
			t.Errorf("stage %q counter %s = %d, want > 0", s.span, s.counter, got)
		}
	}
	// Random response at f=0.5 over this seeded benchmark must have
	// flipped bits, and the aggregated root counters must include them.
	if got := rep.Counters[obs.CRRBitsFlipped]; got <= 0 {
		t.Errorf("aggregate %s = %d, want > 0 at f=0.5", obs.CRRBitsFlipped, got)
	}
	if got := rep.Counters[obs.CDetections]; got <= 0 {
		t.Errorf("aggregate %s = %d, want > 0", obs.CDetections, got)
	}
}
