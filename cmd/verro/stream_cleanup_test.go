package main

import (
	"os"
	"path/filepath"
	"testing"

	"verro"
)

// TestRunStreamFailureLeavesNoPartialOutput: when the streaming pipeline
// fails mid-run (here: the input's compressed stream is truncated, so
// decoding dies partway through), the CLI must not leave a truncated
// synthetic.vvf behind — a half-written output is indistinguishable from a
// sanitized artifact to anything that picks it up later.
func TestRunStreamFailureLeavesNoPartialOutput(t *testing.T) {
	preset, err := verro.BenchmarkPreset("MOT01")
	if err != nil {
		t.Fatal(err)
	}
	g, err := verro.GenerateBenchmark(preset.Scaled(0.25))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	whole := filepath.Join(dir, "whole.vvf")
	if _, err := verro.WriteVideo(whole, g.Video); err != nil {
		t.Fatal(err)
	}
	tracksCSV := filepath.Join(dir, "tracks.csv")
	if err := g.Truth.SaveCSV(tracksCSV); err != nil {
		t.Fatal(err)
	}

	// Keep the header (so the source opens and the sink gets created) but
	// cut the payload, guaranteeing a decode failure after the output file
	// already exists.
	data, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(dir, "truncated.vvf")
	if err := os.WriteFile(truncated, data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "out.vvf")
	opt := options{
		in: truncated, tracksPath: tracksCSV, out: out,
		f: 0.1, seed: 1, window: 8,
	}
	if err := run(opt); err == nil {
		t.Fatal("run over a truncated input succeeded; want a decode error")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatalf("failed streaming run left a partial output behind (stat err: %v)", err)
	}

	// The same run over the intact input must still work — the cleanup path
	// must not have removed anything it shouldn't on success.
	opt.in = whole
	if err := run(opt); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("successful run left no output: %v", err)
	}
}
