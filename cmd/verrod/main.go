// Command verrod serves VERRO sanitization as a service: a long-running
// HTTP job server over the streaming pipeline, with window-granularity
// checkpointing so a killed server resumes half-finished videos on restart
// — the final .vvf is byte-identical to an uninterrupted run's.
//
// Usage:
//
//	verrod [-addr localhost:8077] [-data verrod-data]
//	       [-max-jobs 2] [-window 64] [-workers 0] [-no-resume]
//	       [-rate 0] [-burst 5]
//
// API (see DESIGN.md §2h for the full schemas):
//
//	POST /jobs              submit a job: JSON {"input","tracks","f","eps",
//	                        "seed","window","workers"}, or an
//	                        application/octet-stream upload with the same
//	                        parameters as query values. 429 when every
//	                        worker slot is taken, or (with -rate) when a
//	                        client submits faster than its token bucket
//	                        refills — the response carries Retry-After.
//	GET  /jobs              list all jobs
//	GET  /jobs/{id}         job status: state, checkpoint cursor, per-window
//	                        privacy ledger
//	GET  /jobs/{id}/events  live progress as Server-Sent Events
//	GET  /jobs/{id}/output  the final sanitized .vvf
//
// On startup verrod rescans its data directory and resumes every job a
// previous process left unfinished, from its last durable checkpoint.
// Stopping the server (SIGINT/SIGTERM) leaves running jobs checkpointed on
// disk; they resume on the next start.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"verro/internal/obs"
	"verro/internal/server"
	"verro/internal/store"
)

type options struct {
	addr     string
	data     string
	maxJobs  int
	window   int
	workers  int
	noResume bool
	rate     float64
	burst    int
}

func main() {
	var opt options
	flag.StringVar(&opt.addr, "addr", "localhost:8077", "listen address")
	flag.StringVar(&opt.data, "data", "verrod-data", "job store directory (manifests, staging, artifacts)")
	flag.IntVar(&opt.maxJobs, "max-jobs", 2, "concurrently executing jobs; submissions above this are rejected with 429")
	flag.IntVar(&opt.window, "window", 64, "default streaming window in frames (checkpoints land on these boundaries)")
	flag.IntVar(&opt.workers, "workers", 0, "default per-job worker-pool size (0 = GOMAXPROCS / VERRO_WORKERS)")
	flag.BoolVar(&opt.noResume, "no-resume", false, "do not resume jobs a previous process left unfinished")
	flag.Float64Var(&opt.rate, "rate", 0, "per-client POST /jobs submissions per second (0 = no rate limit)")
	flag.IntVar(&opt.burst, "burst", 5, "token-bucket depth for -rate: submissions a quiet client may burst")
	flag.Parse()
	if err := run(opt); err != nil {
		fmt.Fprintln(os.Stderr, "verrod:", err)
		os.Exit(1)
	}
}

func run(opt options) error {
	fs, err := store.NewFS(opt.data)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Store:   fs,
		MaxJobs: opt.maxJobs,
		Window:  opt.window,
		Workers: opt.workers,
		Rate:    opt.rate,
		Burst:   opt.burst,
		// The limiter's clock is injected at the process edge: wall time is
		// exactly what a rate limit is defined over, and keeping time.Now
		// out of internal/server keeps the service testable on a fake
		// clock. Passing the function (never calling it here) also keeps
		// this binary honest under the walltime lint — no clock *read*
		// happens outside the limiter it parameterizes.
		Now: time.Now,
	})
	if err != nil {
		return err
	}
	if !opt.noResume {
		n, err := srv.ResumeInterrupted()
		if err != nil {
			return err
		}
		if n > 0 {
			fmt.Printf("verrod: resuming %d interrupted job(s) from %s\n", n, opt.data)
		}
	}

	// The listen happens synchronously so a bad address fails the start
	// instead of surfacing on the first request; the server itself carries
	// the hardened timeouts (slowloris header deadline, no write deadline —
	// SSE streams stay open as long as the job runs).
	hs := obs.NewServer(opt.addr, srv.Handler())
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	fmt.Printf("verrod: serving on http://%s (data %s, %d job slots)\n", ln.Addr(), opt.data, opt.maxJobs)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		fmt.Println("verrod: shutting down; checkpointed jobs resume on next start")
		// Close, not Shutdown: SSE subscribers hold connections open for the
		// life of their job, so a graceful drain would never finish. Running
		// jobs keep their durable checkpoints either way.
		hs.Close()
	}()

	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
