package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"verro/internal/lint"
	"verro/internal/lint/absint"
	"verro/internal/lint/flow"
)

// The absintdemo fixture plants a flip probability of 1.5 and an ε of
// -0.25 — values the interval interpreter proves out of range. It is the
// acceptance check for the assembled -absint driver: loader, interval
// engine, project policy, reporting.

func TestRunAbsintCatchesSeededViolation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-classic=false", "-flow=false", "-absint", "-json", "./testdata/absintdemo"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "probrange" {
			t.Errorf("analyzer = %q, want probrange (%+v)", d.Analyzer, d)
		}
		if d.File == "" || d.Line == 0 || d.Col == 0 {
			t.Errorf("diagnostic missing file:line:col: %+v", d)
		}
		if !strings.HasSuffix(d.File, "testdata/absintdemo/main.go") {
			t.Errorf("unexpected file %q", d.File)
		}
	}
	var sawFlip, sawEps bool
	for _, d := range diags {
		if strings.Contains(d.Message, "provably outside [0, 1]") {
			sawFlip = true
		}
		if strings.Contains(d.Message, "provably negative") {
			sawEps = true
		}
	}
	if !sawFlip || !sawEps {
		t.Errorf("missing expected messages (flip=%v, eps=%v): %+v", sawFlip, sawEps, diags)
	}
}

// Without -absint the planted violation must pass: the interval pass is
// opt-in and the demo is clean under the classic and flow suites.
func TestRunAbsintOffSkipsViolation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./testdata/absintdemo"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRunAbsintFixturePackagesFail(t *testing.T) {
	for _, dir := range []string{
		"../../internal/lint/absint/testdata/probrange",
		"../../internal/lint/absint/testdata/divzero",
		"../../internal/lint/absint/testdata/idxbound",
	} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-classic=false", "-flow=false", "-absint", dir}, &stdout, &stderr); code != 1 {
			t.Errorf("%s: exit = %d, want 1\nstdout: %s\nstderr: %s", dir, code, stdout.String(), stderr.String())
		}
	}
}

func TestRunListIncludesAbsintAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"probrange", "divzero", "idxbound"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestAnalyzerNamesUniqueAcrossSuites guards the shared lint-baseline.json:
// the baseline diff keys on (file, analyzer, message), so a name collision
// between the classic, flow, and interval suites would let one pass's
// baselined finding absorb another pass's fresh one.
func TestAnalyzerNamesUniqueAcrossSuites(t *testing.T) {
	seen := map[string]string{}
	record := func(name, suite string) {
		if prev, ok := seen[name]; ok {
			t.Errorf("analyzer name %q used by both %s and %s", name, prev, suite)
		}
		seen[name] = suite
	}
	for _, a := range lint.ProjectAnalyzers() {
		record(a.Name, "classic")
	}
	for _, a := range flow.ProjectAnalyzers() {
		record(a.Name, "flow")
	}
	for _, a := range absint.ProjectAnalyzers() {
		record(a.Name, "absint")
	}
}
