package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunCacheMatchesPlain runs the seeded-leak fixture through the
// incremental driver twice — cold, then warm from the fact cache — and
// checks both passes emit exactly the plain driver's diagnostic stream
// with the same exit code.
func TestRunCacheMatchesPlain(t *testing.T) {
	var plain, plainErr bytes.Buffer
	if code := run([]string{"./testdata/leakdemo"}, &plain, &plainErr); code != 1 {
		t.Fatalf("plain exit = %d, want 1\nstderr: %s", code, plainErr.String())
	}
	cacheDir := t.TempDir()
	for _, pass := range []string{"cold", "warm"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-cache", cacheDir, "./testdata/leakdemo"}, &stdout, &stderr)
		if code != 1 {
			t.Fatalf("%s cache run exit = %d, want 1\nstderr: %s", pass, code, stderr.String())
		}
		if stdout.String() != plain.String() {
			t.Errorf("%s cache run diverges from plain driver:\n%s\nplain:\n%s",
				pass, stdout.String(), plain.String())
		}
	}
}

// TestRunBenchWritesReport drives -bench end to end: the timing report
// lands on disk with a fully warm second pass, and the diagnostics still
// fail the run.
func TestRunBenchWritesReport(t *testing.T) {
	benchFile := filepath.Join(t.TempDir(), "BENCH_lint.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-cache", t.TempDir(), "-bench", benchFile, "./testdata/leakdemo"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(benchFile)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		ColdSeconds float64 `json:"cold_seconds"`
		WarmSeconds float64 `json:"warm_seconds"`
		Packages    int     `json:"packages"`
		WarmHits    int     `json:"warm_cache_hits"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Packages != 1 || rep.WarmHits != 1 {
		t.Errorf("warm pass should hit the cache for the single package: %+v", rep)
	}
	if rep.ColdSeconds <= 0 {
		t.Errorf("cold timing missing: %+v", rep)
	}
	if !strings.Contains(stderr.String(), "cache hits") {
		t.Errorf("stderr missing the timing summary: %s", stderr.String())
	}
}

func TestRunBenchRequiresCache(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bench", "out.json"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-bench requires -cache") {
		t.Errorf("stderr missing usage error: %s", stderr.String())
	}
}
