package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The leakdemo fixture is a deliberately planted end-to-end leak: a
// cmd-style binary printing a raw detection's fields to stdout. It is the
// acceptance check that the assembled driver — loader, flow engine,
// project policy — actually catches the thing the suite exists to catch.

func TestRunFlowCatchesSeededLeak(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./testdata/leakdemo"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "(privleak)") {
		t.Errorf("stdout missing privleak diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "raw object data reaches console output (fmt.Printf)") {
		t.Errorf("stdout missing the fmt sink message:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "privleak") {
		t.Errorf("summary line missing per-analyzer count: %s", stderr.String())
	}
}

func TestRunFlowDisabledSkipsLeak(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flow=false", "./testdata/leakdemo"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestRunBaselineAbsorbsKnownFindings(t *testing.T) {
	// Snapshot the current findings as a baseline...
	var snap, snapErr bytes.Buffer
	if code := run([]string{"-json", "./testdata/leakdemo"}, &snap, &snapErr); code != 1 {
		t.Fatalf("snapshot run: exit = %d, want 1 (stderr: %s)", code, snapErr.String())
	}
	var recorded []jsonDiag
	if err := json.Unmarshal(snap.Bytes(), &recorded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(recorded) == 0 {
		t.Fatal("snapshot run found nothing; the seeded leak is gone")
	}
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(baseline, snap.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// ...a rerun against it is clean...
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", baseline, "./testdata/leakdemo"}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run: exit = %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "baselined") {
		t.Errorf("summary does not mention absorbed findings: %s", stderr.String())
	}

	// ...and an empty baseline still fails on the same findings.
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte("[]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", empty, "./testdata/leakdemo"}, &stdout, &stderr); code != 1 {
		t.Fatalf("empty-baseline run: exit = %d, want 1", code)
	}
}

func TestRunBaselineMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", "no-such-baseline.json", "./testdata/leakdemo"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestRunListIncludesFlowAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"privleak", "epsconsist", "epshttp", "capturerace"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, stdout.String())
		}
	}
}
