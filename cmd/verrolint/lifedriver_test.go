package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"verro/internal/lint"
	"verro/internal/lint/absint"
	"verro/internal/lint/flow"
	"verro/internal/lint/life"
	"verro/internal/lint/perf"
)

// The lifedemo fixture plants one finding per lifecycle analyzer: a
// diverging goroutine (goleak), a leaked file handle (mustclose), a send
// under a held mutex (lockorder), and a severed request context
// (ctxflow). It is the acceptance check for the assembled -life driver.

func lifeDemoDiags(t *testing.T, extra ...string) []jsonDiag {
	t.Helper()
	args := append([]string{"-classic=false", "-flow=false", "-life", "-json"}, extra...)
	args = append(args, "./testdata/lifedemo")
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout.String())
	}
	return diags
}

func TestRunLifeCatchesSeededFindings(t *testing.T) {
	diags := lifeDemoDiags(t)
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
		if d.File == "" || d.Line == 0 || d.Col == 0 {
			t.Errorf("diagnostic missing file:line:col: %+v", d)
		}
	}
	for _, want := range []string{"goleak", "mustclose", "lockorder", "ctxflow"} {
		if byAnalyzer[want] != 1 {
			t.Errorf("per-analyzer counts = %v, want exactly one %s", byAnalyzer, want)
		}
	}
}

// Without -life the seeded findings must pass: the lifecycle suite is
// opt-in and the fixture is clean under every other suite.
func TestRunLifeOffSkipsFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-classic=false", "-flow=false", "./testdata/lifedemo"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestRunLifeCacheMatchesPlain runs the life fixture through the
// incremental driver twice — cold, then warm — and checks both passes
// emit byte-for-byte the plain driver's diagnostic stream.
func TestRunLifeCacheMatchesPlain(t *testing.T) {
	var plain, plainErr bytes.Buffer
	if code := run([]string{"-classic=false", "-flow=false", "-life", "./testdata/lifedemo"}, &plain, &plainErr); code != 1 {
		t.Fatalf("plain exit = %d, want 1\nstderr: %s", code, plainErr.String())
	}
	cacheDir := t.TempDir()
	for _, pass := range []string{"cold", "warm"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-classic=false", "-flow=false", "-life", "-cache", cacheDir, "./testdata/lifedemo"}, &stdout, &stderr)
		if code != 1 {
			t.Fatalf("%s cache run exit = %d, want 1\nstderr: %s", pass, code, stderr.String())
		}
		if stdout.String() != plain.String() {
			t.Errorf("%s cache run diverges from plain driver:\n%s\nplain:\n%s",
				pass, stdout.String(), plain.String())
		}
	}
}

// TestRunLifeAllSuppressed: the allow twin carries a justified
// //lint:allow on every seeded line, so the run exits 0 — and the
// always-on stale-allow pass must not flag any of the directives.
func TestRunLifeAllSuppressed(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-classic=false", "-flow=false", "-life", "./testdata/lifedemo/allow"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("all-suppressed run produced output:\n%s", stdout.String())
	}
}

// Without -life the allows in the twin name analyzers that never ran, so
// the stale-allow pass must NOT flag them: an unverifiable allow is not a
// stale one.
func TestRunLifeAllowsNotStaleWithoutLife(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-classic=false", "-flow=false", "-json", "./testdata/lifedemo/allow"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (allows for suites that did not run are unverifiable, not stale)\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
}

// TestLifeAnalyzerNamesUniqueAcrossSuites extends the shared-baseline
// collision guard over every suite, now including the lifecycle one.
func TestLifeAnalyzerNamesUniqueAcrossSuites(t *testing.T) {
	seen := map[string]string{}
	record := func(name, suite string) {
		if prev, ok := seen[name]; ok {
			t.Errorf("analyzer name %q used by both %s and %s", name, prev, suite)
		}
		seen[name] = suite
	}
	for _, a := range lint.ProjectAnalyzers() {
		record(a.Name, "classic")
	}
	for _, a := range flow.ProjectAnalyzers() {
		record(a.Name, "flow")
	}
	for _, a := range absint.ProjectAnalyzers() {
		record(a.Name, "absint")
	}
	for _, a := range perf.ProjectAnalyzers() {
		record(a.Name, "perf")
	}
	record(perf.NewProjectBCE().Name, "perf-bce")
	for _, a := range life.ProjectAnalyzers() {
		record(a.Name, "life")
	}
	record(lint.StaleAllowsName, "staleallow")
}
