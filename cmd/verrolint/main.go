// Command verrolint runs VERRO's static-analysis suite (internal/lint) over
// the repository: five analyzers that mechanically enforce the project's
// determinism, privacy-math, and error-handling invariants at make-check
// time instead of after an equivalence test catches a violation.
//
// Usage:
//
//	verrolint [-json] [-tests] [-list] [pattern ...]
//
// Patterns are package directories; a trailing "/..." walks recursively
// ("./..." is the default). Exit status is 0 when clean, 1 when any
// diagnostic fired, 2 on load or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"verro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json wire form of one diagnostic, the stable shape CI
// can diff across PRs.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("verrolint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	jsonOut := fl.Bool("json", false, "emit diagnostics as a JSON array (file, line, col, analyzer, message)")
	tests := fl.Bool("tests", false, "also lint _test.go files")
	list := fl.Bool("list", false, "list the analyzers and their invariants, then exit")
	if err := fl.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.ProjectAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fl.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	for _, p := range patterns {
		expanded, err := expand(p, *tests)
		if err != nil {
			fmt.Fprintf(stderr, "verrolint: %v\n", err)
			return 2
		}
		dirs = append(dirs, expanded...)
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "verrolint: no packages matched")
		return 2
	}

	loader := lint.NewLoader()
	loader.IncludeTests = *tests
	var diags []lint.Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(stderr, "verrolint: %v\n", err)
			return 2
		}
		diags = append(diags, lint.Run(pkg, analyzers...)...)
	}

	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     filepath.ToSlash(d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "verrolint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "verrolint: %d diagnostic(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// expand resolves one pattern to package directories. "dir/..." walks dir
// recursively; anything else names a single directory. Walks skip testdata
// (lint fixtures deliberately violate the invariants), hidden directories,
// and directories with no Go files.
func expand(pattern string, includeTests bool) ([]string, error) {
	root, recursive := strings.CutSuffix(pattern, "...")
	if recursive {
		root = strings.TrimSuffix(root, "/")
	}
	if root == "" {
		root = "."
	}
	if !recursive {
		return []string{root}, nil
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path, includeTests) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string, includeTests bool) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		return true
	}
	return false
}
