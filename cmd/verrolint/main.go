// Command verrolint runs VERRO's static-analysis suite over the repository:
// the classic single-expression analyzers (internal/lint) that mechanically
// enforce determinism, privacy-math, and error-handling invariants, plus
// the dataflow analyzers (internal/lint/flow) that prove raw object data
// never reaches a published artifact unsanitized, privacy parameters come
// from validated configs, and worker-pool closures stay race-free, plus —
// behind -absint — the interval abstract interpreters (internal/lint/absint)
// that prove numeric invariants by value: probabilities in [0,1], ε ≥ 0,
// nonzero divisors, in-bounds kernel indexing — plus, behind -perf, the
// hot-path performance suite (internal/lint/perf): no allocations, no
// escapes, and no uneliminable bounds checks inside the per-frame kernel
// loops and worker-pool closures — plus, behind -life, the lifecycle
// suite (internal/lint/life): goroutines spawned in the service arc
// terminate, acquired resources are released on every path, locks are
// rank-consistent and never held across a park, and request handlers stay
// cancellable.
//
// Every run also reports stale //lint:allow directives: a directive naming
// an analyzer that ran but suppressed nothing has rotted and must be
// removed (suppress a deliberately speculative one with
// //lint:allow staleallow).
//
// Usage:
//
//	verrolint [-json] [-tests] [-list] [-classic] [-flow] [-absint] [-perf] [-life] [-baseline file] [-cache dir [-bench file]] [pattern ...]
//
// Patterns are package directories; a trailing "/..." walks recursively
// ("./..." is the default). The flow analyzers see every matched package as
// one program, so cross-package flows are visible whenever both ends are in
// the pattern set. With -baseline, diagnostics recorded in the given -json
// snapshot are tolerated and only new ones fail the run — the ratchet for
// adopting a new analyzer on a codebase with known findings.
//
// With -cache, the incremental driver (internal/lint/incr) analyzes
// packages in parallel and persists per-package facts — diagnostics plus
// flow/interval summaries — keyed by content hashes chained through the
// import graph, so unchanged packages replay without re-type-checking.
// The diagnostic stream is identical to the plain driver's. -bench (which
// requires -cache) times a cold run then a warm run and writes the JSON
// timing report to the given file.
//
// Exit status is 0 when clean, 1 when any (new) diagnostic fired, 2 on
// load or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"verro/internal/lint"
	"verro/internal/lint/absint"
	"verro/internal/lint/flow"
	"verro/internal/lint/incr"
	"verro/internal/lint/life"
	"verro/internal/lint/perf"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json wire form of one diagnostic, the stable shape CI
// can diff across PRs and the schema of -baseline files.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("verrolint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	jsonOut := fl.Bool("json", false, "emit diagnostics as a JSON array (file, line, col, analyzer, message)")
	tests := fl.Bool("tests", false, "also lint _test.go files")
	list := fl.Bool("list", false, "list the analyzers and their invariants, then exit")
	classic := fl.Bool("classic", true, "run the classic single-expression analyzers")
	flowOn := fl.Bool("flow", true, "run the dataflow analyzers (privleak, epsconsist, capturerace)")
	absintOn := fl.Bool("absint", false, "run the interval analyzers (probrange, divzero, idxbound)")
	perfOn := fl.Bool("perf", false, "run the hot-path performance analyzers (hotalloc, hotescape, bce)")
	lifeOn := fl.Bool("life", false, "run the lifecycle analyzers (goleak, mustclose, lockorder, ctxflow)")
	baseline := fl.String("baseline", "", "JSON baseline file (a prior -json run); only diagnostics not in it fail")
	cache := fl.String("cache", "", "fact-cache directory: analyze incrementally and in parallel, persisting per-package facts")
	bench := fl.String("bench", "", "with -cache: time a cold then a warm run and write the JSON timing report to this file")
	if err := fl.Parse(args); err != nil {
		return 2
	}
	if *bench != "" && *cache == "" {
		fmt.Fprintln(stderr, "verrolint: -bench requires -cache")
		return 2
	}

	analyzers := lint.ProjectAnalyzers()
	flowAnalyzers := flow.ProjectAnalyzers()
	absintAnalyzers := absint.ProjectAnalyzers()
	perfAnalyzers := perf.ProjectAnalyzers()
	bce := perf.NewProjectBCE()
	lifeAnalyzers := life.ProjectAnalyzers()
	lifeCfg := life.ProjectConfig()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		for _, a := range flowAnalyzers {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		for _, a := range absintAnalyzers {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		for _, a := range perfAnalyzers {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-11s %s\n", bce.Name, bce.Doc)
		for _, a := range lifeAnalyzers {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-11s %s\n", lint.StaleAllowsName, "//lint:allow directives must still suppress a diagnostic")
		return 0
	}

	patterns := fl.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	for _, p := range patterns {
		expanded, err := expand(p, *tests)
		if err != nil {
			fmt.Fprintf(stderr, "verrolint: %v\n", err)
			return 2
		}
		dirs = append(dirs, expanded...)
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "verrolint: no packages matched")
		return 2
	}

	var diags []lint.Diagnostic
	if *cache != "" {
		opts := incr.Options{Dirs: dirs, CacheDir: *cache, ReadCache: true, IncludeTests: *tests}
		if *classic {
			opts.Classic = analyzers
		}
		if *flowOn {
			opts.Flow = flowAnalyzers
		}
		if *absintOn {
			opts.Absint = absintAnalyzers
		}
		if *perfOn {
			opts.Absint = append(opts.Absint, bce)
			opts.Perf = perfAnalyzers
			opts.PerfCfg = perf.ProjectConfig()
		}
		if *lifeOn {
			opts.Life = lifeAnalyzers
			opts.LifeCfg = lifeCfg
		}
		opts.StaleAllows = true
		var err error
		if *bench != "" {
			diags, err = runBench(opts, *bench, stderr)
		} else {
			diags, _, err = incr.Run(opts)
		}
		if err != nil {
			fmt.Fprintf(stderr, "verrolint: %v\n", err)
			return 2
		}
	} else {
		loader := lint.NewLoader()
		loader.IncludeTests = *tests
		var pkgs []*lint.Package
		for _, dir := range dirs {
			pkg, err := loader.Load(dir)
			if err != nil {
				fmt.Fprintf(stderr, "verrolint: %v\n", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
		if *classic {
			for _, pkg := range pkgs {
				diags = append(diags, lint.Run(pkg, analyzers...)...)
			}
		}
		if *flowOn {
			diags = append(diags, flow.Run(pkgs, flowAnalyzers...)...)
		}
		var absintRun []*absint.Analyzer
		if *absintOn {
			absintRun = append(absintRun, absintAnalyzers...)
		}
		if *perfOn {
			absintRun = append(absintRun, bce)
		}
		if len(absintRun) > 0 {
			diags = append(diags, absint.Run(pkgs, absintRun...)...)
		}
		if *perfOn {
			diags = append(diags, perf.Run(pkgs, perf.ProjectConfig(), perfAnalyzers...)...)
		}
		if *lifeOn {
			diags = append(diags, life.Run(pkgs, lifeCfg, lifeAnalyzers...)...)
		}
		// Stale-allow detection runs last so every suite's suppressions
		// have been recorded against the shared per-package allow index.
		for _, pkg := range pkgs {
			ran := map[string]bool{}
			if *classic {
				for _, a := range analyzers {
					ran[a.Name] = true
				}
			}
			if *flowOn {
				for _, a := range flowAnalyzers {
					ran[a.Name] = true
				}
			}
			for _, a := range absintRun {
				if a.Match == nil || a.Match(pkg.Path) {
					ran[a.Name] = true
				}
			}
			if *perfOn {
				for _, a := range perfAnalyzers {
					ran[a.Name] = true
				}
			}
			if *lifeOn && lifeCfg.Service(pkg.Path) {
				for _, a := range lifeAnalyzers {
					ran[a.Name] = true
				}
			}
			diags = append(diags, pkg.Allow().StaleAllows(ran)...)
		}
		lint.Sort(diags)
	}

	baselined := 0
	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "verrolint: %v\n", err)
			return 2
		}
		diags, baselined = diffBaseline(diags, base)
	}

	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     filepath.ToSlash(d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "verrolint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "verrolint: %d diagnostic(s)%s%s\n",
				len(diags), analyzerCounts(diags), baselineNote(baselined))
		}
		return 1
	}
	if baselined > 0 && !*jsonOut {
		fmt.Fprintf(stderr, "verrolint: clean%s\n", baselineNote(baselined))
	}
	return 0
}

// benchReport is the schema of the -bench timing file (BENCH_lint.json in
// CI): wall time of a cold incremental run against a warm replay of the
// same package set.
type benchReport struct {
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	Speedup     float64 `json:"speedup"`
	Packages    int     `json:"packages"`
	WarmHits    int     `json:"warm_cache_hits"`
}

// runBench populates the cache cold (ignoring existing entries), replays it
// warm, writes the timing report, and returns the warm run's diagnostics —
// which double as a live equivalence check, since the warm stream must
// match what the cold run just computed.
func runBench(opts incr.Options, path string, stderr io.Writer) ([]lint.Diagnostic, error) {
	cold := opts
	cold.ReadCache = false
	start := time.Now() //lint:allow walltime benchmarking wall time is the point here
	if _, _, err := incr.Run(cold); err != nil {
		return nil, err
	}
	coldDur := time.Since(start) //lint:allow walltime benchmarking wall time is the point here

	start = time.Now() //lint:allow walltime benchmarking wall time is the point here
	diags, stats, err := incr.Run(opts)
	if err != nil {
		return nil, err
	}
	warmDur := time.Since(start) //lint:allow walltime benchmarking wall time is the point here

	rep := benchReport{
		ColdSeconds: coldDur.Seconds(),
		WarmSeconds: warmDur.Seconds(),
		Packages:    stats.Packages,
		WarmHits:    stats.CacheHits,
	}
	if warmDur > 0 {
		rep.Speedup = coldDur.Seconds() / warmDur.Seconds()
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	fmt.Fprintf(stderr, "verrolint: cold %.2fs, warm %.2fs (%.1fx, %d/%d cache hits) -> %s\n",
		rep.ColdSeconds, rep.WarmSeconds, rep.Speedup, stats.CacheHits, stats.Packages, path)
	return diags, nil
}

// analyzerCounts renders the per-analyzer breakdown of the summary line,
// e.g. " (detrand 1, privleak 2)".
func analyzerCounts(diags []lint.Diagnostic) string {
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s %d", name, counts[name]))
	}
	return " (" + strings.Join(parts, ", ") + ")"
}

func baselineNote(baselined int) string {
	if baselined == 0 {
		return ""
	}
	return fmt.Sprintf("; %d baselined", baselined)
}

func loadBaseline(path string) ([]jsonDiag, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base []jsonDiag
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	return base, nil
}

// diffBaseline removes diagnostics recorded in the baseline and reports how
// many were absorbed. Matching is a multiset on (file, analyzer, message) —
// deliberately ignoring line and column, so unrelated edits that shift a
// known finding do not resurface it, while a second instance of the same
// finding in the same file does fail.
func diffBaseline(diags []lint.Diagnostic, base []jsonDiag) (fresh []lint.Diagnostic, baselined int) {
	remaining := map[string]int{}
	for _, b := range base {
		remaining[b.File+"\x00"+b.Analyzer+"\x00"+b.Message]++
	}
	for _, d := range diags {
		key := filepath.ToSlash(d.Pos.Filename) + "\x00" + d.Analyzer + "\x00" + d.Message
		if remaining[key] > 0 {
			remaining[key]--
			baselined++
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, baselined
}

// expand resolves one pattern to package directories. "dir/..." walks dir
// recursively; anything else names a single directory. Walks skip testdata
// (lint fixtures deliberately violate the invariants), hidden directories,
// and directories with no Go files.
func expand(pattern string, includeTests bool) ([]string, error) {
	root, recursive := strings.CutSuffix(pattern, "...")
	if recursive {
		root = strings.TrimSuffix(root, "/")
	}
	if root == "" {
		root = "."
	}
	if !recursive {
		return []string{root}, nil
	}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path, includeTests) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string, includeTests bool) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		return true
	}
	return false
}
