package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const dirtySrc = `package dirty

import "math/rand"

func Draw() int {
	return rand.Intn(6)
}
`

const cleanSrc = `package clean

import "math/rand"

func Draw(rng *rand.Rand) int {
	return rng.Intn(6)
}
`

func TestRunCleanDir(t *testing.T) {
	root := writeTree(t, map[string]string{"go.mod": "module tmpmod\n", "clean.go": cleanSrc})
	var out, errb bytes.Buffer
	if code := run([]string{root}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %s, stdout = %s", code, errb.String(), out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run should print nothing, got %q", out.String())
	}
}

func TestRunDirtyDirTextMode(t *testing.T) {
	root := writeTree(t, map[string]string{"go.mod": "module tmpmod\n", "dirty.go": dirtySrc})
	var out, errb bytes.Buffer
	if code := run([]string{root}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "dirty.go:6:9:") || !strings.Contains(out.String(), "(detrand)") {
		t.Fatalf("diagnostic line missing position or analyzer: %q", out.String())
	}
	if !strings.Contains(errb.String(), "1 diagnostic(s)") {
		t.Fatalf("summary missing: %q", errb.String())
	}
}

func TestRunJSONMode(t *testing.T) {
	root := writeTree(t, map[string]string{"go.mod": "module tmpmod\n", "dirty.go": dirtySrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-json", root}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr %s)", code, errb.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("bad JSON %q: %v", out.String(), err)
	}
	if len(diags) != 1 {
		t.Fatalf("diags = %+v, want exactly 1", diags)
	}
	d := diags[0]
	if d.Analyzer != "detrand" || d.Line != 6 || d.Col != 9 || !strings.HasSuffix(d.File, "dirty.go") {
		t.Fatalf("diag = %+v", d)
	}
	if !strings.Contains(d.Message, "math/rand.Intn") {
		t.Fatalf("message = %q", d.Message)
	}
}

func TestRunRecursiveSkipsTestdata(t *testing.T) {
	// The violation sits under testdata/, which a "..." walk must skip —
	// lint fixtures violate the invariants on purpose.
	root := writeTree(t, map[string]string{
		"go.mod":                "module tmpmod\n",
		"clean.go":              cleanSrc,
		"sub/testdata/dirty.go": dirtySrc,
		"sub/clean.go":          strings.Replace(cleanSrc, "package clean", "package sub", 1),
		".hidden/dirty.go":      dirtySrc,
		"_underscore/dirty.go":  dirtySrc,
	})
	var out, errb bytes.Buffer
	if code := run([]string{filepath.Join(root, "...")}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stdout %q stderr %q", code, out.String(), errb.String())
	}
}

func TestRunJSONEmptyArray(t *testing.T) {
	// A clean -json run must still emit a valid (empty) array so CI can
	// diff findings across PRs without special-casing.
	root := writeTree(t, map[string]string{"go.mod": "module tmpmod\n", "clean.go": cleanSrc})
	var out, errb bytes.Buffer
	if code := run([]string{"-json", root}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr %s", code, errb.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("bad JSON %q: %v", out.String(), err)
	}
	if diags == nil || len(diags) != 0 {
		t.Fatalf("want empty non-null array, got %q", out.String())
	}
}

func TestRunListMode(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, name := range []string{"detrand", "walltime", "maporder", "floateq", "panicfree"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list output missing %s: %q", name, out.String())
		}
	}
}

func TestRunBadDir(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{filepath.Join(t.TempDir(), "nope")}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
