package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"verro/internal/lint"
	"verro/internal/lint/absint"
	"verro/internal/lint/flow"
	"verro/internal/lint/perf"
)

// The perfdemo fixture plants one finding per perf analyzer inside a
// par.For closure (a hot root under the project policy even outside the
// kernel packages): a per-iteration make (hotalloc), a per-iteration
// closure (hotescape), and data-dependent indexing the interval prover
// cannot eliminate (bce). It is the acceptance check for the assembled
// -perf driver: hot-set construction, the interval cross-feed, reporting.

func perfDemoDiags(t *testing.T, extra ...string) []jsonDiag {
	t.Helper()
	args := append([]string{"-classic=false", "-flow=false", "-perf", "-json"}, extra...)
	args = append(args, "./testdata/perfdemo")
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout.String())
	}
	return diags
}

func TestRunPerfCatchesSeededFindings(t *testing.T) {
	diags := perfDemoDiags(t)
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
		if d.File == "" || d.Line == 0 || d.Col == 0 {
			t.Errorf("diagnostic missing file:line:col: %+v", d)
		}
	}
	if byAnalyzer["hotalloc"] != 1 || byAnalyzer["hotescape"] != 1 || byAnalyzer["bce"] == 0 {
		t.Errorf("per-analyzer counts = %v, want hotalloc=1 hotescape=1 bce>=1", byAnalyzer)
	}
}

// Without -perf the seeded findings must pass: the perf suite is opt-in
// and the fixture is clean under every other suite.
func TestRunPerfOffSkipsFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-classic=false", "-flow=false", "./testdata/perfdemo"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestRunPerfCacheMatchesPlain runs the perf fixture through the
// incremental driver twice — cold, then warm — and checks both passes
// emit byte-for-byte the plain driver's diagnostic stream.
func TestRunPerfCacheMatchesPlain(t *testing.T) {
	var plain, plainErr bytes.Buffer
	if code := run([]string{"-classic=false", "-flow=false", "-perf", "./testdata/perfdemo"}, &plain, &plainErr); code != 1 {
		t.Fatalf("plain exit = %d, want 1\nstderr: %s", code, plainErr.String())
	}
	cacheDir := t.TempDir()
	for _, pass := range []string{"cold", "warm"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-classic=false", "-flow=false", "-perf", "-cache", cacheDir, "./testdata/perfdemo"}, &stdout, &stderr)
		if code != 1 {
			t.Fatalf("%s cache run exit = %d, want 1\nstderr: %s", pass, code, stderr.String())
		}
		if stdout.String() != plain.String() {
			t.Errorf("%s cache run diverges from plain driver:\n%s\nplain:\n%s",
				pass, stdout.String(), plain.String())
		}
	}
}

// TestRunPerfBenchMatchesPlain drives -bench with -perf: the cold and
// warm passes inside one -bench run must still produce the plain
// diagnostic stream (byte-stable), and the timing report must land.
func TestRunPerfBenchMatchesPlain(t *testing.T) {
	var plain, plainErr bytes.Buffer
	if code := run([]string{"-classic=false", "-flow=false", "-perf", "./testdata/perfdemo"}, &plain, &plainErr); code != 1 {
		t.Fatalf("plain exit = %d, want 1\nstderr: %s", code, plainErr.String())
	}
	benchFile := filepath.Join(t.TempDir(), "BENCH_lint.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-classic=false", "-flow=false", "-perf", "-cache", t.TempDir(), "-bench", benchFile, "./testdata/perfdemo"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("bench exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if stdout.String() != plain.String() {
		t.Errorf("bench run diagnostics diverge from plain driver:\n%s\nplain:\n%s",
			stdout.String(), plain.String())
	}
	if _, err := os.Stat(benchFile); err != nil {
		t.Errorf("bench report not written: %v", err)
	}
}

// TestRunPerfBaselineAbsorbs writes the fixture's findings as a baseline
// and re-runs against it: every diagnostic is absorbed, so the run exits 0
// with no output. A baseline plus the cache must behave identically.
func TestRunPerfBaselineAbsorbs(t *testing.T) {
	diags := perfDemoDiags(t)
	data, err := json.Marshal(diags)
	if err != nil {
		t.Fatal(err)
	}
	baseline := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(baseline, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()
	for _, extra := range [][]string{nil, {"-cache", cacheDir}, {"-cache", cacheDir}} {
		args := append([]string{"-classic=false", "-flow=false", "-perf", "-baseline", baseline}, extra...)
		args = append(args, "./testdata/perfdemo")
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("baselined run (extra=%v) exit = %d, want 0\nstdout: %s\nstderr: %s",
				extra, code, stdout.String(), stderr.String())
		}
		if stdout.Len() != 0 {
			t.Errorf("baselined run (extra=%v) produced output:\n%s", extra, stdout.String())
		}
	}
}

// TestRunPerfAllSuppressed: the perfallowdemo twin carries a justified
// //lint:allow on every seeded line, so the run exits 0 — and the
// always-on stale-allow pass must not flag any of the directives, since
// each still suppresses a live diagnostic.
func TestRunPerfAllSuppressed(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-classic=false", "-flow=false", "-perf", "./testdata/perfallowdemo"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("all-suppressed run produced output:\n%s", stdout.String())
	}
}

// Without -perf the allows in perfallowdemo name analyzers that never
// ran, so the stale-allow pass must NOT flag them (an unverifiable allow
// is not a stale one — only directives whose analyzer ran and found
// nothing to suppress are). The run exits clean.
func TestRunPerfAllowsNotStaleWithoutPerf(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-classic=false", "-flow=false", "-json", "./testdata/perfallowdemo"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (allows for suites that did not run are unverifiable, not stale)\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
}

// TestPerfAnalyzerNamesUniqueAcrossSuites extends the shared-baseline
// collision guard to the perf suite, the bce interval analyzer, and the
// stale-allow pseudo-analyzer.
func TestPerfAnalyzerNamesUniqueAcrossSuites(t *testing.T) {
	seen := map[string]string{}
	record := func(name, suite string) {
		if prev, ok := seen[name]; ok {
			t.Errorf("analyzer name %q used by both %s and %s", name, prev, suite)
		}
		seen[name] = suite
	}
	for _, a := range lint.ProjectAnalyzers() {
		record(a.Name, "classic")
	}
	for _, a := range flow.ProjectAnalyzers() {
		record(a.Name, "flow")
	}
	for _, a := range absint.ProjectAnalyzers() {
		record(a.Name, "absint")
	}
	for _, a := range perf.ProjectAnalyzers() {
		record(a.Name, "perf")
	}
	record(perf.NewProjectBCE().Name, "perf-bce")
	record(lint.StaleAllowsName, "staleallow")
}
