// Package main is the planted interval violation for the -absint driver
// test: a cmd-style binary feeding a provably out-of-range flip
// probability and a provably negative ε into the LDP primitives. The
// probrange analyzer must report both with exact positions.
package main

import (
	"fmt"
	"math/rand"

	"verro/internal/ldp"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	b := ldp.NewBitVector(8)
	b[0] = true
	flipped := ldp.RAPPORFlip(b, 1.5, rng)
	noisy := ldp.ClassicRR(b, -0.25, rng)
	fmt.Println(flipped.Ones(), noisy.Ones())
}
