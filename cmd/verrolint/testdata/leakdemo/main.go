// Package main is the seeded leak the driver test feeds to privleak: a
// cmd/verro-style binary that prints a raw detection's bounding box to its
// published stdout. Under verro/cmd/ fmt printing is a sink, and the
// detector output is a source, so the analyzer must flag the Printf.
package main

import (
	"fmt"
	"os"

	"verro/internal/detect"
	"verro/internal/img"
)

func dump(det detect.Detector, frame *img.Image) error {
	boxes, err := det.Detect(frame)
	if err != nil {
		return err
	}
	for _, b := range boxes {
		fmt.Printf("object at %v score %.2f\n", b.Box, b.Score)
	}
	return nil
}

func main() {
	if err := dump(detect.NewPedestrianDetector(), img.New(64, 64)); err != nil {
		os.Exit(1)
	}
}
