// Package allow is lifedemo's suppressed twin: every seeded lifecycle
// finding carries a justified //lint:allow, so a -life run exits clean
// and the stale-allow pass must not flag any directive.
package allow

import (
	"context"
	"net/http"
	"os"
	"sync"
)

type hub struct {
	mu   sync.Mutex
	subs []chan int
}

func spin() {
	for {
	}
}

// Spawn leaks a goroutine, with a reasoned suppression.
func Spawn() {
	go spin() //lint:allow goleak demo: intentional leak to exercise the directive
}

// Read leaks the handle on the early return, suppressed.
func Read(path string) error {
	f, err := os.Open(path) //lint:allow mustclose demo: intentional leak to exercise the directive
	if err != nil {
		return err
	}
	if len(path) > 3 {
		return nil
	}
	f.Close()
	return nil
}

// Publish sends under the lock, suppressed.
func (h *hub) Publish(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ch := range h.subs {
		ch <- v //lint:allow lockorder demo: intentional park under lock to exercise the directive
	}
}

// Handle severs cancellation, suppressed.
func Handle(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() //lint:allow ctxflow demo: intentional severed context to exercise the directive
	_ = ctx
	w.WriteHeader(http.StatusOK)
}
