// Package lifedemo plants exactly one finding per lifecycle analyzer:
// a goroutine with no termination path (goleak), a file handle leaked on
// an early return (mustclose), a channel send under a held mutex
// (lockorder), and a severed request context (ctxflow). It is the
// acceptance fixture for the assembled -life driver.
package lifedemo

import (
	"context"
	"net/http"
	"os"
	"sync"
)

type hub struct {
	mu   sync.Mutex
	subs []chan int
}

func spin() {
	for {
	}
}

// Spawn leaks a goroutine: spin's summary diverges.
func Spawn() {
	go spin() // goleak
}

// Read leaks the handle when the size check bails early.
func Read(path string) error {
	f, err := os.Open(path) // mustclose
	if err != nil {
		return err
	}
	if len(path) > 3 {
		return nil
	}
	f.Close()
	return nil
}

// Publish sends to subscribers while holding the registry lock.
func (h *hub) Publish(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ch := range h.subs {
		ch <- v // lockorder
	}
}

// Handle severs the request's cancellation chain.
func Handle(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // ctxflow
	_ = ctx
	w.WriteHeader(http.StatusOK)
}
