// Package main is the perfdemo fixture with every finding deliberately
// suppressed: the driver tests assert a run where all diagnostics carry a
// justified //lint:allow exits 0 — and that none of the allows is flagged
// as stale, since each still suppresses a live diagnostic.
package main

import (
	"fmt"

	"verro/internal/par"
)

func sweep(xs []float64, idx []int) float64 {
	var total float64
	par.For(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tmp := make([]float64, 2)               //lint:allow hotalloc fixture: deliberate per-iteration scratch
			f := func() float64 { return tmp[0] }   //lint:allow hotescape fixture: deliberate per-iteration closure
			total += xs[idx[i]] + f() + xs[i]*0.125 //lint:allow bce fixture: deliberate data-dependent index
		}
	})
	return total
}

func main() {
	xs := make([]float64, 64)
	idx := make([]int, 64)
	fmt.Println(sweep(xs, idx))
}
