// Package main is the seeded hot-path fixture the driver tests feed to
// the -perf suite: a cmd/verro-style binary whose par.For closure (a hot
// root under the project policy, even outside the kernel packages)
// allocates per iteration, builds a closure per iteration, and indexes
// with a bounds check the prover cannot eliminate. Each analyzer of the
// suite (hotalloc, hotescape, bce) must flag exactly one line here.
package main

import (
	"fmt"

	"verro/internal/par"
)

func sweep(xs []float64, idx []int) float64 {
	var total float64
	par.For(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tmp := make([]float64, 2)               // hotalloc: per-iteration slice
			f := func() float64 { return tmp[0] }   // hotescape: per-iteration closure
			total += xs[idx[i]] + f() + xs[i]*0.125 // bce: data-dependent index
		}
	})
	return total
}

func main() {
	xs := make([]float64, 64)
	idx := make([]int, 64)
	fmt.Println(sweep(xs, idx))
}
