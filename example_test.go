package verro_test

import (
	"fmt"
	"log"

	"verro"
)

// ExampleSanitize demonstrates the minimal sanitization flow: render a
// benchmark video with known ground truth, sanitize it at f = 0.1, and
// report the privacy level.
func ExampleSanitize() {
	preset, err := verro.BenchmarkPreset("MOT01")
	if err != nil {
		log.Fatal(err)
	}
	preset = preset.Scaled(0.15)
	preset.Seed = 1234
	g, err := verro.GenerateBenchmark(preset)
	if err != nil {
		log.Fatal(err)
	}

	cfg := verro.DefaultConfig()
	cfg.Phase1.F = 0.1
	res, err := verro.Sanitize(g.Video, g.Truth, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frames: %d\n", res.Synthetic.Len())
	fmt.Printf("epsilon positive: %t\n", res.Epsilon > 0)
	fmt.Printf("all frames synthesized: %t\n", res.Synthetic.Len() == g.Video.Len())
	// Output:
	// frames: 67
	// epsilon positive: true
	// all frames synthesized: true
}

// ExampleEpsilon shows the ε ↔ f conversion both ways.
func ExampleEpsilon() {
	eps, err := verro.Epsilon(10, 0.5) // 10 key frames at f = 0.5
	if err != nil {
		log.Fatal(err)
	}
	f, err := verro.FlipProbability(10, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eps = %.2f, back to f = %.2f\n", eps, f)
	// Output:
	// eps = 10.99, back to f = 0.50
}

// ExampleDetectAndTrack runs the preprocessing pipeline on a benchmark
// video and reports that objects were found.
func ExampleDetectAndTrack() {
	preset, err := verro.BenchmarkPreset("MOT01")
	if err != nil {
		log.Fatal(err)
	}
	preset = preset.Scaled(0.15)
	g, err := verro.GenerateBenchmark(preset)
	if err != nil {
		log.Fatal(err)
	}
	tracks, err := verro.DetectAndTrack(g.Video, verro.DefaultPipelineConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found objects: %t\n", tracks.Len() > 0)
	// Output:
	// found objects: true
}
