// Crowdcount: the aggregate-analysis use case the paper motivates
// (Figures 12-13). A transit authority wants to publish surveillance
// footage so third parties can estimate crowd density per frame — but no
// individual pedestrian may be identifiable. We sanitize the video at two
// privacy levels and show that per-frame head counts survive while
// individual trajectories are randomized.
package main

import (
	"fmt"
	"log"

	"verro"
)

func main() {
	preset, err := verro.BenchmarkPreset("MOT03") // busy night street
	if err != nil {
		log.Fatal(err)
	}
	preset = preset.Scaled(0.2)
	g, err := verro.GenerateBenchmark(preset)
	if err != nil {
		log.Fatal(err)
	}
	m := g.Video.Len()
	if m == 0 {
		log.Fatal("benchmark video has no frames")
	}
	orig := g.Truth.CountSeries(m)
	fmt.Printf("video: %v, %d pedestrians\n", g.Video, g.Truth.Len())

	for _, f := range []float64{0.1, 0.9} {
		cfg := verro.DefaultConfig()
		cfg.Phase1.F = f
		res, err := verro.Sanitize(g.Video, g.Truth, cfg)
		if err != nil {
			log.Fatal(err)
		}
		syn := res.SyntheticTracks.CountSeries(m)

		// A recipient counting heads in the synthetic video sees per-frame
		// totals close to the truth even though every individual has been
		// replaced and rerouted.
		var mae float64
		for k := 0; k < m; k++ {
			d := float64(orig[k] - syn[k])
			if d < 0 {
				d = -d
			}
			mae += d
		}
		mae /= float64(m)
		fmt.Printf("f=%.1f: ε=%.1f, count MAE %.2f pedestrians/frame, peak original %d vs synthetic %d\n",
			f, res.Epsilon, mae, maxOf(orig), maxOf(syn))
	}

	fmt.Println("\nper-frame counts (every 10th frame):")
	fmt.Println("frame  original")
	for k := 0; k < m; k += 10 {
		fmt.Printf("%5d  %8d\n", k, orig[k])
	}
}

func maxOf(xs []int) int {
	best := 0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}
