// Multitype: one video containing both pedestrians and vehicles, sanitized
// so that each class is ε-indistinguishable within itself (paper
// Section 5, "Multiple Object Types"). The example also exports a short
// animated GIF of the synthetic video for quick visual inspection.
package main

import (
	"fmt"
	"log"
	"sort"

	"verro"
	"verro/internal/scene"
)

func main() {
	// A street scene populated with pedestrians; a second pass adds
	// vehicle-labelled tracks so the sanitizer sees two classes. (With
	// real footage the detector assigns classes.)
	preset := verro.Preset{
		Name: "mixed-street", W: 192, H: 108, Frames: 180, Objects: 10,
		FPS: 30, Style: scene.StyleStreet, Class: scene.Pedestrian, Seed: 7,
	}
	g, err := verro.GenerateBenchmark(preset)
	if err != nil {
		log.Fatal(err)
	}
	// Relabel a third of the objects as vehicles.
	for i, tr := range g.Truth.Tracks {
		if i%3 == 0 {
			tr.Class = scene.Vehicle.String()
		}
	}

	cfg := verro.DefaultConfig()
	cfg.Phase1.F = 0.1
	res, err := verro.SanitizeMultiType(g.Video, g.Truth, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("input: %v\n", g.Video)
	fmt.Printf("classes sanitized independently:\n")
	classes := make([]string, 0, len(res.PerClass))
	for name := range res.PerClass {
		classes = append(classes, name)
	}
	sort.Strings(classes)
	for _, name := range classes {
		p1 := res.PerClass[name]
		fmt.Printf("  %-11s ε=%.1f over %d picked key frames\n",
			name, p1.Epsilon, len(p1.Picked))
	}
	fmt.Printf("overall guarantee: every class ε-indistinguishable within itself (worst ε=%.1f)\n",
		res.Epsilon)

	byClass := map[string]int{}
	for _, tr := range res.SyntheticTracks.Tracks {
		byClass[tr.Class]++
	}
	fmt.Printf("synthetic objects: %v\n", byClass)

	if err := res.Synthetic.WriteGIF("mixed-street.gif", 3); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote mixed-street.gif (animated preview of the synthetic video)")
}
