// Privacysweep: choosing a privacy budget. This example shows the
// privacy/utility frontier a video owner navigates: it sweeps the flip
// probability f, reports the achieved ε and the resulting utility
// (object retention and trajectory deviation), and demonstrates the
// ε → f conversion for owners who think in budgets.
package main

import (
	"fmt"
	"log"

	"verro"
)

func main() {
	preset, err := verro.BenchmarkPreset("MOT01")
	if err != nil {
		log.Fatal(err)
	}
	preset = preset.Scaled(0.25)
	g, err := verro.GenerateBenchmark(preset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("video: %v, %d objects\n\n", g.Video, g.Truth.Len())

	fmt.Println("privacy/utility frontier (lower f = better utility, larger ε):")
	fmt.Printf("%6s %10s %10s %10s\n", "f", "epsilon", "retained", "deviation")
	for _, f := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		cfg := verro.DefaultConfig()
		cfg.Phase1.F = f
		cfg.Phase2.SkipRender = true // utility metrics only; no pixels
		res, err := verro.Sanitize(g.Video, g.Truth, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.1f %10.2f %6d/%-3d %10.3f\n",
			f, res.Epsilon, res.SyntheticTracks.Len(), g.Truth.Len(),
			verro.TrajectoryDeviation(g.Truth, res.SyntheticTracks))
	}

	// Owners who start from a budget: "I can afford ε = 5 over this video."
	fmt.Println("\nbudget-first workflow:")
	for _, eps := range []float64{2, 5, 10} {
		// The number of picked key frames determines the conversion; do a
		// cheap dry run to learn it.
		cfg := verro.DefaultConfig()
		cfg.Phase2.SkipRender = true
		dry, err := verro.Sanitize(g.Video, g.Truth, cfg)
		if err != nil {
			log.Fatal(err)
		}
		k := len(dry.Phase1.Picked)
		f, err := verro.FlipProbability(k, eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ε=%4.1f over %d picked key frames -> f=%.3f\n", eps, k, f)
	}
}
