// Quickstart: generate a benchmark video, sanitize it with VERRO, and
// inspect what the privacy mechanism did.
package main

import (
	"fmt"
	"log"

	"verro"
)

func main() {
	// 1. Get a video. Here we render a small synthetic street scene with
	// known ground-truth objects; with real footage you would decode your
	// own frames into a *verro.Video and detect objects with
	// verro.DetectAndTrack.
	preset, err := verro.BenchmarkPreset("MOT01")
	if err != nil {
		log.Fatal(err)
	}
	preset = preset.Scaled(0.25) // keep the quickstart fast
	g, err := verro.GenerateBenchmark(preset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input video: %v with %d sensitive objects\n", g.Video, g.Truth.Len())

	// 2. Sanitize. f is the per-key-frame flip probability: smaller f means
	// better utility and a larger ε; the paper sweeps f from 0.1 to 0.9.
	cfg := verro.DefaultConfig()
	cfg.Phase1.F = 0.1
	res, err := verro.Sanitize(g.Video, g.Truth, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the privacy/utility outcome.
	fmt.Printf("ε-Object Indistinguishability achieved: ε = %.2f\n", res.Epsilon)
	fmt.Printf("key frames: %d extracted, %d picked for budget\n",
		len(res.Phase1.KeyFrames), len(res.Phase1.Picked))
	fmt.Printf("objects retained in synthetic video: %d of %d\n",
		res.SyntheticTracks.Len(), g.Truth.Len())
	fmt.Printf("trajectory deviation vs original: %.3f\n",
		verro.TrajectoryDeviation(g.Truth, res.SyntheticTracks))

	// 4. Publish. The synthetic video is safe to hand to any untrusted
	// recipient; the .vvf bytes are what you would transmit.
	n, err := verro.EncodedSize(res.Synthetic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic video: %d frames, %.2f MB encoded\n", res.Synthetic.Len(), float64(n)/(1<<20))
}
