// Trafficflow: sanitizing vehicle footage (the paper's "multiple object
// types" discussion, Section 5). A traffic camera records vehicles whose
// make, color and trajectory are sensitive; we sanitize the video with
// vehicle sprites and verify that directional flow statistics — how many
// vehicles cross the scene per time window — survive sanitization.
package main

import (
	"fmt"
	"log"

	"verro"
	"verro/internal/scene"
)

func main() {
	// A custom vehicle preset: a daylight street with 18 vehicles.
	preset := verro.Preset{
		Name: "traffic", W: 192, H: 108, Frames: 240, Objects: 18,
		FPS: 30, Style: scene.StyleStreet, Class: scene.Vehicle, Seed: 42,
	}
	g, err := verro.GenerateBenchmark(preset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("video: %v, %d vehicles\n", g.Video, g.Truth.Len())

	cfg := verro.DefaultConfig()
	cfg.Phase1.F = 0.1
	cfg.Phase2.Class = scene.Vehicle // render synthetic vehicles
	res, err := verro.Sanitize(g.Video, g.Truth, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sanitized with ε=%.1f; %d of %d vehicles retained\n",
		res.Epsilon, res.SyntheticTracks.Len(), g.Truth.Len())

	// Flow analysis: vehicles observed per 60-frame window.
	window := 60
	fmt.Println("\nvehicle flow per window (distinct vehicles present):")
	fmt.Println("window   original  synthetic")
	for start := 0; start < g.Video.Len(); start += window {
		end := start + window
		fmt.Printf("%3d-%3d  %8d  %9d\n", start, end,
			distinctIn(g.Truth, start, end), distinctIn(res.SyntheticTracks, start, end))
	}

	// Directional flow: compare net left→right movement mass. The synthetic
	// trajectories are randomized per object, but the scene-level motion
	// energy remains comparable.
	fmt.Printf("\nscene motion: original %.0f px travelled, synthetic %.0f px\n",
		totalTravel(g.Truth), totalTravel(res.SyntheticTracks))
}

// distinctIn counts objects present in at least one frame of [start, end).
func distinctIn(ts *verro.TrackSet, start, end int) int {
	n := 0
	for _, t := range ts.Tracks {
		for k := start; k < end; k++ {
			if t.Present(k) {
				n++
				break
			}
		}
	}
	return n
}

// totalTravel sums trajectory arc lengths.
func totalTravel(ts *verro.TrackSet) float64 {
	var total float64
	for _, t := range ts.Tracks {
		_, centers := t.Trajectory()
		total += centers.Length()
	}
	return total
}
