module verro

go 1.22
