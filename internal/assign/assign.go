// Package assign implements minimum-cost bipartite assignment (the
// Hungarian algorithm, O(n³) shortest-augmenting-path formulation) used by
// the tracker to match detections to existing tracks, and by VERRO's
// evaluation code to align synthetic objects with originals.
package assign

import (
	"fmt"
	"math"
)

// Solve finds, for the rows×cols cost matrix, a minimum-cost matching that
// covers min(rows, cols) pairs. It returns rowToCol where rowToCol[i] is
// the column matched to row i or -1 when row i is unmatched, plus the total
// cost of the matching. Costs may be any finite float64; +Inf marks a
// forbidden pair.
func Solve(cost [][]float64) (rowToCol []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	for i, row := range cost {
		if len(row) != m {
			return nil, 0, fmt.Errorf("assign: row %d has %d cols, want %d", i, len(row), m)
		}
		for j, c := range row {
			if math.IsNaN(c) {
				return nil, 0, fmt.Errorf("assign: NaN cost at (%d,%d)", i, j)
			}
		}
	}
	if m == 0 {
		out := make([]int, n)
		for i := range out {
			out[i] = -1
		}
		return out, 0, nil
	}

	// Transpose when rows > cols so the JV algorithm below (which requires
	// rows ≤ cols) applies; un-transpose the result afterwards.
	transposed := false
	if n > m {
		transposed = true
		t := make([][]float64, m)
		for j := 0; j < m; j++ {
			t[j] = make([]float64, n)
			for i := 0; i < n; i++ {
				t[j][i] = cost[i][j]
			}
		}
		cost = t
		n, m = m, n
	}

	// Jonker-Volgenant style shortest augmenting path with potentials.
	// u, v are dual potentials; p[j] is the row matched to column j (1-based
	// sentinel layout internally).
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j]: row assigned to col j, 0 = none
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if delta == inf {
				// Remaining columns unreachable (all +Inf): no perfect
				// matching over finite edges exists.
				return nil, 0, fmt.Errorf("assign: no feasible assignment (forbidden pairs)")
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		// Augment along the path.
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	// Extract matching.
	rowOf := make([]int, n) // rowOf in the (possibly transposed) orientation
	for i := range rowOf {
		rowOf[i] = -1
	}
	for j := 1; j <= m; j++ {
		if p[j] != 0 {
			rowOf[p[j]-1] = j - 1
		}
	}
	for i, j := range rowOf {
		if j >= 0 {
			total += cost[i][j]
		}
	}

	if !transposed {
		return rowOf, total, nil
	}
	// Undo transpose: rowOf maps cols→rows of the original problem.
	out := make([]int, m)
	for i := range out {
		out[i] = -1
	}
	for j, i := range rowOf {
		if i >= 0 {
			out[i] = j
		}
	}
	return out, total, nil
}

// BruteForce exhaustively searches all assignments for matrices with at
// most 9 rows; it is the test oracle for Solve.
func BruteForce(cost [][]float64) ([]int, float64, error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	if n > 9 {
		return nil, 0, fmt.Errorf("assign: brute force limited to 9 rows")
	}
	best := math.Inf(1)
	var bestAssign []int

	cols := make([]int, m)
	for j := range cols {
		cols[j] = j
	}
	cur := make([]int, n)
	for i := range cur {
		cur[i] = -1
	}
	usedCols := make([]bool, m)

	k := min(n, m)
	var rec func(row int, matched int, sum float64)
	rec = func(row, matched int, sum float64) {
		if sum >= best {
			return
		}
		if matched == k {
			best = sum
			bestAssign = append([]int(nil), cur...)
			return
		}
		if row == n {
			return
		}
		// Try every available column for this row (row must be matched when
		// n <= m; otherwise allow skipping).
		for j := 0; j < m; j++ {
			if usedCols[j] || math.IsInf(cost[row][j], 1) {
				continue
			}
			usedCols[j] = true
			cur[row] = j
			rec(row+1, matched+1, sum+cost[row][j])
			cur[row] = -1
			usedCols[j] = false
		}
		if n > m { // rows may remain unmatched only when rows exceed cols
			rec(row+1, matched, sum)
		}
	}
	rec(0, 0, 0)
	if bestAssign == nil {
		return nil, 0, fmt.Errorf("assign: no feasible assignment")
	}
	return bestAssign, best, nil
}
