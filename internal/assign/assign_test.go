package assign

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveSquareKnown(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	rowToCol, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: r0→c1 (1), r1→c0 (2), r2→c2 (2) = 5.
	if total != 5 {
		t.Fatalf("total = %v, want 5 (assign %v)", total, rowToCol)
	}
	seen := map[int]bool{}
	for _, c := range rowToCol {
		if c < 0 || seen[c] {
			t.Fatalf("invalid matching %v", rowToCol)
		}
		seen[c] = true
	}
}

func TestSolveRectangularWide(t *testing.T) {
	// 2 rows, 4 cols: every row must be matched.
	cost := [][]float64{
		{10, 10, 1, 10},
		{10, 2, 10, 10},
	}
	rowToCol, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || rowToCol[0] != 2 || rowToCol[1] != 1 {
		t.Fatalf("assign = %v total = %v", rowToCol, total)
	}
}

func TestSolveRectangularTall(t *testing.T) {
	// 3 rows, 1 col: exactly one row gets the column.
	cost := [][]float64{{5}, {1}, {3}}
	rowToCol, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 1 {
		t.Fatalf("total = %v, want 1", total)
	}
	matched := 0
	for i, c := range rowToCol {
		if c == 0 {
			matched++
			if i != 1 {
				t.Fatalf("wrong row matched: %v", rowToCol)
			}
		} else if c != -1 {
			t.Fatalf("unexpected col %d", c)
		}
	}
	if matched != 1 {
		t.Fatalf("matched %d rows, want 1", matched)
	}
}

func TestSolveEmpty(t *testing.T) {
	rowToCol, total, err := Solve(nil)
	if err != nil || rowToCol != nil || total != 0 {
		t.Fatalf("empty: %v %v %v", rowToCol, total, err)
	}
	rowToCol, _, err = Solve([][]float64{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rowToCol {
		if c != -1 {
			t.Fatal("zero-col rows must be unmatched")
		}
	}
}

func TestSolveRejectsRagged(t *testing.T) {
	if _, _, err := Solve([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix should fail")
	}
	if _, _, err := Solve([][]float64{{math.NaN()}}); err == nil {
		t.Fatal("NaN cost should fail")
	}
}

func TestSolveForbiddenPairs(t *testing.T) {
	inf := math.Inf(1)
	// Feasible despite forbidden diagonal.
	cost := [][]float64{
		{inf, 1},
		{1, inf},
	}
	rowToCol, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || rowToCol[0] != 1 || rowToCol[1] != 0 {
		t.Fatalf("assign = %v total = %v", rowToCol, total)
	}
	// Entirely forbidden: infeasible.
	if _, _, err := Solve([][]float64{{inf}}); err == nil {
		t.Fatal("all-forbidden should fail")
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*100) / 10
			}
		}
		_, wantTotal, err := BruteForce(cost)
		if err != nil {
			t.Fatalf("trial %d oracle: %v", trial, err)
		}
		_, gotTotal, err := Solve(cost)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(gotTotal-wantTotal) > 1e-9 {
			t.Fatalf("trial %d: total %v, oracle %v, cost=%v", trial, gotTotal, wantTotal, cost)
		}
	}
}

func TestSolveNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 0},
		{0, -5},
	}
	_, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != -10 {
		t.Fatalf("total = %v, want -10", total)
	}
}

func TestSolveLargeRandomValidMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n, m := 50, 60
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, m)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 100
		}
	}
	rowToCol, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	var recomputed float64
	for i, c := range rowToCol {
		if c == -1 {
			t.Fatalf("row %d unmatched though cols >= rows", i)
		}
		if seen[c] {
			t.Fatalf("column %d used twice", c)
		}
		seen[c] = true
		recomputed += cost[i][c]
	}
	if math.Abs(recomputed-total) > 1e-6 {
		t.Fatalf("reported total %v != recomputed %v", total, recomputed)
	}
}
