// Package attack implements the background-knowledge re-identification
// adversary the paper's introduction motivates: the video recipient knows
// things about a target individual — their typical clothing color, which
// side of the scene they frequent, when they were at the scene, which way
// they move — and tries to locate that individual among the objects of a
// sanitized video. The attack quantifies the paper's core claim: blur-style
// sanitization leaves the linkage intact, while VERRO's indistinguishable
// objects reduce the adversary to (roughly) random guessing.
package attack

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/motio"
	"verro/internal/vid"
)

// Knowledge is what the adversary knows about one target individual,
// harvested from side channels (social media, acquaintance, earlier
// sightings) — modeled here by extracting it from the *original* video.
type Knowledge struct {
	// Appearance is an HSV histogram of the target (clothing colors).
	Appearance []float64
	// FirstFrame and LastFrame bound when the target was at the scene.
	FirstFrame, LastFrame int
	// MeanPos is the target's average position (their usual side of the
	// street / corner of the square).
	MeanPos geom.Vec
	// Heading is the dominant motion direction as a unit vector (zero for
	// loiterers).
	Heading geom.Vec
}

// ExtractKnowledge harvests the adversary's priors about track t from
// video v (the unsanitized original — this models out-of-band knowledge).
func ExtractKnowledge(v *vid.Video, t *motio.Track) (*Knowledge, error) {
	if t.Len() == 0 {
		return nil, errors.New("attack: empty track")
	}
	first, last, _ := t.Span()
	k := &Knowledge{FirstFrame: first, LastFrame: last}

	// Appearance: mean HSV histogram over a few sampled frames.
	frames := t.Frames()
	step := len(frames)/5 + 1
	var hist *img.HSVHist
	count := 0
	for i := 0; i < len(frames); i += step {
		fr := frames[i]
		if fr < 0 || fr >= v.Len() {
			continue
		}
		b, _ := t.Box(fr)
		h := img.NewHSVHistRegion(v.Frame(fr), b, 8, 4, 4)
		if hist == nil {
			hist = h
		} else {
			hist.Mix(h, 1/float64(count+1))
		}
		count++
	}
	if hist == nil {
		return nil, fmt.Errorf("attack: track %d has no frames inside video", t.ID)
	}
	k.Appearance = hist.Concat()

	// Spatial prior and heading.
	_, centers := t.Trajectory()
	var sum geom.Vec
	for _, c := range centers {
		sum = sum.Add(c)
	}
	if len(centers) > 0 {
		k.MeanPos = sum.Scale(1 / float64(len(centers)))
	}
	if len(centers) >= 2 {
		d := centers[len(centers)-1].Sub(centers[0])
		if n := d.Norm(); n > 1e-9 {
			k.Heading = d.Scale(1 / n)
		}
	}
	return k, nil
}

// Candidate is one identification candidate with its score breakdown.
type Candidate struct {
	ID         int
	Score      float64
	Appearance float64
	Temporal   float64
	Spatial    float64
	Heading    float64
}

// Weights blend the scoring components; the default weights model an
// adversary who trusts appearance and timing most.
type Weights struct {
	Appearance, Temporal, Spatial, Heading float64
}

// DefaultWeights returns the standard adversary.
func DefaultWeights() Weights {
	return Weights{Appearance: 0.35, Temporal: 0.3, Spatial: 0.2, Heading: 0.15}
}

// Rank scores every candidate track in the sanitized video against the
// adversary's knowledge and returns them best-first.
func Rank(k *Knowledge, sanitized *vid.Video, candidates *motio.TrackSet, w Weights) ([]Candidate, error) {
	if k == nil {
		return nil, errors.New("attack: nil knowledge")
	}
	sceneDiag := math.Hypot(float64(sanitized.W), float64(sanitized.H))
	if sceneDiag < 1 {
		sceneDiag = 1 // degenerate sub-pixel frame: keep the ratio finite
	}
	var out []Candidate
	for _, t := range candidates.Tracks {
		if t.Len() == 0 {
			continue
		}
		c := Candidate{ID: t.ID}

		// Appearance: cosine similarity of HSV histograms sampled from the
		// sanitized pixels.
		frames := t.Frames()
		mid := frames[len(frames)/2]
		if mid >= 0 && mid < sanitized.Len() {
			b, _ := t.Box(mid)
			h := img.NewHSVHistRegion(sanitized.Frame(mid), b, 8, 4, 4)
			c.Appearance = img.CosineSim(k.Appearance, h.Concat())
		}

		// Temporal: overlap of the at-scene interval with the prior.
		first, last, _ := t.Span()
		c.Temporal = intervalOverlap(k.FirstFrame, k.LastFrame, first, last)

		// Spatial: closeness of the mean position to the prior.
		_, centers := t.Trajectory()
		var sum geom.Vec
		for _, p := range centers {
			sum = sum.Add(p)
		}
		var mean geom.Vec
		if len(centers) > 0 {
			mean = sum.Scale(1 / float64(len(centers)))
		}
		c.Spatial = 1 - math.Min(1, mean.Dist(k.MeanPos)/(sceneDiag/2))

		// Heading agreement.
		if len(centers) >= 2 && k.Heading.Norm() > 1e-9 {
			d := centers[len(centers)-1].Sub(centers[0])
			if n := d.Norm(); n > 1e-9 {
				c.Heading = (k.Heading.Dot(d.Scale(1/n)) + 1) / 2
			}
		}

		c.Score = w.Appearance*c.Appearance + w.Temporal*c.Temporal +
			w.Spatial*c.Spatial + w.Heading*c.Heading
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out, nil
}

// intervalOverlap returns |[a0,a1] ∩ [b0,b1]| / |[a0,a1] ∪ [b0,b1]|.
func intervalOverlap(a0, a1, b0, b1 int) float64 {
	lo := a0
	if b0 > lo {
		lo = b0
	}
	hi := a1
	if b1 < hi {
		hi = b1
	}
	inter := hi - lo + 1
	if inter < 0 {
		inter = 0
	}
	ulo := a0
	if b0 < ulo {
		ulo = b0
	}
	uhi := a1
	if b1 > uhi {
		uhi = b1
	}
	union := uhi - ulo + 1
	if union <= 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Result summarizes one re-identification experiment.
type Result struct {
	Targets int
	// Top1 is the fraction of targets whose correct object ranked first.
	Top1 float64
	// Top3 is the fraction ranked in the best three.
	Top3 float64
	// RandomBaseline is the expected Top1 of blind guessing (1/candidates).
	RandomBaseline float64
}

func (r Result) String() string {
	return fmt.Sprintf("top1=%.3f top3=%.3f (random=%.3f, %d targets)",
		r.Top1, r.Top3, r.RandomBaseline, r.Targets)
}

// Reidentify attacks every original object: knowledge is harvested from
// the original video, candidates come from the sanitized video, and
// correct(origIdx, candID) decides whether a candidate is the right
// answer. For blur-style sanitizers the object identities survive (tracks
// keep their boxes), so correctness is ID equality; for VERRO the "right
// answer" is defined by the evaluation's ground-truth mapping
// (original index i ↔ synthetic ID i+1) — a mapping the adversary is
// *supposed* to be unable to recover.
func Reidentify(original *vid.Video, originalTracks *motio.TrackSet,
	sanitized *vid.Video, candidates *motio.TrackSet,
	correct func(origIdx, candID int) bool, w Weights) (Result, error) {

	res := Result{}
	if n := candidates.Len(); n > 0 {
		res.RandomBaseline = 1 / float64(n)
	}
	for i, t := range originalTracks.Tracks {
		if t.Len() == 0 {
			continue
		}
		k, err := ExtractKnowledge(original, t)
		if err != nil {
			return res, err
		}
		ranked, err := Rank(k, sanitized, candidates, w)
		if err != nil {
			return res, err
		}
		if len(ranked) == 0 {
			continue
		}
		res.Targets++
		for pos, c := range ranked {
			if correct(i, c.ID) {
				if pos == 0 {
					res.Top1++
				}
				if pos < 3 {
					res.Top3++
				}
				break
			}
		}
	}
	if res.Targets > 0 {
		res.Top1 /= float64(res.Targets)
		res.Top3 /= float64(res.Targets)
	}
	return res, nil
}

// SameID is the correctness oracle for sanitizers that keep object
// identity (blurring): candidate ID must equal the original track's ID.
func SameID(tracks *motio.TrackSet) func(origIdx, candID int) bool {
	return func(origIdx, candID int) bool {
		return tracks.Tracks[origIdx].ID == candID
	}
}

// IndexMapping is the correctness oracle for VERRO's synthetic output,
// where synthetic ID i+1 was generated from original index i.
func IndexMapping() func(origIdx, candID int) bool {
	return func(origIdx, candID int) bool { return candID == origIdx+1 }
}
