package attack

import (
	"testing"

	"verro/internal/blur"
	"verro/internal/core"
	"verro/internal/geom"
	"verro/internal/motio"
	"verro/internal/scene"
	"verro/internal/vid"
)

func testScene(t *testing.T) *scene.Generated {
	t.Helper()
	p := scene.Preset{
		Name: "atk", W: 128, H: 96, Frames: 60, Objects: 8,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 88,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExtractKnowledge(t *testing.T) {
	g := testScene(t)
	tr := g.Truth.Tracks[0]
	k, err := ExtractKnowledge(g.Video, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Appearance) == 0 {
		t.Fatal("no appearance histogram")
	}
	first, last, _ := tr.Span()
	if k.FirstFrame != first || k.LastFrame != last {
		t.Fatalf("span %d-%d, want %d-%d", k.FirstFrame, k.LastFrame, first, last)
	}
	if _, err := ExtractKnowledge(g.Video, motio.NewTrack(99, "x")); err == nil {
		t.Fatal("empty track should fail")
	}
}

func TestIntervalOverlap(t *testing.T) {
	if got := intervalOverlap(0, 9, 0, 9); got != 1 {
		t.Fatalf("identical = %v", got)
	}
	if got := intervalOverlap(0, 9, 20, 29); got != 0 {
		t.Fatalf("disjoint = %v", got)
	}
	if got := intervalOverlap(0, 9, 5, 14); got <= 0 || got >= 1 {
		t.Fatalf("partial = %v", got)
	}
}

// TestReidentificationOnIdentityVideo: attacking the *unsanitized* video
// must succeed almost always — this validates the adversary itself.
func TestReidentificationOnIdentityVideo(t *testing.T) {
	g := testScene(t)
	res, err := Reidentify(g.Video, g.Truth, g.Video, g.Truth,
		SameID(g.Truth), DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if res.Top1 < 0.8 {
		t.Fatalf("self re-identification should be near-perfect: %v", res)
	}
}

// TestBlurDoesNotStopTheAdversary: the paper's central criticism of the
// traditional model — blur hides pixels but trajectories and timing leak.
func TestBlurDoesNotStopTheAdversary(t *testing.T) {
	g := testScene(t)
	blurred, err := blur.Sanitize(g.Video, g.Truth, blur.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reidentify(g.Video, g.Truth, blurred, g.Truth,
		SameID(g.Truth), DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if res.Top1 < 0.6 {
		t.Fatalf("blurred video should still be highly re-identifiable: %v", res)
	}
	if res.Top1 <= res.RandomBaseline*2 {
		t.Fatalf("blur attack should beat random easily: %v", res)
	}
}

// TestVerroResistsTheAdversary: against VERRO the adversary should do far
// worse than against blur — close to the random baseline.
func TestVerroResistsTheAdversary(t *testing.T) {
	g := testScene(t)
	cfg := core.DefaultConfig()
	cfg.Phase1.F = 0.5
	res, err := core.Sanitize(g.Video, g.Truth, cfg)
	if err != nil {
		t.Fatal(err)
	}
	atk, err := Reidentify(g.Video, g.Truth, res.Synthetic, res.SyntheticTracks,
		IndexMapping(), DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	blurred, err := blur.Sanitize(g.Video, g.Truth, blur.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	blurAtk, err := Reidentify(g.Video, g.Truth, blurred, g.Truth,
		SameID(g.Truth), DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if atk.Top1 >= blurAtk.Top1 {
		t.Fatalf("VERRO (%v) should resist better than blur (%v)", atk, blurAtk)
	}
	_ = atk.String()
}

func TestRankValidation(t *testing.T) {
	g := testScene(t)
	if _, err := Rank(nil, g.Video, g.Truth, DefaultWeights()); err == nil {
		t.Fatal("nil knowledge should fail")
	}
}

func TestRankOrdersByScore(t *testing.T) {
	g := testScene(t)
	k, err := ExtractKnowledge(g.Video, g.Truth.Tracks[0])
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := Rank(k, g.Video, g.Truth, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatal("ranking not sorted")
		}
	}
	// Scores and components in [0, 1] (within numeric slack).
	for _, c := range ranked {
		if c.Score < -1e-9 || c.Score > 1+1e-9 {
			t.Fatalf("score out of range: %+v", c)
		}
	}
}

func TestReidentifyEmptyCandidates(t *testing.T) {
	g := testScene(t)
	empty := motio.NewTrackSet()
	res, err := Reidentify(g.Video, g.Truth, g.Video, empty,
		SameID(g.Truth), DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != 0 || res.Top1 != 0 {
		t.Fatalf("no candidates should mean no targets scored: %+v", res)
	}
}

func TestKnowledgeOutOfRangeFrames(t *testing.T) {
	v := vid.New("short", 16, 16, 30)
	tr := motio.NewTrack(1, "pedestrian")
	tr.Set(100, geom.RectAt(2, 2, 4, 8))
	if _, err := ExtractKnowledge(v, tr); err == nil {
		t.Fatal("track beyond video should fail")
	}
}
