package attack

import (
	"errors"
	"fmt"

	"verro/internal/assign"
	"verro/internal/img"
	"verro/internal/motio"
	"verro/internal/vid"
)

// Linkage attacks the multi-camera setting the paper's conclusion raises:
// the same population is recorded by two cameras, and the adversary tries
// to link each object's appearance in video A to its appearance in video B
// by appearance similarity. Against raw or blurred footage the linkage
// succeeds (clothing colors survive); against VERRO outputs the synthetic
// recoloring breaks it.

// LinkageResult summarizes a linkage experiment.
type LinkageResult struct {
	Pairs   int     // objects present in both videos
	Correct float64 // fraction linked correctly by min-cost matching
	Random  float64 // expected accuracy of blind matching (1/pairs)
}

func (r LinkageResult) String() string {
	return fmt.Sprintf("linkage: %.3f correct over %d pairs (random %.3f)",
		r.Correct, r.Pairs, r.Random)
}

// appearanceOf samples an object's HSV appearance from the video.
func appearanceOf(v *vid.Video, t *motio.Track) ([]float64, bool) {
	frames := t.Frames()
	if len(frames) == 0 {
		return nil, false
	}
	mid := frames[len(frames)/2]
	if mid < 0 || mid >= v.Len() {
		return nil, false
	}
	b, _ := t.Box(mid)
	return img.NewHSVHistRegion(v.Frame(mid), b, 8, 4, 4).Concat(), true
}

// LinkAcrossCameras matches the first len(pairs) tracks of each video by
// appearance (min-cost assignment over 1 − cosine similarity) and scores
// against the ground-truth pairing: track i of camera A corresponds to
// track i of camera B. The caller arranges the track sets so this index
// correspondence holds (e.g. the same individuals enumerated in the same
// order, or VERRO's synthetic outputs for the same original population).
func LinkAcrossCameras(videoA *vid.Video, tracksA *motio.TrackSet,
	videoB *vid.Video, tracksB *motio.TrackSet) (LinkageResult, error) {

	n := tracksA.Len()
	if tracksB.Len() < n {
		n = tracksB.Len()
	}
	if n == 0 {
		return LinkageResult{}, errors.New("attack: no tracks to link")
	}

	var featsA, featsB [][]float64
	var idxA, idxB []int
	for i := 0; i < n; i++ {
		fa, okA := appearanceOf(videoA, tracksA.Tracks[i])
		fb, okB := appearanceOf(videoB, tracksB.Tracks[i])
		if !okA || !okB {
			continue
		}
		featsA = append(featsA, fa)
		featsB = append(featsB, fb)
		idxA = append(idxA, i)
		idxB = append(idxB, i)
	}
	if len(featsA) == 0 {
		return LinkageResult{}, errors.New("attack: no measurable pairs")
	}

	cost := make([][]float64, len(featsA))
	for i := range featsA {
		cost[i] = make([]float64, len(featsB))
		for j := range featsB {
			cost[i][j] = 1 - img.CosineSim(featsA[i], featsB[j])
		}
	}
	rowToCol, _, err := assign.Solve(cost)
	if err != nil {
		return LinkageResult{}, err
	}
	res := LinkageResult{Pairs: len(featsA)}
	if len(featsB) > 0 {
		res.Random = 1 / float64(len(featsB))
	}
	correct := 0
	for i, j := range rowToCol {
		if j >= 0 && idxA[i] == idxB[j] {
			correct++
		}
	}
	res.Correct = float64(correct) / float64(len(featsA))
	return res, nil
}
