package attack

import (
	"testing"

	"verro/internal/core"
	"verro/internal/motio"
	"verro/internal/scene"
	"verro/internal/vid"
)

// twoCameraScenes renders the SAME population (same palette indices, i.e.
// the same "clothing") in two different scenes — the multi-camera setting.
func twoCameraScenes(t *testing.T) (a, b *scene.Generated) {
	t.Helper()
	pa := scene.Preset{
		Name: "camA", W: 96, H: 72, Frames: 40, Objects: 6,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 501,
	}
	pb := pa
	pb.Name = "camB"
	pb.Style = scene.StyleStreet
	// Same Seed keeps Palette(ID) colors aligned between the two videos:
	// object i wears the same colors in both cameras.
	ga, err := scene.Generate(pa)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := scene.Generate(pb)
	if err != nil {
		t.Fatal(err)
	}
	return ga, gb
}

func TestLinkageSucceedsOnRawFootage(t *testing.T) {
	ga, gb := twoCameraScenes(t)
	n := minInt(ga.Truth.Len(), gb.Truth.Len())
	res, err := LinkAcrossCameras(ga.Video, ga.Truth, gb.Video, gb.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 || res.Pairs > n {
		t.Fatalf("pairs = %d", res.Pairs)
	}
	if res.Correct < 0.6 {
		t.Fatalf("appearance linkage on raw footage should mostly succeed: %v", res)
	}
	_ = res.String()
}

func TestLinkageBrokenByVerro(t *testing.T) {
	ga, gb := twoCameraScenes(t)
	cfg := core.DefaultConfig()
	cfg.Phase1.F = 0.3
	joint, err := core.SanitizeJoint(
		[]*vid.Video{ga.Video, gb.Video},
		[]*motio.TrackSet{ga.Truth, gb.Truth},
		20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := LinkAcrossCameras(ga.Video, ga.Truth, gb.Video, gb.Truth)
	if err != nil {
		t.Fatal(err)
	}
	san, err := LinkAcrossCameras(
		joint.Results[0].Synthetic, joint.Results[0].SyntheticTracks,
		joint.Results[1].Synthetic, joint.Results[1].SyntheticTracks)
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic recoloring gives each camera's objects independent colors,
	// so appearance linkage should collapse towards chance.
	if san.Correct >= raw.Correct {
		t.Fatalf("VERRO should break linkage: raw %v vs sanitized %v", raw, san)
	}
}

func TestLinkageValidation(t *testing.T) {
	ga, _ := twoCameraScenes(t)
	empty := motio.NewTrackSet()
	if _, err := LinkAcrossCameras(ga.Video, empty, ga.Video, empty); err == nil {
		t.Fatal("no tracks should fail")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
