// Package blur implements the traditional detect-and-blur privacy model
// the paper argues against (Section 2.2.1): every detected object region is
// blurred (box blur) or pixelated in place. Object trajectories, timing and
// coarse colors remain visible — which is exactly the weakness the
// re-identification attack in package attack quantifies.
package blur

import (
	"errors"
	"fmt"

	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/motio"
	"verro/internal/vid"
)

// Mode selects the obfuscation applied to object regions.
type Mode int

// Obfuscation modes.
const (
	// ModeBlur applies an iterated box blur.
	ModeBlur Mode = iota
	// ModePixelate replaces each cell of a coarse grid by its mean color.
	ModePixelate
	// ModeBlackout paints the region black (maximal traditional privacy).
	ModeBlackout
)

// Config tunes the sanitizer.
type Config struct {
	Mode Mode
	// Radius is the blur kernel radius (ModeBlur) or the pixel-cell size
	// (ModePixelate). 0 means 3.
	Radius int
	// Passes is the number of blur iterations (ModeBlur); 0 means 2.
	Passes int
	// Dilate grows every object box by this many pixels before obfuscation.
	Dilate int
}

// DefaultConfig blurs with radius 3, two passes, and a 2px margin.
func DefaultConfig() Config {
	return Config{Mode: ModeBlur, Radius: 3, Passes: 2, Dilate: 2}
}

// ErrEmptyVideo is returned for videos with no frames.
var ErrEmptyVideo = errors.New("blur: empty video")

// Sanitize returns a copy of v with every tracked object region obfuscated
// in every frame it appears in. The input is not modified.
func Sanitize(v *vid.Video, tracks *motio.TrackSet, cfg Config) (*vid.Video, error) {
	if v == nil || v.Len() == 0 {
		return nil, ErrEmptyVideo
	}
	if tracks == nil {
		return nil, errors.New("blur: nil tracks")
	}
	if cfg.Radius <= 0 {
		cfg.Radius = 3
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 2
	}

	out := vid.New(v.Name+"-blur", v.W, v.H, v.FPS)
	out.Moving = v.Moving
	for k := 0; k < v.Len(); k++ {
		frame := v.Frame(k).Clone()
		for _, t := range tracks.Tracks {
			b, ok := t.Box(k)
			if !ok {
				continue
			}
			if cfg.Dilate > 0 {
				b = geom.Rect{
					Min: geom.Pt(b.Min.X-cfg.Dilate, b.Min.Y-cfg.Dilate),
					Max: geom.Pt(b.Max.X+cfg.Dilate, b.Max.Y+cfg.Dilate),
				}
			}
			b = b.Clip(frame.Bounds())
			if b.Empty() {
				continue
			}
			switch cfg.Mode {
			case ModePixelate:
				pixelate(frame, b, cfg.Radius)
			case ModeBlackout:
				frame.Fill(b, img.RGB{})
			default:
				for p := 0; p < cfg.Passes; p++ {
					boxBlur(frame, b, cfg.Radius)
				}
			}
		}
		if err := out.Append(frame); err != nil {
			return nil, fmt.Errorf("blur: frame %d: %w", k, err) //lint:allow hotalloc error path: formats once on the way out, never on the per-frame fast path
		}
	}
	return out, nil
}

// boxBlur applies one pass of a (2r+1)² box blur inside region b, sampling
// from a snapshot so the blur is unbiased.
func boxBlur(m *img.Image, b geom.Rect, r int) {
	if r < 0 {
		return
	}
	// The kernel covers (2r+1)² samples regardless of clamping, so the
	// divisor is loop-invariant (and provably positive for r ≥ 0).
	side := 2*r + 1
	n := side * side
	src := m.SubImage(b.Clip(m.Bounds()))
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			var sr, sg, sb int
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					// Sample from the snapshot, clamped to the region.
					sx := geom.Clamp(x+dx-b.Min.X, 0, src.W-1)
					sy := geom.Clamp(y+dy-b.Min.Y, 0, src.H-1)
					c := src.At(sx, sy)
					sr += int(c.R)
					sg += int(c.G)
					sb += int(c.B)
				}
			}
			m.Set(x, y, img.RGB{R: uint8(sr / n), G: uint8(sg / n), B: uint8(sb / n)})
		}
	}
}

// pixelate replaces each cell×cell block of region b by its mean color.
func pixelate(m *img.Image, b geom.Rect, cell int) {
	if cell < 2 {
		cell = 2
	}
	for y0 := b.Min.Y; y0 < b.Max.Y; y0 += cell {
		for x0 := b.Min.X; x0 < b.Max.X; x0 += cell {
			block := geom.R(x0, y0, min(x0+cell, b.Max.X), min(y0+cell, b.Max.Y))
			var sr, sg, sb, n int
			for y := block.Min.Y; y < block.Max.Y; y++ {
				for x := block.Min.X; x < block.Max.X; x++ {
					c := m.At(x, y)
					sr += int(c.R)
					sg += int(c.G)
					sb += int(c.B)
					n++
				}
			}
			if n == 0 {
				continue
			}
			m.Fill(block, img.RGB{R: uint8(sr / n), G: uint8(sg / n), B: uint8(sb / n)})
		}
	}
}
