package blur

import (
	"testing"

	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/motio"
	"verro/internal/scene"
	"verro/internal/vid"
)

func testScene(t *testing.T) (*vid.Video, *motio.TrackSet) {
	t.Helper()
	p := scene.Preset{
		Name: "blur-test", W: 96, H: 72, Frames: 20, Objects: 3,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 77,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return g.Video, g.Truth
}

func TestSanitizeBlursObjectRegions(t *testing.T) {
	v, tracks := testScene(t)
	out, err := Sanitize(v, tracks, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != v.Len() {
		t.Fatalf("frames = %d", out.Len())
	}
	// Inside an object box, pixels must have changed; far away, untouched.
	changedSomewhere := false
	for _, tr := range tracks.Tracks {
		for k, b := range tr.Boxes {
			orig := v.Frame(k)
			got := out.Frame(k)
			diff := 0
			for y := b.Min.Y; y < b.Max.Y; y++ {
				for x := b.Min.X; x < b.Max.X; x++ {
					if orig.At(x, y) != got.At(x, y) {
						diff++
					}
				}
			}
			if diff > 0 {
				changedSomewhere = true
			}
		}
	}
	if !changedSomewhere {
		t.Fatal("no object region was modified")
	}
	// A corner pixel far from all objects should be identical.
	if v.Frame(0).At(0, 0) != out.Frame(0).At(0, 0) {
		t.Fatal("blur leaked outside object regions")
	}
}

func TestSanitizeDoesNotMutateInput(t *testing.T) {
	v, tracks := testScene(t)
	before := v.Frame(5).Clone()
	if _, err := Sanitize(v, tracks, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if !v.Frame(5).Equal(before) {
		t.Fatal("input video was modified")
	}
}

func TestModes(t *testing.T) {
	v, tracks := testScene(t)
	for _, mode := range []Mode{ModeBlur, ModePixelate, ModeBlackout} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		out, err := Sanitize(v, tracks, cfg)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if out.Len() != v.Len() {
			t.Fatalf("mode %d: frames = %d", mode, out.Len())
		}
	}
	// Blackout paints pure black inside boxes.
	cfg := Config{Mode: ModeBlackout}
	out, err := Sanitize(v, tracks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range tracks.Tracks {
		for k, b := range tr.Boxes {
			c := out.Frame(k).At(b.Center().X, b.Center().Y)
			if c != (img.RGB{}) {
				t.Fatalf("blackout center = %v", c)
			}
			break
		}
		break
	}
}

func TestSanitizeValidation(t *testing.T) {
	if _, err := Sanitize(nil, motio.NewTrackSet(), DefaultConfig()); err == nil {
		t.Fatal("nil video should fail")
	}
	v := vid.New("x", 8, 8, 30)
	if _, err := Sanitize(v, motio.NewTrackSet(), DefaultConfig()); err == nil {
		t.Fatal("empty video should fail")
	}
	_ = v.Append(img.New(8, 8))
	if _, err := Sanitize(v, nil, DefaultConfig()); err == nil {
		t.Fatal("nil tracks should fail")
	}
}

func TestBlurReducesDetail(t *testing.T) {
	// A high-contrast checker region should lose variance when blurred.
	v := vid.New("c", 40, 40, 30)
	f := img.New(40, 40)
	for y := 10; y < 30; y++ {
		for x := 10; x < 30; x++ {
			if (x+y)%2 == 0 {
				f.Set(x, y, img.RGB{R: 255, G: 255, B: 255})
			}
		}
	}
	_ = v.Append(f)
	tracks := motio.NewTrackSet()
	tr := motio.NewTrack(1, "pedestrian")
	tr.Set(0, geom.RectAt(10, 10, 20, 20))
	tracks.Add(tr)

	out, err := Sanitize(v, tracks, Config{Mode: ModeBlur, Radius: 2, Passes: 2})
	if err != nil {
		t.Fatal(err)
	}
	// After blurring a fine checkerboard, mid-gray should dominate.
	c := out.Frame(0).At(20, 20)
	if c.R < 60 || c.R > 200 {
		t.Fatalf("blurred checker should be mid-gray, got %v", c)
	}
}

func TestPixelateFlattensBlocks(t *testing.T) {
	v := vid.New("p", 40, 40, 30)
	f := img.New(40, 40)
	f.AddNoise(120, 5)
	_ = v.Append(f)
	tracks := motio.NewTrackSet()
	tr := motio.NewTrack(1, "pedestrian")
	tr.Set(0, geom.RectAt(8, 8, 16, 16))
	tracks.Add(tr)
	out, err := Sanitize(v, tracks, Config{Mode: ModePixelate, Radius: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Pixels within one cell must be identical. Boxes are dilated by
	// Dilate=0 here, so the cell starting at (8,8) spans 8 pixels.
	a := out.Frame(0).At(9, 9)
	b := out.Frame(0).At(14, 14)
	if a != b {
		t.Fatalf("pixelated cell not constant: %v vs %v", a, b)
	}
}
