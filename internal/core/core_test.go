package core

import (
	"math"
	"math/rand"
	"testing"

	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/keyframe"
	"verro/internal/ldp"
	"verro/internal/motio"
	"verro/internal/scene"
	"verro/internal/vid"
)

func sampleTracks() *motio.TrackSet {
	s := motio.NewTrackSet()
	t1 := motio.NewTrack(1, "pedestrian")
	for k := 0; k < 10; k++ {
		t1.Set(k, geom.RectAt(2*k, 10, 4, 8))
	}
	t2 := motio.NewTrack(2, "pedestrian")
	for k := 5; k < 15; k++ {
		t2.Set(k, geom.RectAt(40-2*k, 20, 4, 8))
	}
	s.Add(t1)
	s.Add(t2)
	return s
}

func TestPresenceVectors(t *testing.T) {
	vs := PresenceVectors(sampleTracks(), 20)
	if len(vs) != 2 {
		t.Fatalf("vectors = %d", len(vs))
	}
	if vs[0].Ones() != 10 || vs[1].Ones() != 10 {
		t.Fatalf("ones = %d, %d", vs[0].Ones(), vs[1].Ones())
	}
	if !vs[0][0] || vs[0][10] {
		t.Fatal("object 1 presence pattern wrong")
	}
	if vs[1][0] || !vs[1][5] {
		t.Fatal("object 2 presence pattern wrong")
	}
	// Out-of-range boxes are ignored.
	short := PresenceVectors(sampleTracks(), 5)
	if short[1].Ones() != 0 {
		t.Fatal("frames beyond numFrames should be dropped")
	}
}

func TestReduceToKeyFrames(t *testing.T) {
	full := PresenceVectors(sampleTracks(), 20)
	reduced, err := ReduceToKeyFrames(full, []int{0, 7, 12})
	if err != nil {
		t.Fatal(err)
	}
	// Object 1 present in 0 and 7, absent in 12.
	if !reduced[0][0] || !reduced[0][1] || reduced[0][2] {
		t.Fatalf("object 1 reduced = %v", reduced[0])
	}
	// Object 2 present in 7 and 12, absent in 0.
	if reduced[1][0] || !reduced[1][1] || !reduced[1][2] {
		t.Fatalf("object 2 reduced = %v", reduced[1])
	}
	if _, err := ReduceToKeyFrames(full, []int{99}); err == nil {
		t.Fatal("key frame outside video should fail")
	}
}

func TestDistinctPresentAndCounts(t *testing.T) {
	vs := []ldp.BitVector{
		{true, false},
		{false, false},
		{true, true},
	}
	if DistinctPresent(vs) != 2 {
		t.Fatalf("DistinctPresent = %d", DistinctPresent(vs))
	}
	counts := KeyFrameCounts(vs)
	if counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if KeyFrameCounts(nil) != nil {
		t.Fatal("empty input should be nil")
	}
}

func TestRunPhase1PicksDenseFrames(t *testing.T) {
	// 3 objects; key frame 1 has 3 objects, frames 0 and 2 have none.
	reduced := []ldp.BitVector{
		{false, true, false},
		{false, true, false},
		{false, true, false},
	}
	cfg := Phase1Config{F: 0.1, Optimize: true, MinPicked: 2}
	rng := rand.New(rand.NewSource(1))
	res, err := RunPhase1(reduced, []int{0, 10, 20}, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	picked := res.PickedSet()
	if !picked[1] {
		t.Fatalf("dense frame not picked: %v", res.Picked)
	}
	if len(res.Picked) < 2 {
		t.Fatalf("cardinality floor violated: %v", res.Picked)
	}
	// Epsilon accounting.
	want, _ := ldp.Epsilon(len(res.Picked), 0.1)
	if math.Abs(res.Epsilon-want) > 1e-12 {
		t.Fatalf("epsilon = %v, want %v", res.Epsilon, want)
	}
	// Output vectors are zero at unpicked frames.
	for i, v := range res.Output {
		for k := range v {
			if !picked[k] && v[k] {
				t.Fatalf("object %d has bit at unpicked frame %d", i, k)
			}
		}
	}
}

func TestRunPhase1WithoutOptimizeUsesAll(t *testing.T) {
	reduced := []ldp.BitVector{{true, false, true, false}}
	rng := rand.New(rand.NewSource(2))
	res, err := RunPhase1(reduced, []int{0, 1, 2, 3}, Phase1Config{F: 0.3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Picked) != 4 {
		t.Fatalf("expected all frames picked, got %v", res.Picked)
	}
}

func TestRunPhase1Validation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := RunPhase1(nil, nil, DefaultPhase1Config(), rng); err == nil {
		t.Fatal("no key frames should fail")
	}
	if _, err := RunPhase1([]ldp.BitVector{{true}}, []int{0}, Phase1Config{F: 0}, rng); err == nil {
		t.Fatal("f=0 should fail")
	}
	if _, err := RunPhase1([]ldp.BitVector{{true, true}}, []int{0}, Phase1Config{F: 0.1}, rng); err == nil {
		t.Fatal("vector length mismatch should fail")
	}
}

func TestRunPhase1LaplaceNoiseStillWorks(t *testing.T) {
	reduced := []ldp.BitVector{
		{true, true, false, false},
		{true, false, true, false},
	}
	cfg := Phase1Config{F: 0.2, Optimize: true, LaplaceEps: 0.5}
	rng := rand.New(rand.NewSource(4))
	res, err := RunPhase1(reduced, []int{0, 5, 10, 15}, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Picked) < 2 {
		t.Fatalf("picked %v", res.Picked)
	}
}

// TestPhase1Indistinguishability checks the Definition 2.1 bound end to end
// over Phase I: two objects with opposite presence patterns produce any
// given output with probability ratio ≤ e^ε.
func TestPhase1Indistinguishability(t *testing.T) {
	keyFrames := []int{0, 1}
	f := 0.5
	cfg := Phase1Config{F: f, Optimize: false}
	trials := 100000
	counts := [2]map[int]int{{}, {}}
	rng := rand.New(rand.NewSource(5))
	vecs := []ldp.BitVector{{true, true}, {false, false}}
	for trial := 0; trial < trials; trial++ {
		res, err := RunPhase1(vecs, keyFrames, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		for obj := 0; obj < 2; obj++ {
			code := 0
			for b, bit := range res.Output[obj] {
				if bit {
					code |= 1 << b
				}
			}
			counts[obj][code]++
		}
	}
	eps, _ := ldp.Epsilon(2, f)
	for code := 0; code < 4; code++ {
		p0 := float64(counts[0][code]) / float64(trials)
		p1 := float64(counts[1][code]) / float64(trials)
		if p0 == 0 || p1 == 0 {
			t.Fatalf("output %b unreachable", code)
		}
		if r := math.Abs(math.Log(p0 / p1)); r > eps*1.1+0.05 {
			t.Fatalf("likelihood ratio %v exceeds eps %v", r, eps)
		}
	}
}

func TestNaiveRandomResponse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	full := []ldp.BitVector{ldp.NewBitVector(100)}
	out, err := NaiveRandomResponse(full, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	// eps/100 per bit ⇒ nearly uniform output.
	ones := out[0].Ones()
	if ones < 25 || ones > 75 {
		t.Fatalf("naive RR should be near-uniform: %d ones", ones)
	}
	if _, err := NaiveRandomResponse(full, -1, rng); err == nil {
		t.Fatal("negative eps should fail")
	}
}

func TestPresentInKeyFrames(t *testing.T) {
	tracks := sampleTracks()
	kf := &keyframe.Result{KeyFrames: []int{12, 14}}
	if got := PresentInKeyFrames(tracks, kf); got != 1 {
		t.Fatalf("PresentInKeyFrames = %d, want 1 (only object 2)", got)
	}
	kf2 := &keyframe.Result{KeyFrames: []int{7}}
	if got := PresentInKeyFrames(tracks, kf2); got != 2 {
		t.Fatalf("PresentInKeyFrames = %d, want 2", got)
	}
}

func TestSanitizeEndToEnd(t *testing.T) {
	p := scene.Preset{
		Name: "e2e", W: 96, H: 72, Frames: 40, Objects: 5,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 91,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Keyframe.MaxSegmentLen = 8 // static scene: force enough key frames
	res, err := Sanitize(g.Video, g.Truth, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Synthetic.Len() != g.Video.Len() {
		t.Fatalf("synthetic has %d frames, want %d", res.Synthetic.Len(), g.Video.Len())
	}
	if res.Synthetic.W != g.Video.W || res.Synthetic.H != g.Video.H {
		t.Fatal("synthetic geometry mismatch")
	}
	if res.Epsilon <= 0 {
		t.Fatalf("epsilon = %v", res.Epsilon)
	}
	if res.Phase1 == nil || res.Phase2 == nil || res.KeyframeResult == nil {
		t.Fatal("missing diagnostics")
	}
	if len(res.Phase1.Picked) < 2 {
		t.Fatalf("picked = %v", res.Phase1.Picked)
	}
	// The synthetic video should not be identical to the original.
	same := 0
	for k := 0; k < res.Synthetic.Len(); k++ {
		if res.Synthetic.Frame(k).Equal(g.Video.Frame(k)) {
			same++
		}
	}
	if same == res.Synthetic.Len() {
		t.Fatal("sanitization did not change the video")
	}
	// Timing fields populated.
	if res.Phase1Time < 0 || res.Phase2Time <= 0 || res.PreprocessTime <= 0 {
		t.Fatal("timings not recorded")
	}
}

func TestSanitizeValidation(t *testing.T) {
	if _, err := Sanitize(nil, motio.NewTrackSet(), DefaultConfig()); err == nil {
		t.Fatal("nil video should fail")
	}
	p := scene.Preset{
		Name: "v", W: 48, H: 36, Frames: 10, Objects: 2,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 92,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sanitize(g.Video, nil, DefaultConfig()); err == nil {
		t.Fatal("nil tracks should fail")
	}
}

func TestSanitizeDeterministicForSeed(t *testing.T) {
	p := scene.Preset{
		Name: "det", W: 64, H: 48, Frames: 20, Objects: 3,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 93,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Keyframe.MaxSegmentLen = 5
	r1, err := Sanitize(g.Video, g.Truth, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Sanitize(g.Video, g.Truth, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < r1.Synthetic.Len(); k++ {
		if !r1.Synthetic.Frame(k).Equal(r2.Synthetic.Frame(k)) {
			t.Fatalf("frame %d differs across identical runs", k)
		}
	}
}

func TestSanitizeSingleObjectVideo(t *testing.T) {
	// Section 5: protection for one-object videos must still work.
	p := scene.Preset{
		Name: "solo", W: 64, H: 48, Frames: 20, Objects: 1,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 94,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.Truth.Len() != 1 {
		t.Skipf("generator produced %d objects", g.Truth.Len())
	}
	cfg := DefaultConfig()
	cfg.Keyframe.MaxSegmentLen = 5
	res, err := Sanitize(g.Video, g.Truth, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Synthetic.Len() != 20 {
		t.Fatal("synthetic video incomplete")
	}
}

func TestPhase2LosesEmptyVectors(t *testing.T) {
	p := scene.Preset{
		Name: "loss", W: 64, H: 48, Frames: 16, Objects: 3,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 95,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	kf, err := keyframe.Extract(g.Video, keyframe.Config{
		HBins: 16, SBins: 8, VBins: 8, Alpha: 0.5, Beta: 0.3, Gamma: 0.2,
		Tau: 0.97, MaxSegmentLen: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hand Phase II an all-empty Phase I output: every object lost, video
	// still rendered (background only).
	n := g.Truth.Len()
	ell := len(kf.KeyFrames)
	p1 := &Phase1Result{
		KeyFrames: kf.KeyFrames,
		Picked:    []int{0, 1},
		Output:    make([]ldp.BitVector, n),
	}
	for i := range p1.Output {
		p1.Output[i] = ldp.NewBitVector(ell)
	}
	scenes, err := scenesForTest(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	p2, err := RunPhase2(p1, kf, g.Truth, scenes, 64, 48, 16, DefaultPhase2Config(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Lost != n {
		t.Fatalf("Lost = %d, want %d", p2.Lost, n)
	}
	if p2.Tracks.Len() != 0 {
		t.Fatalf("no objects should be rendered, got %d", p2.Tracks.Len())
	}
	if p2.Video.Len() != 16 {
		t.Fatal("video incomplete")
	}
}

func TestPhase2InsufficientCandidatesExpands(t *testing.T) {
	// One original object but three synthetic objects required in a key
	// frame: the pool must expand without error.
	tracks := motio.NewTrackSet()
	tr := motio.NewTrack(1, "pedestrian")
	tr.Set(2, geom.RectAt(10, 10, 4, 8))
	tr.Set(3, geom.RectAt(12, 10, 4, 8))
	tracks.Add(tr)

	kf := &keyframe.Result{
		Segments:  []keyframe.Segment{{Start: 0, End: 4, KeyFrame: 2}, {Start: 5, End: 9, KeyFrame: 7}},
		KeyFrames: []int{2, 7},
	}
	p1 := &Phase1Result{
		KeyFrames: []int{2, 7},
		Picked:    []int{0, 1},
		Output: []ldp.BitVector{
			{true, true},
			{true, false},
			{true, false},
		},
	}
	bg := scene.PaintBackground(scene.StyleSquare, 64, 48, 1)
	rng := rand.New(rand.NewSource(8))
	p2, err := RunPhase2(p1, kf, tracks, staticScenes{bg}, 64, 48, 10, DefaultPhase2Config(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Tracks.Len() != 3 {
		t.Fatalf("synthetic objects = %d, want 3", p2.Tracks.Len())
	}
}

func TestRunPhase2Validation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if _, err := RunPhase2(nil, nil, nil, nil, 10, 10, 10, DefaultPhase2Config(), rng); err == nil {
		t.Fatal("nil phase 1 should fail")
	}
	p1 := &Phase1Result{KeyFrames: []int{0}, Output: []ldp.BitVector{{true}}}
	kf := &keyframe.Result{Segments: []keyframe.Segment{{Start: 0, End: 0}}, KeyFrames: []int{0}}
	if _, err := RunPhase2(p1, kf, motio.NewTrackSet(), nil, 0, 10, 10, DefaultPhase2Config(), rng); err == nil {
		t.Fatal("zero width should fail")
	}
}

// scenesForTest builds a static background provider from the generated
// clean background.
func scenesForTest(g *scene.Generated) (staticScenes, error) {
	return staticScenes{g.CleanBackground[0]}, nil
}

// staticScenes is a minimal inpaint.Scenes implementation for tests.
type staticScenes struct{ bg *img.Image }

func (s staticScenes) Background(int) (*img.Image, error) { return s.bg, nil }

func TestSanitizeMovingCamera(t *testing.T) {
	// Exercises the pan-estimation + panorama background path end to end.
	p := scene.Preset{
		Name: "moving-e2e", W: 96, H: 72, Frames: 36, Objects: 4,
		FPS: 14, Moving: true, PanRange: 48,
		Style: scene.StyleStreet, Class: scene.Pedestrian, Seed: 171,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Keyframe.MaxSegmentLen = 8
	res, err := Sanitize(g.Video, g.Truth, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Synthetic.Len() != g.Video.Len() {
		t.Fatalf("synthetic frames = %d", res.Synthetic.Len())
	}
	if !res.Synthetic.Moving {
		t.Fatal("moving flag lost")
	}
	// Background must actually pan: first and last synthetic frames differ
	// even ignoring objects (compare corners, which objects rarely touch).
	first := res.Synthetic.Frame(0)
	last := res.Synthetic.Frame(res.Synthetic.Len() - 1)
	if first.At(2, 2) == last.At(2, 2) && first.At(93, 2) == last.At(93, 2) {
		t.Log("warning: pan not visible at probe pixels (may be legitimate)")
	}
}

func TestSanitizeSingleFrameVideoFails(t *testing.T) {
	// A 1-frame video cannot satisfy MinPicked=2 interpolation, but must
	// fail cleanly or produce a 1-frame output, never panic.
	v := vid.New("one", 32, 32, 30)
	if err := v.Append(img.NewFilled(32, 32, img.RGB{R: 50, G: 50, B: 50})); err != nil {
		t.Fatal(err)
	}
	tracks := motio.NewTrackSet()
	tr := motio.NewTrack(1, "pedestrian")
	tr.Set(0, geom.RectAt(10, 10, 4, 8))
	tracks.Add(tr)
	res, err := Sanitize(v, tracks, DefaultConfig())
	if err == nil && res.Synthetic.Len() != 1 {
		t.Fatalf("unexpected result: %v frames", res.Synthetic.Len())
	}
}

func TestSanitizeTracksOutsideVideoBounds(t *testing.T) {
	// Boxes partially or fully outside the frame must not break anything.
	p := scene.Preset{
		Name: "oob", W: 48, H: 36, Frames: 12, Objects: 2,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 181,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	rogue := motio.NewTrack(99, "pedestrian")
	rogue.Set(0, geom.RectAt(-20, -20, 8, 8))
	rogue.Set(5, geom.RectAt(100, 100, 8, 8))
	g.Truth.Add(rogue)
	cfg := DefaultConfig()
	cfg.Keyframe.MaxSegmentLen = 4
	if _, err := Sanitize(g.Video, g.Truth, cfg); err != nil {
		t.Fatalf("out-of-bounds tracks should be tolerated: %v", err)
	}
}
