package core

import (
	"fmt"
	"math"

	"verro/internal/motio"
	"verro/internal/vid"
)

// JointResult is the output of SanitizeJoint: one sanitized video per
// camera plus composed privacy accounting.
type JointResult struct {
	Results []*Result
	// Epsilon is the sequential-composition bound for an object that
	// appears in EVERY camera: Σ_c ε_c. An adversary who links synthetic
	// videos across cameras faces at most this budget per object (paper
	// conclusion: "explore rigorous protection for objects which can be
	// tracked in multiple videos").
	Epsilon float64
	// PerCamera lists each camera's own ε.
	PerCamera []float64
}

// SanitizeJoint sanitizes several cameras' videos of (potentially) the
// same population with a shared total budget: totalEps is split equally
// across cameras, each camera's flip probability is derived from its own
// dimension-reduced key-frame count via a dry run, and the composed ε is
// reported. Each camera's output on its own satisfies its per-camera
// ε-Object Indistinguishability; the composition bound covers adversaries
// that join all outputs.
func SanitizeJoint(videos []*vid.Video, tracks []*motio.TrackSet, totalEps float64, cfg Config) (*JointResult, error) {
	if len(videos) == 0 {
		return nil, fmt.Errorf("core: no videos")
	}
	if len(videos) != len(tracks) {
		return nil, fmt.Errorf("core: %d videos but %d track sets", len(videos), len(tracks))
	}
	// The NaN check is load-bearing: NaN fails `<= 0` and would otherwise
	// propagate through perCamEps and flipForBudget into every camera's f.
	if math.IsNaN(totalEps) || math.IsInf(totalEps, 0) || totalEps <= 0 {
		return nil, fmt.Errorf("core: total epsilon %v must be positive and finite", totalEps)
	}
	perCamEps := totalEps / float64(len(videos))

	out := &JointResult{}
	for i, v := range videos {
		camCfg := cfg
		camCfg.Seed = cfg.Seed + int64(i)*7919

		// Dry run (tracks only) to learn how many key frames this camera's
		// optimizer picks, then invert ε → f for that K.
		dry := camCfg
		dry.Phase2.SkipRender = true
		dryRes, err := Sanitize(v, tracks[i], dry)
		if err != nil {
			return nil, fmt.Errorf("core: camera %d dry run: %w", i, err)
		}
		k := len(dryRes.Phase1.Picked)
		f, err := flipForBudget(k, perCamEps)
		if err != nil {
			return nil, fmt.Errorf("core: camera %d: %w", i, err)
		}
		camCfg.Phase1.F = f

		res, err := Sanitize(v, tracks[i], camCfg)
		if err != nil {
			return nil, fmt.Errorf("core: camera %d: %w", i, err)
		}
		out.Results = append(out.Results, res)
		out.PerCamera = append(out.PerCamera, res.Epsilon)
		out.Epsilon += res.Epsilon
	}
	return out, nil
}

// flipForBudget converts a per-camera ε budget over k picked key frames to
// the Equation 4 flip probability, clamped into (0, 1]. Large budgets per
// frame drive f towards 0, which Equation 4 forbids (f = 0 is infinite ε),
// hence the lower clamp.
func flipForBudget(k int, eps float64) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("no key frames picked")
	}
	f := 2 / (math.Exp(eps/float64(k)) + 1)
	if f <= 1e-6 {
		f = 1e-6
	}
	if f > 1 {
		f = 1
	}
	return f, nil
}
