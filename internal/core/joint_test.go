package core

import (
	"math"
	"testing"

	"verro/internal/motio"
	"verro/internal/scene"
	"verro/internal/vid"
)

func twoCameras(t *testing.T) ([]*vid.Video, []*motio.TrackSet) {
	t.Helper()
	var videos []*vid.Video
	var tracks []*motio.TrackSet
	for i, style := range []scene.Style{scene.StyleSquare, scene.StyleNightStreet} {
		p := scene.Preset{
			Name: "cam", W: 64, H: 48, Frames: 24, Objects: 3,
			FPS: 30, Style: style, Class: scene.Pedestrian, Seed: int64(400 + i),
		}
		g, err := scene.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		videos = append(videos, g.Video)
		tracks = append(tracks, g.Truth)
	}
	return videos, tracks
}

func TestSanitizeJoint(t *testing.T) {
	videos, tracks := twoCameras(t)
	cfg := DefaultConfig()
	cfg.Keyframe.MaxSegmentLen = 6
	total := 40.0
	res, err := SanitizeJoint(videos, tracks, total, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 || len(res.PerCamera) != 2 {
		t.Fatalf("results = %d", len(res.Results))
	}
	// Composition: the joint budget must not exceed the requested total by
	// more than clamping slack.
	if res.Epsilon > total*1.05 {
		t.Fatalf("composed epsilon %v exceeds requested %v", res.Epsilon, total)
	}
	var sum float64
	for _, e := range res.PerCamera {
		if e <= 0 {
			t.Fatalf("per-camera epsilon %v", e)
		}
		sum += e
	}
	if math.Abs(sum-res.Epsilon) > 1e-9 {
		t.Fatalf("composition accounting wrong: %v vs %v", sum, res.Epsilon)
	}
	for i, r := range res.Results {
		if r.Synthetic.Len() != videos[i].Len() {
			t.Fatalf("camera %d synthetic incomplete", i)
		}
	}
}

func TestSanitizeJointValidation(t *testing.T) {
	videos, tracks := twoCameras(t)
	if _, err := SanitizeJoint(nil, nil, 10, DefaultConfig()); err == nil {
		t.Fatal("no videos should fail")
	}
	if _, err := SanitizeJoint(videos, tracks[:1], 10, DefaultConfig()); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := SanitizeJoint(videos, tracks, 0, DefaultConfig()); err == nil {
		t.Fatal("zero budget should fail")
	}
}

func TestFlipForBudget(t *testing.T) {
	f, err := flipForBudget(10, 10*math.Log(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("f = %v, want 0.5", f)
	}
	// Enormous budget clamps to the minimum flip probability.
	f, err = flipForBudget(1, 1e6)
	if err != nil || f < 1e-7 {
		t.Fatalf("f = %v, err %v", f, err)
	}
	if _, err := flipForBudget(0, 1); err == nil {
		t.Fatal("zero key frames should fail")
	}
}
