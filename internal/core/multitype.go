package core

import (
	"fmt"
	"math/rand"
	"time"

	"verro/internal/geom"
	"verro/internal/inpaint"
	"verro/internal/keyframe"
	"verro/internal/ldp"
	"verro/internal/motio"
	"verro/internal/obs"
	"verro/internal/par"
	"verro/internal/scene"
	"verro/internal/vid"
)

// MultiTypeResult is the output of SanitizeMultiType: one synthetic video
// containing synthetic objects of every class, plus per-class diagnostics.
type MultiTypeResult struct {
	Synthetic       *vid.Video
	SyntheticTracks *motio.TrackSet
	// PerClass maps the class name to its Phase I result and ε.
	PerClass map[string]*Phase1Result
	// Epsilon is the worst (largest) per-class ε — each class is
	// ε_class-indistinguishable within itself (paper Section 5).
	Epsilon        float64
	Phase1Time     time.Duration
	Phase2Time     time.Duration
	PreprocessTime time.Duration
}

// classOf maps a track's class label to the sprite family.
func classOf(name string) scene.ObjectClass {
	if name == scene.Vehicle.String() {
		return scene.Vehicle
	}
	return scene.Pedestrian
}

// SanitizeMultiType implements the paper's multiple-object-types discussion
// (Section 5): the track set is partitioned by class, Phase I runs
// independently per class (so all pedestrians are mutually
// indistinguishable and all vehicles are mutually indistinguishable), and a
// single Phase II renders every class's synthetic objects into one output
// video. Synthetic IDs are offset per class to stay unique.
func SanitizeMultiType(v *vid.Video, tracks *motio.TrackSet, cfg Config) (*MultiTypeResult, error) {
	if v == nil || v.Len() == 0 {
		return nil, fmt.Errorf("core: empty input video")
	}
	if tracks == nil {
		return nil, fmt.Errorf("core: nil track set")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Scoped pool, same as Sanitize: cfg.Workers applies to this run only.
	pool := par.NewPool(cfg.Workers)
	cfg.Trace.AttachPool(pool)
	root := cfg.Trace.Root()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Partition by class, preserving track order within a class.
	classes := map[string]*motio.TrackSet{}
	var classNames []string
	for _, t := range tracks.Tracks {
		set, ok := classes[t.Class]
		if !ok {
			set = motio.NewTrackSet()
			classes[t.Class] = set
			classNames = append(classNames, t.Class)
		}
		set.Add(t)
	}
	if len(classNames) == 0 {
		return nil, fmt.Errorf("core: no objects to sanitize")
	}

	// Shared preprocessing (key frames and backgrounds are class-agnostic).
	preStart := time.Now() //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output
	kfCfg := cfg.Keyframe
	if kfCfg.MaxSegmentLen == 0 {
		kfCfg.MaxSegmentLen = v.Len() / 20
		if kfCfg.MaxSegmentLen < 1 {
			kfCfg.MaxSegmentLen = 1
		}
	} else if kfCfg.MaxSegmentLen < 0 {
		kfCfg.MaxSegmentLen = 0
	}
	kfSpan := root.Child("keyframes")
	kf, err := keyframe.ExtractRT(v, kfCfg, obs.Runtime{Pool: pool, Span: kfSpan})
	kfSpan.End()
	if err != nil {
		return nil, err
	}
	step := cfg.BackgroundStep
	if step <= 0 {
		step = v.Len() / 40
		if step < 1 {
			step = 1
		}
	}
	inSpan := root.Child("inpaint")
	scenes, err := inpaint.ExtractScenesRT(v, tracks, step, cfg.Inpaint, obs.Runtime{Pool: pool, Span: inSpan})
	inSpan.End()
	if err != nil {
		return nil, err
	}
	preTime := time.Since(preStart) //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output

	res := &MultiTypeResult{
		PerClass:       map[string]*Phase1Result{},
		PreprocessTime: preTime,
	}

	// Phase I per class, Phase II per class (tracks only), then one shared
	// rendering pass.
	type classOut struct {
		name string
		p2   *Phase2Result
	}
	var outs []classOut
	idOffset := 0
	p1Start := time.Now() //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output
	p1Span := root.Child("phase1")
	p2Span := root.Child("phase2")
	for _, name := range classNames {
		set := classes[name]
		full := PresenceVectors(set, v.Len())
		reduced, err := ReduceToKeyFrames(full, kf.KeyFrames)
		if err != nil {
			return nil, err
		}
		p1, err := RunPhase1(reduced, kf.KeyFrames, cfg.Phase1, rng)
		if err != nil {
			return nil, fmt.Errorf("core: phase 1 for class %q: %w", name, err)
		}
		p1Span.Add(obs.CKeyFramesPicked, int64(len(p1.Picked)))
		var flips int64
		for i := range p1.Output {
			flips += int64(ldp.Hamming(p1.Optimal[i], p1.Output[i]))
		}
		p1Span.Add(obs.CRRBitsFlipped, flips)
		res.PerClass[name] = p1
		if p1.Epsilon > res.Epsilon {
			res.Epsilon = p1.Epsilon
		}

		p2cfg := cfg.Phase2
		p2cfg.Class = classOf(name)
		p2cfg.SkipRender = true // tracks only; rendering happens jointly below
		p2, err := RunPhase2RT(p1, kf, set, scenes, v.W, v.H, v.Len(), p2cfg, rng,
			obs.Runtime{Pool: pool, Span: p2Span})
		if err != nil {
			return nil, fmt.Errorf("core: phase 2 for class %q: %w", name, err)
		}
		// Offset synthetic IDs so classes never collide.
		for _, t := range p2.Tracks.Tracks {
			t.ID += idOffset
		}
		idOffset += set.Len() + 1
		outs = append(outs, classOut{name: name, p2: p2})
	}
	p1Span.End()
	res.Phase1Time = time.Since(p1Start) //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output

	// Joint rendering: composite every class's synthetic tracks over the
	// shared backgrounds, farther (smaller y) objects first.
	p2Start := time.Now() //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output
	merged := motio.NewTrackSet()
	out := vid.New(v.Name+"-verro", v.W, v.H, v.FPS)
	out.Moving = v.Moving
	type drawItem struct {
		class scene.ObjectClass
		id    int
		box   geom.Rect
	}
	// Per-run random color offset; see RunPhase2 for the rationale.
	colorOffset := rng.Intn(1 << 16)
	for k := 0; k < v.Len(); k++ {
		bg, err := scenes.Background(k)
		if err != nil {
			return nil, err
		}
		frame := bg.Clone()
		var items []drawItem
		for _, co := range outs {
			cls := classOf(co.name)
			for _, t := range co.p2.Tracks.Tracks {
				if b, ok := t.Box(k); ok {
					items = append(items, drawItem{class: cls, id: t.ID, box: b})
				}
			}
		}
		for a := 1; a < len(items); a++ {
			for b := a; b > 0 && items[b].box.Center().Y < items[b-1].box.Center().Y; b-- {
				items[b], items[b-1] = items[b-1], items[b]
			}
		}
		for _, it := range items {
			scene.DrawObject(frame, it.class, scene.Palette(it.id+colorOffset), it.box.CenterVec(), float64(k)*0.35)
		}
		if err := out.Append(frame); err != nil {
			return nil, err
		}
	}
	for _, co := range outs {
		for _, t := range co.p2.Tracks.Tracks {
			merged.Add(t)
		}
	}
	merged.Sort()
	p2Span.End()
	res.Phase2Time = time.Since(p2Start) //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output
	res.Synthetic = out
	res.SyntheticTracks = merged
	return res, nil
}
