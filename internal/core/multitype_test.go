package core

import (
	"math/rand"
	"testing"

	"verro/internal/geom"
	"verro/internal/interp"
	"verro/internal/motio"
	"verro/internal/scene"
)

// samplesAt builds interpolation samples at the given frames (positions
// increase with frame index).
func samplesAt(frames ...int) []interp.Sample {
	out := make([]interp.Sample, len(frames))
	for i, f := range frames {
		out[i] = interp.Sample{Frame: f, Pos: geom.V(float64(f), 1)}
	}
	return out
}

// mixedScene renders a scene with both pedestrians and vehicles by merging
// two generated videos' ground truths onto one video (pedestrian preset,
// with vehicle tracks relabelled).
func mixedScene(t *testing.T) (*scene.Generated, *motio.TrackSet) {
	t.Helper()
	p := scene.Preset{
		Name: "mixed", W: 96, H: 72, Frames: 40, Objects: 4,
		FPS: 30, Style: scene.StyleStreet, Class: scene.Pedestrian, Seed: 301,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Relabel half of the tracks as vehicles: the pixels stay pedestrian
	// sprites, which is fine — the sanitizer only consults the class label.
	mixed := motio.NewTrackSet()
	for i, tr := range g.Truth.Tracks {
		c := tr.Clone()
		if i%2 == 1 {
			c.Class = scene.Vehicle.String()
		}
		mixed.Add(c)
	}
	return g, mixed
}

func TestSanitizeMultiType(t *testing.T) {
	g, mixed := mixedScene(t)
	cfg := DefaultConfig()
	cfg.Keyframe.MaxSegmentLen = 8
	res, err := SanitizeMultiType(g.Video, mixed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Synthetic.Len() != g.Video.Len() {
		t.Fatalf("synthetic frames = %d", res.Synthetic.Len())
	}
	if len(res.PerClass) != 2 {
		t.Fatalf("classes = %d, want 2", len(res.PerClass))
	}
	for name, p1 := range res.PerClass {
		if p1.Epsilon <= 0 {
			t.Fatalf("class %q epsilon = %v", name, p1.Epsilon)
		}
	}
	if res.Epsilon <= 0 {
		t.Fatal("missing overall epsilon")
	}
	// Synthetic IDs must be unique across classes.
	seen := map[int]bool{}
	for _, tr := range res.SyntheticTracks.Tracks {
		if seen[tr.ID] {
			t.Fatalf("duplicate synthetic ID %d", tr.ID)
		}
		seen[tr.ID] = true
	}
	// Both classes should usually survive at f=0.1.
	classes := map[string]int{}
	for _, tr := range res.SyntheticTracks.Tracks {
		classes[tr.Class]++
	}
	if len(classes) == 0 {
		t.Fatal("no synthetic objects at all")
	}
}

func TestSanitizeMultiTypeValidation(t *testing.T) {
	g, _ := mixedScene(t)
	if _, err := SanitizeMultiType(nil, motio.NewTrackSet(), DefaultConfig()); err == nil {
		t.Fatal("nil video should fail")
	}
	if _, err := SanitizeMultiType(g.Video, nil, DefaultConfig()); err == nil {
		t.Fatal("nil tracks should fail")
	}
	if _, err := SanitizeMultiType(g.Video, motio.NewTrackSet(), DefaultConfig()); err == nil {
		t.Fatal("no objects should fail")
	}
}

func TestSanitizeMultiTypeSingleClassMatchesRegularShape(t *testing.T) {
	g, _ := mixedScene(t)
	cfg := DefaultConfig()
	cfg.Keyframe.MaxSegmentLen = 8
	res, err := SanitizeMultiType(g.Video, g.Truth, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerClass) != 1 {
		t.Fatalf("single-class input produced %d classes", len(res.PerClass))
	}
}

func TestClassOf(t *testing.T) {
	if classOf("vehicle") != scene.Vehicle {
		t.Fatal("vehicle class not recognized")
	}
	if classOf("pedestrian") != scene.Pedestrian || classOf("anything") != scene.Pedestrian {
		t.Fatal("default class should be pedestrian")
	}
}

func TestSplitRuns(t *testing.T) {
	samples := samplesAt(0, 5, 10, 50, 55, 200)
	runs := splitRuns(samples, 20)
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(runs))
	}
	if len(runs[0]) != 3 || len(runs[1]) != 2 || len(runs[2]) != 1 {
		t.Fatalf("run sizes wrong: %d %d %d", len(runs[0]), len(runs[1]), len(runs[2]))
	}
	if splitRuns(nil, 10) != nil {
		t.Fatal("empty samples should be nil")
	}
	one := splitRuns(samplesAt(7), 10)
	if len(one) != 1 || len(one[0]) != 1 {
		t.Fatal("single sample should be one run")
	}
}

func TestPickedSpacing(t *testing.T) {
	p1 := &Phase1Result{KeyFrames: []int{0, 10, 20, 30}, Picked: []int{0, 3}}
	if got := pickedSpacing(p1, 100); got != 30 {
		t.Fatalf("spacing = %d, want 30", got)
	}
	single := &Phase1Result{KeyFrames: []int{5}, Picked: []int{0}}
	if got := pickedSpacing(single, 100); got != 100 {
		t.Fatalf("single-pick spacing = %d", got)
	}
	if got := pickedSpacing(&Phase1Result{}, 0); got != 1 {
		t.Fatalf("degenerate spacing = %d", got)
	}
}

func TestDrawCoordinatesSmoothness(t *testing.T) {
	// A returning object should be matched to the nearest candidate.
	rng := rand.New(rand.NewSource(1))
	who := []int{0, 1}
	pool := []geom.Vec{{X: 10, Y: 10}, {X: 100, Y: 100}}
	lastPos := []geom.Vec{{X: 12, Y: 12}, {}}
	hasLast := []bool{true, false}
	out, err := drawCoordinates(who, pool, lastPos, hasLast, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != pool[0] {
		t.Fatalf("returning object matched %v, want nearest %v", out[0], pool[0])
	}
	if out[1] != pool[1] {
		t.Fatalf("new object should take the remaining candidate, got %v", out[1])
	}
}
