package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"verro/internal/ldp"
	"verro/internal/lp"
)

// Phase1Config tunes the optimal-object-presence phase.
type Phase1Config struct {
	// F is the Equation 4 flip probability in (0, 1]; the per-run privacy
	// level follows as ε = K·ln((2−f)/f) over the K picked key frames.
	F float64
	// Optimize enables the Section 3.3 key-frame selection (OPT). When
	// false every key frame receives budget — the "dimension reduction
	// only" ablation.
	Optimize bool
	// LaplaceEps, when positive, perturbs the per-key-frame object counts
	// with Laplace(1/LaplaceEps) noise before the optimization
	// (Section 3.3.3). Zero disables the noise.
	LaplaceEps float64
	// MinPicked is the lower cardinality bound of Equation 8; the paper
	// requires at least 2 so Phase II can interpolate. Values below 2 are
	// raised to 2.
	MinPicked int
	// DensityFraction positions the pick threshold relative to the mean
	// per-key-frame object count: frames with at least
	// DensityFraction×mean objects receive budget. 0 means the default
	// 0.5, which retains the large majority of objects while skipping
	// near-empty frames.
	DensityFraction float64
}

// DefaultPhase1Config mirrors the paper's default run: f = 0.1, OPT on.
func DefaultPhase1Config() Phase1Config {
	return Phase1Config{F: 0.1, Optimize: true, MinPicked: 2}
}

// Validate rejects privacy parameters outside their mathematical domain
// before they reach the mechanisms. NaN fails every ordered comparison, so
// each check names it explicitly — a NaN flip probability would otherwise
// pass `F <= 0 || F > 1` and flow ε = K·ln((2−f)/f) all the way into the
// published accounting.
func (c Phase1Config) Validate() error {
	if math.IsNaN(c.F) || c.F <= 0 || c.F > 1 {
		return fmt.Errorf("core: flip probability %v outside (0,1]", c.F)
	}
	if math.IsNaN(c.LaplaceEps) || math.IsInf(c.LaplaceEps, 0) || c.LaplaceEps < 0 {
		return fmt.Errorf("core: Laplace epsilon %v must be finite and non-negative", c.LaplaceEps)
	}
	if math.IsNaN(c.DensityFraction) || math.IsInf(c.DensityFraction, 0) || c.DensityFraction < 0 {
		return fmt.Errorf("core: density fraction %v must be finite and non-negative", c.DensityFraction)
	}
	if c.MinPicked < 0 {
		return fmt.Errorf("core: minimum picked key frames %d must be non-negative", c.MinPicked)
	}
	return nil
}

// Phase1Result captures everything Phase I produced.
type Phase1Result struct {
	KeyFrames []int // the ℓ key frame indices (video frame numbers)
	Picked    []int // indices into KeyFrames chosen for budget allocation
	// Reduced are the ℓ-bit presence vectors B'_i.
	Reduced []ldp.BitVector
	// Optimal are the vectors restricted to picked frames (B*_i): entries
	// at unpicked frames are forced to 0.
	Optimal []ldp.BitVector
	// Output are the randomized vectors R_i (still ℓ-bit; entries at
	// unpicked frames are 0).
	Output []ldp.BitVector
	// Epsilon is the achieved ε-Object Indistinguishability level.
	Epsilon float64
	// F echoes the flip probability used.
	F float64
}

// PickedSet reports, per key-frame index, whether it was picked.
func (r *Phase1Result) PickedSet() []bool {
	out := make([]bool, len(r.KeyFrames))
	for _, p := range r.Picked {
		if p >= 0 && p < len(out) {
			out[p] = true
		}
	}
	return out
}

// ErrNoKeyFrames is returned when Phase I receives no key frames.
var ErrNoKeyFrames = errors.New("core: no key frames")

// RunPhase1 executes Phase I over the reduced presence vectors.
//
// The key-frame selection objective follows the paper's Equations 7-9:
// picking frame k trades the spurious-presence noise of random response
// against losing the ones_k objects present there. Equation 9 normalizes
// the noise term per frame (both terms carry the factor f), so the
// per-frame pick cost is f·(density − ones_k), where density is the mean
// object count over key frames: frames carrying at least average presence
// are worth a budget share, sparse frames are not. This keeps the selection
// stable across f (the paper observes f "only slightly affects the
// optimization") and prevents the trivial collapse a population-scaled
// threshold (n·f/2) causes on sparse videos. The BIP is solved by LP
// relaxation and rounding under the Equation 8 cardinality constraints
// 2 ≤ Σx_k ≤ ℓ.
func RunPhase1(reduced []ldp.BitVector, keyFrames []int, cfg Phase1Config, rng *rand.Rand) (*Phase1Result, error) {
	ell := len(keyFrames)
	if ell == 0 {
		return nil, ErrNoKeyFrames
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for i, v := range reduced {
		if len(v) != ell {
			return nil, fmt.Errorf("core: vector %d has %d bits, want %d", i, len(v), ell)
		}
	}
	if cfg.MinPicked < 2 {
		cfg.MinPicked = 2
	}
	if cfg.MinPicked > ell {
		cfg.MinPicked = ell
	}

	n := len(reduced)
	counts := KeyFrameCounts(reduced)
	if counts == nil {
		counts = make([]int, ell)
	}

	// Optionally perturb the counts for end-to-end indistinguishability of
	// the optimization statistics (Section 3.3.3, sensitivity Δ = 1).
	noisy := make([]float64, ell)
	for k, c := range counts {
		noisy[k] = float64(c)
	}
	if cfg.LaplaceEps > 0 {
		var err error
		noisy, err = ldp.NoisyCounts(counts, 1, cfg.LaplaceEps, rng)
		if err != nil {
			return nil, err
		}
	}

	// Key-frame selection.
	picked := make([]int, 0, ell)
	if cfg.Optimize && ell > cfg.MinPicked {
		frac := cfg.DensityFraction
		if frac <= 0 {
			frac = 0.5
		}
		var density float64
		for _, c := range noisy {
			density += c
		}
		density /= float64(ell)
		costs := make([]float64, ell)
		for k := 0; k < ell; k++ {
			costs[k] = cfg.F * (frac*density - noisy[k])
		}
		res, err := lp.SolveBinary(costs, cfg.MinPicked, ell)
		if err != nil {
			return nil, fmt.Errorf("core: key-frame optimization: %w", err)
		}
		for k, x := range res.X {
			if x == 1 {
				picked = append(picked, k)
			}
		}
	} else {
		for k := 0; k < ell; k++ {
			picked = append(picked, k)
		}
	}

	// Restrict vectors to the picked frames (B*).
	pickedSet := make([]bool, ell)
	for _, p := range picked {
		pickedSet[p] = true
	}
	optimal := make([]ldp.BitVector, n)
	for i, v := range reduced {
		b := ldp.NewBitVector(ell)
		for k := range v {
			if pickedSet[k] && v[k] {
				b[k] = true
			}
		}
		optimal[i] = b
	}

	// Random response on the picked entries only.
	output := make([]ldp.BitVector, n)
	for i, v := range optimal {
		r := ldp.NewBitVector(ell)
		for k := 0; k < ell; k++ {
			if !pickedSet[k] {
				continue
			}
			bit := ldp.BitVector{v[k]}
			flipped, err := ldp.RAPPORFlip(bit, cfg.F, rng)
			if err != nil {
				return nil, err
			}
			r[k] = flipped[0]
		}
		output[i] = r
	}

	eps, err := ldp.Epsilon(len(picked), cfg.F)
	if err != nil {
		return nil, err
	}
	return &Phase1Result{
		KeyFrames: append([]int(nil), keyFrames...),
		Picked:    picked,
		Reduced:   reduced,
		Optimal:   optimal,
		Output:    output,
		Epsilon:   eps,
		F:         cfg.F,
	}, nil
}

// NaiveRandomResponse is the Algorithm 1 baseline: classic per-frame
// randomized response over the full m-bit vectors with total budget eps
// split equally — the scheme whose poor utility motivates VERRO.
func NaiveRandomResponse(full []ldp.BitVector, eps float64, rng *rand.Rand) ([]ldp.BitVector, error) {
	out := make([]ldp.BitVector, len(full))
	for i, v := range full {
		r, err := ldp.ClassicRR(v, eps, rng)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
