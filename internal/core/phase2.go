package core

import (
	"fmt"
	"math"
	"math/rand"

	"verro/internal/assign"
	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/inpaint"
	"verro/internal/interp"
	"verro/internal/keyframe"
	"verro/internal/motio"
	"verro/internal/obs"
	"verro/internal/par"
	"verro/internal/scene"
	"verro/internal/vid"
)

// Phase2Config tunes synthetic video generation.
type Phase2Config struct {
	// Interp selects the trajectory interpolation method. The default is
	// the paper's Lagrange interpolation: its polynomial oscillation on
	// scattered control points is load-bearing — positions that swing out
	// of frame are suppressed, which is what prunes spurious (ghost)
	// appearances at large flip probabilities (Section 6.3). MethodHybrid
	// or MethodLinear produce smoother trajectories but inflate aggregate
	// counts at high f.
	Interp interp.Method
	// Class is the synthetic sprite family to render.
	Class scene.ObjectClass
	// SkipRender computes the synthetic tracks (boxes and trajectories)
	// without producing pixel data — Result.Video is nil. Parameter sweeps
	// that only evaluate track-level utility use this to avoid the cost of
	// rendering full videos.
	SkipRender bool
}

// DefaultPhase2Config renders pedestrian sprites with Lagrange interpolation.
func DefaultPhase2Config() Phase2Config {
	return Phase2Config{Interp: interp.MethodLagrange, Class: scene.Pedestrian}
}

// Phase2Result is the generated synthetic video plus the synthetic tracks
// (for utility evaluation — the video recipient only sees the video).
type Phase2Result struct {
	Video  *vid.Video
	Tracks *motio.TrackSet
	// Assigned records the random key-frame coordinates given to each
	// object index (before interpolation) — the Figure 5 "before Phase II"
	// state.
	Assigned [][]interp.Sample
	// Lost counts objects whose randomized presence vector came out empty
	// (Section 4.2.1).
	Lost int
}

// candidatePools builds the identity-free candidate coordinate pools of
// Section 4.2.2: for every key frame, the center coordinates of all
// objects present in that frame of the original video. No object identity
// crosses this boundary — Phase II sees bare coordinates only.
func candidatePools(tracks *motio.TrackSet, keyFrames []int) [][]geom.Vec {
	pools := make([][]geom.Vec, len(keyFrames))
	for j, k := range keyFrames {
		for _, t := range tracks.Tracks {
			if c, ok := t.Center(k); ok {
				pools[j] = append(pools[j], c)
			}
		}
	}
	return pools
}

// expandPool widens pool j with candidate coordinates from neighbouring
// frames of the same segment (the "insufficient candidate coordinates"
// case), and falls back to the union of all pools, then to uniform random
// positions, so assignment always succeeds.
func expandPool(pool []geom.Vec, tracks *motio.TrackSet, seg keyframe.Segment, keyFrame, need int, bounds geom.Rect, rng *rand.Rand) []geom.Vec {
	out := append([]geom.Vec(nil), pool...)
	for d := 1; len(out) < need && (keyFrame-d >= seg.Start || keyFrame+d <= seg.End); d++ {
		for _, k := range []int{keyFrame - d, keyFrame + d} {
			if k < seg.Start || k > seg.End {
				continue
			}
			for _, t := range tracks.Tracks {
				if c, ok := t.Center(k); ok {
					out = append(out, c)
				}
			}
		}
	}
	for len(out) < need {
		out = append(out, geom.V(
			float64(bounds.Min.X)+rng.Float64()*float64(bounds.Dx()),
			float64(bounds.Min.Y)+rng.Float64()*float64(bounds.Dy()),
		))
	}
	return out
}

// drawCoordinates picks one pool coordinate (without replacement) for every
// object in who. Objects with a previous draw are matched to candidates by
// minimum total distance from that draw; first-time objects consume the
// remaining candidates in (already shuffled) pool order.
func drawCoordinates(who []int, pool []geom.Vec, lastPos []geom.Vec, hasLast []bool, rng *rand.Rand) ([]geom.Vec, error) {
	out := make([]geom.Vec, len(who))
	used := make([]bool, len(pool))

	// Returning objects first: smooth continuation via min-cost matching.
	var returning []int // indices into who
	for idx, i := range who {
		if hasLast[i] {
			returning = append(returning, idx)
		}
	}
	if len(returning) > 0 {
		cost := make([][]float64, len(returning))
		for r, idx := range returning {
			cost[r] = make([]float64, len(pool))
			for c, cand := range pool {
				cost[r][c] = lastPos[who[idx]].Dist(cand)
			}
		}
		rowToCol, _, err := assign.Solve(cost)
		if err != nil {
			return nil, err
		}
		for r, idx := range returning {
			c := rowToCol[r]
			if c < 0 { // more returning objects than candidates cannot
				// happen (pool expanded to len(who)), but stay defensive
				for cc := range pool {
					if !used[cc] {
						c = cc
						break
					}
				}
			}
			out[idx] = pool[c]
			used[c] = true
		}
	}

	// First-time objects: uniform draws from the remaining candidates.
	next := 0
	for idx, i := range who {
		if hasLast[i] {
			continue
		}
		for next < len(pool) && used[next] {
			next++
		}
		if next >= len(pool) {
			// Defensive: duplicate a random candidate rather than fail.
			out[idx] = pool[rng.Intn(len(pool))]
			continue
		}
		out[idx] = pool[next]
		used[next] = true
	}
	return out, nil
}

// pickedSpacing returns the typical frame distance between consecutive
// picked key frames (at least 1).
func pickedSpacing(p1 *Phase1Result, numFrames int) int {
	picked := p1.Picked
	if len(picked) <= 1 {
		if numFrames < 1 {
			return 1
		}
		return numFrames
	}
	span := p1.KeyFrames[picked[len(picked)-1]] - p1.KeyFrames[picked[0]]
	s := span / (len(picked) - 1)
	if s < 1 {
		s = 1
	}
	return s
}

// splitRuns partitions time-ordered samples into runs whose consecutive
// frame gaps never exceed maxGap.
func splitRuns(samples []interp.Sample, maxGap int) [][]interp.Sample {
	if len(samples) == 0 {
		return nil
	}
	var runs [][]interp.Sample
	start := 0
	for i := 1; i < len(samples); i++ {
		if samples[i].Frame-samples[i-1].Frame > maxGap {
			runs = append(runs, samples[start:i])
			start = i
		}
	}
	runs = append(runs, samples[start:])
	return runs
}

// finiteVec reports whether both coordinates are finite numbers. Positions
// must be checked before geom.Vec.Round: converting NaN/±Inf float64 to int
// is implementation-defined in Go, so a blown-up Lagrange evaluation would
// otherwise feed garbage to the in-bounds test.
func finiteVec(p geom.Vec) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// blowupLimit is how far (in frame diagonals) a Lagrange trajectory may
// swing outside the frame before Phase II treats it as Runge blowup rather
// than the paper's load-bearing out-of-frame suppression (Section 6.3).
// Moderate excursions are kept — they prune ghost appearances at high f —
// but excursions this extreme carry no signal and, with many control
// points, only grow worse.
const blowupLimit = 16.0

// safeExtend evaluates the run with interp.ExtendToBorder and guards the
// Lagrange path against catastrophic blowup: if any position is non-finite,
// or the run has more control points than the hybrid cutoff and some
// position lies further than blowupLimit frame diagonals from the frame
// center, the run is re-evaluated with piecewise-linear interpolation (the
// same fallback MethodHybrid applies a priori).
func safeExtend(m interp.Method, run []interp.Sample, numFrames int, bounds geom.Rect, extend int) ([]int, geom.Polyline, error) {
	frames, pos, err := interp.ExtendToBorder(m, run, numFrames, bounds, extend)
	if err != nil || m != interp.MethodLagrange {
		return frames, pos, err
	}
	center := geom.V(
		(float64(bounds.Min.X)+float64(bounds.Max.X))/2,
		(float64(bounds.Min.Y)+float64(bounds.Max.Y))/2,
	)
	limit := blowupLimit * math.Hypot(float64(bounds.Dx()), float64(bounds.Dy()))
	runge := len(run) > interp.HybridCutoff
	for _, p := range pos {
		if !finiteVec(p) || (runge && p.Sub(center).Norm() > limit) {
			return interp.ExtendToBorder(interp.MethodLinear, run, numFrames, bounds, extend)
		}
	}
	return frames, pos, nil
}

// RunPhase2 generates the synthetic video from the Phase I output.
// scenes provides the reconstructed background for every frame; kf is the
// segmentation that produced p1.KeyFrames; tracks supplies the candidate
// coordinates (their identities are stripped before use).
func RunPhase2(p1 *Phase1Result, kf *keyframe.Result, tracks *motio.TrackSet,
	scenes inpaint.Scenes, w, h, numFrames int, cfg Phase2Config, rng *rand.Rand) (*Phase2Result, error) {
	return RunPhase2RT(p1, kf, tracks, scenes, w, h, numFrames, cfg, rng, obs.Runtime{})
}

// RunPhase2RT is RunPhase2 on an explicit runtime: frame rendering shards
// over rt.Pool and render/loss counters land on rt.Span. The runtime is
// observational only — every random draw happens on the coordinator, so the
// output is bit-identical to RunPhase2 for the same rng stream.
func RunPhase2RT(p1 *Phase1Result, kf *keyframe.Result, tracks *motio.TrackSet,
	scenes inpaint.Scenes, w, h, numFrames int, cfg Phase2Config, rng *rand.Rand, rt obs.Runtime) (*Phase2Result, error) {

	plan, err := planPhase2(p1, kf, tracks, w, h, numFrames, cfg, rng)
	if err != nil {
		return nil, err
	}
	rendered, err := plan.renderRange(scenes, 0, numFrames, rt)
	if err != nil {
		return nil, err
	}
	asm := newPhase2Assembler(plan)
	out := vid.New("synthetic", w, h, 0)
	for i, fr := range rendered {
		asm.add(i, fr)
		if cfg.SkipRender {
			continue
		}
		if err := out.Append(fr.frame); err != nil {
			return nil, err
		}
	}
	rt.Span.Add(obs.CFramesRendered, int64(numFrames))
	res := asm.finish(rt)
	if !cfg.SkipRender {
		res.Video = out
	}
	return res, nil
}

// placed is one synthetic object scheduled on a frame: its synthetic id and
// interpolated position.
type placed struct {
	id  int
	pos geom.Vec
}

// phase2Plan is the coordinator-side outcome of Phase II: every random draw
// has been consumed (key-frame assignment, pool expansion/shuffle, and the
// palette offset), leaving a pure per-frame render schedule. Rendering any
// frame from the plan is deterministic, so the batch path can render all
// frames at once while the streaming path renders window by window — with
// bit-identical output, because both consume the identical rng stream here
// and only here.
type phase2Plan struct {
	cfg       Phase2Config
	w, h      int
	numFrames int
	bounds    geom.Rect
	perFrame  [][]placed
	// colorOffset randomizes the palette per run (drawn after assignment,
	// before any rendering — the draw order is part of the byte contract).
	colorOffset int
	assigned    [][]interp.Sample
	lost        int
}

// planPhase2 runs the randomized half of Phase II and returns the render
// schedule. It consumes rng in exactly the order the original monolithic
// implementation did.
func planPhase2(p1 *Phase1Result, kf *keyframe.Result, tracks *motio.TrackSet,
	w, h, numFrames int, cfg Phase2Config, rng *rand.Rand) (*phase2Plan, error) {

	if p1 == nil || len(p1.Output) == 0 {
		return nil, fmt.Errorf("core: phase 2 requires phase 1 output")
	}
	if numFrames <= 0 || w <= 0 || h <= 0 {
		return nil, fmt.Errorf("core: invalid synthetic geometry %dx%d×%d", w, h, numFrames)
	}
	bounds := geom.R(0, 0, w, h)
	n := len(p1.Output)
	ell := len(p1.KeyFrames)

	pools := candidatePools(tracks, p1.KeyFrames)

	// Per key frame (in time order), pick coordinates for the objects whose
	// randomized bit is set. An object's *first* coordinate is a uniform
	// draw from the pool; subsequent coordinates are matched to the pool by
	// minimum total displacement from the object's own previous draw
	// (Hungarian assignment). The matching reads only previous randomized
	// draws and the identity-free pool — never the original object identity
	// — so it is post-processing in the Theorem 4.1 sense while making
	// synthetic trajectories follow the scene's motion flow.
	assigned := make([][]interp.Sample, n)
	lastPos := make([]geom.Vec, n)
	hasLast := make([]bool, n)
	for j := 0; j < ell; j++ {
		var who []int
		for i := 0; i < n; i++ {
			if p1.Output[i][j] {
				who = append(who, i)
			}
		}
		if len(who) == 0 {
			continue
		}
		segIdx := kf.SegmentOf(p1.KeyFrames[j])
		seg := keyframe.Segment{Start: p1.KeyFrames[j], End: p1.KeyFrames[j]}
		if segIdx >= 0 {
			seg = kf.Segments[segIdx]
		}
		pool := expandPool(pools[j], tracks, seg, p1.KeyFrames[j], len(who), bounds, rng)
		rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })

		chosen, err := drawCoordinates(who, pool, lastPos, hasLast, rng)
		if err != nil {
			return nil, fmt.Errorf("core: coordinate assignment at key frame %d: %w", p1.KeyFrames[j], err)
		}
		for idx, i := range who {
			pos := chosen[idx]
			assigned[i] = append(assigned[i], interp.Sample{Frame: p1.KeyFrames[j], Pos: pos})
			lastPos[i] = pos
			hasLast[i] = true
		}
	}

	// Interpolate every retained object and render. An object's samples are
	// split into runs wherever consecutive picked key frames are separated
	// by more than maxGap frames: an isolated randomized bit far from the
	// object's main presence cluster becomes a brief appearance rather than
	// stretching the object across the whole video (the paper's head/end
	// rule plus its Phase II suppression have the same effect). maxGap and
	// the border-extension cap are both derived from the typical spacing of
	// picked key frames — identity-free quantities.
	spacing := pickedSpacing(p1, numFrames)
	maxGap := 2 * spacing
	maxExtend := spacing
	// A run consisting of a single assigned coordinate has no motion
	// evidence at all: the paper notes interpolation needs at least two
	// assigned frames and that stray appearances are suppressed in
	// Phase II. Such runs are rendered as a brief flicker around their key
	// frame rather than extended across the segment — this is what keeps
	// aggregate counts usable even at f = 0.9 (Section 6.3).
	const singleExtend = 2

	perFrame := make([][]placed, numFrames)
	lost := 0
	for i := 0; i < n; i++ {
		if len(assigned[i]) == 0 {
			lost++
			continue
		}
		for _, run := range splitRuns(assigned[i], maxGap) {
			extend := maxExtend
			if len(run) == 1 {
				extend = singleExtend
			}
			frames, positions, err := safeExtend(cfg.Interp, run, numFrames, bounds, extend)
			if err != nil {
				return nil, fmt.Errorf("core: interpolate object %d: %w", i, err)
			}
			for idx, k := range frames {
				p := positions[idx]
				// Suppress positions that interpolate outside the frame
				// (Section 6.3): the object simply does not appear there.
				// Non-finite positions (possible only for non-Lagrange
				// methods fed degenerate samples) are suppressed the same
				// way instead of reaching the undefined NaN→int conversion.
				if !finiteVec(p) || !p.Round().In(bounds) {
					continue
				}
				perFrame[k] = append(perFrame[k], placed{id: i + 1, pos: p})
			}
		}
	}

	// Synthetic colors are drawn from the palette at a random per-run
	// offset: the color assigned to a synthetic object carries no
	// information across runs or across cameras (a fixed palette would let
	// an adversary link "the red synthetic object" between two sanitized
	// videos of the same scene).
	colorOffset := rng.Intn(1 << 16)

	return &phase2Plan{
		cfg: cfg, w: w, h: h, numFrames: numFrames, bounds: bounds,
		perFrame: perFrame, colorOffset: colorOffset,
		assigned: assigned, lost: lost,
	}, nil
}

// recordEntry is one synthetic object's box on one frame.
type recordEntry struct {
	id  int
	box geom.Rect
}

// renderedFrame is the render output for a single frame: the pixel data
// (nil under SkipRender) and the boxes drawn on it.
type renderedFrame struct {
	frame *img.Image
	recs  []recordEntry
	err   error
}

// renderRange renders frames [lo, hi) of the plan on rt.Pool. Frames render
// independently: every RNG draw happened during planning on the
// coordinator, DrawObject/syntheticBox are pure given their frame, and each
// worker touches only its own frame clone and record list. Results are
// gathered in frame order, so rendering the clip in one call or in
// consecutive windows produces bit-identical frames and records.
func (pl *phase2Plan) renderRange(scenes inpaint.Scenes, lo, hi int, rt obs.Runtime) ([]renderedFrame, error) {
	renderFrame := func(i int) renderedFrame {
		k := lo + i
		// Depth-sort: draw farther (smaller y) objects first. perFrame[k]
		// is owned by this frame, so the in-place sort is race-free.
		ps := pl.perFrame[k]
		depthSort(ps)
		var res renderedFrame
		if pl.cfg.SkipRender {
			for _, p := range ps {
				res.recs = append(res.recs, recordEntry{p.id, syntheticBox(pl.cfg.Class, p.pos, pl.h)})
			}
			return res
		}
		bg, err := scenes.Background(k)
		if err != nil {
			res.err = fmt.Errorf("core: background for frame %d: %w", k, err)
			return res
		}
		if bg.W != pl.w || bg.H != pl.h {
			res.err = fmt.Errorf("core: background %dx%d does not match %dx%d", bg.W, bg.H, pl.w, pl.h)
			return res
		}
		frame := bg.Clone()
		for _, p := range ps {
			phase := float64(k) * 0.35
			res.recs = append(res.recs, recordEntry{p.id, scene.DrawObject(frame, pl.cfg.Class, scene.Palette(p.id+pl.colorOffset), p.pos, phase)})
		}
		res.frame = frame
		return res
	}
	rendered := par.MapPool(rt.Pool, hi-lo, 1, renderFrame)
	for _, fr := range rendered {
		if fr.err != nil {
			return nil, fr.err
		}
	}
	return rendered, nil
}

// depthSort orders a frame's placements back-to-front (smaller y first),
// the draw order renderRange and geometryRange both apply.
func depthSort(ps []placed) {
	for a := 1; a < len(ps); a++ {
		for b := a; b > 0 && ps[b].pos.Y < ps[b-1].pos.Y; b-- {
			ps[b], ps[b-1] = ps[b-1], ps[b]
		}
	}
}

// geometryRange computes the record entries of frames [lo, hi) without
// touching pixel data: syntheticBox is kept in lockstep with
// scene.DrawObject, so the boxes are exactly those renderRange would have
// recorded. The resume path uses it to re-fold windows whose pixels already
// sit in the persisted staging file into the synthetic track set, keeping a
// resumed Result identical to an uninterrupted one.
func (pl *phase2Plan) geometryRange(lo, hi int) []renderedFrame {
	out := make([]renderedFrame, hi-lo)
	for i := range out {
		k := lo + i
		ps := pl.perFrame[k]
		depthSort(ps)
		for _, p := range ps {
			out[i].recs = append(out[i].recs, recordEntry{p.id, syntheticBox(pl.cfg.Class, p.pos, pl.h)})
		}
	}
	return out
}

// phase2Assembler folds rendered frames (fed strictly in frame order) into
// the synthetic track set. The batch path feeds it the whole clip at once;
// the streaming path feeds it window by window — the fold is order-
// deterministic either way.
type phase2Assembler struct {
	plan            *phase2Plan
	synth           *motio.TrackSet
	synthTracks     map[int]*motio.Track
	objectsRendered int64
}

func newPhase2Assembler(plan *phase2Plan) *phase2Assembler {
	return &phase2Assembler{
		plan:        plan,
		synth:       motio.NewTrackSet(),
		synthTracks: make(map[int]*motio.Track),
	}
}

// add records the boxes of frame k.
func (a *phase2Assembler) add(k int, fr renderedFrame) {
	a.objectsRendered += int64(len(fr.recs))
	for _, r := range fr.recs {
		vis := r.box.Intersect(a.plan.bounds)
		if vis.Empty() {
			continue
		}
		tr, ok := a.synthTracks[r.id]
		if !ok {
			tr = motio.NewTrack(r.id, a.plan.cfg.Class.String())
			a.synthTracks[r.id] = tr
			a.synth.Add(tr)
		}
		tr.Set(k, vis)
	}
}

// finish sorts the tracks, lands the object counters on rt.Span, and
// returns the result (Video left nil — the caller owns frame delivery).
func (a *phase2Assembler) finish(rt obs.Runtime) *Phase2Result {
	a.synth.Sort()
	rt.Span.Add(obs.CObjectsRendered, a.objectsRendered)
	rt.Span.Add(obs.CObjectsLost, int64(a.plan.lost))
	return &Phase2Result{
		Tracks:   a.synth,
		Assigned: a.plan.assigned,
		Lost:     a.plan.lost,
	}
}

// syntheticBox computes the box a synthetic object would cover at pos
// without rendering it — the SkipRender geometry path, kept in lockstep
// with scene.DrawObject.
func syntheticBox(class scene.ObjectClass, pos geom.Vec, frameH int) geom.Rect {
	s := scene.DepthScale(pos.Y, frameH)
	w, h := scene.SpriteSize(class, s)
	c := pos.Round()
	return geom.RectAt(c.X-w/2, c.Y-h/2, w, h)
}
