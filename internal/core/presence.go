// Package core implements VERRO itself: object presence vectors
// (Definition 3.1), Phase I — dimension reduction, utility-maximizing key
// frame selection and random response (Section 3) — and Phase II — random
// coordinate assignment, trajectory interpolation and synthetic video
// rendering (Section 4) — plus the end-to-end Sanitizer with its privacy
// accounting.
package core

import (
	"fmt"

	"verro/internal/keyframe"
	"verro/internal/ldp"
	"verro/internal/motio"
)

// PresenceVectors builds the full m-frame presence bit vectors B_i of
// Definition 3.1 for every object, in TrackSet order.
func PresenceVectors(tracks *motio.TrackSet, numFrames int) []ldp.BitVector {
	out := make([]ldp.BitVector, tracks.Len())
	for i, t := range tracks.Tracks {
		v := ldp.NewBitVector(numFrames)
		for k := range t.Boxes {
			if k >= 0 && k < numFrames {
				v[k] = true
			}
		}
		out[i] = v
	}
	return out
}

// ReduceToKeyFrames projects full presence vectors onto the ℓ key frames
// (Section 3.2): entry k of the reduced vector is the object's presence in
// key frame ℓ_k.
func ReduceToKeyFrames(full []ldp.BitVector, keyFrames []int) ([]ldp.BitVector, error) {
	out := make([]ldp.BitVector, len(full))
	for i, v := range full {
		r := ldp.NewBitVector(len(keyFrames))
		for j, k := range keyFrames {
			if k < 0 || k >= len(v) {
				return nil, fmt.Errorf("core: key frame %d outside vector of %d frames", k, len(v))
			}
			r[j] = v[k]
		}
		out[i] = r
	}
	return out, nil
}

// DistinctPresent counts the vectors with at least one set bit — the
// "count of distinct objects" utility measure of Figure 5(a,c,e).
func DistinctPresent(vs []ldp.BitVector) int {
	n := 0
	for _, v := range vs {
		if !v.Empty() {
			n++
		}
	}
	return n
}

// TruthfulPresent counts the randomized vectors that retain at least one
// *true* presence bit: output[i][k] set where truth[i][k] was set. This is
// the paper's "count of distinct objects" after random response — an object
// whose only surviving bits are spurious flips carries no information about
// the original and is counted as lost.
func TruthfulPresent(output, truth []ldp.BitVector) int {
	n := 0
	for i, v := range output {
		if i >= len(truth) {
			break
		}
		for k := range v {
			if k < len(truth[i]) && v[k] && truth[i][k] {
				n++
				break
			}
		}
	}
	return n
}

// KeyFrameCounts returns, per key frame, how many objects are present —
// the Σ_i kb_i^k statistics feeding the Section 3.3 optimization.
func KeyFrameCounts(reduced []ldp.BitVector) []int {
	if len(reduced) == 0 {
		return nil
	}
	out := make([]int, len(reduced[0]))
	for _, v := range reduced {
		for k, b := range v {
			if b {
				out[k]++
			}
		}
	}
	return out
}

// PresentInKeyFrames counts the objects visible in at least one key frame —
// the "Remaining #" column of the paper's Table 2.
func PresentInKeyFrames(tracks *motio.TrackSet, kf *keyframe.Result) int {
	n := 0
	for _, t := range tracks.Tracks {
		for _, k := range kf.KeyFrames {
			if t.Present(k) {
				n++
				break
			}
		}
	}
	return n
}
