package core

import (
	"math"
	"math/rand"
	"testing"

	"verro/internal/geom"
	"verro/internal/keyframe"
	"verro/internal/ldp"
	"verro/internal/motio"
)

// TestCoordinateAssignmentIdentityFree verifies Theorem 4.1's premise
// empirically: when two objects are both present at a key frame, the
// random coordinate assignment gives each candidate coordinate to each
// object with equal probability — no dependence on which original object
// is which.
func TestCoordinateAssignmentIdentityFree(t *testing.T) {
	// Two objects, both present at two key frames; the candidate pool at
	// each key frame is their two (distinct) original positions.
	tracks := motio.NewTrackSet()
	a := motio.NewTrack(1, "pedestrian")
	a.Set(5, geom.RectAt(10, 10, 4, 8))
	a.Set(15, geom.RectAt(14, 10, 4, 8))
	b := motio.NewTrack(2, "pedestrian")
	b.Set(5, geom.RectAt(50, 40, 4, 8))
	b.Set(15, geom.RectAt(54, 40, 4, 8))
	tracks.Add(a)
	tracks.Add(b)

	kf := &keyframe.Result{
		Segments:  []keyframe.Segment{{Start: 0, End: 9, KeyFrame: 5}, {Start: 10, End: 19, KeyFrame: 15}},
		KeyFrames: []int{5, 15},
	}
	p1 := &Phase1Result{
		KeyFrames: []int{5, 15},
		Picked:    []int{0, 1},
		Output: []ldp.BitVector{
			{true, true},
			{true, true},
		},
	}

	trials := 4000
	aGotOwn := 0 // object 1's first draw lands on its own original position
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < trials; i++ {
		p2, err := RunPhase2(p1, kf, tracks, nil, 64, 48, 20,
			Phase2Config{SkipRender: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(p2.Assigned[0]) == 0 {
			t.Fatal("object 0 unassigned")
		}
		first := p2.Assigned[0][0].Pos
		if first.Dist(geom.V(12, 14)) < 1 { // own center at frame 5
			aGotOwn++
		}
	}
	rate := float64(aGotOwn) / float64(trials)
	if math.Abs(rate-0.5) > 0.03 {
		t.Fatalf("object 0 received its own coordinate with P=%.3f, want 0.5: "+
			"coordinate assignment leaks identity", rate)
	}
}

// TestPhase2SameOutputDistributionForSwappedObjects checks a stronger
// end-to-end property: swapping which original object carries which
// presence pattern does not change the distribution of synthetic tracks
// (summarized by per-frame counts), because Phase II reads identities from
// neither the vectors nor the pools.
func TestPhase2SameOutputDistributionForSwappedObjects(t *testing.T) {
	tracks := motio.NewTrackSet()
	a := motio.NewTrack(1, "pedestrian")
	b := motio.NewTrack(2, "pedestrian")
	for k := 0; k < 20; k++ {
		a.Set(k, geom.RectAt(5+k, 10, 4, 8))
		b.Set(k, geom.RectAt(60-k, 30, 4, 8))
	}
	tracks.Add(a)
	tracks.Add(b)
	kf := &keyframe.Result{
		Segments:  []keyframe.Segment{{Start: 0, End: 9, KeyFrame: 4}, {Start: 10, End: 19, KeyFrame: 14}},
		KeyFrames: []int{4, 14},
	}
	vecs := []ldp.BitVector{{true, false}, {false, true}}
	swapped := []ldp.BitVector{{false, true}, {true, false}}

	meanCounts := func(output []ldp.BitVector, seed int64) []float64 {
		rng := rand.New(rand.NewSource(seed))
		sums := make([]float64, 20)
		const trials = 600
		for i := 0; i < trials; i++ {
			p1 := &Phase1Result{KeyFrames: []int{4, 14}, Picked: []int{0, 1}, Output: output}
			p2, err := RunPhase2(p1, kf, tracks, nil, 80, 48, 20,
				Phase2Config{SkipRender: true}, rng)
			if err != nil {
				t.Fatal(err)
			}
			for k, c := range p2.Tracks.CountSeries(20) {
				sums[k] += float64(c)
			}
		}
		for k := range sums {
			sums[k] /= trials
		}
		return sums
	}

	c1 := meanCounts(vecs, 1)
	c2 := meanCounts(swapped, 2)
	for k := range c1 {
		if math.Abs(c1[k]-c2[k]) > 0.35 {
			t.Fatalf("frame %d: mean synthetic count %v vs %v after identity swap",
				k, c1[k], c2[k])
		}
	}
}
