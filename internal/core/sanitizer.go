package core

import (
	"fmt"
	"math/rand"
	"time"

	"verro/internal/detect"
	"verro/internal/inpaint"
	"verro/internal/keyframe"
	"verro/internal/ldp"
	"verro/internal/motio"
	"verro/internal/obs"
	"verro/internal/par"
	"verro/internal/vid"
)

// Config is the end-to-end sanitizer configuration.
type Config struct {
	Phase1   Phase1Config
	Phase2   Phase2Config
	Keyframe keyframe.Config
	Inpaint  inpaint.Config
	// BackgroundStep subsamples frames feeding the temporal background
	// median; 0 means an automatic stride targeting ~40 samples (clamped so
	// the median stack never drops below 9 frames).
	BackgroundStep int
	// Seed drives all randomness in the run.
	Seed int64
	// Workers overrides the worker-pool size for this run (0 keeps the
	// process-wide setting: VERRO_WORKERS or GOMAXPROCS). All randomness is
	// drawn on the coordinating goroutine, so the sanitized output is
	// bit-identical at any worker count. The override is scoped to this run's
	// pool — concurrent Sanitize calls with different Workers never interfere.
	Workers int
	// Trace, when non-nil, collects a span per pipeline stage plus stage
	// counters and worker-pool gauges. Nil (the default) disables all
	// instrumentation at zero cost; tracing never perturbs the seeded output.
	Trace *obs.Trace
}

// DefaultConfig assembles the defaults of every stage.
func DefaultConfig() Config {
	return Config{
		Phase1:   DefaultPhase1Config(),
		Phase2:   DefaultPhase2Config(),
		Keyframe: keyframe.DefaultConfig(),
		Inpaint:  inpaint.DefaultConfig(),
		Seed:     1,
	}
}

// Validate rejects configurations whose privacy parameters are outside
// their mathematical domain. Sanitize calls it on entry so an invalid flip
// probability fails fast instead of surfacing after minutes of key-frame
// extraction and background reconstruction.
func (c Config) Validate() error {
	return c.Phase1.Validate()
}

// Result is the sanitizer output: the publishable synthetic video plus the
// diagnostics the evaluation harness consumes.
type Result struct {
	Synthetic *vid.Video
	// SyntheticTracks are the rendered synthetic objects; they exist for
	// utility evaluation and never leave the video owner.
	SyntheticTracks *motio.TrackSet
	Phase1          *Phase1Result
	Phase2          *Phase2Result
	KeyframeResult  *keyframe.Result
	// Epsilon is the achieved ε-Object Indistinguishability level.
	Epsilon float64
	// Timings of the two phases (Table 3).
	Phase1Time, Phase2Time time.Duration
	// PreprocessTime covers key-frame extraction and background
	// reconstruction, reported separately as in the paper.
	PreprocessTime time.Duration
}

// Sanitize runs the full VERRO pipeline: key-frame extraction, background
// reconstruction, Phase I and Phase II. The input video and tracks are not
// modified.
func Sanitize(v *vid.Video, tracks *motio.TrackSet, cfg Config) (*Result, error) {
	if v == nil || v.Len() == 0 {
		return nil, fmt.Errorf("core: empty input video")
	}
	if tracks == nil {
		return nil, fmt.Errorf("core: nil track set")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// A scoped pool (not the former global SetWorkers save/restore, which was
	// non-reentrant) so concurrent Sanitize calls with different Workers each
	// get their own size. Workers <= 0 falls through to the process default.
	pool := par.NewPool(cfg.Workers)
	cfg.Trace.AttachPool(pool)
	root := cfg.Trace.Root()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Preprocessing: segmentation/key frames and background scene(s).
	// MaxSegmentLen == 0 means auto: cap segments at ~1/20 of the video so
	// static scenes still produce enough key frames for the optimizer and
	// the Phase II interpolation (pure Algorithm 2 would otherwise collapse
	// a static video into a single segment). Negative disables the cap.
	preStart := time.Now() //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output
	kfCfg := cfg.Keyframe
	switch {
	case kfCfg.MaxSegmentLen == 0:
		kfCfg.MaxSegmentLen = v.Len() / 20
		if kfCfg.MaxSegmentLen < 1 {
			kfCfg.MaxSegmentLen = 1
		}
	case kfCfg.MaxSegmentLen < 0:
		kfCfg.MaxSegmentLen = 0
	}
	kfSpan := root.Child("keyframes")
	kf, err := keyframe.ExtractRT(v, kfCfg, obs.Runtime{Pool: pool, Span: kfSpan})
	kfSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: key frames: %w", err)
	}
	var scenes inpaint.Scenes
	if !cfg.Phase2.SkipRender {
		step := cfg.BackgroundStep
		if step <= 0 {
			step = detect.AutoStep(v.Len())
		}
		inSpan := root.Child("inpaint")
		scenes, err = inpaint.ExtractScenesRT(v, tracks, step, cfg.Inpaint, obs.Runtime{Pool: pool, Span: inSpan})
		inSpan.End()
		if err != nil {
			return nil, fmt.Errorf("core: background: %w", err)
		}
	}
	preTime := time.Since(preStart) //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output

	// Phase I.
	p1Start := time.Now() //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output
	p1Span := root.Child("phase1")
	full := PresenceVectors(tracks, v.Len())
	reduced, err := ReduceToKeyFrames(full, kf.KeyFrames)
	if err != nil {
		p1Span.End()
		return nil, err
	}
	p1, err := RunPhase1(reduced, kf.KeyFrames, cfg.Phase1, rng)
	if err != nil {
		p1Span.End()
		return nil, fmt.Errorf("core: phase 1: %w", err)
	}
	// Phase I counters are derived post hoc from the result — the picked
	// key frames, and the randomized-response flips as the Hamming distance
	// between the budgeted vectors B* and the published vectors R.
	p1Span.Add(obs.CKeyFramesPicked, int64(len(p1.Picked)))
	var flips int64
	for i := range p1.Output {
		flips += int64(ldp.Hamming(p1.Optimal[i], p1.Output[i]))
	}
	p1Span.Add(obs.CRRBitsFlipped, flips)
	p1Span.End()
	p1Time := time.Since(p1Start) //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output

	// Phase II.
	p2Start := time.Now() //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output
	p2Span := root.Child("phase2")
	p2, err := RunPhase2RT(p1, kf, tracks, scenes, v.W, v.H, v.Len(), cfg.Phase2, rng,
		obs.Runtime{Pool: pool, Span: p2Span})
	p2Span.End()
	if err != nil {
		return nil, fmt.Errorf("core: phase 2: %w", err)
	}
	p2Time := time.Since(p2Start) //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output

	if p2.Video != nil {
		p2.Video.Name = v.Name + "-verro"
		p2.Video.FPS = v.FPS
		p2.Video.Moving = v.Moving
	}

	return &Result{
		Synthetic:       p2.Video,
		SyntheticTracks: p2.Tracks,
		Phase1:          p1,
		Phase2:          p2,
		KeyframeResult:  kf,
		Epsilon:         p1.Epsilon,
		Phase1Time:      p1Time,
		Phase2Time:      p2Time,
		PreprocessTime:  preTime,
	}, nil
}
