package core

import (
	"fmt"
	"math/rand"
	"time"

	"verro/internal/detect"
	"verro/internal/inpaint"
	"verro/internal/keyframe"
	"verro/internal/motio"
	"verro/internal/par"
	"verro/internal/vid"
)

// Config is the end-to-end sanitizer configuration.
type Config struct {
	Phase1   Phase1Config
	Phase2   Phase2Config
	Keyframe keyframe.Config
	Inpaint  inpaint.Config
	// BackgroundStep subsamples frames feeding the temporal background
	// median; 0 means an automatic stride targeting ~40 samples (clamped so
	// the median stack never drops below 9 frames).
	BackgroundStep int
	// Seed drives all randomness in the run.
	Seed int64
	// Workers overrides the worker-pool size for this run (0 keeps the
	// process-wide setting: VERRO_WORKERS or GOMAXPROCS). All randomness is
	// drawn on the coordinating goroutine, so the sanitized output is
	// bit-identical at any worker count.
	Workers int
}

// DefaultConfig assembles the defaults of every stage.
func DefaultConfig() Config {
	return Config{
		Phase1:   DefaultPhase1Config(),
		Phase2:   DefaultPhase2Config(),
		Keyframe: keyframe.DefaultConfig(),
		Inpaint:  inpaint.DefaultConfig(),
		Seed:     1,
	}
}

// Result is the sanitizer output: the publishable synthetic video plus the
// diagnostics the evaluation harness consumes.
type Result struct {
	Synthetic *vid.Video
	// SyntheticTracks are the rendered synthetic objects; they exist for
	// utility evaluation and never leave the video owner.
	SyntheticTracks *motio.TrackSet
	Phase1          *Phase1Result
	Phase2          *Phase2Result
	KeyframeResult  *keyframe.Result
	// Epsilon is the achieved ε-Object Indistinguishability level.
	Epsilon float64
	// Timings of the two phases (Table 3).
	Phase1Time, Phase2Time time.Duration
	// PreprocessTime covers key-frame extraction and background
	// reconstruction, reported separately as in the paper.
	PreprocessTime time.Duration
}

// Sanitize runs the full VERRO pipeline: key-frame extraction, background
// reconstruction, Phase I and Phase II. The input video and tracks are not
// modified.
func Sanitize(v *vid.Video, tracks *motio.TrackSet, cfg Config) (*Result, error) {
	if v == nil || v.Len() == 0 {
		return nil, fmt.Errorf("core: empty input video")
	}
	if tracks == nil {
		return nil, fmt.Errorf("core: nil track set")
	}
	if cfg.Workers > 0 {
		defer par.SetWorkers(par.SetWorkers(cfg.Workers))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Preprocessing: segmentation/key frames and background scene(s).
	// MaxSegmentLen == 0 means auto: cap segments at ~1/20 of the video so
	// static scenes still produce enough key frames for the optimizer and
	// the Phase II interpolation (pure Algorithm 2 would otherwise collapse
	// a static video into a single segment). Negative disables the cap.
	preStart := time.Now()
	kfCfg := cfg.Keyframe
	switch {
	case kfCfg.MaxSegmentLen == 0:
		kfCfg.MaxSegmentLen = v.Len() / 20
		if kfCfg.MaxSegmentLen < 1 {
			kfCfg.MaxSegmentLen = 1
		}
	case kfCfg.MaxSegmentLen < 0:
		kfCfg.MaxSegmentLen = 0
	}
	kf, err := keyframe.Extract(v, kfCfg)
	if err != nil {
		return nil, fmt.Errorf("core: key frames: %w", err)
	}
	var scenes inpaint.Scenes
	if !cfg.Phase2.SkipRender {
		step := cfg.BackgroundStep
		if step <= 0 {
			step = detect.AutoStep(v.Len())
		}
		scenes, err = inpaint.ExtractScenes(v, tracks, step, cfg.Inpaint)
		if err != nil {
			return nil, fmt.Errorf("core: background: %w", err)
		}
	}
	preTime := time.Since(preStart)

	// Phase I.
	p1Start := time.Now()
	full := PresenceVectors(tracks, v.Len())
	reduced, err := ReduceToKeyFrames(full, kf.KeyFrames)
	if err != nil {
		return nil, err
	}
	p1, err := RunPhase1(reduced, kf.KeyFrames, cfg.Phase1, rng)
	if err != nil {
		return nil, fmt.Errorf("core: phase 1: %w", err)
	}
	p1Time := time.Since(p1Start)

	// Phase II.
	p2Start := time.Now()
	p2, err := RunPhase2(p1, kf, tracks, scenes, v.W, v.H, v.Len(), cfg.Phase2, rng)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2: %w", err)
	}
	p2Time := time.Since(p2Start)

	if p2.Video != nil {
		p2.Video.Name = v.Name + "-verro"
		p2.Video.FPS = v.FPS
		p2.Video.Moving = v.Moving
	}

	return &Result{
		Synthetic:       p2.Video,
		SyntheticTracks: p2.Tracks,
		Phase1:          p1,
		Phase2:          p2,
		KeyframeResult:  kf,
		Epsilon:         p1.Epsilon,
		Phase1Time:      p1Time,
		Phase2Time:      p2Time,
		PreprocessTime:  preTime,
	}, nil
}
