package core

import (
	"fmt"
	"math/rand"
	"time"

	"verro/internal/detect"
	"verro/internal/inpaint"
	"verro/internal/keyframe"
	"verro/internal/ldp"
	"verro/internal/motio"
	"verro/internal/obs"
	"verro/internal/par"
	"verro/internal/vid"
)

// Config is the end-to-end sanitizer configuration.
type Config struct {
	Phase1   Phase1Config
	Phase2   Phase2Config
	Keyframe keyframe.Config
	Inpaint  inpaint.Config
	// BackgroundStep subsamples frames feeding the temporal background
	// median; 0 means an automatic stride targeting ~40 samples (clamped so
	// the median stack never drops below 9 frames).
	BackgroundStep int
	// Seed drives all randomness in the run.
	Seed int64
	// Workers overrides the worker-pool size for this run (0 keeps the
	// process-wide setting: VERRO_WORKERS or GOMAXPROCS). All randomness is
	// drawn on the coordinating goroutine, so the sanitized output is
	// bit-identical at any worker count. The override is scoped to this run's
	// pool — concurrent Sanitize calls with different Workers never interfere.
	Workers int
	// Trace, when non-nil, collects a span per pipeline stage plus stage
	// counters and worker-pool gauges. Nil (the default) disables all
	// instrumentation at zero cost; tracing never perturbs the seeded output.
	Trace *obs.Trace
	// WindowFrames, when positive, runs the sanitizer as a bounded-memory
	// streaming pipeline processing at most WindowFrames frames per window;
	// 0 (the default) keeps the legacy whole-clip batch path. The two paths
	// produce bit-identical output for the same seed: all randomness is
	// drawn on the coordinator in an order independent of the windowing.
	// SanitizeMultiType drives its own per-class batch runs and ignores
	// this field.
	WindowFrames int
}

// DefaultConfig assembles the defaults of every stage.
func DefaultConfig() Config {
	return Config{
		Phase1:   DefaultPhase1Config(),
		Phase2:   DefaultPhase2Config(),
		Keyframe: keyframe.DefaultConfig(),
		Inpaint:  inpaint.DefaultConfig(),
		Seed:     1,
	}
}

// Validate rejects configurations whose privacy parameters are outside
// their mathematical domain. Sanitize calls it on entry so an invalid flip
// probability fails fast instead of surfacing after minutes of key-frame
// extraction and background reconstruction.
func (c Config) Validate() error {
	return c.Phase1.Validate()
}

// Result is the sanitizer output: the publishable synthetic video plus the
// diagnostics the evaluation harness consumes.
type Result struct {
	Synthetic *vid.Video
	// SyntheticTracks are the rendered synthetic objects; they exist for
	// utility evaluation and never leave the video owner.
	SyntheticTracks *motio.TrackSet
	Phase1          *Phase1Result
	Phase2          *Phase2Result
	KeyframeResult  *keyframe.Result
	// Epsilon is the achieved ε-Object Indistinguishability level.
	Epsilon float64
	// Timings of the two phases (Table 3).
	Phase1Time, Phase2Time time.Duration
	// PreprocessTime covers key-frame extraction and background
	// reconstruction, reported separately as in the paper.
	PreprocessTime time.Duration
	// Windows is the per-window privacy ledger of a streaming run (nil for
	// the batch path): one entry per render window, whose integer picked
	// key-frame counts sum to len(Phase1.Picked) and whose ε entries
	// recompose to exactly Epsilon. See DESIGN.md §2g.
	Windows []WindowSpend
}

// WindowSpend attributes Phase I privacy budget to one streaming render
// window: the picked key frames falling inside [Start, Start+Frames) and
// the ε they account for. The ledger is exact, not approximate — budget is
// apportioned by integer key-frame counts, and the total is recomputed as
// K·ln((2−f)/f) over the summed count, the same closed form ldp.Epsilon
// uses, so the recomposed total equals the batch ε bit for bit.
type WindowSpend struct {
	Start, Frames int
	Picked        int
	Epsilon       float64
}

// autoSegmentCfg resolves the MaxSegmentLen auto-clamp for a clip of the
// given length: 0 means auto (cap segments at ~1/20 of the video so static
// scenes still produce enough key frames), negative disables the cap. Both
// the batch and streaming drivers resolve through here so the segmentation
// they run is identical.
func autoSegmentCfg(kfCfg keyframe.Config, clipLen int) keyframe.Config {
	switch {
	case kfCfg.MaxSegmentLen == 0:
		kfCfg.MaxSegmentLen = clipLen / 20
		if kfCfg.MaxSegmentLen < 1 {
			kfCfg.MaxSegmentLen = 1
		}
	case kfCfg.MaxSegmentLen < 0:
		kfCfg.MaxSegmentLen = 0
	}
	return kfCfg
}

// runPhase1Stage runs Phase I with its span bookkeeping: presence-vector
// reduction, the randomized mechanism, and the post-hoc counters (picked
// key frames; randomized-response flips as the Hamming distance between the
// budgeted vectors B* and the published vectors R). Shared verbatim by the
// batch and streaming drivers — Phase I consumes the rng stream, so having
// one implementation is what keeps the two paths' draws aligned.
func runPhase1Stage(tracks *motio.TrackSet, clipLen int, kf *keyframe.Result, cfg Phase1Config, rng *rand.Rand, root *obs.Span) (*Phase1Result, error) {
	p1Span := root.Child("phase1")
	defer p1Span.End()
	full := PresenceVectors(tracks, clipLen)
	reduced, err := ReduceToKeyFrames(full, kf.KeyFrames)
	if err != nil {
		return nil, err
	}
	p1, err := RunPhase1(reduced, kf.KeyFrames, cfg, rng)
	if err != nil {
		return nil, fmt.Errorf("core: phase 1: %w", err)
	}
	p1Span.Add(obs.CKeyFramesPicked, int64(len(p1.Picked)))
	var flips int64
	for i := range p1.Output {
		flips += int64(ldp.Hamming(p1.Optimal[i], p1.Output[i]))
	}
	p1Span.Add(obs.CRRBitsFlipped, flips)
	return p1, nil
}

// Sanitize runs the full VERRO pipeline: key-frame extraction, background
// reconstruction, Phase I and Phase II. The input video and tracks are not
// modified. With cfg.WindowFrames > 0 the run is delegated to the windowed
// streaming driver (see SanitizeStream), whose output is bit-identical.
func Sanitize(v *vid.Video, tracks *motio.TrackSet, cfg Config) (*Result, error) {
	if v == nil || v.Len() == 0 {
		return nil, fmt.Errorf("core: empty input video")
	}
	if tracks == nil {
		return nil, fmt.Errorf("core: nil track set")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.WindowFrames > 0 {
		return sanitizeWindowed(v, tracks, cfg)
	}
	// A scoped pool (not the former global SetWorkers save/restore, which was
	// non-reentrant) so concurrent Sanitize calls with different Workers each
	// get their own size. Workers <= 0 falls through to the process default.
	pool := par.NewPool(cfg.Workers)
	cfg.Trace.AttachPool(pool)
	root := cfg.Trace.Root()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Preprocessing: segmentation/key frames and background scene(s).
	// MaxSegmentLen == 0 means auto: cap segments at ~1/20 of the video so
	// static scenes still produce enough key frames for the optimizer and
	// the Phase II interpolation (pure Algorithm 2 would otherwise collapse
	// a static video into a single segment). Negative disables the cap.
	preStart := time.Now() //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output
	kfCfg := autoSegmentCfg(cfg.Keyframe, v.Len())
	kfSpan := root.Child("keyframes")
	kf, err := keyframe.ExtractRT(v, kfCfg, obs.Runtime{Pool: pool, Span: kfSpan})
	kfSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: key frames: %w", err)
	}
	var scenes inpaint.Scenes
	if !cfg.Phase2.SkipRender {
		step := cfg.BackgroundStep
		if step <= 0 {
			step = detect.AutoStep(v.Len())
		}
		inSpan := root.Child("inpaint")
		scenes, err = inpaint.ExtractScenesRT(v, tracks, step, cfg.Inpaint, obs.Runtime{Pool: pool, Span: inSpan})
		inSpan.End()
		if err != nil {
			return nil, fmt.Errorf("core: background: %w", err)
		}
	}
	preTime := time.Since(preStart) //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output

	// Phase I.
	p1Start := time.Now() //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output
	p1, err := runPhase1Stage(tracks, v.Len(), kf, cfg.Phase1, rng, root)
	if err != nil {
		return nil, err
	}
	p1Time := time.Since(p1Start) //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output

	// Phase II.
	p2Start := time.Now() //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output
	p2Span := root.Child("phase2")
	p2, err := RunPhase2RT(p1, kf, tracks, scenes, v.W, v.H, v.Len(), cfg.Phase2, rng,
		obs.Runtime{Pool: pool, Span: p2Span})
	p2Span.End()
	if err != nil {
		return nil, fmt.Errorf("core: phase 2: %w", err)
	}
	p2Time := time.Since(p2Start) //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output

	if p2.Video != nil {
		p2.Video.Name = v.Name + "-verro"
		p2.Video.FPS = v.FPS
		p2.Video.Moving = v.Moving
	}

	return &Result{
		Synthetic:       p2.Video,
		SyntheticTracks: p2.Tracks,
		Phase1:          p1,
		Phase2:          p2,
		KeyframeResult:  kf,
		Epsilon:         p1.Epsilon,
		Phase1Time:      p1Time,
		Phase2Time:      p2Time,
		PreprocessTime:  preTime,
	}, nil
}
