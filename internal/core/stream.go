package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"verro/internal/detect"
	"verro/internal/img"
	"verro/internal/inpaint"
	"verro/internal/keyframe"
	"verro/internal/motio"
	"verro/internal/obs"
	"verro/internal/par"
	"verro/internal/stream"
	"verro/internal/vid"
)

// The bounded-memory streaming driver. SanitizeStream runs the same VERRO
// pipeline as Sanitize, but never holds the whole clip: the input flows
// through an analysis pass in windows of cfg.WindowFrames frames, the
// analysis retains only clip-length *metadata* (per-frame HSV histograms,
// pan offsets) plus the ~40 strided background samples detect.AutoStep
// bounds, and Phase II renders window by window straight into a sink.
//
// Bit-identity with the batch path is by construction, not by luck:
//
//   - every per-frame analysis quantity (histogram, column profile, strided
//     sample) is computed by the same pure helper the batch path calls, in
//     the same frame order;
//   - every random draw (Phase I randomized response and Laplace noise,
//     Phase II assignment and palette offset) happens on the coordinator
//     between the two passes, via the same shared planPhase2/runPhase1Stage
//     code, in an order independent of the windowing;
//   - rendering a planned frame is pure, and the windowed VVF writer emits
//     the same byte stream as the batch encoder for any append granularity.
//
// Peak live memory is O(WindowFrames + samples), which the memory-ceiling
// test in stream_mem_test.go holds roughly flat as the clip grows.

// histStage accumulates the per-frame HSV histograms Algorithm 2 needs —
// a few hundred bytes per frame, so clip-length retention stays metadata-
// sized while the pixels flow through unretained.
type histStage struct {
	cfg   keyframe.Config
	pool  *par.Pool
	hists []*img.HSVHist
}

func (s *histStage) Name() string { return "hist" }
func (s *histStage) Overlap() int { return 0 }
func (s *histStage) Flush() error { return nil }
func (s *histStage) Process(w stream.Window) error {
	hs, err := keyframe.FrameHists(w.FreshFrames(), s.cfg, s.pool)
	if err != nil {
		return err
	}
	s.hists = append(s.hists, hs...)
	return nil
}

// bgSampleStage retains every step-th frame for the temporal background
// median — the same `k % step == 0` stride the batch reconstruction walks,
// bounded at ~40 samples by detect.AutoStep whatever the clip length.
type bgSampleStage struct {
	step    int
	samples []*img.Image
	indices []int
}

func (s *bgSampleStage) Name() string { return "bgsample" }
func (s *bgSampleStage) Overlap() int { return 0 }
func (s *bgSampleStage) Flush() error { return nil }
func (s *bgSampleStage) Process(w stream.Window) error {
	for i, f := range w.FreshFrames() {
		k := w.FreshStart() + i
		if k%s.step == 0 {
			s.samples = append(s.samples, f)
			s.indices = append(s.indices, k)
		}
	}
	return nil
}

// panStage integrates per-frame pan offsets for moving-camera clips. Each
// pairwise shift needs the previous frame's column profile; the stage
// declares Overlap() == 1 and recomputes that profile from the re-presented
// overlap frame instead of retaining pixels across windows, so its state
// between windows is just the integer offsets.
type panStage struct {
	maxShift int
	offsets  []int
}

func (s *panStage) Name() string { return "pan" }
func (s *panStage) Overlap() int { return 1 }
func (s *panStage) Flush() error { return nil }
func (s *panStage) Process(w stream.Window) error {
	profiles := make([][]float64, len(w.Frames))
	for i, f := range w.Frames {
		profiles[i] = inpaint.ColumnProfile(f)
	}
	for i := w.Fresh; i < len(w.Frames); i++ {
		if w.Start+i == 0 {
			s.offsets = append(s.offsets, 0)
			continue
		}
		shift := inpaint.BestShift(profiles[i-1], profiles[i], s.maxShift)
		s.offsets = append(s.offsets, s.offsets[len(s.offsets)-1]+shift)
	}
	return nil
}

// windowHook builds a stream.Run per-window hook that opens a child span
// per window under parent and lands the window counters, giving traces a
// per-window progress observable on both the analysis and render passes.
func windowHook(parent *obs.Span) func(stream.Window) func() {
	return func(w stream.Window) func() {
		parent.Add(obs.CWindows, 1)
		parent.Add(obs.CWindowFrames, int64(len(w.Frames)))
		child := parent.Child(fmt.Sprintf("window@%d", w.Start))
		return child.End
	}
}

// windowSpend attributes Phase I budget to the render window [lo, hi): the
// picked key frames falling inside it, at ln((2−f)/f) each. Summing the
// integer Picked fields over all windows recovers len(p1.Picked) exactly,
// and K·ln((2−f)/f) over that sum is the same closed form ldp.Epsilon
// evaluates — so the ledger recomposes to the batch ε with no float drift.
func windowSpend(p1 *Phase1Result, lo, hi int) WindowSpend {
	picked := 0
	for _, j := range p1.Picked {
		if k := p1.KeyFrames[j]; k >= lo && k < hi {
			picked++
		}
	}
	return WindowSpend{
		Start:   lo,
		Frames:  hi - lo,
		Picked:  picked,
		Epsilon: float64(picked) * math.Log((2-p1.F)/p1.F),
	}
}

// SanitizeStream runs the VERRO pipeline over a frame source in bounded
// windows of cfg.WindowFrames frames (<= 0 means one whole-clip window),
// writing the synthetic video to sink window by window. The output is
// bit-identical to Sanitize on the decoded clip with the same cfg. The
// returned Result carries everything the batch Result does except
// Synthetic/Phase2.Video (the frames went to the sink, which only the
// caller can replay), plus the per-window privacy ledger in Windows.
//
// sink is closed on success once all frames are appended; on error the
// caller owns whatever cleanup its sink needs. Under cfg.Phase2.SkipRender
// no frames are produced and sink may be nil (a non-nil sink is left
// untouched).
func SanitizeStream(src stream.Source, tracks *motio.TrackSet, cfg Config, sink stream.Sink) (*Result, error) {
	return SanitizeStreamFrom(src, tracks, cfg, sink, 0)
}

// SanitizeStreamFrom is SanitizeStream with a resumable window cursor:
// rendering starts at startFrame (which must sit on a window boundary) and
// only frames from there on are appended to sink — the caller owns the
// earlier frames, typically in a checkpointed staging file a previous,
// killed run left behind. Everything up to rendering reruns in full: the
// analysis pass, Phase I and the Phase II plan are recomputed from the same
// seed and consume the rng stream in exactly the batch order, so the frames
// rendered for [startFrame, end) — and the returned ledger, synthetic
// tracks and ε — are bit-identical to the corresponding slice of an
// uninterrupted run. Windows before the cursor contribute their geometry
// (not their pixels) to the synthetic track fold and their ledger entries
// are recomputed, so the Result does not depend on where the run was cut.
func SanitizeStreamFrom(src stream.Source, tracks *motio.TrackSet, cfg Config, sink stream.Sink, startFrame int) (*Result, error) {
	meta := src.Meta()
	if meta.Frames == 0 {
		return nil, fmt.Errorf("core: empty input video")
	}
	if tracks == nil {
		return nil, fmt.Errorf("core: nil track set")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Phase2.SkipRender && sink == nil {
		return nil, fmt.Errorf("core: nil sink for rendering run")
	}
	windowBudget := cfg.WindowFrames
	if windowBudget <= 0 {
		windowBudget = meta.Frames
	}
	if startFrame < 0 || startFrame > meta.Frames ||
		(startFrame != meta.Frames && startFrame%windowBudget != 0) {
		return nil, fmt.Errorf("core: resume cursor %d is not a window boundary (window %d, %d frames)",
			startFrame, windowBudget, meta.Frames)
	}
	pool := par.NewPool(cfg.Workers)
	cfg.Trace.AttachPool(pool)
	root := cfg.Trace.Root()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Analysis pass: one windowed sweep over the source collecting the
	// clip-length metadata preprocessing needs.
	preStart := time.Now() //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output
	kfCfg := autoSegmentCfg(cfg.Keyframe, meta.Frames)
	hist := &histStage{cfg: kfCfg, pool: pool}
	stages := []stream.Stage{hist}
	var bgs *bgSampleStage
	var pan *panStage
	if !cfg.Phase2.SkipRender {
		step := cfg.BackgroundStep
		if step <= 0 {
			step = detect.AutoStep(meta.Frames)
		}
		bgs = &bgSampleStage{step: step}
		stages = append(stages, bgs)
		if meta.Moving {
			pan = &panStage{maxShift: inpaint.DefaultPanShift}
			stages = append(stages, pan)
		}
	}
	anSpan := root.Child("analysis")
	err := stream.Run(src, cfg.WindowFrames, windowHook(anSpan), stages...)
	anSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: analysis pass: %w", err)
	}

	kfSpan := root.Child("keyframes")
	kf, err := keyframe.SegmentHistsRT(hist.hists, kfCfg, obs.Runtime{Pool: pool, Span: kfSpan})
	kfSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: key frames: %w", err)
	}

	var scenes inpaint.Scenes
	if !cfg.Phase2.SkipRender {
		inSpan := root.Child("inpaint")
		rt := obs.Runtime{Pool: pool, Span: inSpan}
		if meta.Moving {
			scenes, err = inpaint.BuildMovingBackgroundSamplesRT(
				meta.W, meta.H, pan.offsets, bgs.samples, bgs.indices, tracks, cfg.Inpaint, rt)
		} else {
			var bg *img.Image
			bg, err = inpaint.StaticBackgroundSamplesRT(
				meta.W, meta.H, bgs.samples, bgs.indices, tracks, cfg.Inpaint, rt)
			if err == nil {
				scenes = inpaint.NewStaticScenes(bg)
			}
		}
		inSpan.End()
		if err != nil {
			return nil, fmt.Errorf("core: background: %w", err)
		}
		// The analysis samples have served; drop them before rendering so
		// the render pass's live set is the plan plus one window.
		bgs.samples, bgs.indices = nil, nil
	}
	preTime := time.Since(preStart) //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output

	// Phase I — small data, identical helper and rng order to the batch path.
	p1Start := time.Now() //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output
	p1, err := runPhase1Stage(tracks, meta.Frames, kf, cfg.Phase1, rng, root)
	if err != nil {
		return nil, err
	}
	p1Time := time.Since(p1Start) //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output

	// Phase II: consume the remaining rng draws into a pure render plan,
	// then render window by window into the sink.
	p2Start := time.Now() //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output
	p2Span := root.Child("phase2")
	plan, err := planPhase2(p1, kf, tracks, meta.W, meta.H, meta.Frames, cfg.Phase2, rng)
	if err != nil {
		p2Span.End()
		return nil, fmt.Errorf("core: phase 2: %w", err)
	}
	asm := newPhase2Assembler(plan)
	budget := windowBudget
	hook := windowHook(p2Span)
	var ledger []WindowSpend
	for lo := 0; lo < meta.Frames; lo += budget {
		hi := lo + budget
		if hi > meta.Frames {
			hi = meta.Frames
		}
		if hi <= startFrame {
			// Window already rendered and persisted by the run being
			// resumed: re-fold its geometry so the synthetic tracks come out
			// identical, recompute its ledger entry, and leave its pixels to
			// the caller's checkpointed staging. No window span opens — SSE
			// progress starts at the resume cursor.
			for i, fr := range plan.geometryRange(lo, hi) {
				asm.add(lo+i, fr)
			}
			ledger = append(ledger, windowSpend(p1, lo, hi))
			continue
		}
		post := hook(stream.Window{Start: lo, Frames: make([]*img.Image, hi-lo), Last: hi == meta.Frames})
		rendered, err := plan.renderRange(scenes, lo, hi, obs.Runtime{Pool: pool, Span: p2Span})
		if err != nil {
			post()
			p2Span.End()
			return nil, err
		}
		frames := make([]*img.Image, 0, len(rendered))
		for i, fr := range rendered {
			asm.add(lo+i, fr)
			if fr.frame != nil {
				frames = append(frames, fr.frame)
			}
		}
		if !cfg.Phase2.SkipRender {
			if err := sink.Append(frames); err != nil {
				post()
				p2Span.End()
				return nil, fmt.Errorf("core: sink: %w", err)
			}
		}
		ledger = append(ledger, windowSpend(p1, lo, hi))
		post()
	}
	p2Span.Add(obs.CFramesRendered, int64(meta.Frames-startFrame))
	p2 := asm.finish(obs.Runtime{Pool: pool, Span: p2Span})
	p2Span.End()
	if !cfg.Phase2.SkipRender {
		if err := sink.Close(); err != nil {
			return nil, fmt.Errorf("core: sink: %w", err)
		}
	}
	p2Time := time.Since(p2Start) //lint:allow walltime span timing for Table 3 diagnostics; never enters sanitized output

	return &Result{
		SyntheticTracks: p2.Tracks,
		Phase1:          p1,
		Phase2:          p2,
		KeyframeResult:  kf,
		Epsilon:         p1.Epsilon,
		Phase1Time:      p1Time,
		Phase2Time:      p2Time,
		PreprocessTime:  preTime,
		Windows:         ledger,
	}, nil
}

// OutputMeta derives the sink metadata for a streaming run from the input
// metadata: same geometry and timing, the batch path's "-verro" name suffix.
func OutputMeta(in stream.Meta) stream.Meta {
	out := in
	out.Name = in.Name + "-verro"
	return out
}

// sanitizeWindowed adapts an in-memory Sanitize call onto the streaming
// driver: the clip is wrapped as a slice-backed source, the rendered
// windows are collected back, and the Result is completed with the
// assembled synthetic video so callers see the exact batch contract.
func sanitizeWindowed(v *vid.Video, tracks *motio.TrackSet, cfg Config) (*Result, error) {
	src := stream.NewSliceSource(vid.MetaOf(v), v.Frames)
	var sink *stream.CollectSink
	if !cfg.Phase2.SkipRender {
		sink = &stream.CollectSink{}
	}
	var s stream.Sink
	if sink != nil {
		s = sink
	}
	res, err := SanitizeStream(src, tracks, cfg, s)
	if err != nil {
		return nil, err
	}
	if sink != nil {
		out := vid.New(v.Name+"-verro", v.W, v.H, v.FPS)
		out.Moving = v.Moving
		out.Frames = sink.Frames
		res.Synthetic = out
		res.Phase2.Video = out
	}
	return res, nil
}
