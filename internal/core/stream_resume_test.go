package core

import (
	"testing"

	"verro/internal/scene"
	"verro/internal/stream"
	"verro/internal/vid"
)

func resumeFixture(t *testing.T) (*scene.Generated, Config) {
	t.Helper()
	p := scene.Preset{
		Name: "resume", W: 96, H: 72, Frames: 36, Objects: 4,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 17,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Keyframe.MaxSegmentLen = 8
	cfg.WindowFrames = 9
	cfg.Seed = 5
	return g, cfg
}

// TestSanitizeStreamFromEquivalence is the resume contract behind verrod's
// checkpointing: for every window boundary K, rendering from K must produce
// exactly the [K:] suffix of the uninterrupted run's frames, and the
// Result's ledger, ε and synthetic tracks must not depend on the cut.
func TestSanitizeStreamFromEquivalence(t *testing.T) {
	g, cfg := resumeFixture(t)

	full := &stream.CollectSink{}
	fullRes, err := SanitizeStream(stream.NewSliceSource(vid.MetaOf(g.Video), g.Video.Frames), g.Truth, cfg, full)
	if err != nil {
		t.Fatal(err)
	}

	for _, start := range []int{0, 9, 18, 27, 36} {
		part := &stream.CollectSink{}
		res, err := SanitizeStreamFrom(stream.NewSliceSource(vid.MetaOf(g.Video), g.Video.Frames), g.Truth, cfg, part, start)
		if err != nil {
			t.Fatalf("start=%d: %v", start, err)
		}
		if want := g.Video.Len() - start; len(part.Frames) != want {
			t.Fatalf("start=%d: got %d frames, want %d", start, len(part.Frames), want)
		}
		for i, f := range part.Frames {
			if !f.Equal(full.Frames[start+i]) {
				t.Fatalf("start=%d: frame %d differs from the uninterrupted run", start, start+i)
			}
		}
		if res.Epsilon != fullRes.Epsilon {
			t.Fatalf("start=%d: epsilon %v != %v", start, res.Epsilon, fullRes.Epsilon)
		}
		if len(res.Windows) != len(fullRes.Windows) {
			t.Fatalf("start=%d: ledger has %d windows, want %d", start, len(res.Windows), len(fullRes.Windows))
		}
		for i, w := range res.Windows {
			if w != fullRes.Windows[i] {
				t.Fatalf("start=%d: ledger window %d = %+v, want %+v", start, i, w, fullRes.Windows[i])
			}
		}
		if res.SyntheticTracks.Len() != fullRes.SyntheticTracks.Len() {
			t.Fatalf("start=%d: %d synthetic tracks, want %d",
				start, res.SyntheticTracks.Len(), fullRes.SyntheticTracks.Len())
		}
		for i, tr := range res.SyntheticTracks.Tracks {
			ftr := fullRes.SyntheticTracks.Tracks[i]
			if tr.ID != ftr.ID || tr.Len() != ftr.Len() {
				t.Fatalf("start=%d: synthetic track %d differs (%d/%d boxes, ids %d/%d)",
					start, i, tr.Len(), ftr.Len(), tr.ID, ftr.ID)
			}
			for _, k := range tr.Frames() {
				a, _ := tr.Box(k)
				b, ok := ftr.Box(k)
				if !ok || a != b {
					t.Fatalf("start=%d: track %d box at frame %d differs", start, i, k)
				}
			}
		}
	}
}

// TestSanitizeStreamFromRejectsMisalignedCursor: the cursor must sit on a
// window boundary — anything else means the checkpointed staging cannot
// line up with the render windows.
func TestSanitizeStreamFromRejectsMisalignedCursor(t *testing.T) {
	g, cfg := resumeFixture(t)
	for _, start := range []int{-1, 5, 10, 37} {
		sink := &stream.CollectSink{}
		if _, err := SanitizeStreamFrom(stream.NewSliceSource(vid.MetaOf(g.Video), g.Video.Frames), g.Truth, cfg, sink, start); err == nil {
			t.Fatalf("start=%d: want a window-alignment error", start)
		}
	}
}
