package core

import (
	"math"
	"math/rand"
	"testing"

	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/interp"
	"verro/internal/ldp"
	"verro/internal/motio"
	"verro/internal/vid"
)

func TestPhase1ConfigValidate(t *testing.T) {
	base := DefaultPhase1Config()
	cases := []struct {
		name   string
		mutate func(*Phase1Config)
		ok     bool
	}{
		{"default", func(*Phase1Config) {}, true},
		{"f upper bound", func(c *Phase1Config) { c.F = 1 }, true},
		{"f zero", func(c *Phase1Config) { c.F = 0 }, false},
		{"f negative", func(c *Phase1Config) { c.F = -0.1 }, false},
		{"f above one", func(c *Phase1Config) { c.F = 1.01 }, false},
		{"f NaN", func(c *Phase1Config) { c.F = math.NaN() }, false},
		{"f +Inf", func(c *Phase1Config) { c.F = math.Inf(1) }, false},
		{"laplace NaN", func(c *Phase1Config) { c.LaplaceEps = math.NaN() }, false},
		{"laplace +Inf", func(c *Phase1Config) { c.LaplaceEps = math.Inf(1) }, false},
		{"laplace negative", func(c *Phase1Config) { c.LaplaceEps = -1 }, false},
		{"laplace positive", func(c *Phase1Config) { c.LaplaceEps = 0.5 }, true},
		{"density NaN", func(c *Phase1Config) { c.DensityFraction = math.NaN() }, false},
		{"density -Inf", func(c *Phase1Config) { c.DensityFraction = math.Inf(-1) }, false},
		{"density negative", func(c *Phase1Config) { c.DensityFraction = -0.5 }, false},
		{"min picked negative", func(c *Phase1Config) { c.MinPicked = -1 }, false},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		err := cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected a validation error", tc.name)
		}
	}
}

// TestRunPhase1RejectsNaN pins the regression: a NaN flip probability used
// to pass the `F <= 0 || F > 1` range check (NaN fails every ordered
// comparison) and flow into ε = K·ln((2−f)/f).
func TestRunPhase1RejectsNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	reduced := []ldp.BitVector{{true, false, true}}
	cfg := DefaultPhase1Config()
	cfg.F = math.NaN()
	if _, err := RunPhase1(reduced, []int{0, 5, 9}, cfg, rng); err == nil {
		t.Fatal("RunPhase1 accepted F = NaN")
	}
}

func TestSanitizeRejectsInvalidConfig(t *testing.T) {
	v := vid.New("x", 8, 8, 10)
	cfg := DefaultConfig()
	cfg.Phase1.F = math.NaN()
	// The empty-video check fires first; give the validator something to see.
	for i := 0; i < 3; i++ {
		if err := v.Append(img.NewFilled(8, 8, img.RGB{R: 100, G: 100, B: 100})); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Sanitize(v, motio.NewTrackSet(), cfg); err == nil {
		t.Fatal("Sanitize accepted F = NaN")
	}
}

func TestSanitizeJointRejectsBadBudget(t *testing.T) {
	videos := []*vid.Video{vid.New("x", 8, 8, 10)}
	tracks := []*motio.TrackSet{motio.NewTrackSet()}
	for _, eps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := SanitizeJoint(videos, tracks, eps, DefaultConfig()); err == nil {
			t.Errorf("SanitizeJoint accepted totalEps = %v", eps)
		}
	}
}

// oscillatingRun builds control points whose y alternates between the top
// and bottom of the frame — the classic Runge configuration for a
// high-degree interpolating polynomial.
func oscillatingRun(n, spacing int) []interp.Sample {
	var run []interp.Sample
	for i := 0; i < n; i++ {
		y := 10.0
		if i%2 == 1 {
			y = 90.0
		}
		run = append(run, interp.Sample{Frame: i * spacing, Pos: geom.V(50, y)})
	}
	return run
}

func TestSafeExtendGuardsLagrangeBlowup(t *testing.T) {
	bounds := geom.R(0, 0, 100, 100)
	run := oscillatingRun(14, 3)
	numFrames := run[len(run)-1].Frame + 5

	// Sanity: the raw Lagrange trajectory on this run really does blow up
	// past the guard threshold — otherwise this test pins nothing.
	_, rawPos, err := interp.ExtendToBorder(interp.MethodLagrange, run, numFrames, bounds, 2)
	if err != nil {
		t.Fatal(err)
	}
	center := geom.V(50, 50)
	limit := blowupLimit * math.Hypot(100, 100)
	var worst float64
	for _, p := range rawPos {
		if d := p.Sub(center).Norm(); d > worst {
			worst = d
		}
	}
	if worst <= limit {
		t.Fatalf("test fixture too tame: worst excursion %.0f <= limit %.0f", worst, limit)
	}

	// The guard must fall back to the piecewise-linear trajectory.
	frames, pos, err := safeExtend(interp.MethodLagrange, run, numFrames, bounds, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantFrames, wantPos, err := interp.ExtendToBorder(interp.MethodLinear, run, numFrames, bounds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(wantFrames) || len(pos) != len(wantPos) {
		t.Fatalf("fallback shape mismatch: %d/%d frames, %d/%d positions",
			len(frames), len(wantFrames), len(pos), len(wantPos))
	}
	for i := range pos {
		if frames[i] != wantFrames[i] || pos[i] != wantPos[i] {
			t.Fatalf("fallback diverges from linear at %d: frame %d/%d pos %v/%v",
				i, frames[i], wantFrames[i], pos[i], wantPos[i])
		}
		if !finiteVec(pos[i]) {
			t.Fatalf("non-finite fallback position %v at %d", pos[i], i)
		}
	}
}

// TestSafeExtendKeepsModerateOscillation pins the paper-faithful behavior:
// Lagrange oscillation that merely swings out of frame is load-bearing
// (Phase II suppresses those positions, pruning ghost appearances at high
// f) and must NOT trigger the fallback.
func TestSafeExtendKeepsModerateOscillation(t *testing.T) {
	bounds := geom.R(0, 0, 100, 100)
	// Few control points: degree-4 polynomial, excursions bounded well
	// below the guard threshold even though they leave the frame.
	run := []interp.Sample{
		{Frame: 0, Pos: geom.V(50, 10)},
		{Frame: 4, Pos: geom.V(50, 90)},
		{Frame: 8, Pos: geom.V(50, 10)},
		{Frame: 12, Pos: geom.V(50, 90)},
		{Frame: 16, Pos: geom.V(50, 10)},
	}
	frames, pos, err := safeExtend(interp.MethodLagrange, run, 20, bounds, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantFrames, wantPos, err := interp.ExtendToBorder(interp.MethodLagrange, run, 20, bounds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(wantFrames) {
		t.Fatalf("guard rewrote a benign run: %d vs %d frames", len(frames), len(wantFrames))
	}
	for i := range pos {
		if pos[i] != wantPos[i] {
			t.Fatalf("guard rewrote a benign run at %d: %v vs %v", i, pos[i], wantPos[i])
		}
	}
}
