package detect

import (
	"errors"
	"fmt"

	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/obs"
)

// BGSubtractor detects moving objects in static-camera footage by
// thresholding the luma difference against a background model and growing
// connected components into boxes. It is the fast preprocessing path for
// the MOT01/MOT03-style sequences.
type BGSubtractor struct {
	Background *img.Image
	// Threshold is the minimum per-pixel luma difference treated as
	// foreground.
	Threshold float64
	// MinArea discards components smaller than this many pixels.
	MinArea int
	// MaxBoxFrac discards boxes covering more than this fraction of the
	// frame (illumination shifts, not objects). 0 means 0.25.
	MaxBoxFrac float64
}

// NewBGSubtractor returns a subtractor with sensible defaults for the
// synthetic benchmark videos.
func NewBGSubtractor(background *img.Image) *BGSubtractor {
	return &BGSubtractor{
		Background: background,
		Threshold:  26,
		MinArea:    10,
		MaxBoxFrac: 0.25,
	}
}

// ErrNoBackground is returned when the subtractor has no background model.
var ErrNoBackground = errors.New("detect: background model missing")

// Detect finds foreground boxes in the frame.
func (b *BGSubtractor) Detect(frame *img.Image) ([]Detection, error) {
	if b.Background == nil {
		return nil, ErrNoBackground
	}
	if frame.W != b.Background.W || frame.H != b.Background.H {
		return nil, fmt.Errorf("detect: frame %dx%d vs background %dx%d",
			frame.W, frame.H, b.Background.W, b.Background.H)
	}
	diff := img.ColorDiffPlane(frame, b.Background)
	w, h := frame.W, frame.H

	// Binary foreground mask.
	mask := make([]bool, w*h)
	for i, d := range diff {
		mask[i] = d >= b.Threshold
	}

	// Connected components by BFS (8-connectivity).
	visited := make([]bool, w*h)
	maxFrac := b.MaxBoxFrac
	if maxFrac <= 0 {
		maxFrac = 0.25
	}
	var out []Detection
	queue := make([]int, 0, 256)
	for start := range mask {
		if !mask[start] || visited[start] {
			continue
		}
		queue = queue[:0]
		queue = append(queue, start)
		visited[start] = true
		minX, minY := w, h
		maxX, maxY := -1, -1
		area := 0
		var scoreSum float64
		for len(queue) > 0 {
			i := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			x, y := i%w, i/w
			area++
			scoreSum += diff[i]
			if x < minX {
				minX = x
			}
			if y < minY {
				minY = y
			}
			if x > maxX {
				maxX = x
			}
			if y > maxY {
				maxY = y
			}
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := x+dx, y+dy
					if nx < 0 || ny < 0 || nx >= w || ny >= h {
						continue
					}
					j := ny*w + nx
					if mask[j] && !visited[j] {
						visited[j] = true
						queue = append(queue, j)
					}
				}
			}
		}
		if area == 0 || area < b.MinArea {
			continue
		}
		box := geom.R(minX, minY, maxX+1, maxY+1)
		if float64(box.Area()) > maxFrac*float64(w*h) {
			continue
		}
		out = append(out, Detection{Box: box, Score: scoreSum / float64(area)})
	}
	return NMS(out, 0.5), nil
}

// MedianBackground estimates a static background as the per-pixel,
// per-channel median over the sampled frames — the classic background
// extraction for static surveillance cameras. step subsamples frames
// (step=1 uses all of them). It runs on the default worker pool, untraced;
// pipeline code passes a scoped pool and span via MedianBackgroundRT.
func MedianBackground(frames []*img.Image, step int) (*img.Image, error) {
	return MedianBackgroundRT(frames, step, obs.Runtime{})
}

// MedianBackgroundRT is MedianBackground on an explicit runtime: the median
// shards over rt.Pool and the sampled-frame count lands on rt.Span.
func MedianBackgroundRT(frames []*img.Image, step int, rt obs.Runtime) (*img.Image, error) {
	if len(frames) == 0 {
		return nil, errors.New("detect: no frames for background")
	}
	if step < 1 {
		step = 1
	}
	w, h := frames[0].W, frames[0].H
	var sample []*img.Image
	for i := 0; i < len(frames); i += step {
		f := frames[i]
		if f.W != w || f.H != h {
			return nil, fmt.Errorf("detect: frame %d size mismatch", i)
		}
		sample = append(sample, f)
	}
	out := img.New(w, h)
	n := len(sample)
	rt.Span.Add(obs.CBGFramesSampled, int64(n))
	// Each channel value is an independent median, so the pixel plane shards
	// over the worker pool; workers read the shared frame stack and write
	// disjoint ranges of out.Pix, keeping the result bit-identical to the
	// serial loop at any worker count.
	rt.Pool.For(w*h*3, 4096, func(lo, hi int) {
		vals := make([]uint8, n)
		for idx := lo; idx < hi; idx++ {
			for s, f := range sample {
				vals[s] = f.Pix[idx]
			}
			out.Pix[idx] = medianU8(vals)
		}
	})
	return out, nil
}

// AutoStep returns the automatic background-sampling stride for an n-frame
// clip: it targets ~40 sampled frames but never lets the sampled stack drop
// below 9 frames (or below the whole clip when the clip itself is shorter) —
// a thin median stack lets moving objects bleed into the background model.
func AutoStep(n int) int {
	if n <= 0 {
		return 1
	}
	step := n / 40
	if step < 1 {
		step = 1
	}
	for step > 1 && (n+step-1)/step < 9 {
		step--
	}
	return step
}

// medianU8 computes the median in place via counting (256 buckets), which
// is faster than sorting for many small slices.
func medianU8(vals []uint8) uint8 {
	var counts [256]int
	for _, v := range vals {
		counts[v]++
	}
	mid := (len(vals) - 1) / 2
	cum := 0
	for v := 0; v < 256; v++ {
		cum += counts[v]
		if cum > mid {
			return uint8(v)
		}
	}
	return 255
}
