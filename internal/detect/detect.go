// Package detect implements the object detectors used in VERRO's
// preprocessing: a sliding-window HOG+SVM detector (the paper's pedestrian
// detector family [51]) and a fast background-subtraction detector for
// static cameras, plus non-maximum suppression and detection-quality
// metrics.
package detect

import (
	"fmt"
	"sort"

	"verro/internal/geom"
	"verro/internal/img"
)

// Detection is one candidate object in one frame.
type Detection struct {
	Box   geom.Rect
	Score float64
}

// ByScore sorts detections by descending score.
func sortByScore(ds []Detection) {
	sort.Slice(ds, func(i, j int) bool { return ds[i].Score > ds[j].Score })
}

// NMS performs greedy non-maximum suppression: detections are accepted in
// descending score order, and any remaining detection overlapping an
// accepted one with IoU above threshold is discarded.
func NMS(ds []Detection, iouThreshold float64) []Detection {
	if len(ds) == 0 {
		return nil
	}
	sorted := append([]Detection(nil), ds...)
	sortByScore(sorted)
	var kept []Detection
	for _, d := range sorted {
		ok := true
		for _, k := range kept {
			if geom.IoU(d.Box, k.Box) > iouThreshold {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, d)
		}
	}
	return kept
}

// Detector produces detections for a frame.
type Detector interface {
	Detect(frame *img.Image) ([]Detection, error)
}

// Quality summarizes detector performance against ground truth.
type Quality struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Precision returns TP/(TP+FP), 0 when undefined.
func (q Quality) Precision() float64 {
	d := q.TruePositives + q.FalsePositives
	if d == 0 {
		return 0
	}
	return float64(q.TruePositives) / float64(d)
}

// Recall returns TP/(TP+FN), 0 when undefined.
func (q Quality) Recall() float64 {
	d := q.TruePositives + q.FalseNegatives
	if d == 0 {
		return 0
	}
	return float64(q.TruePositives) / float64(d)
}

// F1 returns the harmonic mean of precision and recall.
func (q Quality) F1() float64 {
	p, r := q.Precision(), q.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (q Quality) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)",
		q.Precision(), q.Recall(), q.F1(), q.TruePositives, q.FalsePositives, q.FalseNegatives)
}

// Evaluate greedily matches detections to ground-truth boxes at the given
// IoU threshold and tallies quality counters.
func Evaluate(ds []Detection, truth []geom.Rect, iouThreshold float64) Quality {
	sorted := append([]Detection(nil), ds...)
	sortByScore(sorted)
	used := make([]bool, len(truth))
	var q Quality
	for _, d := range sorted {
		best := -1
		bestIoU := iouThreshold
		for i, t := range truth {
			if used[i] {
				continue
			}
			if iou := geom.IoU(d.Box, t); iou >= bestIoU {
				best, bestIoU = i, iou
			}
		}
		if best >= 0 {
			used[best] = true
			q.TruePositives++
		} else {
			q.FalsePositives++
		}
	}
	for _, u := range used {
		if !u {
			q.FalseNegatives++
		}
	}
	return q
}
