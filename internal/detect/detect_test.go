package detect

import (
	"testing"

	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/scene"
)

func TestNMS(t *testing.T) {
	ds := []Detection{
		{Box: geom.RectAt(0, 0, 10, 10), Score: 0.9},
		{Box: geom.RectAt(1, 1, 10, 10), Score: 0.8},   // overlaps first
		{Box: geom.RectAt(50, 50, 10, 10), Score: 0.7}, // separate
	}
	kept := NMS(ds, 0.5)
	if len(kept) != 2 {
		t.Fatalf("kept = %d, want 2 (%v)", len(kept), kept)
	}
	if kept[0].Score != 0.9 || kept[1].Score != 0.7 {
		t.Fatalf("wrong detections kept: %v", kept)
	}
	if NMS(nil, 0.5) != nil {
		t.Fatal("empty NMS should be nil")
	}
}

func TestNMSDoesNotMutateInput(t *testing.T) {
	ds := []Detection{
		{Box: geom.RectAt(0, 0, 4, 4), Score: 0.1},
		{Box: geom.RectAt(20, 0, 4, 4), Score: 0.9},
	}
	NMS(ds, 0.5)
	if ds[0].Score != 0.1 {
		t.Fatal("NMS reordered the caller's slice")
	}
}

func TestEvaluate(t *testing.T) {
	truth := []geom.Rect{
		geom.RectAt(0, 0, 10, 10),
		geom.RectAt(40, 40, 10, 10),
	}
	ds := []Detection{
		{Box: geom.RectAt(1, 1, 10, 10), Score: 0.9},   // matches truth 0
		{Box: geom.RectAt(80, 80, 10, 10), Score: 0.5}, // false positive
	}
	q := Evaluate(ds, truth, 0.5)
	if q.TruePositives != 1 || q.FalsePositives != 1 || q.FalseNegatives != 1 {
		t.Fatalf("quality = %+v", q)
	}
	if q.Precision() != 0.5 || q.Recall() != 0.5 {
		t.Fatalf("P=%v R=%v", q.Precision(), q.Recall())
	}
	if q.F1() != 0.5 {
		t.Fatalf("F1 = %v", q.F1())
	}
	empty := Evaluate(nil, nil, 0.5)
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 {
		t.Fatal("empty evaluation should be all zeros")
	}
	_ = q.String()
}

func TestEvaluateNoDoubleMatch(t *testing.T) {
	truth := []geom.Rect{geom.RectAt(0, 0, 10, 10)}
	ds := []Detection{
		{Box: geom.RectAt(0, 0, 10, 10), Score: 0.9},
		{Box: geom.RectAt(1, 1, 10, 10), Score: 0.8},
	}
	q := Evaluate(ds, truth, 0.5)
	if q.TruePositives != 1 || q.FalsePositives != 1 {
		t.Fatalf("one truth box can match only once: %+v", q)
	}
}

func TestMedianBackground(t *testing.T) {
	// Background 100 gray; a "pedestrian" blob passes through different
	// positions; the median must recover the background.
	var frames []*img.Image
	for k := 0; k < 9; k++ {
		f := img.NewFilled(20, 20, img.RGB{R: 100, G: 100, B: 100})
		f.Fill(geom.RectAt(2*k, 5, 3, 8), img.RGB{R: 255, G: 0, B: 0})
		frames = append(frames, f)
	}
	bg, err := MedianBackground(frames, 1)
	if err != nil {
		t.Fatal(err)
	}
	diff := bg.DiffCount(img.NewFilled(20, 20, img.RGB{R: 100, G: 100, B: 100}))
	if diff > 8 { // the blob overlaps itself slightly at adjacent offsets
		t.Fatalf("median background has %d wrong pixels", diff)
	}
}

func TestMedianBackgroundValidation(t *testing.T) {
	if _, err := MedianBackground(nil, 1); err == nil {
		t.Fatal("no frames should fail")
	}
	frames := []*img.Image{img.New(4, 4), img.New(5, 4)}
	if _, err := MedianBackground(frames, 1); err == nil {
		t.Fatal("size mismatch should fail")
	}
}

func TestBGSubtractorFindsObjects(t *testing.T) {
	bg := img.NewFilled(64, 48, img.RGB{R: 100, G: 100, B: 100})
	frame := bg.Clone()
	truth := []geom.Rect{
		geom.RectAt(10, 10, 6, 12),
		geom.RectAt(40, 20, 6, 12),
	}
	for _, b := range truth {
		frame.Fill(b, img.RGB{R: 230, G: 40, B: 40})
	}
	det := NewBGSubtractor(bg)
	ds, err := det.Detect(frame)
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(ds, truth, 0.5)
	if q.TruePositives != 2 || q.FalsePositives != 0 {
		t.Fatalf("quality = %v (detections %v)", q, ds)
	}
}

func TestBGSubtractorIgnoresTinyAndHugeBlobs(t *testing.T) {
	bg := img.NewFilled(64, 48, img.RGB{R: 100, G: 100, B: 100})
	frame := bg.Clone()
	frame.Fill(geom.RectAt(5, 5, 2, 2), img.RGB{R: 255, G: 255, B: 255}) // 4 px < MinArea
	det := NewBGSubtractor(bg)
	ds, err := det.Detect(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Fatalf("tiny blob should be ignored: %v", ds)
	}
	// Whole-frame change (illumination) must not become a detection.
	frame2 := img.NewFilled(64, 48, img.RGB{R: 200, G: 200, B: 200})
	ds2, err := det.Detect(frame2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds2) != 0 {
		t.Fatalf("global change should be ignored: %v", ds2)
	}
}

func TestBGSubtractorValidation(t *testing.T) {
	det := &BGSubtractor{}
	if _, err := det.Detect(img.New(4, 4)); err == nil {
		t.Fatal("missing background should fail")
	}
	det2 := NewBGSubtractor(img.New(8, 8))
	if _, err := det2.Detect(img.New(4, 4)); err == nil {
		t.Fatal("size mismatch should fail")
	}
}

func TestBGSubtractorOnGeneratedScene(t *testing.T) {
	p := scene.Preset{
		Name: "det-test", W: 96, H: 72, Frames: 30, Objects: 3,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 21,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := MedianBackground(g.Video.Frames, 2)
	if err != nil {
		t.Fatal(err)
	}
	det := NewBGSubtractor(bg)
	totalQ := Quality{}
	for k := 0; k < g.Video.Len(); k += 5 {
		ds, err := det.Detect(g.Video.Frame(k))
		if err != nil {
			t.Fatal(err)
		}
		var truthBoxes []geom.Rect
		for _, tr := range g.Truth.Tracks {
			if b, ok := tr.Box(k); ok {
				truthBoxes = append(truthBoxes, b)
			}
		}
		q := Evaluate(ds, truthBoxes, 0.3)
		totalQ.TruePositives += q.TruePositives
		totalQ.FalsePositives += q.FalsePositives
		totalQ.FalseNegatives += q.FalseNegatives
	}
	if totalQ.Recall() < 0.7 {
		t.Fatalf("recall on synthetic scene too low: %v", totalQ)
	}
}

func TestHOGSVMDetectsSprites(t *testing.T) {
	det, err := NewPedestrianDetector(scene.StyleSquare, 31)
	if err != nil {
		t.Fatal(err)
	}
	// Compose a frame with two pedestrians on the training background style.
	frame := scene.PaintBackground(scene.StyleSquare, 96, 72, 77)
	b1 := scene.DrawObject(frame, scene.Pedestrian, scene.Palette(3), geom.V(30, 40), 0)
	b2 := scene.DrawObject(frame, scene.Pedestrian, scene.Palette(9), geom.V(70, 50), 2)
	ds, err := det.Detect(frame)
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(ds, []geom.Rect{b1, b2}, 0.2)
	if q.Recall() < 0.5 {
		t.Fatalf("HOG+SVM should find at least half the sprites: %v (ds=%v)", q, ds)
	}
}

func TestHOGSVMValidation(t *testing.T) {
	d := &HOGSVM{}
	if _, err := d.Detect(img.New(32, 32)); err == nil {
		t.Fatal("missing model should fail")
	}
}

func TestHOGSVMVehicleDetector(t *testing.T) {
	det, err := NewVehicleDetector(scene.StyleStreet, 41)
	if err != nil {
		t.Fatal(err)
	}
	frame := scene.PaintBackground(scene.StyleStreet, 96, 72, 13)
	b1 := scene.DrawObject(frame, scene.Vehicle, scene.Palette(5), geom.V(40, 55), 0)
	ds, err := det.Detect(frame)
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(ds, []geom.Rect{b1}, 0.2)
	if q.Recall() < 0.5 {
		t.Fatalf("vehicle detector should find the sprite: %v (ds=%v)", q, ds)
	}
}

func TestAutoStepSamplesAtLeastNineFrames(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {5, 1}, {10, 1}, {39, 1},
		{40, 1}, {80, 2}, {360, 9}, {400, 10}, {1500, 37},
	}
	for _, c := range cases {
		if got := AutoStep(c.n); got != c.want {
			t.Errorf("AutoStep(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	for n := 1; n <= 2000; n++ {
		step := AutoStep(n)
		if step < 1 {
			t.Fatalf("AutoStep(%d) = %d < 1", n, step)
		}
		samples := (n + step - 1) / step
		min := 9
		if n < min {
			min = n
		}
		if samples < min {
			t.Fatalf("AutoStep(%d) = %d samples only %d frames, want >= %d",
				n, step, samples, min)
		}
	}
}

// TestMedianBackgroundShortClip is the 10-frame regression for the
// automatic BackgroundStep: the full stack must feed the median so a moving
// object cannot bake itself into the background model.
func TestMedianBackgroundShortClip(t *testing.T) {
	const w, h, n = 64, 48, 10
	bgColor := img.RGB{R: 30, G: 30, B: 30}
	frames := make([]*img.Image, n)
	for k := range frames {
		f := img.NewFilled(w, h, bgColor)
		// Bright 8x8 object marching right 5px per frame.
		f.Fill(geom.RectAt(2+5*k, 20, 8, 8), img.RGB{R: 220, G: 220, B: 220})
		frames[k] = f
	}
	bg, err := MedianBackground(frames, AutoStep(n))
	if err != nil {
		t.Fatal(err)
	}
	// The object covers each pixel in at most 2 of 10 frames, so a >= 9
	// frame median recovers the clean background everywhere.
	for i, v := range bg.Pix {
		if v != 30 {
			t.Fatalf("background pixel %d = %d, want 30 (object leaked into model)", i, v)
		}
	}
}
