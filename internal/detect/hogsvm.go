package detect

import (
	"fmt"
	"math"
	"math/rand"

	"verro/internal/geom"
	"verro/internal/hog"
	"verro/internal/img"
	"verro/internal/obs"
	"verro/internal/par"
	"verro/internal/scene"
	"verro/internal/svm"
)

// HOGSVM is a sliding-window detector over an image pyramid: HOG features
// scored by a linear SVM, followed by NMS — the architecture of the paper's
// pedestrian detector [51] and the HOG-based vehicle detector [22].
type HOGSVM struct {
	Model *svm.Model
	HOG   hog.Config
	// Window is the detection window at pyramid scale 1.
	WinW, WinH int
	// Stride is the sliding-window step in pixels.
	Stride int
	// Scales are the pyramid scale factors applied to the window size.
	Scales []float64
	// ScoreThreshold is the minimum SVM score to accept a window.
	ScoreThreshold float64
	// NMSIoU is the suppression overlap threshold.
	NMSIoU float64
	// RT scopes the sliding-window scan to a worker pool and reports the
	// window-evaluation counter to a stage span. The zero value (default
	// pool, no tracing) is fully functional.
	RT obs.Runtime
}

// SetSpan rebinds the detector's counters to a stage span (obs.SpanSetter);
// the tracking stage calls it so window evaluations land under the detect
// span rather than the run root.
func (d *HOGSVM) SetSpan(s *obs.Span) { d.RT.Span = s }

// NewPedestrianDetector returns a HOG+SVM detector trained on synthetic
// pedestrian sprites rendered by the scene package over the given
// background style — the offline training the paper delegates to OpenCV's
// pre-trained models.
func NewPedestrianDetector(style scene.Style, seed int64) (*HOGSVM, error) {
	cfg := hog.DefaultConfig()
	const winW, winH = 16, 32
	samples, labels, err := trainingSet(scene.Pedestrian, style, winW, winH, cfg, seed)
	if err != nil {
		return nil, err
	}
	model, err := svm.Train(samples, labels, svm.DefaultTrainConfig())
	if err != nil {
		return nil, fmt.Errorf("detect: train pedestrian model: %w", err)
	}
	return &HOGSVM{
		Model: model, HOG: cfg,
		WinW: winW, WinH: winH,
		Stride:         4,
		Scales:         []float64{0.75, 1.0, 1.35},
		ScoreThreshold: 0.25,
		NMSIoU:         0.3,
	}, nil
}

// NewVehicleDetector returns a HOG+SVM detector trained on synthetic
// vehicle sprites — the paper's HOG-based vehicle detector family [22].
// Vehicle windows are wide rather than tall.
func NewVehicleDetector(style scene.Style, seed int64) (*HOGSVM, error) {
	cfg := hog.DefaultConfig()
	const winW, winH = 32, 16
	samples, labels, err := trainingSet(scene.Vehicle, style, winW, winH, cfg, seed)
	if err != nil {
		return nil, err
	}
	model, err := svm.Train(samples, labels, svm.DefaultTrainConfig())
	if err != nil {
		return nil, fmt.Errorf("detect: train vehicle model: %w", err)
	}
	return &HOGSVM{
		Model: model, HOG: cfg,
		WinW: winW, WinH: winH,
		Stride:         4,
		Scales:         []float64{0.75, 1.0, 1.35},
		ScoreThreshold: 0.25,
		NMSIoU:         0.3,
	}, nil
}

// trainingSet renders positive sprite windows and negative background
// windows for SVM training.
func trainingSet(class scene.ObjectClass, style scene.Style, winW, winH int, cfg hog.Config, seed int64) ([][]float64, []int, error) {
	rng := rand.New(rand.NewSource(seed))
	bg := scene.PaintBackground(style, 256, 192, uint64(seed))
	var samples [][]float64
	var labels []int

	const perClass = 160
	// Positives: sprites at varied colors/phases/scales composited on
	// random background crops.
	for i := 0; i < perClass; i++ {
		x := rng.Intn(bg.W - winW)
		y := rng.Intn(bg.H - winH)
		patch := bg.SubImage(geom.RectAt(x, y, winW, winH))
		color := scene.Palette(rng.Intn(500))
		pos := geom.V(float64(winW)/2, float64(winH)/2)
		scene.DrawObject(patch, class, color, pos, rng.Float64()*6)
		feat, err := hog.Compute(patch, cfg)
		if err != nil {
			return nil, nil, err
		}
		samples = append(samples, feat)
		labels = append(labels, 1)
	}
	// Negatives: plain background crops.
	for i := 0; i < perClass; i++ {
		x := rng.Intn(bg.W - winW)
		y := rng.Intn(bg.H - winH)
		patch := bg.SubImage(geom.RectAt(x, y, winW, winH))
		feat, err := hog.Compute(patch, cfg)
		if err != nil {
			return nil, nil, err
		}
		samples = append(samples, feat)
		labels = append(labels, -1)
	}
	return samples, labels, nil
}

// Detect runs the sliding window over the frame at every scale.
func (d *HOGSVM) Detect(frame *img.Image) ([]Detection, error) {
	if d.Model == nil {
		return nil, fmt.Errorf("detect: HOGSVM has no model")
	}
	stride := d.Stride
	if stride < 1 {
		stride = 4
	}
	scales := d.Scales
	if len(scales) == 0 {
		scales = []float64{1}
	}
	var out []Detection
	for _, s := range scales {
		ww := int(math.Round(float64(d.WinW) * s))
		wh := int(math.Round(float64(d.WinH) * s))
		if ww > frame.W || wh > frame.H || ww < d.HOG.CellSize*d.HOG.BlockSize {
			continue
		}
		// Window rows are independent: each worker scans whole rows and the
		// per-row hits are gathered in row order, so the detection sequence
		// feeding NMS is identical to the serial scan at any worker count.
		nRows := (frame.H-wh)/stride + 1
		type rowResult struct {
			dets  []Detection
			evals int64
			err   error
		}
		rows := par.MapPool(d.RT.Pool, nRows, 1, func(r int) rowResult {
			y := r * stride
			var res rowResult
			for x := 0; x+ww <= frame.W; x += stride {
				patch := frame.SubImage(geom.RectAt(x, y, ww, wh))
				if s != 1 {
					patch = patch.Resize(d.WinW, d.WinH)
				}
				feat, err := hog.Compute(patch, d.HOG)
				if err != nil {
					res.err = err
					return res
				}
				res.evals++
				score := d.Model.Score(feat)
				if score >= d.ScoreThreshold {
					res.dets = append(res.dets, Detection{Box: geom.RectAt(x, y, ww, wh), Score: score})
				}
			}
			return res
		})
		var evals int64
		for _, r := range rows {
			if r.err != nil {
				return nil, r.err
			}
			evals += r.evals
			out = append(out, r.dets...)
		}
		// One Add per scale level, not per window: Add takes the span lock.
		d.RT.Span.Add(obs.CWindowEvals, evals)
	}
	return NMS(out, d.NMSIoU), nil
}
