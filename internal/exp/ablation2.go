package exp

import (
	"fmt"
	"io"
	"math/rand"

	"verro/internal/core"
	"verro/internal/interp"
	"verro/internal/keyframe"
	"verro/internal/metrics"
)

// InterpAblationRow compares Phase II interpolation methods at a fixed f:
// the paper's Lagrange against the piecewise-linear and nearest-neighbour
// alternatives it cites ([17] vs [21]).
type InterpAblationRow struct {
	Video  string
	F      float64
	Method string
	// Deviation is the Figure 5-style indexed trajectory deviation.
	Deviation float64
	// CountMAE is the per-frame object-count error against the original.
	CountMAE float64
}

// InterpAblation evaluates each interpolation method on the dataset.
func InterpAblation(d *Dataset, f float64, trials int, seed int64) ([]InterpAblationRow, error) {
	if trials < 1 {
		trials = 1
	}
	methods := []struct {
		name string
		m    interp.Method
	}{
		{"lagrange", interp.MethodLagrange},
		{"linear", interp.MethodLinear},
		{"nearest", interp.MethodNearest},
		{"hybrid", interp.MethodHybrid},
	}
	m := d.Gen.Video.Len()
	orig := d.Tracks.CountSeries(m)
	var rows []InterpAblationRow
	for _, method := range methods {
		rng := rand.New(rand.NewSource(seed))
		var dev, mae float64
		for t := 0; t < trials; t++ {
			p1, err := d.phase1(f, true, rng)
			if err != nil {
				return nil, err
			}
			p2, err := core.RunPhase2(p1, d.KF, d.Tracks, nil,
				d.Gen.Video.W, d.Gen.Video.H, m,
				core.Phase2Config{Interp: method.m, SkipRender: true}, rng)
			if err != nil {
				return nil, err
			}
			dev += metrics.IndexedTrajectoryDeviation(d.Tracks, p2.Tracks)
			mae += metrics.CountMAE(orig, p2.Tracks.CountSeries(m))
		}
		rows = append(rows, InterpAblationRow{
			Video: d.Preset.Name, F: f, Method: method.name,
			Deviation: dev / float64(trials),
			CountMAE:  mae / float64(trials),
		})
	}
	return rows, nil
}

// PrintInterpAblation renders the comparison.
func PrintInterpAblation(w io.Writer, rows []InterpAblationRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Interpolation ablation (%s, f=%.1f):\n", rows[0].Video, rows[0].F)
	fmt.Fprintf(w, "  %-10s %10s %10s\n", "method", "deviation", "count-MAE")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %10.3f %10.3f\n", r.Method, r.Deviation, r.CountMAE)
	}
}

// KeyframeAblationRow compares the clustering key-frame extractor
// (Algorithm 2) against the boundary-method alternative the paper cites.
type KeyframeAblationRow struct {
	Video     string
	Method    string
	KeyFrames int
	Remaining int
}

// KeyframeAblation runs both extractors on the dataset's video.
func KeyframeAblation(d *Dataset) ([]KeyframeAblationRow, error) {
	boundaryCfg := keyframe.DefaultBoundaryConfig()
	boundaryCfg.MaxSegmentLen = d.KFCfg.MaxSegmentLen
	var rows []KeyframeAblationRow
	for _, method := range []string{keyframe.MethodClustering, keyframe.MethodBoundary} {
		res, err := keyframe.ExtractByMethod(method, d.Gen.Video, d.KFCfg, boundaryCfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, KeyframeAblationRow{
			Video:     d.Preset.Name,
			Method:    method,
			KeyFrames: len(res.KeyFrames),
			Remaining: core.PresentInKeyFrames(d.Tracks, res),
		})
	}
	return rows, nil
}

// PrintKeyframeAblation renders the comparison.
func PrintKeyframeAblation(w io.Writer, rows []KeyframeAblationRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Key-frame extractor ablation (%s):\n", rows[0].Video)
	fmt.Fprintf(w, "  %-12s %10s %10s\n", "method", "keyframes", "remaining")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %10d %10d\n", r.Method, r.KeyFrames, r.Remaining)
	}
}
