package exp

import (
	"bytes"
	"strings"
	"testing"

	"verro/internal/scene"
)

func TestInterpAblation(t *testing.T) {
	d := loadTiny(t, scene.MOT01())
	rows, err := InterpAblation(d, 0.1, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 methods", len(rows))
	}
	for _, r := range rows {
		if r.Deviation < 0 || r.Deviation > 1 {
			t.Fatalf("%s deviation = %v", r.Method, r.Deviation)
		}
		if r.CountMAE < 0 {
			t.Fatalf("%s MAE = %v", r.Method, r.CountMAE)
		}
	}
	var buf bytes.Buffer
	PrintInterpAblation(&buf, rows)
	if !strings.Contains(buf.String(), "lagrange") {
		t.Fatal("missing ablation output")
	}
	PrintInterpAblation(&buf, nil) // no-op
}

func TestKeyframeAblation(t *testing.T) {
	d := loadTiny(t, scene.MOT01())
	rows, err := KeyframeAblation(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.KeyFrames == 0 {
			t.Fatalf("%s produced no key frames", r.Method)
		}
		if r.Remaining > d.Tracks.Len() {
			t.Fatalf("%s remaining %d > objects %d", r.Method, r.Remaining, d.Tracks.Len())
		}
	}
	var buf bytes.Buffer
	PrintKeyframeAblation(&buf, rows)
	if !strings.Contains(buf.String(), "clustering") {
		t.Fatal("missing key-frame ablation output")
	}
	PrintKeyframeAblation(&buf, nil)
}
