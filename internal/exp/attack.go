package exp

import (
	"fmt"
	"io"

	"verro/internal/attack"
	"verro/internal/blur"
	"verro/internal/core"
)

// AttackRow compares the background-knowledge re-identification adversary
// (package attack) across sanitizers — the quantified version of the
// paper's Section 1 motivation.
type AttackRow struct {
	Video   string
	Targets int
	// Top-1 re-identification rates.
	Identity float64 // attacking the unsanitized video (adversary sanity)
	Blur     float64 // attacking detect-and-blur output
	Verro    float64 // attacking VERRO output at F
	Random   float64 // blind-guess baseline
	F        float64
}

// Attack runs the three-way comparison on a dataset.
func Attack(d *Dataset, f float64, seed int64) (*AttackRow, error) {
	w := attack.DefaultWeights()
	row := &AttackRow{Video: d.Preset.Name, F: f}

	ident, err := attack.Reidentify(d.Gen.Video, d.Tracks, d.Gen.Video, d.Tracks,
		attack.SameID(d.Tracks), w)
	if err != nil {
		return nil, fmt.Errorf("exp: identity attack: %w", err)
	}
	row.Identity = ident.Top1
	row.Targets = ident.Targets
	row.Random = ident.RandomBaseline

	blurred, err := blur.Sanitize(d.Gen.Video, d.Tracks, blur.DefaultConfig())
	if err != nil {
		return nil, err
	}
	blurRes, err := attack.Reidentify(d.Gen.Video, d.Tracks, blurred, d.Tracks,
		attack.SameID(d.Tracks), w)
	if err != nil {
		return nil, fmt.Errorf("exp: blur attack: %w", err)
	}
	row.Blur = blurRes.Top1

	cfg := d.SanitizerConfig(f, seed, true)
	res, err := core.Sanitize(d.Gen.Video, d.Tracks, cfg)
	if err != nil {
		return nil, err
	}
	verroRes, err := attack.Reidentify(d.Gen.Video, d.Tracks, res.Synthetic,
		res.SyntheticTracks, attack.IndexMapping(), w)
	if err != nil {
		return nil, fmt.Errorf("exp: verro attack: %w", err)
	}
	row.Verro = verroRes.Top1
	return row, nil
}

// PrintAttack renders the comparison.
func PrintAttack(w io.Writer, r *AttackRow) {
	fmt.Fprintf(w, "Re-identification attack (%s, %d targets, f=%.1f): top-1 success\n",
		r.Video, r.Targets, r.F)
	fmt.Fprintf(w, "  unsanitized video   %.3f (adversary sanity check)\n", r.Identity)
	fmt.Fprintf(w, "  detect-and-blur     %.3f (the traditional model leaks)\n", r.Blur)
	fmt.Fprintf(w, "  VERRO               %.3f\n", r.Verro)
	fmt.Fprintf(w, "  random guessing     %.3f\n", r.Random)
}
