package exp

import (
	"bytes"
	"strings"
	"testing"

	"verro/internal/scene"
)

func TestAttackComparison(t *testing.T) {
	opt := Options{Scale: 0.15, Trials: 1, Seed: 1}
	d, err := LoadDataset(scene.MOT01(), opt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Attack(d, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Targets == 0 {
		t.Fatal("no targets attacked")
	}
	// The adversary must be valid: near-perfect against the raw video.
	if r.Identity < 0.8 {
		t.Fatalf("identity attack too weak: %+v", r)
	}
	// Blur must not defeat the adversary; VERRO must do better than blur.
	if r.Blur < r.Verro {
		t.Fatalf("VERRO should resist better than blur: %+v", r)
	}
	if r.Random <= 0 || r.Random > 1 {
		t.Fatalf("random baseline = %v", r.Random)
	}
	var buf bytes.Buffer
	PrintAttack(&buf, r)
	if !strings.Contains(buf.String(), "Re-identification") {
		t.Fatal("missing attack output")
	}
}
