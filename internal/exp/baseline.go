package exp

import (
	"fmt"
	"io"
	"math/rand"

	"verro/internal/core"
	"verro/internal/metrics"
)

// BaselineResult compares the naive per-frame randomized response of
// Algorithm 1 (Section 3.1) against the full VERRO Phase I at the same
// total privacy budget ε.
type BaselineResult struct {
	Video   string
	Objects int
	Epsilon float64
	// NaiveOnesFrac is the fraction of set bits in the naive output — near
	// 0.5 demonstrates the "too random" failure mode.
	NaiveOnesFrac float64
	// NaiveCountMAE is the per-frame count MAE of the naive output against
	// the original presence.
	NaiveCountMAE float64
	// VerroRetained is the distinct-object retention of VERRO Phase I.
	VerroRetained float64
	// VerroCountMAE is the per-key-frame count MAE of VERRO's randomized
	// output against the original reduced presence.
	VerroCountMAE float64
	// TrueOnesFrac is the fraction of set bits in the original full
	// vectors, for reference.
	TrueOnesFrac float64
}

// Baseline runs the comparison at the ε achieved by VERRO with flip
// probability f.
func Baseline(d *Dataset, f float64, trials int, seed int64) (*BaselineResult, error) {
	if trials < 1 {
		trials = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m := d.Gen.Video.Len()
	full := core.PresenceVectors(d.Tracks, m)

	res := &BaselineResult{Video: d.Preset.Name, Objects: d.Tracks.Len()}
	totalBits := 0
	trueOnes := 0
	for _, v := range full {
		totalBits += len(v)
		trueOnes += v.Ones()
	}
	if totalBits > 0 {
		res.TrueOnesFrac = float64(trueOnes) / float64(totalBits)
	}
	origSeries := d.Tracks.CountSeries(m)

	var naiveOnes, naiveMAE, verroRet, verroMAE float64
	origKF := core.KeyFrameCounts(d.Reduced)
	for t := 0; t < trials; t++ {
		// VERRO Phase I fixes ε for this run.
		p1, err := d.phase1(f, true, rng)
		if err != nil {
			return nil, err
		}
		res.Epsilon = p1.Epsilon
		verroRet += float64(core.TruthfulPresent(p1.Output, p1.Optimal))
		verroMAE += metrics.CountMAE(origKF, core.KeyFrameCounts(p1.Output))

		// Naive Algorithm 1 at the same ε over all m frames.
		naive, err := core.NaiveRandomResponse(full, p1.Epsilon, rng)
		if err != nil {
			return nil, err
		}
		ones := 0
		for _, v := range naive {
			ones += v.Ones()
		}
		if totalBits > 0 {
			naiveOnes += float64(ones) / float64(totalBits)
		}
		naiveSeries := make([]int, m)
		for _, v := range naive {
			for k, b := range v {
				if b {
					naiveSeries[k]++
				}
			}
		}
		naiveMAE += metrics.CountMAE(origSeries, naiveSeries)
	}
	ft := float64(trials)
	res.NaiveOnesFrac = naiveOnes / ft
	res.NaiveCountMAE = naiveMAE / ft
	res.VerroRetained = verroRet / ft
	res.VerroCountMAE = verroMAE / ft
	return res, nil
}

// PrintBaseline renders the comparison.
func PrintBaseline(w io.Writer, r *BaselineResult) {
	fmt.Fprintf(w, "Baseline (%s) at eps=%.2f: Algorithm 1 naive RR vs VERRO Phase I\n", r.Video, r.Epsilon)
	fmt.Fprintf(w, "  true ones fraction      %.4f\n", r.TrueOnesFrac)
	fmt.Fprintf(w, "  naive ones fraction     %.4f (0.5 = pure noise)\n", r.NaiveOnesFrac)
	fmt.Fprintf(w, "  naive count MAE         %.2f objects/frame\n", r.NaiveCountMAE)
	fmt.Fprintf(w, "  verro retained objects  %.1f of %d\n", r.VerroRetained, r.Objects)
	fmt.Fprintf(w, "  verro keyframe count MAE %.2f objects/frame\n", r.VerroCountMAE)
}

// AblationRow compares dimension-reduction choices at a fixed f: naive RR
// over all frames, key frames without OPT, and key frames with OPT.
type AblationRow struct {
	Video     string
	F         float64
	Objects   int
	NaiveRet  float64 // distinct retention, naive per-frame RR at matched eps
	KFOnlyRet float64 // key frames, no OPT
	KFOptRet  float64 // key frames + OPT (full Phase I)
	KFOnlyEps float64
	KFOptEps  float64
}

// Ablation measures the retention each design stage buys.
func Ablation(d *Dataset, f float64, trials int, seed int64) (*AblationRow, error) {
	if trials < 1 {
		trials = 1
	}
	rng := rand.New(rand.NewSource(seed))
	row := &AblationRow{Video: d.Preset.Name, F: f, Objects: d.Tracks.Len()}
	m := d.Gen.Video.Len()
	full := core.PresenceVectors(d.Tracks, m)

	var naive, kfOnly, kfOpt float64
	for t := 0; t < trials; t++ {
		pOpt, err := d.phase1(f, true, rng)
		if err != nil {
			return nil, err
		}
		kfOpt += float64(core.TruthfulPresent(pOpt.Output, pOpt.Optimal))
		row.KFOptEps = pOpt.Epsilon

		pAll, err := d.phase1(f, false, rng)
		if err != nil {
			return nil, err
		}
		kfOnly += float64(core.TruthfulPresent(pAll.Output, pAll.Optimal))
		row.KFOnlyEps = pAll.Epsilon

		// Naive RR at the OPT run's ε. Note: this counts a vector as
		// "retained" if any bit is set, which for near-uniform noise is
		// almost always true — yet the retained identity is meaningless;
		// the count MAE in Baseline captures that. Here we additionally
		// report the fraction of *correct* set bits.
		naiveOut, err := core.NaiveRandomResponse(full, pOpt.Epsilon, rng)
		if err != nil {
			return nil, err
		}
		correct := 0
		for i, v := range naiveOut {
			for k, b := range v {
				if b && full[i][k] {
					correct++
				}
			}
		}
		trueOnes := 0
		for _, v := range full {
			trueOnes += v.Ones()
		}
		if trueOnes > 0 {
			naive += float64(correct) / float64(trueOnes) * float64(d.Tracks.Len())
		}
	}
	ft := float64(trials)
	row.NaiveRet = naive / ft
	row.KFOnlyRet = kfOnly / ft
	row.KFOptRet = kfOpt / ft
	return row, nil
}

// PrintAblation renders the ablation row.
func PrintAblation(w io.Writer, r *AblationRow) {
	fmt.Fprintf(w, "Ablation (%s, f=%.1f, %d objects):\n", r.Video, r.F, r.Objects)
	fmt.Fprintf(w, "  naive per-frame RR      true-presence mass retained %.1f\n", r.NaiveRet)
	fmt.Fprintf(w, "  keyframes only          retained %.1f (eps=%.1f)\n", r.KFOnlyRet, r.KFOnlyEps)
	fmt.Fprintf(w, "  keyframes + OPT         retained %.1f (eps=%.1f)\n", r.KFOptRet, r.KFOptEps)
}
