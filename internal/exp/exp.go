// Package exp implements the paper's evaluation (Section 6): it loads the
// benchmark datasets and regenerates every table and figure — Table 1-3,
// Figure 5 (utility of Phase I & II), Figures 6-8 (trajectories),
// Figures 9-11 (representative frames), Figures 12-13 (aggregate counts) —
// plus the naive-random-response baseline and the ablations called out in
// DESIGN.md. Both cmd/experiments and the root bench harness drive this
// package.
package exp

import (
	"fmt"
	"math/rand"

	"verro/internal/core"
	"verro/internal/keyframe"
	"verro/internal/ldp"
	"verro/internal/motio"
	"verro/internal/obs"
	"verro/internal/scene"
)

// Options control dataset loading and experiment effort.
type Options struct {
	// Scale shrinks the presets (1 = the full paper-sized datasets).
	Scale float64
	// Trials is the number of random-response repetitions averaged in the
	// Figure 5 curves.
	Trials int
	// Seed drives all experiment randomness.
	Seed int64
	// UseTrackedObjects runs the real detection+tracking pipeline instead
	// of using ground-truth tracks. Slower and noisier; ground truth is
	// the default so table shapes are attributable to VERRO itself.
	UseTrackedObjects bool
	// Trace, when non-nil, collects stage spans and counters across dataset
	// loading and every sanitizer run the experiments perform. Nil disables
	// instrumentation; tracing never perturbs seeded results.
	Trace *obs.Trace
}

// DefaultOptions runs the full-scale datasets with 5-trial averaging.
func DefaultOptions() Options {
	return Options{Scale: 1, Trials: 5, Seed: 1}
}

// paperKeyFrames is the ℓ reported in the paper's Table 2; together with
// the full-scale frame counts it fixes the frames-per-key-frame ratio the
// segmenter is capped at (22 of 450, 52 of 1500, 48 of 1194). Keeping the
// ratio rather than the absolute count makes scaled-down datasets behave
// like the full ones.
var paperKeyFrames = map[string]int{
	"MOT01": 22,
	"MOT03": 52,
	"MOT06": 48,
}

// segmentCap is frames-per-key-frame for each base preset at full scale.
var segmentCap = map[string]int{
	"MOT01": 450 / 22,
	"MOT03": 1500 / 52,
	"MOT06": 1194 / 48,
}

// KeyframeConfigFor returns the Algorithm 2 configuration used for a
// preset: defaults plus a segment-length cap reproducing the paper's
// key-frame density for that video (scale-invariant).
func KeyframeConfigFor(p scene.Preset) keyframe.Config {
	cfg := keyframe.DefaultConfig()
	cap := 0
	for name, c := range segmentCap {
		if len(p.Name) >= len(name) && p.Name[:len(name)] == name {
			cap = c
		}
	}
	if cap == 0 {
		cap = 20
	}
	// Tiny test datasets still need at least a handful of key frames.
	if p.Frames/cap < 3 {
		cap = p.Frames / 3
	}
	if cap < 1 {
		cap = 1
	}
	cfg.MaxSegmentLen = cap
	return cfg
}

// Dataset is a loaded benchmark video with its objects and segmentation.
type Dataset struct {
	Preset  scene.Preset
	Gen     *scene.Generated
	Tracks  *motio.TrackSet
	KF      *keyframe.Result
	Reduced []ldp.BitVector
	KFCfg   keyframe.Config
	// Trace is propagated from Options into every SanitizerConfig built
	// from this dataset (nil = untraced).
	Trace *obs.Trace
}

// LoadDataset generates (or regenerates) a benchmark dataset and its
// preprocessing products.
func LoadDataset(p scene.Preset, opt Options) (*Dataset, error) {
	if opt.Scale > 0 && opt.Scale < 1 {
		p = p.Scaled(opt.Scale)
	}
	g, err := scene.Generate(p)
	if err != nil {
		return nil, fmt.Errorf("exp: generate %s: %w", p.Name, err)
	}
	// The clean-background oracle is test-only; drop it to halve memory.
	g.CleanBackground = nil

	tracks := g.Truth
	if opt.UseTrackedObjects {
		tracked, err := trackObjects(g, opt.Trace)
		if err != nil {
			return nil, err
		}
		tracks = tracked
	}

	kfCfg := KeyframeConfigFor(p)
	kfSpan := opt.Trace.Root().Child("keyframes")
	kf, err := keyframe.ExtractRT(g.Video, kfCfg, obs.Runtime{Span: kfSpan})
	kfSpan.End()
	if err != nil {
		return nil, fmt.Errorf("exp: key frames for %s: %w", p.Name, err)
	}
	full := core.PresenceVectors(tracks, g.Video.Len())
	reduced, err := core.ReduceToKeyFrames(full, kf.KeyFrames)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Preset:  p,
		Gen:     g,
		Tracks:  tracks,
		KF:      kf,
		Reduced: reduced,
		KFCfg:   kfCfg,
		Trace:   opt.Trace,
	}, nil
}

// SanitizerConfig assembles the core.Config this dataset's experiments use.
func (d *Dataset) SanitizerConfig(f float64, seed int64, render bool) core.Config {
	cfg := core.DefaultConfig()
	cfg.Phase1.F = f
	cfg.Keyframe = d.KFCfg
	cfg.Seed = seed
	cfg.Phase2.SkipRender = !render
	cfg.Trace = d.Trace
	return cfg
}

// phase1 runs Phase I over the dataset's reduced vectors.
func (d *Dataset) phase1(f float64, optimize bool, rng *rand.Rand) (*core.Phase1Result, error) {
	cfg := core.Phase1Config{F: f, Optimize: optimize, MinPicked: 2}
	return core.RunPhase1(d.Reduced, d.KF.KeyFrames, cfg, rng)
}
