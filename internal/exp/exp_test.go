package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"verro/internal/scene"
)

// tinyOptions shrinks everything so experiment plumbing tests stay fast.
func tinyOptions() Options {
	return Options{Scale: 0.08, Trials: 2, Seed: 1}
}

func loadTiny(t *testing.T, preset scene.Preset) *Dataset {
	t.Helper()
	d, err := LoadDataset(preset, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLoadDataset(t *testing.T) {
	d := loadTiny(t, scene.MOT01())
	if d.Gen.Video.Len() == 0 || d.Tracks.Len() == 0 {
		t.Fatal("dataset empty")
	}
	if len(d.KF.KeyFrames) < 2 {
		t.Fatalf("key frames = %d", len(d.KF.KeyFrames))
	}
	if len(d.Reduced) != d.Tracks.Len() {
		t.Fatal("reduced vectors mismatch")
	}
	if d.Gen.CleanBackground != nil {
		t.Fatal("clean background should be dropped to save memory")
	}
}

func TestKeyframeConfigForTargetsPaperCounts(t *testing.T) {
	for _, p := range scene.Presets() {
		cfg := KeyframeConfigFor(p)
		want := paperKeyFrames[p.Name]
		approxKF := p.Frames / cfg.MaxSegmentLen
		if approxKF < want-3 { // cap guarantees at least ~target segments
			t.Errorf("%s: cap %d yields ~%d key frames, want >= %d",
				p.Name, cfg.MaxSegmentLen, approxKF, want)
		}
	}
	// Scaled presets keep the density, not the absolute count.
	full := KeyframeConfigFor(scene.MOT01())
	scaled := KeyframeConfigFor(scene.MOT01().Scaled(0.25))
	if scaled.MaxSegmentLen > full.MaxSegmentLen {
		t.Fatalf("scaling should not lengthen segments: %d > %d",
			scaled.MaxSegmentLen, full.MaxSegmentLen)
	}
	// Unknown preset gets a sane fallback.
	cfg := KeyframeConfigFor(scene.Preset{Name: "other", Frames: 100})
	if cfg.MaxSegmentLen < 1 {
		t.Fatal("fallback cap invalid")
	}
}

func TestTable1And2(t *testing.T) {
	d := loadTiny(t, scene.MOT01())
	rows := Table1([]*Dataset{d})
	if len(rows) != 1 || rows[0].Camera != "static" || rows[0].Objects == 0 {
		t.Fatalf("table1 = %+v", rows)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("missing table header")
	}

	r2 := Table2(d)
	if r2.KeyFrames < 2 || r2.Remaining == 0 || r2.Remaining > r2.Objects {
		t.Fatalf("table2 = %+v", r2)
	}
	buf.Reset()
	PrintTable2(&buf, []Table2Row{r2})
	if !strings.Contains(buf.String(), "Remaining") {
		t.Fatal("missing table2 header")
	}
}

func TestTable3RunsFullPipeline(t *testing.T) {
	d := loadTiny(t, scene.MOT01())
	row, res, err := Table3(d, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if row.BandwidthMB <= 0 {
		t.Fatalf("bandwidth = %v", row.BandwidthMB)
	}
	if res.Synthetic.Len() != d.Gen.Video.Len() {
		t.Fatal("synthetic incomplete")
	}
	var buf bytes.Buffer
	PrintTable3(&buf, []Table3Row{row})
	if !strings.Contains(buf.String(), "Bandwidth") {
		t.Fatal("missing table3 header")
	}
}

func TestFig5ShapesMatchPaper(t *testing.T) {
	d := loadTiny(t, scene.MOT01())
	points, err := Fig5(d, []float64{0.1, 0.5, 0.9}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Opt > p.Original {
			t.Fatalf("OPT retained more than original: %+v", p)
		}
		// The paper's headline contrast: deviation drops sharply after
		// Phase II interpolation.
		if p.DevAfter >= p.DevBefore {
			t.Fatalf("Phase II should reduce deviation: %+v", p)
		}
		if p.DevBefore < 0.5 {
			t.Fatalf("before-Phase-II deviation should be high: %+v", p)
		}
	}
	tab, err := Fig5Table(points)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Cols) != 5 {
		t.Fatalf("fig5 table cols = %d", len(tab.Cols))
	}
	var buf bytes.Buffer
	PrintFig5(&buf, d.Preset.Name, points)
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Fatal("missing fig5 header")
	}
}

func TestFig678(t *testing.T) {
	d := loadTiny(t, scene.MOT01())
	fig, err := Fig678(d, []float64{0.1, 0.9}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Objects) != 2 {
		t.Fatalf("objects = %v", fig.Objects)
	}
	// Original series must exist and be non-empty.
	origs := 0
	for name, s := range fig.Series {
		if strings.HasPrefix(name, "orig-") {
			origs++
			if len(s) == 0 {
				t.Fatalf("empty original series %s", name)
			}
		}
	}
	if origs == 0 {
		t.Fatal("no original series")
	}
	dir := t.TempDir()
	if err := fig.SaveCSVs(dir); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no CSVs written: %v", err)
	}
	var buf bytes.Buffer
	PrintTrajectorySummary(&buf, fig)
	if buf.Len() == 0 {
		t.Fatal("no summary")
	}
}

func TestFig91011WritesPNGs(t *testing.T) {
	d := loadTiny(t, scene.MOT01())
	dir := t.TempDir()
	files, err := Fig91011(d, d.Gen.Video.Len()/2, []float64{0.1}, 13, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"input", "background", "synthetic-f0.1"} {
		path, ok := files[tag]
		if !ok {
			t.Fatalf("missing %s output", tag)
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("file %s: %v", path, err)
		}
	}
	if _, err := Fig91011(d, -1, nil, 13, dir); err == nil {
		t.Fatal("bad frame index should fail")
	}
}

func TestFig12And13(t *testing.T) {
	d := loadTiny(t, scene.MOT01())
	t12, err := Fig12(d, []float64{0.1, 0.9}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(t12.Cols) != 3 { // original + 2 fs
		t.Fatalf("fig12 cols = %d", len(t12.Cols))
	}
	if len(t12.X) != len(d.KF.KeyFrames) {
		t.Fatal("fig12 x axis wrong")
	}

	t13, err := Fig13(d, []float64{0.1, 0.9}, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(t13.X) != d.Gen.Video.Len() {
		t.Fatal("fig13 x axis wrong")
	}
	var buf bytes.Buffer
	PrintCountSummary(&buf, "Figure 13", t13)
	if !strings.Contains(buf.String(), "MAE") {
		t.Fatal("missing count summary")
	}
}

func TestBaselineShowsNaiveFailure(t *testing.T) {
	d := loadTiny(t, scene.MOT03())
	r, err := Baseline(d, 0.1, 2, 19)
	if err != nil {
		t.Fatal(err)
	}
	// The motivating claim: at matched eps over all frames, naive RR output
	// is near-uniform noise while the true presence is sparse.
	if r.NaiveOnesFrac < 0.3 || r.NaiveOnesFrac > 0.7 {
		t.Fatalf("naive ones fraction = %v, want near 0.5", r.NaiveOnesFrac)
	}
	if r.TrueOnesFrac >= 0.5 {
		t.Fatalf("true ones fraction = %v, expected sparser-than-uniform presence", r.TrueOnesFrac)
	}
	if r.NaiveCountMAE <= r.VerroCountMAE {
		t.Fatalf("naive MAE %v should exceed verro MAE %v", r.NaiveCountMAE, r.VerroCountMAE)
	}
	var buf bytes.Buffer
	PrintBaseline(&buf, r)
	if !strings.Contains(buf.String(), "naive") {
		t.Fatal("missing baseline output")
	}
}

func TestAblation(t *testing.T) {
	d := loadTiny(t, scene.MOT01())
	r, err := Ablation(d, 0.3, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	if r.KFOptRet <= 0 || r.KFOnlyRet <= 0 {
		t.Fatalf("ablation = %+v", r)
	}
	// OPT concentrates budget: its eps should not exceed keyframes-only eps.
	if r.KFOptEps > r.KFOnlyEps+1e-9 {
		t.Fatalf("OPT eps %v should be <= all-keyframes eps %v", r.KFOptEps, r.KFOnlyEps)
	}
	var buf bytes.Buffer
	PrintAblation(&buf, r)
	if buf.Len() == 0 {
		t.Fatal("no ablation output")
	}
}

func TestLoadDatasetWithTrackedObjects(t *testing.T) {
	opt := tinyOptions()
	opt.UseTrackedObjects = true
	d, err := LoadDataset(scene.MOT01(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tracks.Len() == 0 {
		t.Fatal("tracking found no objects")
	}
}

func TestRetentionAtF(t *testing.T) {
	d := loadTiny(t, scene.MOT01())
	r, err := d.Retention(0.2, 3, 29)
	if err != nil {
		t.Fatal(err)
	}
	if r.Original != d.Tracks.Len() || r.Opt > r.Original || r.RR < 0 {
		t.Fatalf("retention = %+v", r)
	}
}

func TestLoadDatasetMovingCamera(t *testing.T) {
	d, err := LoadDataset(scene.MOT06(), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Gen.Video.Moving {
		t.Fatal("moving flag lost")
	}
	// The full render path (moving background reconstruction) must work.
	if _, _, err := Table3(d, 0.1, 3); err != nil {
		t.Fatal(err)
	}
}
