package exp

import (
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"sort"

	"verro/internal/core"
	"verro/internal/img"
	"verro/internal/inpaint"
	"verro/internal/interp"
	"verro/internal/metrics"
	"verro/internal/motio"
)

// Fig5Point is one x-position of the Figure 5 curves for one video:
// distinct-object retention (a/c/e) and trajectory deviation before/after
// Phase II (b/d/f).
type Fig5Point struct {
	F         float64
	Original  float64
	Opt       float64
	RR        float64
	DevBefore float64
	DevAfter  float64
}

// Fig5 sweeps the flip probability and evaluates Phase I retention and
// Phase II deviation, averaging RR-dependent quantities over opt.Trials.
func Fig5(d *Dataset, fs []float64, trials int, seed int64) ([]Fig5Point, error) {
	if trials < 1 {
		trials = 1
	}
	var out []Fig5Point
	for fi, f := range fs {
		rng := rand.New(rand.NewSource(seed + int64(fi)*1000))
		pt := Fig5Point{F: f, Original: float64(d.Tracks.Len())}
		var rrSum, devB, devA float64
		for t := 0; t < trials; t++ {
			p1, err := d.phase1(f, true, rng)
			if err != nil {
				return nil, err
			}
			if t == 0 {
				pt.Opt = float64(core.DistinctPresent(p1.Optimal))
			}
			rrSum += float64(core.TruthfulPresent(p1.Output, p1.Optimal))

			p2, err := core.RunPhase2(p1, d.KF, d.Tracks, nil,
				d.Gen.Video.W, d.Gen.Video.H, d.Gen.Video.Len(),
				core.Phase2Config{Interp: interp.MethodLagrange, SkipRender: true}, rng)
			if err != nil {
				return nil, err
			}
			devB += metrics.SamplesDeviation(d.Tracks, p2.Assigned)
			// The Figure 5 deviation follows the paper's formula literally:
			// P(O_i, F*_k) is the position of the synthetic object generated
			// from O_i (the index mapping), so randomization at larger f
			// drives the curve up. The library's assignment-based
			// TrajectoryDeviation answers the complementary question "does a
			// similar trajectory exist at all".
			devA += metrics.IndexedTrajectoryDeviation(d.Tracks, p2.Tracks)
		}
		pt.RR = rrSum / float64(trials)
		pt.DevBefore = devB / float64(trials)
		pt.DevAfter = devA / float64(trials)
		out = append(out, pt)
	}
	return out, nil
}

// Fig5Table converts Fig5 points into the CSV series layout.
func Fig5Table(points []Fig5Point) (*motio.SeriesTable, error) {
	x := make([]float64, len(points))
	orig := make([]float64, len(points))
	opt := make([]float64, len(points))
	rr := make([]float64, len(points))
	devB := make([]float64, len(points))
	devA := make([]float64, len(points))
	for i, p := range points {
		x[i], orig[i], opt[i], rr[i], devB[i], devA[i] =
			p.F, p.Original, p.Opt, p.RR, p.DevBefore, p.DevAfter
	}
	t := motio.NewSeriesTable("f", x)
	cols := []struct {
		name    string
		samples []float64
	}{
		{"original", orig},
		{"opt", opt},
		{"rr", rr},
		{"dev_before_phase2", devB},
		{"dev_after_phase2", devA},
	}
	for _, c := range cols {
		if err := t.AddColumn(c.name, c.samples); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// PrintFig5 renders the sweep as text.
func PrintFig5(w io.Writer, video string, points []Fig5Point) {
	fmt.Fprintf(w, "Figure 5 (%s): Phase I retention and Phase II deviation vs f\n", video)
	fmt.Fprintf(w, "%6s %9s %7s %7s %11s %10s\n", "f", "original", "opt", "rr", "dev-before", "dev-after")
	for _, p := range points {
		fmt.Fprintf(w, "%6.2f %9.0f %7.0f %7.1f %11.3f %10.3f\n",
			p.F, p.Original, p.Opt, p.RR, p.DevBefore, p.DevAfter)
	}
}

// TrajectoryFig holds the Figures 6-8 data: original and synthetic
// trajectories of selected objects at several flip probabilities.
type TrajectoryFig struct {
	Video string
	// Objects are the sampled original object indices.
	Objects []int
	// Series maps "orig-<id>" / "synth-f<f>-<id>" to (frame, x, y) triples.
	Series map[string][][3]float64
}

// Fig678 samples two objects and extracts their original and synthetic
// trajectories at each f.
func Fig678(d *Dataset, fs []float64, seed int64) (*TrajectoryFig, error) {
	rng := rand.New(rand.NewSource(seed))
	n := d.Tracks.Len()
	if n == 0 {
		return nil, fmt.Errorf("exp: no objects to plot")
	}
	idx1 := rng.Intn(n)
	idx2 := rng.Intn(n)
	for n > 1 && idx2 == idx1 {
		idx2 = rng.Intn(n)
	}
	fig := &TrajectoryFig{
		Video:   d.Preset.Name,
		Objects: []int{idx1, idx2},
		Series:  map[string][][3]float64{},
	}
	for _, i := range fig.Objects {
		tr := d.Tracks.Tracks[i]
		frames, centers := tr.Trajectory()
		series := make([][3]float64, len(frames))
		for j := range frames {
			series[j] = [3]float64{float64(frames[j]), centers[j].X, centers[j].Y}
		}
		fig.Series[fmt.Sprintf("orig-%d", tr.ID)] = series
	}
	for _, f := range fs {
		p1, err := d.phase1(f, true, rng)
		if err != nil {
			return nil, err
		}
		p2, err := core.RunPhase2(p1, d.KF, d.Tracks, nil,
			d.Gen.Video.W, d.Gen.Video.H, d.Gen.Video.Len(),
			core.Phase2Config{Interp: interp.MethodLagrange, SkipRender: true}, rng)
		if err != nil {
			return nil, err
		}
		for _, i := range fig.Objects {
			origID := d.Tracks.Tracks[i].ID
			syn := p2.Tracks.ByID(i + 1)
			key := fmt.Sprintf("synth-f%.1f-%d", f, origID)
			if syn == nil {
				fig.Series[key] = nil // object lost at this f
				continue
			}
			frames, centers := syn.Trajectory()
			series := make([][3]float64, len(frames))
			for j := range frames {
				series[j] = [3]float64{float64(frames[j]), centers[j].X, centers[j].Y}
			}
			fig.Series[key] = series
		}
	}
	return fig, nil
}

// SaveCSVs writes one CSV per series into dir.
func (fig *TrajectoryFig) SaveCSVs(dir string) error {
	for name, series := range fig.Series {
		x := make([]float64, len(series))
		xs := make([]float64, len(series))
		ys := make([]float64, len(series))
		for i, s := range series {
			x[i], xs[i], ys[i] = s[0], s[1], s[2]
		}
		t := motio.NewSeriesTable("frame", x)
		if err := t.AddColumn("x", xs); err != nil {
			return err
		}
		if err := t.AddColumn("y", ys); err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("%s-%s.csv", fig.Video, name))
		if err := t.SaveCSV(path); err != nil {
			return err
		}
	}
	return nil
}

// PrintTrajectorySummary lists the extracted series and their lengths in
// sorted order, so the report is byte-identical across runs.
func PrintTrajectorySummary(w io.Writer, fig *TrajectoryFig) {
	fmt.Fprintf(w, "Figures 6-8 (%s): trajectories of objects %v\n", fig.Video, fig.Objects)
	names := make([]string, 0, len(fig.Series))
	for name := range fig.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-22s %4d points\n", name, len(fig.Series[name]))
	}
}

// Fig91011 renders the representative frames of Figures 9-11 for one
// dataset: the input frame, the reconstructed background scene, and the
// synthetic frames at each f. PNGs are written into dir when non-empty.
// It returns the reconstruction error diagnostics.
func Fig91011(d *Dataset, frame int, fs []float64, seed int64, dir string) (map[string]string, error) {
	if frame < 0 || frame >= d.Gen.Video.Len() {
		return nil, fmt.Errorf("exp: frame %d out of range", frame)
	}
	files := map[string]string{}

	// Figures 9-11's left panel is the raw input frame — the unsanitized
	// half of the published side-by-side comparison, by the paper's design.
	//lint:allow privleak input panel of Fig 9-11 is deliberately the raw frame
	if err := writeFigPNG(dir, d.Preset.Name, frame, "input", d.Gen.Video.Frame(frame), files); err != nil {
		return nil, err
	}

	scenes, err := inpaint.ExtractScenes(d.Gen.Video, d.Tracks, backgroundStep(d.Gen.Video.Len()), inpaint.DefaultConfig())
	if err != nil {
		return nil, err
	}
	bg, err := scenes.Background(frame)
	if err != nil {
		return nil, err
	}
	// The reconstructed background is derived from the raw video but is what
	// the paper itself publishes as the middle panel of Figures 9-11.
	//lint:allow privleak background panel of Fig 9-11 is a published reconstruction
	if err := writeFigPNG(dir, d.Preset.Name, frame, "background", bg, files); err != nil {
		return nil, err
	}

	for _, f := range fs {
		cfg := d.SanitizerConfig(f, seed, true)
		res, err := core.Sanitize(d.Gen.Video, d.Tracks, cfg)
		if err != nil {
			return nil, err
		}
		if err := writeFigPNG(dir, d.Preset.Name, frame, fmt.Sprintf("synthetic-f%.1f", f), res.Synthetic.Frame(frame), files); err != nil {
			return nil, err
		}
	}
	return files, nil
}

// writeFigPNG renders one panel of Figures 9-11 into dir (a no-op when dir
// is empty) and records the written path in files. It is a named function
// rather than the closure it used to be so that verroflow's per-function
// summaries can see the WritePNG sink through it — calls through a
// closure-typed local are a documented blind spot of the taint engine.
func writeFigPNG(dir, preset string, frame int, tag string, im *img.Image, files map[string]string) error {
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-frame%d-%s.png", preset, frame, tag))
	if err := im.WritePNG(path); err != nil {
		return err
	}
	files[tag] = path
	return nil
}

func backgroundStep(frames int) int {
	step := frames / 40
	if step < 1 {
		step = 1
	}
	return step
}

// Fig12 computes object counts in the optimized (picked) key frames after
// Phase I: original counts versus randomized counts at each f.
func Fig12(d *Dataset, fs []float64, seed int64) (*motio.SeriesTable, error) {
	rng := rand.New(rand.NewSource(seed))
	// Use the f=first run to fix the picked set; Phase I picking is
	// deterministic given counts, so picked frames coincide across fs
	// unless f moves the optimum slightly — we report per-f counts over
	// each run's own picked frames projected onto all key frames.
	ell := len(d.KF.KeyFrames)
	x := make([]float64, ell)
	for j, k := range d.KF.KeyFrames {
		x[j] = float64(k)
	}
	t := motio.NewSeriesTable("keyframe", x)
	origCounts := core.KeyFrameCounts(d.Reduced)
	if origCounts == nil {
		origCounts = make([]int, ell)
	}
	if err := t.AddColumn("original", motio.IntsToFloats(origCounts)); err != nil {
		return nil, err
	}
	for _, f := range fs {
		p1, err := d.phase1(f, true, rng)
		if err != nil {
			return nil, err
		}
		counts := core.KeyFrameCounts(p1.Output)
		if counts == nil {
			counts = make([]int, ell)
		}
		if err := t.AddColumn(fmt.Sprintf("f=%.1f", f), motio.IntsToFloats(counts)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Fig13 computes per-frame object counts in the synthetic videos (after
// Phase II) against the original video.
func Fig13(d *Dataset, fs []float64, seed int64) (*motio.SeriesTable, error) {
	rng := rand.New(rand.NewSource(seed))
	m := d.Gen.Video.Len()
	x := make([]float64, m)
	for k := range x {
		x[k] = float64(k)
	}
	t := motio.NewSeriesTable("frame", x)
	if err := t.AddColumn("original", motio.IntsToFloats(d.Tracks.CountSeries(m))); err != nil {
		return nil, err
	}
	for _, f := range fs {
		p1, err := d.phase1(f, true, rng)
		if err != nil {
			return nil, err
		}
		p2, err := core.RunPhase2(p1, d.KF, d.Tracks, nil,
			d.Gen.Video.W, d.Gen.Video.H, m,
			core.Phase2Config{Interp: interp.MethodLagrange, SkipRender: true}, rng)
		if err != nil {
			return nil, err
		}
		if err := t.AddColumn(fmt.Sprintf("f=%.1f", f), motio.IntsToFloats(p2.Tracks.CountSeries(m))); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// PrintCountSummary renders a count-series table as summary statistics
// (MAE and correlation of each column against the first).
func PrintCountSummary(w io.Writer, title string, t *motio.SeriesTable) {
	fmt.Fprintln(w, title)
	if len(t.Cols) == 0 {
		return
	}
	ref := toInts(t.Cols[0].Samples)
	for _, c := range t.Cols[1:] {
		cur := toInts(c.Samples)
		fmt.Fprintf(w, "  %-10s MAE=%.3f corr=%.3f\n",
			c.Name, metrics.CountMAE(ref, cur), metrics.CountCorrelation(ref, cur))
	}
}

func toInts(xs []float64) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x + 0.5)
	}
	return out
}
