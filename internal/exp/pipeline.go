package exp

import (
	"fmt"

	"verro/internal/detect"
	"verro/internal/motio"
	"verro/internal/obs"
	"verro/internal/scene"
	"verro/internal/track"
)

// trackObjects runs the real detection+tracking preprocessing over a
// generated dataset, reporting stage spans to tr (nil = untraced).
func trackObjects(g *scene.Generated, tr *obs.Trace) (*motio.TrackSet, error) {
	step := g.Video.Len() / 40
	if step < 1 {
		step = 1
	}
	root := tr.Root()
	bgSpan := root.Child("background")
	bg, err := detect.MedianBackgroundRT(g.Video.Frames, step, obs.Runtime{Span: bgSpan})
	bgSpan.End()
	if err != nil {
		return nil, fmt.Errorf("exp: background model: %w", err)
	}
	tracks, err := track.RunRT(g.Video.Frames, detect.NewBGSubtractor(bg), track.DefaultConfig(),
		obs.Runtime{Span: root})
	if err != nil {
		return nil, fmt.Errorf("exp: tracking: %w", err)
	}
	return tracks, nil
}
