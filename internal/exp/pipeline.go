package exp

import (
	"fmt"

	"verro/internal/detect"
	"verro/internal/motio"
	"verro/internal/scene"
	"verro/internal/track"
)

// trackObjects runs the real detection+tracking preprocessing over a
// generated dataset.
func trackObjects(g *scene.Generated) (*motio.TrackSet, error) {
	step := g.Video.Len() / 40
	if step < 1 {
		step = 1
	}
	bg, err := detect.MedianBackground(g.Video.Frames, step)
	if err != nil {
		return nil, fmt.Errorf("exp: background model: %w", err)
	}
	tracks, err := track.Run(g.Video.Frames, detect.NewBGSubtractor(bg), track.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("exp: tracking: %w", err)
	}
	return tracks, nil
}
