package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"verro/internal/core"
	"verro/internal/vid"
)

// Table1Row is one row of the paper's Table 1 (video characteristics).
type Table1Row struct {
	Video      string
	Resolution string
	Frames     int
	Objects    int
	Camera     string
}

// Table1 summarizes the loaded datasets.
func Table1(ds []*Dataset) []Table1Row {
	rows := make([]Table1Row, 0, len(ds))
	for _, d := range ds {
		cam := "static"
		if d.Preset.Moving {
			cam = "moving"
		}
		rows = append(rows, Table1Row{
			Video:      d.Preset.Name,
			Resolution: fmt.Sprintf("%dx%d", d.Preset.W, d.Preset.H),
			Frames:     d.Gen.Video.Len(),
			Objects:    d.Tracks.Len(),
			Camera:     cam,
		})
	}
	return rows
}

// PrintTable1 renders Table 1 in the paper's layout.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: Characteristics of Experimental Videos")
	fmt.Fprintf(w, "%-8s %-12s %8s %8s %8s\n", "Video", "Resolution", "Frame#", "Objects", "Camera")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-12s %8d %8d %8s\n", r.Video, r.Resolution, r.Frames, r.Objects, r.Camera)
	}
}

// Table2Row is one row of the paper's Table 2 (distinct objects after key
// frame extraction).
type Table2Row struct {
	Video     string
	Frames    int
	Objects   int
	KeyFrames int
	Remaining int
}

// Table2 computes the key-frame retention row for a dataset.
func Table2(d *Dataset) Table2Row {
	return Table2Row{
		Video:     d.Preset.Name,
		Frames:    d.Gen.Video.Len(),
		Objects:   d.Tracks.Len(),
		KeyFrames: len(d.KF.KeyFrames),
		Remaining: core.PresentInKeyFrames(d.Tracks, d.KF),
	}
}

// PrintTable2 renders Table 2.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: Distinct Objects after Key Frame Extraction")
	fmt.Fprintf(w, "%-8s %8s %9s %11s %11s\n", "Video", "Frame#", "Objects#", "KeyFrame#", "Remaining#")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %8d %9d %11d %11d\n", r.Video, r.Frames, r.Objects, r.KeyFrames, r.Remaining)
	}
}

// Table3Row is one row of the paper's Table 3 (overheads).
type Table3Row struct {
	Video       string
	Phase1      time.Duration
	Phase2      time.Duration
	Preprocess  time.Duration
	BandwidthMB float64
}

// Table3 runs a full sanitization (f as in the paper's overhead runs) and
// measures phase runtimes and output bandwidth.
func Table3(d *Dataset, f float64, seed int64) (Table3Row, *core.Result, error) {
	cfg := d.SanitizerConfig(f, seed, true)
	res, err := core.Sanitize(d.Gen.Video, d.Tracks, cfg)
	if err != nil {
		return Table3Row{}, nil, err
	}
	size, err := vid.EncodedSize(res.Synthetic)
	if err != nil {
		return Table3Row{}, nil, err
	}
	return Table3Row{
		Video:       d.Preset.Name,
		Phase1:      res.Phase1Time,
		Phase2:      res.Phase2Time,
		Preprocess:  res.PreprocessTime,
		BandwidthMB: float64(size) / (1 << 20),
	}, res, nil
}

// PrintTable3 renders Table 3.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: Computational and Communication Overheads")
	fmt.Fprintf(w, "%-8s %12s %12s %14s %14s\n", "Video", "PhaseI(s)", "PhaseII(s)", "Preproc(s)", "Bandwidth(MB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %12.3f %12.3f %14.3f %14.2f\n",
			r.Video, r.Phase1.Seconds(), r.Phase2.Seconds(), r.Preprocess.Seconds(), r.BandwidthMB)
	}
}

// RetentionAtF reports the Figure 5(a/c/e) counters for one flip
// probability: objects in the original video, after OPT restriction, and
// after random response (averaged over trials).
type RetentionAtF struct {
	F        float64
	Original int
	Opt      int
	RR       float64
}

// Retention computes distinct-object retention at one f.
func (d *Dataset) Retention(f float64, trials int, seed int64) (RetentionAtF, error) {
	rng := rand.New(rand.NewSource(seed))
	out := RetentionAtF{F: f, Original: d.Tracks.Len()}
	var rrSum int
	for t := 0; t < trials; t++ {
		p1, err := d.phase1(f, true, rng)
		if err != nil {
			return out, err
		}
		if t == 0 {
			out.Opt = core.DistinctPresent(p1.Optimal)
		}
		rrSum += core.TruthfulPresent(p1.Output, p1.Optimal)
	}
	if trials > 0 {
		out.RR = float64(rrSum) / float64(trials)
	}
	return out, nil
}
