// Package geom provides the small geometric vocabulary shared by the video,
// detection, tracking and sanitization packages: integer points and
// rectangles, floating-point vectors, and the box overlap measures
// (intersection-over-union and friends) used throughout VERRO.
package geom

import (
	"fmt"
	"math"
)

// Point is an integer pixel coordinate. The origin is the top-left corner of
// a frame; x grows rightwards and y grows downwards.
type Point struct {
	X, Y int
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int) Point { return Point{x, y} }

// Add returns p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p−q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// In reports whether p lies inside r (half-open on the max edges).
func (p Point) In(r Rect) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Vec is a floating-point 2-vector, used for sub-pixel object centers and
// trajectory samples.
type Vec struct {
	X, Y float64
}

// V is shorthand for Vec{x, y}.
func V(x, y float64) Vec { return Vec{x, y} }

// Add returns v+w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v−w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s} }

// Dot returns the dot product v·w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Norm() }

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec) Lerp(w Vec, t float64) Vec {
	return Vec{v.X + (w.X-v.X)*t, v.Y + (w.Y-v.Y)*t}
}

// Round converts v to the nearest integer Point.
func (v Vec) Round() Point {
	return Point{int(math.Round(v.X)), int(math.Round(v.Y))}
}

// PointVec converts an integer point to a Vec.
func PointVec(p Point) Vec { return Vec{float64(p.X), float64(p.Y)} }

// Rect is an axis-aligned integer rectangle, half-open: it contains points
// with Min.X <= x < Max.X and Min.Y <= y < Max.Y, matching image.Rectangle
// conventions.
type Rect struct {
	Min, Max Point
}

// R returns the rectangle with corners (x0,y0) and (x1,y1), normalized so
// Min is the top-left corner.
func R(x0, y0, x1, y1 int) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Point{x0, y0}, Point{x1, y1}}
}

// RectAt returns a w×h rectangle whose top-left corner is (x, y).
func RectAt(x, y, w, h int) Rect { return Rect{Point{x, y}, Point{x + w, y + h}} }

// CenteredRect returns a w×h rectangle centered (as closely as integer
// coordinates allow) on c.
func CenteredRect(c Point, w, h int) Rect {
	return RectAt(c.X-w/2, c.Y-h/2, w, h)
}

// Dx returns the width of r.
func (r Rect) Dx() int { return r.Max.X - r.Min.X }

// Dy returns the height of r.
func (r Rect) Dy() int { return r.Max.Y - r.Min.Y }

// Area returns the number of integer points in r; degenerate rectangles
// have zero area.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return r.Dx() * r.Dy()
}

// Empty reports whether r contains no points.
func (r Rect) Empty() bool { return r.Min.X >= r.Max.X || r.Min.Y >= r.Max.Y }

// Center returns the (floored) center point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// CenterVec returns the exact center of r.
func (r Rect) CenterVec() Vec {
	return Vec{float64(r.Min.X+r.Max.X) / 2, float64(r.Min.Y+r.Max.Y) / 2}
}

// Translate returns r moved by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.Min.Add(d), r.Max.Add(d)}
}

// Intersect returns the largest rectangle contained in both r and s. If the
// two do not overlap, the result is empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Point{max(r.Min.X, s.Min.X), max(r.Min.Y, s.Min.Y)},
		Point{min(r.Max.X, s.Max.X), min(r.Max.Y, s.Max.Y)},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Point{min(r.Min.X, s.Min.X), min(r.Min.Y, s.Min.Y)},
		Point{max(r.Max.X, s.Max.X), max(r.Max.Y, s.Max.Y)},
	}
}

// Contains reports whether s lies entirely within r.
func (r Rect) Contains(s Rect) bool {
	if s.Empty() {
		return true
	}
	return r.Min.X <= s.Min.X && r.Min.Y <= s.Min.Y &&
		r.Max.X >= s.Max.X && r.Max.Y >= s.Max.Y
}

// Clip returns r clipped to bounds.
func (r Rect) Clip(bounds Rect) Rect { return r.Intersect(bounds) }

// Overlaps reports whether r and s share at least one point.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d;%d,%d]", r.Min.X, r.Min.Y, r.Max.X, r.Max.Y)
}

// IoU returns the intersection-over-union of r and s in [0, 1]. Two empty
// rectangles have IoU 0.
func IoU(r, s Rect) float64 {
	inter := r.Intersect(s).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + s.Area() - inter
	return float64(inter) / float64(union)
}

// Overlap returns the fraction of r covered by s (intersection over the area
// of r). Used by the tracker to decide whether two detections are the same
// object when their sizes differ greatly.
func Overlap(r, s Rect) float64 {
	a := r.Area()
	if a == 0 {
		return 0
	}
	return float64(r.Intersect(s).Area()) / float64(a)
}

// Polyline is an ordered sequence of floating-point positions, one per frame
// index; it is the representation of an object trajectory.
type Polyline []Vec

// Length returns the total arc length of the polyline.
func (p Polyline) Length() float64 {
	var total float64
	for i := 1; i < len(p); i++ {
		total += p[i].Dist(p[i-1])
	}
	return total
}

// Bounds returns the bounding rectangle of all points on the polyline.
func (p Polyline) Bounds() Rect {
	if len(p) == 0 {
		return Rect{}
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, v := range p {
		minX = math.Min(minX, v.X)
		minY = math.Min(minY, v.Y)
		maxX = math.Max(maxX, v.X)
		maxY = math.Max(maxY, v.Y)
	}
	return R(int(math.Floor(minX)), int(math.Floor(minY)),
		int(math.Ceil(maxX))+1, int(math.Ceil(maxY))+1)
}

// Clamp returns x restricted to [lo, hi].
func Clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampF returns x restricted to [lo, hi].
func ClampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
