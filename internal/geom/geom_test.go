package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectNormalization(t *testing.T) {
	r := R(10, 20, 2, 4)
	if r.Min != Pt(2, 4) || r.Max != Pt(10, 20) {
		t.Fatalf("R did not normalize corners: %v", r)
	}
}

func TestRectAreaAndEmpty(t *testing.T) {
	cases := []struct {
		r     Rect
		area  int
		empty bool
	}{
		{R(0, 0, 4, 3), 12, false},
		{R(5, 5, 5, 9), 0, true},
		{Rect{}, 0, true},
		{RectAt(-2, -2, 2, 2), 4, false},
	}
	for _, c := range cases {
		if got := c.r.Area(); got != c.area {
			t.Errorf("%v.Area() = %d, want %d", c.r, got, c.area)
		}
		if got := c.r.Empty(); got != c.empty {
			t.Errorf("%v.Empty() = %t, want %t", c.r, got, c.empty)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	got := a.Intersect(b)
	if got != R(5, 5, 10, 10) {
		t.Fatalf("Intersect = %v", got)
	}
	if !a.Intersect(R(20, 20, 30, 30)).Empty() {
		t.Fatal("disjoint rects should intersect to empty")
	}
}

func TestUnionContains(t *testing.T) {
	a := R(0, 0, 4, 4)
	b := R(6, 6, 8, 8)
	u := a.Union(b)
	if !u.Contains(a) || !u.Contains(b) {
		t.Fatalf("union %v must contain both operands", u)
	}
	if u != R(0, 0, 8, 8) {
		t.Fatalf("union = %v, want [0,0;8,8]", u)
	}
	if got := a.Union(Rect{}); got != a {
		t.Fatalf("union with empty = %v, want %v", got, a)
	}
}

func TestIoU(t *testing.T) {
	a := R(0, 0, 10, 10)
	if got := IoU(a, a); got != 1 {
		t.Fatalf("IoU(a,a) = %v, want 1", got)
	}
	if got := IoU(a, R(10, 10, 20, 20)); got != 0 {
		t.Fatalf("disjoint IoU = %v, want 0", got)
	}
	// Half overlap: inter 50, union 150.
	b := R(5, 0, 15, 10)
	want := 50.0 / 150.0
	if got := IoU(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("IoU = %v, want %v", got, want)
	}
}

func TestIoUProperties(t *testing.T) {
	gen := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := RectAt(int(ax), int(ay), int(aw%32)+1, int(ah%32)+1)
		b := RectAt(int(bx), int(by), int(bw%32)+1, int(bh%32)+1)
		iou := IoU(a, b)
		if iou < 0 || iou > 1 {
			return false
		}
		// Symmetry.
		return iou == IoU(b, a)
	}
	if err := quick.Check(gen, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectCommutesAndContained(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := RectAt(int(ax), int(ay), int(aw)+1, int(ah)+1)
		b := RectAt(int(bx), int(by), int(bw)+1, int(bh)+1)
		i1, i2 := a.Intersect(b), b.Intersect(a)
		if i1 != i2 {
			return false
		}
		return a.Contains(i1) && b.Contains(i1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCenteredRect(t *testing.T) {
	r := CenteredRect(Pt(10, 10), 4, 6)
	if r.Center() != Pt(10, 10) {
		t.Fatalf("center = %v", r.Center())
	}
	if r.Dx() != 4 || r.Dy() != 6 {
		t.Fatalf("dims = %dx%d", r.Dx(), r.Dy())
	}
}

func TestVecOps(t *testing.T) {
	v := V(3, 4)
	if v.Norm() != 5 {
		t.Fatalf("Norm = %v", v.Norm())
	}
	if got := v.Add(V(1, 1)); got != V(4, 5) {
		t.Fatalf("Add = %v", got)
	}
	if got := v.Scale(2); got != V(6, 8) {
		t.Fatalf("Scale = %v", got)
	}
	if got := v.Dot(V(2, 1)); got != 10 {
		t.Fatalf("Dot = %v", got)
	}
	if got := V(0, 0).Lerp(V(10, 20), 0.5); got != V(5, 10) {
		t.Fatalf("Lerp = %v", got)
	}
	if got := V(1.6, -1.4).Round(); got != Pt(2, -1) {
		t.Fatalf("Round = %v", got)
	}
}

func TestPointIn(t *testing.T) {
	r := R(0, 0, 10, 10)
	if !Pt(0, 0).In(r) {
		t.Fatal("min corner should be inside (half-open)")
	}
	if Pt(10, 5).In(r) || Pt(5, 10).In(r) {
		t.Fatal("max edges should be outside (half-open)")
	}
}

func TestPolyline(t *testing.T) {
	p := Polyline{V(0, 0), V(3, 4), V(3, 4)}
	if p.Length() != 5 {
		t.Fatalf("Length = %v", p.Length())
	}
	b := p.Bounds()
	if !Pt(0, 0).In(b) || !Pt(3, 4).In(b) {
		t.Fatalf("Bounds = %v does not contain endpoints", b)
	}
	if (Polyline{}).Length() != 0 {
		t.Fatal("empty polyline length should be 0")
	}
}

func TestOverlapFraction(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(0, 0, 5, 10)
	if got := Overlap(b, a); got != 1 {
		t.Fatalf("b fully covered by a: Overlap = %v", got)
	}
	if got := Overlap(a, b); got != 0.5 {
		t.Fatalf("Overlap = %v, want 0.5", got)
	}
	if got := Overlap(Rect{}, a); got != 0 {
		t.Fatalf("Overlap empty = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp misbehaves")
	}
	if ClampF(1.5, 0, 1) != 1 || ClampF(-0.5, 0, 1) != 0 || ClampF(0.25, 0, 1) != 0.25 {
		t.Fatal("ClampF misbehaves")
	}
}

func TestTranslate(t *testing.T) {
	r := R(1, 2, 3, 4).Translate(Pt(10, 20))
	if r != R(11, 22, 13, 24) {
		t.Fatalf("Translate = %v", r)
	}
}
