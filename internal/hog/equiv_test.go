package hog

// Bit-identity check for the flat-buffer/row-sliced Compute rewrite: a
// naive reference (per-cell allocation, per-pixel indexing, allocating
// L2-Hys) must produce the exact same descriptor, since the rewrite only
// restructured memory layout, never the arithmetic or its order.

import (
	"math"
	"testing"

	"verro/internal/img"
)

func computeRef(m *img.Image, c Config) ([]float64, error) {
	wantLen, err := c.FeatureLen(m.W, m.H)
	if err != nil {
		return nil, err
	}
	gx, gy := m.Gradients()
	cellsX := m.W / c.CellSize
	cellsY := m.H / c.CellSize

	cells := make([][]float64, cellsX*cellsY)
	for i := range cells {
		cells[i] = make([]float64, c.Bins)
	}
	binWidth := 180.0 / float64(c.Bins)
	for y := 0; y < cellsY*c.CellSize; y++ {
		for x := 0; x < cellsX*c.CellSize; x++ {
			i := y*m.W + x
			mag := math.Hypot(gx[i], gy[i])
			if mag == 0 {
				continue
			}
			ang := math.Atan2(gy[i], gx[i]) * 180 / math.Pi
			if ang < 0 {
				ang += 180
			}
			if ang >= 180 {
				ang -= 180
			}
			pos := ang/binWidth - 0.5
			lo := int(math.Floor(pos))
			frac := pos - float64(lo)
			hi := lo + 1
			loBin := ((lo % c.Bins) + c.Bins) % c.Bins
			hiBin := hi % c.Bins
			hist := cells[(y/c.CellSize)*cellsX+x/c.CellSize]
			hist[loBin] += mag * (1 - frac)
			hist[hiBin] += mag * frac
		}
	}

	blocksX := (cellsX-c.BlockSize)/c.BlockStride + 1
	blocksY := (cellsY-c.BlockSize)/c.BlockStride + 1
	var out []float64
	for by := 0; by < blocksY; by++ {
		for bx := 0; bx < blocksX; bx++ {
			var block []float64
			for cy := 0; cy < c.BlockSize; cy++ {
				for cx := 0; cx < c.BlockSize; cx++ {
					cell := cells[(by*c.BlockStride+cy)*cellsX+(bx*c.BlockStride+cx)]
					block = append(block, cell...)
				}
			}
			// Allocating L2-Hys, same arithmetic as l2hysInto.
			norm := l2(block) + 1e-6
			normed := make([]float64, len(block))
			for i, v := range block {
				normed[i] = math.Min(v/norm, 0.2)
			}
			norm = l2(normed) + 1e-6
			for i := range normed {
				normed[i] /= norm
			}
			out = append(out, normed...)
		}
	}
	if len(out) != wantLen {
		return nil, ErrWindow
	}
	return out, nil
}

func noiseImage(w, h int, seed uint64) *img.Image {
	m := img.New(w, h)
	m.VerticalGradient(img.RGB{R: 40, G: 60, B: 90}, img.RGB{R: 200, G: 180, B: 120})
	m.AddNoise(25, seed)
	return m
}

func TestComputeEquiv(t *testing.T) {
	cfgs := []Config{
		DefaultConfig(),
		{CellSize: 8, BlockSize: 2, BlockStride: 2, Bins: 6},
		{CellSize: 4, BlockSize: 3, BlockStride: 1, Bins: 9},
	}
	for ci, c := range cfgs {
		for _, d := range []struct{ w, h int }{{64, 128}, {33, 47}} {
			m := noiseImage(d.w, d.h, uint64(ci+1))
			got, err := Compute(m, c)
			if err != nil {
				t.Fatalf("cfg %d %dx%d: Compute: %v", ci, d.w, d.h, err)
			}
			want, err := computeRef(m, c)
			if err != nil {
				t.Fatalf("cfg %d %dx%d: computeRef: %v", ci, d.w, d.h, err)
			}
			if len(got) != len(want) {
				t.Fatalf("cfg %d %dx%d: len %d != %d", ci, d.w, d.h, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cfg %d %dx%d: feature[%d]: got %v want %v", ci, d.w, d.h, i, got[i], want[i])
				}
			}
		}
	}
}
