// Package hog implements histogram-of-oriented-gradients descriptors
// (Dalal-Triggs style), the feature representation behind the paper's
// pedestrian detector [51]: gradients are binned by unsigned orientation
// into cell histograms, which are grouped into overlapping blocks and
// L2-Hys normalized.
package hog

import (
	"errors"
	"fmt"
	"math"

	"verro/internal/geom"
	"verro/internal/img"
)

// Config describes the descriptor geometry.
type Config struct {
	CellSize    int // pixels per cell side
	BlockSize   int // cells per block side
	BlockStride int // cells between consecutive blocks
	Bins        int // orientation bins over [0, 180)
}

// DefaultConfig matches the classic 8px cells / 2×2-cell blocks / 9 bins
// pedestrian descriptor, scaled down slightly for the low-resolution
// synthetic videos (4px cells keep windows of ~16×32 meaningful).
func DefaultConfig() Config {
	return Config{CellSize: 4, BlockSize: 2, BlockStride: 1, Bins: 9}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CellSize <= 0 || c.BlockSize <= 0 || c.BlockStride <= 0 || c.Bins <= 0 {
		return fmt.Errorf("hog: non-positive parameter in %+v", c)
	}
	return nil
}

// FeatureLen returns the descriptor length for a w×h window, or an error if
// the window is too small for a single block.
func (c Config) FeatureLen(w, h int) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	cellsX := w / c.CellSize
	cellsY := h / c.CellSize
	blocksX := (cellsX-c.BlockSize)/c.BlockStride + 1
	blocksY := (cellsY-c.BlockSize)/c.BlockStride + 1
	if blocksX <= 0 || blocksY <= 0 {
		return 0, fmt.Errorf("hog: window %dx%d too small for config %+v", w, h, c)
	}
	return blocksX * blocksY * c.BlockSize * c.BlockSize * c.Bins, nil
}

// ErrWindow reports a window that does not fit the descriptor geometry.
var ErrWindow = errors.New("hog: bad window")

// Compute extracts the HOG descriptor of the whole image m.
func Compute(m *img.Image, c Config) ([]float64, error) {
	wantLen, err := c.FeatureLen(m.W, m.H)
	if err != nil {
		return nil, err
	}

	gx, gy := m.Gradients()
	cellsX := m.W / c.CellSize
	cellsY := m.H / c.CellSize

	// Cell histograms with bilinear orientation binning. The histograms
	// share one flat backing buffer; a per-cell make would allocate
	// cellsX*cellsY times.
	cells := make([][]float64, cellsX*cellsY)
	cellBuf := make([]float64, len(cells)*c.Bins)
	for i := range cells {
		cells[i] = cellBuf[i*c.Bins : (i+1)*c.Bins]
	}
	binWidth := 180.0 / float64(c.Bins)
	for y := 0; y < cellsY*c.CellSize; y++ {
		rowOff := y * m.W
		cellRow := cells[(y/c.CellSize)*cellsX : (y/c.CellSize)*cellsX+cellsX]
		for cx, hist := range cellRow {
			off := rowOff + cx*c.CellSize
			cgx := gx[off : off+c.CellSize]
			cgy := gy[off : off+c.CellSize]
			k := len(cgx)
			if len(cgy) < k {
				k = len(cgy)
			}
			for px := 0; px < k; px++ {
				mag := math.Hypot(cgx[px], cgy[px])
				if mag == 0 {
					continue
				}
				ang := math.Atan2(cgy[px], cgx[px]) * 180 / math.Pi // (-180, 180]
				if ang < 0 {
					ang += 180 // unsigned orientation
				}
				if ang >= 180 {
					ang -= 180
				}
				pos := ang/binWidth - 0.5
				lo := int(math.Floor(pos))
				frac := pos - float64(lo)
				hi := lo + 1
				loBin := ((lo % c.Bins) + c.Bins) % c.Bins
				hiBin := hi % c.Bins
				hist[loBin] += mag * (1 - frac) //lint:allow bce orientation bin is data-dependent; the mod arithmetic keeps it in [0, Bins) = len(hist)
				hist[hiBin] += mag * frac       //lint:allow bce orientation bin is data-dependent; the mod arithmetic keeps it in [0, Bins) = len(hist)
			}
		}
	}

	// Blocks with L2-Hys normalization.
	blocksX := (cellsX-c.BlockSize)/c.BlockStride + 1
	blocksY := (cellsY-c.BlockSize)/c.BlockStride + 1
	out := make([]float64, 0, wantLen)
	block := make([]float64, c.BlockSize*c.BlockSize*c.Bins)
	normed := make([]float64, len(block))
	for by := 0; by < blocksY; by++ {
		for bx := 0; bx < blocksX; bx++ {
			block = block[:0]
			for cy := 0; cy < c.BlockSize; cy++ {
				start := (by*c.BlockStride+cy)*cellsX + bx*c.BlockStride
				for _, cell := range cells[start : start+c.BlockSize] {
					block = append(block, cell...)
				}
			}
			l2hysInto(normed, block)
			out = append(out, normed...)
		}
	}
	if len(out) != wantLen {
		return nil, fmt.Errorf("hog: internal length mismatch %d != %d", len(out), wantLen)
	}
	return out, nil
}

// ComputeWindow extracts the descriptor of a sub-window by copying it out;
// windows outside the image are clamped by SubImage semantics.
func ComputeWindow(m *img.Image, x, y, w, h int, c Config) ([]float64, error) {
	if x < 0 || y < 0 || x+w > m.W || y+h > m.H {
		return nil, fmt.Errorf("%w: (%d,%d,%d,%d) outside %dx%d", ErrWindow, x, y, w, h, m.W, m.H)
	}
	sub := m.SubImage(geom.RectAt(x, y, w, h))
	return Compute(sub, c)
}

// l2hysInto applies L2 normalization, clipping at 0.2, and renormalization,
// writing into the caller's equally-sized buffer so the per-block loop does
// not allocate.
func l2hysInto(dst, v []float64) {
	n := len(dst)
	if len(v) < n {
		n = len(v)
	}
	norm := l2(v) + 1e-6
	for i := 0; i < n; i++ {
		dst[i] = math.Min(v[i]/norm, 0.2)
	}
	norm = l2(dst) + 1e-6
	for i := range dst {
		dst[i] /= norm
	}
}

func l2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
