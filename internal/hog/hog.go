// Package hog implements histogram-of-oriented-gradients descriptors
// (Dalal-Triggs style), the feature representation behind the paper's
// pedestrian detector [51]: gradients are binned by unsigned orientation
// into cell histograms, which are grouped into overlapping blocks and
// L2-Hys normalized.
package hog

import (
	"errors"
	"fmt"
	"math"

	"verro/internal/geom"
	"verro/internal/img"
)

// Config describes the descriptor geometry.
type Config struct {
	CellSize    int // pixels per cell side
	BlockSize   int // cells per block side
	BlockStride int // cells between consecutive blocks
	Bins        int // orientation bins over [0, 180)
}

// DefaultConfig matches the classic 8px cells / 2×2-cell blocks / 9 bins
// pedestrian descriptor, scaled down slightly for the low-resolution
// synthetic videos (4px cells keep windows of ~16×32 meaningful).
func DefaultConfig() Config {
	return Config{CellSize: 4, BlockSize: 2, BlockStride: 1, Bins: 9}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CellSize <= 0 || c.BlockSize <= 0 || c.BlockStride <= 0 || c.Bins <= 0 {
		return fmt.Errorf("hog: non-positive parameter in %+v", c)
	}
	return nil
}

// FeatureLen returns the descriptor length for a w×h window, or an error if
// the window is too small for a single block.
func (c Config) FeatureLen(w, h int) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	cellsX := w / c.CellSize
	cellsY := h / c.CellSize
	blocksX := (cellsX-c.BlockSize)/c.BlockStride + 1
	blocksY := (cellsY-c.BlockSize)/c.BlockStride + 1
	if blocksX <= 0 || blocksY <= 0 {
		return 0, fmt.Errorf("hog: window %dx%d too small for config %+v", w, h, c)
	}
	return blocksX * blocksY * c.BlockSize * c.BlockSize * c.Bins, nil
}

// ErrWindow reports a window that does not fit the descriptor geometry.
var ErrWindow = errors.New("hog: bad window")

// Compute extracts the HOG descriptor of the whole image m.
func Compute(m *img.Image, c Config) ([]float64, error) {
	wantLen, err := c.FeatureLen(m.W, m.H)
	if err != nil {
		return nil, err
	}

	gx, gy := m.Gradients()
	cellsX := m.W / c.CellSize
	cellsY := m.H / c.CellSize

	// Cell histograms with bilinear orientation binning.
	cells := make([][]float64, cellsX*cellsY)
	for i := range cells {
		cells[i] = make([]float64, c.Bins)
	}
	binWidth := 180.0 / float64(c.Bins)
	for y := 0; y < cellsY*c.CellSize; y++ {
		for x := 0; x < cellsX*c.CellSize; x++ {
			i := y*m.W + x
			mag := math.Hypot(gx[i], gy[i])
			if mag == 0 {
				continue
			}
			ang := math.Atan2(gy[i], gx[i]) * 180 / math.Pi // (-180, 180]
			if ang < 0 {
				ang += 180 // unsigned orientation
			}
			if ang >= 180 {
				ang -= 180
			}
			pos := ang/binWidth - 0.5
			lo := int(math.Floor(pos))
			frac := pos - float64(lo)
			hi := lo + 1
			loBin := ((lo % c.Bins) + c.Bins) % c.Bins
			hiBin := hi % c.Bins
			cell := (y/c.CellSize)*cellsX + x/c.CellSize
			cells[cell][loBin] += mag * (1 - frac)
			cells[cell][hiBin] += mag * frac
		}
	}

	// Blocks with L2-Hys normalization.
	blocksX := (cellsX-c.BlockSize)/c.BlockStride + 1
	blocksY := (cellsY-c.BlockSize)/c.BlockStride + 1
	out := make([]float64, 0, wantLen)
	block := make([]float64, c.BlockSize*c.BlockSize*c.Bins)
	for by := 0; by < blocksY; by++ {
		for bx := 0; bx < blocksX; bx++ {
			block = block[:0]
			for cy := 0; cy < c.BlockSize; cy++ {
				for cx := 0; cx < c.BlockSize; cx++ {
					cell := (by*c.BlockStride+cy)*cellsX + bx*c.BlockStride + cx
					block = append(block, cells[cell]...)
				}
			}
			out = append(out, l2hys(block)...)
		}
	}
	if len(out) != wantLen {
		return nil, fmt.Errorf("hog: internal length mismatch %d != %d", len(out), wantLen)
	}
	return out, nil
}

// ComputeWindow extracts the descriptor of a sub-window by copying it out;
// windows outside the image are clamped by SubImage semantics.
func ComputeWindow(m *img.Image, x, y, w, h int, c Config) ([]float64, error) {
	if x < 0 || y < 0 || x+w > m.W || y+h > m.H {
		return nil, fmt.Errorf("%w: (%d,%d,%d,%d) outside %dx%d", ErrWindow, x, y, w, h, m.W, m.H)
	}
	sub := m.SubImage(geom.RectAt(x, y, w, h))
	return Compute(sub, c)
}

// l2hys applies L2 normalization, clipping at 0.2, and renormalization.
func l2hys(v []float64) []float64 {
	out := make([]float64, len(v))
	norm := l2(v) + 1e-6
	for i, x := range v {
		out[i] = math.Min(x/norm, 0.2)
	}
	norm = l2(out) + 1e-6
	for i := range out {
		out[i] /= norm
	}
	return out
}

func l2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
