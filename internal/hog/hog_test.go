package hog

import (
	"math"
	"testing"

	"verro/internal/geom"
	"verro/internal/img"
)

func rect(x, y, w, h int) geom.Rect { return geom.RectAt(x, y, w, h) }

func TestFeatureLen(t *testing.T) {
	c := DefaultConfig() // 4px cells, 2x2 blocks, stride 1, 9 bins
	// 16x32 window: 4x8 cells → 3x7 blocks → 3*7*4*9 = 756.
	n, err := c.FeatureLen(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if n != 756 {
		t.Fatalf("FeatureLen = %d, want 756", n)
	}
	if _, err := c.FeatureLen(4, 4); err == nil {
		t.Fatal("too-small window should fail")
	}
	bad := Config{}
	if _, err := bad.FeatureLen(16, 16); err == nil {
		t.Fatal("zero config should fail")
	}
}

func TestComputeLengthAndRange(t *testing.T) {
	m := img.New(16, 32)
	m.AddNoise(120, 5)
	c := DefaultConfig()
	feat, err := Compute(m, c)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := c.FeatureLen(16, 32)
	if len(feat) != want {
		t.Fatalf("len = %d, want %d", len(feat), want)
	}
	for i, v := range feat {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("feature %d = %v outside [0,1]", i, v)
		}
	}
}

func TestUniformImageGivesZeroFeatures(t *testing.T) {
	m := img.NewFilled(16, 32, img.RGB{R: 99, G: 99, B: 99})
	feat, err := Compute(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range feat {
		if v != 0 {
			t.Fatalf("uniform image should give all-zero descriptor, got %v", v)
		}
	}
}

func TestOrientationSelectivity(t *testing.T) {
	// Vertical edges (horizontal gradient) and horizontal edges must yield
	// clearly different descriptors.
	vert := img.New(16, 16)
	horiz := img.New(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if x%4 < 2 {
				vert.Set(x, y, img.RGB{R: 255, G: 255, B: 255})
			}
			if y%4 < 2 {
				horiz.Set(x, y, img.RGB{R: 255, G: 255, B: 255})
			}
		}
	}
	c := DefaultConfig()
	fv, err := Compute(vert, c)
	if err != nil {
		t.Fatal(err)
	}
	fh, err := Compute(horiz, c)
	if err != nil {
		t.Fatal(err)
	}
	var dist float64
	for i := range fv {
		d := fv[i] - fh[i]
		dist += d * d
	}
	if math.Sqrt(dist) < 0.5 {
		t.Fatalf("descriptors too similar for orthogonal patterns: %v", math.Sqrt(dist))
	}
}

func TestDescriptorStableUnderSmallNoise(t *testing.T) {
	base := img.New(16, 32)
	base.VerticalGradient(img.RGB{R: 0, G: 0, B: 0}, img.RGB{R: 255, G: 255, B: 255})
	noisy := base.Clone()
	noisy.AddNoise(3, 9)
	c := DefaultConfig()
	f1, err := Compute(base, c)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Compute(noisy, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := img.CosineSim(f1, f2); got < 0.8 {
		t.Fatalf("descriptor unstable: cosine %v", got)
	}
}

func TestComputeWindowBounds(t *testing.T) {
	m := img.New(32, 32)
	m.AddNoise(50, 1)
	if _, err := ComputeWindow(m, 0, 0, 16, 16, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeWindow(m, 20, 20, 16, 16, DefaultConfig()); err == nil {
		t.Fatal("out-of-bounds window should fail")
	}
	if _, err := ComputeWindow(m, -1, 0, 16, 16, DefaultConfig()); err == nil {
		t.Fatal("negative origin should fail")
	}
}

func TestWindowMatchesSubImageCompute(t *testing.T) {
	m := img.New(40, 40)
	m.AddNoise(90, 3)
	c := DefaultConfig()
	f1, err := ComputeWindow(m, 8, 4, 16, 32, c)
	if err != nil {
		t.Fatal(err)
	}
	sub := m.SubImage(rect(8, 4, 16, 32))
	f2, err := Compute(sub, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("window and sub-image descriptors differ at %d", i)
		}
	}
}

func TestDescriptorInvariantToBrightnessShift(t *testing.T) {
	// HOG is built on gradients: adding a constant to every pixel must not
	// change the descriptor (up to clipping at 0/255).
	base := img.New(16, 32)
	base.VerticalGradient(img.RGB{R: 40, G: 40, B: 40}, img.RGB{R: 180, G: 180, B: 180})
	shifted := base.Clone()
	for i := range shifted.Pix {
		if int(shifted.Pix[i])+30 <= 255 {
			shifted.Pix[i] += 30
		}
	}
	c := DefaultConfig()
	f1, err := Compute(base, c)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Compute(shifted, c)
	if err != nil {
		t.Fatal(err)
	}
	if sim := img.CosineSim(f1, f2); sim < 0.98 {
		t.Fatalf("brightness shift changed descriptor: cosine %v", sim)
	}
}
