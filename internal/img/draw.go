package img

import (
	"math"

	"verro/internal/geom"
)

// DrawRect outlines rectangle r (clipped) with color c and the given stroke
// thickness.
func (m *Image) DrawRect(r geom.Rect, c RGB, thickness int) {
	if thickness < 1 {
		thickness = 1
	}
	m.Fill(geom.R(r.Min.X, r.Min.Y, r.Max.X, r.Min.Y+thickness), c)
	m.Fill(geom.R(r.Min.X, r.Max.Y-thickness, r.Max.X, r.Max.Y), c)
	m.Fill(geom.R(r.Min.X, r.Min.Y, r.Min.X+thickness, r.Max.Y), c)
	m.Fill(geom.R(r.Max.X-thickness, r.Min.Y, r.Max.X, r.Max.Y), c)
}

// DrawDisc paints a filled disc of the given radius centered at p.
func (m *Image) DrawDisc(p geom.Point, radius int, c RGB) {
	r2 := radius * radius
	for dy := -radius; dy <= radius; dy++ {
		for dx := -radius; dx <= radius; dx++ {
			if dx*dx+dy*dy <= r2 {
				m.Set(p.X+dx, p.Y+dy, c)
			}
		}
	}
}

// DrawLine draws a 1-pixel line from a to b using Bresenham's algorithm.
func (m *Image) DrawLine(a, b geom.Point, c RGB) {
	dx := abs(b.X - a.X)
	dy := -abs(b.Y - a.Y)
	sx, sy := 1, 1
	if a.X > b.X {
		sx = -1
	}
	if a.Y > b.Y {
		sy = -1
	}
	err := dx + dy
	x, y := a.X, a.Y
	for {
		m.Set(x, y, c)
		if x == b.X && y == b.Y {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

// DrawEllipse paints a filled axis-aligned ellipse inside rectangle r.
func (m *Image) DrawEllipse(r geom.Rect, c RGB) {
	if r.Empty() {
		return
	}
	cx := float64(r.Min.X+r.Max.X-1) / 2
	cy := float64(r.Min.Y+r.Max.Y-1) / 2
	rx := float64(r.Dx()) / 2
	ry := float64(r.Dy()) / 2
	if rx <= 0 || ry <= 0 {
		return
	}
	for y := r.Min.Y; y < r.Max.Y; y++ {
		for x := r.Min.X; x < r.Max.X; x++ {
			nx := (float64(x) - cx) / rx
			ny := (float64(y) - cy) / ry
			if nx*nx+ny*ny <= 1 {
				m.Set(x, y, c)
			}
		}
	}
}

// Shade multiplies every channel in region r by factor (clamped to [0, 4]),
// a cheap way to darken or lighten parts of a scene.
func (m *Image) Shade(r geom.Rect, factor float64) {
	factor = geom.ClampF(factor, 0, 4)
	r = r.Clip(m.Bounds())
	w := r.Dx()
	for y := r.Min.Y; y < r.Max.Y; y++ {
		off := m.offset(r.Min.X, y)
		row := m.Pix[off : off+w*3]
		for x := 0; x < w; x++ {
			p := row[x*3 : x*3+3]
			for c := 0; c < 3; c++ {
				v := float64(p[c]) * factor
				if v > 255 {
					v = 255
				}
				p[c] = uint8(v)
			}
		}
	}
}

// AddNoise perturbs every pixel channel by a deterministic pseudo-random
// value in [-amp, amp] derived from the coordinates and seed. It gives
// synthetic backgrounds the pixel-level texture the inpainting and key-frame
// code need to behave realistically without requiring a shared RNG.
func (m *Image) AddNoise(amp int, seed uint64) {
	if amp <= 0 {
		return
	}
	for y := 0; y < m.H; y++ {
		off := m.offset(0, y)
		row := m.Pix[off : off+m.W*3]
		for x := 0; x < m.W; x++ {
			h := hash3(uint64(x), uint64(y), seed)
			p := row[x*3 : x*3+3]
			for c := 0; c < 3; c++ {
				n := int(h>>(c*8)&0xff)%(2*amp+1) - amp
				v := int(p[c]) + n
				p[c] = uint8(geom.Clamp(v, 0, 255))
			}
		}
	}
}

// hash3 is a small xorshift-style mixer over three words.
func hash3(x, y, s uint64) uint64 {
	h := x*0x9e3779b97f4a7c15 ^ y*0xc2b2ae3d27d4eb4f ^ s*0x165667b19e3779f9
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// VerticalGradient fills the image with a vertical gradient from top color
// a to bottom color b.
func (m *Image) VerticalGradient(a, b RGB) {
	for y := 0; y < m.H; y++ {
		t := 0.0
		if m.H > 1 {
			t = float64(y) / float64(m.H-1)
		}
		c := RGB{
			R: lerp8(a.R, b.R, t),
			G: lerp8(a.G, b.G, t),
			B: lerp8(a.B, b.B, t),
		}
		off := m.offset(0, y)
		row := m.Pix[off : off+m.W*3]
		for x := 0; x < m.W; x++ {
			p := row[x*3 : x*3+3]
			p[0], p[1], p[2] = c.R, c.G, c.B
		}
	}
}

func lerp8(a, b uint8, t float64) uint8 {
	return uint8(math.Round(float64(a) + (float64(b)-float64(a))*t))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
