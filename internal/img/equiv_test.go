package img

// Bit-identity harness for the hot-path rewrites: every kernel that was
// restructured for the perf lint sweep (row slicing, subslice triples,
// clamp prologues, copy-based fills) is compared against a naive
// reference implementation — the pre-rewrite loop shape — for exact
// equality. Floating-point kernels accumulate in the same order as the
// reference, so == is the right comparison, not a tolerance.

import (
	"testing"

	"verro/internal/geom"
)

// lcgImage fills a w×h image with deterministic pseudo-random pixels
// without going through any rewritten kernel.
func lcgImage(w, h int, seed uint64) *Image {
	m := New(w, h)
	s := seed
	for i := range m.Pix {
		s = s*6364136223846793005 + 1442695040888963407
		m.Pix[i] = uint8(s >> 56)
	}
	return m
}

func wantSamePix(t *testing.T, got, want *Image, name string) {
	t.Helper()
	if got.W != want.W || got.H != want.H {
		t.Fatalf("%s: dims %dx%d != %dx%d", name, got.W, got.H, want.W, want.H)
	}
	for i := range want.Pix {
		if got.Pix[i] != want.Pix[i] {
			t.Fatalf("%s: pixel byte %d: got %d want %d", name, i, got.Pix[i], want.Pix[i])
		}
	}
}

func wantSamePlane(t *testing.T, got, want []float64, name string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d != %d", name, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: [%d]: got %v want %v", name, i, got[i], want[i])
		}
	}
}

func TestNewFilledEquiv(t *testing.T) {
	for _, d := range []struct{ w, h int }{{0, 0}, {1, 1}, {7, 3}, {64, 48}} {
		c := RGB{R: 13, G: 200, B: 77}
		got := NewFilled(d.w, d.h, c)
		want := New(d.w, d.h)
		for i := 0; i < len(want.Pix); i += 3 {
			want.Pix[i], want.Pix[i+1], want.Pix[i+2] = c.R, c.G, c.B
		}
		wantSamePix(t, got, want, "NewFilled")
	}
}

func blitRef(m, src *Image, p geom.Point) {
	for y := 0; y < src.H; y++ {
		dy := p.Y + y
		if dy < 0 || dy >= m.H {
			continue
		}
		for x := 0; x < src.W; x++ {
			dx := p.X + x
			if dx < 0 || dx >= m.W {
				continue
			}
			si := src.offset(x, y)
			di := m.offset(dx, dy)
			m.Pix[di], m.Pix[di+1], m.Pix[di+2] = src.Pix[si], src.Pix[si+1], src.Pix[si+2]
		}
	}
}

func blitMaskedRef(m, src *Image, p geom.Point, key RGB) {
	for y := 0; y < src.H; y++ {
		dy := p.Y + y
		if dy < 0 || dy >= m.H {
			continue
		}
		for x := 0; x < src.W; x++ {
			dx := p.X + x
			if dx < 0 || dx >= m.W {
				continue
			}
			si := src.offset(x, y)
			c := RGB{src.Pix[si], src.Pix[si+1], src.Pix[si+2]}
			if c == key {
				continue
			}
			di := m.offset(dx, dy)
			m.Pix[di], m.Pix[di+1], m.Pix[di+2] = c.R, c.G, c.B
		}
	}
}

func TestBlitEquiv(t *testing.T) {
	src := lcgImage(13, 9, 5)
	key := RGB{src.Pix[0], src.Pix[1], src.Pix[2]} // guaranteed present
	for _, p := range []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 3}, {X: -4, Y: -2}, {X: 28, Y: 20}, {X: -20, Y: 40}} {
		got, want := lcgImage(32, 24, 9), lcgImage(32, 24, 9)
		got.Blit(src, p)
		blitRef(want, src, p)
		wantSamePix(t, got, want, "Blit")

		got, want = lcgImage(32, 24, 11), lcgImage(32, 24, 11)
		got.BlitMasked(src, p, key)
		blitMaskedRef(want, src, p, key)
		wantSamePix(t, got, want, "BlitMasked")
	}
}

func TestDiffMeasuresEquiv(t *testing.T) {
	m := lcgImage(21, 17, 1)
	n := lcgImage(21, 17, 2)
	// DiffCount reference: strided triple compare.
	count := 0
	for i := 0; i < len(m.Pix); i += 3 {
		if m.Pix[i] != n.Pix[i] || m.Pix[i+1] != n.Pix[i+1] || m.Pix[i+2] != n.Pix[i+2] {
			count++
		}
	}
	if got := m.DiffCount(n); got != count {
		t.Fatalf("DiffCount: got %d want %d", got, count)
	}
	// MeanAbsDiff reference.
	var sum int64
	for i := range m.Pix {
		d := int64(m.Pix[i]) - int64(n.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	want := float64(sum) / float64(len(m.Pix))
	if got := m.MeanAbsDiff(n); got != want {
		t.Fatalf("MeanAbsDiff: got %v want %v", got, want)
	}
	if !m.Equal(m.Clone()) || m.Equal(n) {
		t.Fatal("Equal disagrees with itself")
	}
}

func TestFillShadeNoiseGradientEquiv(t *testing.T) {
	r := geom.R(3, 2, 17, 13)
	c := RGB{R: 9, G: 18, B: 27}

	got, want := lcgImage(20, 15, 3), lcgImage(20, 15, 3)
	got.Fill(r, c)
	rc := r.Clip(want.Bounds())
	for y := rc.Min.Y; y < rc.Max.Y; y++ {
		i := want.offset(rc.Min.X, y)
		for x := rc.Min.X; x < rc.Max.X; x++ {
			want.Pix[i], want.Pix[i+1], want.Pix[i+2] = c.R, c.G, c.B
			i += 3
		}
	}
	wantSamePix(t, got, want, "Fill")

	got, want = lcgImage(20, 15, 4), lcgImage(20, 15, 4)
	got.Shade(r, 1.7)
	for y := rc.Min.Y; y < rc.Max.Y; y++ {
		i := want.offset(rc.Min.X, y)
		for x := rc.Min.X; x < rc.Max.X; x++ {
			for ch := 0; ch < 3; ch++ {
				v := float64(want.Pix[i+ch]) * 1.7
				if v > 255 {
					v = 255
				}
				want.Pix[i+ch] = uint8(v)
			}
			i += 3
		}
	}
	wantSamePix(t, got, want, "Shade")

	got, want = lcgImage(20, 15, 5), lcgImage(20, 15, 5)
	got.AddNoise(12, 99)
	for y := 0; y < want.H; y++ {
		for x := 0; x < want.W; x++ {
			h := hash3(uint64(x), uint64(y), 99)
			i := want.offset(x, y)
			for ch := 0; ch < 3; ch++ {
				nz := int(h>>(ch*8)&0xff)%(2*12+1) - 12
				v := int(want.Pix[i+ch]) + nz
				want.Pix[i+ch] = uint8(geom.Clamp(v, 0, 255))
			}
		}
	}
	wantSamePix(t, got, want, "AddNoise")

	a, b := RGB{R: 250, G: 20, B: 0}, RGB{R: 10, G: 220, B: 130}
	got, want = New(20, 15), New(20, 15)
	got.VerticalGradient(a, b)
	for y := 0; y < want.H; y++ {
		tt := 0.0
		if want.H > 1 {
			tt = float64(y) / float64(want.H-1)
		}
		cc := RGB{R: lerp8(a.R, b.R, tt), G: lerp8(a.G, b.G, tt), B: lerp8(a.B, b.B, tt)}
		i := want.offset(0, y)
		for x := 0; x < want.W; x++ {
			want.Pix[i], want.Pix[i+1], want.Pix[i+2] = cc.R, cc.G, cc.B
			i += 3
		}
	}
	wantSamePix(t, got, want, "VerticalGradient")
}

func TestSSDEquiv(t *testing.T) {
	m := lcgImage(24, 18, 6)
	n := lcgImage(24, 18, 7)
	rm := geom.RectAt(2, 3, 9, 7)
	rn := geom.RectAt(11, 6, 9, 7)
	skip := func(x, y int) bool { return (x+y)%3 == 0 }
	for _, sk := range []func(x, y int) bool{nil, skip} {
		var want float64
		for y := 0; y < rm.Dy(); y++ {
			mi := m.offset(rm.Min.X, rm.Min.Y+y)
			ni := n.offset(rn.Min.X, rn.Min.Y+y)
			for x := 0; x < rm.Dx(); x++ {
				if sk == nil || !sk(x, y) {
					for c := 0; c < 3; c++ {
						d := float64(m.Pix[mi+c]) - float64(n.Pix[ni+c])
						want += d * d
					}
				}
				mi += 3
				ni += 3
			}
		}
		if got := SSD(m, rm, n, rn, sk); got != want {
			t.Fatalf("SSD: got %v want %v", got, want)
		}
	}
}

func TestPlaneEquiv(t *testing.T) {
	m := lcgImage(23, 14, 8)
	n := lcgImage(23, 14, 9)

	want := make([]float64, m.W*m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			want[y*m.W+x] = float64(m.At(x, y).Gray())
		}
	}
	wantSamePlane(t, m.GrayPlane(), want, "GrayPlane")

	gray := m.GrayPlane()
	wantGx := make([]float64, m.W*m.H)
	wantGy := make([]float64, m.W*m.H)
	at := func(x, y int) float64 {
		x = geom.Clamp(x, 0, m.W-1)
		y = geom.Clamp(y, 0, m.H-1)
		return gray[y*m.W+x]
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			i := y*m.W + x
			wantGx[i] = at(x+1, y) - at(x-1, y)
			wantGy[i] = at(x, y+1) - at(x, y-1)
		}
	}
	gx, gy := m.Gradients()
	wantSamePlane(t, gx, wantGx, "Gradients gx")
	wantSamePlane(t, gy, wantGy, "Gradients gy")

	// Single-column and single-row images exercise the peeled edges.
	for _, d := range []struct{ w, h int }{{1, 6}, {6, 1}, {1, 1}, {2, 2}} {
		e := lcgImage(d.w, d.h, 17)
		egray := e.GrayPlane()
		eat := func(x, y int) float64 {
			x = geom.Clamp(x, 0, e.W-1)
			y = geom.Clamp(y, 0, e.H-1)
			return egray[y*e.W+x]
		}
		wx := make([]float64, e.W*e.H)
		wy := make([]float64, e.W*e.H)
		for y := 0; y < e.H; y++ {
			for x := 0; x < e.W; x++ {
				i := y*e.W + x
				wx[i] = eat(x+1, y) - eat(x-1, y)
				wy[i] = eat(x, y+1) - eat(x, y-1)
			}
		}
		egx, egy := e.Gradients()
		wantSamePlane(t, egx, wx, "Gradients edge gx")
		wantSamePlane(t, egy, wy, "Gradients edge gy")
	}

	plane := gray
	wantSum := make([]float64, (m.W+1)*(m.H+1))
	for y := 0; y < m.H; y++ {
		var row float64
		for x := 0; x < m.W; x++ {
			row += plane[y*m.W+x]
			wantSum[(y+1)*(m.W+1)+(x+1)] = wantSum[y*(m.W+1)+(x+1)] + row
		}
	}
	it := NewIntegral(plane, m.W, m.H)
	wantSamePlane(t, it.sum, wantSum, "NewIntegral")

	wantCD := make([]float64, m.W*m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			a := m.At(x, y)
			b := n.At(x, y)
			d := absDiff8(a.R, b.R)
			if g := absDiff8(a.G, b.G); g > d {
				d = g
			}
			if bl := absDiff8(a.B, b.B); bl > d {
				d = bl
			}
			wantCD[y*m.W+x] = float64(d)
		}
	}
	wantSamePlane(t, ColorDiffPlane(m, n), wantCD, "ColorDiffPlane")

	wantAD := make([]float64, m.W*m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			d := float64(m.At(x, y).Gray()) - float64(n.At(x, y).Gray())
			if d < 0 {
				d = -d
			}
			wantAD[y*m.W+x] = d
		}
	}
	wantSamePlane(t, AbsDiffPlane(m, n), wantAD, "AbsDiffPlane")
}

func TestMixIntoEquiv(t *testing.T) {
	dst := []float64{0.1, 0.4, 0.5}
	src := []float64{0.3, 0.3, 0.4}
	want := make([]float64, len(dst))
	for i := range dst {
		want[i] = (1-0.25)*dst[i] + 0.25*src[i]
	}
	mixInto(dst, src, 0.25)
	wantSamePlane(t, dst, want, "mixInto")
}
