package img

import (
	"math"

	"verro/internal/geom"
)

// HSVHist holds normalized hue, saturation and value histograms of an image
// region. The bin counts are the h, s, v partition sizes of paper
// Algorithm 2 (line 2: "equally partition H, S, V value ranges").
type HSVHist struct {
	H, S, V []float64 // each sums to 1 (or is all-zero for an empty region)
}

// NewHSVHist computes the HSV histogram of the whole image with the given
// number of bins per channel.
func NewHSVHist(m *Image, hBins, sBins, vBins int) *HSVHist {
	return NewHSVHistRegion(m, m.Bounds(), hBins, sBins, vBins)
}

// NewHSVHistRegion computes the HSV histogram of region r of m.
func NewHSVHistRegion(m *Image, r geom.Rect, hBins, sBins, vBins int) *HSVHist {
	h := &HSVHist{
		H: make([]float64, hBins),
		S: make([]float64, sBins),
		V: make([]float64, vBins),
	}
	r = r.Clip(m.Bounds())
	n := 0
	for y := r.Min.Y; y < r.Max.Y; y++ {
		for x := r.Min.X; x < r.Max.X; x++ {
			c := ToHSV(m.At(x, y))
			h.H[binIndex(c.H/360, hBins)]++ //lint:allow bce binIndex clamps to [0, hBins) = len(h.H) by construction; the relation is invisible to the interval domain
			h.S[binIndex(c.S, sBins)]++     //lint:allow bce binIndex clamps to [0, sBins) = len(h.S) by construction
			h.V[binIndex(c.V, vBins)]++     //lint:allow bce binIndex clamps to [0, vBins) = len(h.V) by construction
			n++
		}
	}
	if n > 0 {
		for i := range h.H {
			h.H[i] /= float64(n)
		}
		for i := range h.S {
			h.S[i] /= float64(n)
		}
		for i := range h.V {
			h.V[i] /= float64(n)
		}
	}
	return h
}

// binIndex maps a value in [0,1] to a bin in [0, bins).
func binIndex(v float64, bins int) int {
	i := int(v * float64(bins))
	if i >= bins {
		i = bins - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// Intersection returns the histogram-intersection similarity between two
// normalized histograms: sum of per-bin minimums, in [0, 1].
func Intersection(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Min(a[i], b[i])
	}
	return sum
}

// Similarity returns the weighted HSV histogram-intersection similarity of
// paper Algorithm 2 line 10: alpha·Sim_H + beta·Sim_S + gamma·Sim_V.
func (h *HSVHist) Similarity(o *HSVHist, alpha, beta, gamma float64) float64 {
	return alpha*Intersection(h.H, o.H) +
		beta*Intersection(h.S, o.S) +
		gamma*Intersection(h.V, o.V)
}

// Entropy returns the weighted HSV histogram entropy used to pick the key
// frame of a segment (Algorithm 2 lines 18-20). Empty bins contribute zero.
func (h *HSVHist) Entropy(alpha, beta, gamma float64) float64 {
	return alpha*entropy(h.H) + beta*entropy(h.S) + gamma*entropy(h.V)
}

func entropy(p []float64) float64 {
	var e float64
	for _, v := range p {
		if v > 0 {
			e -= v * math.Log(v)
		}
	}
	return e
}

// Mix accumulates o into h with weight w (used to maintain the running
// histogram of a growing segment). Both histograms stay normalized if
// weights are convex.
func (h *HSVHist) Mix(o *HSVHist, w float64) {
	mixInto(h.H, o.H, w)
	mixInto(h.S, o.S, w)
	mixInto(h.V, o.V, w)
}

func mixInto(dst, src []float64, w float64) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] = (1-w)*dst[i] + w*src[i]
	}
}

// CosineSim returns the cosine similarity of two histograms, used by the
// tracker's appearance term. Returns 0 when either vector is zero.
func CosineSim(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var dot, na, nb float64
	for i := 0; i < n; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb) //lint:allow divzero guard above proves na,nb != 0 and squares are nonnegative, so the product's root is positive (relational fact outside the interval domain)
}

// Concat returns the concatenation H||S||V as a flat feature vector.
func (h *HSVHist) Concat() []float64 {
	out := make([]float64, 0, len(h.H)+len(h.S)+len(h.V))
	out = append(out, h.H...)
	out = append(out, h.S...)
	out = append(out, h.V...)
	return out
}
