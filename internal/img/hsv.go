package img

import "math"

// HSV is a hue-saturation-value triple with H in [0, 360), S and V in [0, 1].
// Key-frame extraction (paper Algorithm 2) clusters frames by HSV
// histograms, so the conversion here must be stable and fast.
type HSV struct {
	H, S, V float64
}

// ToHSV converts an RGB color to HSV.
func ToHSV(c RGB) HSV {
	r := float64(c.R) / 255
	g := float64(c.G) / 255
	b := float64(c.B) / 255
	maxc := math.Max(r, math.Max(g, b))
	minc := math.Min(r, math.Min(g, b))
	delta := maxc - minc

	var h float64
	switch {
	case delta <= 0: // == 0 in exact arithmetic; <= lets interval analysis prove delta > 0 below
		h = 0
	case maxc == r:
		h = 60 * math.Mod((g-b)/delta, 6)
	case maxc == g:
		h = 60 * ((b-r)/delta + 2)
	default:
		h = 60 * ((r-g)/delta + 4)
	}
	if h < 0 {
		h += 360
	}

	var s float64
	if maxc > 0 {
		s = delta / maxc
	}
	return HSV{H: h, S: s, V: maxc}
}

// FromHSV converts an HSV color back to RGB.
func FromHSV(c HSV) RGB {
	h := math.Mod(c.H, 360)
	if h < 0 {
		h += 360
	}
	s := clamp01(c.S)
	v := clamp01(c.V)

	chroma := v * s
	hp := h / 60
	x := chroma * (1 - math.Abs(math.Mod(hp, 2)-1))
	var r, g, b float64
	switch {
	case hp < 1:
		r, g, b = chroma, x, 0
	case hp < 2:
		r, g, b = x, chroma, 0
	case hp < 3:
		r, g, b = 0, chroma, x
	case hp < 4:
		r, g, b = 0, x, chroma
	case hp < 5:
		r, g, b = x, 0, chroma
	default:
		r, g, b = chroma, 0, x
	}
	m := v - chroma
	return RGB{
		R: uint8(math.Round((r + m) * 255)),
		G: uint8(math.Round((g + m) * 255)),
		B: uint8(math.Round((b + m) * 255)),
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
