// Package img implements the raster-image substrate used by the VERRO
// pipeline: an 8-bit RGB image type with HSV conversion, per-channel
// histograms, gradients, resizing, simple drawing primitives and PNG export.
// It intentionally mirrors a small subset of what the paper obtains from
// OpenCV, implemented from scratch on the standard library.
package img

import (
	"bytes"
	"fmt"

	"verro/internal/geom"
)

// RGB is a packed 24-bit color.
type RGB struct {
	R, G, B uint8
}

// Gray returns the luma of c using the Rec. 601 weights.
func (c RGB) Gray() uint8 {
	return uint8((299*int(c.R) + 587*int(c.G) + 114*int(c.B)) / 1000)
}

// Image is an 8-bit-per-channel RGB raster. Pixels are stored row-major in a
// single backing slice, three bytes per pixel.
type Image struct {
	W, H int
	Pix  []uint8 // len = W*H*3
}

// New returns a black W×H image.
func New(w, h int) *Image {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("img: negative dimensions %dx%d", w, h)) //lint:allow panicfree invariant guard: unreachable from input data
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h*3)}
}

// NewFilled returns a W×H image filled with color c.
func NewFilled(w, h int, c RGB) *Image {
	m := New(w, h)
	pix := m.Pix
	if len(pix) == 0 {
		return m
	}
	// Seed the first pixel, then double the filled prefix with copy; this
	// replaces per-pixel stores (and their bounds checks) with memmoves.
	pix[0], pix[1], pix[2] = c.R, c.G, c.B
	for n := 3; n < len(pix); n *= 2 {
		copy(pix[n:], pix[:n])
	}
	return m
}

// Bounds returns the image rectangle anchored at the origin.
func (m *Image) Bounds() geom.Rect { return geom.R(0, 0, m.W, m.H) }

// offset returns the index of pixel (x, y) in Pix.
func (m *Image) offset(x, y int) int { return (y*m.W + x) * 3 }

// At returns the pixel at (x, y). Out-of-bounds coordinates are clamped to
// the nearest edge pixel, which is the behaviour every window-based
// algorithm in this repository wants.
func (m *Image) At(x, y int) RGB {
	x = geom.Clamp(x, 0, m.W-1)
	y = geom.Clamp(y, 0, m.H-1)
	i := m.offset(x, y)
	return RGB{m.Pix[i], m.Pix[i+1], m.Pix[i+2]}
}

// InBounds reports whether (x, y) is a valid pixel coordinate.
func (m *Image) InBounds(x, y int) bool {
	return x >= 0 && x < m.W && y >= 0 && y < m.H
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (m *Image) Set(x, y int, c RGB) {
	if !m.InBounds(x, y) {
		return
	}
	i := m.offset(x, y)
	m.Pix[i], m.Pix[i+1], m.Pix[i+2] = c.R, c.G, c.B
}

// Clone returns a deep copy of m.
func (m *Image) Clone() *Image {
	out := &Image{W: m.W, H: m.H, Pix: make([]uint8, len(m.Pix))}
	copy(out.Pix, m.Pix)
	return out
}

// SubImage copies the pixels of r (clipped to the image) into a new image.
func (m *Image) SubImage(r geom.Rect) *Image {
	r = r.Clip(m.Bounds())
	out := New(r.Dx(), r.Dy())
	for y := 0; y < out.H; y++ {
		srcOff := m.offset(r.Min.X, r.Min.Y+y)
		dstOff := out.offset(0, y)
		copy(out.Pix[dstOff:dstOff+out.W*3], m.Pix[srcOff:srcOff+out.W*3])
	}
	return out
}

// blitSpan clips the copy of src at p against m and returns the source
// start (x0, y0), end (x1, y1) and the row byte width; ok is false when
// the intersection is empty.
func (m *Image) blitSpan(src *Image, p geom.Point) (x0, y0, x1, y1, w int, ok bool) {
	x0, y0 = max(0, -p.X), max(0, -p.Y)
	x1, y1 = min(src.W, m.W-p.X), min(src.H, m.H-p.Y)
	return x0, y0, x1, y1, (x1 - x0) * 3, x0 < x1 && y0 < y1
}

// Blit copies src onto m with its top-left corner at p, clipping to m.
func (m *Image) Blit(src *Image, p geom.Point) {
	x0, y0, _, y1, w, ok := m.blitSpan(src, p)
	if !ok {
		return
	}
	for y := y0; y < y1; y++ {
		so := src.offset(x0, y)
		do := m.offset(p.X+x0, p.Y+y)
		copy(m.Pix[do:do+w], src.Pix[so:so+w])
	}
}

// BlitMasked copies src onto m at p, skipping pixels equal to the mask color
// key. It is how sprites with transparent backgrounds are composited.
func (m *Image) BlitMasked(src *Image, p geom.Point, key RGB) {
	x0, y0, x1, y1, w, ok := m.blitSpan(src, p)
	if !ok {
		return
	}
	for y := y0; y < y1; y++ {
		so := src.offset(x0, y)
		do := m.offset(p.X+x0, p.Y+y)
		srcRow := src.Pix[so : so+w]
		dstRow := m.Pix[do : do+w]
		for x := 0; x < x1-x0; x++ {
			s := srcRow[x*3 : x*3+3]
			c := RGB{s[0], s[1], s[2]}
			if c == key {
				continue
			}
			d := dstRow[x*3 : x*3+3]
			d[0], d[1], d[2] = c.R, c.G, c.B
		}
	}
}

// Equal reports whether two images have identical dimensions and pixels.
func (m *Image) Equal(n *Image) bool {
	if m.W != n.W || m.H != n.H {
		return false
	}
	return bytes.Equal(m.Pix, n.Pix)
}

// DiffCount returns the number of pixels at which m and n differ. Images of
// different sizes are reported as entirely different.
func (m *Image) DiffCount(n *Image) int {
	if m.W != n.W || m.H != n.H {
		return max(m.W*m.H, n.W*n.H)
	}
	count := 0
	a, b := m.Pix, n.Pix
	for i := 0; i < m.W*m.H; i++ {
		pa := a[i*3 : i*3+3]
		pb := b[i*3 : i*3+3]
		if pa[0] != pb[0] || pa[1] != pb[1] || pa[2] != pb[2] {
			count++
		}
	}
	return count
}

// MeanAbsDiff returns the mean absolute per-channel difference between two
// images of the same size, a cheap frame-distance measure.
func (m *Image) MeanAbsDiff(n *Image) float64 {
	a, b := m.Pix, n.Pix
	if m.W != n.W || m.H != n.H || len(a) == 0 {
		return 255
	}
	// The clamp (and its zero guard, which doubles as the divisor proof)
	// is vacuous for same-sized images but lets the compiler drop both
	// bounds checks.
	k := len(a)
	if len(b) < k {
		k = len(b)
	}
	if k == 0 {
		return 255
	}
	var sum int64
	for i := 0; i < k; i++ {
		d := int64(a[i]) - int64(b[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return float64(sum) / float64(k)
}

// Fill paints rectangle r (clipped) with color c.
func (m *Image) Fill(r geom.Rect, c RGB) {
	r = r.Clip(m.Bounds())
	w := r.Dx()
	for y := r.Min.Y; y < r.Max.Y; y++ {
		off := m.offset(r.Min.X, y)
		row := m.Pix[off : off+w*3]
		for x := 0; x < w; x++ {
			p := row[x*3 : x*3+3]
			p[0], p[1], p[2] = c.R, c.G, c.B
		}
	}
}

// SSD returns the sum of squared per-channel differences between the patch
// of m at rm and the patch of n at rn; both patches must have the same size
// and lie in bounds (the caller guarantees this — it is the hot loop of the
// inpainting search). Pixels where skip(x, y) reports true (coordinates
// relative to the rm patch) are excluded; skip may be nil.
func SSD(m *Image, rm geom.Rect, n *Image, rn geom.Rect, skip func(x, y int) bool) float64 {
	var sum float64
	w := rm.Dx()
	for y := 0; y < rm.Dy(); y++ {
		mo := m.offset(rm.Min.X, rm.Min.Y+y)
		no := n.offset(rn.Min.X, rn.Min.Y+y)
		mrow := m.Pix[mo : mo+w*3]
		nrow := n.Pix[no : no+w*3]
		for x := 0; x < w; x++ {
			if skip != nil && skip(x, y) {
				continue
			}
			a := mrow[x*3 : x*3+3]
			b := nrow[x*3 : x*3+3]
			for c := 0; c < 3; c++ {
				d := float64(a[c]) - float64(b[c])
				sum += d * d
			}
		}
	}
	return sum
}
