package img

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"verro/internal/geom"
)

func TestNewAndSetAt(t *testing.T) {
	m := New(4, 3)
	if m.W != 4 || m.H != 3 || len(m.Pix) != 36 {
		t.Fatalf("unexpected shape: %dx%d pix=%d", m.W, m.H, len(m.Pix))
	}
	c := RGB{10, 20, 30}
	m.Set(2, 1, c)
	if got := m.At(2, 1); got != c {
		t.Fatalf("At = %v, want %v", got, c)
	}
	// Out-of-bounds reads clamp.
	if got := m.At(-5, -5); got != m.At(0, 0) {
		t.Fatalf("negative At should clamp: %v", got)
	}
	if got := m.At(100, 100); got != m.At(3, 2) {
		t.Fatalf("overflow At should clamp: %v", got)
	}
	// Out-of-bounds writes are dropped silently.
	m.Set(-1, 0, RGB{1, 1, 1})
	m.Set(4, 0, RGB{1, 1, 1})
}

func TestNewFilledAndFill(t *testing.T) {
	c := RGB{100, 150, 200}
	m := NewFilled(5, 5, c)
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			if m.At(x, y) != c {
				t.Fatalf("pixel (%d,%d) = %v", x, y, m.At(x, y))
			}
		}
	}
	m.Fill(geom.R(1, 1, 3, 3), RGB{0, 0, 0})
	if m.At(1, 1) != (RGB{}) || m.At(2, 2) != (RGB{}) {
		t.Fatal("Fill did not paint interior")
	}
	if m.At(3, 3) != c || m.At(0, 0) != c {
		t.Fatal("Fill painted outside its rect")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewFilled(3, 3, RGB{9, 9, 9})
	n := m.Clone()
	n.Set(0, 0, RGB{1, 2, 3})
	if m.At(0, 0) != (RGB{9, 9, 9}) {
		t.Fatal("Clone shares backing storage")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("clone should equal original")
	}
}

func TestSubImageAndBlit(t *testing.T) {
	m := New(10, 10)
	m.Fill(geom.R(2, 2, 6, 6), RGB{255, 0, 0})
	sub := m.SubImage(geom.R(2, 2, 6, 6))
	if sub.W != 4 || sub.H != 4 {
		t.Fatalf("sub dims = %dx%d", sub.W, sub.H)
	}
	if sub.At(0, 0) != (RGB{255, 0, 0}) {
		t.Fatal("sub content wrong")
	}
	dst := New(10, 10)
	dst.Blit(sub, geom.Pt(8, 8)) // partially off-canvas
	if dst.At(8, 8) != (RGB{255, 0, 0}) {
		t.Fatal("Blit did not copy in-bounds region")
	}
	if dst.At(7, 7) != (RGB{}) {
		t.Fatal("Blit wrote outside its destination")
	}
}

func TestBlitMasked(t *testing.T) {
	key := RGB{255, 0, 255}
	sprite := NewFilled(2, 2, key)
	sprite.Set(0, 0, RGB{1, 2, 3})
	dst := NewFilled(4, 4, RGB{50, 50, 50})
	dst.BlitMasked(sprite, geom.Pt(1, 1), key)
	if dst.At(1, 1) != (RGB{1, 2, 3}) {
		t.Fatal("opaque sprite pixel not copied")
	}
	if dst.At(2, 2) != (RGB{50, 50, 50}) {
		t.Fatal("masked pixel should be transparent")
	}
}

func TestDiffCountAndMeanAbsDiff(t *testing.T) {
	a := New(4, 4)
	b := New(4, 4)
	if a.DiffCount(b) != 0 || a.MeanAbsDiff(b) != 0 {
		t.Fatal("identical images should not differ")
	}
	b.Set(0, 0, RGB{255, 255, 255})
	if a.DiffCount(b) != 1 {
		t.Fatalf("DiffCount = %d, want 1", a.DiffCount(b))
	}
	want := 3.0 * 255 / float64(len(a.Pix))
	if got := a.MeanAbsDiff(b); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MeanAbsDiff = %v, want %v", got, want)
	}
	if a.MeanAbsDiff(New(2, 2)) != 255 {
		t.Fatal("size mismatch should report max diff")
	}
}

func TestHSVRoundTrip(t *testing.T) {
	f := func(r, g, b uint8) bool {
		in := RGB{r, g, b}
		out := FromHSV(ToHSV(in))
		// Allow a 1-step rounding error per channel.
		return absInt(int(in.R)-int(out.R)) <= 1 &&
			absInt(int(in.G)-int(out.G)) <= 1 &&
			absInt(int(in.B)-int(out.B)) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestHSVKnownValues(t *testing.T) {
	cases := []struct {
		in   RGB
		want HSV
	}{
		{RGB{255, 0, 0}, HSV{0, 1, 1}},
		{RGB{0, 255, 0}, HSV{120, 1, 1}},
		{RGB{0, 0, 255}, HSV{240, 1, 1}},
		{RGB{255, 255, 255}, HSV{0, 0, 1}},
		{RGB{0, 0, 0}, HSV{0, 0, 0}},
	}
	for _, c := range cases {
		got := ToHSV(c.in)
		if math.Abs(got.H-c.want.H) > 1e-9 || math.Abs(got.S-c.want.S) > 1e-9 ||
			math.Abs(got.V-c.want.V) > 1e-9 {
			t.Errorf("ToHSV(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestHistNormalized(t *testing.T) {
	m := NewFilled(8, 8, RGB{255, 0, 0})
	m.Fill(geom.R(0, 0, 4, 8), RGB{0, 0, 255})
	h := NewHSVHist(m, 16, 8, 8)
	for _, plane := range [][]float64{h.H, h.S, h.V} {
		var sum float64
		for _, v := range plane {
			if v < 0 {
				t.Fatal("negative bin")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("histogram not normalized: sum=%v", sum)
		}
	}
}

func TestHistSimilaritySelf(t *testing.T) {
	m := NewFilled(8, 8, RGB{10, 200, 30})
	m.AddNoise(20, 7)
	h := NewHSVHist(m, 16, 8, 8)
	if got := h.Similarity(h, 0.5, 0.3, 0.2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("self similarity = %v, want 1", got)
	}
	// Dissimilar images score lower.
	n := NewFilled(8, 8, RGB{200, 10, 230})
	h2 := NewHSVHist(n, 16, 8, 8)
	if got := h.Similarity(h2, 0.5, 0.3, 0.2); got >= 1 {
		t.Fatalf("different frames should be < 1: %v", got)
	}
}

func TestEntropyBounds(t *testing.T) {
	// A single-color image has near-zero entropy; a noisy one more.
	flat := NewFilled(16, 16, RGB{100, 100, 100})
	noisy := flat.Clone()
	noisy.AddNoise(120, 3)
	hf := NewHSVHist(flat, 16, 8, 8).Entropy(0.5, 0.3, 0.2)
	hn := NewHSVHist(noisy, 16, 8, 8).Entropy(0.5, 0.3, 0.2)
	if hf < 0 || hn < 0 {
		t.Fatal("entropy must be non-negative")
	}
	if hn <= hf {
		t.Fatalf("noisy entropy (%v) should exceed flat entropy (%v)", hn, hf)
	}
}

func TestResize(t *testing.T) {
	m := NewFilled(8, 8, RGB{100, 100, 100})
	out := m.Resize(4, 4)
	if out.W != 4 || out.H != 4 {
		t.Fatalf("resize dims %dx%d", out.W, out.H)
	}
	if out.At(2, 2) != (RGB{100, 100, 100}) {
		t.Fatalf("uniform image should stay uniform: %v", out.At(2, 2))
	}
	up := m.Scale(2)
	if up.W != 16 || up.H != 16 {
		t.Fatalf("scale dims %dx%d", up.W, up.H)
	}
}

func TestIntegral(t *testing.T) {
	w, h := 5, 4
	plane := make([]float64, w*h)
	for i := range plane {
		plane[i] = float64(i)
	}
	it := NewIntegral(plane, w, h)
	// Brute-force check all subrectangles.
	for y0 := 0; y0 <= h; y0++ {
		for y1 := y0; y1 <= h; y1++ {
			for x0 := 0; x0 <= w; x0++ {
				for x1 := x0; x1 <= w; x1++ {
					var want float64
					for y := y0; y < y1; y++ {
						for x := x0; x < x1; x++ {
							want += plane[y*w+x]
						}
					}
					r := geom.R(x0, y0, x1, y1)
					if got := it.Sum(r); math.Abs(got-want) > 1e-9 {
						t.Fatalf("Sum(%v) = %v, want %v", r, got, want)
					}
				}
			}
		}
	}
	if got := it.Mean(geom.R(0, 0, 1, 1)); got != 0 {
		t.Fatalf("Mean single cell = %v", got)
	}
}

func TestGradients(t *testing.T) {
	// Horizontal ramp: gx positive, gy ~ 0 in the interior.
	m := New(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			v := uint8(x * 30)
			m.Set(x, y, RGB{v, v, v})
		}
	}
	gx, gy := m.Gradients()
	i := 3*8 + 3
	if gx[i] <= 0 {
		t.Fatalf("gx interior = %v, want > 0", gx[i])
	}
	if gy[i] != 0 {
		t.Fatalf("gy interior = %v, want 0", gy[i])
	}
}

func TestPNGRoundTrip(t *testing.T) {
	m := New(6, 5)
	m.AddNoise(127, 99)
	var buf bytes.Buffer
	if err := m.EncodePNG(&buf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/sub/frame.png"
	if err := m.WritePNG(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPNG(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Fatal("PNG round-trip changed pixels")
	}
}

func TestDrawPrimitives(t *testing.T) {
	m := New(20, 20)
	m.DrawRect(geom.R(2, 2, 10, 10), RGB{255, 0, 0}, 1)
	if m.At(2, 2) != (RGB{255, 0, 0}) || m.At(9, 9) != (RGB{255, 0, 0}) {
		t.Fatal("rect outline missing")
	}
	if m.At(5, 5) != (RGB{}) {
		t.Fatal("rect should not be filled")
	}
	m.DrawDisc(geom.Pt(15, 15), 2, RGB{0, 255, 0})
	if m.At(15, 15) != (RGB{0, 255, 0}) {
		t.Fatal("disc center missing")
	}
	m.DrawLine(geom.Pt(0, 19), geom.Pt(19, 0), RGB{0, 0, 255})
	if m.At(0, 19) != (RGB{0, 0, 255}) || m.At(19, 0) != (RGB{0, 0, 255}) {
		t.Fatal("line endpoints missing")
	}
	m.DrawEllipse(geom.R(0, 0, 6, 4), RGB{9, 9, 9})
	if m.At(3, 2) != (RGB{9, 9, 9}) {
		t.Fatal("ellipse center missing")
	}
}

func TestVerticalGradient(t *testing.T) {
	m := New(2, 10)
	m.VerticalGradient(RGB{0, 0, 0}, RGB{200, 100, 50})
	if m.At(0, 0) != (RGB{0, 0, 0}) {
		t.Fatalf("top = %v", m.At(0, 0))
	}
	if m.At(0, 9) != (RGB{200, 100, 50}) {
		t.Fatalf("bottom = %v", m.At(0, 9))
	}
	if m.At(0, 5).R <= m.At(0, 1).R {
		t.Fatal("gradient should increase downward")
	}
}

func TestSSD(t *testing.T) {
	a := NewFilled(4, 4, RGB{10, 10, 10})
	b := NewFilled(4, 4, RGB{12, 10, 10})
	r := geom.R(0, 0, 2, 2)
	// 4 pixels × (2² + 0 + 0)
	if got := SSD(a, r, b, r, nil); got != 16 {
		t.Fatalf("SSD = %v, want 16", got)
	}
	skip := func(x, y int) bool { return x == 0 && y == 0 }
	if got := SSD(a, r, b, r, skip); got != 12 {
		t.Fatalf("SSD with skip = %v, want 12", got)
	}
}

func TestCosineSim(t *testing.T) {
	a := []float64{1, 0, 0}
	if got := CosineSim(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self cosine = %v", got)
	}
	if got := CosineSim(a, []float64{0, 1, 0}); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := CosineSim(a, []float64{0, 0, 0}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
}

func TestShade(t *testing.T) {
	m := NewFilled(4, 4, RGB{100, 100, 100})
	m.Shade(geom.R(0, 0, 2, 2), 0.5)
	if m.At(0, 0) != (RGB{50, 50, 50}) {
		t.Fatalf("shaded = %v", m.At(0, 0))
	}
	if m.At(3, 3) != (RGB{100, 100, 100}) {
		t.Fatal("shade leaked outside rect")
	}
	m.Shade(m.Bounds(), 10) // clamps at 255 and factor at 4
	if m.At(3, 3) != (RGB{255, 255, 255}) {
		t.Fatalf("over-shade = %v", m.At(3, 3))
	}
}

func TestColorDiffPlane(t *testing.T) {
	a := NewFilled(3, 2, RGB{R: 10, G: 20, B: 30})
	b := NewFilled(3, 2, RGB{R: 10, G: 50, B: 35})
	plane := ColorDiffPlane(a, b)
	if len(plane) != 6 {
		t.Fatalf("len = %d", len(plane))
	}
	for i, v := range plane {
		if v != 30 { // max per-channel diff is |20-50| = 30
			t.Fatalf("pixel %d diff = %v, want 30", i, v)
		}
	}
	if d := ColorDiffPlane(a, a); d[0] != 0 {
		t.Fatal("identical images should have zero diff")
	}
}
