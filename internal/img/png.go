package img

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"
	"path/filepath"
)

// ToStdImage converts m to a standard library image.RGBA.
func (m *Image) ToStdImage() *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, m.W, m.H))
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			c := m.At(x, y)
			out.SetRGBA(x, y, color.RGBA{R: c.R, G: c.G, B: c.B, A: 255})
		}
	}
	return out
}

// FromStdImage converts any standard library image to an Image.
func FromStdImage(src image.Image) *Image {
	b := src.Bounds()
	out := New(b.Dx(), b.Dy())
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			r, g, bb, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			out.Set(x, y, RGB{uint8(r >> 8), uint8(g >> 8), uint8(bb >> 8)})
		}
	}
	return out
}

// EncodePNG writes m as a PNG stream.
func (m *Image) EncodePNG(w io.Writer) error {
	return png.Encode(w, m.ToStdImage())
}

// WritePNG writes m to a PNG file, creating parent directories as needed.
func (m *Image) WritePNG(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("img: create dir for %s: %w", path, err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("img: create %s: %w", path, err)
	}
	defer f.Close()
	if err := m.EncodePNG(f); err != nil {
		return fmt.Errorf("img: encode %s: %w", path, err)
	}
	return f.Close()
}

// ReadPNG loads a PNG file into an Image.
func ReadPNG(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("img: open %s: %w", path, err)
	}
	defer f.Close()
	src, err := png.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("img: decode %s: %w", path, err)
	}
	return FromStdImage(src), nil
}
