package img

import (
	"math"

	"verro/internal/geom"
)

// Resize returns m resampled to w×h using bilinear interpolation.
func (m *Image) Resize(w, h int) *Image {
	out := New(w, h)
	if m.W == 0 || m.H == 0 || w == 0 || h == 0 {
		return out
	}
	sx := float64(m.W) / float64(w)
	sy := float64(m.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		y0 := int(math.Floor(fy))
		ty := fy - float64(y0)
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			x0 := int(math.Floor(fx))
			tx := fx - float64(x0)
			c00 := m.At(x0, y0)
			c10 := m.At(x0+1, y0)
			c01 := m.At(x0, y0+1)
			c11 := m.At(x0+1, y0+1)
			out.Set(x, y, RGB{
				R: bilerp(c00.R, c10.R, c01.R, c11.R, tx, ty),
				G: bilerp(c00.G, c10.G, c01.G, c11.G, tx, ty),
				B: bilerp(c00.B, c10.B, c01.B, c11.B, tx, ty),
			})
		}
	}
	return out
}

func bilerp(c00, c10, c01, c11 uint8, tx, ty float64) uint8 {
	top := float64(c00) + (float64(c10)-float64(c00))*tx
	bot := float64(c01) + (float64(c11)-float64(c01))*tx
	return uint8(math.Round(top + (bot-top)*ty))
}

// Scale returns m resized by the given factor (>0).
func (m *Image) Scale(factor float64) *Image {
	w := int(math.Round(float64(m.W) * factor))
	h := int(math.Round(float64(m.H) * factor))
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return m.Resize(w, h)
}

// GrayPlane returns the luma of every pixel as a float64 plane, row-major.
func (m *Image) GrayPlane() []float64 {
	out := make([]float64, m.W*m.H)
	for y := 0; y < m.H; y++ {
		row := out[y*m.W : y*m.W+m.W]
		off := m.offset(0, y)
		prow := m.Pix[off : off+m.W*3]
		for x := range row {
			p := prow[x*3 : x*3+3]
			row[x] = float64(RGB{p[0], p[1], p[2]}.Gray())
		}
	}
	return out
}

// Gradients computes central-difference horizontal and vertical luma
// gradients. The returned planes have the same dimensions as m.
func (m *Image) Gradients() (gx, gy []float64) {
	gray := m.GrayPlane()
	gx = make([]float64, m.W*m.H)
	gy = make([]float64, m.W*m.H)
	w, h := m.W, m.H
	for y := 0; y < h; y++ {
		yu, yd := y-1, y+1
		if yu < 0 {
			yu = 0
		}
		if yd > h-1 {
			yd = h - 1
		}
		cur := gray[y*w : y*w+w]
		up := gray[yu*w : yu*w+w]
		down := gray[yd*w : yd*w+w]
		gxr := gx[y*w : y*w+w]
		gyr := gy[y*w : y*w+w]
		n := len(cur)
		if len(up) < n {
			n = len(up)
		}
		if len(down) < n {
			n = len(down)
		}
		if len(gyr) < n {
			n = len(gyr)
		}
		for x := 0; x < n; x++ {
			gyr[x] = down[x] - up[x]
		}
		// Horizontal gradient: the clamped neighbours only matter at the
		// row ends, so the interior runs over pre-shifted slices and the
		// two edge pixels are peeled off through fixed-size windows.
		if n == 1 {
			first := gxr[0:1]
			first[0] = 0
			continue
		}
		if n > 1 {
			head := cur[0:2]
			tail := cur[n-2 : n-2+2]
			first := gxr[0:1]
			last := gxr[n-1 : n-1+1]
			first[0] = head[1] - head[0]
			last[0] = tail[1] - tail[0]
			dst := gxr[1 : n-1]
			right := cur[2:n]
			left := cur[0 : n-2]
			k := len(dst)
			if len(right) < k {
				k = len(right)
			}
			if len(left) < k {
				k = len(left)
			}
			for x := 0; x < k; x++ {
				dst[x] = right[x] - left[x]
			}
		}
	}
	return gx, gy
}

// Integral is a summed-area table over a scalar plane; Sum answers
// rectangular queries in O(1). Used by the background-subtraction detector.
type Integral struct {
	w, h int
	sum  []float64 // (w+1)*(h+1)
}

// NewIntegral builds the summed-area table of plane (w×h, row-major).
func NewIntegral(plane []float64, w, h int) *Integral {
	it := &Integral{w: w, h: h, sum: make([]float64, (w+1)*(h+1))}
	w1 := w + 1
	for y := 0; y < h; y++ {
		var row float64
		prow := plane[y*w : y*w+w]
		// Skip the zero guard column so prev/cur line up with prow.
		prev := it.sum[y*w1+1 : y*w1+w1]
		cur := it.sum[(y+1)*w1+1 : (y+1)*w1+w1]
		k := len(prow)
		if len(prev) < k {
			k = len(prev)
		}
		if len(cur) < k {
			k = len(cur)
		}
		for x := 0; x < k; x++ {
			row += prow[x]
			cur[x] = prev[x] + row
		}
	}
	return it
}

// Sum returns the sum of the plane over rectangle r (clipped).
func (it *Integral) Sum(r geom.Rect) float64 {
	r = r.Clip(geom.R(0, 0, it.w, it.h))
	if r.Empty() {
		return 0
	}
	w1 := it.w + 1
	a := it.sum[r.Min.Y*w1+r.Min.X]
	b := it.sum[r.Min.Y*w1+r.Max.X]
	c := it.sum[r.Max.Y*w1+r.Min.X]
	d := it.sum[r.Max.Y*w1+r.Max.X]
	return d - b - c + a
}

// Mean returns the mean of the plane over rectangle r (clipped); 0 for an
// empty rectangle.
func (it *Integral) Mean(r geom.Rect) float64 {
	r = r.Clip(geom.R(0, 0, it.w, it.h))
	a := r.Area()
	if a == 0 {
		return 0
	}
	return it.Sum(r) / float64(a)
}

// ColorDiffPlane returns, per pixel, the maximum per-channel absolute
// difference between m and n — a chromatic change measure that catches
// objects whose luma happens to match the background. The result has m's
// dimensions; n is sampled with edge clamping.
func ColorDiffPlane(m, n *Image) []float64 {
	out := make([]float64, m.W*m.H)
	for y := 0; y < m.H; y++ {
		row := out[y*m.W : y*m.W+m.W]
		for x := range row {
			a := m.At(x, y)
			b := n.At(x, y)
			d := absDiff8(a.R, b.R)
			if g := absDiff8(a.G, b.G); g > d {
				d = g
			}
			if bl := absDiff8(a.B, b.B); bl > d {
				d = bl
			}
			row[x] = float64(d)
		}
	}
	return out
}

func absDiff8(a, b uint8) uint8 {
	if a > b {
		return a - b
	}
	return b - a
}

// AbsDiffPlane returns |luma(m) − luma(n)| as a plane. Images must have the
// same dimensions; the result has m's dimensions with missing pixels treated
// as zero difference.
func AbsDiffPlane(m, n *Image) []float64 {
	out := make([]float64, m.W*m.H)
	for y := 0; y < m.H; y++ {
		row := out[y*m.W : y*m.W+m.W]
		for x := range row {
			d := float64(m.At(x, y).Gray()) - float64(n.At(x, y).Gray())
			if d < 0 {
				d = -d
			}
			row[x] = d
		}
	}
	return out
}
