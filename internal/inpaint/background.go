package inpaint

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/motio"
	"verro/internal/obs"
	"verro/internal/vid"
)

// MaskDilation is how far object boxes are grown before background
// reconstruction, to swallow anti-aliased borders and small tracker error.
const MaskDilation = 2

// FrameMask builds the removal mask for frame k from the tracked objects.
func FrameMask(w, h, k int, tracks *motio.TrackSet) *Mask {
	m := NewMask(w, h)
	for _, t := range tracks.Tracks {
		if b, ok := t.Box(k); ok {
			m.SetRect(b, true)
		}
	}
	return m.Dilate(MaskDilation)
}

// StaticBackground reconstructs the single background scene of a
// static-camera video: each pixel takes the median of its values over the
// frames in which no object covers it; pixels covered in every sampled
// frame are then filled with Criminisi inpainting.
func StaticBackground(v *vid.Video, tracks *motio.TrackSet, step int, cfg Config) (*img.Image, error) {
	return StaticBackgroundRT(v, tracks, step, cfg, obs.Runtime{})
}

// StaticBackgroundRT is StaticBackground on an explicit runtime: the
// sampled-frame count lands on rt.Span and the hole fill runs via InpaintRT.
func StaticBackgroundRT(v *vid.Video, tracks *motio.TrackSet, step int, cfg Config, rt obs.Runtime) (*img.Image, error) {
	if v.Len() == 0 {
		return nil, errors.New("inpaint: empty video")
	}
	samples, indices := stride(v.Frames, step)
	return StaticBackgroundSamplesRT(v.W, v.H, samples, indices, tracks, cfg, rt)
}

// stride picks every step-th frame with its clip index, matching the
// `for k := 0; k < n; k += step` sampling of the batch reconstructions.
func stride(frames []*img.Image, step int) ([]*img.Image, []int) {
	if step < 1 {
		step = 1
	}
	n := (len(frames) + step - 1) / step
	samples := make([]*img.Image, 0, n)
	indices := make([]int, 0, n)
	for k, f := range frames {
		if k%step != 0 {
			continue
		}
		samples = append(samples, f)
		indices = append(indices, k)
	}
	return samples, indices
}

// StaticBackgroundSamplesRT reconstructs the static background from an
// explicit list of sampled frames and their clip indices. The batch path
// passes the strided frames of the whole clip; the streaming path passes
// copies it retained while windows flowed by (bounded at ~40 samples by
// detect.AutoStep, so retention is O(1) in clip length). Both orders are
// identical, so the per-pixel median stacks — and the output — are
// bit-identical.
func StaticBackgroundSamplesRT(w, h int, samples []*img.Image, indices []int, tracks *motio.TrackSet, cfg Config, rt obs.Runtime) (*img.Image, error) {
	if len(samples) == 0 {
		return nil, errors.New("inpaint: empty video")
	}
	rt.Span.Add(obs.CBGFramesSampled, int64(len(samples)))
	// Per-pixel value collection (uint8 per channel) over unmasked frames.
	vals := make([][]uint8, w*h*3)
	ns := len(samples)
	if len(indices) < ns {
		ns = len(indices)
	}
	for i := 0; i < ns; i++ {
		f := samples[i]
		mask := FrameMask(w, h, indices[i], tracks)
		for y := 0; y < h; y++ {
			off := y * w * 3
			vrow := vals[off : off+w*3]
			prow := f.Pix[off : off+w*3]
			for x := 0; x < w; x++ {
				if mask.At(x, y) {
					continue
				}
				vp := vrow[x*3 : x*3+3]
				pp := prow[x*3 : x*3+3]
				for c := 0; c < 3; c++ {
					vp[c] = append(vp[c], pp[c])
				}
			}
		}
	}
	out := img.New(w, h)
	hole := NewMask(w, h)
	holes := 0
	for i := range hole.Bits {
		v3 := vals[i*3 : i*3+3]
		if len(v3[0]) == 0 {
			hole.Bits[i] = true
			holes++
			continue
		}
		p3 := out.Pix[i*3 : i*3+3]
		for c := 0; c < 3; c++ {
			p3[c] = medianU8(v3[c])
		}
	}
	if holes > 0 {
		filled, err := InpaintRT(out, hole, cfg, rt)
		if err != nil {
			return nil, fmt.Errorf("inpaint: filling %d always-covered pixels: %w", holes, err)
		}
		out = filled
	}
	return out, nil
}

func medianU8(vals []uint8) uint8 {
	var counts [256]int
	for _, v := range vals {
		counts[v]++
	}
	mid := (len(vals) - 1) / 2
	cum := 0
	for v := 0; v < 256; v++ {
		cum += counts[v]
		if cum > mid {
			return uint8(v)
		}
	}
	return 255
}

// DefaultPanShift is the ±search window (in columns) the pipeline uses for
// pairwise pan estimation.
const DefaultPanShift = 12

// EstimatePan estimates the horizontal camera offset of every frame
// relative to frame 0 by integrating frame-to-frame shifts. Each pairwise
// shift is found by minimizing the sum of absolute differences of row-mean
// luma profiles over a ±maxShift window — cheap and robust for the
// horizontally panning sequences VERRO's evaluation uses.
func EstimatePan(v *vid.Video, maxShift int) ([]int, error) {
	if v.Len() == 0 {
		return nil, errors.New("inpaint: empty video")
	}
	profiles := make([][]float64, v.Len())
	for k := range profiles {
		profiles[k] = ColumnProfile(v.Frame(k))
	}
	offsets := make([]int, v.Len())
	n := len(profiles)
	if len(offsets) < n {
		n = len(offsets)
	}
	prev := profiles[0]
	cum := 0
	for k := 1; k < n; k++ {
		p := profiles[k]
		cum += BestShift(prev, p, maxShift)
		offsets[k] = cum
		prev = p
	}
	return offsets, nil
}

// ColumnProfile returns the mean luma of each column — the pure per-frame
// half of pan estimation. The streaming pan stage calls this frame by frame
// (recomputing the overlap frame's profile instead of retaining pixels) and
// integrates the pairwise BestShift results exactly as EstimatePan does, so
// the two paths produce identical offsets.
func ColumnProfile(f *img.Image) []float64 {
	out := make([]float64, f.W) //lint:allow hotalloc constructor: the profile is the product, retained by the caller
	for x := range out {
		var sum float64
		for y := 0; y < f.H; y++ {
			sum += float64(f.At(x, y).Gray())
		}
		out[x] = sum / float64(f.H)
	}
	return out
}

// BestShift finds s minimizing SAD(prev[x+s], cur[x]).
func BestShift(prev, cur []float64, maxShift int) int {
	if maxShift < 1 {
		maxShift = 8
	}
	best := 0
	bestSAD := math.Inf(1)
	for s := -maxShift; s <= maxShift; s++ {
		var sad float64
		n := 0
		for x := 0; x < len(cur); x++ {
			px := x + s
			if px < 0 || px >= len(prev) {
				continue
			}
			sad += math.Abs(prev[px] - cur[x])
			n++
		}
		if n == 0 {
			continue
		}
		sad /= float64(n)
		if sad < bestSAD {
			bestSAD = sad
			best = s
		}
	}
	return best
}

// MovingBackground reconstructs per-frame backgrounds for a panning-camera
// video: frames are aligned into panorama coordinates using the estimated
// pan offsets, a per-pixel median panorama is stacked from unmasked pixels,
// remaining holes are inpainted, and each frame's background is the
// panorama viewport at its offset.
type MovingBackground struct {
	Panorama *img.Image
	Offsets  []int // pan offset per frame, normalized to min 0
	W, H     int
}

// BuildMovingBackground computes the panorama background model.
func BuildMovingBackground(v *vid.Video, tracks *motio.TrackSet, step int, cfg Config) (*MovingBackground, error) {
	return BuildMovingBackgroundRT(v, tracks, step, cfg, obs.Runtime{})
}

// BuildMovingBackgroundRT is BuildMovingBackground on an explicit runtime.
func BuildMovingBackgroundRT(v *vid.Video, tracks *motio.TrackSet, step int, cfg Config, rt obs.Runtime) (*MovingBackground, error) {
	offsets, err := EstimatePan(v, DefaultPanShift)
	if err != nil {
		return nil, err
	}
	samples, indices := stride(v.Frames, step)
	return BuildMovingBackgroundSamplesRT(v.W, v.H, offsets, samples, indices, tracks, cfg, rt)
}

// BuildMovingBackgroundSamplesRT builds the panorama background from raw
// (un-normalized, frame-0-relative) pan offsets for every frame plus the
// sampled frames feeding the temporal median. The streaming analysis pass
// supplies offsets from its pan stage and the sample copies it retained;
// the batch wrapper above supplies EstimatePan output and the strided
// frames. Identical inputs in identical order make the panorama
// bit-identical across the two paths.
func BuildMovingBackgroundSamplesRT(w, h int, offsets []int, samples []*img.Image, indices []int, tracks *motio.TrackSet, cfg Config, rt obs.Runtime) (*MovingBackground, error) {
	if len(offsets) == 0 || len(samples) == 0 {
		return nil, errors.New("inpaint: empty video")
	}
	// Normalize offsets to be ≥ 0.
	offsets = append([]int(nil), offsets...)
	minOff := offsets[0]
	maxOff := offsets[0]
	for _, o := range offsets {
		if o < minOff {
			minOff = o
		}
		if o > maxOff {
			maxOff = o
		}
	}
	for i := range offsets {
		offsets[i] -= minOff
	}
	panW := w + (maxOff - minOff)
	rt.Span.Add(obs.CBGFramesSampled, int64(len(samples)))

	vals := make([][]uint8, panW*h*3)
	ns := len(samples)
	if len(indices) < ns {
		ns = len(indices)
	}
	for i := 0; i < ns; i++ {
		f := samples[i]
		k := indices[i]
		mask := FrameMask(w, h, k, tracks)
		off := offsets[k] //lint:allow bce indices hold frame numbers < len(offsets) by construction; the relation is invisible to the interval domain
		for y := 0; y < h; y++ {
			vrow := vals[y*panW*3 : y*panW*3+panW*3]
			prow := f.Pix[y*w*3 : y*w*3+w*3]
			for x := 0; x < w; x++ {
				if mask.At(x, y) {
					continue
				}
				vp := vrow[(x+off)*3 : (x+off)*3+3]
				pp := prow[x*3 : x*3+3]
				for c := 0; c < 3; c++ {
					vp[c] = append(vp[c], pp[c])
				}
			}
		}
	}
	pano := img.New(panW, h)
	hole := NewMask(panW, h)
	holes := 0
	for i := range hole.Bits {
		v3 := vals[i*3 : i*3+3]
		if len(v3[0]) == 0 {
			hole.Bits[i] = true
			holes++
			continue
		}
		p3 := pano.Pix[i*3 : i*3+3]
		for c := 0; c < 3; c++ {
			p3[c] = medianU8(v3[c])
		}
	}
	if holes > 0 && holes < panW*h {
		filled, err := InpaintRT(pano, hole, cfg, rt)
		if err != nil {
			return nil, fmt.Errorf("inpaint: panorama holes: %w", err)
		}
		pano = filled
	}
	return &MovingBackground{Panorama: pano, Offsets: offsets, W: w, H: h}, nil
}

// FrameBackground returns the background scene for frame k.
func (mb *MovingBackground) FrameBackground(k int) (*img.Image, error) {
	if k < 0 || k >= len(mb.Offsets) {
		return nil, fmt.Errorf("inpaint: frame %d out of range [0,%d)", k, len(mb.Offsets))
	}
	off := geom.Clamp(mb.Offsets[k], 0, mb.Panorama.W-mb.W)
	return mb.Panorama.SubImage(geom.RectAt(off, 0, mb.W, mb.H)), nil
}

// Scenes is the uniform background-provider the sanitizer consumes: one
// background image per frame, whatever the camera model.
type Scenes interface {
	Background(frame int) (*img.Image, error)
}

// staticScenes adapts a single background image.
type staticScenes struct{ bg *img.Image }

func (s staticScenes) Background(int) (*img.Image, error) { return s.bg, nil }

// NewStaticScenes wraps one background image as a Scenes provider.
func NewStaticScenes(bg *img.Image) Scenes { return staticScenes{bg} }

// Background implements Scenes for the moving-camera model.
func (mb *MovingBackground) Background(k int) (*img.Image, error) {
	return mb.FrameBackground(k)
}

// ExtractScenes picks the right reconstruction for the video's camera
// model and returns a per-frame background provider. step subsamples the
// frames feeding the temporal median.
func ExtractScenes(v *vid.Video, tracks *motio.TrackSet, step int, cfg Config) (Scenes, error) {
	return ExtractScenesRT(v, tracks, step, cfg, obs.Runtime{})
}

// ExtractScenesRT is ExtractScenes on an explicit runtime: reconstruction
// shards over rt.Pool and frame/patch counters land on rt.Span.
func ExtractScenesRT(v *vid.Video, tracks *motio.TrackSet, step int, cfg Config, rt obs.Runtime) (Scenes, error) {
	if v.Moving {
		return BuildMovingBackgroundRT(v, tracks, step, cfg, rt)
	}
	bg, err := StaticBackgroundRT(v, tracks, step, cfg, rt)
	if err != nil {
		return nil, err
	}
	return NewStaticScenes(bg), nil
}

// SortedOffsets returns a copy of the distinct pan offsets in ascending
// order; exported for diagnostics and tests.
func (mb *MovingBackground) SortedOffsets() []int {
	seen := map[int]bool{}
	out := make([]int, 0, len(mb.Offsets))
	for _, o := range mb.Offsets {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	sort.Ints(out)
	return out
}
