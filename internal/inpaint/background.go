package inpaint

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/motio"
	"verro/internal/obs"
	"verro/internal/vid"
)

// MaskDilation is how far object boxes are grown before background
// reconstruction, to swallow anti-aliased borders and small tracker error.
const MaskDilation = 2

// FrameMask builds the removal mask for frame k from the tracked objects.
func FrameMask(w, h, k int, tracks *motio.TrackSet) *Mask {
	m := NewMask(w, h)
	for _, t := range tracks.Tracks {
		if b, ok := t.Box(k); ok {
			m.SetRect(b, true)
		}
	}
	return m.Dilate(MaskDilation)
}

// StaticBackground reconstructs the single background scene of a
// static-camera video: each pixel takes the median of its values over the
// frames in which no object covers it; pixels covered in every sampled
// frame are then filled with Criminisi inpainting.
func StaticBackground(v *vid.Video, tracks *motio.TrackSet, step int, cfg Config) (*img.Image, error) {
	return StaticBackgroundRT(v, tracks, step, cfg, obs.Runtime{})
}

// StaticBackgroundRT is StaticBackground on an explicit runtime: the
// sampled-frame count lands on rt.Span and the hole fill runs via InpaintRT.
func StaticBackgroundRT(v *vid.Video, tracks *motio.TrackSet, step int, cfg Config, rt obs.Runtime) (*img.Image, error) {
	if v.Len() == 0 {
		return nil, errors.New("inpaint: empty video")
	}
	if step < 1 {
		step = 1
	}
	w, h := v.W, v.H
	rt.Span.Add(obs.CBGFramesSampled, int64((v.Len()+step-1)/step))
	// Per-pixel value collection (uint8 per channel) over unmasked frames.
	vals := make([][]uint8, w*h*3)
	for k := 0; k < v.Len(); k += step {
		mask := FrameMask(w, h, k, tracks)
		f := v.Frame(k)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if mask.At(x, y) {
					continue
				}
				base := (y*w + x) * 3
				for c := 0; c < 3; c++ {
					vals[base+c] = append(vals[base+c], f.Pix[base+c])
				}
			}
		}
	}
	out := img.New(w, h)
	hole := NewMask(w, h)
	holes := 0
	for i := 0; i < w*h; i++ {
		if len(vals[i*3]) == 0 {
			hole.Bits[i] = true
			holes++
			continue
		}
		for c := 0; c < 3; c++ {
			out.Pix[i*3+c] = medianU8(vals[i*3+c])
		}
	}
	if holes > 0 {
		filled, err := InpaintRT(out, hole, cfg, rt)
		if err != nil {
			return nil, fmt.Errorf("inpaint: filling %d always-covered pixels: %w", holes, err)
		}
		out = filled
	}
	return out, nil
}

func medianU8(vals []uint8) uint8 {
	var counts [256]int
	for _, v := range vals {
		counts[v]++
	}
	mid := (len(vals) - 1) / 2
	cum := 0
	for v := 0; v < 256; v++ {
		cum += counts[v]
		if cum > mid {
			return uint8(v)
		}
	}
	return 255
}

// EstimatePan estimates the horizontal camera offset of every frame
// relative to frame 0 by integrating frame-to-frame shifts. Each pairwise
// shift is found by minimizing the sum of absolute differences of row-mean
// luma profiles over a ±maxShift window — cheap and robust for the
// horizontally panning sequences VERRO's evaluation uses.
func EstimatePan(v *vid.Video, maxShift int) ([]int, error) {
	if v.Len() == 0 {
		return nil, errors.New("inpaint: empty video")
	}
	if maxShift < 1 {
		maxShift = 8
	}
	profiles := make([][]float64, v.Len())
	for k := 0; k < v.Len(); k++ {
		profiles[k] = columnProfile(v.Frame(k))
	}
	offsets := make([]int, v.Len())
	for k := 1; k < v.Len(); k++ {
		shift := bestShift(profiles[k-1], profiles[k], maxShift)
		offsets[k] = offsets[k-1] + shift
	}
	return offsets, nil
}

// columnProfile returns the mean luma of each column.
func columnProfile(f *img.Image) []float64 {
	out := make([]float64, f.W)
	for x := 0; x < f.W; x++ {
		var sum float64
		for y := 0; y < f.H; y++ {
			sum += float64(f.At(x, y).Gray())
		}
		out[x] = sum / float64(f.H)
	}
	return out
}

// bestShift finds s minimizing SAD(prev[x+s], cur[x]).
func bestShift(prev, cur []float64, maxShift int) int {
	best := 0
	bestSAD := math.Inf(1)
	for s := -maxShift; s <= maxShift; s++ {
		var sad float64
		n := 0
		for x := 0; x < len(cur); x++ {
			px := x + s
			if px < 0 || px >= len(prev) {
				continue
			}
			sad += math.Abs(prev[px] - cur[x])
			n++
		}
		if n == 0 {
			continue
		}
		sad /= float64(n)
		if sad < bestSAD {
			bestSAD = sad
			best = s
		}
	}
	return best
}

// MovingBackground reconstructs per-frame backgrounds for a panning-camera
// video: frames are aligned into panorama coordinates using the estimated
// pan offsets, a per-pixel median panorama is stacked from unmasked pixels,
// remaining holes are inpainted, and each frame's background is the
// panorama viewport at its offset.
type MovingBackground struct {
	Panorama *img.Image
	Offsets  []int // pan offset per frame, normalized to min 0
	W, H     int
}

// BuildMovingBackground computes the panorama background model.
func BuildMovingBackground(v *vid.Video, tracks *motio.TrackSet, step int, cfg Config) (*MovingBackground, error) {
	return BuildMovingBackgroundRT(v, tracks, step, cfg, obs.Runtime{})
}

// BuildMovingBackgroundRT is BuildMovingBackground on an explicit runtime.
func BuildMovingBackgroundRT(v *vid.Video, tracks *motio.TrackSet, step int, cfg Config, rt obs.Runtime) (*MovingBackground, error) {
	offsets, err := EstimatePan(v, 12)
	if err != nil {
		return nil, err
	}
	// Normalize offsets to be ≥ 0.
	minOff := offsets[0]
	maxOff := offsets[0]
	for _, o := range offsets {
		if o < minOff {
			minOff = o
		}
		if o > maxOff {
			maxOff = o
		}
	}
	for i := range offsets {
		offsets[i] -= minOff
	}
	panW := v.W + (maxOff - minOff)
	if step < 1 {
		step = 1
	}
	rt.Span.Add(obs.CBGFramesSampled, int64((v.Len()+step-1)/step))

	vals := make([][]uint8, panW*v.H*3)
	for k := 0; k < v.Len(); k += step {
		mask := FrameMask(v.W, v.H, k, tracks)
		f := v.Frame(k)
		off := offsets[k]
		for y := 0; y < v.H; y++ {
			for x := 0; x < v.W; x++ {
				if mask.At(x, y) {
					continue
				}
				pi := (y*panW + x + off) * 3
				fi := (y*v.W + x) * 3
				for c := 0; c < 3; c++ {
					vals[pi+c] = append(vals[pi+c], f.Pix[fi+c])
				}
			}
		}
	}
	pano := img.New(panW, v.H)
	hole := NewMask(panW, v.H)
	holes := 0
	for i := 0; i < panW*v.H; i++ {
		if len(vals[i*3]) == 0 {
			hole.Bits[i] = true
			holes++
			continue
		}
		for c := 0; c < 3; c++ {
			pano.Pix[i*3+c] = medianU8(vals[i*3+c])
		}
	}
	if holes > 0 && holes < panW*v.H {
		filled, err := InpaintRT(pano, hole, cfg, rt)
		if err != nil {
			return nil, fmt.Errorf("inpaint: panorama holes: %w", err)
		}
		pano = filled
	}
	return &MovingBackground{Panorama: pano, Offsets: offsets, W: v.W, H: v.H}, nil
}

// FrameBackground returns the background scene for frame k.
func (mb *MovingBackground) FrameBackground(k int) (*img.Image, error) {
	if k < 0 || k >= len(mb.Offsets) {
		return nil, fmt.Errorf("inpaint: frame %d out of range [0,%d)", k, len(mb.Offsets))
	}
	off := geom.Clamp(mb.Offsets[k], 0, mb.Panorama.W-mb.W)
	return mb.Panorama.SubImage(geom.RectAt(off, 0, mb.W, mb.H)), nil
}

// Scenes is the uniform background-provider the sanitizer consumes: one
// background image per frame, whatever the camera model.
type Scenes interface {
	Background(frame int) (*img.Image, error)
}

// staticScenes adapts a single background image.
type staticScenes struct{ bg *img.Image }

func (s staticScenes) Background(int) (*img.Image, error) { return s.bg, nil }

// NewStaticScenes wraps one background image as a Scenes provider.
func NewStaticScenes(bg *img.Image) Scenes { return staticScenes{bg} }

// Background implements Scenes for the moving-camera model.
func (mb *MovingBackground) Background(k int) (*img.Image, error) {
	return mb.FrameBackground(k)
}

// ExtractScenes picks the right reconstruction for the video's camera
// model and returns a per-frame background provider. step subsamples the
// frames feeding the temporal median.
func ExtractScenes(v *vid.Video, tracks *motio.TrackSet, step int, cfg Config) (Scenes, error) {
	return ExtractScenesRT(v, tracks, step, cfg, obs.Runtime{})
}

// ExtractScenesRT is ExtractScenes on an explicit runtime: reconstruction
// shards over rt.Pool and frame/patch counters land on rt.Span.
func ExtractScenesRT(v *vid.Video, tracks *motio.TrackSet, step int, cfg Config, rt obs.Runtime) (Scenes, error) {
	if v.Moving {
		return BuildMovingBackgroundRT(v, tracks, step, cfg, rt)
	}
	bg, err := StaticBackgroundRT(v, tracks, step, cfg, rt)
	if err != nil {
		return nil, err
	}
	return NewStaticScenes(bg), nil
}

// SortedOffsets returns a copy of the distinct pan offsets in ascending
// order; exported for diagnostics and tests.
func (mb *MovingBackground) SortedOffsets() []int {
	seen := map[int]bool{}
	var out []int
	for _, o := range mb.Offsets {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	sort.Ints(out)
	return out
}
