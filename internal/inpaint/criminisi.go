// Package inpaint implements the background-scene reconstruction VERRO's
// Phase II needs: the Criminisi exemplar-based region-filling algorithm
// [11] (priority-ordered patch copying along the fill front) plus temporal
// background extraction — per-pixel medians for static cameras, and
// pan-compensated panorama stacking for moving cameras.
package inpaint

import (
	"errors"
	"fmt"
	"math"

	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/obs"
	"verro/internal/par"
)

// Mask marks the pixels to fill (true = unknown/removed).
type Mask struct {
	W, H int
	Bits []bool
}

// NewMask returns an all-false mask.
func NewMask(w, h int) *Mask {
	return &Mask{W: w, H: h, Bits: make([]bool, w*h)} //lint:allow hotalloc constructor: the mask is the product, not per-iteration scratch
}

// At reports the mask at (x, y); out-of-bounds is false.
func (m *Mask) At(x, y int) bool {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return false
	}
	return m.Bits[y*m.W+x]
}

// Set writes the mask at (x, y); out-of-bounds writes are dropped.
func (m *Mask) Set(x, y int, v bool) {
	if x < 0 || y < 0 || x >= m.W || y >= m.H {
		return
	}
	m.Bits[y*m.W+x] = v
}

// SetRect marks rectangle r.
func (m *Mask) SetRect(r geom.Rect, v bool) {
	r = r.Clip(geom.R(0, 0, m.W, m.H))
	for y := r.Min.Y; y < r.Max.Y; y++ {
		row := m.Bits[y*m.W+r.Min.X : y*m.W+r.Max.X]
		for x := range row {
			row[x] = v
		}
	}
}

// Count returns the number of masked pixels.
func (m *Mask) Count() int {
	n := 0
	for _, b := range m.Bits {
		if b {
			n++
		}
	}
	return n
}

// Clone deep-copies the mask.
func (m *Mask) Clone() *Mask {
	out := NewMask(m.W, m.H)
	copy(out.Bits, m.Bits)
	return out
}

// Dilate grows the mask by radius pixels (Chebyshev metric), used to make
// sure object borders and shadows are removed along with the object.
func (m *Mask) Dilate(radius int) *Mask {
	if radius <= 0 {
		return m.Clone()
	}
	out := NewMask(m.W, m.H)
	for y := 0; y < m.H; y++ {
		row := m.Bits[y*m.W : y*m.W+m.W]
		for x := range row {
			if !row[x] {
				continue
			}
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					out.Set(x+dx, y+dy, true)
				}
			}
		}
	}
	return out
}

// Config tunes the Criminisi algorithm.
type Config struct {
	// PatchSize is the (odd) side of the square patch; 0 means 7.
	PatchSize int
	// SearchRadius limits the source-patch search to a window around the
	// target (a standard speedup); 0 means 40.
	SearchRadius int
}

// DefaultConfig returns parameters balanced for ~384×216 frames.
func DefaultConfig() Config { return Config{PatchSize: 7, SearchRadius: 40} }

// Errors.
var (
	ErrMaskSize  = errors.New("inpaint: mask does not match image")
	ErrAllMasked = errors.New("inpaint: no source pixels available")
)

// Inpaint fills the masked region of src and returns a new image; src is
// not modified. It follows Criminisi et al.: repeatedly pick the fill-front
// patch with maximum priority (confidence × data term), copy the best
// matching source patch over its unknown pixels, and update confidences.
// It runs on the default worker pool, untraced; pipeline code passes a
// scoped pool and span via InpaintRT.
func Inpaint(src *img.Image, mask *Mask, cfg Config) (*img.Image, error) {
	return InpaintRT(src, mask, cfg, obs.Runtime{})
}

// InpaintRT is Inpaint on an explicit runtime: the front scan and SSD
// search shard over rt.Pool, and every filled patch counts on rt.Span.
func InpaintRT(src *img.Image, mask *Mask, cfg Config, rt obs.Runtime) (*img.Image, error) {
	if mask.W != src.W || mask.H != src.H {
		return nil, fmt.Errorf("%w: %dx%d vs %dx%d", ErrMaskSize, mask.W, mask.H, src.W, src.H)
	}
	if cfg.PatchSize <= 0 {
		cfg.PatchSize = 7
	}
	if cfg.PatchSize%2 == 0 {
		cfg.PatchSize++
	}
	if cfg.SearchRadius <= 0 {
		cfg.SearchRadius = 40
	}

	out := src.Clone()
	work := mask.Clone()
	remaining := work.Count()
	if remaining == 0 {
		return out, nil
	}
	if remaining == src.W*src.H {
		return nil, ErrAllMasked
	}

	half := cfg.PatchSize / 2
	w, h := src.W, src.H

	// Confidence: 1 for known pixels, 0 for unknown.
	conf := make([]float64, len(work.Bits))
	for i, masked := range work.Bits {
		if !masked {
			conf[i] = 1
		}
	}

	bounds := geom.R(0, 0, w, h)
	maxIter := remaining + w + h
	type cand struct {
		x, y     int
		priority float64
	}
	for iter := 0; remaining > 0 && iter < maxIter; iter++ {
		// Collect fill-front pixels: masked with at least one known
		// 4-neighbour. The scan reads only frozen per-iteration state
		// (image, mask, confidences, gradients), so rows are scored on the
		// worker pool and reduced in row order; strict > keeps the serial
		// scan's first-maximum tie-breaking.
		gx, gy := out.Gradients() // isophotes of current (partially filled) image
		rowBests := par.MapPool(rt.Pool, h, 8, func(y int) cand {
			best := cand{x: -1, priority: -1}
			for x := 0; x < w; x++ {
				if !work.At(x, y) || !onFront(work, x, y) {
					continue
				}
				c := patchConfidence(conf, work, x, y, half, w, h)
				d := dataTerm(gx, gy, work, x, y, w, h)
				if p := c * d; p > best.priority {
					best = cand{x: x, y: y, priority: p}
				}
			}
			return best
		})
		best := cand{x: -1, priority: -1}
		for _, rb := range rowBests {
			if rb.x >= 0 && rb.priority > best.priority {
				best = rb
			}
		}
		if best.x < 0 {
			break // no front found (should not happen while remaining > 0)
		}

		target := geom.CenteredRect(geom.Pt(best.x, best.y), cfg.PatchSize, cfg.PatchSize).Clip(bounds)

		srcPatch, ok := findSource(out, work, target, cfg.SearchRadius, rt.Pool)
		if !ok {
			// Fall back to a global search once; if that fails, fill with the
			// mean of known neighbours to guarantee progress.
			srcPatch, ok = findSource(out, work, target, w+h, rt.Pool)
		}
		cHere := patchConfidence(conf, work, best.x, best.y, half, w, h)
		if ok {
			copyPatch(out, work, conf, target, srcPatch, cHere, &remaining)
		} else {
			fillWithNeighbourMean(out, work, conf, target, cHere, &remaining)
		}
		rt.Span.Add(obs.CPatchesInpainted, 1)
	}
	if remaining > 0 {
		// Last-resort sweep (tiny disconnected specks).
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if work.At(x, y) {
					out.Set(x, y, neighbourMean(out, work, x, y))
					work.Set(x, y, false)
				}
			}
		}
	}
	return out, nil
}

// onFront reports whether masked pixel (x, y) borders a known pixel.
func onFront(work *Mask, x, y int) bool {
	return !work.At(x-1, y) || !work.At(x+1, y) || !work.At(x, y-1) || !work.At(x, y+1)
}

// patchConfidence averages confidence over the patch.
func patchConfidence(conf []float64, work *Mask, cx, cy, half, w, h int) float64 {
	x0, x1 := max(0, cx-half), min(w-1, cx+half)
	y0, y1 := max(0, cy-half), min(h-1, cy+half)
	if x0 > x1 || y0 > y1 {
		return 0
	}
	var sum float64
	n := 0
	for y := y0; y <= y1; y++ {
		row := conf[y*w+x0 : y*w+x1+1]
		for x := range row {
			sum += row[x]
		}
		n += len(row)
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// dataTerm approximates |∇I⊥ · n| at the front pixel: the isophote
// strength perpendicular to the front normal. We use the strongest known
// neighbouring gradient rotated 90°, dotted with the mask-boundary normal.
func dataTerm(gx, gy []float64, work *Mask, x, y, w, h int) float64 {
	// Front normal from the mask gradient (known = 0, unknown = 1).
	nX := float64(b2i(work.At(x+1, y)) - b2i(work.At(x-1, y)))
	nY := float64(b2i(work.At(x, y+1)) - b2i(work.At(x, y-1)))
	nn := math.Hypot(nX, nY)
	if nn == 0 {
		return 1e-3
	}
	nX /= nn
	nY /= nn
	// Strongest isophote among known neighbours.
	var bestIx, bestIy, bestMag float64
	for dy := -1; dy <= 1; dy++ {
		qy := y + dy
		if qy < 0 || qy >= h {
			continue
		}
		gxRow := gx[qy*w : qy*w+w]
		gyRow := gy[qy*w : qy*w+w]
		for dx := -1; dx <= 1; dx++ {
			qx := x + dx
			// One range guard per slice lets the compiler drop both checks.
			if qx < 0 || qx >= len(gxRow) {
				continue
			}
			if qx < 0 || qx >= len(gyRow) {
				continue
			}
			if work.At(qx, qy) {
				continue
			}
			// Isophote = gradient rotated 90°.
			ix, iy := -gyRow[qx], gxRow[qx]
			mag := math.Hypot(ix, iy)
			if mag > bestMag {
				bestIx, bestIy, bestMag = ix, iy, mag
			}
		}
	}
	d := math.Abs(bestIx*nX+bestIy*nY) / 255
	if d < 1e-3 {
		d = 1e-3
	}
	return d
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// findSource searches for the fully known patch most similar (SSD over
// known target pixels) to the target patch within the search radius.
func findSource(out *img.Image, work *Mask, target geom.Rect, radius int, pool *par.Pool) (geom.Rect, bool) {
	w, h := out.W, out.H
	tw, th := target.Dx(), target.Dy()
	cx, cy := target.Center().X, target.Center().Y
	x0 := geom.Clamp(cx-radius, 0, w-tw)
	x1 := geom.Clamp(cx+radius, 0, w-tw)
	y0 := geom.Clamp(cy-radius, 0, h-th)
	y1 := geom.Clamp(cy+radius, 0, h-th)

	skip := func(dx, dy int) bool { //lint:allow hotescape one environment per search call, amortized over the whole row scan it parameterizes
		return work.At(target.Min.X+dx, target.Min.Y+dy)
	}

	// The SSD scan dominates inpainting cost. Source rows are scored on the
	// worker pool (reads only: image, mask) and reduced in row order with a
	// strict < comparison, which selects the same first-encountered minimum
	// as the serial row-major scan — ties cannot change the winner.
	type rowBest struct {
		ssd   float64
		rect  geom.Rect
		found bool
	}
	rows := par.MapPool(pool, y1-y0+1, 1, func(r int) rowBest {
		sy := y0 + r
		best := rowBest{ssd: math.Inf(1)}
		for sx := x0; sx <= x1; sx++ {
			if sx == target.Min.X && sy == target.Min.Y {
				continue
			}
			if !patchFullyKnown(work, sx, sy, tw, th) {
				continue
			}
			cand := geom.RectAt(sx, sy, tw, th)
			if ssd := img.SSD(out, target, out, cand, skip); ssd < best.ssd {
				best = rowBest{ssd: ssd, rect: cand, found: true}
			}
		}
		return best
	})
	bestSSD := math.Inf(1)
	var best geom.Rect
	found := false
	for _, r := range rows {
		if r.found && r.ssd < bestSSD {
			bestSSD = r.ssd
			best = r.rect
			found = true
		}
	}
	return best, found
}

func patchFullyKnown(work *Mask, x, y, w, h int) bool {
	for dy := 0; dy < h; dy++ {
		for dx := 0; dx < w; dx++ {
			if work.At(x+dx, y+dy) {
				return false
			}
		}
	}
	return true
}

// copyPatch copies unknown target pixels from the source patch and updates
// the bookkeeping.
func copyPatch(out *img.Image, work *Mask, conf []float64, target, src geom.Rect, cHere float64, remaining *int) {
	for dy := 0; dy < target.Dy(); dy++ {
		ty := target.Min.Y + dy
		crow := conf[ty*out.W+target.Min.X : ty*out.W+target.Max.X]
		for dx := range crow {
			tx := target.Min.X + dx
			if !work.At(tx, ty) {
				continue
			}
			out.Set(tx, ty, out.At(src.Min.X+dx, src.Min.Y+dy))
			work.Set(tx, ty, false)
			crow[dx] = cHere
			*remaining--
		}
	}
}

// fillWithNeighbourMean fills unknown target pixels with the mean of their
// known neighbours — the guaranteed-progress fallback.
func fillWithNeighbourMean(out *img.Image, work *Mask, conf []float64, target geom.Rect, cHere float64, remaining *int) {
	for dy := 0; dy < target.Dy(); dy++ {
		ty := target.Min.Y + dy
		crow := conf[ty*out.W+target.Min.X : ty*out.W+target.Max.X]
		for dx := range crow {
			tx := target.Min.X + dx
			if !work.At(tx, ty) || !onFront(work, tx, ty) {
				continue
			}
			out.Set(tx, ty, neighbourMean(out, work, tx, ty))
			work.Set(tx, ty, false)
			crow[dx] = cHere * 0.5
			*remaining--
		}
	}
}

// neighbourMean averages the known 8-neighbourhood of (x, y); if none is
// known it returns the current pixel.
func neighbourMean(out *img.Image, work *Mask, x, y int) img.RGB {
	var r, g, b, n int
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			qx, qy := x+dx, y+dy
			if qx < 0 || qy < 0 || qx >= out.W || qy >= out.H || work.At(qx, qy) {
				continue
			}
			c := out.At(qx, qy)
			r += int(c.R)
			g += int(c.G)
			b += int(c.B)
			n++
		}
	}
	if n == 0 {
		return out.At(x, y)
	}
	return img.RGB{R: uint8(r / n), G: uint8(g / n), B: uint8(b / n)}
}
