package inpaint

// Bit-identity checks for the hot-path rewrites in this package: each
// restructured function (row-sliced confidence/data terms, strided
// sampling, per-row median stacking, incremental pan integration) is
// compared against a naive reference with the pre-rewrite loop shape.
// Arithmetic order was preserved, so comparisons are exact.

import (
	"math"
	"testing"

	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/motio"
	"verro/internal/obs"
	"verro/internal/vid"
)

func lcgFrame(w, h int, seed uint64) *img.Image {
	m := img.New(w, h)
	s := seed
	for i := range m.Pix {
		s = s*6364136223846793005 + 1442695040888963407
		m.Pix[i] = uint8(s >> 56)
	}
	return m
}

func patchConfidenceRef(conf []float64, work *Mask, cx, cy, half, w, h int) float64 {
	var sum float64
	n := 0
	for dy := -half; dy <= half; dy++ {
		for dx := -half; dx <= half; dx++ {
			x, y := cx+dx, cy+dy
			if x < 0 || x >= w || y < 0 || y >= h {
				continue
			}
			sum += conf[y*w+x]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestPatchConfidenceEquiv(t *testing.T) {
	const w, h = 17, 13
	conf := make([]float64, w*h)
	s := uint64(42)
	for i := range conf {
		s = s*6364136223846793005 + 1442695040888963407
		conf[i] = float64(s>>56) / 255
	}
	work := NewMask(w, h)
	work.SetRect(geom.RectAt(5, 4, 6, 5), true)
	for _, half := range []int{0, 1, 3, 8} {
		for cy := -1; cy <= h; cy++ {
			for cx := -1; cx <= w; cx++ {
				got := patchConfidence(conf, work, cx, cy, half, w, h)
				want := patchConfidenceRef(conf, work, cx, cy, half, w, h)
				if got != want {
					t.Fatalf("patchConfidence(%d,%d,half=%d): got %v want %v", cx, cy, half, got, want)
				}
			}
		}
	}
}

func dataTermRef(gx, gy []float64, work *Mask, x, y, w, h int) float64 {
	nX := float64(b2i(work.At(x+1, y)) - b2i(work.At(x-1, y)))
	nY := float64(b2i(work.At(x, y+1)) - b2i(work.At(x, y-1)))
	nn := math.Hypot(nX, nY)
	if nn == 0 {
		return 1e-3
	}
	nX /= nn
	nY /= nn
	var bestIx, bestIy, bestMag float64
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			qx, qy := x+dx, y+dy
			if qx < 0 || qx >= w || qy < 0 || qy >= h {
				continue
			}
			if work.At(qx, qy) {
				continue
			}
			ix, iy := -gy[qy*w+qx], gx[qy*w+qx]
			mag := math.Hypot(ix, iy)
			if mag > bestMag {
				bestIx, bestIy, bestMag = ix, iy, mag
			}
		}
	}
	d := math.Abs(bestIx*nX+bestIy*nY) / 255
	if d < 1e-3 {
		d = 1e-3
	}
	return d
}

func TestDataTermEquiv(t *testing.T) {
	const w, h = 15, 11
	f := lcgFrame(w, h, 7)
	gx, gy := f.Gradients()
	work := NewMask(w, h)
	work.SetRect(geom.RectAt(4, 3, 5, 4), true)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			got := dataTerm(gx, gy, work, x, y, w, h)
			want := dataTermRef(gx, gy, work, x, y, w, h)
			if got != want {
				t.Fatalf("dataTerm(%d,%d): got %v want %v", x, y, got, want)
			}
		}
	}
}

func TestStrideEquiv(t *testing.T) {
	frames := make([]*img.Image, 11)
	for i := range frames {
		frames[i] = lcgFrame(4, 3, uint64(i))
	}
	for _, step := range []int{0, 1, 2, 3, 5, 20} {
		samples, indices := stride(frames, step)
		eff := step
		if eff < 1 {
			eff = 1
		}
		var wantIdx []int
		for k := range frames {
			if k%eff == 0 {
				wantIdx = append(wantIdx, k)
			}
		}
		if len(samples) != len(wantIdx) || len(indices) != len(wantIdx) {
			t.Fatalf("step %d: got %d samples, want %d", step, len(samples), len(wantIdx))
		}
		for i, k := range wantIdx {
			if indices[i] != k || samples[i] != frames[k] {
				t.Fatalf("step %d: sample %d is frame %d, want %d", step, i, indices[i], k)
			}
		}
	}
}

// staticBackgroundRef is the pre-rewrite per-pixel gather: At/Set-based
// value collection and median stacking in the same frame order.
func staticBackgroundRef(w, h int, samples []*img.Image, indices []int, tracks *motio.TrackSet) *img.Image {
	out := img.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var rs, gs, bs []uint8
			for i, f := range samples {
				if FrameMask(w, h, indices[i], tracks).At(x, y) {
					continue
				}
				c := f.At(x, y)
				rs = append(rs, c.R)
				gs = append(gs, c.G)
				bs = append(bs, c.B)
			}
			if len(rs) == 0 {
				continue // hole; references only compare no-hole setups
			}
			out.Set(x, y, img.RGB{R: medianU8(rs), G: medianU8(gs), B: medianU8(bs)})
		}
	}
	return out
}

func TestStaticBackgroundEquiv(t *testing.T) {
	const w, h = 24, 16
	samples := make([]*img.Image, 5)
	indices := make([]int, 5)
	for i := range samples {
		samples[i] = lcgFrame(w, h, uint64(100+i))
		indices[i] = i * 2
	}
	// A track that covers a region in some frames but never all of them,
	// so the median path is exercised without triggering inpainting.
	tr := motio.NewTrack(1, "pedestrian")
	tr.Set(0, geom.RectAt(2, 2, 6, 5))
	tr.Set(2, geom.RectAt(10, 4, 6, 5))
	tracks := motio.NewTrackSet()
	tracks.Add(tr)

	got, err := StaticBackgroundSamplesRT(w, h, samples, indices, tracks, DefaultConfig(), obs.Runtime{})
	if err != nil {
		t.Fatalf("StaticBackgroundSamplesRT: %v", err)
	}
	want := staticBackgroundRef(w, h, samples, indices, tracks)
	if !got.Equal(want) {
		t.Fatalf("static background differs from reference (%d pixels)", got.DiffCount(want))
	}
}

func estimatePanRef(v *vid.Video, maxShift int) []int {
	offsets := make([]int, v.Len())
	for k := 1; k < v.Len(); k++ {
		prev := ColumnProfile(v.Frame(k - 1))
		cur := ColumnProfile(v.Frame(k))
		offsets[k] = offsets[k-1] + BestShift(prev, cur, maxShift)
	}
	return offsets
}

func TestEstimatePanEquiv(t *testing.T) {
	const w, h = 40, 20
	v := vid.New("pan-equiv", w, h, 30)
	base := lcgFrame(w+30, h, 55)
	for k := 0; k < 6; k++ {
		f := img.New(w, h)
		f.Blit(base.SubImage(geom.RectAt(k*3, 0, w, h)), geom.Pt(0, 0))
		if err := v.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	got, err := EstimatePan(v, 8)
	if err != nil {
		t.Fatalf("EstimatePan: %v", err)
	}
	want := estimatePanRef(v, 8)
	if len(got) != len(want) {
		t.Fatalf("offsets len %d != %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("offset[%d]: got %d want %d", k, got[k], want[k])
		}
	}
}
