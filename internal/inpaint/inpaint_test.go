package inpaint

import (
	"testing"

	"verro/internal/geom"
	"verro/internal/img"
	"verro/internal/motio"
	"verro/internal/scene"
	"verro/internal/vid"
)

func TestMaskBasics(t *testing.T) {
	m := NewMask(10, 8)
	if m.Count() != 0 {
		t.Fatal("fresh mask should be empty")
	}
	m.SetRect(geom.RectAt(2, 2, 3, 2), true)
	if m.Count() != 6 {
		t.Fatalf("Count = %d", m.Count())
	}
	if !m.At(2, 2) || m.At(5, 2) {
		t.Fatal("SetRect wrong extent")
	}
	if m.At(-1, 0) || m.At(10, 0) {
		t.Fatal("out of bounds should read false")
	}
	m.Set(-5, -5, true) // must not panic
	c := m.Clone()
	c.Set(0, 0, true)
	if m.At(0, 0) {
		t.Fatal("clone aliases")
	}
}

func TestMaskDilate(t *testing.T) {
	m := NewMask(10, 10)
	m.Set(5, 5, true)
	d := m.Dilate(1)
	if d.Count() != 9 {
		t.Fatalf("dilated count = %d, want 9", d.Count())
	}
	if d.At(5, 5) != true || !d.At(4, 4) || !d.At(6, 6) {
		t.Fatal("dilation shape wrong")
	}
	same := m.Dilate(0)
	if same.Count() != 1 {
		t.Fatal("zero dilation should copy")
	}
}

func TestInpaintLeavesKnownPixelsUntouched(t *testing.T) {
	src := img.New(40, 30)
	src.VerticalGradient(img.RGB{R: 10, G: 40, B: 90}, img.RGB{R: 200, G: 180, B: 120})
	src.AddNoise(5, 3)
	mask := NewMask(40, 30)
	hole := geom.RectAt(15, 10, 8, 8)
	mask.SetRect(hole, true)

	out, err := Inpaint(src, mask, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 30; y++ {
		for x := 0; x < 40; x++ {
			if mask.At(x, y) {
				continue
			}
			if out.At(x, y) != src.At(x, y) {
				t.Fatalf("known pixel (%d,%d) modified", x, y)
			}
		}
	}
}

func TestInpaintFillsPlausibly(t *testing.T) {
	// Uniform-texture background: the filled hole should be close to the
	// surrounding color.
	base := img.NewFilled(40, 30, img.RGB{R: 120, G: 140, B: 100})
	base.AddNoise(4, 9)
	mask := NewMask(40, 30)
	hole := geom.RectAt(16, 10, 8, 8)
	// Paint the hole area with an "object" first.
	src := base.Clone()
	src.Fill(hole, img.RGB{R: 255, G: 0, B: 0})
	mask.SetRect(hole, true)

	out, err := Inpaint(src, mask, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every filled pixel should now be near the background, not red.
	for y := hole.Min.Y; y < hole.Max.Y; y++ {
		for x := hole.Min.X; x < hole.Max.X; x++ {
			c := out.At(x, y)
			if c.R > 200 && c.G < 60 {
				t.Fatalf("red object pixel survived at (%d,%d): %v", x, y, c)
			}
		}
	}
	// Mean abs diff against the clean background must be small.
	if d := out.MeanAbsDiff(base); d > 12 {
		t.Fatalf("reconstruction error %v too high", d)
	}
}

func TestInpaintStructurePropagation(t *testing.T) {
	// A strong vertical edge through the hole should survive inpainting
	// roughly (Criminisi's selling point).
	src := img.New(40, 40)
	for y := 0; y < 40; y++ {
		for x := 0; x < 40; x++ {
			c := img.RGB{R: 40, G: 40, B: 40}
			if x >= 20 {
				c = img.RGB{R: 220, G: 220, B: 220}
			}
			src.Set(x, y, c)
		}
	}
	mask := NewMask(40, 40)
	mask.SetRect(geom.RectAt(14, 15, 12, 10), true)
	out, err := Inpaint(src, mask, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Left side of the hole should stay dark, right side bright.
	dark := out.At(15, 20)
	bright := out.At(24, 20)
	if dark.R > 130 {
		t.Fatalf("left of edge became bright: %v", dark)
	}
	if bright.R < 130 {
		t.Fatalf("right of edge became dark: %v", bright)
	}
}

func TestInpaintValidation(t *testing.T) {
	src := img.New(10, 10)
	if _, err := Inpaint(src, NewMask(5, 5), DefaultConfig()); err == nil {
		t.Fatal("mask size mismatch should fail")
	}
	full := NewMask(10, 10)
	full.SetRect(geom.RectAt(0, 0, 10, 10), true)
	if _, err := Inpaint(src, full, DefaultConfig()); err == nil {
		t.Fatal("fully masked image should fail")
	}
	// Empty mask: identity.
	out, err := Inpaint(src, NewMask(10, 10), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(src) {
		t.Fatal("empty mask should be identity")
	}
}

func TestFrameMask(t *testing.T) {
	set := motio.NewTrackSet()
	tr := motio.NewTrack(1, "pedestrian")
	tr.Set(3, geom.RectAt(5, 5, 4, 6))
	set.Add(tr)
	m := FrameMask(20, 20, 3, set)
	if m.Count() == 0 {
		t.Fatal("mask empty where object present")
	}
	if !m.At(4, 4) { // dilated by 2 — but (4,4) is 1 off the corner
		t.Fatal("dilation missing")
	}
	empty := FrameMask(20, 20, 0, set)
	if empty.Count() != 0 {
		t.Fatal("no objects in frame 0")
	}
}

func TestStaticBackgroundRecoversScene(t *testing.T) {
	p := scene.Preset{
		Name: "bg-test", W: 96, H: 72, Frames: 36, Objects: 4,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 61,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := StaticBackground(g.Video, g.Truth, 2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The clean background is constant for static presets.
	if d := bg.MeanAbsDiff(g.CleanBackground[0]); d > 6 {
		t.Fatalf("background reconstruction error %v", d)
	}
}

func TestStaticBackgroundEmptyVideo(t *testing.T) {
	v := vid.New("e", 8, 8, 30)
	if _, err := StaticBackground(v, motio.NewTrackSet(), 1, DefaultConfig()); err == nil {
		t.Fatal("empty video should fail")
	}
}

func TestEstimatePan(t *testing.T) {
	// Build a panning video over a textured panorama with known offsets.
	pano := scene.PaintBackground(scene.StyleStreet, 200, 60, 5)
	v := vid.New("pan", 100, 60, 30)
	want := []int{0, 2, 5, 9, 14, 20, 27, 35, 44, 54}
	for _, off := range want {
		if err := v.Append(scene.ViewportAt(pano, 100, 60, off)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := EstimatePan(v, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := got[i] - want[i]; d < -2 || d > 2 {
			t.Fatalf("offset %d = %d, want ~%d", i, got[i], want[i])
		}
	}
}

func TestMovingBackgroundRoundTrip(t *testing.T) {
	p := scene.Preset{
		Name: "mv-bg", W: 96, H: 72, Frames: 30, Objects: 3,
		FPS: 30, Moving: true, PanRange: 40,
		Style: scene.StyleStreet, Class: scene.Pedestrian, Seed: 71,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := BuildMovingBackground(g.Video, g.Truth, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(mb.Offsets) != g.Video.Len() {
		t.Fatalf("offsets len %d", len(mb.Offsets))
	}
	if mb.Panorama.W < g.Video.W {
		t.Fatal("panorama narrower than viewport")
	}
	for _, k := range []int{0, 15, 29} {
		bg, err := mb.FrameBackground(k)
		if err != nil {
			t.Fatal(err)
		}
		if bg.W != 96 || bg.H != 72 {
			t.Fatalf("background dims %dx%d", bg.W, bg.H)
		}
		// Should be much closer to the clean background than to a random
		// frame full of sprites.
		if d := bg.MeanAbsDiff(g.CleanBackground[k]); d > 20 {
			t.Fatalf("frame %d: background error %v", k, d)
		}
	}
	if _, err := mb.FrameBackground(-1); err == nil {
		t.Fatal("negative frame should fail")
	}
	if got := mb.SortedOffsets(); len(got) == 0 {
		t.Fatal("no offsets")
	}
}

func TestExtractScenesPicksModel(t *testing.T) {
	p := scene.Preset{
		Name: "sc", W: 64, H: 48, Frames: 12, Objects: 2,
		FPS: 30, Style: scene.StyleSquare, Class: scene.Pedestrian, Seed: 81,
	}
	g, err := scene.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ExtractScenes(g.Video, g.Truth, 1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b0, err := s.Background(0)
	if err != nil {
		t.Fatal(err)
	}
	b5, err := s.Background(5)
	if err != nil {
		t.Fatal(err)
	}
	if !b0.Equal(b5) {
		t.Fatal("static scenes should be frame-invariant")
	}
}
