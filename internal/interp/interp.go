// Package interp implements the trajectory interpolation methods used in
// VERRO's Phase II (paper Section 4.2): Lagrange polynomial interpolation
// over the coordinates randomly assigned at key frames, plus the
// piecewise-linear and nearest-neighbour alternatives the paper cites, and
// the head/end border-extension rule that decides in which frames an object
// exists at all.
package interp

import (
	"errors"
	"fmt"
	"sort"

	"verro/internal/geom"
)

// ErrInput reports unusable control points.
var ErrInput = errors.New("interp: invalid control points")

// Sample is a known trajectory position: the object's center at a frame.
type Sample struct {
	Frame int
	Pos   geom.Vec
}

// sortSamples orders samples by frame and rejects duplicates.
func sortSamples(samples []Sample) ([]Sample, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("%w: no samples", ErrInput)
	}
	out := append([]Sample(nil), samples...)
	sort.Slice(out, func(i, j int) bool { return out[i].Frame < out[j].Frame })
	for i := 1; i < len(out); i++ {
		if out[i].Frame == out[i-1].Frame {
			return nil, fmt.Errorf("%w: duplicate frame %d", ErrInput, out[i].Frame)
		}
	}
	return out, nil
}

// Lagrange evaluates the Lagrange interpolating polynomial through the
// samples at frame t (x and y interpolated independently). With a single
// sample the trajectory is constant.
func Lagrange(samples []Sample, t float64) (geom.Vec, error) {
	s, err := sortSamples(samples)
	if err != nil {
		return geom.Vec{}, err
	}
	if len(s) == 1 {
		return s[0].Pos, nil
	}
	var out geom.Vec
	for i := range s {
		li := 1.0
		xi := float64(s[i].Frame)
		for j := range s {
			if j == i {
				continue
			}
			xj := float64(s[j].Frame)
			li *= (t - xj) / (xi - xj)
		}
		out.X += li * s[i].Pos.X
		out.Y += li * s[i].Pos.Y
	}
	return out, nil
}

// Linear evaluates piecewise-linear interpolation through the samples at
// frame t, clamping to the end positions outside the sample span.
func Linear(samples []Sample, t float64) (geom.Vec, error) {
	s, err := sortSamples(samples)
	if err != nil {
		return geom.Vec{}, err
	}
	if t <= float64(s[0].Frame) {
		return s[0].Pos, nil
	}
	if t >= float64(s[len(s)-1].Frame) {
		return s[len(s)-1].Pos, nil
	}
	// Find the bracketing pair.
	hi := sort.Search(len(s), func(i int) bool { return float64(s[i].Frame) >= t })
	lo := hi - 1
	span := float64(s[hi].Frame - s[lo].Frame)
	u := (t - float64(s[lo].Frame)) / span
	return s[lo].Pos.Lerp(s[hi].Pos, u), nil
}

// Nearest evaluates nearest-neighbour interpolation at frame t.
func Nearest(samples []Sample, t float64) (geom.Vec, error) {
	s, err := sortSamples(samples)
	if err != nil {
		return geom.Vec{}, err
	}
	best := s[0]
	bestD := absF(t - float64(s[0].Frame))
	for _, smp := range s[1:] {
		d := absF(t - float64(smp.Frame))
		if d < bestD {
			best, bestD = smp, d
		}
	}
	return best.Pos, nil
}

// Method selects an interpolation scheme.
type Method int

// Interpolation methods.
const (
	MethodLagrange Method = iota
	MethodLinear
	MethodNearest
	// MethodHybrid uses Lagrange when few control points are available and
	// falls back to piecewise-linear with many, avoiding Runge oscillation on
	// long tracks while matching the paper's choice on short ones.
	MethodHybrid
)

// HybridCutoff is the number of control points above which MethodHybrid
// switches from Lagrange to piecewise-linear. Exported so Phase II can apply
// the same rule when it detects Runge blowup on a Lagrange trajectory.
const HybridCutoff = 5

// Eval evaluates the chosen method at frame t.
func Eval(m Method, samples []Sample, t float64) (geom.Vec, error) {
	switch m {
	case MethodLagrange:
		return Lagrange(samples, t)
	case MethodLinear:
		return Linear(samples, t)
	case MethodNearest:
		return Nearest(samples, t)
	case MethodHybrid:
		if len(samples) <= HybridCutoff {
			return Lagrange(samples, t)
		}
		return Linear(samples, t)
	default:
		return geom.Vec{}, fmt.Errorf("%w: unknown method %d", ErrInput, m)
	}
}

// Trajectory densifies the samples into a per-frame trajectory over
// [firstFrame, lastFrame] inclusive, evaluated with method m and clamped to
// bounds. The result has one position per frame.
func Trajectory(m Method, samples []Sample, firstFrame, lastFrame int, bounds geom.Rect) (geom.Polyline, error) {
	if lastFrame < firstFrame {
		return nil, fmt.Errorf("%w: frame span [%d,%d]", ErrInput, firstFrame, lastFrame)
	}
	out := make(geom.Polyline, 0, lastFrame-firstFrame+1)
	for k := firstFrame; k <= lastFrame; k++ {
		v, err := Eval(m, samples, float64(k))
		if err != nil {
			return nil, err
		}
		if !bounds.Empty() {
			v.X = geom.ClampF(v.X, float64(bounds.Min.X), float64(bounds.Max.X-1))
			v.Y = geom.ClampF(v.Y, float64(bounds.Min.Y), float64(bounds.Max.Y-1))
		}
		out = append(out, v)
	}
	return out, nil
}

// ExtendToBorder implements the paper's head/end rule (Section 4.2): the
// interpolated trajectory is extended before its first and after its last
// control point along the local direction until the position reaches the
// border of bounds or the frame range [0, m) is exhausted. maxExtend, when
// positive, additionally caps the head and tail extension lengths (in
// frames) — objects whose terminal velocity is low would otherwise linger
// on screen far beyond their evidence. It returns the frames (relative to
// the full video) and positions of the extended trajectory, including the
// interpolated middle part.
func ExtendToBorder(m Method, samples []Sample, numFrames int, bounds geom.Rect, maxExtend int) (frames []int, pos geom.Polyline, err error) {
	s, err := sortSamples(samples)
	if err != nil {
		return nil, nil, err
	}
	first, last := s[0].Frame, s[len(s)-1].Frame
	if first < 0 || last >= numFrames {
		return nil, nil, fmt.Errorf("%w: control frames outside video [0,%d)", ErrInput, numFrames)
	}

	// The middle section is deliberately NOT clamped to bounds: positions
	// that interpolate outside the frame are returned as-is so the caller
	// can suppress them (paper Section 6.3 — out-of-frame objects are
	// suppressed in Phase II rather than dragged back on screen).
	middle, err := Trajectory(m, s, first, last, geom.Rect{})
	if err != nil {
		return nil, nil, err
	}

	// Head: walk backwards with the initial velocity until out of bounds or
	// the extension cap is hit.
	var headFrames []int
	var headPos geom.Polyline
	vel := headVelocity(middle)
	p := middle[0]
	for k := first - 1; k >= 0; k-- {
		if maxExtend > 0 && len(headFrames) >= maxExtend {
			break
		}
		p = p.Sub(vel)
		if !p.Round().In(bounds) {
			break
		}
		headFrames = append(headFrames, k)
		headPos = append(headPos, p)
	}
	reverseInts(headFrames)
	reversePoly(headPos)

	// End: walk forward with the final velocity until out of bounds or the
	// extension cap is hit.
	var tailFrames []int
	var tailPos geom.Polyline
	vel = tailVelocity(middle)
	p = middle[len(middle)-1]
	for k := last + 1; k < numFrames; k++ {
		if maxExtend > 0 && len(tailFrames) >= maxExtend {
			break
		}
		p = p.Add(vel)
		if !p.Round().In(bounds) {
			break
		}
		tailFrames = append(tailFrames, k)
		tailPos = append(tailPos, p)
	}

	frames = append(frames, headFrames...)
	for k := first; k <= last; k++ {
		frames = append(frames, k)
	}
	frames = append(frames, tailFrames...)
	pos = append(pos, headPos...)
	pos = append(pos, middle...)
	pos = append(pos, tailPos...)
	return frames, pos, nil
}

// headVelocity estimates the per-frame velocity at the start of a dense
// trajectory; zero for constant trajectories, which terminates extension
// immediately via the border check only if already outside — so we give a
// small default downward-right drift to guarantee termination.
func headVelocity(p geom.Polyline) geom.Vec {
	if len(p) >= 2 {
		v := p[1].Sub(p[0])
		if v.Norm() > 1e-9 {
			return v
		}
	}
	return geom.V(1, 0)
}

func tailVelocity(p geom.Polyline) geom.Vec {
	if len(p) >= 2 {
		v := p[len(p)-1].Sub(p[len(p)-2])
		if v.Norm() > 1e-9 {
			return v
		}
	}
	return geom.V(1, 0)
}

func reverseInts(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

func reversePoly(xs geom.Polyline) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
