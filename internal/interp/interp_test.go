package interp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"verro/internal/geom"
)

func TestLagrangePassesThroughControlPoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		samples := make([]Sample, n)
		used := map[int]bool{}
		for i := range samples {
			fr := rng.Intn(100)
			for used[fr] {
				fr = rng.Intn(100)
			}
			used[fr] = true
			samples[i] = Sample{Frame: fr, Pos: geom.V(rng.Float64()*100, rng.Float64()*100)}
		}
		for _, s := range samples {
			got, err := Lagrange(samples, float64(s.Frame))
			if err != nil {
				return false
			}
			if got.Dist(s.Pos) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLagrangeLinearCase(t *testing.T) {
	// Two points define a line; the midpoint must be the average.
	samples := []Sample{
		{Frame: 0, Pos: geom.V(0, 0)},
		{Frame: 10, Pos: geom.V(10, 20)},
	}
	got, err := Lagrange(samples, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(geom.V(5, 10)) > 1e-9 {
		t.Fatalf("midpoint = %v", got)
	}
}

func TestLagrangeSinglePointIsConstant(t *testing.T) {
	samples := []Sample{{Frame: 3, Pos: geom.V(7, 8)}}
	for _, tt := range []float64{0, 3, 100} {
		got, err := Lagrange(samples, tt)
		if err != nil {
			t.Fatal(err)
		}
		if got != geom.V(7, 8) {
			t.Fatalf("t=%v: %v", tt, got)
		}
	}
}

func TestDuplicateFramesRejected(t *testing.T) {
	samples := []Sample{
		{Frame: 1, Pos: geom.V(0, 0)},
		{Frame: 1, Pos: geom.V(5, 5)},
	}
	if _, err := Lagrange(samples, 0); err == nil {
		t.Fatal("duplicate frames should be rejected")
	}
	if _, err := Linear(samples, 0); err == nil {
		t.Fatal("duplicate frames should be rejected by Linear too")
	}
	if _, err := Lagrange(nil, 0); err == nil {
		t.Fatal("empty samples should fail")
	}
}

func TestLinearInterpolation(t *testing.T) {
	samples := []Sample{
		{Frame: 0, Pos: geom.V(0, 0)},
		{Frame: 4, Pos: geom.V(4, 0)},
		{Frame: 8, Pos: geom.V(4, 8)},
	}
	cases := []struct {
		t    float64
		want geom.Vec
	}{
		{-5, geom.V(0, 0)}, // clamped before
		{0, geom.V(0, 0)},
		{2, geom.V(2, 0)},
		{4, geom.V(4, 0)},
		{6, geom.V(4, 4)},
		{8, geom.V(4, 8)},
		{99, geom.V(4, 8)}, // clamped after
	}
	for _, c := range cases {
		got, err := Linear(samples, c.t)
		if err != nil {
			t.Fatal(err)
		}
		if got.Dist(c.want) > 1e-9 {
			t.Fatalf("Linear(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestNearest(t *testing.T) {
	samples := []Sample{
		{Frame: 0, Pos: geom.V(0, 0)},
		{Frame: 10, Pos: geom.V(10, 10)},
	}
	got, _ := Nearest(samples, 4)
	if got != geom.V(0, 0) {
		t.Fatalf("Nearest(4) = %v", got)
	}
	got, _ = Nearest(samples, 6)
	if got != geom.V(10, 10) {
		t.Fatalf("Nearest(6) = %v", got)
	}
}

func TestEvalMethods(t *testing.T) {
	samples := []Sample{
		{Frame: 0, Pos: geom.V(0, 0)},
		{Frame: 2, Pos: geom.V(2, 2)},
	}
	for _, m := range []Method{MethodLagrange, MethodLinear, MethodNearest, MethodHybrid} {
		if _, err := Eval(m, samples, 1); err != nil {
			t.Fatalf("method %d: %v", m, err)
		}
	}
	if _, err := Eval(Method(42), samples, 1); err == nil {
		t.Fatal("unknown method should fail")
	}
}

func TestHybridSwitchesToLinear(t *testing.T) {
	// Many oscillating control points make pure Lagrange explode (Runge);
	// hybrid must stay bounded between control values.
	var samples []Sample
	for i := 0; i <= 10; i++ {
		y := 0.0
		if i%2 == 1 {
			y = 10
		}
		samples = append(samples, Sample{Frame: i * 10, Pos: geom.V(float64(i*10), y)})
	}
	got, err := Eval(MethodHybrid, samples, 55)
	if err != nil {
		t.Fatal(err)
	}
	if got.Y < -1e-9 || got.Y > 10+1e-9 {
		t.Fatalf("hybrid should interpolate within range: %v", got)
	}
}

func TestTrajectoryClampsToBounds(t *testing.T) {
	samples := []Sample{
		{Frame: 0, Pos: geom.V(-100, 5)},
		{Frame: 4, Pos: geom.V(100, 5)},
	}
	bounds := geom.R(0, 0, 50, 50)
	traj, err := Trajectory(MethodLinear, samples, 0, 4, bounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 5 {
		t.Fatalf("len = %d", len(traj))
	}
	for i, p := range traj {
		if p.X < 0 || p.X > 49 || p.Y < 0 || p.Y > 49 {
			t.Fatalf("frame %d: %v outside bounds", i, p)
		}
	}
}

func TestTrajectoryBadSpan(t *testing.T) {
	samples := []Sample{{Frame: 0, Pos: geom.V(0, 0)}}
	if _, err := Trajectory(MethodLinear, samples, 5, 2, geom.Rect{}); err == nil {
		t.Fatal("inverted span should fail")
	}
}

func TestExtendToBorder(t *testing.T) {
	bounds := geom.R(0, 0, 100, 100)
	// Object moving right at 2 px/frame, known at frames 10 and 20.
	samples := []Sample{
		{Frame: 10, Pos: geom.V(40, 50)},
		{Frame: 20, Pos: geom.V(60, 50)},
	}
	frames, pos, err := ExtendToBorder(MethodLinear, samples, 100, bounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(pos) {
		t.Fatalf("lengths differ: %d vs %d", len(frames), len(pos))
	}
	// Head: from x=40 backwards at 2/frame, reaches x<0 after 20 frames, so
	// the head should start around frame 10-20=-10 → clipped to 0... In
	// frames: it extends while in bounds, i.e. x≥0 → 20 extra frames max but
	// limited by frame 0. First frame must be ≤ 10 and ≥ 0.
	if frames[0] > 10 || frames[0] < 0 {
		t.Fatalf("head starts at %d", frames[0])
	}
	// Tail: from x=60 at +2/frame, exits at x≥100 after 20 frames → last
	// frame ≈ 39.
	last := frames[len(frames)-1]
	if last < 21 || last > 45 {
		t.Fatalf("tail ends at %d", last)
	}
	// Frames must be contiguous.
	for i := 1; i < len(frames); i++ {
		if frames[i] != frames[i-1]+1 {
			t.Fatalf("frames not contiguous at %d: %v", i, frames[i-1:i+1])
		}
	}
	// All positions in bounds.
	for i, p := range pos {
		if !p.Round().In(bounds) {
			t.Fatalf("position %d = %v outside bounds", i, p)
		}
	}
}

func TestExtendToBorderStationaryObjectTerminates(t *testing.T) {
	bounds := geom.R(0, 0, 50, 50)
	samples := []Sample{
		{Frame: 5, Pos: geom.V(25, 25)},
		{Frame: 10, Pos: geom.V(25, 25)},
	}
	frames, _, err := ExtendToBorder(MethodLinear, samples, 1000, bounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) > 1000 {
		t.Fatal("extension must terminate")
	}
}

func TestExtendToBorderRejectsOutOfRangeControls(t *testing.T) {
	samples := []Sample{{Frame: 50, Pos: geom.V(0, 0)}}
	if _, _, err := ExtendToBorder(MethodLinear, samples, 10, geom.R(0, 0, 5, 5), 0); err == nil {
		t.Fatal("control frame beyond video should fail")
	}
}

func TestLagrangeQuadratic(t *testing.T) {
	// y = t² through 3 points must be exact everywhere.
	samples := []Sample{
		{Frame: 0, Pos: geom.V(0, 0)},
		{Frame: 1, Pos: geom.V(1, 1)},
		{Frame: 2, Pos: geom.V(2, 4)},
	}
	got, err := Lagrange(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Y-9) > 1e-9 || math.Abs(got.X-3) > 1e-9 {
		t.Fatalf("extrapolated quadratic = %v, want (3,9)", got)
	}
}
