// Package kalman implements the constant-velocity Kalman filter used by the
// SORT-style tracker. The state is the bounding-box parameterization of the
// SORT paper: (cx, cy, s, r, vcx, vcy, vs) where cx, cy is the box center,
// s its area, r its aspect ratio (assumed constant), and v* the velocities.
package kalman

import (
	"math"

	"verro/internal/geom"
)

const (
	dim  = 7 // state dimension
	mdim = 4 // measurement dimension (cx, cy, s, r)
)

// Filter is a Kalman filter specialized to the SORT box state.
type Filter struct {
	x [dim]float64      // state mean
	p [dim][dim]float64 // state covariance
}

// measurement noise and process noise scales, in the spirit of the SORT
// reference implementation.
const (
	posStd    = 1.0
	sizeStd   = 10.0
	ratioStd  = 0.01
	velStd    = 10.0
	processQ  = 0.01
	processQs = 1e-4
)

// boxToMeasurement converts a rectangle to (cx, cy, s, r).
func boxToMeasurement(b geom.Rect) [mdim]float64 {
	w := float64(b.Dx())
	h := float64(b.Dy())
	if h <= 0 {
		h = 1
	}
	if w <= 0 {
		w = 1
	}
	c := b.CenterVec()
	return [mdim]float64{c.X, c.Y, w * h, w / h}
}

// measurementToBox converts (cx, cy, s, r) back to a rectangle.
func measurementToBox(z [mdim]float64) geom.Rect {
	s := math.Max(z[2], 1)
	r := math.Max(z[3], 1e-3)
	w := math.Sqrt(s * r)
	h := s / w
	x0 := int(math.Round(z[0] - w/2))
	y0 := int(math.Round(z[1] - h/2))
	return geom.RectAt(x0, y0, int(math.Round(w)), int(math.Round(h)))
}

// New initializes a filter from the first observed box with high velocity
// uncertainty.
func New(b geom.Rect) *Filter {
	f := &Filter{}
	z := boxToMeasurement(b)
	for i := 0; i < mdim; i++ {
		f.x[i] = z[i]
	}
	// Initial covariance: confident in position, uncertain in velocity.
	diag := [dim]float64{
		posStd * posStd, posStd * posStd, sizeStd * sizeStd, ratioStd * ratioStd,
		velStd * velStd, velStd * velStd, velStd * velStd,
	}
	for i := 0; i < dim; i++ {
		f.p[i][i] = diag[i]
	}
	return f
}

// Predict advances the state by one frame and returns the predicted box.
func (f *Filter) Predict() geom.Rect {
	// Guard against negative predicted area.
	if f.x[2]+f.x[6] <= 0 {
		f.x[6] = 0
	}
	// x' = F x with F the constant-velocity transition.
	f.x[0] += f.x[4]
	f.x[1] += f.x[5]
	f.x[2] += f.x[6]

	// P' = F P Fᵀ + Q, exploiting F's sparsity: rows 0..2 gain the coupled
	// velocity terms.
	var p2 [dim][dim]float64
	couple := [dim]int{4, 5, 6, -1, -1, -1, -1}
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			v := f.p[i][j]
			if ci := couple[i]; ci >= 0 {
				v += f.p[ci][j]
			}
			if cj := couple[j]; cj >= 0 {
				v += f.p[i][cj]
				if ci := couple[i]; ci >= 0 {
					v += f.p[ci][cj]
				}
			}
			p2[i][j] = v
		}
	}
	f.p = p2
	for i := 0; i < dim; i++ {
		q := processQ
		if i == 6 {
			q = processQs
		}
		f.p[i][i] += q
	}
	return f.Box()
}

// Update fuses a new measurement (an observed box) into the state.
func (f *Filter) Update(b geom.Rect) {
	z := boxToMeasurement(b)
	// Innovation y = z − Hx (H selects the first four components).
	var y [mdim]float64
	for i := 0; i < mdim; i++ {
		y[i] = z[i] - f.x[i]
	}
	// S = HPHᵀ + R is the top-left 4×4 block of P plus R.
	r := [mdim]float64{posStd * posStd, posStd * posStd, sizeStd * sizeStd, ratioStd * ratioStd}
	var s [mdim][mdim]float64
	for i := 0; i < mdim; i++ {
		for j := 0; j < mdim; j++ {
			s[i][j] = f.p[i][j]
		}
		s[i][i] += r[i]
	}
	sinv, ok := invert4(s)
	if !ok {
		return // singular innovation covariance: skip the update
	}
	// K = P Hᵀ S⁻¹ is dim×mdim using the first four columns of P.
	var k [dim][mdim]float64
	for i := 0; i < dim; i++ {
		for j := 0; j < mdim; j++ {
			var sum float64
			for l := 0; l < mdim; l++ {
				sum += f.p[i][l] * sinv[l][j]
			}
			k[i][j] = sum
		}
	}
	// x = x + K y
	for i := 0; i < dim; i++ {
		var sum float64
		for j := 0; j < mdim; j++ {
			sum += k[i][j] * y[j]
		}
		f.x[i] += sum
	}
	// P = (I − K H) P; KH affects only the first four columns of the factor.
	var p2 [dim][dim]float64
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			v := f.p[i][j]
			for l := 0; l < mdim; l++ {
				v -= k[i][l] * f.p[l][j]
			}
			p2[i][j] = v
		}
	}
	f.p = p2
}

// Box returns the current state as a rectangle.
func (f *Filter) Box() geom.Rect {
	return measurementToBox([mdim]float64{f.x[0], f.x[1], f.x[2], f.x[3]})
}

// Center returns the current state center.
func (f *Filter) Center() geom.Vec { return geom.V(f.x[0], f.x[1]) }

// Velocity returns the estimated center velocity in pixels per frame.
func (f *Filter) Velocity() geom.Vec { return geom.V(f.x[4], f.x[5]) }

// invert4 inverts a 4×4 matrix by Gauss-Jordan elimination with partial
// pivoting; ok is false when the matrix is singular.
func invert4(a [mdim][mdim]float64) (inv [mdim][mdim]float64, ok bool) {
	var aug [mdim][2 * mdim]float64
	for i := 0; i < mdim; i++ {
		for j := 0; j < mdim; j++ {
			aug[i][j] = a[i][j]
		}
		aug[i][mdim+i] = 1
	}
	for col := 0; col < mdim; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < mdim; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aug[pivot][col]) < 1e-12 {
			return inv, false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		p := aug[col][col]
		for j := 0; j < 2*mdim; j++ {
			aug[col][j] /= p
		}
		for r := 0; r < mdim; r++ {
			if r == col {
				continue
			}
			factor := aug[r][col]
			if factor == 0 {
				continue
			}
			for j := 0; j < 2*mdim; j++ {
				aug[r][j] -= factor * aug[col][j]
			}
		}
	}
	for i := 0; i < mdim; i++ {
		for j := 0; j < mdim; j++ {
			inv[i][j] = aug[i][mdim+j]
		}
	}
	return inv, true
}
