package kalman

import (
	"math"
	"testing"

	"verro/internal/geom"
)

func TestNewReproducesBox(t *testing.T) {
	b := geom.RectAt(100, 50, 20, 40)
	f := New(b)
	got := f.Box()
	if got.Center().Sub(b.Center()).X > 1 || got.Center().Sub(b.Center()).Y > 1 {
		t.Fatalf("initial center %v, want %v", got.Center(), b.Center())
	}
	if absI(got.Dx()-b.Dx()) > 1 || absI(got.Dy()-b.Dy()) > 1 {
		t.Fatalf("initial size %dx%d, want %dx%d", got.Dx(), got.Dy(), b.Dx(), b.Dy())
	}
}

func absI(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestTracksConstantVelocity(t *testing.T) {
	// Object moving right at 3 px/frame. After a few updates the filter's
	// prediction should land near the true next position.
	f := New(geom.RectAt(0, 100, 10, 20))
	for k := 1; k <= 20; k++ {
		f.Predict()
		f.Update(geom.RectAt(3*k, 100, 10, 20))
	}
	pred := f.Predict() // frame 21
	trueBox := geom.RectAt(63, 100, 10, 20)
	c1, c2 := pred.CenterVec(), trueBox.CenterVec()
	if c1.Dist(c2) > 3 {
		t.Fatalf("prediction center %v too far from truth %v", c1, c2)
	}
	v := f.Velocity()
	if math.Abs(v.X-3) > 0.5 || math.Abs(v.Y) > 0.5 {
		t.Fatalf("velocity = %v, want ~(3,0)", v)
	}
}

func TestStationaryObjectStaysPut(t *testing.T) {
	b := geom.RectAt(50, 50, 12, 24)
	f := New(b)
	for k := 0; k < 10; k++ {
		f.Predict()
		f.Update(b)
	}
	got := f.Predict()
	if got.CenterVec().Dist(b.CenterVec()) > 2 {
		t.Fatalf("stationary object drifted: %v vs %v", got.Center(), b.Center())
	}
}

func TestUpdatePullsTowardsMeasurement(t *testing.T) {
	f := New(geom.RectAt(0, 0, 10, 10))
	before := f.Center()
	f.Predict()
	f.Update(geom.RectAt(40, 40, 10, 10))
	after := f.Center()
	target := geom.V(45, 45)
	if after.Dist(target) >= before.Dist(target) {
		t.Fatal("update did not move the state towards the measurement")
	}
}

func TestPredictWithoutUpdateCoasts(t *testing.T) {
	f := New(geom.RectAt(10, 10, 8, 16))
	// Teach it a velocity.
	for k := 1; k <= 10; k++ {
		f.Predict()
		f.Update(geom.RectAt(10+5*k, 10, 8, 16))
	}
	// Coast 5 frames without measurements: center should keep moving right.
	prevX := f.Center().X
	for k := 0; k < 5; k++ {
		f.Predict()
		x := f.Center().X
		if x <= prevX {
			t.Fatalf("coasting should continue rightward: %v -> %v", prevX, x)
		}
		prevX = x
	}
}

func TestDegenerateBoxesDoNotPanic(t *testing.T) {
	f := New(geom.RectAt(0, 0, 0, 0)) // zero-size box
	f.Predict()
	f.Update(geom.RectAt(5, 5, 0, 0))
	b := f.Box()
	if b.Dx() < 0 || b.Dy() < 0 {
		t.Fatalf("negative box: %v", b)
	}
}

func TestAreaNeverGoesNegative(t *testing.T) {
	// Shrinking object: area velocity becomes negative; prediction must
	// clamp rather than produce NaN boxes.
	f := New(geom.RectAt(0, 0, 40, 40))
	for k := 0; k < 12; k++ {
		f.Predict()
		s := 40 - 3*k
		if s < 2 {
			s = 2
		}
		f.Update(geom.RectAt(0, 0, s, s))
	}
	for k := 0; k < 30; k++ {
		b := f.Predict()
		if b.Dx() < 0 || b.Dy() < 0 {
			t.Fatalf("invalid predicted box %v", b)
		}
		if math.IsNaN(f.Center().X) {
			t.Fatal("NaN state")
		}
	}
}

func TestInvert4(t *testing.T) {
	a := [4][4]float64{
		{4, 0, 0, 0},
		{0, 2, 1, 0},
		{0, 1, 2, 0},
		{0, 0, 0, 1},
	}
	inv, ok := invert4(a)
	if !ok {
		t.Fatal("invertible matrix reported singular")
	}
	// Check A·A⁻¹ = I.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var sum float64
			for l := 0; l < 4; l++ {
				sum += a[i][l] * inv[l][j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(sum-want) > 1e-9 {
				t.Fatalf("A·inv at (%d,%d) = %v", i, j, sum)
			}
		}
	}
	var singular [4][4]float64
	if _, ok := invert4(singular); ok {
		t.Fatal("zero matrix should be singular")
	}
}
