package keyframe

import (
	"fmt"

	"verro/internal/vid"
)

// ExtractBoundary is the shot-boundary alternative the paper cites [19]
// before settling on clustering: a new segment starts wherever the mean
// absolute pixel difference between consecutive frames exceeds a
// threshold, and each segment's middle frame becomes its key frame. It is
// kept as an ablation baseline for Algorithm 2.
type BoundaryConfig struct {
	// Threshold is the mean per-channel difference (0-255) that starts a
	// new segment; 0 means 12.
	Threshold float64
	// MaxSegmentLen caps segment length (0 = unlimited), as in Config.
	MaxSegmentLen int
}

// DefaultBoundaryConfig suits the synthetic benchmark videos.
func DefaultBoundaryConfig() BoundaryConfig {
	return BoundaryConfig{Threshold: 12}
}

// ExtractWithBoundary segments the video by consecutive-frame difference.
func ExtractWithBoundary(v *vid.Video, cfg BoundaryConfig) (*Result, error) {
	if v.Len() == 0 {
		return nil, ErrEmptyVideo
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 12
	}

	segments := make([]Segment, 0, v.Len())
	start := 0
	segLen := 1
	for k := 1; k < v.Len(); k++ {
		diff := v.Frame(k).MeanAbsDiff(v.Frame(k - 1))
		tooLong := cfg.MaxSegmentLen > 0 && segLen >= cfg.MaxSegmentLen
		if diff < cfg.Threshold && !tooLong {
			segLen++
			continue
		}
		segments = append(segments, middleKeyed(start, k-1))
		start = k
		segLen = 1
	}
	segments = append(segments, middleKeyed(start, v.Len()-1))

	res := &Result{Segments: segments}
	for _, s := range segments {
		res.KeyFrames = append(res.KeyFrames, s.KeyFrame)
	}
	return res, nil
}

// middleKeyed builds a segment keyed at its middle frame.
func middleKeyed(start, end int) Segment {
	return Segment{Start: start, End: end, KeyFrame: (start + end) / 2}
}

// Method names for diagnostics.
const (
	MethodClustering = "clustering"
	MethodBoundary   = "boundary"
)

// ExtractByMethod dispatches between the two extractors; clusterCfg is
// used for the clustering method, boundaryCfg for the boundary method.
func ExtractByMethod(method string, v *vid.Video, clusterCfg Config, boundaryCfg BoundaryConfig) (*Result, error) {
	switch method {
	case MethodClustering:
		return Extract(v, clusterCfg)
	case MethodBoundary:
		return ExtractWithBoundary(v, boundaryCfg)
	default:
		return nil, fmt.Errorf("keyframe: unknown method %q", method)
	}
}
