package keyframe

import (
	"errors"
	"testing"

	"verro/internal/vid"
)

func TestExtractWithBoundaryFindsScenes(t *testing.T) {
	v := sceneVideo(t, 3, 10)
	res, err := ExtractWithBoundary(v, DefaultBoundaryConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 3 {
		t.Fatalf("segments = %d, want 3 (%v)", len(res.Segments), res.Segments)
	}
	// Segments tile the video.
	next := 0
	for _, s := range res.Segments {
		if s.Start != next {
			t.Fatalf("gap at %d: %v", next, s)
		}
		if !s.Contains(s.KeyFrame) {
			t.Fatalf("key frame outside segment: %v", s)
		}
		next = s.End + 1
	}
	if next != v.Len() {
		t.Fatalf("segments end at %d of %d", next, v.Len())
	}
}

func TestExtractWithBoundaryCap(t *testing.T) {
	v := sceneVideo(t, 1, 20)
	cfg := DefaultBoundaryConfig()
	cfg.MaxSegmentLen = 4
	res, err := ExtractWithBoundary(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 5 {
		t.Fatalf("segments = %d, want 5", len(res.Segments))
	}
}

func TestExtractWithBoundaryEmpty(t *testing.T) {
	if _, err := ExtractWithBoundary(vid.New("e", 4, 4, 30), DefaultBoundaryConfig()); !errors.Is(err, ErrEmptyVideo) {
		t.Fatalf("want ErrEmptyVideo, got %v", err)
	}
}

func TestExtractByMethod(t *testing.T) {
	v := sceneVideo(t, 2, 6)
	for _, m := range []string{MethodClustering, MethodBoundary} {
		res, err := ExtractByMethod(m, v, DefaultConfig(), DefaultBoundaryConfig())
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(res.KeyFrames) == 0 {
			t.Fatalf("%s: no key frames", m)
		}
	}
	if _, err := ExtractByMethod("nope", v, DefaultConfig(), DefaultBoundaryConfig()); err == nil {
		t.Fatal("unknown method should fail")
	}
}
