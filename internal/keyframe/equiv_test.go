package keyframe

// Bit-identity check for the finishSegment range rewrite: the reference
// keeps the original indexed loop over [start+1, end].

import (
	"testing"

	"verro/internal/img"
)

func finishSegmentRef(start, end int, hists []*img.HSVHist, cfg Config) Segment {
	best := start
	bestEntropy := hists[start].Entropy(cfg.Alpha, cfg.Beta, cfg.Gamma)
	for k := start + 1; k <= end; k++ {
		e := hists[k].Entropy(cfg.Alpha, cfg.Beta, cfg.Gamma)
		if e > bestEntropy {
			best, bestEntropy = k, e
		}
	}
	return Segment{Start: start, End: end, KeyFrame: best}
}

func TestFinishSegmentEquiv(t *testing.T) {
	cfg := DefaultConfig()
	hists := make([]*img.HSVHist, 12)
	for k := range hists {
		m := img.New(16, 12)
		m.VerticalGradient(img.RGB{R: uint8(k * 17), G: 90, B: 40}, img.RGB{R: 10, G: uint8(255 - k*9), B: 200})
		m.AddNoise(10, uint64(k))
		hists[k] = img.NewHSVHist(m, cfg.HBins, cfg.SBins, cfg.VBins)
	}
	for start := 0; start < len(hists); start++ {
		for end := start; end < len(hists); end++ {
			got := finishSegment(start, end, hists, cfg)
			want := finishSegmentRef(start, end, hists, cfg)
			if got != want {
				t.Fatalf("finishSegment(%d,%d): got %+v want %+v", start, end, got, want)
			}
		}
	}
}
