// Package keyframe implements the video segmentation and key-frame
// extraction of paper Algorithm 2: frames are greedily clustered into
// segments of consecutive, HSV-histogram-similar frames, and the frame with
// maximum weighted HSV entropy in each segment becomes its key frame. This
// is VERRO's dimension-reduction step (Section 3.2).
package keyframe

import (
	"errors"
	"fmt"

	"verro/internal/img"
	"verro/internal/obs"
	"verro/internal/par"
	"verro/internal/vid"
)

// Config holds the Algorithm 2 parameters.
type Config struct {
	HBins, SBins, VBins int     // histogram partition sizes (line 2)
	Alpha, Beta, Gamma  float64 // channel weights (line 10)
	Tau                 float64 // similarity threshold τ (line 10)
	// MaxSegmentLen optionally caps segment length so that very static
	// videos still yield enough key frames for the downstream optimizer;
	// 0 means unlimited (pure Algorithm 2).
	MaxSegmentLen int
}

// DefaultConfig returns parameters that behave well on the benchmark
// videos: 16/8/8 bins, H-weighted similarity, and a threshold that splits
// on scene changes but tolerates object motion.
func DefaultConfig() Config {
	return Config{
		HBins: 16, SBins: 8, VBins: 8,
		Alpha: 0.5, Beta: 0.3, Gamma: 0.2,
		Tau: 0.97,
	}
}

// Segment is one cluster of consecutive frames with its selected key frame.
type Segment struct {
	Start, End int // frame range, inclusive
	KeyFrame   int // index of the maximum-entropy frame within [Start, End]
}

// Len returns the number of frames in the segment.
func (s Segment) Len() int { return s.End - s.Start + 1 }

// Contains reports whether frame k falls in the segment.
func (s Segment) Contains(k int) bool { return k >= s.Start && k <= s.End }

func (s Segment) String() string {
	return fmt.Sprintf("[%d..%d] key=%d", s.Start, s.End, s.KeyFrame)
}

// Result is the output of Extract: the segments in order plus the key-frame
// indices (one per segment, ascending).
type Result struct {
	Segments  []Segment
	KeyFrames []int
}

// SegmentOf returns the index of the segment containing frame k, or -1.
func (r *Result) SegmentOf(k int) int {
	for i, s := range r.Segments {
		if s.Contains(k) {
			return i
		}
	}
	return -1
}

// ErrEmptyVideo is returned when the video has no frames.
var ErrEmptyVideo = errors.New("keyframe: empty video")

// Extract runs Algorithm 2 over the video on the default worker pool,
// untraced; pipeline code passes a scoped pool and span via ExtractRT.
func Extract(v *vid.Video, cfg Config) (*Result, error) {
	return ExtractRT(v, cfg, obs.Runtime{})
}

// ExtractRT is Extract on an explicit runtime: histogram computation shards
// over rt.Pool, and segment/key-frame counts land on rt.Span.
func ExtractRT(v *vid.Video, cfg Config, rt obs.Runtime) (*Result, error) {
	if v.Len() == 0 {
		return nil, ErrEmptyVideo
	}
	hists, err := FrameHists(v.Frames, cfg, rt.Pool)
	if err != nil {
		return nil, err
	}
	return SegmentHistsRT(hists, cfg, rt)
}

// FrameHists computes the per-frame HSV histograms of Algorithm 2 lines 4-6
// on the given pool: independent per frame, sharded with an index-ordered
// gather. The streaming driver calls this window by window (histograms are
// a few hundred bytes per frame, so retaining them is O(clip-metadata), not
// O(clip-pixels)); the batch path calls it once over the whole clip. Both
// produce bit-identical histograms because the per-frame computation is
// pure.
func FrameHists(frames []*img.Image, cfg Config, pool *par.Pool) ([]*img.HSVHist, error) {
	if cfg.HBins <= 0 || cfg.SBins <= 0 || cfg.VBins <= 0 {
		return nil, fmt.Errorf("keyframe: non-positive bin counts %d/%d/%d", cfg.HBins, cfg.SBins, cfg.VBins)
	}
	return par.MapPool(pool, len(frames), 1, func(k int) *img.HSVHist {
		return img.NewHSVHist(frames[k], cfg.HBins, cfg.SBins, cfg.VBins)
	}), nil
}

// SegmentHists runs the greedy segmentation of Algorithm 2 (lines 3-21)
// over already-computed per-frame histograms.
func SegmentHists(hists []*img.HSVHist, cfg Config) (*Result, error) {
	return SegmentHistsRT(hists, cfg, obs.Runtime{})
}

// SegmentHistsRT is SegmentHists on an explicit runtime: segment and
// key-frame counts land on rt.Span. The segmentation is serial because each
// decision depends on the running segment histogram.
func SegmentHistsRT(hists []*img.HSVHist, cfg Config, rt obs.Runtime) (*Result, error) {
	if len(hists) == 0 {
		return nil, ErrEmptyVideo
	}
	// Greedy segmentation (lines 3-16). The segment is represented by the
	// running mean histogram of its members. There is at most one segment
	// per histogram, so reserving that many avoids regrowth entirely.
	segments := make([]Segment, 0, len(hists))
	segStart := 0
	segHist := cloneHist(hists[0])
	segLen := 1
	for k := 1; k < len(hists); k++ {
		sim := segHist.Similarity(hists[k], cfg.Alpha, cfg.Beta, cfg.Gamma)
		tooLong := cfg.MaxSegmentLen > 0 && segLen >= cfg.MaxSegmentLen
		if sim >= cfg.Tau && !tooLong {
			// Expand the segment; update the running mean histogram.
			segLen++
			segHist.Mix(hists[k], 1/float64(segLen))
			continue
		}
		segments = append(segments, finishSegment(segStart, k-1, hists, cfg))
		segStart = k
		segHist = cloneHist(hists[k])
		segLen = 1
	}
	segments = append(segments, finishSegment(segStart, len(hists)-1, hists, cfg))

	res := &Result{Segments: segments}
	for _, s := range segments {
		res.KeyFrames = append(res.KeyFrames, s.KeyFrame)
	}
	rt.Span.Add(obs.CSegments, int64(len(res.Segments)))
	rt.Span.Add(obs.CKeyFrames, int64(len(res.KeyFrames)))
	return res, nil
}

// finishSegment closes a segment and selects its maximum-entropy key frame
// (lines 17-21).
func finishSegment(start, end int, hists []*img.HSVHist, cfg Config) Segment {
	best := start
	bestEntropy := hists[start].Entropy(cfg.Alpha, cfg.Beta, cfg.Gamma)
	for i, h := range hists[start+1 : end+1] {
		e := h.Entropy(cfg.Alpha, cfg.Beta, cfg.Gamma)
		if e > bestEntropy {
			best, bestEntropy = start+1+i, e
		}
	}
	return Segment{Start: start, End: end, KeyFrame: best}
}

func cloneHist(h *img.HSVHist) *img.HSVHist {
	out := &img.HSVHist{ //lint:allow hotalloc constructor: one clone per segment start, and the clone is the segment's state
		H: append([]float64(nil), h.H...),
		S: append([]float64(nil), h.S...),
		V: append([]float64(nil), h.V...),
	}
	return out
}
