package keyframe

import (
	"errors"
	"testing"

	"verro/internal/img"
	"verro/internal/vid"
)

// sceneVideo builds a video with `scenes` visually distinct scenes of
// `perScene` frames each.
func sceneVideo(t *testing.T, scenes, perScene int) *vid.Video {
	t.Helper()
	colors := []img.RGB{
		{R: 200, G: 40, B: 40},
		{R: 40, G: 200, B: 40},
		{R: 40, G: 40, B: 200},
		{R: 200, G: 200, B: 40},
		{R: 40, G: 200, B: 200},
	}
	v := vid.New("scenes", 32, 24, 30)
	for s := 0; s < scenes; s++ {
		base := img.NewFilled(32, 24, colors[s%len(colors)])
		base.AddNoise(10, uint64(s))
		for k := 0; k < perScene; k++ {
			f := base.Clone()
			f.AddNoise(2, uint64(s*1000+k)) // small intra-scene variation
			if err := v.Append(f); err != nil {
				t.Fatal(err)
			}
		}
	}
	return v
}

func TestExtractFindsSceneBoundaries(t *testing.T) {
	v := sceneVideo(t, 3, 10)
	res, err := Extract(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 3 {
		t.Fatalf("segments = %d, want 3 (%v)", len(res.Segments), res.Segments)
	}
	// Boundaries at multiples of 10.
	for i, s := range res.Segments {
		if s.Start != i*10 || s.End != i*10+9 {
			t.Fatalf("segment %d = %v", i, s)
		}
		if !s.Contains(s.KeyFrame) {
			t.Fatalf("key frame %d outside segment %v", s.KeyFrame, s)
		}
	}
	if len(res.KeyFrames) != 3 {
		t.Fatalf("key frames = %v", res.KeyFrames)
	}
}

func TestExtractSingleStaticScene(t *testing.T) {
	v := sceneVideo(t, 1, 20)
	res, err := Extract(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 1 {
		t.Fatalf("static video should be one segment, got %d", len(res.Segments))
	}
	if res.Segments[0].Len() != 20 {
		t.Fatalf("segment covers %d frames", res.Segments[0].Len())
	}
}

func TestMaxSegmentLenForcesSplits(t *testing.T) {
	v := sceneVideo(t, 1, 20)
	cfg := DefaultConfig()
	cfg.MaxSegmentLen = 5
	res, err := Extract(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 4 {
		t.Fatalf("segments = %d, want 4", len(res.Segments))
	}
	for _, s := range res.Segments {
		if s.Len() > 5 {
			t.Fatalf("segment too long: %v", s)
		}
	}
}

func TestSegmentsPartitionVideo(t *testing.T) {
	v := sceneVideo(t, 4, 7)
	res, err := Extract(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Segments must tile [0, len) without gaps or overlaps.
	next := 0
	for _, s := range res.Segments {
		if s.Start != next {
			t.Fatalf("gap or overlap at %d: %v", next, s)
		}
		next = s.End + 1
	}
	if next != v.Len() {
		t.Fatalf("segments end at %d, video has %d frames", next, v.Len())
	}
	// Key frames ascend.
	for i := 1; i < len(res.KeyFrames); i++ {
		if res.KeyFrames[i] <= res.KeyFrames[i-1] {
			t.Fatalf("key frames not ascending: %v", res.KeyFrames)
		}
	}
}

func TestSegmentOf(t *testing.T) {
	v := sceneVideo(t, 2, 5)
	res, err := Extract(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SegmentOf(0); got != 0 {
		t.Fatalf("SegmentOf(0) = %d", got)
	}
	if got := res.SegmentOf(9); got != len(res.Segments)-1 {
		t.Fatalf("SegmentOf(9) = %d", got)
	}
	if got := res.SegmentOf(99); got != -1 {
		t.Fatalf("SegmentOf(out of range) = %d", got)
	}
}

func TestExtractEmptyVideo(t *testing.T) {
	v := vid.New("empty", 8, 8, 30)
	if _, err := Extract(v, DefaultConfig()); !errors.Is(err, ErrEmptyVideo) {
		t.Fatalf("want ErrEmptyVideo, got %v", err)
	}
}

func TestExtractBadBins(t *testing.T) {
	v := sceneVideo(t, 1, 2)
	cfg := DefaultConfig()
	cfg.HBins = 0
	if _, err := Extract(v, cfg); err == nil {
		t.Fatal("zero bins should fail")
	}
}

func TestSingleFrameVideo(t *testing.T) {
	v := vid.New("one", 8, 8, 30)
	if err := v.Append(img.NewFilled(8, 8, img.RGB{R: 1, G: 2, B: 3})); err != nil {
		t.Fatal(err)
	}
	res, err := Extract(v, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 1 || res.Segments[0].KeyFrame != 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestKeyFramePrefersHighEntropy(t *testing.T) {
	// One segment where a middle frame has much richer content: it should
	// win the key-frame election.
	v := vid.New("entropy", 32, 24, 30)
	base := img.NewFilled(32, 24, img.RGB{R: 120, G: 120, B: 120})
	for k := 0; k < 9; k++ {
		f := base.Clone()
		if k == 4 {
			f.AddNoise(100, 7) // high-entropy frame
		} else {
			f.AddNoise(2, uint64(k))
		}
		if err := v.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultConfig()
	cfg.Tau = 0.2 // keep everything in one segment despite the noisy frame
	res, err := Extract(v, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 1 {
		t.Fatalf("expected single segment, got %v", res.Segments)
	}
	if res.Segments[0].KeyFrame != 4 {
		t.Fatalf("key frame = %d, want 4 (max entropy)", res.Segments[0].KeyFrame)
	}
}
