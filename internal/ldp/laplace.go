package ldp

import (
	"fmt"
	"math"
	"math/rand"
)

// Laplace draws one sample from the Laplace distribution with mean 0 and
// scale b using inverse-CDF sampling.
func Laplace(b float64, rng *rand.Rand) float64 {
	// u uniform in (-0.5, 0.5]; the open lower bound avoids log(0).
	u := rng.Float64() - 0.5
	if u == -0.5 { //lint:allow floateq -0.5 is exactly representable; remaps the one log(0) input
		u = 0.5
	}
	return -b * sign(u) * math.Log(1-2*math.Abs(u))
}

// LaplaceMechanism perturbs value with Laplace noise calibrated to
// sensitivity/eps — the generic mechanism the paper applies to per-key-frame
// object counts before the utility optimization (Section 3.3.3, Δ=1).
func LaplaceMechanism(value, sensitivity, eps float64, rng *rand.Rand) (float64, error) {
	if eps <= 0 {
		return 0, fmt.Errorf("%w: epsilon %v must be positive", ErrBudget, eps)
	}
	if sensitivity < 0 {
		return 0, fmt.Errorf("%w: negative sensitivity %v", ErrBudget, sensitivity)
	}
	return value + Laplace(sensitivity/eps, rng), nil
}

// NoisyCounts perturbs each count with Laplace(Δ/eps) noise and clamps the
// results to be non-negative (counts cannot be negative, and clamping is
// post-processing that preserves differential privacy).
func NoisyCounts(counts []int, sensitivity, eps float64, rng *rand.Rand) ([]float64, error) {
	out := make([]float64, len(counts))
	for i, c := range counts {
		v, err := LaplaceMechanism(float64(c), sensitivity, eps, rng)
		if err != nil {
			return nil, err
		}
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out, nil
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
