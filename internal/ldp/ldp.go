// Package ldp implements the local-differential-privacy primitives VERRO is
// built on: per-bit randomized response (paper Algorithm 1), the
// RAPPOR-style flip rule of Equation 4, the Laplace mechanism used to
// protect the optimization statistics (Section 3.3.3), and the ε-accounting
// identities of Theorems 3.2-3.4.
package ldp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBudget reports an invalid privacy parameter.
var ErrBudget = errors.New("ldp: invalid privacy parameter")

// Epsilon returns the ε-Object Indistinguishability level achieved by
// applying the Equation 4 flip rule with probability f independently to k
// bits: ε = k·ln((2−f)/f) (Theorem 3.3 with ℓ replaced by the number of
// picked key frames k, Theorem 3.4).
func Epsilon(k int, f float64) (float64, error) {
	if k < 0 {
		return 0, fmt.Errorf("%w: negative dimension %d", ErrBudget, k)
	}
	// NaN fails every ordered comparison, so it must be rejected explicitly:
	// f = NaN would sail through `f <= 0 || f > 1` and poison ε.
	if math.IsNaN(f) || f <= 0 || f > 1 {
		return 0, fmt.Errorf("%w: flip probability %v not in (0,1]", ErrBudget, f)
	}
	return float64(k) * math.Log((2-f)/f), nil
}

// FlipProbability inverts Epsilon: the f that spends budget eps over k bits,
// f = 2/(e^(ε/k)+1).
func FlipProbability(k int, eps float64) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("%w: dimension %d", ErrBudget, k)
	}
	// NaN epsilon would flow through exp() into f; +Inf would yield f = 0,
	// which Equation 4 forbids (infinite per-bit budget). Both are parameter
	// errors, not budgets.
	if math.IsNaN(eps) || math.IsInf(eps, 1) || eps < 0 {
		return 0, fmt.Errorf("%w: non-finite or negative epsilon %v", ErrBudget, eps)
	}
	return 2 / (math.Exp(eps/float64(k)) + 1), nil
}

// KeepProbability returns the probability that classic binary randomized
// response reports the true bit when each bit holds budget eps:
// e^ε/(1+e^ε). This is the rule of Algorithm 1 line 6.
func KeepProbability(eps float64) float64 {
	e := math.Exp(eps)
	return e / (1 + e)
}

// BitVector is an object-presence vector (paper Definition 3.1): bit k is 1
// iff the object appears in frame k.
type BitVector []bool

// NewBitVector returns an all-zero vector of length m.
func NewBitVector(m int) BitVector { return make(BitVector, m) }

// Ones returns the number of set bits.
func (b BitVector) Ones() int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

// Empty reports whether no bit is set — the "object lost" case of
// Section 4.2.1.
func (b BitVector) Empty() bool { return b.Ones() == 0 }

// Clone copies the vector.
func (b BitVector) Clone() BitVector {
	out := make(BitVector, len(b))
	copy(out, b)
	return out
}

// Hamming returns the Hamming distance between two equal-length vectors.
func Hamming(a, b BitVector) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			d++
		}
	}
	if len(a) != len(b) {
		d += abs(len(a) - len(b))
	}
	return d
}

// ClassicRR applies binary randomized response to every bit of b: each bit
// is reported truthfully with probability e^(ε/m)/(1+e^(ε/m)) where m =
// len(b), i.e. the total budget eps is split equally across the bits. This
// is the naive Algorithm 1 whose poor utility motivates VERRO's dimension
// reduction; it is kept as the experimental baseline.
func ClassicRR(b BitVector, eps float64, rng *rand.Rand) (BitVector, error) {
	if math.IsNaN(eps) || eps < 0 {
		return nil, fmt.Errorf("%w: negative epsilon %v", ErrBudget, eps)
	}
	m := len(b)
	out := make(BitVector, m)
	if m == 0 {
		return out, nil
	}
	keep := KeepProbability(eps / float64(m))
	for i, v := range b {
		if rng.Float64() < keep {
			out[i] = v
		} else {
			out[i] = !v
		}
	}
	return out, nil
}

// RAPPORFlip applies the Equation 4 flip rule to every bit of b: with
// probability 1−f the bit is kept, with probability f/2 it is forced to 1
// and with probability f/2 forced to 0.
func RAPPORFlip(b BitVector, f float64, rng *rand.Rand) (BitVector, error) {
	if math.IsNaN(f) || f < 0 || f > 1 {
		return nil, fmt.Errorf("%w: flip probability %v", ErrBudget, f)
	}
	out := make(BitVector, len(b))
	for i, v := range b {
		switch r := rng.Float64(); {
		case r < 1-f:
			out[i] = v
		case r < 1-f/2:
			out[i] = true
		default:
			out[i] = false
		}
	}
	return out, nil
}

// ExpectedBit returns E[output bit] of the Equation 4 rule given the true
// bit (Equation 6 with x_k = 1): f/2 when the bit is 0, 1−f/2 when it is 1.
func ExpectedBit(truth bool, f float64) float64 {
	if truth {
		return 1 - f/2
	}
	return f / 2
}

// UnbiasCount converts an observed count of 1s among n RAPPOR-flipped bits
// into an unbiased estimate of the true count (standard RAPPOR decoding):
// t = (obs − n·f/2)/(1−f). Used by aggregate-analysis consumers of the
// sanitized video to cancel noise (paper Section 5, "Noise Cancellation").
func UnbiasCount(observed float64, n int, f float64) float64 {
	if f >= 1 {
		return float64(n) / 2 // no information survives f=1
	}
	return (observed - float64(n)*f/2) / (1 - f)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
