package ldp

import (
	"math"
	"math/rand"
	"testing"
)

// Statistical acceptance tests for the randomized-response primitives. The
// tolerances are derived from the binomial standard deviation rather than
// picked by eye: with a fixed seed they are deterministic, and a 3σ band
// would only reject a correct implementation about 0.3% of the time even if
// the seed were free.

// TestRAPPORFlipRateWithinThreeSigma checks that the Equation 4 rule changes
// a bit with empirical probability within 3σ of the nominal f/2 over 10k
// trials, for both bit values and several privacy levels.
func TestRAPPORFlipRateWithinThreeSigma(t *testing.T) {
	const trials = 10000
	rng := rand.New(rand.NewSource(42))
	for _, f := range []float64{0.1, 0.3, 0.5, 0.9} {
		for _, truth := range []bool{false, true} {
			// A kept bit equals the truth; a bit differing from the truth was
			// necessarily forced to the opposite value, which happens with
			// probability f/2 regardless of the true value.
			p := f / 2
			sigma := math.Sqrt(float64(trials) * p * (1 - p))
			changed := 0
			in := BitVector{truth}
			for i := 0; i < trials; i++ {
				out, err := RAPPORFlip(in, f, rng)
				if err != nil {
					t.Fatal(err)
				}
				if out[0] != truth {
					changed++
				}
			}
			dev := math.Abs(float64(changed) - float64(trials)*p)
			if dev > 3*sigma {
				t.Errorf("f=%v truth=%v: %d/%d bits changed, want %v ± %v (3σ)",
					f, truth, changed, trials, float64(trials)*p, 3*sigma)
			}
		}
	}
}

// TestClassicRRFlipRateWithinThreeSigma is the same 3σ acceptance test for
// the Algorithm 1 baseline: each bit is reported untruthfully with
// probability 1/(1+e^(ε/m)).
func TestClassicRRFlipRateWithinThreeSigma(t *testing.T) {
	const trials = 10000
	rng := rand.New(rand.NewSource(43))
	for _, eps := range []float64{0.5, math.Log(3), 3} {
		p := 1 - KeepProbability(eps)
		sigma := math.Sqrt(float64(trials) * p * (1 - p))
		changed := 0
		in := BitVector{true}
		for i := 0; i < trials; i++ {
			out, err := ClassicRR(in, eps, rng)
			if err != nil {
				t.Fatal(err)
			}
			if !out[0] {
				changed++
			}
		}
		dev := math.Abs(float64(changed) - float64(trials)*p)
		if dev > 3*sigma {
			t.Errorf("eps=%v: %d/%d bits flipped, want %v ± %v (3σ)",
				eps, changed, trials, float64(trials)*p, 3*sigma)
		}
	}
}

// TestLikelihoodRatioBoundedByExpEpsilon is the Definition 2.1 guarantee as
// an executable statement: for every pair of presence vectors and every
// output, P[out|a] / P[out|b] ≤ e^ε where ε = k·ln((2−f)/f). Probabilities
// are computed exactly from the per-bit channel, so the bound is checked
// with no sampling slack; a seeded empirical run then cross-checks the
// exact model against the implementation at 3σ.
func TestLikelihoodRatioBoundedByExpEpsilon(t *testing.T) {
	const k = 3
	f := 0.4
	eps, err := Epsilon(k, f)
	if err != nil {
		t.Fatal(err)
	}

	// Exact per-bit output distribution of Equation 4.
	pOut := func(truth, out bool) float64 {
		if truth == out {
			return 1 - f/2
		}
		return f / 2
	}
	vecProb := func(truth, out int) float64 {
		p := 1.0
		for i := 0; i < k; i++ {
			p *= pOut(truth&(1<<i) != 0, out&(1<<i) != 0)
		}
		return p
	}

	// Exhaustive check over all input pairs and outputs.
	maxRatio := 0.0
	for a := 0; a < 1<<k; a++ {
		for b := 0; b < 1<<k; b++ {
			for out := 0; out < 1<<k; out++ {
				ratio := vecProb(a, out) / vecProb(b, out)
				if ratio > maxRatio {
					maxRatio = ratio
				}
				if ratio > math.Exp(eps)*(1+1e-12) {
					t.Fatalf("P[%03b|%03b]/P[%03b|%03b] = %v exceeds e^eps = %v",
						out, a, out, b, ratio, math.Exp(eps))
				}
			}
		}
	}
	// The bound must be tight: maximally different inputs attain e^ε.
	if math.Abs(maxRatio-math.Exp(eps)) > 1e-9 {
		t.Fatalf("max ratio %v, want exactly e^eps = %v (Theorem 3.3 tight)", maxRatio, math.Exp(eps))
	}

	// Empirical cross-check: the implementation's output frequencies for the
	// all-ones input match the exact channel model within 3σ per output.
	const trials = 10000
	rng := rand.New(rand.NewSource(44))
	in := BitVector{true, true, true}
	counts := make([]int, 1<<k)
	for i := 0; i < trials; i++ {
		out, err := RAPPORFlip(in, f, rng)
		if err != nil {
			t.Fatal(err)
		}
		code := 0
		for j, bit := range out {
			if bit {
				code |= 1 << j
			}
		}
		counts[code]++
	}
	for code, c := range counts {
		p := vecProb((1<<k)-1, code)
		sigma := math.Sqrt(float64(trials) * p * (1 - p))
		if dev := math.Abs(float64(c) - float64(trials)*p); dev > 3*sigma {
			t.Errorf("output %03b: %d/%d draws, want %v ± %v (3σ)",
				code, c, trials, float64(trials)*p, 3*sigma)
		}
	}
}
