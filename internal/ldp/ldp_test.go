package ldp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEpsilonKnownValues(t *testing.T) {
	// f=0.5 over 1 bit: ln(1.5/0.5) = ln 3.
	eps, err := Epsilon(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-math.Log(3)) > 1e-12 {
		t.Fatalf("Epsilon(1,0.5) = %v, want ln3", eps)
	}
	// f=1 means both flip branches are uniform: zero information, eps=0.
	eps, err = Epsilon(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eps != 0 {
		t.Fatalf("Epsilon(10,1) = %v, want 0", eps)
	}
	// Zero dimensions cost nothing.
	if eps, _ := Epsilon(0, 0.3); eps != 0 {
		t.Fatalf("Epsilon(0,·) = %v", eps)
	}
}

func TestEpsilonRejectsBadInput(t *testing.T) {
	if _, err := Epsilon(-1, 0.5); err == nil {
		t.Fatal("negative k should fail")
	}
	if _, err := Epsilon(1, 0); err == nil {
		t.Fatal("f=0 should fail (infinite epsilon)")
	}
	if _, err := Epsilon(1, 1.5); err == nil {
		t.Fatal("f>1 should fail")
	}
}

func TestFlipProbabilityInvertsEpsilon(t *testing.T) {
	f := func(kRaw uint8, fRaw float64) bool {
		k := int(kRaw%20) + 1
		fv := math.Mod(math.Abs(fRaw), 0.98) + 0.01 // (0.01, 0.99)
		eps, err := Epsilon(k, fv)
		if err != nil {
			return false
		}
		back, err := FlipProbability(k, eps)
		if err != nil {
			return false
		}
		return math.Abs(back-fv) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEpsilonMonotone(t *testing.T) {
	// More bits or smaller f ⇒ larger ε.
	e1, _ := Epsilon(5, 0.5)
	e2, _ := Epsilon(10, 0.5)
	if e2 <= e1 {
		t.Fatal("epsilon should grow with dimension")
	}
	e3, _ := Epsilon(5, 0.2)
	if e3 <= e1 {
		t.Fatal("epsilon should grow as f shrinks")
	}
}

func TestKeepProbability(t *testing.T) {
	if got := KeepProbability(0); got != 0.5 {
		t.Fatalf("KeepProbability(0) = %v, want 0.5 (coin flip)", got)
	}
	if got := KeepProbability(10); got < 0.99 {
		t.Fatalf("large budget should keep truth: %v", got)
	}
}

func TestBitVectorBasics(t *testing.T) {
	b := NewBitVector(5)
	if !b.Empty() || b.Ones() != 0 {
		t.Fatal("fresh vector should be empty")
	}
	b[1], b[3] = true, true
	if b.Ones() != 2 || b.Empty() {
		t.Fatalf("Ones = %d", b.Ones())
	}
	c := b.Clone()
	c[0] = true
	if b[0] {
		t.Fatal("clone aliases original")
	}
	if Hamming(b, c) != 1 {
		t.Fatalf("Hamming = %d", Hamming(b, c))
	}
	if Hamming(b, b[:3]) != 2 { // common prefix equal; 2 extra positions count as diffs
		t.Fatalf("Hamming with length mismatch = %d", Hamming(b, b[:3]))
	}
}

func TestClassicRRStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := 1
	trials := 20000
	eps := math.Log(3) // keep prob 0.75
	kept := 0
	truth := BitVector{true}
	for i := 0; i < trials; i++ {
		out, err := ClassicRR(truth, eps, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != m {
			t.Fatalf("len = %d", len(out))
		}
		if out[0] {
			kept++
		}
	}
	got := float64(kept) / float64(trials)
	if math.Abs(got-0.75) > 0.02 {
		t.Fatalf("keep rate = %v, want ~0.75", got)
	}
}

func TestClassicRRSmallBudgetIsCoinFlip(t *testing.T) {
	// The paper's "poor utility" argument: with eps split over many bits the
	// output is nearly uniform.
	rng := rand.New(rand.NewSource(2))
	truth := NewBitVector(1000)
	out, err := ClassicRR(truth, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	ones := out.Ones()
	if ones < 400 || ones > 600 {
		t.Fatalf("expected ~500 ones from near-uniform RR, got %d", ones)
	}
}

func TestClassicRREmptyAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	out, err := ClassicRR(NewBitVector(0), 1, rng)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty vector: %v, %v", out, err)
	}
	if _, err := ClassicRR(NewBitVector(3), -1, rng); err == nil {
		t.Fatal("negative epsilon should fail")
	}
}

func TestRAPPORFlipStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := 0.4
	trials := 30000
	onesFromTrue, onesFromFalse := 0, 0
	for i := 0; i < trials; i++ {
		out, err := RAPPORFlip(BitVector{true, false}, f, rng)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] {
			onesFromTrue++
		}
		if out[1] {
			onesFromFalse++
		}
	}
	pTrue := float64(onesFromTrue) / float64(trials)
	pFalse := float64(onesFromFalse) / float64(trials)
	if math.Abs(pTrue-ExpectedBit(true, f)) > 0.02 {
		t.Fatalf("P(1|true) = %v, want %v", pTrue, ExpectedBit(true, f))
	}
	if math.Abs(pFalse-ExpectedBit(false, f)) > 0.02 {
		t.Fatalf("P(1|false) = %v, want %v", pFalse, ExpectedBit(false, f))
	}
}

func TestRAPPORFlipRejectsBadF(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, f := range []float64{-0.1, 1.1} {
		if _, err := RAPPORFlip(NewBitVector(2), f, rng); err == nil {
			t.Fatalf("f=%v should fail", f)
		}
	}
}

func TestRAPPORFlipZeroFIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := BitVector{true, false, true, true, false}
	out, err := RAPPORFlip(in, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if Hamming(in, out) != 0 {
		t.Fatal("f=0 must be the identity")
	}
}

// TestIndistinguishabilityBound verifies the Definition 2.1 likelihood-ratio
// bound empirically: for two maximally different inputs and any output, the
// ratio of output probabilities stays within e^ε (with sampling slack).
func TestIndistinguishabilityBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := 0.5
	k := 2
	epsWant, _ := Epsilon(k, f)

	a := BitVector{true, true}
	b := BitVector{false, false}
	trials := 200000
	countsA := map[int]int{}
	countsB := map[int]int{}
	encode := func(v BitVector) int {
		code := 0
		for i, bit := range v {
			if bit {
				code |= 1 << i
			}
		}
		return code
	}
	for i := 0; i < trials; i++ {
		oa, _ := RAPPORFlip(a, f, rng)
		ob, _ := RAPPORFlip(b, f, rng)
		countsA[encode(oa)]++
		countsB[encode(ob)]++
	}
	for code := 0; code < 1<<k; code++ {
		pa := float64(countsA[code]) / float64(trials)
		pb := float64(countsB[code]) / float64(trials)
		if pa == 0 || pb == 0 {
			t.Fatalf("output %b never produced; f=%v should reach all outputs", code, f)
		}
		ratio := math.Abs(math.Log(pa / pb))
		if ratio > epsWant*1.1+0.05 {
			t.Fatalf("log ratio %v exceeds eps %v for output %b", ratio, epsWant, code)
		}
	}
}

func TestUnbiasCount(t *testing.T) {
	// With f=0.4 and 100 true ones out of 200 bits, expected observed is
	// 100·0.8 + 100·0.2 = 100; unbiasing should recover 100.
	f := 0.4
	n := 200
	expObserved := 100*ExpectedBit(true, f) + 100*ExpectedBit(false, f)
	got := UnbiasCount(expObserved, n, f)
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("UnbiasCount = %v, want 100", got)
	}
	if got := UnbiasCount(50, 100, 1); got != 50 {
		t.Fatalf("f=1 degenerate case = %v", got)
	}
}

func TestLaplaceStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := 2.0
	n := 100000
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		x := Laplace(b, rng)
		sum += x
		sumAbs += math.Abs(x)
	}
	mean := sum / float64(n)
	meanAbs := sumAbs / float64(n)
	if math.Abs(mean) > 0.05 {
		t.Fatalf("Laplace mean = %v, want ~0", mean)
	}
	// E|X| = b for Laplace(0, b).
	if math.Abs(meanAbs-b) > 0.05 {
		t.Fatalf("Laplace E|X| = %v, want %v", meanAbs, b)
	}
}

func TestLaplaceMechanismValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if _, err := LaplaceMechanism(1, 1, 0, rng); err == nil {
		t.Fatal("eps=0 should fail")
	}
	if _, err := LaplaceMechanism(1, -1, 1, rng); err == nil {
		t.Fatal("negative sensitivity should fail")
	}
	v, err := LaplaceMechanism(10, 1, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-10) > 1 {
		t.Fatalf("tiny noise expected at eps=100: %v", v)
	}
}

func TestNoisyCountsNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	counts := []int{0, 1, 2, 0, 5}
	out, err := NoisyCounts(counts, 1, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(counts) {
		t.Fatalf("len = %d", len(out))
	}
	for i, v := range out {
		if v < 0 {
			t.Fatalf("count %d went negative: %v", i, v)
		}
	}
	if _, err := NoisyCounts(counts, 1, 0, rng); err == nil {
		t.Fatal("eps=0 should fail")
	}
}

func TestExpectedBit(t *testing.T) {
	if ExpectedBit(true, 0.2) != 0.9 {
		t.Fatalf("ExpectedBit(true,0.2) = %v", ExpectedBit(true, 0.2))
	}
	if ExpectedBit(false, 0.2) != 0.1 {
		t.Fatalf("ExpectedBit(false,0.2) = %v", ExpectedBit(false, 0.2))
	}
}
