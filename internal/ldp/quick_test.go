package ldp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestUnbiasCountIsInverseOfExpectation: for any true count t out of n
// bits, unbiasing the *expected* observed count returns t exactly.
func TestUnbiasCountIsInverseOfExpectation(t *testing.T) {
	f := func(nRaw, tRaw uint8, fRaw float64) bool {
		n := int(nRaw)%200 + 1
		truth := int(tRaw) % (n + 1)
		fv := math.Mod(math.Abs(fRaw), 0.98) + 0.01
		expObserved := float64(truth)*ExpectedBit(true, fv) +
			float64(n-truth)*ExpectedBit(false, fv)
		got := UnbiasCount(expObserved, n, fv)
		return math.Abs(got-float64(truth)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestRAPPORFlipPreservesLength: output vectors always match input length.
func TestRAPPORFlipPreservesLength(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(bits []bool, fRaw float64) bool {
		fv := math.Mod(math.Abs(fRaw), 1)
		out, err := RAPPORFlip(BitVector(bits), fv, rng)
		return err == nil && len(out) == len(bits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestHammingMetricProperties: Hamming distance is a metric on equal-length
// vectors (identity, symmetry, triangle inequality).
func TestHammingMetricProperties(t *testing.T) {
	f := func(aRaw, bRaw, cRaw []bool) bool {
		n := len(aRaw)
		if len(bRaw) < n {
			n = len(bRaw)
		}
		if len(cRaw) < n {
			n = len(cRaw)
		}
		a := BitVector(aRaw[:n])
		b := BitVector(bRaw[:n])
		c := BitVector(cRaw[:n])
		if Hamming(a, a) != 0 {
			return false
		}
		if Hamming(a, b) != Hamming(b, a) {
			return false
		}
		return Hamming(a, c) <= Hamming(a, b)+Hamming(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestEpsilonFlipProbabilityBijection over the full valid domain.
func TestEpsilonFlipProbabilityBijection(t *testing.T) {
	f := func(epsRaw float64, kRaw uint8) bool {
		k := int(kRaw)%30 + 1
		eps := math.Mod(math.Abs(epsRaw), 50)
		fv, err := FlipProbability(k, eps)
		if err != nil {
			return false
		}
		if fv <= 0 || fv > 1 {
			return false
		}
		back, err := Epsilon(k, fv)
		if err != nil {
			return false
		}
		return math.Abs(back-eps) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
