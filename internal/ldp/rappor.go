package ldp

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// This file is a reference implementation of RAPPOR (Erlingsson, Pihur,
// Korolova — CCS 2014), the mechanism VERRO's Phase I optimizes: strings
// are encoded into a Bloom filter, memoized through a *permanent*
// randomized response, and re-randomized per report by an *instantaneous*
// randomized response. VERRO replaces the Bloom-filter encoding with the
// object presence vector (paper Theorem 3.3 "by replacing the encoded bit
// vectors of bloom filter as the object presence vectors"); keeping the
// full mechanism here documents that lineage and provides the aggregate
// decoding used for noise cancellation.

// RapporConfig parameterizes the mechanism.
type RapporConfig struct {
	// Bits is the Bloom filter width k.
	Bits int
	// Hashes is the number of hash functions h.
	Hashes int
	// F is the permanent response noise (Equation 4's f).
	F float64
	// P and Q are the instantaneous response probabilities:
	// P(report 1 | permanent 0) = P, P(report 1 | permanent 1) = Q.
	P, Q float64
}

// DefaultRapporConfig mirrors the reference deployment (128 bits, 2
// hashes, f=0.5, p=0.5, q=0.75).
func DefaultRapporConfig() RapporConfig {
	return RapporConfig{Bits: 128, Hashes: 2, F: 0.5, P: 0.5, Q: 0.75}
}

// Validate checks the parameters.
func (c RapporConfig) Validate() error {
	if c.Bits <= 0 || c.Hashes <= 0 {
		return fmt.Errorf("%w: bits %d hashes %d", ErrBudget, c.Bits, c.Hashes)
	}
	if c.F < 0 || c.F > 1 || c.P < 0 || c.P > 1 || c.Q < 0 || c.Q > 1 {
		return fmt.Errorf("%w: probabilities out of range", ErrBudget)
	}
	return nil
}

// Epsilon returns the ε of the permanent randomized response, the bound
// RAPPOR's privacy argument rests on: ε = 2h·ln((1−f/2)/(f/2)).
func (c RapporConfig) Epsilon() (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if c.F == 0 { //lint:allow floateq exact-zero sentinel: F=0 disables permanent randomization
		return math.Inf(1), nil
	}
	return 2 * float64(c.Hashes) * math.Log((1-c.F/2)/(c.F/2)), nil
}

// BloomEncode hashes value into a Bits-wide Bloom filter.
func (c RapporConfig) BloomEncode(value string) (BitVector, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	b := NewBitVector(c.Bits)
	for i := 0; i < c.Hashes; i++ {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d:%s", i, value)
		b[int(h.Sum64()%uint64(c.Bits))] = true //lint:allow divzero Validate() above rejects Bits < 1; the config field itself is opaque to the interval domain
	}
	return b, nil
}

// Client is one RAPPOR reporter: it memoizes the permanent randomized
// response of its true value and emits fresh instantaneous reports.
type Client struct {
	cfg       RapporConfig
	permanent BitVector
	rng       *rand.Rand
}

// NewClient encodes value and fixes its permanent response.
func NewClient(value string, cfg RapporConfig, rng *rand.Rand) (*Client, error) {
	bloom, err := cfg.BloomEncode(value)
	if err != nil {
		return nil, err
	}
	perm, err := RAPPORFlip(bloom, cfg.F, rng)
	if err != nil {
		return nil, err
	}
	return &Client{cfg: cfg, permanent: perm, rng: rng}, nil
}

// Permanent returns a copy of the memoized permanent response.
func (c *Client) Permanent() BitVector { return c.permanent.Clone() }

// Report emits one instantaneous randomized response.
func (c *Client) Report() BitVector {
	out := NewBitVector(len(c.permanent))
	for i, bit := range c.permanent {
		p := c.cfg.P
		if bit {
			p = c.cfg.Q
		}
		out[i] = c.rng.Float64() < p
	}
	return out
}

// ErrNoReports is returned by Decode on empty input.
var ErrNoReports = errors.New("ldp: no reports")

// DecodeCounts estimates, per Bloom bit, the number of clients whose true
// Bloom bit is set, from the aggregated instantaneous reports — the
// standard RAPPOR two-stage unbiasing. reports must all have Bits width.
func DecodeCounts(reports []BitVector, cfg RapporConfig) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(reports) == 0 {
		return nil, ErrNoReports
	}
	n := float64(len(reports))
	counts := make([]float64, cfg.Bits)
	for _, r := range reports {
		if len(r) != cfg.Bits {
			return nil, fmt.Errorf("ldp: report width %d, want %d", len(r), cfg.Bits)
		}
		for i, bit := range r {
			if bit {
				counts[i]++
			}
		}
	}
	// Stage 1: undo the instantaneous response. E[obs] = t1·q + (n−t1)·p
	// where t1 is the count of set permanent bits.
	out := make([]float64, cfg.Bits)
	for i, obs := range counts {
		if cfg.Q == cfg.P { //lint:allow floateq exact-zero guard for the q−p denominator below
			out[i] = 0
			continue
		}
		t1 := (obs - n*cfg.P) / (cfg.Q - cfg.P)
		// Stage 2: undo the permanent response. E[t1] = t·(1−f/2) + (n−t)·f/2.
		if cfg.F >= 1 {
			out[i] = n / 2
			continue
		}
		t := (t1 - n*cfg.F/2) / (1 - cfg.F)
		out[i] = t
	}
	return out, nil
}

// EstimateFrequency estimates how many of the reporting clients hold the
// candidate value: the mean unbiased count over the candidate's Bloom bits
// (a simplification of RAPPOR's lasso regression adequate for small,
// known candidate sets).
func EstimateFrequency(value string, reports []BitVector, cfg RapporConfig) (float64, error) {
	counts, err := DecodeCounts(reports, cfg)
	if err != nil {
		return 0, err
	}
	bloom, err := cfg.BloomEncode(value)
	if err != nil {
		return 0, err
	}
	var sum float64
	k := 0
	for i, bit := range bloom {
		if bit {
			sum += counts[i]
			k++
		}
	}
	if k == 0 {
		return 0, nil
	}
	return sum / float64(k), nil
}
