package ldp

import (
	"math"
	"math/rand"
	"testing"
)

func TestRapporConfigValidate(t *testing.T) {
	if err := DefaultRapporConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []RapporConfig{
		{Bits: 0, Hashes: 2, F: 0.5, P: 0.5, Q: 0.75},
		{Bits: 8, Hashes: 0, F: 0.5, P: 0.5, Q: 0.75},
		{Bits: 8, Hashes: 2, F: -0.1, P: 0.5, Q: 0.75},
		{Bits: 8, Hashes: 2, F: 0.5, P: 1.5, Q: 0.75},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestRapporEpsilon(t *testing.T) {
	c := DefaultRapporConfig() // h=2, f=0.5: eps = 4·ln(0.75/0.25) = 4 ln 3
	eps, err := c.Epsilon()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-4*math.Log(3)) > 1e-12 {
		t.Fatalf("eps = %v, want %v", eps, 4*math.Log(3))
	}
	c.F = 0
	if eps, _ := c.Epsilon(); !math.IsInf(eps, 1) {
		t.Fatal("f=0 should be infinite epsilon")
	}
}

func TestBloomEncodeDeterministicAndSelective(t *testing.T) {
	c := DefaultRapporConfig()
	a1, err := c.BloomEncode("apple")
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := c.BloomEncode("apple")
	if Hamming(a1, a2) != 0 {
		t.Fatal("encoding not deterministic")
	}
	if a1.Ones() == 0 || a1.Ones() > c.Hashes {
		t.Fatalf("ones = %d", a1.Ones())
	}
	b, _ := c.BloomEncode("banana")
	if Hamming(a1, b) == 0 {
		t.Fatal("different values should (almost surely) differ")
	}
}

func TestClientPermanentIsMemoized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := NewClient("apple", DefaultRapporConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	p1 := c.Permanent()
	p2 := c.Permanent()
	if Hamming(p1, p2) != 0 {
		t.Fatal("permanent response must not change")
	}
	// Mutating the copy must not affect the client.
	p1[0] = !p1[0]
	if Hamming(c.Permanent(), p2) != 0 {
		t.Fatal("Permanent returned shared storage")
	}
}

func TestReportsVary(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c, err := NewClient("apple", DefaultRapporConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	r1 := c.Report()
	r2 := c.Report()
	if Hamming(r1, r2) == 0 {
		t.Fatal("instantaneous reports should differ between calls")
	}
}

func TestDecodeRecoversFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := RapporConfig{Bits: 64, Hashes: 2, F: 0.3, P: 0.4, Q: 0.8}
	// 700 clients hold "apple", 300 hold "banana".
	var reports []BitVector
	for i := 0; i < 700; i++ {
		c, err := NewClient("apple", cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, c.Report())
	}
	for i := 0; i < 300; i++ {
		c, err := NewClient("banana", cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, c.Report())
	}
	apple, err := EstimateFrequency("apple", reports, cfg)
	if err != nil {
		t.Fatal(err)
	}
	banana, err := EstimateFrequency("banana", reports, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cherry, err := EstimateFrequency("cherry", reports, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(apple-700) > 120 {
		t.Fatalf("apple estimate %v, want ~700", apple)
	}
	if math.Abs(banana-300) > 120 {
		t.Fatalf("banana estimate %v, want ~300", banana)
	}
	if cherry > 250 {
		t.Fatalf("absent value estimated at %v", cherry)
	}
	if apple <= banana || banana <= cherry-100 {
		t.Fatalf("ordering broken: %v %v %v", apple, banana, cherry)
	}
}

func TestDecodeValidation(t *testing.T) {
	cfg := DefaultRapporConfig()
	if _, err := DecodeCounts(nil, cfg); err == nil {
		t.Fatal("no reports should fail")
	}
	if _, err := DecodeCounts([]BitVector{NewBitVector(3)}, cfg); err == nil {
		t.Fatal("width mismatch should fail")
	}
	// Degenerate p == q: no information; counts decode to zeros.
	deg := RapporConfig{Bits: 8, Hashes: 1, F: 0.5, P: 0.5, Q: 0.5}
	out, err := DecodeCounts([]BitVector{NewBitVector(8)}, deg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 0 {
			t.Fatal("degenerate config should decode to zeros")
		}
	}
}

func TestEstimateFrequencyEmptyValue(t *testing.T) {
	cfg := DefaultRapporConfig()
	rng := rand.New(rand.NewSource(4))
	c, err := NewClient("x", cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateFrequency("x", []BitVector{c.Report()}, cfg); err != nil {
		t.Fatal(err)
	}
}
