package ldp

import (
	"math"
	"math/rand"
	"testing"
)

// These tests pin the NaN/Inf guards at the privacy-parameter boundary:
// NaN fails every ordered comparison, so plain range checks like
// `f <= 0 || f > 1` silently accept it and the ε accounting goes NaN.

func TestEpsilonRejectsNonFinite(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if eps, err := Epsilon(3, f); err == nil {
			t.Errorf("Epsilon(3, %v) = %v, want error", f, eps)
		}
	}
}

func TestFlipProbabilityRejectsNonFinite(t *testing.T) {
	for _, eps := range []float64{math.NaN(), math.Inf(1)} {
		if f, err := FlipProbability(3, eps); err == nil {
			t.Errorf("FlipProbability(3, %v) = %v, want error", eps, f)
		}
	}
	// -Inf is already covered by the negative check.
	if _, err := FlipProbability(3, math.Inf(-1)); err == nil {
		t.Error("FlipProbability(3, -Inf) accepted")
	}
}

func TestClassicRRRejectsNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := ClassicRR(BitVector{true, false}, math.NaN(), rng); err == nil {
		t.Error("ClassicRR accepted eps = NaN")
	}
}

func TestRAPPORFlipRejectsNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RAPPORFlip(BitVector{true, false}, math.NaN(), rng); err == nil {
		t.Error("RAPPORFlip accepted f = NaN")
	}
}
