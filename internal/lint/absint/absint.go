package absint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"verro/internal/lint"
)

// Analyzer is one interval-domain policy check. Like a flow analyzer it
// sees the whole loaded program: function summaries computed in one
// package refine call results in another.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives.
	Name string
	// Doc is the one-line invariant the analyzer encodes.
	Doc string
	// Match, when non-nil, restricts reporting to functions declared in
	// packages whose import path it accepts.
	Match func(pkgPath string) bool

	// hooks binds the analyzer's checks to a reporter targeted at one
	// function's package.
	hooks func(rc *reportCtx) hookFns
}

// hookFns are the callbacks the interpreter fires during the reporting
// pass, with the abstract state already evaluated. A nil field means the
// analyzer does not care about that event.
type hookFns struct {
	// call fires for every resolved call: callee is the normalized full
	// name, args the argument intervals (excluding the receiver).
	call func(call *ast.CallExpr, callee string, args []Interval)
	// div fires for every / and % (including /= and %=): divisor is the
	// right operand's interval, integer whether it is an integer op.
	div func(pos token.Pos, divisor Interval, integer bool)
	// index fires for every slice/array/string index: idx is the index
	// interval, length the container's length interval.
	index func(pos token.Pos, idx, length Interval)
	// probCmp fires when a value is compared against rand.Float64():
	// prob is the other operand's interval.
	probCmp func(pos token.Pos, prob Interval)
}

// program indexes the loaded packages' function declarations by
// normalized full name, mirroring the flow engine's cross-package
// identity: name strings, not object pointers, because each Loader
// re-type-checks dependencies into distinct universes.
type program struct {
	pkgs []*lint.Package
	fns  map[string]*fnInfo
}

type fnInfo struct {
	pkg  *lint.Package
	decl *ast.FuncDecl
	obj  *types.Func
}

func newProgram(pkgs []*lint.Package) *program {
	prog := &program{pkgs: pkgs, fns: map[string]*fnInfo{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.fns[normName(obj)] = &fnInfo{pkg: pkg, decl: fd, obj: obj}
			}
		}
	}
	return prog
}

// fnNames returns the indexed names sorted — the deterministic iteration
// order of the summary fixpoint and the reporting pass.
func (p *program) fnNames() []string {
	names := make([]string, 0, len(p.fns))
	for name := range p.fns {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// normName strips pointer-receiver stars from types.Func.FullName so
// "(*T).M" and "(T).M" coincide, matching the flow engine's convention.
func normName(fn *types.Func) string {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return strings.ReplaceAll(fn.FullName(), "*", "")
}

// Run executes the interval analyzers over the program formed by pkgs:
// one summary fixpoint, then one reporting pass per function with every
// matching analyzer's hooks attached. Diagnostics come back sorted and
// deduplicated, with //lint:allow honored exactly as in the other suites.
func Run(pkgs []*lint.Package, analyzers ...*Analyzer) []lint.Diagnostic {
	prog := newProgram(pkgs)
	eng := &engine{prog: prog, sums: map[string][]Interval{}}
	eng.computeSummaries()

	allow := map[*lint.Package]*lint.AllowIndex{}
	for _, pkg := range pkgs {
		allow[pkg] = pkg.Allow()
	}
	var diags []lint.Diagnostic
	reps := make([]*reporter, len(analyzers))
	for i, a := range analyzers {
		reps[i] = &reporter{analyzer: a.Name, allow: allow, seen: map[string]bool{}}
	}
	for _, name := range prog.fnNames() {
		fn := prog.fns[name]
		var hooks []hookFns
		for i, a := range analyzers {
			if a.Match != nil && !a.Match(fn.pkg.Path) {
				continue
			}
			hooks = append(hooks, a.hooks(&reportCtx{rep: reps[i], pkg: fn.pkg}))
		}
		eng.analyzeDecl(fn, hooks)
	}
	for _, r := range reps {
		diags = append(diags, r.diags...)
	}
	lint.Sort(diags)
	return diags
}

// AnalyzePackage runs the interval analyzers over one package, resolving
// calls into dependencies through deps (their converged result-interval
// summaries, keyed by normalized function name). It returns the package's
// own summaries and its sorted diagnostics. The per-package split follows
// the same argument as the flow engine's (DESIGN.md §2i): summaries flow
// strictly callee→caller over an acyclic import graph. Because widening is
// applied per fixpoint, per-package summaries can be *tighter* than the
// interleaved whole-program ones (dependencies are fully converged before
// dependents start) — never wider, so soundness is preserved.
func AnalyzePackage(pkg *lint.Package, analyzers []*Analyzer, deps map[string][]Interval) (map[string][]Interval, []lint.Diagnostic) {
	prog := newProgram([]*lint.Package{pkg})
	eng := &engine{prog: prog, sums: map[string][]Interval{}, base: deps}
	eng.computeSummaries()

	allow := map[*lint.Package]*lint.AllowIndex{pkg: pkg.Allow()}
	var diags []lint.Diagnostic
	reps := make([]*reporter, len(analyzers))
	for i, a := range analyzers {
		reps[i] = &reporter{analyzer: a.Name, allow: allow, seen: map[string]bool{}}
	}
	for _, name := range prog.fnNames() {
		fn := prog.fns[name]
		var hooks []hookFns
		for i, a := range analyzers {
			if a.Match != nil && !a.Match(fn.pkg.Path) {
				continue
			}
			hooks = append(hooks, a.hooks(&reportCtx{rep: reps[i], pkg: fn.pkg}))
		}
		eng.analyzeDecl(fn, hooks)
	}
	for _, r := range reps {
		diags = append(diags, r.diags...)
	}
	lint.Sort(diags)
	return eng.sums, diags
}

// reporter collects one analyzer's diagnostics, deduplicating repeats and
// honoring allow directives (same contract as the flow engine's).
type reporter struct {
	analyzer string
	allow    map[*lint.Package]*lint.AllowIndex
	seen     map[string]bool
	diags    []lint.Diagnostic
}

// reportCtx targets a reporter at one package (for position resolution
// and its allow index).
type reportCtx struct {
	rep *reporter
	pkg *lint.Package
}

func (rc *reportCtx) reportf(pos token.Pos, format string, args ...any) {
	position := rc.pkg.Fset.Position(pos)
	if rc.rep.allow[rc.pkg].Allows(rc.rep.analyzer, position) {
		return
	}
	d := lint.Diagnostic{Pos: position, Analyzer: rc.rep.analyzer, Message: fmt.Sprintf(format, args...)}
	key := d.String()
	if rc.rep.seen[key] {
		return
	}
	rc.rep.seen[key] = true
	rc.rep.diags = append(rc.rep.diags, d)
}
