package absint

import (
	"testing"
	"time"

	"verro/internal/lint"
)

func TestProbRangeFixture(t *testing.T) {
	RunFixture(t, []string{"testdata/probrange"}, NewProbRange())
}

func TestDivZeroFixture(t *testing.T) {
	RunFixture(t, []string{"testdata/divzero"}, NewDivZero())
}

func TestIdxBoundFixture(t *testing.T) {
	RunFixture(t, []string{"testdata/idxbound"}, NewIdxBound())
}

// TestProjectSuiteOnFixtures runs the full configured suite over every
// fixture at once: the project Match functions must admit the fixture
// packages, and analyzers must not trip over each other's fixtures (a
// fixture only carries want comments for its own analyzer, so a stray
// cross-analyzer finding fails the check... unless it is legitimate, in
// which case the fixture documents it).
func TestProjectSuiteOnFixtures(t *testing.T) {
	for _, dir := range []string{"testdata/widen"} {
		RunFixture(t, []string{dir}, ProjectAnalyzers()...)
	}
}

// TestWideningTerminates is the regression test for fixpoint divergence:
// loops with growing counters must converge via widening. The generous
// deadline only trips if the worklist truly runs away.
func TestWideningTerminates(t *testing.T) {
	done := make(chan []string, 1)
	go func() {
		problems, err := CheckFixture(lint.NewLoader(), []string{"testdata/widen"}, ProjectAnalyzers()...)
		if err != nil {
			t.Errorf("widen fixture: %v", err)
		}
		done <- problems
	}()
	select {
	case problems := <-done:
		for _, p := range problems {
			t.Errorf("widen fixture: %s", p)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("widening did not terminate: fixpoint still running after 60s")
	}
}

// TestAnalyzerNamesDistinct guards the shared-baseline contract: absint
// analyzer names must not collide with each other (classic and flow
// uniqueness is asserted in the driver test, which can see all three
// suites).
func TestAnalyzerNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range ProjectAnalyzers() {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
	}
}
