package absint

import (
	"go/token"
	"math"

	"verro/internal/lint"
)

// NewBCE builds the bce analyzer: every indexing site inside a hot loop
// must be provably bounds-check-eliminable. The division of labor is the
// inverse of idxbound's: idxbound reports evidence that an index CAN
// escape [0, len); bce reports the ABSENCE of a proof that it cannot —
// the compiler will then keep an IsInBounds check in the hottest code in
// the repository.
//
// site classifies positions (the index operand's Pos, where the
// interpreter fires the index hook): hot selects sites inside hot loops
// (computed by internal/lint/perf, which owns the hot-set policy — the
// callback indirection exists because perf imports this package for the
// engine); proven means a syntactic dominating-check argument already
// shows the compiler eliminates the check (range loops over the same
// slice, counter loops bounded by its len). Unproven sites get one more
// chance from the interval facts — a constant-length container with a
// provably in-range index is exactly what the compiler also sees — and
// are reported otherwise, with the rewrite idioms the prover recognizes.
//
// Soundness gate: a reported site must be one where the compiler really
// keeps the check. perf/groundtruth_test.go asserts reported positions
// are a subset of `go build -gcflags=-d=ssa/check_bce` output for the
// kernel packages.
func NewBCE(site func(pkg *lint.Package, pos token.Pos) (hot, proven bool)) *Analyzer {
	a := &Analyzer{
		Name: "bce",
		Doc:  "hot-loop indexing must be provably bounds-check-eliminable",
	}
	a.hooks = func(rc *reportCtx) hookFns {
		return hookFns{
			index: func(pos token.Pos, idx, length Interval) {
				hot, proven := site(rc.pkg, pos)
				if !hot || proven {
					return
				}
				// Value proof: the index interval fits below every
				// possible length. Exact for constant-length arrays and
				// locally-made slices — the same facts the compiler's
				// prove pass derives, so staying silent here never hides
				// a kept check... and the reverse direction (compiler
				// proves, we cannot) is exactly what reports.
				if idx.Lo >= 0 && !math.IsInf(length.Lo, -1) && idx.Hi < length.Lo {
					return
				}
				rc.reportf(pos, "bounds check in hot loop is not provably eliminable (index %s, len %s); iterate the indexed slice directly (for i := range s / i < len(s)) or hoist a bound assertion (_ = s[n-1]) before the loop", idx, length)
			},
		}
	}
	return a
}
