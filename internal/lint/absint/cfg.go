package absint

import (
	"go/ast"
	"go/token"
)

// The CFG lowering: every function body becomes a list of basic blocks
// holding only straight-line statements (assignments, declarations,
// expression statements, inc/dec, go/defer); control flow — if, for,
// range, switch, select, return, break/continue/goto — becomes edges. The
// interpreter never sees a control statement; it executes block bodies
// and applies edge refinements. Goroutine bodies contribute no edges (a
// `go` statement's call is checked where it appears, but its execution is
// not sequenced into the CFG).

// edgeKind distinguishes how an edge constrains the target state.
type edgeKind int

const (
	edgePlain     edgeKind = iota
	edgeCondTrue           // taken when cond is true: refine with cond
	edgeCondFalse          // taken when cond is false: refine with ¬cond
	edgeCase               // switch case match: tag ∈ join(vals)
	edgeRangeBody          // entering a range body: bind key/value
)

// edge is one CFG arc with its refinement payload.
type edge struct {
	to   *block
	kind edgeKind
	cond ast.Expr       // edgeCondTrue / edgeCondFalse
	tag  ast.Expr       // edgeCase (nil for tagless switch)
	vals []ast.Expr     // edgeCase
	rng  *ast.RangeStmt // edgeRangeBody
}

// block is one basic block.
type block struct {
	id    int
	stmts []ast.Stmt
	// ret, when non-nil, terminates the function through this block.
	ret *ast.ReturnStmt
	// cond, when non-nil, is evaluated after stmts; succs then carry
	// edgeCondTrue/edgeCondFalse refinements on it.
	cond  ast.Expr
	succs []edge
}

// cfg is one lowered function body.
type cfg struct {
	blocks []*block
	entry  *block
}

// loopFrame tracks the jump targets of one enclosing loop or switch.
type loopFrame struct {
	label          string
	breakTarget    *block
	continueTarget *block // nil for switch/select frames
}

type cfgBuilder struct {
	blocks []*block
	frames []loopFrame
	// labels maps label names to started blocks for goto resolution.
	labels map[string]*block
	// gotos records unresolved goto edges (source block, label).
	gotos []pendingGoto
	// pendingLabel is attached to the next loop/switch frame pushed.
	pendingLabel string
}

type pendingGoto struct {
	from  *block
	label string
}

func (b *cfgBuilder) newBlock() *block {
	bl := &block{id: len(b.blocks)}
	b.blocks = append(b.blocks, bl)
	return bl
}

func (b *cfgBuilder) link(from, to *block, e edge) {
	e.to = to
	from.succs = append(from.succs, e)
}

// buildCFG lowers the body of a function (or function literal).
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{labels: map[string]*block{}}
	entry := b.newBlock()
	last := b.stmtList(body.List, entry)
	_ = last // falling off the end returns with zero results; no edge needed
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.link(g.from, target, edge{})
		}
	}
	return &cfg{blocks: b.blocks, entry: entry}
}

// stmtList lowers a statement sequence starting in cur, returning the
// block where control continues (nil when the sequence cannot fall
// through).
func (b *cfgBuilder) stmtList(list []ast.Stmt, cur *block) *block {
	for _, s := range list {
		if cur == nil {
			// Unreachable statements after return/break; lower them into a
			// fresh block with no predecessors so the interpreter records
			// them as dead rather than silently skipping.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur *block) *block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		cur.cond = s.Cond
		thenB := b.newBlock()
		b.link(cur, thenB, edge{kind: edgeCondTrue, cond: s.Cond})
		thenEnd := b.stmtList(s.Body.List, thenB)
		join := b.newBlock()
		if s.Else != nil {
			elseB := b.newBlock()
			b.link(cur, elseB, edge{kind: edgeCondFalse, cond: s.Cond})
			if elseEnd := b.stmt(s.Else, elseB); elseEnd != nil {
				b.link(elseEnd, join, edge{})
			}
		} else {
			b.link(cur, join, edge{kind: edgeCondFalse, cond: s.Cond})
		}
		if thenEnd != nil {
			b.link(thenEnd, join, edge{})
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		head := b.newBlock()
		b.link(cur, head, edge{})
		exit := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		if s.Cond != nil {
			head.cond = s.Cond
			b.link(head, body, edge{kind: edgeCondTrue, cond: s.Cond})
			b.link(head, exit, edge{kind: edgeCondFalse, cond: s.Cond})
		} else {
			b.link(head, body, edge{})
		}
		b.pushFrame(exit, post)
		bodyEnd := b.stmtList(s.Body.List, body)
		b.popFrame()
		if bodyEnd != nil {
			b.link(bodyEnd, post, edge{})
		}
		if s.Post != nil {
			post.stmts = append(post.stmts, s.Post)
		}
		b.link(post, head, edge{})
		return exit

	case *ast.RangeStmt:
		// Evaluate the range container once on entry so hooks see it.
		cur.stmts = append(cur.stmts, &ast.ExprStmt{X: s.X})
		head := b.newBlock()
		b.link(cur, head, edge{})
		exit := b.newBlock()
		body := b.newBlock()
		b.link(head, body, edge{kind: edgeRangeBody, rng: s})
		b.link(head, exit, edge{})
		b.pushFrame(exit, head)
		if bodyEnd := b.stmtList(s.Body.List, body); bodyEnd != nil {
			b.link(bodyEnd, head, edge{})
		}
		b.popFrame()
		return exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		if s.Tag != nil {
			cur.stmts = append(cur.stmts, &ast.ExprStmt{X: s.Tag})
		}
		exit := b.newBlock()
		b.pushSwitchFrame(exit)
		var caseBodies []*block
		var hasDefault bool
		for range s.Body.List {
			caseBodies = append(caseBodies, b.newBlock())
		}
		// A tagless switch is an if/else-if chain: each case's dispatch
		// block carries the accumulated negations of the cases before it,
		// so `case delta == 0: ...; case maxc == r: x / delta` sees
		// delta != 0 in the later bodies.
		defaultIdx := -1
		dispatch := cur
		for i, cc := range s.Body.List {
			cc := cc.(*ast.CaseClause)
			switch {
			case cc.List == nil:
				hasDefault = true
				defaultIdx = i
				if s.Tag != nil {
					b.link(cur, caseBodies[i], edge{})
				}
			case s.Tag != nil:
				b.link(cur, caseBodies[i], edge{kind: edgeCase, tag: s.Tag, vals: cc.List})
			case len(cc.List) == 1:
				dispatch.stmts = append(dispatch.stmts, &ast.ExprStmt{X: cc.List[0]})
				next := b.newBlock()
				b.link(dispatch, caseBodies[i], edge{kind: edgeCondTrue, cond: cc.List[0]})
				b.link(dispatch, next, edge{kind: edgeCondFalse, cond: cc.List[0]})
				dispatch = next
			default:
				// Multiple boolean expressions in one case: their
				// disjunction (and its negation) is not tracked.
				for _, v := range cc.List {
					dispatch.stmts = append(dispatch.stmts, &ast.ExprStmt{X: v})
				}
				next := b.newBlock()
				b.link(dispatch, caseBodies[i], edge{})
				b.link(dispatch, next, edge{})
				dispatch = next
			}
			end := b.stmtListFallthrough(cc.Body, caseBodies[i], caseBodies, i)
			if end != nil {
				b.link(end, exit, edge{})
			}
		}
		b.popFrame()
		if s.Tag == nil {
			// End of the chain: every case condition was false.
			if defaultIdx >= 0 {
				b.link(dispatch, caseBodies[defaultIdx], edge{})
			} else {
				b.link(dispatch, exit, edge{})
			}
		} else if !hasDefault {
			b.link(cur, exit, edge{})
		}
		return exit

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		exit := b.newBlock()
		b.pushSwitchFrame(exit)
		hasDefault := false
		for _, cc := range s.Body.List {
			cc := cc.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			body := b.newBlock()
			b.link(cur, body, edge{})
			if end := b.stmtList(cc.Body, body); end != nil {
				b.link(end, exit, edge{})
			}
		}
		b.popFrame()
		if !hasDefault {
			b.link(cur, exit, edge{})
		}
		return exit

	case *ast.SelectStmt:
		exit := b.newBlock()
		b.pushSwitchFrame(exit)
		for _, cc := range s.Body.List {
			cc := cc.(*ast.CommClause)
			body := b.newBlock()
			b.link(cur, body, edge{})
			if cc.Comm != nil {
				body.stmts = append(body.stmts, cc.Comm)
			}
			if end := b.stmtList(cc.Body, body); end != nil {
				b.link(end, exit, edge{})
			}
		}
		b.popFrame()
		return exit

	case *ast.ReturnStmt:
		cur.ret = s
		return nil

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findBreak(label); t != nil {
				b.link(cur, t, edge{})
			}
			return nil
		case token.CONTINUE:
			if t := b.findContinue(label); t != nil {
				b.link(cur, t, edge{})
			}
			return nil
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: cur, label: label})
			return nil
		case token.FALLTHROUGH:
			// Handled by stmtListFallthrough; reaching here means a
			// fallthrough outside a switch body list — drop it.
			return nil
		}
		return cur

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.link(cur, target, edge{})
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		out := b.stmt(s.Stmt, target)
		b.pendingLabel = ""
		return out

	case *ast.EmptyStmt:
		return cur

	default:
		// Straight-line statement: assign, decl, inc/dec, expr, send,
		// go, defer.
		cur.stmts = append(cur.stmts, s)
		// A statement that provably never returns (panic, os.Exit) ends
		// the block with no fallthrough, so guards like
		// `if n == 0 { panic(...) }` refine the code below them.
		if es, ok := s.(*ast.ExprStmt); ok && isNoReturnCall(es.X) {
			return nil
		}
		return cur
	}
}

// stmtListFallthrough lowers a case body, wiring a trailing fallthrough to
// the next case's body block.
func (b *cfgBuilder) stmtListFallthrough(list []ast.Stmt, cur *block, bodies []*block, i int) *block {
	if n := len(list); n > 0 {
		if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			end := b.stmtList(list[:n-1], cur)
			if end != nil && i+1 < len(bodies) {
				b.link(end, bodies[i+1], edge{})
			}
			return nil
		}
	}
	return b.stmtList(list, cur)
}

// isNoReturnCall recognizes calls that terminate the goroutine: panic and
// os.Exit. (log.Fatal would qualify too; the repo's lint rules forbid it
// in pipeline code.)
func isNoReturnCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			switch id.Name {
			case "os":
				return fun.Sel.Name == "Exit"
			case "log":
				switch fun.Sel.Name {
				case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
					return true
				}
			}
		}
	}
	return false
}

func (b *cfgBuilder) pushFrame(breakT, contT *block) {
	b.frames = append(b.frames, loopFrame{label: b.pendingLabel, breakTarget: breakT, continueTarget: contT})
	b.pendingLabel = ""
}

func (b *cfgBuilder) pushSwitchFrame(breakT *block) {
	b.frames = append(b.frames, loopFrame{label: b.pendingLabel, breakTarget: breakT})
	b.pendingLabel = ""
}

func (b *cfgBuilder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

func (b *cfgBuilder) findBreak(label string) *block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label == "" || f.label == label {
			return f.breakTarget
		}
	}
	return nil
}

func (b *cfgBuilder) findContinue(label string) *block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if f.continueTarget == nil {
			continue // switch/select frames are transparent to continue
		}
		if label == "" || f.label == label {
			return f.continueTarget
		}
	}
	return nil
}
