package absint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"

	"verro/internal/lint"
	"verro/internal/lint/cfg"
)

// Tuning knobs of the interpreter. widenAfter trades loop precision for
// convergence speed; maxLitDepth bounds nested function-literal analysis;
// maxSteps is a hard safety net should widening ever fail to converge
// (it cannot on this lattice, but an analysis must not hang the build).
const (
	widenAfter  = 3
	maxLitDepth = 3
	maxRounds   = 8
)

// cell identifies one tracked abstract location: a *types.Var (numeric
// local) or lenCell (the length of a local slice/map/string/channel).
type lenCell struct{ obj types.Object }

// state is the abstract environment at one program point. Absent cells
// hold their type's default interval (defaultFor); reach distinguishes a
// reachable empty environment from bottom.
type state struct {
	vars     map[any]Interval
	volatile map[types.Object]bool
	reach    bool
}

func newState() state {
	return state{vars: map[any]Interval{}, volatile: map[types.Object]bool{}, reach: true}
}

func (st state) clone() state {
	out := state{vars: make(map[any]Interval, len(st.vars)),
		volatile: make(map[types.Object]bool, len(st.volatile)), reach: st.reach}
	for k, v := range st.vars {
		out.vars[k] = v
	}
	for k := range st.volatile {
		out.volatile[k] = true
	}
	return out
}

// defaultFor is the interval an untracked or never-assigned cell holds.
func defaultFor(c any) Interval {
	switch c := c.(type) {
	case lenCell:
		return Interval{0, inf}
	case types.Object:
		return topOf(c.Type())
	}
	return top
}

func (st *state) isVolatile(c any) bool {
	switch c := c.(type) {
	case lenCell:
		return st.volatile[c.obj]
	case types.Object:
		return st.volatile[c]
	}
	return false
}

func (st *state) get(c any) Interval {
	if st.isVolatile(c) {
		return defaultFor(c)
	}
	if iv, ok := st.vars[c]; ok {
		return iv
	}
	return defaultFor(c)
}

func (st *state) set(c any, iv Interval) {
	if st.isVolatile(c) {
		return
	}
	if iv.Eq(defaultFor(c)) {
		delete(st.vars, c)
		return
	}
	st.vars[c] = iv
}

// markVolatile poisons a variable whose value can change behind the
// interpreter's back (address taken, or written by a closure): reads
// degrade to the type's default from here on.
func (st *state) markVolatile(obj types.Object) {
	st.volatile[obj] = true
	delete(st.vars, obj)
	delete(st.vars, lenCell{obj})
}

// joinState is the pointwise lattice join; bottom (unreachable) is the
// identity.
func joinState(a, b state) state {
	if !a.reach {
		return b.clone()
	}
	if !b.reach {
		return a.clone()
	}
	out := newState()
	for k := range a.vars {
		out.set(k, a.get(k).Join(b.get(k)))
	}
	for k := range b.vars {
		if _, done := a.vars[k]; !done {
			out.set(k, a.get(k).Join(b.get(k)))
		}
	}
	for k := range a.volatile {
		out.volatile[k] = true
	}
	for k := range b.volatile {
		out.volatile[k] = true
	}
	// Volatility wins over any recorded value.
	for k := range out.volatile {
		delete(out.vars, k)
		delete(out.vars, lenCell{k})
	}
	return out
}

// widenState extrapolates cells of next that grew past prev.
func widenState(prev, next state) state {
	if !prev.reach || !next.reach {
		return next
	}
	out := next.clone()
	for k := range next.vars {
		out.set(k, prev.get(k).Widen(next.get(k)))
	}
	return out
}

// narrowState refines infinite bounds of widened with recomputed ones.
func narrowState(widened, recomputed state) state {
	if !widened.reach || !recomputed.reach {
		return widened
	}
	out := widened.clone()
	for k := range widened.vars {
		out.set(k, widened.get(k).Narrow(recomputed.get(k)))
	}
	return out
}

func eqState(a, b state) bool {
	if a.reach != b.reach {
		return false
	}
	if !a.reach {
		return true
	}
	if len(a.vars) != len(b.vars) || len(a.volatile) != len(b.volatile) {
		return false
	}
	for k, v := range a.vars {
		if bv, ok := b.vars[k]; !ok || !bv.Eq(v) {
			return false
		}
	}
	for k := range a.volatile {
		if !b.volatile[k] {
			return false
		}
	}
	return true
}

// topOf is the type-informed unknown: unsigned integers are nonnegative,
// sized integers carry their representable range, everything else is top.
func topOf(t types.Type) Interval {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return top
	}
	switch b.Kind() {
	case types.Uint8:
		return Interval{0, 255}
	case types.Uint16:
		return Interval{0, 65535}
	case types.Uint32:
		return Interval{0, 4294967295}
	case types.Uint, types.Uint64, types.Uintptr:
		return Interval{0, inf}
	case types.Int8:
		return Interval{-128, 127}
	case types.Int16:
		return Interval{-32768, 32767}
	case types.Int32:
		return Interval{-2147483648, 2147483647}
	default:
		return top
	}
}

func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0 && b.Info()&types.IsComplex == 0
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isUnsigned(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}

// hasLen reports whether len() of the type reads a tracked length cell.
func hasLenCell(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Chan:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Info()&types.IsString != 0
	}
	return false
}

// engine carries the whole-program summary table: normalized function
// name → result intervals computed with top parameters.
type engine struct {
	prog *program
	sums map[string][]Interval
	// base holds converged summaries of functions outside prog — the
	// dependency facts a per-package incremental run (AnalyzePackage) feeds
	// in. Read-only; own-package summaries in sums always win.
	base map[string][]Interval
}

// lookup resolves a callee summary: the program's own evolving table first,
// then the read-only dependency base.
func (e *engine) lookup(name string) ([]Interval, bool) {
	if sum, ok := e.sums[name]; ok {
		return sum, true
	}
	sum, ok := e.base[name]
	return sum, ok
}

// computeSummaries iterates every function's result intervals to a
// whole-program fixpoint, bottom-up in sorted name order with widening
// after the early rounds, mirroring the flow engine's summary loop.
func (e *engine) computeSummaries() {
	names := e.prog.fnNames()
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, name := range names {
			fn := e.prog.fns[name]
			results := e.interpret(fn.pkg, fn.decl.Type, fn.decl.Body, nil, nil, 0)
			old := e.sums[name]
			merged := make([]Interval, len(results))
			for i := range results {
				prev := bottomIv
				if i < len(old) {
					prev = old[i]
				}
				merged[i] = prev.Join(results[i])
				if round >= widenAfter {
					merged[i] = prev.Widen(merged[i])
				}
				if !merged[i].Eq(prev) {
					changed = true
				}
			}
			e.sums[name] = merged
		}
		if !changed {
			return
		}
	}
	// Out of rounds: drop every summary to top-of-type so the reporting
	// pass never consumes an unconverged (too-narrow) summary.
	for _, name := range names {
		fn := e.prog.fns[name]
		sig := fn.obj.Type().(*types.Signature)
		outs := make([]Interval, sig.Results().Len())
		for i := range outs {
			outs[i] = topOf(sig.Results().At(i).Type())
		}
		e.sums[name] = outs
	}
}

// analyzeDecl runs the reporting pass over one function with the given
// policy hooks attached.
func (e *engine) analyzeDecl(fn *fnInfo, hooks []hookFns) {
	e.interpret(fn.pkg, fn.decl.Type, fn.decl.Body, fn.decl.Recv, hooks, 0)
}

// interpret lowers and abstractly executes one function body: ascending
// worklist fixpoint with widening, one narrowing pass, and — when hooks
// are attached — a final reporting walk. It returns the joined result
// intervals.
func (e *engine) interpret(pkg *lint.Package, ftyp *ast.FuncType, body *ast.BlockStmt,
	recv *ast.FieldList, hooks []hookFns, depth int) []Interval {

	entry := newState()
	bindFieldList(pkg.Info, recv, &entry, nil)
	if ftyp != nil {
		bindFieldList(pkg.Info, ftyp.Params, &entry, nil)
	}
	nResults := 0
	var resultObjs []types.Object
	if ftyp != nil && ftyp.Results != nil {
		for _, f := range ftyp.Results.List {
			if len(f.Names) == 0 {
				nResults++
				continue
			}
			for _, name := range f.Names {
				nResults++
				if obj := pkg.Info.Defs[name]; obj != nil {
					resultObjs = append(resultObjs, obj)
					// Named results start at their zero value.
					if isNumeric(obj.Type()) {
						entry.set(obj, point(0))
					}
				}
			}
		}
	}

	ip := &interp{e: e, pkg: pkg, hooks: hooks, depth: depth,
		results: make([]Interval, nResults), resultObjs: resultObjs}
	for i := range ip.results {
		ip.results[i] = bottomIv
	}
	ip.runBody(body, entry)
	return ip.results
}

// bindFieldList seeds parameter (or receiver) cells. ivs, when non-nil,
// provides per-parameter intervals (par.For closure bounds, direct
// function-literal calls); otherwise parameters are top-of-type.
func bindFieldList(info *types.Info, fields *ast.FieldList, st *state, ivs []Interval) {
	if fields == nil {
		return
	}
	i := 0
	for _, f := range fields.List {
		names := f.Names
		if len(names) == 0 {
			i++
			continue
		}
		for _, name := range names {
			obj := info.Defs[name]
			if obj != nil && isNumeric(obj.Type()) {
				iv := topOf(obj.Type())
				if ivs != nil && i < len(ivs) {
					iv = iv.Meet(ivs[i])
					if iv.IsBottom() {
						iv = topOf(obj.Type())
					}
				}
				st.set(obj, iv)
			}
			i++
		}
	}
}

// interp is the per-function-body interpreter.
type interp struct {
	e     *engine
	pkg   *lint.Package
	hooks []hookFns
	depth int

	// reporting is true during the final walk — the only phase in which
	// hooks fire and function literals are descended into.
	reporting bool

	results    []Interval
	resultObjs []types.Object
}

func (ip *interp) info() *types.Info { return ip.pkg.Info }

// runBody drives the three phases over one lowered body.
func (ip *interp) runBody(body *ast.BlockStmt, entry state) {
	c := cfg.Build(body)
	n := len(c.Blocks)
	in := make([]state, n)
	out := make([]state, n)
	visits := make([]int, n)
	in[c.Entry.ID] = entry

	// Ascending fixpoint with widening.
	queued := make([]bool, n)
	wl := []int{c.Entry.ID}
	queued[c.Entry.ID] = true
	steps := 0
	maxSteps := 64*n + 256
	for len(wl) > 0 {
		if steps++; steps > maxSteps {
			break // safety net; widening makes this unreachable in practice
		}
		id := wl[0]
		wl = wl[1:]
		queued[id] = false
		if !in[id].reach {
			continue
		}
		st := in[id].clone()
		ip.execBlock(c.Blocks[id], &st)
		out[id] = st
		for _, ed := range c.Blocks[id].Succs {
			s2 := st.clone()
			ip.applyEdge(ed, &s2)
			if !s2.reach {
				continue
			}
			tgt := ed.To.ID
			merged := joinState(in[tgt], s2)
			if visits[tgt] >= widenAfter {
				merged = widenState(in[tgt], merged)
			}
			if !eqState(merged, in[tgt]) {
				in[tgt] = merged
				visits[tgt]++
				if !queued[tgt] {
					wl = append(wl, tgt)
					queued[tgt] = true
				}
			}
		}
	}

	// One descending (narrowing) pass: recompute each block's entry from
	// its predecessors' final outputs and claw back infinite bounds the
	// widening introduced.
	preds := make([][]edgeFrom, n)
	for _, b := range c.Blocks {
		for _, ed := range b.Succs {
			preds[ed.To.ID] = append(preds[ed.To.ID], edgeFrom{from: b.ID, e: ed})
		}
	}
	for id := 0; id < n; id++ {
		if id != c.Entry.ID && len(preds[id]) > 0 {
			recomputed := state{}
			for _, pe := range preds[id] {
				if !out[pe.from].reach {
					continue
				}
				s2 := out[pe.from].clone()
				ip.applyEdge(pe.e, &s2)
				if !s2.reach {
					continue
				}
				recomputed = joinState(recomputed, s2)
			}
			in[id] = narrowState(in[id], recomputed)
		}
		if in[id].reach {
			st := in[id].clone()
			ip.execBlock(c.Blocks[id], &st)
			out[id] = st
		}
	}

	// Reporting pass: hooks fire, function literals are analyzed.
	if len(ip.hooks) > 0 {
		ip.reporting = true
		for id := 0; id < n; id++ {
			if !in[id].reach {
				continue
			}
			st := in[id].clone()
			ip.execBlock(c.Blocks[id], &st)
		}
		ip.reporting = false
	}
}

type edgeFrom struct {
	from int
	e    cfg.Edge
}

// execBlock runs the block's straight-line statements, then evaluates its
// terminator condition or return.
func (ip *interp) execBlock(b *cfg.Block, st *state) {
	for _, s := range b.Stmts {
		ip.execStmt(s, st)
	}
	if b.Cond != nil {
		ip.eval(b.Cond, st)
	}
	if b.Ret != nil {
		ip.execReturn(b.Ret, st)
	}
}

func (ip *interp) execStmt(s ast.Stmt, st *state) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		ip.eval(s.X, st)
	case *ast.AssignStmt:
		ip.execAssign(s, st)
	case *ast.IncDecStmt:
		delta := point(1)
		if s.Tok == token.DEC {
			delta = point(-1)
		}
		iv := ip.eval(s.X, st).Add(delta)
		ip.assignTo(s.X, ip.clamp(s.X, iv), st)
	case *ast.DeclStmt:
		ip.execDecl(s.Decl, st)
	case *ast.GoStmt:
		ip.eval(s.Call, st)
	case *ast.DeferStmt:
		ip.eval(s.Call, st)
	case *ast.SendStmt:
		ip.eval(s.Chan, st)
		ip.eval(s.Value, st)
	case *ast.ReturnStmt:
		// Returns are normally terminators; one can still appear here via
		// a synthesized wrapper. Treat it as its terminator form.
		ip.execReturn(s, st)
	}
}

func (ip *interp) execReturn(s *ast.ReturnStmt, st *state) {
	if len(s.Results) == 0 {
		// Bare return: named results carry the values.
		for i, obj := range ip.resultObjs {
			if i < len(ip.results) {
				ip.results[i] = ip.results[i].Join(st.get(obj))
			}
		}
		return
	}
	if len(s.Results) == 1 && len(ip.results) > 1 {
		// return f() spreading a multi-value call.
		if call, ok := unparen(s.Results[0]).(*ast.CallExpr); ok {
			res := ip.evalCall(call, st)
			for i := range ip.results {
				iv := top
				if i < len(res) {
					iv = res[i]
				}
				ip.results[i] = ip.results[i].Join(iv)
			}
			return
		}
	}
	for i, r := range s.Results {
		iv := ip.eval(r, st)
		if i < len(ip.results) {
			ip.results[i] = ip.results[i].Join(iv)
		}
	}
}

func (ip *interp) execDecl(d ast.Decl, st *state) {
	gd, ok := d.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 0 {
			// Zero-value declaration: numerics are 0, slices/maps are nil
			// (length 0).
			for _, name := range vs.Names {
				obj := ip.info().Defs[name]
				if obj == nil {
					continue
				}
				if isNumeric(obj.Type()) {
					st.set(obj, point(0))
				} else if hasLenCell(obj.Type()) {
					st.set(lenCell{obj}, point(0))
				}
			}
			continue
		}
		ip.assignPairs(identExprs(vs.Names), vs.Values, st)
	}
}

func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

func (ip *interp) execAssign(s *ast.AssignStmt, st *state) {
	if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
		ip.assignPairs(s.Lhs, s.Rhs, st)
		return
	}
	// Compound assignment: x op= y  ⇒  x = x op y.
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	x := ip.eval(lhs, st)
	y := ip.eval(rhs, st)
	var op token.Token
	switch s.Tok {
	case token.ADD_ASSIGN:
		op = token.ADD
	case token.SUB_ASSIGN:
		op = token.SUB
	case token.MUL_ASSIGN:
		op = token.MUL
	case token.QUO_ASSIGN:
		op = token.QUO
	case token.REM_ASSIGN:
		op = token.REM
	default:
		ip.assignTo(lhs, topOfExpr(ip, lhs), st)
		return
	}
	integer := isInteger(ip.typeOf(lhs))
	if op == token.QUO || op == token.REM {
		ip.fireDiv(s.TokPos, y, integer)
	}
	iv := applyArith(op, x, y, integer)
	ip.assignTo(lhs, ip.clamp(lhs, iv), st)
}

func topOfExpr(ip *interp, e ast.Expr) Interval { return topOf(ip.typeOf(e)) }

// assignPairs implements parallel assignment, including the multi-value
// single-RHS forms (call, comma-ok, range is handled by edges).
func (ip *interp) assignPairs(lhs, rhs []ast.Expr, st *state) {
	if len(rhs) == 1 && len(lhs) > 1 {
		// Multi-value RHS.
		var res []Interval
		if call, ok := unparen(rhs[0]).(*ast.CallExpr); ok {
			res = ip.evalCall(call, st)
		} else {
			ip.eval(rhs[0], st) // comma-ok forms: map read, type assert, recv
		}
		for i, l := range lhs {
			iv := top
			if i < len(res) {
				iv = res[i]
			}
			ip.assignTo(l, ip.clamp(l, iv), st)
		}
		return
	}
	type rhsVal struct {
		iv     Interval
		length Interval
		hasLen bool
	}
	vals := make([]rhsVal, len(rhs))
	for i, r := range rhs {
		v := rhsVal{iv: ip.eval(r, st)}
		v.length, v.hasLen = ip.lenOfValue(r, st)
		vals[i] = v
	}
	for i, l := range lhs {
		if i >= len(vals) {
			break
		}
		ip.assignTo(l, ip.clamp(l, vals[i].iv), st)
		if vals[i].hasLen {
			if obj, ok := ip.lhsObj(l); ok && hasLenCell(obj.Type()) {
				st.set(lenCell{obj}, vals[i].length)
			}
		}
	}
}

// lhsObj resolves an assignable identifier to its tracked object.
func (ip *interp) lhsObj(e ast.Expr) (types.Object, bool) {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, false
	}
	return ip.localVar(id)
}

// assignTo performs the store for one LHS expression. Only plain local
// identifiers update the state; writes through indexes, fields, and
// dereferences are evaluated for their hooks and otherwise ignored
// (their targets are untracked).
func (ip *interp) assignTo(l ast.Expr, iv Interval, st *state) {
	switch l := unparen(l).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if obj, ok := ip.localVar(l); ok && isNumeric(obj.Type()) {
			st.set(obj, iv)
		}
	case *ast.IndexExpr:
		ip.evalIndex(l, st)
	case *ast.SelectorExpr:
		ip.eval(l.X, st)
	case *ast.StarExpr:
		ip.eval(l.X, st)
	}
}

// localVar resolves an identifier to a tracked local variable: a
// *types.Var that is not a field and not package-level (package state
// can change across any call, so it stays at top).
func (ip *interp) localVar(id *ast.Ident) (types.Object, bool) {
	obj := ip.objOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil, false
	}
	if v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return nil, false
	}
	return obj, true
}

func (ip *interp) objOf(id *ast.Ident) types.Object {
	if o := ip.info().Uses[id]; o != nil {
		return o
	}
	return ip.info().Defs[id]
}

func (ip *interp) typeOf(e ast.Expr) types.Type {
	if t := ip.info().TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

// clamp meets a computed interval with the expression's type range,
// integralizing integer bounds. A value that may leave a sized type's
// range wraps, so knowledge degrades to the full type range.
func (ip *interp) clamp(e ast.Expr, iv Interval) Interval {
	t := ip.typeOf(e)
	if !isNumeric(t) || iv.IsBottom() {
		return iv
	}
	tr := topOf(t)
	if isUnsigned(t) && iv.Lo < 0 {
		return tr // possible wraparound: anything representable
	}
	if iv.Lo < tr.Lo || iv.Hi > tr.Hi {
		if !math.IsInf(tr.Lo, -1) || !math.IsInf(tr.Hi, 1) {
			return tr
		}
	}
	out := iv.Meet(tr)
	if isInteger(t) {
		out = out.integralize()
	}
	if out.IsBottom() {
		return tr
	}
	return out
}

// ---------------------------------------------------------------------
// Expression evaluation

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// eval computes the expression's interval, recursing into every
// subexpression so the reporting hooks see each division, index, and
// call exactly where it occurs.
func (ip *interp) eval(e ast.Expr, st *state) Interval {
	if e == nil {
		return top
	}
	// Constants are exact, and their subexpressions are constant too —
	// no hooks can fire inside them.
	if tv, ok := ip.info().Types[e]; ok && tv.Value != nil {
		if iv, ok := constInterval(tv.Value); ok {
			return iv
		}
		return top
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ip.eval(e.X, st)
	case *ast.Ident:
		if obj, ok := ip.localVar(e); ok && isNumeric(obj.Type()) {
			return st.get(obj)
		}
		return topOfExpr(ip, e)
	case *ast.UnaryExpr:
		return ip.evalUnary(e, st)
	case *ast.BinaryExpr:
		return ip.evalBinary(e, st)
	case *ast.CallExpr:
		res := ip.evalCall(e, st)
		if len(res) > 0 {
			return res[0]
		}
		return top
	case *ast.SelectorExpr:
		// Evaluate the base for hooks unless it is a package qualifier.
		if id, ok := e.X.(*ast.Ident); !ok || ip.pkgPathOf(id) == "" {
			ip.eval(e.X, st)
		}
		return topOfExpr(ip, e)
	case *ast.IndexExpr:
		return ip.evalIndex(e, st)
	case *ast.IndexListExpr:
		ip.eval(e.X, st)
		return topOfExpr(ip, e)
	case *ast.SliceExpr:
		ip.eval(e.X, st)
		if e.Low != nil {
			ip.eval(e.Low, st)
		}
		if e.High != nil {
			ip.eval(e.High, st)
		}
		if e.Max != nil {
			ip.eval(e.Max, st)
		}
		return top
	case *ast.StarExpr:
		ip.eval(e.X, st)
		return topOfExpr(ip, e)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				ip.eval(kv.Value, st)
				continue
			}
			ip.eval(el, st)
		}
		return top
	case *ast.TypeAssertExpr:
		ip.eval(e.X, st)
		return topOfExpr(ip, e)
	case *ast.FuncLit:
		ip.evalFuncLit(e, nil, st)
		return top
	default:
		return top
	}
}

func constInterval(v constant.Value) (Interval, bool) {
	switch v.Kind() {
	case constant.Int, constant.Float:
		f, _ := constant.Float64Val(constant.ToFloat(v))
		if math.IsNaN(f) {
			return top, true
		}
		return point(f), true
	}
	return Interval{}, false
}

func (ip *interp) evalUnary(e *ast.UnaryExpr, st *state) Interval {
	switch e.Op {
	case token.SUB:
		return ip.clamp(e, ip.eval(e.X, st).Neg())
	case token.ADD:
		return ip.eval(e.X, st)
	case token.AND:
		// Address taken: the variable can now change behind our back.
		ip.eval(e.X, st)
		if id, ok := unparen(e.X).(*ast.Ident); ok {
			if obj, ok := ip.localVar(id); ok {
				st.markVolatile(obj)
			}
		}
		return top
	default:
		ip.eval(e.X, st)
		return topOfExpr(ip, e)
	}
}

func (ip *interp) evalBinary(e *ast.BinaryExpr, st *state) Interval {
	switch e.Op {
	case token.LAND:
		ip.eval(e.X, st)
		// The right operand only runs when the left held: evaluate it
		// under that refinement so `n > 0 && sum/n > t` stays clean.
		s2 := st.clone()
		ip.refine(&s2, e.X, true)
		if s2.reach {
			ip.eval(e.Y, &s2)
		}
		return top
	case token.LOR:
		ip.eval(e.X, st)
		s2 := st.clone()
		ip.refine(&s2, e.X, false)
		if s2.reach {
			ip.eval(e.Y, &s2)
		}
		return top
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		x := ip.eval(e.X, st)
		y := ip.eval(e.Y, st)
		ip.fireProbCmp(e, x, y, st)
		return top
	case token.QUO, token.REM:
		x := ip.eval(e.X, st)
		y := ip.eval(e.Y, st)
		integer := isInteger(ip.typeOf(e))
		ip.fireDiv(e.OpPos, y, integer)
		return ip.clamp(e, applyArith(e.Op, x, y, integer))
	default:
		x := ip.eval(e.X, st)
		y := ip.eval(e.Y, st)
		return ip.clamp(e, applyArith(e.Op, x, y, isInteger(ip.typeOf(e))))
	}
}

// applyArith folds one arithmetic operator over intervals.
func applyArith(op token.Token, x, y Interval, integer bool) Interval {
	switch op {
	case token.ADD:
		return x.Add(y)
	case token.SUB:
		return x.Sub(y)
	case token.MUL:
		return x.Mul(y)
	case token.QUO:
		return x.Div(y, integer)
	case token.REM:
		return x.Rem(y)
	case token.AND:
		// Both nonnegative: result within the smaller operand.
		if x.Lo >= 0 && y.Lo >= 0 {
			return mk(0, math.Min(x.Hi, y.Hi))
		}
		return top
	case token.OR, token.XOR:
		if x.Lo >= 0 && y.Lo >= 0 {
			return mk(0, x.Hi+y.Hi)
		}
		return top
	case token.AND_NOT:
		if x.Lo >= 0 {
			return mk(0, x.Hi)
		}
		return top
	case token.SHL:
		if x.Lo >= 0 {
			return mk(0, inf)
		}
		return top
	case token.SHR:
		if x.Lo >= 0 {
			return mk(0, x.Hi)
		}
		return top
	default:
		return top
	}
}

func (ip *interp) evalIndex(e *ast.IndexExpr, st *state) Interval {
	base := ip.typeOf(e.X)
	// Generic instantiation also parses as an index expression.
	if _, isSig := base.Underlying().(*types.Signature); isSig {
		ip.eval(e.X, st)
		return topOfExpr(ip, e)
	}
	ip.eval(e.X, st)
	idx := ip.eval(e.Index, st)
	if indexable(base) {
		length, _ := ip.lenOfValue(e.X, st)
		ip.fireIndex(e.Index.Pos(), idx, length)
	}
	return topOfExpr(ip, e)
}

// indexable reports whether the type is a slice, array, pointer-to-array,
// or string — the containers whose indexing panics out of [0, len).
func indexable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// lenOfValue computes the interval of len(e) and whether the expression
// carries length information worth propagating on assignment.
func (ip *interp) lenOfValue(e ast.Expr, st *state) (Interval, bool) {
	e = unparen(e)
	t := ip.typeOf(e)
	// Fixed-size arrays (and pointers to them) have exact lengths.
	if arr, ok := t.Underlying().(*types.Array); ok {
		return point(float64(arr.Len())), true
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		if arr, ok := p.Elem().Underlying().(*types.Array); ok {
			return point(float64(arr.Len())), true
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj, ok := ip.localVar(e); ok && hasLenCell(obj.Type()) {
			return st.get(lenCell{obj}), true
		}
	case *ast.BasicLit:
		if e.Kind == token.STRING {
			if tv, ok := ip.info().Types[e]; ok && tv.Value != nil {
				return point(float64(len(constant.StringVal(tv.Value)))), true
			}
		}
	case *ast.CompositeLit:
		if _, ok := t.Underlying().(*types.Slice); ok {
			for _, el := range e.Elts {
				if _, keyed := el.(*ast.KeyValueExpr); keyed {
					return Interval{0, inf}, false
				}
			}
			return point(float64(len(e.Elts))), true
		}
	case *ast.CallExpr:
		return ip.lenOfCall(e, st)
	case *ast.SliceExpr:
		return ip.lenOfSlice(e, st), true
	}
	return Interval{0, inf}, false
}

// lenOfCall propagates lengths through the length-constructing calls:
// make, append, and the par mappers (whose result has exactly n items).
func (ip *interp) lenOfCall(e *ast.CallExpr, st *state) (Interval, bool) {
	switch callee := ip.calleeOf(e); callee {
	case "make":
		if len(e.Args) >= 2 {
			return ip.evalQuiet(e.Args[1], st).Meet(Interval{0, inf}), true
		}
		if len(e.Args) == 1 { // make(map[...]...) / make(chan ...)
			return point(0), true
		}
	case "append":
		if len(e.Args) == 0 {
			return Interval{0, inf}, false
		}
		base, _ := ip.lenOfValue(e.Args[0], st)
		if e.Ellipsis != token.NoPos {
			return base.Add(Interval{0, inf}).Meet(Interval{0, inf}), true
		}
		return base.Add(point(float64(len(e.Args) - 1))), true
	case "verro/internal/par.Map":
		if len(e.Args) >= 1 {
			return ip.evalQuiet(e.Args[0], st).Meet(Interval{0, inf}), true
		}
	case "verro/internal/par.MapPool":
		if len(e.Args) >= 2 {
			return ip.evalQuiet(e.Args[1], st).Meet(Interval{0, inf}), true
		}
	}
	return Interval{0, inf}, false
}

// lenOfSlice computes len(x[lo:hi]) = hi − lo.
func (ip *interp) lenOfSlice(e *ast.SliceExpr, st *state) Interval {
	baseLen, _ := ip.lenOfValue(e.X, st)
	lo := point(0)
	if e.Low != nil {
		lo = ip.evalQuiet(e.Low, st)
	}
	hi := baseLen
	if e.High != nil {
		hi = ip.evalQuiet(e.High, st)
	}
	return hi.Sub(lo).Meet(Interval{0, inf})
}

// evalQuiet evaluates without firing hooks (used where the expression was
// or will be evaluated in its own right, e.g. inside refinements).
func (ip *interp) evalQuiet(e ast.Expr, st *state) Interval {
	saved := ip.reporting
	ip.reporting = false
	iv := ip.eval(e, st)
	ip.reporting = saved
	return iv
}

// pkgPathOf resolves an identifier used as a package qualifier.
func (ip *interp) pkgPathOf(id *ast.Ident) string {
	if pn, ok := ip.info().Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// calleeOf names the call target: a builtin name ("len"), a normalized
// full function name, or "" when unresolvable (dynamic call, conversion).
func (ip *interp) calleeOf(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := ip.objOf(fun).(type) {
		case *types.Builtin:
			return obj.Name()
		case *types.Func:
			return normName(obj)
		}
	case *ast.SelectorExpr:
		if fn, ok := ip.info().Uses[fun.Sel].(*types.Func); ok {
			return normName(fn)
		}
	case *ast.IndexExpr:
		// Explicitly instantiated generic: resolve through the inner name.
		if inner, ok := unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := ip.objOf(inner).(*types.Func); ok {
				return normName(fn)
			}
		}
		if sel, ok := unparen(fun.X).(*ast.SelectorExpr); ok {
			if fn, ok := ip.info().Uses[sel.Sel].(*types.Func); ok {
				return normName(fn)
			}
		}
	}
	return ""
}

// ---------------------------------------------------------------------
// Calls

func (ip *interp) evalCall(call *ast.CallExpr, st *state) []Interval {
	// Type conversion: T(x).
	if tv, ok := ip.info().Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			iv := ip.eval(call.Args[0], st)
			return []Interval{ip.clamp(call, iv)}
		}
		return []Interval{top}
	}

	callee := ip.calleeOf(call)

	// Builtins with value semantics.
	switch callee {
	case "len", "cap":
		if len(call.Args) == 1 {
			ip.eval(call.Args[0], st)
			if callee == "len" {
				iv, _ := ip.lenOfValue(call.Args[0], st)
				return []Interval{iv}
			}
			return []Interval{{0, inf}}
		}
	case "min", "max":
		var acc Interval
		for i, a := range call.Args {
			iv := ip.eval(a, st)
			if i == 0 {
				acc = iv
			} else if callee == "min" {
				acc = minIv(acc, iv)
			} else {
				acc = maxIv(acc, iv)
			}
		}
		return []Interval{acc}
	case "make", "append", "copy", "delete", "new", "panic", "print", "println", "clear", "close", "complex", "real", "imag", "recover":
		for _, a := range call.Args {
			ip.eval(a, st)
		}
		switch callee {
		case "copy":
			return []Interval{{0, inf}}
		case "real", "imag":
			return []Interval{top}
		}
		return []Interval{top}
	}

	// Method receiver is evaluated for its hooks.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, isIdent := sel.X.(*ast.Ident); !isIdent || ip.pkgPathOf(id) == "" {
			ip.eval(sel.X, st)
		}
	}

	// Parallel mappers: the closure's index parameters are bounded by the
	// call's n argument, so kernel loops stay checkable inside par bodies.
	if bounds, fnArg, ok := ip.parClosureBounds(callee, call, st); ok {
		args := ip.evalArgs(call, st, fnArg)
		ip.fireCall(call, callee, args)
		if lit, isLit := unparen(call.Args[fnArg]).(*ast.FuncLit); isLit {
			ip.evalFuncLit(lit, bounds, st)
		} else {
			ip.eval(call.Args[fnArg], st)
		}
		return ip.resultTops(call)
	}

	// Direct call of a function literal: bind its parameters to the
	// argument intervals.
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		args := ip.evalArgs(call, st, -1)
		ip.evalFuncLit(lit, args, st)
		return ip.resultTops(call)
	}

	args := ip.evalArgs(call, st, -1)
	ip.fireCall(call, callee, args)

	if res, ok := nativeCall(callee, args, call, ip, st); ok {
		return padResults(res, ip.resultTops(call))
	}
	if sum, ok := ip.e.lookup(callee); ok {
		return padResults(clampAll(sum, ip.resultTypes(call)), ip.resultTops(call))
	}
	return ip.resultTops(call)
}

// evalArgs evaluates every argument (skipping skipIdx, which the caller
// handles specially) and returns their intervals.
func (ip *interp) evalArgs(call *ast.CallExpr, st *state, skipIdx int) []Interval {
	out := make([]Interval, len(call.Args))
	for i, a := range call.Args {
		if i == skipIdx {
			out[i] = top
			continue
		}
		out[i] = ip.eval(a, st)
	}
	return out
}

// parClosureBounds recognizes the worker-pool mappers and computes the
// interval bounds of their closure parameters.
func (ip *interp) parClosureBounds(callee string, call *ast.CallExpr, st *state) (bounds []Interval, fnArg int, ok bool) {
	var nArg int
	switch callee {
	case "verro/internal/par.For", "(verro/internal/par.Pool).For":
		nArg, fnArg = 0, 2
	case "verro/internal/par.Map":
		nArg, fnArg = 0, 2
	case "verro/internal/par.MapPool":
		nArg, fnArg = 1, 3
	default:
		return nil, 0, false
	}
	if fnArg >= len(call.Args) {
		return nil, 0, false
	}
	n := ip.evalQuiet(call.Args[nArg], st)
	hi := n.Hi - 1
	if n.IsBottom() {
		hi = inf
	}
	idx := Interval{0, math.Max(hi, 0)}
	switch callee {
	case "verro/internal/par.Map", "verro/internal/par.MapPool":
		return []Interval{idx}, fnArg, true
	default: // For: fn(lo, hi) with 0 ≤ lo < hi ≤ n
		upper := math.Max(n.Hi, 0)
		return []Interval{idx, {0, upper}}, fnArg, true
	}
}

// resultTypes returns the call's result types (empty for void).
func (ip *interp) resultTypes(call *ast.CallExpr) []types.Type {
	t := ip.typeOf(call)
	if tup, ok := t.(*types.Tuple); ok {
		out := make([]types.Type, tup.Len())
		for i := 0; i < tup.Len(); i++ {
			out[i] = tup.At(i).Type()
		}
		return out
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.Invalid {
		return nil
	}
	return []types.Type{t}
}

func (ip *interp) resultTops(call *ast.CallExpr) []Interval {
	ts := ip.resultTypes(call)
	out := make([]Interval, len(ts))
	for i, t := range ts {
		out[i] = topOf(t)
	}
	if len(out) == 0 {
		out = []Interval{top}
	}
	return out
}

func clampAll(ivs []Interval, ts []types.Type) []Interval {
	out := make([]Interval, len(ivs))
	for i, iv := range ivs {
		out[i] = iv
		if i < len(ts) {
			out[i] = iv.Meet(topOf(ts[i]))
			if out[i].IsBottom() {
				out[i] = iv
			}
		}
	}
	return out
}

func padResults(res, tops []Interval) []Interval {
	out := make([]Interval, len(tops))
	for i := range tops {
		if i < len(res) && !res[i].IsBottom() {
			out[i] = res[i].Meet(tops[i])
			if out[i].IsBottom() {
				out[i] = tops[i]
			}
		} else if i < len(res) {
			out[i] = res[i] // bottom: callee never returns this result
		} else {
			out[i] = tops[i]
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Function literals

// evalFuncLit handles a closure: variables it writes become volatile in
// the enclosing state (they can change behind the interpreter's back at
// any later point), and during the reporting pass its body is analyzed
// with the enclosing state snapshot as the environment for captures.
func (ip *interp) evalFuncLit(lit *ast.FuncLit, params []Interval, st *state) {
	ip.havocCaptured(lit, st)
	if !ip.reporting || ip.depth >= maxLitDepth {
		return
	}
	entry := st.clone()
	entry.reach = true
	bindFieldList(ip.info(), lit.Type.Params, &entry, params)
	nRes := 0
	if lit.Type.Results != nil {
		nRes = lit.Type.Results.NumFields()
	}
	sub := &interp{e: ip.e, pkg: ip.pkg, hooks: ip.hooks, depth: ip.depth + 1,
		results: make([]Interval, nRes)}
	for i := range sub.results {
		sub.results[i] = bottomIv
	}
	// Named results of the literal.
	if lit.Type.Results != nil {
		for _, f := range lit.Type.Results.List {
			for _, name := range f.Names {
				if obj := ip.info().Defs[name]; obj != nil {
					sub.resultObjs = append(sub.resultObjs, obj)
					if isNumeric(obj.Type()) {
						entry.set(obj, point(0))
					}
				}
			}
		}
	}
	sub.runBody(lit.Body, entry)
}

// havocCaptured marks every enclosing-scope variable the literal writes
// (assignment, ++/--, or address-of) volatile.
func (ip *interp) havocCaptured(lit *ast.FuncLit, st *state) {
	mark := func(e ast.Expr) {
		if id, ok := unparen(e).(*ast.Ident); ok {
			if obj, ok := ip.localVar(id); ok && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
				st.markVolatile(obj)
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				mark(l)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------
// Edges and refinement

func (ip *interp) applyEdge(e cfg.Edge, st *state) {
	switch e.Kind {
	case cfg.CondTrue:
		ip.refine(st, e.Cond, true)
	case cfg.CondFalse:
		ip.refine(st, e.Cond, false)
	case cfg.Case:
		ip.refineCase(st, e.Tag, e.Vals)
	case cfg.RangeBody:
		ip.bindRange(st, e.Rng)
	}
}

// refineCase narrows a switch tag to the union of its case values.
func (ip *interp) refineCase(st *state, tag ast.Expr, vals []ast.Expr) {
	cellE, ok := ip.refinableCell(tag)
	if !ok {
		return
	}
	u := bottomIv
	for _, v := range vals {
		u = u.Join(ip.evalQuiet(v, st))
	}
	ip.meetCell(st, cellE, u)
}

// bindRange seeds the loop variables when entering a range body: the key
// of a slice/array/string/int range is [0, len−1], and the container is
// known non-empty.
func (ip *interp) bindRange(st *state, rng *ast.RangeStmt) {
	t := ip.typeOf(rng.X)
	var keyIv Interval
	switch {
	case isInteger(t): // range over int (Go 1.22)
		n := ip.evalQuiet(rng.X, st)
		keyIv = Interval{0, math.Max(n.Hi-1, 0)}
		// The body runs at all only when the bound is positive.
		if cellE, ok := ip.refinableCell(rng.X); ok {
			ip.meetCell(st, cellE, Interval{1, inf})
		}
	default:
		length, _ := ip.lenOfValue(rng.X, st)
		keyIv = Interval{0, math.Max(length.Hi-1, 0)}
		if id, ok := unparen(rng.X).(*ast.Ident); ok {
			if obj, ok := ip.localVar(id); ok && hasLenCell(obj.Type()) {
				ip.meetCell(st, lenCell{obj}, Interval{1, inf})
			}
		}
	}
	if _, isMap := t.Underlying().(*types.Map); isMap {
		keyIv = top // map keys are values, not indices
	}
	if rng.Key != nil {
		if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
			if obj := ip.objOf(id); obj != nil && isNumeric(obj.Type()) {
				st.set(obj, keyIv.Meet(topOf(obj.Type())))
			}
		}
	}
	if rng.Value != nil {
		if id, ok := rng.Value.(*ast.Ident); ok && id.Name != "_" {
			if obj := ip.objOf(id); obj != nil && isNumeric(obj.Type()) {
				st.set(obj, topOf(obj.Type()))
			}
		}
	}
}

// refinableCell maps an expression to the state cell a comparison can
// narrow: a tracked local identifier, or len/cap of one.
func (ip *interp) refinableCell(e ast.Expr) (any, bool) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := ip.localVar(e); ok && isNumeric(obj.Type()) {
			return obj, true
		}
	case *ast.CallExpr:
		if ip.calleeOf(e) == "len" && len(e.Args) == 1 {
			if id, ok := unparen(e.Args[0]).(*ast.Ident); ok {
				if obj, ok := ip.localVar(id); ok && hasLenCell(obj.Type()) {
					return lenCell{obj}, true
				}
			}
		}
	}
	return nil, false
}

func (ip *interp) meetCell(st *state, c any, iv Interval) {
	if st.isVolatile(cellObj(c)) {
		return
	}
	met := st.get(c).Meet(iv)
	if met.IsBottom() {
		st.reach = false
		return
	}
	st.set(c, met)
}

func cellObj(c any) types.Object {
	switch c := c.(type) {
	case lenCell:
		return c.obj
	case types.Object:
		return c
	}
	return nil
}

// refine narrows st with the knowledge that cond evaluated to truth.
func (ip *interp) refine(st *state, cond ast.Expr, truth bool) {
	if !st.reach {
		return
	}
	switch cond := unparen(cond).(type) {
	case *ast.UnaryExpr:
		if cond.Op == token.NOT {
			ip.refine(st, cond.X, !truth)
		}
	case *ast.BinaryExpr:
		switch cond.Op {
		case token.LAND:
			if truth {
				ip.refine(st, cond.X, true)
				ip.refine(st, cond.Y, true)
			}
		case token.LOR:
			if !truth {
				ip.refine(st, cond.X, false)
				ip.refine(st, cond.Y, false)
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			op := cond.Op
			if !truth {
				op = negateCmp(op)
			}
			ip.refineCmp(st, cond.X, op, cond.Y)
		}
	}
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return op
}

// refineCmp applies x op y to both operands' cells.
func (ip *interp) refineCmp(st *state, x ast.Expr, op token.Token, y ast.Expr) {
	if !isNumeric(ip.typeOf(x)) && !isNumeric(ip.typeOf(y)) {
		// len() comparisons have numeric operands; everything else
		// (pointers, strings, bools) carries no interval knowledge.
		if _, ok := ip.refinableCell(x); !ok {
			if _, ok := ip.refinableCell(y); !ok {
				return
			}
		}
	}
	yiv := ip.evalQuiet(y, st)
	xiv := ip.evalQuiet(x, st)
	if cellX, ok := ip.refinableCell(x); ok {
		if op == token.NEQ {
			ip.shaveCell(st, cellX, yiv, intCell(ip, x))
		} else {
			ip.meetCell(st, cellX, boundFor(op, yiv, intCell(ip, x)))
		}
	}
	if cellY, ok := ip.refinableCell(y); ok {
		if op == token.NEQ {
			ip.shaveCell(st, cellY, xiv, intCell(ip, y))
		} else {
			ip.meetCell(st, cellY, boundFor(flipCmp(op), xiv, intCell(ip, y)))
		}
	}
}

func intCell(ip *interp, e ast.Expr) bool {
	if _, ok := ip.refinableCell(e); ok {
		if call, isCall := unparen(e).(*ast.CallExpr); isCall && ip.calleeOf(call) == "len" {
			return true
		}
	}
	return isInteger(ip.typeOf(e))
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op // ==, != are symmetric
}

// boundFor turns "value op other" into the interval the value must lie
// in. Strict inequalities step by 1 for integers and by one ulp for
// floats (the closed-interval representation cannot express open
// bounds).
func boundFor(op token.Token, other Interval, integer bool) Interval {
	if other.IsBottom() {
		return top
	}
	switch op {
	case token.LSS:
		return Interval{-inf, strictBelow(other.Hi, integer)}
	case token.LEQ:
		return Interval{-inf, other.Hi}
	case token.GTR:
		return Interval{strictAbove(other.Lo, integer), inf}
	case token.GEQ:
		return Interval{other.Lo, inf}
	case token.EQL:
		return other
	case token.NEQ:
		// Handled by shaveCell, which sees the value's current interval.
		return top
	}
	return top
}

// shaveCell applies a disequality "cell != other". An interval can only
// express it when other is a single point sitting exactly on one of the
// cell's endpoints — the canonical `if len(xs) == 0 { return }` guard,
// whose false branch turns [0, n] into [1, n], or `if nn == 0 { return }`
// turning [0, +inf] into (0, +inf]. Points interior to the interval are
// unexpressible and ignored (no relational domain).
func (ip *interp) shaveCell(st *state, c any, other Interval, integer bool) {
	if other.IsBottom() || other.Lo != other.Hi || math.IsInf(other.Lo, 0) {
		return
	}
	p := other.Lo
	cur := st.get(c)
	if cur.IsBottom() {
		return
	}
	out := cur
	if cur.Lo == p {
		out.Lo = strictAbove(p, integer)
	}
	if cur.Hi == p {
		out.Hi = strictBelow(p, integer)
	}
	if out.IsBottom() {
		st.reach = false
		return
	}
	ip.meetCell(st, c, out)
}

func strictBelow(v float64, integer bool) float64 {
	if math.IsInf(v, 0) {
		return v
	}
	if integer {
		return v - 1
	}
	return math.Nextafter(v, -inf)
}

func strictAbove(v float64, integer bool) float64 {
	if math.IsInf(v, 0) {
		return v
	}
	if integer {
		return v + 1
	}
	return math.Nextafter(v, inf)
}

// ---------------------------------------------------------------------
// Hooks

func (ip *interp) fireCall(call *ast.CallExpr, callee string, args []Interval) {
	if !ip.reporting || callee == "" {
		return
	}
	for _, h := range ip.hooks {
		if h.call != nil {
			h.call(call, callee, args)
		}
	}
}

func (ip *interp) fireDiv(pos token.Pos, divisor Interval, integer bool) {
	if !ip.reporting {
		return
	}
	for _, h := range ip.hooks {
		if h.div != nil {
			h.div(pos, divisor, integer)
		}
	}
}

func (ip *interp) fireIndex(pos token.Pos, idx, length Interval) {
	if !ip.reporting {
		return
	}
	for _, h := range ip.hooks {
		if h.index != nil {
			h.index(pos, idx, length)
		}
	}
}

// fireProbCmp reports the non-random operand of a comparison against
// rand.Float64() to the probability-range hooks.
func (ip *interp) fireProbCmp(e *ast.BinaryExpr, x, y Interval, st *state) {
	if !ip.reporting {
		return
	}
	probSide := ast.Expr(nil)
	var probIv Interval
	if ip.isRandFloat64(e.X) {
		probSide, probIv = e.Y, y
	} else if ip.isRandFloat64(e.Y) {
		probSide, probIv = e.X, x
	}
	if probSide == nil {
		return
	}
	for _, h := range ip.hooks {
		if h.probCmp != nil {
			h.probCmp(probSide.Pos(), probIv)
		}
	}
}

func (ip *interp) isRandFloat64(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch ip.calleeOf(call) {
	case "(math/rand.Rand).Float64", "math/rand.Float64",
		"(math/rand/v2.Rand).Float64", "math/rand/v2.Float64":
		return true
	}
	return false
}
