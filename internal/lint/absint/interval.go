// Package absint is verrolint's value layer: a forward abstract
// interpretation over an interval lattice that proves numeric invariants
// the classic analyzers (§2d) and the taint engine (§2e) can only
// approximate by provenance — flip and keep probabilities stay in [0,1],
// ε budgets stay nonnegative, divisors exclude zero, and kernel indexing
// stays inside [0, len). Each function body is lowered to a basic-block
// CFG, interpreted with widening and a narrowing pass, and refined along
// branch conditions (including len() facts); per-function result
// summaries are iterated to a whole-program fixpoint exactly like the
// flow engine's taint summaries. See DESIGN.md §2f.
package absint

import (
	"math"
	"strconv"
)

// Interval is one lattice value: the closed range [Lo, Hi] with ±Inf
// bounds. Lo > Hi encodes bottom (no possible value — unreachable code or
// an infeasible branch). The zero value is bottom.
type Interval struct {
	Lo, Hi float64
}

var (
	inf = math.Inf(1)
	// top is the unknown value.
	top = Interval{-inf, inf}
	// bottomIv is the canonical empty interval.
	bottomIv = Interval{inf, -inf}
)

// point is the singleton interval [v, v].
func point(v float64) Interval { return Interval{v, v} }

// mk builds an interval, normalizing NaN bounds to the unbounded side so a
// NaN produced by bound arithmetic (0·∞, ∞−∞) degrades to "unknown" rather
// than poisoning comparisons.
func mk(lo, hi float64) Interval {
	if math.IsNaN(lo) {
		lo = -inf
	}
	if math.IsNaN(hi) {
		hi = inf
	}
	return Interval{lo, hi}
}

// IsBottom reports whether the interval is empty.
func (iv Interval) IsBottom() bool { return iv.Lo > iv.Hi }

// IsTop reports whether the interval carries no information.
func (iv Interval) IsTop() bool { return math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1) }

// In reports whether the interval is entirely inside [lo, hi].
func (iv Interval) In(lo, hi float64) bool {
	return !iv.IsBottom() && iv.Lo >= lo && iv.Hi <= hi
}

// Contains reports whether v may be a value of the interval.
func (iv Interval) Contains(v float64) bool { return iv.Lo <= v && v <= iv.Hi }

// Eq reports exact equality (bottom equals bottom).
func (iv Interval) Eq(o Interval) bool {
	if iv.IsBottom() || o.IsBottom() {
		return iv.IsBottom() == o.IsBottom()
	}
	return iv.Lo == o.Lo && iv.Hi == o.Hi
}

// Join is the lattice join: the smallest interval containing both.
func (iv Interval) Join(o Interval) Interval {
	if iv.IsBottom() {
		return o
	}
	if o.IsBottom() {
		return iv
	}
	return Interval{math.Min(iv.Lo, o.Lo), math.Max(iv.Hi, o.Hi)}
}

// Meet is the lattice meet: the intersection.
func (iv Interval) Meet(o Interval) Interval {
	if iv.IsBottom() || o.IsBottom() {
		return bottomIv
	}
	return Interval{math.Max(iv.Lo, o.Lo), math.Min(iv.Hi, o.Hi)}
}

// widenThresholds are the landing points bounds jump to during widening
// before giving up to ±Inf. 0 and 1 keep probability facts provable
// through loops; -1 and 255 keep index and pixel bounds.
var widenThresholds = []float64{-1, 0, 1, 255}

// Widen extrapolates an unstable bound: a bound that moved since old jumps
// to the nearest enclosing threshold, then to infinity. Guarantees every
// ascending chain stabilizes in a handful of steps.
func (iv Interval) Widen(next Interval) Interval {
	if iv.IsBottom() {
		return next
	}
	if next.IsBottom() {
		return iv
	}
	out := Interval{iv.Lo, iv.Hi}
	if next.Lo < iv.Lo {
		out.Lo = -inf
		for i := len(widenThresholds) - 1; i >= 0; i-- {
			if widenThresholds[i] <= next.Lo {
				out.Lo = widenThresholds[i]
				break
			}
		}
	}
	if next.Hi > iv.Hi {
		out.Hi = inf
		for _, t := range widenThresholds {
			if t >= next.Hi {
				out.Hi = t
				break
			}
		}
	}
	return out
}

// Narrow refines a widened bound: an infinite bound of iv is replaced by
// next's (the recomputed, tighter) bound. Finite bounds are kept — one
// narrowing pass must not oscillate.
func (iv Interval) Narrow(next Interval) Interval {
	if iv.IsBottom() || next.IsBottom() {
		return iv
	}
	out := iv
	if math.IsInf(out.Lo, -1) {
		out.Lo = next.Lo
	}
	if math.IsInf(out.Hi, 1) {
		out.Hi = next.Hi
	}
	if out.IsBottom() {
		return iv
	}
	return out
}

// Add returns the interval sum.
func (iv Interval) Add(o Interval) Interval {
	if iv.IsBottom() || o.IsBottom() {
		return bottomIv
	}
	return mk(iv.Lo+o.Lo, iv.Hi+o.Hi)
}

// Sub returns the interval difference.
func (iv Interval) Sub(o Interval) Interval {
	if iv.IsBottom() || o.IsBottom() {
		return bottomIv
	}
	return mk(iv.Lo-o.Hi, iv.Hi-o.Lo)
}

// Neg returns the interval negation.
func (iv Interval) Neg() Interval {
	if iv.IsBottom() {
		return bottomIv
	}
	return Interval{-iv.Hi, -iv.Lo}
}

// mulBound multiplies two bounds with the interval convention 0·±∞ = 0: an
// infinite bound stands for "arbitrarily large finite", and zero times any
// finite value is zero.
func mulBound(a, b float64) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a * b
}

// Mul returns the interval product.
func (iv Interval) Mul(o Interval) Interval {
	if iv.IsBottom() || o.IsBottom() {
		return bottomIv
	}
	p1 := mulBound(iv.Lo, o.Lo)
	p2 := mulBound(iv.Lo, o.Hi)
	p3 := mulBound(iv.Hi, o.Lo)
	p4 := mulBound(iv.Hi, o.Hi)
	return mk(math.Min(math.Min(p1, p2), math.Min(p3, p4)),
		math.Max(math.Max(p1, p2), math.Max(p3, p4)))
}

// Div returns the interval quotient. A divisor interval containing zero
// yields top — the divzero analyzer reports that case separately; the
// value analysis keeps going conservatively. integer requests Go's
// truncating integer division on the result bounds.
func (iv Interval) Div(o Interval, integer bool) Interval {
	if iv.IsBottom() || o.IsBottom() {
		return bottomIv
	}
	if o.Contains(0) {
		return top
	}
	// Invert the divisor: both bounds share a sign, so 1/[c,d] = [1/d, 1/c]
	// with 1/±Inf = 0.
	invLo, invHi := 1/o.Hi, 1/o.Lo
	out := iv.Mul(mk(invLo, invHi))
	if integer {
		// Go integer division truncates toward zero; trunc is monotone, so
		// mapping both bounds through it contains every quotient.
		out = mk(math.Trunc(out.Lo), math.Trunc(out.Hi))
	}
	return out
}

// Rem returns the interval of Go's integer remainder x % y: the result has
// the dividend's sign and magnitude strictly below max|y|.
func (iv Interval) Rem(o Interval) Interval {
	if iv.IsBottom() || o.IsBottom() {
		return bottomIv
	}
	m := math.Max(math.Abs(o.Lo), math.Abs(o.Hi))
	if !math.IsInf(m, 1) {
		m--
	}
	// The remainder magnitude is bounded by both max|y|-1 and the
	// dividend's own magnitude, and the sign follows the dividend.
	bound := math.Min(m, math.Max(math.Abs(iv.Lo), math.Abs(iv.Hi)))
	lo, hi := -bound, bound
	if iv.Lo >= 0 {
		lo = 0
	}
	if iv.Hi <= 0 {
		hi = 0
	}
	return mk(lo, hi)
}

// minIv and maxIv fold the pointwise min/max of two intervals (the
// contracts of math.Min/math.Max and the min/max builtins).
func minIv(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return bottomIv
	}
	return Interval{math.Min(a.Lo, b.Lo), math.Min(a.Hi, b.Hi)}
}

func maxIv(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return bottomIv
	}
	return Interval{math.Max(a.Lo, b.Lo), math.Max(a.Hi, b.Hi)}
}

// absIv is the contract of math.Abs and integer absolute-value helpers.
func absIv(a Interval) Interval {
	if a.IsBottom() {
		return bottomIv
	}
	if a.Lo >= 0 {
		return a
	}
	if a.Hi <= 0 {
		return a.Neg()
	}
	return Interval{0, math.Max(-a.Lo, a.Hi)}
}

// integralize shrinks the bounds of an integer-typed interval to whole
// numbers (ceil on the low side, floor on the high side). Values produced
// by pure integer arithmetic are already integral; this guards mixed
// derivations.
func (iv Interval) integralize() Interval {
	if iv.IsBottom() {
		return iv
	}
	out := Interval{math.Ceil(iv.Lo), math.Floor(iv.Hi)}
	if out.IsBottom() {
		return bottomIv
	}
	return out
}

// String renders the interval for diagnostics: "[0, 1]", "[2, +inf]",
// "bottom".
func (iv Interval) String() string {
	if iv.IsBottom() {
		return "bottom"
	}
	return "[" + fmtBound(iv.Lo) + ", " + fmtBound(iv.Hi) + "]"
}

func fmtBound(v float64) string {
	switch {
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsInf(v, 1):
		return "+inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}
