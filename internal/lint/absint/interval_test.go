package absint

import (
	"math"
	"testing"
)

func iv(lo, hi float64) Interval { return Interval{lo, hi} }

func TestIntervalLatticeOps(t *testing.T) {
	cases := []struct {
		name      string
		got, want Interval
	}{
		{"join overlap", iv(0, 2).Join(iv(1, 3)), iv(0, 3)},
		{"join disjoint", iv(0, 1).Join(iv(5, 6)), iv(0, 6)},
		{"join bottom left", bottomIv.Join(iv(1, 2)), iv(1, 2)},
		{"meet overlap", iv(0, 2).Meet(iv(1, 3)), iv(1, 2)},
		{"meet point", iv(0, 1).Meet(iv(1, 2)), iv(1, 1)},
		{"add", iv(1, 2).Add(iv(10, 20)), iv(11, 22)},
		{"sub", iv(1, 2).Sub(iv(10, 20)), iv(-19, -8)},
		{"neg", iv(-1, 3).Neg(), iv(-3, 1)},
		{"mul signs", iv(-2, 3).Mul(iv(-5, 4)), iv(-15, 12)},
		{"mul zero inf", iv(0, 0).Mul(top), iv(0, 0)},
		{"div positive", iv(4, 8).Div(iv(2, 4), false), iv(1, 4)},
		{"div negative", iv(4, 8).Div(iv(-4, -2), false), iv(-4, -1)},
		{"div through zero", iv(1, 2).Div(iv(-1, 1), false), top},
		{"div integer trunc", iv(1, 7).Div(iv(2, 2), true), iv(0, 3)},
		{"rem nonneg", iv(0, 100).Rem(iv(5, 5)), iv(0, 4)},
		{"rem small dividend", iv(0, 2).Rem(iv(10, 10)), iv(0, 2)},
		{"rem sign follows dividend", iv(-7, -1).Rem(iv(3, 3)), iv(-2, 0)},
		{"abs straddling", absIv(iv(-3, 2)), iv(0, 3)},
		{"min fold", minIv(iv(0, 5), iv(2, 3)), iv(0, 3)},
		{"max fold", maxIv(iv(0, 5), iv(2, 3)), iv(2, 5)},
		{"integralize", iv(0.5, 2.5).integralize(), iv(1, 2)},
	}
	for _, c := range cases {
		if !c.got.Eq(c.want) {
			t.Errorf("%s: got %s, want %s", c.name, c.got, c.want)
		}
	}
}

// TestMeetInfeasible checks that contradictory facts produce bottom — the
// signal refine() uses to mark a branch unreachable.
func TestMeetInfeasible(t *testing.T) {
	if got := iv(0, 1).Meet(iv(2, 3)); !got.IsBottom() {
		t.Errorf("meet of disjoint intervals = %s, want bottom", got)
	}
}

// TestWidenStabilizes checks the core termination property: repeated
// widening of any growing chain reaches a fixpoint within a few steps.
func TestWidenStabilizes(t *testing.T) {
	cur := iv(0, 0)
	grow := func(x Interval) Interval { return x.Add(iv(0, 1)) }
	for step := 0; step < 16; step++ {
		next := cur.Join(grow(cur))
		widened := cur.Widen(next)
		if widened.Eq(cur) {
			return // stabilized
		}
		cur = widened
	}
	t.Fatalf("widening did not stabilize; final interval %s", cur)
}

// TestWidenThresholds checks that the probability-relevant landing points
// survive widening: a bound creeping past 1 must stop at a threshold or
// infinity, never oscillate.
func TestWidenThresholds(t *testing.T) {
	got := iv(0, 0.5).Widen(iv(0, 0.9))
	if !got.Eq(iv(0, 1)) {
		t.Errorf("widen [0,0.5]→[0,0.9] = %s, want [0, 1] (threshold)", got)
	}
	got = iv(0, 1).Widen(iv(0, 300))
	if !got.Eq(iv(0, math.Inf(1))) {
		t.Errorf("widen [0,1]→[0,300] = %s, want [0, +inf]", got)
	}
	got = iv(0, 5).Widen(iv(-2, 5))
	if !got.Eq(iv(-inf, 5)) {
		t.Errorf("widen low bound = %s, want [-inf, 5]", got)
	}
}

// TestNarrowRecoversFiniteBounds checks narrowing replaces only infinite
// bounds, so one descending pass cannot oscillate.
func TestNarrowRecoversFiniteBounds(t *testing.T) {
	widened := iv(0, math.Inf(1))
	recomputed := iv(0, 10)
	if got := widened.Narrow(recomputed); !got.Eq(iv(0, 10)) {
		t.Errorf("narrow = %s, want [0, 10]", got)
	}
	// A finite bound is kept even if the recomputation is tighter.
	if got := iv(0, 10).Narrow(iv(2, 5)); !got.Eq(iv(0, 10)) {
		t.Errorf("narrow of finite interval = %s, want unchanged [0, 10]", got)
	}
}

// TestIntervalSoundness enumerates small concrete operand sets and checks
// every concrete result lands inside the abstract result — the soundness
// obligation of the transfer functions.
func TestIntervalSoundness(t *testing.T) {
	vals := []float64{-3, -1, 0, 1, 2, 5}
	bounds := []Interval{iv(-3, -1), iv(-1, 1), iv(0, 2), iv(1, 5), iv(-3, 5)}
	inIv := func(x float64, b Interval) bool { return b.Lo <= x && x <= b.Hi }
	for _, xs := range bounds {
		for _, ys := range bounds {
			for _, x := range vals {
				if !inIv(x, xs) {
					continue
				}
				for _, y := range vals {
					if !inIv(y, ys) {
						continue
					}
					check := func(name string, concrete float64, abs Interval) {
						if !abs.Contains(concrete) {
							t.Errorf("%s: %v op %v = %v not in %s ⊇ %s op %s",
								name, x, y, concrete, abs, xs, ys)
						}
					}
					check("add", x+y, xs.Add(ys))
					check("sub", x-y, xs.Sub(ys))
					check("mul", x*y, xs.Mul(ys))
					if y != 0 {
						check("div", x/y, xs.Div(ys, false))
						xi, yi := int(x), int(y)
						check("quo", float64(xi/yi), xs.Div(ys, true))
						check("rem", float64(xi%yi), xs.Rem(ys))
					}
				}
			}
		}
	}
}

func TestIntervalString(t *testing.T) {
	cases := []struct {
		in   Interval
		want string
	}{
		{iv(0, 1), "[0, 1]"},
		{top, "[-inf, +inf]"},
		{bottomIv, "bottom"},
		{iv(0.25, 2), "[0.25, 2]"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
