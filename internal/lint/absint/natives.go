package absint

import (
	"go/ast"
	"math"
)

// nativeCall models well-known pure functions whose result intervals the
// summary machinery cannot derive (foreign packages) or cannot derive
// precisely (correlated expressions like e/(1+e)). It returns the result
// intervals and whether the callee was recognized; recognized natives
// take precedence over computed summaries.
func nativeCall(callee string, args []Interval, call *ast.CallExpr, ip *interp, st *state) ([]Interval, bool) {
	arg := func(i int) Interval {
		if i < len(args) {
			return args[i]
		}
		return top
	}
	switch callee {
	// --- math ---
	case "math.Abs":
		return []Interval{absIv(arg(0))}, true
	case "math.Exp", "math.Exp2":
		return []Interval{expIv(arg(0), callee == "math.Exp")}, true
	case "math.Log", "math.Log2", "math.Log10", "math.Log1p":
		return []Interval{top}, true
	case "math.Sqrt":
		x := arg(0)
		if x.IsBottom() {
			return []Interval{bottomIv}, true
		}
		// sqrt of a negative is NaN; over the nonnegative part it is
		// monotone.
		lo := math.Max(x.Lo, 0)
		if x.Hi < 0 {
			return []Interval{top}, true // all-NaN: unknown
		}
		return []Interval{mk(math.Sqrt(lo), math.Sqrt(x.Hi))}, true
	case "math.Min":
		return []Interval{minIv(arg(0), arg(1))}, true
	case "math.Max":
		return []Interval{maxIv(arg(0), arg(1))}, true
	case "math.Floor":
		return []Interval{monotone(arg(0), math.Floor)}, true
	case "math.Ceil":
		return []Interval{monotone(arg(0), math.Ceil)}, true
	case "math.Round":
		return []Interval{monotone(arg(0), math.Round)}, true
	case "math.Trunc":
		return []Interval{monotone(arg(0), math.Trunc)}, true
	case "math.Pow":
		return []Interval{powIv(arg(0), arg(1))}, true
	case "math.Hypot":
		return []Interval{{0, inf}}, true
	case "math.Mod":
		return []Interval{arg(0).Rem(arg(1).Join(arg(1).Neg()))}, true
	case "math.Inf":
		return []Interval{top}, true
	case "math.Sin", "math.Cos":
		return []Interval{{-1, 1}}, true
	case "math.Atan":
		return []Interval{{-math.Pi / 2, math.Pi / 2}}, true
	case "math.Atan2":
		return []Interval{{-math.Pi, math.Pi}}, true

	// --- math/rand ---
	case "(math/rand.Rand).Float64", "math/rand.Float64",
		"(math/rand/v2.Rand).Float64", "math/rand/v2.Float64":
		// Float64 is in [0, 1); the closed upper bound 1 is sound.
		return []Interval{{0, 1}}, true
	case "(math/rand.Rand).ExpFloat64", "math/rand.ExpFloat64",
		"(math/rand/v2.Rand).ExpFloat64", "math/rand/v2.ExpFloat64":
		return []Interval{{0, inf}}, true
	case "(math/rand.Rand).NormFloat64", "math/rand.NormFloat64",
		"(math/rand/v2.Rand).NormFloat64", "math/rand/v2.NormFloat64":
		return []Interval{top}, true
	case "(math/rand.Rand).Intn", "math/rand.Intn",
		"(math/rand.Rand).Int31n", "math/rand.Int31n",
		"(math/rand.Rand).Int63n", "math/rand.Int63n",
		"(math/rand/v2.Rand).IntN", "math/rand/v2.IntN":
		n := arg(0)
		return []Interval{{0, math.Max(n.Hi-1, 0)}}, true
	case "(math/rand.Rand).Int", "math/rand.Int",
		"(math/rand.Rand).Int31", "(math/rand.Rand).Int63":
		return []Interval{{0, inf}}, true

	// --- verro/internal/ldp: probability contracts the interval domain
	// cannot derive on its own (correlated subexpressions). Proven by the
	// implementations' own guards and algebra; see DESIGN.md §2f.
	case "verro/internal/ldp.KeepProbability":
		// e/(1+e) for e = exp(ε) ≥ 0 is always within (0, 1).
		return []Interval{{0, 1}}, true
	case "verro/internal/ldp.FlipProbability":
		// 2/(exp(ε/k)+1) with the ε ≥ 0 guard keeps the result in (0, 1];
		// on the error path the value is 0.
		return []Interval{{0, 1}, top}, true
	case "verro/internal/ldp.Epsilon":
		// Guarded to f ∈ (0, 1], so k·ln((2−f)/f) ≥ 0; error path is 0.
		return []Interval{{0, inf}, top}, true
	case "verro/internal/ldp.ExpectedBit":
		return []Interval{{0, 1}}, true
	}
	return nil, false
}

// monotone maps both bounds through a monotone function.
func monotone(x Interval, f func(float64) float64) Interval {
	if x.IsBottom() {
		return bottomIv
	}
	return mk(f(x.Lo), f(x.Hi))
}

// expIv is the contract of math.Exp (base e) / math.Exp2: positive and
// monotone, with exp(−∞) = 0.
func expIv(x Interval, baseE bool) Interval {
	if x.IsBottom() {
		return bottomIv
	}
	f := math.Exp
	if !baseE {
		f = math.Exp2
	}
	lo, hi := 0.0, inf
	if !math.IsInf(x.Lo, -1) {
		lo = f(x.Lo)
	}
	if !math.IsInf(x.Hi, 1) {
		hi = f(x.Hi)
	}
	return mk(lo, hi)
}

// powIv handles the common monotone case x ≥ 0: x^y with both bounds
// known is evaluated directly; anything subtler degrades to the sign
// fact.
func powIv(x, y Interval) Interval {
	if x.IsBottom() || y.IsBottom() {
		return bottomIv
	}
	if x.Lo >= 0 {
		return Interval{0, inf}
	}
	return top
}
