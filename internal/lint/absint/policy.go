package absint

import (
	"go/ast"
	"go/token"
	"math"
	"strings"
)

// ProjectAnalyzers returns the interval suite configured for this
// repository: probability and ε range proofs everywhere, division checks
// everywhere, index-bound checks in the hot CV kernels (plus the absint
// fixtures, which exercise the analyzer directly).
func ProjectAnalyzers() []*Analyzer {
	kernels := []string{
		"verro/internal/img",
		"verro/internal/hog",
		"verro/internal/inpaint",
		"verro/internal/blur",
	}
	idx := NewIdxBound()
	idx.Match = func(pkgPath string) bool {
		for _, k := range kernels {
			if pkgPath == k || strings.HasPrefix(pkgPath, k+"/") {
				return true
			}
		}
		return strings.Contains(pkgPath, "absint/testdata")
	}
	return []*Analyzer{NewProbRange(), NewDivZero(), idx}
}

// probSlot describes one numeric parameter of a privacy primitive that
// must stay within a proved range.
type probSlot struct {
	arg   int
	label string
	// kind is "prob" ([0,1]) or "eps" (≥ 0).
	kind string
}

// probSlots maps normalized callee names to their constrained argument
// slots. Receivers are not counted: arg 0 is the first ordinary argument.
var probSlots = map[string][]probSlot{
	"verro/internal/ldp.ClassicRR":        {{1, "eps", "eps"}},
	"verro/internal/ldp.RAPPORFlip":       {{1, "f", "prob"}},
	"verro/internal/ldp.Epsilon":          {{1, "f", "prob"}},
	"verro/internal/ldp.FlipProbability":  {{1, "eps", "eps"}},
	"verro/internal/ldp.KeepProbability":  {{0, "eps", "eps"}},
	"verro/internal/ldp.ExpectedBit":      {{1, "f", "prob"}},
	"verro/internal/ldp.UnbiasCount":      {{2, "f", "prob"}},
	"verro/internal/ldp.LaplaceMechanism": {{2, "eps", "eps"}},
	"verro/internal/ldp.NoisyCounts":      {{2, "eps", "eps"}},
}

// NewProbRange builds the probrange analyzer: every value flowing into a
// probability slot of the ldp primitives — and every value compared
// against rng.Float64() — must be provably inside [0, 1], and every ε
// must be provably nonnegative. Findings are evidence-based: an interval
// that is simply unknown (top of its type) stays silent; a finite bound
// outside the legal range is reported.
func NewProbRange() *Analyzer {
	a := &Analyzer{
		Name: "probrange",
		Doc:  "probability and ε arguments must be provably in range ([0,1] and ≥ 0)",
	}
	a.hooks = func(rc *reportCtx) hookFns {
		return hookFns{
			call: func(call *ast.CallExpr, callee string, args []Interval) {
				slots, ok := probSlots[callee]
				if !ok {
					return
				}
				short := callee[strings.LastIndex(callee, ".")+1:]
				for _, s := range slots {
					if s.arg >= len(args) || s.arg >= len(call.Args) {
						continue
					}
					iv := args[s.arg]
					pos := call.Args[s.arg].Pos()
					switch s.kind {
					case "prob":
						checkProb01(rc, pos, iv, s.label+" argument to "+short)
					case "eps":
						checkEpsNonneg(rc, pos, iv, s.label+" argument to "+short)
					}
				}
			},
			probCmp: func(pos token.Pos, prob Interval) {
				checkProb01(rc, pos, prob, "value compared against rand.Float64()")
			},
		}
	}
	return a
}

// checkProb01 reports what the interval proves about leaving [0, 1].
func checkProb01(rc *reportCtx, pos token.Pos, iv Interval, what string) {
	if iv.IsBottom() || iv.In(0, 1) {
		return
	}
	if iv.Hi < 0 || iv.Lo > 1 {
		rc.reportf(pos, "%s is provably outside [0, 1] (interval %s)", what, iv)
		return
	}
	if (iv.Lo < 0 && !math.IsInf(iv.Lo, -1)) || (iv.Hi > 1 && !math.IsInf(iv.Hi, 1)) {
		rc.reportf(pos, "%s may leave [0, 1] (interval %s)", what, iv)
	}
}

// checkEpsNonneg reports what the interval proves about ε < 0.
func checkEpsNonneg(rc *reportCtx, pos token.Pos, iv Interval, what string) {
	if iv.IsBottom() || iv.Lo >= 0 {
		return
	}
	if iv.Hi < 0 {
		rc.reportf(pos, "%s is provably negative (interval %s)", what, iv)
		return
	}
	if !math.IsInf(iv.Lo, -1) {
		rc.reportf(pos, "%s may be negative (interval %s)", what, iv)
	}
}

// NewDivZero builds the divzero analyzer: every / and % whose divisor
// interval provably is — or with finite evidence may be — zero is
// reported. A divisor about which nothing is known (top of its type)
// stays silent: the analyzer trades completeness for a sweep-clean
// signal, like the other evidence-based checks.
func NewDivZero() *Analyzer {
	a := &Analyzer{
		Name: "divzero",
		Doc:  "division and modulo divisors must provably exclude zero",
	}
	a.hooks = func(rc *reportCtx) hookFns {
		return hookFns{
			div: func(pos token.Pos, divisor Interval, integer bool) {
				if divisor.IsBottom() || !divisor.Contains(0) {
					return
				}
				op := "division"
				if integer {
					op = "integer division or modulo"
				}
				if divisor.Lo == 0 && divisor.Hi == 0 {
					rc.reportf(pos, "%s by a divisor that is provably zero", op)
					return
				}
				if math.IsInf(divisor.Lo, -1) && math.IsInf(divisor.Hi, 1) {
					return // no evidence either way
				}
				rc.reportf(pos, "%s by a divisor whose interval %s contains zero", op, divisor)
			},
		}
	}
	return a
}

// NewIdxBound builds the idxbound analyzer: slice/array/string indexing
// where the index interval escapes [0, len) under the branch-refined
// facts. Definite escapes (index provably negative, or provably at or
// beyond every possible length) always report; possible escapes report
// only on finite evidence so unconstrained indices stay silent.
func NewIdxBound() *Analyzer {
	a := &Analyzer{
		Name: "idxbound",
		Doc:  "kernel indexing must stay provably inside [0, len)",
	}
	a.hooks = func(rc *reportCtx) hookFns {
		return hookFns{
			index: func(pos token.Pos, idx, length Interval) {
				if idx.IsBottom() || length.IsBottom() {
					return
				}
				if idx.Hi < 0 {
					rc.reportf(pos, "index is provably negative (interval %s)", idx)
					return
				}
				if idx.Lo < 0 && !math.IsInf(idx.Lo, -1) {
					rc.reportf(pos, "index may be negative (interval %s)", idx)
					return
				}
				if !math.IsInf(length.Hi, 1) && idx.Lo >= length.Hi {
					rc.reportf(pos, "index is provably out of bounds (interval %s, length %s)", idx, length)
					return
				}
				if !math.IsInf(idx.Hi, 1) && !math.IsInf(length.Hi, 1) && idx.Hi >= length.Hi {
					rc.reportf(pos, "index may exceed the bound (interval %s, length %s)", idx, length)
				}
			},
		}
	}
	return a
}
