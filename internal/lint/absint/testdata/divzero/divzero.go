// Package divzero exercises the divzero interval analyzer: divisors must
// provably exclude zero.
package divzero

func provablyZero(x int) int {
	z := 0
	return x / z // want "integer division or modulo by a divisor that is provably zero"
}

func unguardedMean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)) // want "division by a divisor whose interval \[0, \+inf\] contains zero"
}

// guardedMean is clean: the early return leaves len(xs) ∈ [1, +inf].
func guardedMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func moduloRange(i, n int) int {
	if n >= 0 && n < 8 {
		return i % n // want "integer division or modulo by a divisor whose interval \[0, 7\] contains zero"
	}
	return 0
}

// positiveModulo is clean: the guard proves n ≥ 1.
func positiveModulo(i, n int) int {
	if n > 0 {
		return i % n
	}
	return 0
}

// unknownDivisor is clean by design: a top divisor carries no evidence.
func unknownDivisor(x, y float64) float64 {
	return x / y
}
