// Package idxbound exercises the idxbound interval analyzer: indexing
// must stay provably inside [0, len) given branch-refined facts.
package idxbound

func provablyPast() float64 {
	xs := make([]float64, 4)
	return xs[5] // want "index is provably out of bounds \(interval \[5, 5\], length \[4, 4\]\)"
}

func provablyNegative(xs []float64) float64 {
	k := -1
	return xs[k] // want "index is provably negative \(interval \[-1, -1\]\)"
}

func mayBeNegative(xs []float64, i int) float64 {
	j := i % 5
	if len(xs) > 4 {
		return xs[j] // want "index may be negative \(interval \[-4, 4\]\)"
	}
	return 0
}

func mayExceed(n int) float64 {
	xs := make([]float64, 8)
	if n >= 0 && n <= 9 {
		return xs[n] // want "index may exceed the bound \(interval \[0, 9\], length \[8, 8\]\)"
	}
	return 0
}

// guarded is clean: the bounds check refines i into [0, len).
func guarded(xs []float64, i int) float64 {
	if i < 0 || i >= len(xs) {
		return 0
	}
	return xs[i]
}

// ranged is clean: a range index is within [0, len) by construction.
func ranged(xs []float64) float64 {
	s := 0.0
	for i := range xs {
		s += xs[i]
	}
	return s
}

// loopSum is clean: the classic i < len(xs) loop refines the index.
func loopSum(xs []float64) float64 {
	s := 0.0
	for i := 0; i < len(xs); i++ {
		s += xs[i]
	}
	return s
}
