// Package probrange exercises the probrange interval analyzer: flip and
// keep probabilities must be provably within [0, 1], ε budgets provably
// nonnegative.
package probrange

import (
	"math/rand"

	"verro/internal/ldp"
)

func flipTooHigh(b ldp.BitVector, rng *rand.Rand) ldp.BitVector {
	return ldp.RAPPORFlip(b, 1.5, rng) // want "f argument to RAPPORFlip is provably outside \[0, 1\]"
}

func negativeEps(b ldp.BitVector, rng *rand.Rand) ldp.BitVector {
	return ldp.ClassicRR(b, -0.5, rng) // want "eps argument to ClassicRR is provably negative"
}

// helperProb's summary is computed whole-program: callers see [1.2, 1.2].
func helperProb() float64 { return 1.2 }

func viaSummary(b ldp.BitVector, rng *rand.Rand) ldp.BitVector {
	return ldp.RAPPORFlip(b, helperProb(), rng) // want "f argument to RAPPORFlip is provably outside \[0, 1\]"
}

func scaledComparison(rng *rand.Rand) bool {
	p := rng.Float64() * 2
	return rng.Float64() < p // want "value compared against rand.Float64\(\) may leave \[0, 1\]"
}

// guarded is clean: the branch refinement proves p ∈ [0, 1].
func guarded(b ldp.BitVector, p float64, rng *rand.Rand) ldp.BitVector {
	if p < 0 || p > 1 {
		return b
	}
	return ldp.RAPPORFlip(b, p, rng)
}

// derived is clean: KeepProbability's native contract is [0, 1].
func derived(eps float64, rng *rand.Rand) bool {
	if eps < 0 {
		return false
	}
	return rng.Float64() < ldp.KeepProbability(eps)
}

// unknown is clean by design: a top interval carries no evidence.
func unknown(b ldp.BitVector, p float64, rng *rand.Rand) ldp.BitVector {
	return ldp.RAPPORFlip(b, p, rng)
}
