// Package widen is the widening-termination regression fixture: loops
// whose counters grow without bound must converge (via widening) instead
// of iterating forever, and must produce no diagnostics.
package widen

func growingCounter(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += 2
	}
	return s
}

func nestedGrowth(rows, cols int) int {
	total := 0
	for r := 0; r < rows; r++ {
		acc := 0
		for c := 0; c < cols; c++ {
			acc += r * c
		}
		total += acc
	}
	return total
}

func doubling(n int) int {
	x := 1
	for x < n {
		x *= 2
	}
	return x
}

func countdown(n int) int {
	steps := 0
	for n > 0 {
		n--
		steps++
	}
	return steps
}
