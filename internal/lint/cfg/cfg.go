// Package cfg lowers Go function bodies into basic-block control-flow
// graphs for the analysis suites. It was extracted from the interval
// abstract interpreter (internal/lint/absint) when the lifecycle suite
// (internal/lint/life) became its second consumer: the interval engine
// interprets block bodies and edge refinements, the lifecycle analyzers
// run path-sensitive must-release and held-lock dataflow over the same
// blocks and edges.
//
// Every function body becomes a list of basic blocks holding only
// straight-line statements (assignments, declarations, expression
// statements, inc/dec, go/defer); control flow — if, for, range, switch,
// select, return, break/continue/goto — becomes edges. A consumer never
// sees a control statement; it executes block bodies and applies edge
// refinements. Goroutine bodies contribute no edges (a `go` statement's
// call is checked where it appears, but its execution is not sequenced
// into the CFG).
package cfg

import (
	"go/ast"
	"go/token"
)

// EdgeKind distinguishes how an edge constrains the target state.
type EdgeKind int

const (
	Plain     EdgeKind = iota
	CondTrue           // taken when cond is true: refine with cond
	CondFalse          // taken when cond is false: refine with ¬cond
	Case               // switch case match: tag ∈ join(vals)
	RangeBody          // entering a range body: bind key/value
)

// Edge is one CFG arc with its refinement payload.
type Edge struct {
	To   *Block
	Kind EdgeKind
	Cond ast.Expr       // CondTrue / CondFalse
	Tag  ast.Expr       // Case (nil for tagless switch)
	Vals []ast.Expr     // Case
	Rng  *ast.RangeStmt // RangeBody
}

// Block is one basic block.
type Block struct {
	ID    int
	Stmts []ast.Stmt
	// Ret, when non-nil, terminates the function through this block.
	Ret *ast.ReturnStmt
	// Cond, when non-nil, is evaluated after Stmts; Succs then carry
	// CondTrue/CondFalse refinements on it.
	Cond  ast.Expr
	Succs []Edge
}

// Graph is one lowered function body.
type Graph struct {
	Blocks []*Block
	Entry  *Block
}

// loopFrame tracks the jump targets of one enclosing loop or switch.
type loopFrame struct {
	label          string
	breakTarget    *Block
	continueTarget *Block // nil for switch/select frames
}

type builder struct {
	blocks []*Block
	frames []loopFrame
	// labels maps label names to started blocks for goto resolution.
	labels map[string]*Block
	// gotos records unresolved goto edges (source block, label).
	gotos []pendingGoto
	// pendingLabel is attached to the next loop/switch frame pushed.
	pendingLabel string
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock() *Block {
	bl := &Block{ID: len(b.blocks)}
	b.blocks = append(b.blocks, bl)
	return bl
}

func (b *builder) link(from, to *Block, e Edge) {
	e.To = to
	from.Succs = append(from.Succs, e)
}

// Build lowers the body of a function (or function literal).
func Build(body *ast.BlockStmt) *Graph {
	b := &builder{labels: map[string]*Block{}}
	entry := b.newBlock()
	last := b.stmtList(body.List, entry)
	_ = last // falling off the end returns with zero results; no edge needed
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.link(g.from, target, Edge{})
		}
	}
	return &Graph{Blocks: b.blocks, Entry: entry}
}

// stmtList lowers a statement sequence starting in cur, returning the
// block where control continues (nil when the sequence cannot fall
// through).
func (b *builder) stmtList(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable statements after return/break; lower them into a
			// fresh block with no predecessors so consumers record them as
			// dead rather than silently skipping.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *builder) stmt(s ast.Stmt, cur *Block) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		cur.Cond = s.Cond
		thenB := b.newBlock()
		b.link(cur, thenB, Edge{Kind: CondTrue, Cond: s.Cond})
		thenEnd := b.stmtList(s.Body.List, thenB)
		join := b.newBlock()
		if s.Else != nil {
			elseB := b.newBlock()
			b.link(cur, elseB, Edge{Kind: CondFalse, Cond: s.Cond})
			if elseEnd := b.stmt(s.Else, elseB); elseEnd != nil {
				b.link(elseEnd, join, Edge{})
			}
		} else {
			b.link(cur, join, Edge{Kind: CondFalse, Cond: s.Cond})
		}
		if thenEnd != nil {
			b.link(thenEnd, join, Edge{})
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		head := b.newBlock()
		b.link(cur, head, Edge{})
		exit := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		if s.Cond != nil {
			head.Cond = s.Cond
			b.link(head, body, Edge{Kind: CondTrue, Cond: s.Cond})
			b.link(head, exit, Edge{Kind: CondFalse, Cond: s.Cond})
		} else {
			b.link(head, body, Edge{})
		}
		b.pushFrame(exit, post)
		bodyEnd := b.stmtList(s.Body.List, body)
		b.popFrame()
		if bodyEnd != nil {
			b.link(bodyEnd, post, Edge{})
		}
		if s.Post != nil {
			post.Stmts = append(post.Stmts, s.Post)
		}
		b.link(post, head, Edge{})
		return exit

	case *ast.RangeStmt:
		// Evaluate the range container once on entry so hooks see it.
		cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: s.X})
		head := b.newBlock()
		b.link(cur, head, Edge{})
		exit := b.newBlock()
		body := b.newBlock()
		b.link(head, body, Edge{Kind: RangeBody, Rng: s})
		b.link(head, exit, Edge{})
		b.pushFrame(exit, head)
		if bodyEnd := b.stmtList(s.Body.List, body); bodyEnd != nil {
			b.link(bodyEnd, head, Edge{})
		}
		b.popFrame()
		return exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		if s.Tag != nil {
			cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: s.Tag})
		}
		exit := b.newBlock()
		b.pushSwitchFrame(exit)
		var caseBodies []*Block
		var hasDefault bool
		for range s.Body.List {
			caseBodies = append(caseBodies, b.newBlock())
		}
		// A tagless switch is an if/else-if chain: each case's dispatch
		// block carries the accumulated negations of the cases before it,
		// so `case delta == 0: ...; case maxc == r: x / delta` sees
		// delta != 0 in the later bodies.
		defaultIdx := -1
		dispatch := cur
		for i, cc := range s.Body.List {
			cc := cc.(*ast.CaseClause)
			switch {
			case cc.List == nil:
				hasDefault = true
				defaultIdx = i
				if s.Tag != nil {
					b.link(cur, caseBodies[i], Edge{})
				}
			case s.Tag != nil:
				b.link(cur, caseBodies[i], Edge{Kind: Case, Tag: s.Tag, Vals: cc.List})
			case len(cc.List) == 1:
				dispatch.Stmts = append(dispatch.Stmts, &ast.ExprStmt{X: cc.List[0]})
				next := b.newBlock()
				b.link(dispatch, caseBodies[i], Edge{Kind: CondTrue, Cond: cc.List[0]})
				b.link(dispatch, next, Edge{Kind: CondFalse, Cond: cc.List[0]})
				dispatch = next
			default:
				// Multiple boolean expressions in one case: their
				// disjunction (and its negation) is not tracked.
				for _, v := range cc.List {
					dispatch.Stmts = append(dispatch.Stmts, &ast.ExprStmt{X: v})
				}
				next := b.newBlock()
				b.link(dispatch, caseBodies[i], Edge{})
				b.link(dispatch, next, Edge{})
				dispatch = next
			}
			end := b.stmtListFallthrough(cc.Body, caseBodies[i], caseBodies, i)
			if end != nil {
				b.link(end, exit, Edge{})
			}
		}
		b.popFrame()
		if s.Tag == nil {
			// End of the chain: every case condition was false.
			if defaultIdx >= 0 {
				b.link(dispatch, caseBodies[defaultIdx], Edge{})
			} else {
				b.link(dispatch, exit, Edge{})
			}
		} else if !hasDefault {
			b.link(cur, exit, Edge{})
		}
		return exit

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		exit := b.newBlock()
		b.pushSwitchFrame(exit)
		hasDefault := false
		for _, cc := range s.Body.List {
			cc := cc.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			body := b.newBlock()
			b.link(cur, body, Edge{})
			if end := b.stmtList(cc.Body, body); end != nil {
				b.link(end, exit, Edge{})
			}
		}
		b.popFrame()
		if !hasDefault {
			b.link(cur, exit, Edge{})
		}
		return exit

	case *ast.SelectStmt:
		exit := b.newBlock()
		b.pushSwitchFrame(exit)
		for _, cc := range s.Body.List {
			cc := cc.(*ast.CommClause)
			body := b.newBlock()
			b.link(cur, body, Edge{})
			if cc.Comm != nil {
				body.Stmts = append(body.Stmts, cc.Comm)
			}
			if end := b.stmtList(cc.Body, body); end != nil {
				b.link(end, exit, Edge{})
			}
		}
		b.popFrame()
		return exit

	case *ast.ReturnStmt:
		cur.Ret = s
		return nil

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.findBreak(label); t != nil {
				b.link(cur, t, Edge{})
			}
			return nil
		case token.CONTINUE:
			if t := b.findContinue(label); t != nil {
				b.link(cur, t, Edge{})
			}
			return nil
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: cur, label: label})
			return nil
		case token.FALLTHROUGH:
			// Handled by stmtListFallthrough; reaching here means a
			// fallthrough outside a switch body list — drop it.
			return nil
		}
		return cur

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.link(cur, target, Edge{})
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		out := b.stmt(s.Stmt, target)
		b.pendingLabel = ""
		return out

	case *ast.EmptyStmt:
		return cur

	default:
		// Straight-line statement: assign, decl, inc/dec, expr, send,
		// go, defer.
		cur.Stmts = append(cur.Stmts, s)
		// A statement that provably never returns (panic, os.Exit) ends
		// the block with no fallthrough, so guards like
		// `if n == 0 { panic(...) }` refine the code below them.
		if es, ok := s.(*ast.ExprStmt); ok && IsNoReturnCall(es.X) {
			return nil
		}
		return cur
	}
}

// stmtListFallthrough lowers a case body, wiring a trailing fallthrough to
// the next case's body block.
func (b *builder) stmtListFallthrough(list []ast.Stmt, cur *Block, bodies []*Block, i int) *Block {
	if n := len(list); n > 0 {
		if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			end := b.stmtList(list[:n-1], cur)
			if end != nil && i+1 < len(bodies) {
				b.link(end, bodies[i+1], Edge{})
			}
			return nil
		}
	}
	return b.stmtList(list, cur)
}

// IsNoReturnCall recognizes calls that terminate the goroutine: panic and
// os.Exit. (log.Fatal would qualify too; the repo's lint rules forbid it
// in pipeline code.)
func IsNoReturnCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			switch id.Name {
			case "os":
				return fun.Sel.Name == "Exit"
			case "log":
				switch fun.Sel.Name {
				case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
					return true
				}
			}
		}
	}
	return false
}

func (b *builder) pushFrame(breakT, contT *Block) {
	b.frames = append(b.frames, loopFrame{label: b.pendingLabel, breakTarget: breakT, continueTarget: contT})
	b.pendingLabel = ""
}

func (b *builder) pushSwitchFrame(breakT *Block) {
	b.frames = append(b.frames, loopFrame{label: b.pendingLabel, breakTarget: breakT})
	b.pendingLabel = ""
}

func (b *builder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

func (b *builder) findBreak(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label == "" || f.label == label {
			return f.breakTarget
		}
	}
	return nil
}

func (b *builder) findContinue(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if f.continueTarget == nil {
			continue // switch/select frames are transparent to continue
		}
		if label == "" || f.label == label {
			return f.continueTarget
		}
	}
	return nil
}
