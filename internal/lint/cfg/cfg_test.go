package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func lower(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return Build(fn.Body)
}

// reachable walks the graph from the entry and returns the visited set.
func reachable(g *Graph) map[int]bool {
	seen := map[int]bool{}
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b.ID] {
			return
		}
		seen[b.ID] = true
		for _, e := range b.Succs {
			visit(e.To)
		}
	}
	visit(g.Entry)
	return seen
}

func TestBuildIfElseJoins(t *testing.T) {
	g := lower(t, "x := 1\nif x > 0 {\n x = 2\n} else {\n x = 3\n}\n_ = x")
	var trueEdges, falseEdges int
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			switch e.Kind {
			case CondTrue:
				trueEdges++
				if e.Cond == nil {
					t.Error("CondTrue edge without cond expr")
				}
			case CondFalse:
				falseEdges++
			}
		}
	}
	if trueEdges != 1 || falseEdges != 1 {
		t.Errorf("if lowering: got %d true / %d false edges, want 1/1", trueEdges, falseEdges)
	}
}

func TestBuildForLoopBackEdge(t *testing.T) {
	g := lower(t, "for i := 0; i < 3; i++ {\n _ = i\n}")
	// The post block must loop back to the head: some block is its own
	// ancestor through a back edge.
	reach := reachable(g)
	var hasCycle bool
	for _, b := range g.Blocks {
		if !reach[b.ID] {
			continue
		}
		for _, e := range b.Succs {
			if e.To.ID <= b.ID && reach[e.To.ID] {
				hasCycle = true
			}
		}
	}
	if !hasCycle {
		t.Error("for lowering produced no back edge")
	}
}

func TestBuildReturnTerminates(t *testing.T) {
	g := lower(t, "return")
	var rets int
	for _, b := range g.Blocks {
		if b.Ret != nil {
			rets++
			if len(b.Succs) != 0 {
				t.Error("return block has successors")
			}
		}
	}
	if rets != 1 {
		t.Errorf("got %d return blocks, want 1", rets)
	}
}

func TestBuildSelectOneBlockPerClause(t *testing.T) {
	g := lower(t, "ch := make(chan int)\nselect {\ncase <-ch:\n _ = 1\ncase ch <- 2:\n}")
	// Each comm clause's block carries its comm statement first.
	var commBlocks int
	for _, b := range g.Blocks {
		if len(b.Stmts) == 0 {
			continue
		}
		switch b.Stmts[0].(type) {
		case *ast.ExprStmt, *ast.SendStmt:
			// Comm statements are receives (ExprStmt/AssignStmt) or sends.
			commBlocks++
		}
	}
	if commBlocks < 2 {
		t.Errorf("select lowering: %d comm-carrying blocks, want >= 2", commBlocks)
	}
}

func TestBuildPanicEndsBlock(t *testing.T) {
	g := lower(t, "x := 1\nif x == 0 {\n panic(\"no\")\n}\n_ = x")
	// The panic block must not fall through to the join.
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if es, ok := s.(*ast.ExprStmt); ok && IsNoReturnCall(es.X) {
				if len(b.Succs) != 0 {
					t.Error("panic block has successors")
				}
			}
		}
	}
	if !IsNoReturnCall(mustParseExpr(t, `os.Exit(1)`)) {
		t.Error("os.Exit not recognized as no-return")
	}
	if IsNoReturnCall(mustParseExpr(t, `fmt.Println(1)`)) {
		t.Error("fmt.Println wrongly recognized as no-return")
	}
}

func mustParseExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := parser.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse expr: %v", err)
	}
	return e
}
