package lint

import (
	"go/ast"
)

// randPath is the package whose global generator the analyzer polices.
const randPath = "math/rand"

// detrandConstructors are the math/rand functions that build an explicit
// generator rather than consuming the global one; calling them is the
// sanctioned pattern (rand.New(rand.NewSource(seed))).
var detrandConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// NewDetRand builds the detrand analyzer: seeded runs must be bit-identical,
// so nothing may draw from math/rand's process-global source (its state is
// shared and unseeded), and no generator may be seeded from the wall clock.
// A seeded *rand.Rand must be threaded through the call graph instead —
// the convention every pipeline stage already follows.
func NewDetRand() *Analyzer {
	a := &Analyzer{
		Name: "detrand",
		Doc:  "forbid the global math/rand source and wall-clock seeding; thread a seeded *rand.Rand",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, name, ok := pass.CalleeOf(call)
				if !ok || pkg != randPath {
					return true
				}
				if !detrandConstructors[name] {
					pass.Reportf(call.Pos(),
						"call to global math/rand.%s draws from the shared unseeded source; thread a seeded *rand.Rand", name)
					return true
				}
				// rand.NewSource(time.Now().UnixNano()): a constructor is
				// fine, a wall-clock seed is not. Only NewSource takes the
				// seed, so checking it alone avoids double-reporting the
				// enclosing rand.New call.
				if name == "NewSource" {
					for _, arg := range call.Args {
						if wall := findWallClock(pass, arg); wall != nil {
							pass.Reportf(wall.Pos(),
								"math/rand.%s seeded from the wall clock; derive the seed from configuration", name)
						}
					}
				}
				return true
			})
		}
	}
	return a
}

// findWallClock returns the first time.Now/time.Since call nested in expr.
func findWallClock(pass *Pass, expr ast.Expr) ast.Expr {
	var found ast.Expr
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name, ok := pass.CalleeOf(call); ok && pkg == "time" && wallClockFuncs[name] {
			found = call
			return false
		}
		return true
	})
	return found
}
