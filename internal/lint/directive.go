package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Directive grammar (documented in DESIGN.md §2d):
//
//	//lint:allow analyzer[,analyzer...] [reason...]
//
// The comment must start exactly with "//lint:allow" (no space after the
// slashes, mirroring //go: directives). The analyzer list is comma-separated
// with no spaces; everything after the first space is a free-text reason and
// is strongly encouraged — an exception without a reason is a review smell.
// A directive suppresses the listed analyzers on the directive's own line
// (trailing-comment style) and on the line directly below it
// (comment-above-statement style). It never applies file- or block-wide:
// every exception is visible at the call site it excuses.
const allowPrefix = "//lint:allow"

// allowKey identifies one suppressed (file, line, analyzer) cell.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// AllowIndex is the materialized suppression set of one package: every
// (file, line, analyzer) cell a //lint:allow directive covers. It is
// exported so analysis drivers outside this package (the flow engine, which
// reports across package boundaries) honor the same directives.
//
// The index also records which cells actually suppressed a diagnostic
// (Allows marks its hits), so after every suite has run, StaleAllows can
// report directives that no longer excuse anything. It is not
// concurrency-safe; drivers query one package's index from one goroutine
// at a time, which every current driver satisfies.
type AllowIndex struct {
	cells map[allowKey]bool
	hits  map[allowKey]bool
	// directives inventories every parsed allow directive in source order,
	// one record per (directive comment, analyzer name) pair.
	directives []allowDirective
}

// allowDirective is one //lint:allow comment's claim for one analyzer.
type allowDirective struct {
	pos      token.Position
	analyzer string
}

// BuildAllowIndex scans every comment in the files and materializes the
// suppressed (file, line, analyzer) set.
func BuildAllowIndex(fset *token.FileSet, files []*ast.File) *AllowIndex {
	idx := &AllowIndex{cells: map[allowKey]bool{}, hits: map[allowKey]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range names {
					idx.cells[allowKey{pos.Filename, pos.Line, name}] = true
					idx.cells[allowKey{pos.Filename, pos.Line + 1, name}] = true
					idx.directives = append(idx.directives, allowDirective{pos: pos, analyzer: name})
				}
			}
		}
	}
	return idx
}

// parseAllow extracts the analyzer names from one comment's text, or nil
// when the comment is not an allow directive.
func parseAllow(text string) []string {
	rest, ok := strings.CutPrefix(text, allowPrefix)
	if !ok {
		return nil
	}
	// Require a separator after the keyword so "//lint:allowx" is not a
	// directive.
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	var names []string
	for _, name := range strings.Split(fields[0], ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	return names
}

// Allows reports whether the directive set suppresses the analyzer at the
// position's line, recording the hit so StaleAllows can tell which
// directives still earn their keep. A nil index allows nothing.
func (idx *AllowIndex) Allows(analyzer string, pos token.Position) bool {
	if idx == nil {
		return false
	}
	key := allowKey{pos.Filename, pos.Line, analyzer}
	if !idx.cells[key] {
		return false
	}
	idx.hits[key] = true
	return true
}

// StaleAllowsName is the analyzer name stale-directive diagnostics carry —
// and the name that suppresses them, so a deliberately speculative allow
// can itself be excused.
const StaleAllowsName = "staleallow"

// StaleAllows reports every allow directive naming an analyzer in ran that
// never suppressed a diagnostic during this index's lifetime. Call it only
// after every suite in ran has finished reporting; directives for analyzers
// outside ran are skipped, so a subset run (say, flow-only) cannot declare
// a classic analyzer's allow stale. The returned diagnostics are unsorted.
func (idx *AllowIndex) StaleAllows(ran map[string]bool) []Diagnostic {
	if idx == nil {
		return nil
	}
	var diags []Diagnostic
	for _, d := range idx.directives {
		if !ran[d.analyzer] {
			continue
		}
		if idx.hits[allowKey{d.pos.Filename, d.pos.Line, d.analyzer}] ||
			idx.hits[allowKey{d.pos.Filename, d.pos.Line + 1, d.analyzer}] {
			continue
		}
		if idx.Allows(StaleAllowsName, d.pos) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      d.pos,
			Analyzer: StaleAllowsName,
			Message:  fmt.Sprintf("//lint:allow %s no longer suppresses any diagnostic; remove the directive", d.analyzer),
		})
	}
	return diags
}
