package lint

import (
	"reflect"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//lint:allow detrand", []string{"detrand"}},
		{"//lint:allow detrand,walltime", []string{"detrand", "walltime"}},
		{"//lint:allow floateq 0.5 is exactly representable", []string{"floateq"}},
		{"//lint:allow maporder,floateq reason with spaces", []string{"maporder", "floateq"}},
		{"//lint:allow\tpanicfree tab separator", []string{"panicfree"}},
		{"// lint:allow detrand", nil}, // space after slashes: not a directive
		{"//lint:allowdetrand", nil},   // no separator after keyword
		{"//lint:allow", nil},          // no analyzer named
		{"//lint:deny detrand", nil},   // unknown verb
		{"// regular comment", nil},    //
		{"//lint:allow ,", nil},        // empty list
		{"//lint:allow a,,b", []string{"a", "b"}},
	}
	for _, c := range cases {
		if got := parseAllow(c.text); !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

// TestDirectiveScope pins the two-line scope: a directive suppresses its
// own line and the line directly below, and nothing else.
func TestDirectiveScope(t *testing.T) {
	dir := writeFixture(t, `package fixture

func own(a, b float64) bool {
	return a == b //lint:allow floateq own line
}

func below(a, b float64) bool {
	//lint:allow floateq next line
	return a == b
}

func tooFar(a, b float64) bool {
	//lint:allow floateq two lines above is out of scope

	return a == b // want "floating-point"
}
`)
	problems, err := CheckFixture(NewLoader(), dir, NewFloatEq())
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("directive scope fixture not clean: %q", problems)
	}
}

// TestDirectiveOtherAnalyzer: an allow for one analyzer must not silence
// another on the same line.
func TestDirectiveOtherAnalyzer(t *testing.T) {
	dir := writeFixture(t, `package fixture

func eq(a, b float64) bool {
	return a == b //lint:allow detrand wrong analyzer name
}
`)
	problems, err := CheckFixture(NewLoader(), dir, NewFloatEq())
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 {
		t.Fatalf("want the diagnostic to survive a mismatched allow, got %q", problems)
	}
}
