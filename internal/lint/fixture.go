package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The fixture runner is this package's analysistest equivalent: a fixture
// directory under testdata/ is loaded as a package, the analyzers run over
// it, and every diagnostic must be matched by a `// want "regexp"` comment
// on the same line (and vice versa). A fixture therefore documents both
// what an analyzer flags and — via //lint:allow lines carrying no want
// comment — what the directive suppresses.

// wantRx extracts the quoted expectations from a `// want "a" "b"` comment.
var wantRx = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// CheckFixture loads dir as a package, runs the analyzers, and returns one
// problem string per mismatch between diagnostics and want comments. A nil
// problems slice means the fixture asserts exactly its annotations. Load or
// want-regexp errors are returned as err.
func CheckFixture(l *Loader, dir string, analyzers ...*Analyzer) (problems []string, err error) {
	pkg, err := l.Load(dir)
	if err != nil {
		return nil, err
	}
	return CheckDiagnostics([]*Package{pkg}, Run(pkg, analyzers...))
}

// CheckDiagnostics matches an already-computed diagnostic set against the
// `// want` comments of the packages, returning one problem string per
// mismatch. It is the multi-package core of CheckFixture, used directly by
// drivers whose analyses span several packages at once (the flow engine's
// cross-package fixtures).
func CheckDiagnostics(pkgs []*Package, diags []Diagnostic) (problems []string, err error) {
	var expects []*expectation
	for _, pkg := range pkgs {
		es, err := collectWants(pkg)
		if err != nil {
			return nil, err
		}
		expects = append(expects, es...)
	}

	for _, d := range diags {
		if e := matchExpectation(expects, d); e != nil {
			e.matched = true
			continue
		}
		problems = append(problems, fmt.Sprintf("%s: unexpected diagnostic: %s (%s)",
			shortPos(d.Pos), d.Message, d.Analyzer))
	}
	for _, e := range expects {
		if !e.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matching %q",
				e.file, e.line, e.rx))
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// RunFixture is the testing wrapper around CheckFixture.
func RunFixture(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	problems, err := CheckFixture(NewLoader(), dir, analyzers...)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}
	for _, p := range problems {
		t.Errorf("fixture %s: %s", dir, p)
	}
}

// collectWants scans the fixture's comments for want expectations.
func collectWants(pkg *Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantRx.FindAllStringSubmatch(rest, -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment without quoted pattern", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					rx, err := regexp.Compile(q[1])
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return out, nil
}

// matchExpectation finds an unmatched expectation on the diagnostic's line
// whose pattern matches the message.
func matchExpectation(expects []*expectation, d Diagnostic) *expectation {
	for _, e := range expects {
		if !e.matched && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.rx.MatchString(d.Message) {
			return e
		}
	}
	return nil
}

func shortPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
}
