package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The meta-tests assert the fixture runner itself fails when a fixture's
// want comments drift from the diagnostics — otherwise an analyzer test
// could silently assert nothing.

func writeFixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestFixtureMissingWantFails(t *testing.T) {
	// A diagnostic fires but no want comment claims it.
	dir := writeFixture(t, `package fixture

func eq(a, b float64) bool {
	return a == b
}
`)
	problems, err := CheckFixture(NewLoader(), dir, NewFloatEq())
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "unexpected diagnostic") {
		t.Fatalf("want one 'unexpected diagnostic' problem, got %q", problems)
	}
}

func TestFixtureExtraWantFails(t *testing.T) {
	// A want comment claims a diagnostic that never fires.
	dir := writeFixture(t, `package fixture

func eq(a, b int) bool {
	return a == b // want "floating-point"
}
`)
	problems, err := CheckFixture(NewLoader(), dir, NewFloatEq())
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "no diagnostic matching") {
		t.Fatalf("want one 'no diagnostic matching' problem, got %q", problems)
	}
}

func TestFixtureWrongPatternFails(t *testing.T) {
	// A want comment exists on the right line but its pattern does not
	// match the message: both an unexpected diagnostic and an unmatched
	// want must be reported.
	dir := writeFixture(t, `package fixture

func eq(a, b float64) bool {
	return a == b // want "something else entirely"
}
`)
	problems, err := CheckFixture(NewLoader(), dir, NewFloatEq())
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("want 2 problems, got %q", problems)
	}
}

func TestFixtureExactMatchPasses(t *testing.T) {
	dir := writeFixture(t, `package fixture

func eq(a, b float64) bool {
	return a == b // want "floating-point"
}

func allowed(a, b float64) bool {
	return a == b //lint:allow floateq meta-test sentinel
}
`)
	problems, err := CheckFixture(NewLoader(), dir, NewFloatEq())
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("want clean fixture, got %q", problems)
	}
}

func TestFixtureBadWantPattern(t *testing.T) {
	// An unparseable want regexp is a fixture authoring error, not a pass.
	dir := writeFixture(t, `package fixture

func eq(a, b float64) bool {
	return a == b // want "(["
}
`)
	if _, err := CheckFixture(NewLoader(), dir, NewFloatEq()); err == nil {
		t.Fatal("bad want pattern should fail the fixture load")
	}
}

func TestFixtureWantWithoutQuote(t *testing.T) {
	dir := writeFixture(t, `package fixture

func eq(a, b float64) bool {
	return a == b // want floating-point
}
`)
	if _, err := CheckFixture(NewLoader(), dir, NewFloatEq()); err == nil {
		t.Fatal("want comment without quoted pattern should fail the fixture load")
	}
}
