package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// NewFloatEq builds the floateq analyzer: the privacy guarantee (Theorems
// 1–2) assumes exact flip probabilities, and LP pivoting assumes consistent
// tie-breaking, so `==`/`!=` between floating-point values in the privacy
// and optimization packages is almost always a latent bug — a value that
// was supposed to be exactly p arrives as p±ulp and the guard silently
// takes the wrong branch. Compare against a tolerance, use math.IsNaN, or
// annotate a deliberate exact-sentinel comparison with //lint:allow
// floateq. only restricts the analyzer to the listed package path prefixes;
// empty means every package.
func NewFloatEq(only ...string) *Analyzer {
	a := &Analyzer{
		Name: "floateq",
		Doc:  "forbid ==/!= on floating-point operands in privacy-math packages",
	}
	if len(only) > 0 {
		a.Match = func(pkgPath string) bool {
			for _, o := range only {
				if pkgPath == o || strings.HasPrefix(pkgPath, o+"/") {
					return true
				}
			}
			return false
		}
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloat(pass.TypeOf(be.X)) || isFloat(pass.TypeOf(be.Y)) {
					pass.Reportf(be.OpPos,
						"%s on floating-point operands; compare with a tolerance (or annotate an exact sentinel)", be.Op)
				}
				return true
			})
		}
	}
	return a
}
