package flow

import (
	"go/ast"
	"go/token"
	"go/types"

	"verro/internal/lint"
)

// capturerace checks the closures handed to the worker pool. The
// equivalence tests prove par.For's sharding is deterministic, but they
// cannot see a closure that mutates shared state: a captured accumulator,
// a struct field, or a shared slice indexed by something other than the
// worker's own chunk. Such writes race across workers and break the
// bit-identical-at-any-worker-count invariant even when `-race` happens
// not to catch the interleaving.
//
// The analysis is purely syntactic over one closure at a time. Within a
// function literal passed as the worker body of par.For / par.Map /
// par.MapPool / (par.Pool).For, it classifies every written location:
//
//   - writes to closure-local variables are safe (each worker invocation
//     has its own frame);
//   - element writes into a captured slice or array are safe exactly when
//     the index is *derived* — computed from the closure's own parameters
//     (lo/hi or the mapped index) and locals that never take a
//     non-derived value, so distinct workers touch disjoint elements;
//   - everything else — captured scalars and pointers, fields of captured
//     structs, captured maps, non-derived slice indices — is reported.
//
// Channel sends are not writes (channels synchronize); reduction across
// workers should flow through par.Map results or a channel, never a
// captured accumulator.

// workerCallees are the pool entry points whose final argument runs
// concurrently.
var workerCallees = set(
	"verro/internal/par.For",
	"verro/internal/par.Map",
	"verro/internal/par.MapPool",
	"(verro/internal/par.Pool).For",
)

// NewCaptureRace builds the shared-capture-write analyzer.
func NewCaptureRace() *Analyzer {
	return &Analyzer{
		Name: "capturerace",
		Doc:  "worker-pool and goroutine closures must not write captured state unsynchronized",
		run:  captureRaceRun,
	}
}

func captureRaceRun(prog *Program, rep *reporter) {
	for _, name := range prog.funcNames() {
		fd := prog.funcs[name]
		ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if len(n.Args) == 0 {
					return true
				}
				fn := staticCalleeInfo(fd.pkg.Info, n)
				if fn == nil || !workerCallees[normName(fn)] {
					return true
				}
				lit, ok := unparen(n.Args[len(n.Args)-1]).(*ast.FuncLit)
				if !ok {
					return true
				}
				checkWorkerBody(fd.pkg, lit, rep)
			case *ast.GoStmt:
				// A plain `go func(){...}()` runs concurrently with its
				// spawner (verrod's per-job goroutines, SSE wakers): captured
				// writes race with the spawning function unless a shared lock
				// is held.
				if lit, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkGoBody(fd.pkg, lit, rep)
				}
			}
			return true
		})
	}
}

// checkGoBody classifies writes inside a goroutine closure launched with
// `go func(){...}()`. Unlike pool worker bodies there is no disjoint-shard
// exemption — nothing coordinates a bare goroutine's indices with anyone
// else's — but a write lexically preceded in the closure body by a
// .Lock()/.RLock() call on shared state is accepted as mutex-guarded (the
// eventLog pattern: methods lock, goroutines call methods).
func checkGoBody(pkg *lint.Package, lit *ast.FuncLit, rep *reporter) {
	s := &litScope{
		pkg:     pkg,
		info:    pkg.Info,
		rep:     rep,
		locals:  map[types.Object]bool{},
		derived: map[types.Object]bool{},
	}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := s.info.Defs[id]; obj != nil {
				s.locals[obj] = true
			}
		}
		return true
	})

	// Positions of lock acquisitions on shared state inside the closure.
	var locks []token.Pos
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if s.sharedBase(sel.X) {
			locks = append(locks, call.Pos())
		}
		return true
	})
	guarded := func(pos token.Pos) bool {
		for _, l := range locks {
			if l < pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		var targets []ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			targets = n.Lhs
		case *ast.IncDecStmt:
			targets = []ast.Expr{n.X}
		default:
			return true
		}
		for _, lhs := range targets {
			lhs = unparen(lhs)
			if guarded(lhs.Pos()) {
				continue
			}
			switch x := lhs.(type) {
			case *ast.Ident:
				if x.Name == "_" {
					continue
				}
				if obj := s.objOf(x); obj != nil && !s.locals[obj] {
					s.reportGo(x.Pos(), "captured variable %q", x.Name)
				}
			case *ast.IndexExpr:
				if s.sharedBase(x.X) {
					s.reportGo(x.Pos(), "captured container %s", render(x.X))
				}
			case *ast.SelectorExpr:
				if s.sharedBase(x.X) {
					s.reportGo(x.Pos(), "field %s of a captured value", render(x))
				}
			case *ast.StarExpr:
				if s.sharedBase(x.X) {
					s.reportGo(x.Pos(), "captured pointer target %s", render(x))
				}
			}
		}
		return true
	})
}

func (s *litScope) reportGo(pos token.Pos, format string, args ...any) {
	s.rep.reportf(s.pkg, pos,
		"goroutine closure writes "+format+" without holding a lock; it races with the spawner", args...)
}

// staticCalleeInfo resolves a call's static target through an Info (the
// engine's staticCallee, without a walker).
func staticCalleeInfo(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := unparen(call.Fun)
	for {
		switch f := fun.(type) {
		case *ast.Ident:
			fn, _ := info.Uses[f].(*types.Func)
			return fn
		case *ast.SelectorExpr:
			fn, _ := info.Uses[f.Sel].(*types.Func)
			return fn
		case *ast.IndexExpr:
			fun = unparen(f.X)
		case *ast.IndexListExpr:
			fun = unparen(f.X)
		default:
			return nil
		}
	}
}

// litScope is the per-closure analysis state.
type litScope struct {
	pkg  *lint.Package
	info *types.Info
	rep  *reporter
	// locals are objects declared inside the literal (parameters included):
	// per-invocation storage, safe to write.
	locals map[types.Object]bool
	// derived are locals whose value is always a function of the worker
	// parameters — usable as disjoint shard indices.
	derived map[types.Object]bool
}

func checkWorkerBody(pkg *lint.Package, lit *ast.FuncLit, rep *reporter) {
	s := &litScope{
		pkg:     pkg,
		info:    pkg.Info,
		rep:     rep,
		locals:  map[types.Object]bool{},
		derived: map[types.Object]bool{},
	}

	// Everything Defs'd inside the literal (params, :=, var, range vars,
	// nested-closure locals) is per-invocation storage.
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := s.info.Defs[id]; obj != nil {
				s.locals[obj] = true
			}
		}
		return true
	})

	// Derived set: greatest fixpoint. Start by assuming every local is
	// derived, then strike any local that ever takes a value not computed
	// from derived inputs (the worker parameters seed the set). Iterate
	// because locals feed each other.
	for obj := range s.locals {
		s.derived[obj] = true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					obj := s.objOf(lhs)
					if obj == nil || !s.derived[obj] {
						continue
					}
					ok := false
					if len(n.Rhs) == len(n.Lhs) {
						ok = s.derivedExpr(n.Rhs[i])
					}
					if !ok {
						delete(s.derived, obj)
						changed = true
					}
				}
			case *ast.RangeStmt:
				// Range keys/values are per-worker-distinct only when the
				// ranged operand itself is derived (a shard like x[lo:hi]);
				// ranging a shared container yields the same sequence in
				// every worker.
				if !s.derivedExpr(n.X) {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if obj := s.objOf(e); obj != nil && s.derived[obj] {
							delete(s.derived, obj)
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				s.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			s.checkWrite(n.X)
		}
		return true
	})
}

// objOf resolves a plain identifier LHS to its object.
func (s *litScope) objOf(e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := s.info.Defs[id]; obj != nil {
		return obj
	}
	return s.info.Uses[id]
}

// derivedExpr reports whether the expression is a function of worker
// parameters and derived locals only.
func (s *litScope) derivedExpr(e ast.Expr) bool {
	switch x := unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		obj := s.objOf(x)
		if obj == nil {
			return false
		}
		if _, isConst := obj.(*types.Const); isConst {
			return true
		}
		return s.derived[obj]
	case *ast.BinaryExpr:
		return s.derivedExpr(x.X) && s.derivedExpr(x.Y)
	case *ast.UnaryExpr:
		return s.derivedExpr(x.X)
	case *ast.IndexExpr:
		return s.derivedExpr(x.X) && s.derivedExpr(x.Index)
	case *ast.SliceExpr:
		// A shard x[lo:hi] of any container is per-worker-distinct when its
		// bounds are.
		low := x.Low == nil || s.derivedExpr(x.Low)
		high := x.High == nil || s.derivedExpr(x.High)
		return low && high
	case *ast.CallExpr:
		// Conversions pass derivation through; every other call (len of a
		// shared slice, rand, clock) is worker-invariant or nondeterministic
		// — either way not a disjointness witness.
		if tv, ok := s.info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return s.derivedExpr(x.Args[0])
		}
		return false
	}
	return false
}

// checkWrite classifies one written location inside the worker body.
func (s *litScope) checkWrite(lhs ast.Expr) {
	lhs = unparen(lhs)
	switch x := lhs.(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		obj := s.objOf(x)
		if obj == nil || s.locals[obj] {
			return
		}
		s.report(x.Pos(), "captured variable %q", x.Name)
	case *ast.IndexExpr:
		base := s.info.TypeOf(x.X)
		if base == nil {
			return
		}
		switch base.Underlying().(type) {
		case *types.Map:
			if s.sharedBase(x.X) {
				s.report(x.Pos(), "captured map %s", render(x.X))
			}
		default: // slice, array, pointer-to-array
			if s.sharedBase(x.X) && !s.derivedExpr(x.Index) {
				s.report(x.Pos(), "shared slice %s at a non-derived index", render(x.X))
			}
		}
	case *ast.SelectorExpr:
		if s.sharedBase(x.X) {
			s.report(x.Pos(), "field %s of a captured value", render(x))
		}
	case *ast.StarExpr:
		if s.sharedBase(x.X) {
			s.report(x.Pos(), "captured pointer target %s", render(x))
		}
	}
}

// sharedBase reports whether the expression is rooted at storage shared
// across workers (captured or package-level) rather than a closure local.
func (s *litScope) sharedBase(e ast.Expr) bool {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			obj := s.objOf(x)
			if obj == nil {
				return false
			}
			if _, isPkg := obj.(*types.PkgName); isPkg {
				return false
			}
			return !s.locals[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return false
		}
	}
}

func (s *litScope) report(pos token.Pos, format string, args ...any) {
	s.rep.reportf(s.pkg, pos, "worker closure writes "+format+"; workers race on it", args...)
}

// render prints a small expression for a diagnostic.
func render(e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return render(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return render(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + render(x.X)
	case *ast.CallExpr:
		return render(x.Fun) + "(...)"
	}
	return "expression"
}
