package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Bits is the taint lattice value of one local variable: bit 0 records
// "derived from a source inside this function", bit i+1 records "derived
// from parameter i" (the receiver is parameter 0 when the function is a
// method). Join is bitwise or; the zero value is untainted. Parameters past
// index 62 fall off the lattice, which loses precision but never a finding
// already derived.
type Bits uint64

const srcBit Bits = 1

func paramBit(i int) Bits {
	if i < 0 || i > 62 {
		return 0
	}
	return 1 << uint(i+1)
}

// forEachParamBit invokes fn for every parameter index set in bits, in
// ascending order.
func forEachParamBit(bits Bits, fn func(i int)) {
	for i := 0; i <= 62; i++ {
		if bits&paramBit(i) != 0 {
			fn(i)
		}
	}
}

// Sink marks a function whose listed operands must never receive tainted
// values. Operand 0 is the receiver when the callee is a method; formal
// parameters follow (a plain function's operand i is its parameter i).
type Sink struct {
	Operands []int
	// What names the sink in diagnostics ("track CSV writer motio.SaveCSV").
	What string
}

// TaintConfig is one analyzer's policy, keyed by normalized function names
// (normName) and "pkgpath.Type.Field" field keys.
type TaintConfig struct {
	// SourceCalls taint every result of the named functions.
	SourceCalls map[string]bool
	// SourceFields taint selector reads of the named struct fields,
	// regardless of the base value's own taint (accessor fields on an
	// otherwise-public handle, e.g. scene.Generated.Truth).
	SourceFields map[string]bool
	// SourceLits taint composite literals of the named types (epsconsist:
	// a literal-constructed Phase1Config is unvalidated by definition).
	SourceLits map[string]bool
	// Sanitizers return clean results and are trusted internally: taint
	// entering one neither escapes through its summary nor reaches sinks
	// inside it.
	Sanitizers map[string]bool
	// Declassifiers are reviewed aggregations whose results are public by
	// documented policy (DESIGN.md §2e); results are clean but their bodies
	// are still analyzed.
	Declassifiers map[string]bool
	// Cleansers clear the taint of their receiver's root object at the call
	// site, in statement order (epsconsist: Validate()).
	Cleansers map[string]bool
	// Sinks flag tainted values reaching the listed operands.
	Sinks map[string]*Sink
	// FmtSinkPrefixes makes fmt printing a sink inside packages whose
	// import path starts with one of the prefixes (the binaries publish
	// their stdout).
	FmtSinkPrefixes []string
	// FuncArgResults marks parallel mappers whose result taint is the union
	// of their closure argument's return taints (par.Map, par.MapPool).
	FuncArgResults map[string]bool
	// FieldFilter, when non-nil, restricts base-to-field propagation:
	// reading a field not in the set yields untainted even on a tainted
	// base. epsconsist tracks only the privacy-relevant config fields this
	// way; privleak leaves it nil (all fields of a raw value are raw).
	FieldFilter map[string]bool
	// RetaintFields re-taint the root object when one of the named fields
	// is written: mutating a privacy field invalidates a prior Validate().
	RetaintFields map[string]bool
	// ArithSink makes numeric binary arithmetic (+ - * /) an inline sink
	// for tainted operands, described as ArithWhat.
	ArithSink bool
	ArithWhat string
	// Report is the diagnostic format string; its single %s receives the
	// sink description (suffixed "(via callee)" for flows that leave the
	// reporting function).
	Report string
}

// summary is one function's caller-visible taint behavior, expressed in
// srcBit and the function's own parameter bits.
type summary struct {
	// results holds the taint of each result value.
	results []Bits
	// paramSinks: parameter index → descriptions of sinks the parameter's
	// value reaches inside the callee, transitively.
	paramSinks map[int]map[string]bool
	// paramStores: parameter index → taint stored into the parameter's
	// object graph (receiver mutation, e.g. (*SeriesTable).AddColumn).
	paramStores map[int]Bits
}

func newSummary(nResults int) *summary {
	return &summary{
		results:     make([]Bits, nResults),
		paramSinks:  map[int]map[string]bool{},
		paramStores: map[int]Bits{},
	}
}

func addHit(m map[int]map[string]bool, i int, what string) {
	if m[i] == nil {
		m[i] = map[string]bool{}
	}
	m[i][what] = true
}

func equalSummary(a, b *summary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.results) != len(b.results) {
		return false
	}
	for i := range a.results {
		if a.results[i] != b.results[i] {
			return false
		}
	}
	if len(a.paramStores) != len(b.paramStores) || len(a.paramSinks) != len(b.paramSinks) {
		return false
	}
	for i, bits := range a.paramStores {
		if b.paramStores[i] != bits {
			return false
		}
	}
	for i, hits := range a.paramSinks {
		other := b.paramSinks[i]
		if len(other) != len(hits) {
			return false
		}
		for h := range hits {
			if !other[h] {
				return false
			}
		}
	}
	return true
}

// sortedHits returns one parameter's sink descriptions in sorted order.
func sortedHits(hits map[string]bool) []string {
	out := make([]string, 0, len(hits))
	for h := range hits {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// maxRounds bounds the summary fixpoint. Convergence needs one round per
// call-graph level; VERRO's deepest chain (cmd → facade → exp → core →
// ldp/motio) is far below this.
const maxRounds = 30

// engine runs one TaintConfig over a program.
type engine struct {
	prog *Program
	cfg  *TaintConfig
	sums map[string]*summary
	// base holds converged summaries of functions outside prog — the
	// dependency facts a per-package incremental run (AnalyzePackage) feeds
	// in. Read-only; own-package summaries in sums always win.
	base map[string]*summary
}

// lookup resolves a callee summary: the program's own evolving table first,
// then the read-only dependency base.
func (e *engine) lookup(name string) *summary {
	if sum := e.sums[name]; sum != nil {
		return sum
	}
	return e.base[name]
}

// run iterates per-function summaries to a fixpoint (starting optimistic:
// a function not yet summarized contributes nothing, so the table ascends
// to the least fixpoint), then replays every body once more with reporting
// enabled against the converged table.
func (e *engine) run(rep *reporter) {
	names := e.prog.funcNames()
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, name := range names {
			sum := e.analyze(e.prog.funcs[name], nil)
			if !equalSummary(e.sums[name], sum) {
				e.sums[name] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, name := range names {
		e.analyze(e.prog.funcs[name], rep)
	}
}

// retFrame accumulates the return-value taint of one function or closure
// body; objs carries the named result objects for naked returns.
type retFrame struct {
	bits []Bits
	objs []types.Object
}

// fnWalker is the per-function forward walk: an abstract state mapping
// objects to taint Bits, updated in statement order, with branches analyzed
// on copies and merged pointwise and loop bodies iterated to a bounded
// fixpoint.
type fnWalker struct {
	eng    *engine
	fd     *funcDecl
	info   *types.Info
	rep    *reporter
	params map[types.Object]int
	taint  map[types.Object]Bits
	sum    *summary
	rets   []*retFrame
}

// analyze walks one function body and returns its summary. rep is nil
// during the fixpoint and set during the reporting pass.
func (e *engine) analyze(fd *funcDecl, rep *reporter) *summary {
	w := &fnWalker{
		eng:    e,
		fd:     fd,
		info:   fd.pkg.Info,
		rep:    rep,
		params: map[types.Object]int{},
		taint:  map[types.Object]Bits{},
	}
	idx := 0
	if fd.decl.Recv != nil && len(fd.decl.Recv.List) > 0 {
		for _, name := range fd.decl.Recv.List[0].Names {
			if obj := w.info.Defs[name]; obj != nil && name.Name != "_" {
				w.params[obj] = 0
				w.taint[obj] = paramBit(0)
			}
		}
		idx = 1
	}
	if fd.decl.Type.Params != nil {
		for _, field := range fd.decl.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := w.info.Defs[name]; obj != nil && name.Name != "_" {
					w.params[obj] = idx
					w.taint[obj] = paramBit(idx)
				}
				idx++
			}
		}
	}
	frame := &retFrame{
		bits: make([]Bits, fieldCount(fd.decl.Type.Results)),
		objs: resultObjs(fd.decl.Type.Results, w.info),
	}
	w.sum = newSummary(len(frame.bits))
	w.rets = []*retFrame{frame}
	w.stmt(fd.decl.Body)
	copy(w.sum.results, frame.bits)
	return w.sum
}

// fieldCount counts the values a field list declares (results or params).
func fieldCount(fl *ast.FieldList) int {
	if fl == nil {
		return 0
	}
	n := 0
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// resultObjs returns the named result objects positionally (nil entries
// for unnamed results), for naked-return reads.
func resultObjs(fl *ast.FieldList, info *types.Info) []types.Object {
	if fl == nil {
		return nil
	}
	var out []types.Object
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func copyTaint(m map[types.Object]Bits) map[types.Object]Bits {
	out := make(map[types.Object]Bits, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// mergeTaint joins src into dst pointwise.
func mergeTaint(dst, src map[types.Object]Bits) {
	for k, v := range src {
		dst[k] |= v
	}
}

// taintLeq reports whether a ⊑ b (every taint in a is present in b).
func taintLeq(a, b map[types.Object]Bits) bool {
	for k, v := range a {
		if v&^b[k] != 0 {
			return false
		}
	}
	return true
}

// ---- statements ----

func (w *fnWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		if s == nil {
			return
		}
		for _, st := range s.List {
			w.stmt(st)
		}
	case *ast.ExprStmt:
		w.taintOf(s.X)
	case *ast.AssignStmt:
		w.assignStmt(s)
	case *ast.DeclStmt:
		w.declStmt(s)
	case *ast.ReturnStmt:
		w.returnStmt(s)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.taintOf(s.Cond)
		base := copyTaint(w.taint)
		w.stmt(s.Body)
		thenState := w.taint
		w.taint = base
		w.stmt(s.Else)
		mergeTaint(w.taint, thenState)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.loop(func() {
			if s.Cond != nil {
				w.taintOf(s.Cond)
			}
			w.stmt(s.Body)
			w.stmt(s.Post)
		})
	case *ast.RangeStmt:
		bits := w.taintOf(s.X)
		w.loop(func() {
			if s.Key != nil {
				w.assignTo(s.Key, bits, s.Tok)
			}
			if s.Value != nil {
				w.assignTo(s.Value, bits, s.Tok)
			}
			w.stmt(s.Body)
		})
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.taintOf(s.Tag)
		w.branches(s.Body, nil, 0)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		var bits Bits
		switch a := s.Assign.(type) {
		case *ast.ExprStmt:
			bits = w.taintOf(a.X)
		case *ast.AssignStmt:
			for _, r := range a.Rhs {
				bits |= w.taintOf(r)
			}
		}
		w.branches(s.Body, s, bits)
	case *ast.SelectStmt:
		w.branches(s.Body, nil, 0)
	case *ast.GoStmt:
		w.callResults(s.Call, 1)
	case *ast.DeferStmt:
		w.callResults(s.Call, 1)
	case *ast.SendStmt:
		w.weakAssign(s.Chan, w.taintOf(s.Value))
	case *ast.IncDecStmt:
		w.taintOf(s.X)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// loop runs body repeatedly, merging each iteration's exit state with its
// entry state, until the state stabilizes (bounded; taint only grows under
// the merge, so three rounds cover the chains loops actually build).
func (w *fnWalker) loop(body func()) {
	for i := 0; i < 3; i++ {
		before := copyTaint(w.taint)
		body()
		mergeTaint(w.taint, before)
		if taintLeq(w.taint, before) {
			return
		}
	}
}

// branches analyzes each case/comm clause of a switch, type switch, or
// select body on a copy of the incoming state and joins the outcomes. ts
// and tsBits carry the type-switch binding (`v := x.(type)` taints each
// clause's implicit object with x's taint).
func (w *fnWalker) branches(body *ast.BlockStmt, ts *ast.TypeSwitchStmt, tsBits Bits) {
	if body == nil {
		return
	}
	base := copyTaint(w.taint)
	out := copyTaint(base)
	for _, clause := range body.List {
		w.taint = copyTaint(base)
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				if ts == nil { // type-switch case lists are types, not values
					w.taintOf(e)
				}
			}
			if ts != nil {
				if obj := w.info.Implicits[c]; obj != nil {
					w.taint[obj] = tsBits
				}
			}
			for _, st := range c.Body {
				w.stmt(st)
			}
		case *ast.CommClause:
			w.stmt(c.Comm)
			for _, st := range c.Body {
				w.stmt(st)
			}
		}
		mergeTaint(out, w.taint)
	}
	w.taint = out
}

func (w *fnWalker) assignStmt(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		bits := w.callResults(s.Rhs[0], len(s.Lhs))
		for i, lhs := range s.Lhs {
			w.assignTo(lhs, bits[i], s.Tok)
		}
		return
	}
	// Parallel assignment: evaluate every RHS before any LHS updates.
	bits := make([]Bits, len(s.Rhs))
	for i, r := range s.Rhs {
		bits[i] = w.taintOf(r)
	}
	for i := range s.Lhs {
		if i < len(bits) {
			w.assignTo(s.Lhs[i], bits[i], s.Tok)
		}
	}
}

func (w *fnWalker) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		switch {
		case len(vs.Values) == len(vs.Names):
			for i, name := range vs.Names {
				w.assignIdent(name, w.taintOf(vs.Values[i]))
			}
		case len(vs.Values) == 1:
			bits := w.callResults(vs.Values[0], len(vs.Names))
			for i, name := range vs.Names {
				w.assignIdent(name, bits[i])
			}
		}
	}
}

func (w *fnWalker) returnStmt(s *ast.ReturnStmt) {
	top := w.rets[len(w.rets)-1]
	switch {
	case len(s.Results) == 0:
		for i, obj := range top.objs {
			if obj != nil && i < len(top.bits) {
				top.bits[i] |= w.taint[obj]
			}
		}
	case len(s.Results) == len(top.bits):
		for i, r := range s.Results {
			top.bits[i] |= w.taintOf(r)
		}
	case len(s.Results) == 1: // return f() forwarding multiple values
		bits := w.callResults(s.Results[0], len(top.bits))
		for i := range top.bits {
			top.bits[i] |= bits[i]
		}
	}
}

// assignTo routes an assignment: plain identifiers get a strong update
// (redefinition kills old taint — how a sanitized value replaces a raw
// one), anything deeper is a weak update into the root object's graph.
func (w *fnWalker) assignTo(lhs ast.Expr, bits Bits, tok token.Token) {
	lhs = unparen(lhs)
	if tok != token.DEFINE && tok != token.ASSIGN {
		bits |= w.taintOf(lhs) // compound ops (+=) accumulate
	}
	if id, ok := lhs.(*ast.Ident); ok {
		w.assignIdent(id, bits)
		return
	}
	w.weakAssign(lhs, bits)
}

func (w *fnWalker) assignIdent(id *ast.Ident, bits Bits) {
	if id.Name == "_" {
		return
	}
	obj := w.info.Defs[id]
	if obj == nil {
		obj = w.info.Uses[id]
	}
	if obj == nil {
		return
	}
	w.taint[obj] = bits
}

// weakAssign records taint flowing into the object graph rooted at target
// (x.f = v, x[i] = v, *p = v). The root keeps its old taint and gains the
// new; stores into a parameter's graph enter the summary so callers see
// the mutation.
func (w *fnWalker) weakAssign(target ast.Expr, bits Bits) {
	target = unparen(target)
	if sel, ok := target.(*ast.SelectorExpr); ok {
		if key := w.fieldKey(sel); key != "" && w.eng.cfg.RetaintFields[key] {
			bits |= srcBit
		}
	}
	if bits == 0 {
		return
	}
	root := w.rootObj(target)
	if root == nil {
		return
	}
	w.taint[root] |= bits
	// A store into a parameter is caller-visible only when the parameter
	// shares storage with the caller (pointer, slice, map, ...); writes
	// into a by-value copy stay local.
	if idx, ok := w.params[root]; ok && canStore(root.Type()) {
		w.sum.paramStores[idx] |= bits
	}
}

// rootObj walks selector/index/deref chains down to the local or parameter
// the expression is rooted at; nil for package-qualified globals and
// rootless expressions (f().x).
func (w *fnWalker) rootObj(e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			if obj := w.info.Uses[x]; obj != nil {
				return obj
			}
			return w.info.Defs[x]
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := w.info.Uses[id].(*types.PkgName); isPkg {
					return nil
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.UnaryExpr:
			// &x roots at x: an unknown callee handed &m can absorb taint
			// into m (json.Decoder.Decode(&m) is verrod's ingress shape).
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// ---- expressions ----

func (w *fnWalker) taintOf(e ast.Expr) Bits {
	switch x := e.(type) {
	case nil:
		return 0
	case *ast.Ident:
		obj := w.info.Uses[x]
		if obj == nil {
			obj = w.info.Defs[x]
		}
		if obj == nil {
			return 0
		}
		return w.taint[obj]
	case *ast.ParenExpr:
		return w.taintOf(x.X)
	case *ast.SelectorExpr:
		return w.selector(x)
	case *ast.CallExpr:
		return w.callResults(x, 1)[0]
	case *ast.BinaryExpr:
		bits := w.taintOf(x.X) | w.taintOf(x.Y)
		if w.eng.cfg.ArithSink && isArithOp(x.Op) && w.isNumeric(x.X) {
			w.hitSink(bits, x.Pos(), w.eng.cfg.ArithWhat)
		}
		return bits
	case *ast.UnaryExpr:
		return w.taintOf(x.X)
	case *ast.StarExpr:
		return w.taintOf(x.X)
	case *ast.IndexExpr:
		return w.taintOf(x.X) | w.taintOf(x.Index)
	case *ast.IndexListExpr:
		return w.taintOf(x.X)
	case *ast.SliceExpr:
		return w.taintOf(x.X)
	case *ast.TypeAssertExpr:
		return w.taintOf(x.X)
	case *ast.KeyValueExpr:
		return w.taintOf(x.Value)
	case *ast.CompositeLit:
		var bits Bits
		for _, el := range x.Elts {
			bits |= w.taintOf(el)
		}
		if key := w.litKey(x); key != "" && w.eng.cfg.SourceLits[key] {
			bits |= srcBit
		}
		return bits
	case *ast.FuncLit:
		w.walkLit(x) // analyze the body; the closure value itself is clean
		return 0
	}
	return 0
}

// selector evaluates x.f: package globals are untracked, source fields
// inject srcBit, and a FieldFilter (when configured) confines base-to-field
// propagation to the listed fields.
func (w *fnWalker) selector(sel *ast.SelectorExpr) Bits {
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := w.info.Uses[id].(*types.PkgName); isPkg {
			return 0
		}
	}
	base := w.taintOf(sel.X)
	key := w.fieldKey(sel)
	if key != "" && w.eng.cfg.SourceFields[key] {
		return base | srcBit
	}
	if ff := w.eng.cfg.FieldFilter; ff != nil && key != "" && !ff[key] {
		return 0
	}
	return base
}

// fieldKey returns "pkgpath.Type.Field" for a struct-field selection, or
// "" for methods and non-selections. Promoted fields key on the outer type.
func (w *fnWalker) fieldKey(sel *ast.SelectorExpr) string {
	s := w.info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return ""
	}
	named := namedOf(s.Recv())
	if named == nil {
		return ""
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return ""
	}
	return tn.Pkg().Path() + "." + tn.Name() + "." + s.Obj().Name()
}

// litKey returns "pkgpath.Type" for a named composite literal.
func (w *fnWalker) litKey(lit *ast.CompositeLit) string {
	named := namedOf(w.info.TypeOf(lit))
	if named == nil {
		return ""
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return ""
	}
	return tn.Pkg().Path() + "." + tn.Name()
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

func isArithOp(op token.Token) bool {
	return op == token.ADD || op == token.SUB || op == token.MUL || op == token.QUO
}

func (w *fnWalker) isNumeric(e ast.Expr) bool {
	basic, ok := w.info.TypeOf(e).Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsNumeric != 0
}

// walkLit analyzes a closure body in the enclosing state (captured
// variables share taint with the outer function) and returns its per-result
// return taints for higher-order callees.
func (w *fnWalker) walkLit(lit *ast.FuncLit) []Bits {
	frame := &retFrame{
		bits: make([]Bits, fieldCount(lit.Type.Results)),
		objs: resultObjs(lit.Type.Results, w.info),
	}
	w.rets = append(w.rets, frame)
	w.stmt(lit.Body)
	w.rets = w.rets[:len(w.rets)-1]
	return frame.bits
}

// hitSink handles taint arriving at a sink: source-derived taint reports at
// the call site (during the reporting pass); parameter-derived taint enters
// the summary so the leak surfaces where the tainted argument is supplied.
func (w *fnWalker) hitSink(bits Bits, pos token.Pos, what string) {
	if bits == 0 {
		return
	}
	if bits&srcBit != 0 && w.rep != nil {
		w.rep.reportf(w.fd.pkg, pos, w.eng.cfg.Report, what)
	}
	forEachParamBit(bits, func(i int) {
		addHit(w.sum.paramSinks, i, what)
	})
}

// ---- calls ----

// callResults evaluates a (possibly multi-value) RHS expression and returns
// want taint values. Non-call expressions (v, ok := m[k] / x.(T) / <-ch)
// replicate their single taint.
func (w *fnWalker) callResults(e ast.Expr, want int) []Bits {
	if want < 1 {
		want = 1
	}
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		out := make([]Bits, want)
		bits := w.taintOf(e)
		for i := range out {
			out[i] = bits
		}
		return out
	}
	return w.call(call, want)
}

func (w *fnWalker) call(call *ast.CallExpr, want int) []Bits {
	out := w.callRaw(call, want)
	// Error values carry operational metadata, not object payloads; letting
	// them stay tainted floods every `fmt.Fprintln(os.Stderr, err)` with
	// findings. Zeroing them here (for every callee kind — summaries, unknown
	// callees, dynamic calls) declassifies errors globally. The blind spot —
	// raw data smuggled through fmt.Errorf("%v", box) — is documented in
	// DESIGN.md.
	if tv, ok := w.info.Types[call]; ok && tv.Type != nil {
		if tup, isTuple := tv.Type.(*types.Tuple); isTuple {
			for i := 0; i < tup.Len() && i < len(out); i++ {
				if isErrorType(tup.At(i).Type()) {
					out[i] = 0
				}
			}
		} else if len(out) == 1 && isErrorType(tv.Type) {
			out[0] = 0
		}
	}
	return out
}

func (w *fnWalker) callRaw(call *ast.CallExpr, want int) []Bits {
	out := make([]Bits, want)
	fill := func(bits Bits) {
		for i := range out {
			out[i] |= bits
		}
	}
	fun := unparen(call.Fun)

	// Immediately-invoked closure: the results are its return taints.
	if lit, ok := fun.(*ast.FuncLit); ok {
		for _, a := range call.Args {
			w.taintOf(a)
		}
		rets := w.walkLit(lit)
		for i := range out {
			if i < len(rets) {
				out[i] = rets[i]
			}
		}
		return out
	}

	// Conversion T(x): taint passes through.
	if tv, ok := w.info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			fill(w.taintOf(a))
		}
		return out
	}

	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := w.info.Uses[id].(*types.Builtin); isBuiltin {
			return w.builtin(id.Name, call, out)
		}
	}

	fn := w.staticCallee(call)

	// Operands: receiver first for method calls through a value selector,
	// then the arguments. Closure literals are walked once here and their
	// return taints kept for higher-order callees.
	var operands []ast.Expr
	if fn != nil && fn.Type() != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				if tv, isType := w.info.Types[sel.X]; !isType || !tv.IsType() {
					operands = append(operands, sel.X)
				}
			}
		}
	}
	operands = append(operands, call.Args...)
	opBits := make([]Bits, len(operands))
	litRets := map[int][]Bits{}
	for i, op := range operands {
		if lit, ok := unparen(op).(*ast.FuncLit); ok {
			litRets[i] = w.walkLit(lit)
			continue
		}
		opBits[i] = w.taintOf(op)
	}

	if fn == nil {
		// Dynamic call through a func value: propagate conservatively from
		// arguments to results. Sinks inside the callee are not tracked —
		// the documented precision limit of the summary scheme.
		all := w.taintOf(call.Fun)
		for _, b := range opBits {
			all |= b
		}
		fill(all)
		return out
	}

	name := normName(fn)
	cfg := w.eng.cfg

	if cfg.Cleansers[name] {
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if root := w.rootObj(sel.X); root != nil {
				w.taint[root] = 0
			}
		}
		return out
	}
	if cfg.Sanitizers[name] || cfg.Declassifiers[name] {
		return out
	}
	if cfg.SourceCalls[name] {
		// The raw payload is tainted; a source's error result carries no
		// object data (and error values flow into stderr prints constantly).
		sig, _ := fn.Type().(*types.Signature)
		for i := range out {
			if sig != nil && sig.Results().Len() == len(out) && isErrorType(sig.Results().At(i).Type()) {
				continue
			}
			out[i] = srcBit
		}
		return out
	}

	if sink := cfg.Sinks[name]; sink != nil {
		for _, oi := range sink.Operands {
			if oi >= 0 && oi < len(opBits) {
				w.hitSink(opBits[oi], call.Pos(), sink.What)
			}
		}
	}
	if w.isFmtSink(fn) {
		for _, bits := range opBits {
			w.hitSink(bits, call.Pos(), "console output (fmt."+fn.Name()+")")
		}
	}

	if cfg.FuncArgResults[name] {
		var bits Bits
		if rets, ok := litRets[len(operands)-1]; ok {
			for _, b := range rets {
				bits |= b
			}
		} else {
			for _, b := range opBits {
				bits |= b
			}
		}
		fill(bits)
		return out
	}

	if sum := w.eng.lookup(name); sum != nil {
		w.applySummary(call, fn, sum, operands, opBits, out)
		return out
	}

	// Unknown callee (stdlib or a package loaded only for its types): the
	// results conservatively union the operands, and each operand's object
	// graph may have absorbed the union — a method like
	// (*bytes.Buffer).WriteString stores its argument into its receiver.
	var all Bits
	for _, b := range opBits {
		all |= b
	}
	if all != 0 {
		for i, op := range operands {
			if _, isLit := litRets[i]; isLit {
				continue
			}
			// Only reference-like operands can absorb a store; a float64 or
			// struct passed by value is beyond the callee's reach.
			if canStore(w.info.TypeOf(op)) {
				w.weakAssign(op, all)
			}
		}
	}
	fill(all)
	return out
}

// canStore reports whether a value of the type can be mutated through by a
// callee receiving it (pointer-like types share storage with the caller).
func canStore(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// applySummary translates a converged callee summary into the caller's
// bit-space: parameter bits become the call-site operand taints, parameter
// sinks fire against the supplied arguments, and parameter stores taint the
// argument objects.
func (w *fnWalker) applySummary(call *ast.CallExpr, fn *types.Func, sum *summary, operands []ast.Expr, opBits []Bits, out []Bits) {
	nParams := summaryParams(fn)
	mapOp := func(i int) int { // variadic arguments clamp onto the last parameter
		if nParams > 0 && i >= nParams {
			return nParams - 1
		}
		return i
	}
	paramArgBits := func(p int) Bits {
		var bits Bits
		for j := range opBits {
			if mapOp(j) == p {
				bits |= opBits[j]
			}
		}
		return bits
	}
	translate := func(bits Bits) Bits {
		res := bits & srcBit
		forEachParamBit(bits, func(p int) {
			res |= paramArgBits(p)
		})
		return res
	}

	params := make([]int, 0, len(sum.paramSinks))
	for p := range sum.paramSinks {
		params = append(params, p)
	}
	sort.Ints(params)
	for _, p := range params {
		bits := paramArgBits(p)
		if bits == 0 {
			continue
		}
		for _, hit := range sortedHits(sum.paramSinks[p]) {
			w.hitSink(bits, call.Pos(), viaQualify(hit, fn))
		}
	}

	stores := make([]int, 0, len(sum.paramStores))
	for p := range sum.paramStores {
		stores = append(stores, p)
	}
	sort.Ints(stores)
	for _, p := range stores {
		bits := translate(sum.paramStores[p])
		if bits == 0 {
			continue
		}
		for j := range operands {
			if mapOp(j) == p {
				w.weakAssign(operands[j], bits)
			}
		}
	}

	for i := range out {
		if i < len(sum.results) {
			out[i] = translate(sum.results[i])
		}
	}
}

// summaryParams is the callee's operand count in summary indexing:
// receiver (if any) plus formal parameters.
func summaryParams(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0
	}
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	return n
}

// viaQualify marks a sink description as reached through fn, keeping at
// most one hop so recursive chains cannot grow descriptions unboundedly.
func viaQualify(hit string, fn *types.Func) string {
	if strings.Contains(hit, " (via ") {
		return hit
	}
	return hit + " (via " + shortName(normName(fn)) + ")"
}

func (w *fnWalker) staticCallee(call *ast.CallExpr) *types.Func {
	fun := unparen(call.Fun)
	for {
		switch f := fun.(type) {
		case *ast.Ident:
			fn, _ := w.info.Uses[f].(*types.Func)
			return fn
		case *ast.SelectorExpr:
			fn, _ := w.info.Uses[f.Sel].(*types.Func)
			return fn
		case *ast.IndexExpr: // generic instantiation
			fun = unparen(f.X)
		case *ast.IndexListExpr:
			fun = unparen(f.X)
		default:
			return nil
		}
	}
}

// isFmtSink reports whether the call prints via fmt inside a package the
// config treats as publishing its console output.
func (w *fnWalker) isFmtSink(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
	default:
		return false
	}
	for _, prefix := range w.eng.cfg.FmtSinkPrefixes {
		if strings.HasPrefix(w.fd.pkg.Path, prefix) {
			return true
		}
	}
	return false
}

func (w *fnWalker) builtin(name string, call *ast.CallExpr, out []Bits) []Bits {
	var all Bits
	for _, a := range call.Args {
		all |= w.taintOf(a)
	}
	switch name {
	case "append", "min", "max", "complex", "real", "imag":
		for i := range out {
			out[i] = all
		}
	case "copy":
		if len(call.Args) == 2 {
			w.weakAssign(call.Args[0], w.taintOf(call.Args[1]))
		}
	}
	// len, cap, make, new, delete, clear, close, panic, recover, print:
	// results are counts or fresh values — untainted.
	return out
}
