package flow

// epsconsist proves that every privacy parameter the LDP layer consumes
// descends from a Phase1Config that has survived Validate(). The privacy
// accounting in the paper (Theorems 1-3) assumes F ∈ (0,1) and a positive
// Laplace ε; feeding an unvalidated or literal-constructed config into the
// ldp primitives silently voids the ε-indistinguishability guarantee
// without ever failing a test.
//
// The check rides the same taint engine as privleak with inverted roles:
// a composite literal of Phase1Config (or the umbrella Config) is the
// source — by definition nothing has validated it yet — and the taint is
// killed when Validate() is called on the value (a Cleanser, applied in
// statement order). A FieldFilter confines propagation to the fields that
// carry privacy semantics (Config.Phase1, Phase1Config.F,
// Phase1Config.LaplaceEps): reading cfg.Workers off an unvalidated config
// is fine. Writing a privacy field re-taints the config — mutation after
// Validate() reopens the hole. Sinks are the ldp primitives' parameter
// slots plus any numeric arithmetic on a tainted value (hand-rolled
// ε-budget math bypasses the range checks entirely).

// NewEpsConsist builds the privacy-parameter-provenance analyzer.
func NewEpsConsist() *Analyzer {
	return NewAnalyzer("epsconsist",
		"privacy parameters must come from a Validate()d Phase1Config, unmodified since",
		epsConsistConfig())
}

// epsConsistConfig is the §2e policy table of the epsconsist analyzer.
func epsConsistConfig() *TaintConfig {
	return &TaintConfig{
		SourceLits: set(
			"verro/internal/core.Phase1Config",
			"verro/internal/core.Config",
		),
		Cleansers: set(
			"(verro/internal/core.Phase1Config).Validate",
			"(verro/internal/core.Config).Validate",
		),
		// The default constructors return vetted in-range parameters; their
		// results are trusted like a validated config. Mutating a privacy
		// field afterwards re-taints (RetaintFields below).
		Sanitizers: set(
			"verro/internal/core.DefaultConfig",
			"verro/internal/core.DefaultPhase1Config",
		),
		FieldFilter: set(
			"verro/internal/core.Config.Phase1",
			"verro/internal/core.Phase1Config.F",
			"verro/internal/core.Phase1Config.LaplaceEps",
		),
		RetaintFields: set(
			"verro/internal/core.Config.Phase1",
			"verro/internal/core.Phase1Config.F",
			"verro/internal/core.Phase1Config.LaplaceEps",
		),
		Sinks: map[string]*Sink{
			"verro/internal/ldp.Epsilon":          {Operands: []int{1}, What: "ldp.Epsilon"},
			"verro/internal/ldp.FlipProbability":  {Operands: []int{1}, What: "ldp.FlipProbability"},
			"verro/internal/ldp.KeepProbability":  {Operands: []int{0}, What: "ldp.KeepProbability"},
			"verro/internal/ldp.ClassicRR":        {Operands: []int{1}, What: "ldp.ClassicRR"},
			"verro/internal/ldp.RAPPORFlip":       {Operands: []int{1}, What: "ldp.RAPPORFlip"},
			"verro/internal/ldp.ExpectedBit":      {Operands: []int{1}, What: "ldp.ExpectedBit"},
			"verro/internal/ldp.UnbiasCount":      {Operands: []int{2}, What: "ldp.UnbiasCount"},
			"verro/internal/ldp.Laplace":          {Operands: []int{0}, What: "ldp.Laplace"},
			"verro/internal/ldp.LaplaceMechanism": {Operands: []int{1, 2}, What: "ldp.LaplaceMechanism"},
			"verro/internal/ldp.NoisyCounts":      {Operands: []int{1, 2}, What: "ldp.NoisyCounts"},
		},
		ArithSink: true,
		ArithWhat: "privacy-parameter arithmetic",
		Report:    "privacy parameter from a Phase1Config not proven Validate()d feeds %s",
	}
}
