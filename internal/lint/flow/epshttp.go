package flow

// epshttp extends the epsconsist discipline to the service edge: privacy
// parameters (f, eps, window) that arrive over HTTP — form values, JSON
// request bodies, or a manifest re-loaded from disk during resume (which
// persists exactly those client-supplied numbers) — are tainted until the
// config carrying them passes Validate(), and must not reach a core
// Phase-I/II entry point or an ldp randomizer slot while tainted.
//
// epsconsist taints Phase1Config/Config composite literals and re-taints
// privacy-field writes, which is the right discipline for in-process code
// but would drown the service path (every literal is suspect). epshttp is
// the complement: only network/persistence ingress is a source, and a
// FieldFilter restricts field-read propagation to the privacy-parameter
// fields themselves, so job IDs, paths, and geometry riding the same
// request or manifest stay clean.
//
// Validated constructors (DefaultConfig, DefaultPhase1Config) and the ldp
// conversion helpers (FlipProbability, Epsilon — both reject out-of-range
// inputs with an error) launder taint; Validate() cleanses the receiver it
// is called on, exactly as in epsconsist.

// NewEpsHTTP builds the HTTP-parameter-validation taint analyzer.
func NewEpsHTTP() *Analyzer {
	cfg := &TaintConfig{
		SourceCalls: set(
			"(net/url.Values).Get",
			"(net/http.Request).FormValue",
			"(net/http.Request).PostFormValue",
			// Resume path: a stored manifest holds the client's original
			// unconverted parameters.
			"(verro/internal/store.Store).Load",
			"(verro/internal/store.Store).List",
			"(verro/internal/store.FS).Load",
			"(verro/internal/store.FS).List",
		),
		SourceFields: set(
			"net/http.Request.Body",
		),
		Sanitizers: set(
			"verro/internal/core.DefaultConfig",
			"verro/internal/core.DefaultPhase1Config",
			"verro/internal/ldp.FlipProbability",
			"verro/internal/ldp.Epsilon",
		),
		Cleansers: set(
			"(verro/internal/core.Config).Validate",
			"(verro/internal/core.Phase1Config).Validate",
		),
		// Only privacy-parameter fields carry taint out of a tainted
		// request/manifest/config; reading any other field (ID, Input,
		// geometry, checkpoint cursor) yields a clean value.
		FieldFilter: set(
			"verro/internal/core.Config.Phase1",
			"verro/internal/core.Config.WindowFrames",
			"verro/internal/core.Phase1Config.F",
			"verro/internal/core.Phase1Config.LaplaceEps",
			"verro/internal/server.jobRequest.F",
			"verro/internal/server.jobRequest.Eps",
			"verro/internal/server.jobRequest.Window",
			"verro/internal/store.Manifest.F",
			"verro/internal/store.Manifest.Eps",
			"verro/internal/store.Manifest.Window",
		),
		Sinks: map[string]*Sink{
			"verro/internal/core.Sanitize":           {Operands: []int{2}, What: "core.Sanitize"},
			"verro/internal/core.SanitizeStream":     {Operands: []int{2}, What: "core.SanitizeStream"},
			"verro/internal/core.SanitizeStreamFrom": {Operands: []int{2}, What: "core.SanitizeStreamFrom"},
			"verro/internal/core.SanitizeMultiType":  {Operands: []int{2}, What: "core.SanitizeMultiType"},
			"verro/internal/core.SanitizeJoint":      {Operands: []int{2, 3}, What: "core.SanitizeJoint"},
			"verro/internal/core.RunPhase1":          {Operands: []int{2}, What: "core.RunPhase1"},
			"verro/internal/ldp.ClassicRR":           {Operands: []int{1}, What: "ldp.ClassicRR"},
			"verro/internal/ldp.RAPPORFlip":          {Operands: []int{1}, What: "ldp.RAPPORFlip"},
			"verro/internal/ldp.Laplace":             {Operands: []int{0}, What: "ldp.Laplace"},
			"verro/internal/ldp.LaplaceMechanism":    {Operands: []int{1, 2}, What: "ldp.LaplaceMechanism"},
		},
		Report: "HTTP-supplied privacy parameter reaches %s without passing Validate()",
	}
	return NewAnalyzer("epshttp",
		"privacy parameters parsed from HTTP or a stored manifest must pass Validate() before reaching core/ldp", cfg)
}
