package flow

import (
	"testing"

	"verro/internal/lint"
)

// NewAnalyzer builds a flow analyzer running a custom TaintConfig — the
// constructor behind the project analyzers, exported so tests (and future
// policies) can exercise the engine with small synthetic source/sink
// tables.
func NewAnalyzer(name, doc string, cfg *TaintConfig) *Analyzer {
	return &Analyzer{Name: name, Doc: doc, cfg: cfg}
}

// CheckFixture loads the fixture directories as one program, runs the flow
// analyzers over it, and returns one problem per mismatch against the
// fixtures' `// want` comments. Multiple directories form one Program so a
// fixture can prove cross-package summary propagation.
func CheckFixture(l *lint.Loader, dirs []string, analyzers ...*Analyzer) (problems []string, err error) {
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return lint.CheckDiagnostics(pkgs, Run(pkgs, analyzers...))
}

// RunFixture is the testing wrapper around CheckFixture.
func RunFixture(t *testing.T, dirs []string, analyzers ...*Analyzer) {
	t.Helper()
	problems, err := CheckFixture(lint.NewLoader(), dirs, analyzers...)
	if err != nil {
		t.Fatalf("fixture %v: %v", dirs, err)
	}
	for _, p := range problems {
		t.Errorf("fixture %v: %s", dirs, p)
	}
}
