// Package flow is verrolint's dataflow layer: a stdlib-only forward taint
// engine over go/ast + go/types that proves VERRO's plumbing invariant —
// raw object observations (detections, trajectories, presence patterns)
// never reach a published artifact without passing the Phase-I/II
// sanitization machinery. The syntactic analyzers in internal/lint check
// single expressions; the engine here tracks values through assignments,
// struct fields, slices, maps, returns, and direct calls across package
// boundaries.
//
// Analysis is intraprocedural with per-function summaries: every function
// body is walked in isolation, producing a summary of how taint flows from
// its parameters to its results, into its parameters' object graphs, and
// into sinks it reaches internally. Summaries are iterated to a fixpoint
// over the whole program (bottom-up over the call graph, in deterministic
// sorted order), then a final reporting pass replays each body against the
// converged summaries. See DESIGN.md §2e for the taint lattice and the
// source/sanitizer/sink tables.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"verro/internal/lint"
)

// Analyzer is one dataflow check. Unlike lint.Analyzer, a flow analyzer
// sees the whole loaded program at once: diagnostics in one package can be
// caused by flows that pass through another.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives.
	Name string
	// Doc is the one-line invariant the analyzer encodes.
	Doc string

	// cfg is the taint policy for engine-backed analyzers. Syntactic
	// analyzers (capturerace) leave it nil and supply run instead.
	cfg *TaintConfig
	run func(prog *Program, rep *reporter)
}

// exec runs the analyzer over a program, routing engine-backed policies
// through a fresh engine seeded with base dependency summaries (nil for a
// whole-program run, where every callee is in prog).
func (a *Analyzer) exec(prog *Program, rep *reporter, base map[string]*summary) {
	if a.cfg != nil {
		(&engine{prog: prog, cfg: a.cfg, sums: map[string]*summary{}, base: base}).run(rep)
		return
	}
	a.run(prog, rep)
}

// Program is the set of packages under analysis plus the function index
// engines resolve calls through.
type Program struct {
	Pkgs []*lint.Package

	funcs map[string]*funcDecl
}

// funcDecl pairs a function declaration with the package it was loaded
// from, so walks have the right types.Info and allow-directive index.
type funcDecl struct {
	pkg  *lint.Package
	decl *ast.FuncDecl
	obj  *types.Func
}

// NewProgram indexes the packages' function declarations by normalized
// full name.
func NewProgram(pkgs []*lint.Package) *Program {
	prog := &Program{Pkgs: pkgs, funcs: map[string]*funcDecl{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.funcs[normName(obj)] = &funcDecl{pkg: pkg, decl: fd, obj: obj}
			}
		}
	}
	return prog
}

// funcNames returns the indexed function names in sorted order — the
// deterministic iteration order of every fixpoint round and of the
// reporting pass.
func (p *Program) funcNames() []string {
	names := make([]string, 0, len(p.funcs))
	for name := range p.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// normName is a function's cross-package identity: types.Func.FullName
// with pointer-receiver stars stripped, so "(*T).M" and "(T).M" coincide.
// Name strings (not object pointers) key the summary table because every
// Loader re-type-checks dependencies into distinct objects.
func normName(fn *types.Func) string {
	return strings.ReplaceAll(fn.FullName(), "*", "")
}

// shortName renders a normalized name for diagnostics with the module
// prefix trimmed: "(motio.SeriesTable).SaveCSV", "exp.Fig678".
func shortName(name string) string {
	name = strings.ReplaceAll(name, "verro/internal/", "")
	name = strings.ReplaceAll(name, "verro/cmd/", "")
	return strings.ReplaceAll(name, "verro/", "")
}

// Run executes the flow analyzers over the program formed by pkgs and
// returns the combined diagnostics sorted by position. //lint:allow
// directives suppress flow analyzers exactly as they do classic ones.
func Run(pkgs []*lint.Package, analyzers ...*Analyzer) []lint.Diagnostic {
	prog := NewProgram(pkgs)
	allow := map[*lint.Package]*lint.AllowIndex{}
	for _, pkg := range pkgs {
		allow[pkg] = pkg.Allow()
	}
	var diags []lint.Diagnostic
	for _, a := range analyzers {
		rep := &reporter{analyzer: a.Name, allow: allow, seen: map[string]bool{}}
		a.exec(prog, rep, nil)
		diags = append(diags, rep.diags...)
	}
	lint.Sort(diags)
	return diags
}

// reporter collects one analyzer's diagnostics across all packages,
// deduplicating repeats (loop-body fixpoints revisit statements) and
// honoring allow directives.
type reporter struct {
	analyzer string
	allow    map[*lint.Package]*lint.AllowIndex
	seen     map[string]bool
	diags    []lint.Diagnostic
}

func (r *reporter) reportf(pkg *lint.Package, pos token.Pos, format string, args ...any) {
	position := pkg.Fset.Position(pos)
	if r.allow[pkg].Allows(r.analyzer, position) {
		return
	}
	d := lint.Diagnostic{Pos: position, Analyzer: r.analyzer, Message: fmt.Sprintf(format, args...)}
	key := d.String()
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	r.diags = append(r.diags, d)
}
