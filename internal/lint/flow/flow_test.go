package flow_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"verro/internal/lint"
	"verro/internal/lint/flow"
)

func TestPrivLeakFixture(t *testing.T) {
	flow.RunFixture(t, []string{"testdata/privleak"}, flow.NewPrivLeak())
}

func TestEpsConsistFixture(t *testing.T) {
	flow.RunFixture(t, []string{"testdata/epsconsist"}, flow.NewEpsConsist())
}

// TestSrvLeakFixture exercises privleak's service-edge rules (§2i). The
// fixture package is passed as an fmt-sink prefix, standing in for
// internal/server's published SSE stream.
func TestSrvLeakFixture(t *testing.T) {
	flow.RunFixture(t, []string{"testdata/srvleak"},
		flow.NewPrivLeak("verro/internal/lint/flow/testdata/srvleak"))
}

func TestEpsHTTPFixture(t *testing.T) {
	flow.RunFixture(t, []string{"testdata/epshttp"}, flow.NewEpsHTTP())
}

func TestCaptureRaceFixture(t *testing.T) {
	flow.RunFixture(t, []string{"testdata/capturerace"}, flow.NewCaptureRace())
}

func TestChainFixture(t *testing.T) {
	flow.RunFixture(t,
		[]string{"testdata/chain", "testdata/chain/inner", "testdata/chain/mid"},
		flow.NewPrivLeak())
}

// TestSummaryPropagationTwoHops pins the mechanism behind the chain
// fixture: the diagnostic at the sink exists only because srcBit taint
// born in inner survived translation through two function summaries
// (inner.Raw → mid.Pass → chain.Leak). Dropping inner from the program
// turns mid.Pass's callee into an unknown, which propagates only the clean
// handle's taint — the diagnostic must disappear.
func TestSummaryPropagationTwoHops(t *testing.T) {
	load := func(dirs ...string) []*lint.Package {
		l := lint.NewLoader()
		var pkgs []*lint.Package
		for _, dir := range dirs {
			pkg, err := l.Load(dir)
			if err != nil {
				t.Fatalf("load %s: %v", dir, err)
			}
			pkgs = append(pkgs, pkg)
		}
		return pkgs
	}

	full := flow.Run(load("testdata/chain", "testdata/chain/inner", "testdata/chain/mid"),
		flow.NewPrivLeak())
	if len(full) != 1 {
		t.Fatalf("full program: want exactly 1 diagnostic, got %v", full)
	}
	if !strings.HasSuffix(full[0].Pos.Filename, "chain.go") ||
		!strings.Contains(full[0].Message, "track CSV file") {
		t.Fatalf("full program: wrong diagnostic: %v", full[0])
	}

	partial := flow.Run(load("testdata/chain", "testdata/chain/mid"), flow.NewPrivLeak())
	if len(partial) != 0 {
		t.Fatalf("without the source hop there is nothing to report, got %v", partial)
	}
}

// TestFixtureMetaStaleWant proves the fixture runner fails closed for flow
// analyzers: a want comment no diagnostic matches and a diagnostic no want
// covers are both problems. The toy config keeps the test independent of
// the project policy tables.
func TestFixtureMetaStaleWant(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

func Source() int { return 0 }

func Sink(x int) {}

func flagged() {
	Sink(Source()) // want "tainted value reaches the sink"
}

func stale() int {
	return 1 // want "a diagnostic that does not exist"
}

func unannotated() {
	Sink(Source())
}
`
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	toy := flow.NewAnalyzer("toyflow", "toy policy for the meta-test", &flow.TaintConfig{
		SourceCalls: map[string]bool{"fixture.Source": true},
		Sinks:       map[string]*flow.Sink{"fixture.Sink": {Operands: []int{0}, What: "the sink"}},
		Report:      "tainted value reaches %s",
	})
	problems, err := flow.CheckFixture(lint.NewLoader(), []string{dir}, toy)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("want exactly two problems (stale want + unannotated diagnostic), got %q", problems)
	}
	joined := strings.Join(problems, "\n")
	if !strings.Contains(joined, "no diagnostic matching") {
		t.Errorf("stale want not reported: %q", problems)
	}
	if !strings.Contains(joined, "unexpected diagnostic") {
		t.Errorf("unannotated diagnostic not reported: %q", problems)
	}
}

// TestProjectAnalyzersListed pins the suite composition the CLI exposes.
func TestProjectAnalyzersListed(t *testing.T) {
	var names []string
	for _, a := range flow.ProjectAnalyzers() {
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc line", a.Name)
		}
		names = append(names, a.Name)
	}
	want := []string{"privleak", "epsconsist", "epshttp", "capturerace"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("suite = %v, want %v", names, want)
	}
}
