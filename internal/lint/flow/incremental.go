package flow

// Per-package incremental analysis. The whole-program Run loop iterates
// every function in every package to one global fixpoint; AnalyzePackage
// analyzes a single package against the already-converged summaries of its
// dependencies. The split is sound because taint summaries flow strictly
// callee→caller and Go's import graph is acyclic: a package's diagnostics
// and summaries are a function of its own source plus its dependencies'
// summaries, nothing else, so analyzing packages in dependency order
// reproduces the global least fixpoint exactly (DESIGN.md §2i).

import (
	"strconv"

	"verro/internal/lint"
)

// Summary is the serialized caller-visible taint behavior of one function —
// the persisted form of the engine's per-function summary, stable enough to
// write into a fact cache. Taint bitsets are hex strings rather than JSON
// numbers because Bits is a uint64 and JSON numbers lose integer precision
// past 2^53; map keys are decimal parameter indices because JSON objects
// key on strings.
type Summary struct {
	// Results holds each result value's taint bitset, in hex.
	Results []string `json:"results,omitempty"`
	// ParamSinks: parameter index → sorted descriptions of sinks the
	// parameter reaches inside the callee.
	ParamSinks map[string][]string `json:"param_sinks,omitempty"`
	// ParamStores: parameter index → taint (hex bitset) stored into the
	// parameter's object graph.
	ParamStores map[string]string `json:"param_stores,omitempty"`
}

func exportSummary(s *summary) *Summary {
	out := &Summary{}
	if len(s.results) > 0 {
		out.Results = make([]string, len(s.results))
		for i, b := range s.results {
			out.Results[i] = strconv.FormatUint(uint64(b), 16)
		}
	}
	if len(s.paramSinks) > 0 {
		out.ParamSinks = make(map[string][]string, len(s.paramSinks))
		for i, hits := range s.paramSinks {
			out.ParamSinks[strconv.Itoa(i)] = sortedHits(hits)
		}
	}
	if len(s.paramStores) > 0 {
		out.ParamStores = make(map[string]string, len(s.paramStores))
		for i, b := range s.paramStores {
			out.ParamStores[strconv.Itoa(i)] = strconv.FormatUint(uint64(b), 16)
		}
	}
	return out
}

// internal converts the serialized form back into the engine's summary.
// Malformed entries (hand-edited cache files) decode to zero taint — the
// cache key scheme never feeds an entry written by a different analyzer
// version, so this is unreachable in practice.
func (s *Summary) internal() *summary {
	sum := newSummary(len(s.Results))
	for i, h := range s.Results {
		b, _ := strconv.ParseUint(h, 16, 64)
		sum.results[i] = Bits(b)
	}
	for k, hits := range s.ParamSinks {
		i, err := strconv.Atoi(k)
		if err != nil {
			continue
		}
		for _, h := range hits {
			addHit(sum.paramSinks, i, h)
		}
	}
	for k, h := range s.ParamStores {
		i, err := strconv.Atoi(k)
		if err != nil {
			continue
		}
		b, _ := strconv.ParseUint(h, 16, 64)
		sum.paramStores[i] = Bits(b)
	}
	return sum
}

// AnalyzePackage runs this analyzer over one package, resolving calls into
// dependencies through deps (their converged summaries, keyed by normalized
// function name). It returns the package's own function summaries and its
// diagnostics, already filtered through //lint:allow and sorted. Syntactic
// analyzers (nil cfg) exchange no summaries and return an empty map.
func (a *Analyzer) AnalyzePackage(pkg *lint.Package, deps map[string]*Summary) (map[string]*Summary, []lint.Diagnostic) {
	prog := NewProgram([]*lint.Package{pkg})
	allow := map[*lint.Package]*lint.AllowIndex{pkg: pkg.Allow()}
	rep := &reporter{analyzer: a.Name, allow: allow, seen: map[string]bool{}}
	own := map[string]*Summary{}
	if a.cfg == nil {
		a.run(prog, rep)
		lint.Sort(rep.diags)
		return own, rep.diags
	}
	base := make(map[string]*summary, len(deps))
	for name, s := range deps {
		base[name] = s.internal()
	}
	eng := &engine{prog: prog, cfg: a.cfg, sums: map[string]*summary{}, base: base}
	eng.run(rep)
	for name, s := range eng.sums {
		own[name] = exportSummary(s)
	}
	lint.Sort(rep.diags)
	return own, rep.diags
}
