package flow

// privleak proves the paper's central plumbing invariant: the raw object
// observations VERRO ingests (ground-truth tracks, detector output, decoded
// benchmark video) never reach a published artifact — encoded video, CSV
// tables, PNG figures, the HTML report, or a binary's stdout — without
// passing Phase-I/II sanitization or one of the reviewed declassifying
// aggregates. The engine walks every function, summarizes parameter-to-sink
// flows, and reports each source-to-sink path at the call site where the
// tainted value is handed to the sink.
//
// The policy tables below are the §2e contract:
//
//   - Sources are the accessors that materialize raw per-object data.
//     Container handles (scene.Generated, exp.Dataset) are themselves
//     declassified — their paths, preset names, and sizes are public — and
//     only their raw-bearing fields inject taint.
//   - Sanitizers are the LDP randomizers and the Phase-I/II entry points;
//     their results are clean and their internals are trusted.
//   - Declassifiers are reviewed aggregations (deviation metrics, attack
//     success rates, population counts) whose outputs the paper itself
//     publishes; their results are clean but their bodies are still checked.
//   - Sinks are everything that leaves the process as a publishable
//     artifact. fmt printing is a sink only under the configured package
//     prefixes (the binaries' stdout is published; library code may log).

// NewPrivLeak builds the raw-data-to-published-output taint analyzer.
// fmtSinkPrefixes lists the import-path prefixes whose fmt printing counts
// as publication (the project suite passes "verro/cmd/").
func NewPrivLeak(fmtSinkPrefixes ...string) *Analyzer {
	cfg := &TaintConfig{
		SourceCalls: set(
			"(verro/internal/detect.Detector).Detect",
			"(verro/internal/detect.BGSubtractor).Detect",
			"(verro/internal/detect.HOGSVM).Detect",
			"verro/internal/detect.NMS",
			"verro/internal/track.Run",
			"verro/internal/track.RunRT",
			"(verro/internal/track.Tracker).Tracks",
			"verro/internal/motio.ReadCSV",
			"verro/internal/motio.LoadCSV",
			"verro/internal/vid.ReadFile",
			"verro/internal/vid.Decode",
			// Service-edge sources (§2i): a decoded stream handle yields raw
			// frames, and a staging file re-opened for resume holds raw
			// frames persisted before sanitization completed.
			"verro/internal/vid.OpenFileSource",
			"verro/internal/vid.OpenRawStore",
		),
		SourceFields: set(
			"verro/internal/scene.Generated.Truth",
			"verro/internal/scene.Generated.Video",
			"verro/internal/scene.Generated.CleanBackground",
			"verro/internal/exp.Dataset.Tracks",
			"verro/internal/exp.Dataset.Reduced",
			"verro/internal/core.Phase1Result.Reduced",
			"verro/internal/core.Phase1Result.Optimal",
			// An HTTP request body is raw client payload: verrod accepts
			// whole octet-stream video uploads through it.
			"net/http.Request.Body",
		),
		Sanitizers: set(
			"verro/internal/core.Sanitize",
			"verro/internal/core.SanitizeStream",
			"verro/internal/core.SanitizeStreamFrom",
			"verro/internal/core.SanitizeMultiType",
			"verro/internal/core.SanitizeJoint",
			"verro/internal/core.RunPhase1",
			"verro/internal/core.RunPhase2",
			"verro/internal/core.RunPhase2RT",
			"verro/internal/core.NaiveRandomResponse",
			"verro/internal/ldp.ClassicRR",
			"verro/internal/ldp.RAPPORFlip",
			"verro/internal/ldp.NoisyCounts",
			"verro/internal/ldp.Laplace",
			"verro/internal/ldp.LaplaceMechanism",
		),
		Declassifiers: set(
			"verro/internal/metrics.TrajectoryDeviation",
			"verro/internal/metrics.IndexedTrajectoryDeviation",
			"verro/internal/metrics.SamplesDeviation",
			"verro/internal/metrics.CountMAE",
			"verro/internal/metrics.CountCorrelation",
			"verro/internal/detect.Evaluate",
			"verro/internal/track.EvaluateTracks",
			"verro/internal/core.DistinctPresent",
			"verro/internal/core.TruthfulPresent",
			"verro/internal/core.PresentInKeyFrames",
			"verro/internal/attack.Reidentify",
			"verro/internal/attack.LinkAcrossCameras",
			"(verro/internal/motio.TrackSet).Len",
			"(verro/internal/vid.Video).Len",
			"verro/internal/exp.LoadDataset",
			// A stream handle's geometry (name, w×h, frame count, fps) is
			// public metadata; the frames behind it stay tainted.
			"(verro/internal/stream.Source).Meta",
			"(verro/internal/vid.FileSource).Meta",
			// Decoding structured JSON parameters out of a request body is a
			// reviewed boundary: the decoder materializes submitted numbers
			// and paths, not frame payloads. A raw video smuggled through a
			// JSON string field would evade this — the documented blind spot
			// of declassifying here (§2i).
			"(encoding/json.Decoder).Decode",
		),
		Sinks: map[string]*Sink{
			"verro/internal/vid.Encode":    {Operands: []int{0}, What: "video encoder vid.Encode"},
			"verro/internal/vid.WriteFile": {Operands: []int{1}, What: "video writer vid.WriteFile"},
			"verro/internal/vid.WriteY4M":  {Operands: []int{1}, What: "Y4M stream vid.WriteY4M"},
			"verro/internal/vid.SaveY4M":   {Operands: []int{1}, What: "Y4M file vid.SaveY4M"},
			"(verro/internal/vid.Video).WriteGIF": {
				Operands: []int{0}, What: "GIF writer (vid.Video).WriteGIF"},
			"(verro/internal/motio.TrackSet).WriteCSV": {
				Operands: []int{0}, What: "track CSV writer (motio.TrackSet).WriteCSV"},
			"(verro/internal/motio.TrackSet).SaveCSV": {
				Operands: []int{0}, What: "track CSV file (motio.TrackSet).SaveCSV"},
			"(verro/internal/motio.SeriesTable).WriteCSV": {
				Operands: []int{0}, What: "series CSV writer (motio.SeriesTable).WriteCSV"},
			"(verro/internal/motio.SeriesTable).SaveCSV": {
				Operands: []int{0}, What: "series CSV file (motio.SeriesTable).SaveCSV"},
			"verro/internal/report.Render": {Operands: []int{1}, What: "HTML report report.Render"},
			"verro/internal/report.Save":   {Operands: []int{1}, What: "HTML report report.Save"},
			"(verro/internal/img.Image).WritePNG": {
				Operands: []int{0}, What: "PNG file (img.Image).WritePNG"},
			"(verro/internal/img.Image).EncodePNG": {
				Operands: []int{0}, What: "PNG encoder (img.Image).EncodePNG"},
			// Service-edge sinks (§2i): everything verrod hands back to a
			// client or persists outside the sanitization pipeline.
			"(net/http.ResponseWriter).Write": {
				Operands: []int{1}, What: "HTTP response body (http.ResponseWriter).Write"},
			"net/http.ServeFile": {
				Operands: []int{2}, What: "HTTP artifact route http.ServeFile"},
			"(encoding/json.Encoder).Encode": {
				Operands: []int{1}, What: "JSON response encoder (json.Encoder).Encode"},
			"(verro/internal/store.Store).Save": {
				Operands: []int{1}, What: "job manifest (store.Store).Save"},
			"(verro/internal/store.FS).Save": {
				Operands: []int{1}, What: "job manifest (store.FS).Save"},
			"(verro/internal/vid.RawStore).Append": {
				Operands: []int{1}, What: "raw staging file (vid.RawStore).Append"},
			"(verro/internal/vid.RawStore).EncodeTo": {
				Operands: []int{0}, What: "staged-frame encode (vid.RawStore).EncodeTo"},
		},
		FmtSinkPrefixes: fmtSinkPrefixes,
		FuncArgResults: set(
			"verro/internal/par.Map",
			"verro/internal/par.MapPool",
		),
		Report: "raw object data reaches %s without passing a sanitizer",
	}
	return NewAnalyzer("privleak",
		"raw detections/tracks/ground truth must be sanitized before any published output", cfg)
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}
