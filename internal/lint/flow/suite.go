package flow

// ProjectAnalyzers returns the dataflow suite configured for this
// repository. fmt printing counts as publication under verro/cmd/ (the
// binaries' stdout is the published experiment record) and under
// verro/internal/server (SSE event payloads leave through fmt.Fprintf on
// the response writer); other library packages may print through the
// tracing layer.
func ProjectAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewPrivLeak("verro/cmd/", "verro/internal/server"),
		NewEpsConsist(),
		NewEpsHTTP(),
		NewCaptureRace(),
	}
}
