package flow

// ProjectAnalyzers returns the dataflow suite configured for this
// repository. fmt printing counts as publication only under verro/cmd/ —
// the binaries' stdout is the published experiment record, while library
// packages may print through the tracing layer.
func ProjectAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewPrivLeak("verro/cmd/"),
		NewEpsConsist(),
		NewCaptureRace(),
	}
}
