// Package capturerace is the fixture for the worker-closure write checker:
// closures handed to the par pool may write their own locals and derived
// (disjoint-per-worker) shard indices, nothing else that is shared.
package capturerace

import (
	"sync"

	"verro/internal/par"
)

// A captured accumulator races across workers.
func badAccumulator(n int) int {
	sum := 0
	par.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += i // want "worker closure writes captured variable \"sum\"; workers race on it"
		}
	})
	return sum
}

// Writing a captured slice at the worker's own indices is the idiomatic
// sharding pattern and stays quiet.
func goodShardWrite(n int) []int {
	out := make([]int, n)
	par.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * i
		}
	})
	return out
}

// The same slice written at an index that is not derived from the worker
// parameters collides across workers.
func badIndex(out []int, idx int) {
	par.For(len(out), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[idx] = i // want "worker closure writes shared slice out at a non-derived index; workers race on it"
		}
	})
}

// Map writes are unordered even at distinct keys.
func badMap(n int) map[int]int {
	m := map[int]int{}
	par.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m[i] = i // want "worker closure writes captured map m; workers race on it"
		}
	})
	return m
}

type counter struct{ n int }

// Fields of captured values are shared storage.
func badField(c *counter, n int) {
	par.For(n, 1, func(lo, hi int) {
		c.n = hi // want "worker closure writes field c\.n of a captured value; workers race on it"
	})
}

// So are captured pointers' targets, including through a pool method.
func badPointer(p *int, n int) {
	pool := par.NewPool(2)
	pool.For(n, 1, func(lo, hi int) {
		*p = hi // want "worker closure writes captured pointer target \*p; workers race on it"
	})
}

// par.Map's per-index results are the race-free reduction channel.
func goodMapReduce(n int) []int {
	return par.Map(n, 1, func(i int) int { return i * 2 })
}

// Channel sends synchronize; they are not flagged.
func goodChannel(n int) int {
	ch := make(chan int, n)
	par.For(n, 1, func(lo, hi int) {
		ch <- hi - lo
	})
	total := 0
	for len(ch) > 0 {
		total += <-ch
	}
	return total
}

// Ranging over a derived shard keeps the loop variables derived: lo+j is a
// disjoint index.
func goodShardRange(data, out []float64) {
	par.For(len(data), 8, func(lo, hi int) {
		for j, v := range data[lo:hi] {
			out[lo+j] = v * 2
		}
	})
}

// Ranging over the whole shared slice yields the same indices in every
// worker.
func badSharedRange(data, out []float64) {
	par.For(len(data), 8, func(lo, hi int) {
		for j := range data {
			out[j] = data[j] // want "worker closure writes shared slice out at a non-derived index; workers race on it"
		}
	})
}

// Worker-local scratch buffers are per-invocation storage; reusing one
// inside the chunk loop is the allocation-free idiom the detectors use.
func goodScratch(frames [][]byte, out []byte) {
	par.For(len(out), 4096, func(lo, hi int) {
		vals := make([]byte, len(frames))
		for idx := lo; idx < hi; idx++ {
			for s, f := range frames {
				vals[s] = f[idx]
			}
			out[idx] = vals[len(vals)/2]
		}
	})
}

// --- bare goroutines (`go func(){...}()`) ---
//
// Unlike pool workers there is no disjoint-shard exemption: nothing
// coordinates a bare goroutine's writes with its spawner. A write behind a
// .Lock()/.RLock() on shared state is accepted as mutex-guarded.

// A goroutine mutating a captured counter races with the spawner.
func badGoCounter() int {
	total := 0
	done := make(chan struct{})
	go func() {
		total++ // want "goroutine closure writes captured variable \"total\" without holding a lock; it races with the spawner"
		close(done)
	}()
	<-done
	return total
}

// Field and map writes through a capture race the same way.
type jobTable struct {
	jobs map[string]int
	last string
}

func badGoShared(t *jobTable, id string) {
	done := make(chan struct{})
	go func() {
		t.jobs[id] = 1 // want "goroutine closure writes captured container t.jobs without holding a lock; it races with the spawner"
		t.last = id    // want "goroutine closure writes field t.last of a captured value without holding a lock; it races with the spawner"
		close(done)
	}()
	<-done
}

// The eventLog pattern: acquire a captured lock first, then write.
func goodGoLocked(mu *sync.Mutex, t *jobTable, id string) {
	done := make(chan struct{})
	go func() {
		mu.Lock()
		t.last = id
		mu.Unlock()
		close(done)
	}()
	<-done
}

// Locals declared inside the goroutine are per-invocation storage, and
// channel sends synchronize — both stay quiet.
func goodGoLocal(results chan<- int, n int) {
	go func() {
		sum := 0
		for i := 0; i < n; i++ {
			sum += i
		}
		results <- sum
	}()
}
