// Package chain is the top of the two-hop cross-package fixture: the raw
// value is produced two packages away (chain → mid → inner) and must still
// be flagged at the sink here, which requires the per-function summaries to
// survive propagation across package boundaries.
package chain

import (
	"verro/internal/lint/flow/testdata/chain/mid"
	"verro/internal/scene"
)

// Leak publishes tracks fetched through the two-hop chain.
func Leak(g *scene.Generated) error {
	return mid.Pass(g).SaveCSV("chain.csv") // want "raw object data reaches track CSV file \(motio\.TrackSet\)\.SaveCSV without passing a sanitizer"
}
