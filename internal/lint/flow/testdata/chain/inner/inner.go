// Package inner is the first hop of the cross-package summary fixture: it
// extracts raw ground truth from a scene handle.
package inner

import (
	"verro/internal/motio"
	"verro/internal/scene"
)

// Raw returns the generated scene's ground-truth tracks — a source field.
func Raw(g *scene.Generated) *motio.TrackSet {
	return g.Truth
}
