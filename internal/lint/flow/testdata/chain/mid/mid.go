// Package mid is the second hop of the cross-package summary fixture: it
// forwards inner's raw value without touching it, so any taint reaching a
// sink downstream traveled through two summaries.
package mid

import (
	"verro/internal/lint/flow/testdata/chain/inner"
	"verro/internal/motio"
	"verro/internal/scene"
)

// Pass forwards the raw tracks unchanged.
func Pass(g *scene.Generated) *motio.TrackSet {
	return inner.Raw(g)
}
