// Package epsconsist is the fixture for the privacy-parameter-provenance
// analyzer: ldp primitives and ε-arithmetic may only consume parameters
// from a Phase1Config proven Validate()d (or from the vetted default
// constructors), unmodified since.
package epsconsist

import (
	"math/rand"

	"verro/internal/core"
	"verro/internal/ldp"
)

// A literal-constructed config is unvalidated by definition.
func literalLeak() (float64, error) {
	cfg := core.Phase1Config{F: 0.25}
	return ldp.Epsilon(12, cfg.F) // want "privacy parameter from a Phase1Config not proven Validate\(\)d feeds ldp\.Epsilon"
}

// Validate() on the value cleanses it, in statement order.
func validated() (float64, error) {
	cfg := core.Phase1Config{F: 0.25}
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	return ldp.Epsilon(12, cfg.F)
}

// The default constructor returns vetted in-range parameters.
func defaulted(rng *rand.Rand) (ldp.BitVector, error) {
	cfg := core.DefaultPhase1Config()
	return ldp.RAPPORFlip(make(ldp.BitVector, 8), cfg.F, rng)
}

// Mutating a privacy field re-taints the config: the earlier vetting no
// longer covers the value in use.
func mutated(rng *rand.Rand) ([]float64, error) {
	cfg := core.DefaultPhase1Config()
	cfg.LaplaceEps = 0.4
	return ldp.NoisyCounts([]int{1, 2}, 1, cfg.LaplaceEps, rng) // want "privacy parameter from a Phase1Config not proven Validate\(\)d feeds ldp\.NoisyCounts"
}

// Hand-rolled ε-budget arithmetic on an unvalidated parameter bypasses the
// range checks entirely — flagged even without an ldp call.
func arithmetic() float64 {
	cfg := core.Phase1Config{F: 0.5}
	return cfg.F / 2 // want "privacy parameter from a Phase1Config not proven Validate\(\)d feeds privacy-parameter arithmetic"
}

// Fields without privacy semantics do not carry taint off the config.
func nonPrivacyField() int {
	cfg := core.Phase1Config{F: 0.5, MinPicked: 3}
	return cfg.MinPicked * 2
}

// The umbrella Config propagates through its Phase1 field, and its
// Validate() cleanses the whole value.
func umbrellaLeak() (float64, error) {
	cfg := core.Config{Phase1: core.Phase1Config{F: 0.3}}
	return ldp.FlipProbability(8, cfg.Phase1.F) // want "privacy parameter from a Phase1Config not proven Validate\(\)d feeds ldp\.FlipProbability"
}

func umbrellaValidated(rng *rand.Rand) (float64, error) {
	cfg := core.Config{Phase1: core.Phase1Config{F: 0.3, LaplaceEps: 0.5}}
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	return ldp.LaplaceMechanism(10, 1, cfg.Phase1.LaplaceEps, rng)
}
