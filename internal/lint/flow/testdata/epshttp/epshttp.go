// Package epshttp is the fixture for the HTTP-parameter-validation
// analyzer: privacy parameters parsed out of a request (form values, JSON
// bodies) or re-read from a stored manifest are tainted until the config
// carrying them passes Validate().
package epshttp

import (
	"encoding/json"
	"net/http"
	"strconv"

	"verro/internal/core"
	"verro/internal/ldp"
	"verro/internal/store"
)

// A form-supplied f reaching core unvalidated.
func leakForm(r *http.Request) error {
	f, err := strconv.ParseFloat(r.FormValue("f"), 64)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Phase1.F = f
	_, err = core.Sanitize(nil, nil, cfg) // want "HTTP-supplied privacy parameter reaches core\.Sanitize without passing Validate\(\)"
	return err
}

// Query values are the same ingress as form values.
func leakQuery(r *http.Request) error {
	q := r.URL.Query()
	w, err := strconv.Atoi(q.Get("window"))
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.WindowFrames = w
	_, err = core.SanitizeStream(nil, nil, cfg, nil) // want "HTTP-supplied privacy parameter reaches core\.SanitizeStream without passing Validate\(\)"
	return err
}

// A JSON request body carries the parameters; decoding taints the struct,
// and only the privacy-parameter fields (the FieldFilter) carry the taint
// onward.
func leakBody(r *http.Request) (float64, error) {
	var m store.Manifest
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		return 0, err
	}
	return ldp.Laplace(m.F, nil), nil // want "HTTP-supplied privacy parameter reaches ldp\.Laplace without passing Validate\(\)"
}

// Resume path: a stored manifest holds the client's original parameters.
func leakManifest(s *store.FS) error {
	m, err := s.Load("job-000001")
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Phase1.F = m.F
	_, err = core.Sanitize(nil, nil, cfg) // want "HTTP-supplied privacy parameter reaches core\.Sanitize without passing Validate\(\)"
	return err
}

// Clean: Validate() cleanses the config before it reaches core.
func cleanValidated(r *http.Request) error {
	f, err := strconv.ParseFloat(r.FormValue("f"), 64)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Phase1.F = f
	if err := cfg.Validate(); err != nil {
		return err
	}
	_, err = core.Sanitize(nil, nil, cfg)
	return err
}

// Clean: the ldp conversion helpers validate their inputs and launder the
// taint — exactly how verrod resolves an eps budget to a flip probability.
func cleanConverted(r *http.Request) error {
	eps, err := strconv.ParseFloat(r.FormValue("eps"), 64)
	if err != nil {
		return err
	}
	f, err := ldp.FlipProbability(10, eps)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Phase1.F = f
	_, err = core.Sanitize(nil, nil, cfg)
	return err
}

// Clean: non-privacy fields of a tainted manifest (paths, geometry, IDs)
// carry no taint — the FieldFilter keeps the service's plumbing quiet.
func cleanManifestPlumbing(s *store.FS) (string, error) {
	m, err := s.Load("job-000001")
	if err != nil {
		return "", err
	}
	return m.Input, nil
}
