// Package privleak is the fixture for the raw-data-to-published-output
// analyzer: every line producing a diagnostic carries a `// want` comment,
// and the clean flows document what sanitization and declassification
// permit.
package privleak

import (
	"verro/internal/core"
	"verro/internal/metrics"
	"verro/internal/motio"
	"verro/internal/par"
	"verro/internal/scene"
)

// Direct leak: the ground-truth tracks straight into a CSV file.
func leakTruth(g *scene.Generated) error {
	return g.Truth.SaveCSV("truth.csv") // want "raw object data reaches track CSV file \(motio\.TrackSet\)\.SaveCSV without passing a sanitizer"
}

// Taint survives local aliasing and control flow; the Len() guard is a
// declassified read and stays clean.
func leakViaLocal(g *scene.Generated) error {
	t := g.Truth
	u := t
	if u.Len() > 0 {
		return u.SaveCSV("alias.csv") // want "raw object data reaches track CSV file \(motio\.TrackSet\)\.SaveCSV without passing a sanitizer"
	}
	return nil
}

// A helper that only sinks its parameter is silent at its own sink; the
// leak is reported where the raw value is handed over, qualified with the
// helper's name.
func persist(t *motio.TrackSet) error {
	return t.SaveCSV("persist.csv")
}

func leakViaHelper(g *scene.Generated) error {
	return persist(g.Truth) // want "raw object data reaches track CSV file \(motio\.TrackSet\)\.SaveCSV \(via lint/flow/testdata/privleak\.persist\) without passing a sanitizer"
}

// Raw trajectories accumulated into a series table taint the table, and
// the table's writer flags.
func leakTable(g *scene.Generated, xs []float64) error {
	tab := motio.NewSeriesTable("frame", xs)
	var ys []float64
	for _, tr := range g.Truth.Tracks {
		ys = append(ys, tr.Trajectory()...)
	}
	if err := tab.AddColumn("orig", ys); err != nil {
		return err
	}
	return tab.SaveCSV("table.csv") // want "raw object data reaches series CSV file \(motio\.SeriesTable\)\.SaveCSV without passing a sanitizer"
}

// Taint flows through the worker pool: par.Map results carry the closure's
// return taint.
func leakParallel(g *scene.Generated) error {
	rows := par.Map(g.Truth.Len(), 1, func(i int) *motio.Track {
		return g.Truth.Tracks[i]
	})
	out := motio.NewTrackSet()
	for _, tr := range rows {
		out.Add(tr)
	}
	return out.SaveCSV("rows.csv") // want "raw object data reaches track CSV file \(motio\.TrackSet\)\.SaveCSV without passing a sanitizer"
}

// The sanitizer's outputs are clean: publishing the synthetic video's
// tracks is the whole point of the pipeline.
func sanitized(g *scene.Generated, cfg core.Config) error {
	res, err := core.Sanitize(g.Video, g.Truth, cfg)
	if err != nil {
		return err
	}
	return res.SyntheticTracks.SaveCSV("synthetic.csv")
}

// Declassified aggregates (the paper's published metrics) are clean even
// though they are computed from raw inputs.
func declassified(g *scene.Generated, syn *motio.TrackSet, xs []float64) error {
	dev := metrics.TrajectoryDeviation(g.Truth, syn)
	tab := motio.NewSeriesTable("frame", xs)
	if err := tab.AddColumn("deviation", []float64{dev}); err != nil {
		return err
	}
	return tab.SaveCSV("metrics.csv")
}

// The directive suppresses a finding at its line, as everywhere else in
// the suite.
func allowed(g *scene.Generated) error {
	//lint:allow privleak fixture documents the suppression path
	return g.Truth.SaveCSV("allowed.csv")
}
