// Package srvleak is the fixture for privleak's service-edge rules
// (DESIGN.md §2i): the HTTP-era sources (request bodies, decoded stream
// handles, reopened staging files) and sinks (response writers, SSE fmt
// payloads, manifest saves, staging writes, the artifact route) added for
// verrod. The test runs NewPrivLeak with this package as an fmt-sink
// prefix, standing in for internal/server's published SSE stream.
package srvleak

import (
	"fmt"
	"io"
	"net/http"

	"verro/internal/core"
	"verro/internal/motio"
	"verro/internal/scene"
	"verro/internal/store"
	"verro/internal/stream"
	"verro/internal/vid"
)

// Ground-truth tracks serialized straight into an HTTP response body.
func leakResponse(w http.ResponseWriter, g *scene.Generated) {
	buf := []byte(fmt.Sprint(g.Truth))
	w.Write(buf) // want "raw object data reaches HTTP response body \(http\.ResponseWriter\)\.Write without passing a sanitizer"
}

// An uploaded request body echoed back: the body is the raw video payload.
func leakEcho(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	w.Write(body) // want "raw object data reaches HTTP response body \(http\.ResponseWriter\)\.Write without passing a sanitizer"
}

// Raw data formatted into an SSE event payload (fmt printing is a sink in
// this package, as it is in internal/server).
func leakSSE(w http.ResponseWriter, g *scene.Generated) {
	fmt.Fprintf(w, "data: %v\n\n", g.Truth) // want "raw object data reaches console output \(fmt\.Fprintf\) without passing a sanitizer"
}

// Raw observations persisted inside a job manifest.
func leakManifest(s *store.FS, g *scene.Generated) error {
	m := &store.Manifest{ID: "job-000001", Input: fmt.Sprint(g.Truth)}
	return s.Save(m) // want "raw object data reaches job manifest \(store\.FS\)\.Save without passing a sanitizer"
}

// Unsanitized frames written into the staging file: checkpointSink's
// correctness rests on staging holding sanitizer output only.
func leakStaging(rs *vid.RawStore, g *scene.Generated) error {
	return rs.Append(g.Video.Frames) // want "raw object data reaches raw staging file \(vid\.RawStore\)\.Append without passing a sanitizer"
}

// A decoded stream handle yields raw frames; handing them to the staging
// file is a leak through two service-edge rules at once.
func leakDecodedFrames(rs *vid.RawStore, path string) error {
	src, err := vid.OpenFileSource(path)
	if err != nil {
		return err
	}
	frames, _, err := src.Next(0)
	if err != nil {
		return err
	}
	return rs.Append(frames) // want "raw object data reaches raw staging file \(vid\.RawStore\)\.Append without passing a sanitizer"
}

// A staging file reopened for resume holds frames persisted before
// sanitization completed; encoding it is publication.
func leakReopenedStaging(path string, out io.Writer, meta stream.Meta) error {
	rs, err := vid.OpenRawStore(path, 8, 8, 0)
	if err != nil {
		return err
	}
	_, err = rs.EncodeTo(out, meta, 0) // want "raw object data reaches staged-frame encode \(vid\.RawStore\)\.EncodeTo without passing a sanitizer"
	return err
}

// Clean: the artifact route serves a path recorded in the manifest — raw
// data never touches it.
func cleanOutputRoute(w http.ResponseWriter, r *http.Request, m *store.Manifest) {
	http.ServeFile(w, r, m.Output)
}

// Clean: geometry off a decoded handle is declassified metadata; only the
// frames behind the handle are raw.
func cleanMeta(w http.ResponseWriter, path string) error {
	src, err := vid.OpenFileSource(path)
	if err != nil {
		return err
	}
	meta := src.Meta()
	fmt.Fprintf(w, "frames: %d\n", meta.Frames)
	return src.Close()
}

// Clean: the full service path — decode, sanitize, stage — stays silent
// because SanitizeStreamFrom is the declassifying boundary.
func cleanSanitized(src stream.Source, tracks *motio.TrackSet, cfg core.Config, sink stream.Sink) error {
	_, err := core.SanitizeStreamFrom(src, tracks, cfg, sink, 0)
	return err
}
