// Package incr is verrolint's incremental, parallel driver. The plain
// driver re-parses, re-type-checks, and re-analyzes every package from
// source on every run; this one keys each package by content — its own
// file hashes chained with its dependencies' keys and the analyzer-suite
// version — and persists per-package facts (diagnostics plus the
// whole-program summaries the flow and interval engines already compute)
// in a cache directory, so an unchanged package is a file read instead of
// a type-check.
//
// Soundness of the per-package split (DESIGN.md §2i): both summary engines
// propagate facts strictly callee→caller, and Go's import graph is
// acyclic, so a package's diagnostics and summaries are a pure function of
// its own source and its dependencies' summaries. The cache key chains
// dependency keys, so an edit invalidates exactly the edited package and
// its transitive dependents; everything else replays from the cache.
// Packages that are imported by matched packages but not matched
// themselves (subset runs) still participate in the key chain as hash-only
// nodes — their source affects type information, so their edits must
// invalidate dependents — but are never analyzed, matching the plain
// driver's view of the same package set.
//
// Analysis runs on internal/par: packages at the same dependency level
// share no edges and execute concurrently, with results merged in sorted
// package order, so the diagnostic stream is deterministic and identical
// to the plain driver's.
package incr

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"verro/internal/lint"
	"verro/internal/lint/absint"
	"verro/internal/lint/flow"
	"verro/internal/lint/life"
	"verro/internal/lint/perf"
	"verro/internal/par"
)

// FactsVersion names the fact-cache schema and analysis semantics. The
// version hash also folds in the analyzer suite's own source hashes (when
// the lint packages are reachable from the module root), so editing a
// policy table invalidates every entry without touching this constant;
// bump it for semantic changes that live outside those directories.
const FactsVersion = "verrolint-facts-v1"

// Options configures one incremental run.
type Options struct {
	// Dirs are the package directories to analyze (already expanded).
	Dirs []string
	// CacheDir persists per-package fact entries; empty runs everything
	// fresh (still in parallel) and persists nothing.
	CacheDir string
	// ReadCache, when false, ignores existing entries (cold run) but still
	// writes fresh ones. The -bench flag uses this for cold timings.
	ReadCache bool
	// IncludeTests mirrors Loader.IncludeTests and participates in the
	// version key (test files change the analyzed source set).
	IncludeTests bool

	// The analyzer suites to run. Nil slices skip the suite.
	Classic []*lint.Analyzer
	Flow    []*flow.Analyzer
	Absint  []*absint.Analyzer
	// Perf runs per package against PerfCfg's hot-set policy (the bce
	// analyzer rides Absint — the driver appends it there).
	Perf    []*perf.Analyzer
	PerfCfg *perf.Config
	// Life runs the lifecycle suite against LifeCfg's service policy.
	// Summaries are computed (and cached) for every package; diagnostics
	// are confined to LifeCfg's service packages.
	Life    []*life.Analyzer
	LifeCfg *life.Config
	// StaleAllows, when true, reports //lint:allow directives that no
	// suite in this run used, after every suite has reported. The
	// effective analyzer set is part of the version hash, so cached
	// stale-allow diagnostics can never outlive a suite change.
	StaleAllows bool
}

// Stats reports what one run did.
type Stats struct {
	// Packages is how many matched packages were analyzed or replayed.
	Packages int `json:"packages"`
	// CacheHits is how many of them replayed from the fact cache.
	CacheHits int `json:"cache_hits"`
	// Loaded is how many were parsed, type-checked, and analyzed fresh.
	Loaded int `json:"loaded"`
}

// node is one package in the dependency universe: a matched (analyzed)
// package, or a hash-only in-module dependency of one.
type node struct {
	dir      string
	path     string
	analyzed bool

	files   []fileHash
	imports []string

	deps    []*node
	level   int
	key     string
	closure []*node // analyzed transitive deps, sorted by path

	cached bool
	entry  *entry
	pkg    *lint.Package
}

type fileHash struct {
	name string
	sum  string
}

// entry is the persisted fact record of one package at one key.
type entry struct {
	Version string    `json:"version"`
	Path    string    `json:"path"`
	Diags   []diagRec `json:"diags,omitempty"`
	// Flow maps analyzer name → function name → summary.
	Flow map[string]map[string]*flow.Summary `json:"flow,omitempty"`
	// Absint maps function name → result intervals (analyzer-independent).
	Absint map[string][]ivRec `json:"absint,omitempty"`
	// Life maps function name → lifecycle summary (suite-shared: every
	// life analyzer reads the same converged table).
	Life map[string]*life.Summary `json:"life,omitempty"`
}

// diagRec is one cached diagnostic. File is the basename within the
// package directory, so entries are position-independent of the
// invocation's working directory.
type diagRec struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// ivRec serializes one interval bound pair; strconv's 'g' formatting round-
// trips ±Inf (and any float64 exactly), which JSON numbers cannot.
type ivRec struct {
	Lo string `json:"lo"`
	Hi string `json:"hi"`
}

// Run analyzes the packages incrementally and returns the combined sorted
// diagnostics. The diagnostic stream is identical to running the plain
// drivers over the same directories.
func Run(opts Options) ([]lint.Diagnostic, Stats, error) {
	var stats Stats
	dirs := dedupSorted(opts.Dirs)
	if len(dirs) == 0 {
		return nil, stats, fmt.Errorf("incr: no package directories")
	}

	// Scan every matched directory concurrently: file hashes plus imports,
	// no full parse.
	type scanOut struct {
		files   []fileHash
		imports []string
		err     error
	}
	scans := par.Map(len(dirs), 1, func(i int) scanOut {
		files, imports, err := scanDir(dirs[i], opts.IncludeTests)
		return scanOut{files: files, imports: imports, err: err}
	})
	universe := map[string]*node{}
	var nodes []*node
	for i, dir := range dirs {
		if scans[i].err != nil {
			return nil, stats, scans[i].err
		}
		n := &node{
			dir:      dir,
			path:     lint.DirImportPath(dir),
			analyzed: true,
			files:    scans[i].files,
			imports:  scans[i].imports,
		}
		if prev := universe[n.path]; prev != nil {
			return nil, stats, fmt.Errorf("incr: %s and %s both resolve to %s", prev.dir, dir, n.path)
		}
		universe[n.path] = n
		nodes = append(nodes, n)
	}
	stats.Packages = len(nodes)

	// Pull unmatched in-module dependencies into the universe as hash-only
	// nodes: their source shapes type information in dependents, so their
	// edits must change dependents' keys.
	modPath, modRoot := moduleOf(dirs[0])
	if err := closeOverModule(universe, modPath, modRoot, opts.IncludeTests); err != nil {
		return nil, stats, err
	}
	for _, n := range sortedNodes(universe) {
		for _, imp := range n.imports {
			if dep := universe[imp]; dep != nil && dep != n {
				n.deps = append(n.deps, dep)
			}
		}
	}

	order, err := topoSort(universe)
	if err != nil {
		return nil, stats, err
	}
	version := versionHash(opts, modRoot)
	for _, n := range order {
		n.level = 0
		for _, d := range n.deps {
			if d.level+1 > n.level {
				n.level = d.level + 1
			}
		}
		n.key = contentKey(version, n)
		n.closure = analyzedClosure(n)
	}

	// Resolve cache hits, then load what remains, sequentially in
	// dependency order over one shared Loader (the source importer is not
	// concurrency-safe; loading is the irreducible sequential cost).
	loader := lint.NewLoader()
	loader.IncludeTests = opts.IncludeTests
	for _, n := range order {
		if !n.analyzed {
			continue
		}
		if opts.ReadCache && opts.CacheDir != "" {
			if e := readEntry(opts.CacheDir, n.key, version, n.path); e != nil {
				n.entry, n.cached = e, true
				stats.CacheHits++
				continue
			}
		}
		pkg, err := loader.Load(n.dir)
		if err != nil {
			return nil, stats, err
		}
		n.pkg = pkg
		stats.Loaded++
	}

	// Analyze level by level: nodes at one level share no edges, so they
	// run concurrently; every dependency entry is complete before its
	// level starts.
	byLevel := map[int][]*node{}
	maxLevel := 0
	for _, n := range order {
		if !n.analyzed || n.cached {
			continue
		}
		byLevel[n.level] = append(byLevel[n.level], n)
		if n.level > maxLevel {
			maxLevel = n.level
		}
	}
	for lvl := 0; lvl <= maxLevel; lvl++ {
		batch := byLevel[lvl]
		if len(batch) == 0 {
			continue
		}
		entries := par.Map(len(batch), 1, func(i int) *entry {
			return analyzeNode(batch[i], opts, version)
		})
		for i, n := range batch {
			n.entry = entries[i]
			if opts.CacheDir != "" {
				if err := writeEntry(opts.CacheDir, n.key, n.entry); err != nil {
					return nil, stats, err
				}
			}
		}
	}

	var diags []lint.Diagnostic
	for _, n := range order {
		if !n.analyzed || n.entry == nil {
			continue
		}
		for _, d := range n.entry.Diags {
			diags = append(diags, lint.Diagnostic{
				Pos: token.Position{
					Filename: filepath.Join(n.dir, filepath.FromSlash(d.File)),
					Line:     d.Line,
					Column:   d.Col,
				},
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	lint.Sort(diags)
	return diags, stats, nil
}

// analyzeNode runs every requested suite over one freshly loaded package
// against its dependency closure's summaries, producing its cache entry.
func analyzeNode(n *node, opts Options, version string) *entry {
	e := &entry{Version: version, Path: n.path} //lint:allow hotalloc per-package task: one entry per package analysis, amortized over its whole AST
	var diags []lint.Diagnostic
	if len(opts.Classic) > 0 {
		diags = append(diags, lint.Run(n.pkg, opts.Classic...)...) //lint:allow hotalloc per-package task: diagnostics accumulate once per package, not per AST node
	}
	if len(opts.Flow) > 0 {
		e.Flow = map[string]map[string]*flow.Summary{} //lint:allow hotalloc per-package task: one summary map per package analysis
		for _, a := range opts.Flow {
			deps := map[string]*flow.Summary{} //lint:allow hotalloc per-package task: one dependency map per analyzer per package
			for _, m := range n.closure {
				for name, s := range m.entry.Flow[a.Name] {
					deps[name] = s
				}
			}
			sums, ds := a.AnalyzePackage(n.pkg, deps)
			e.Flow[a.Name] = sums
			diags = append(diags, ds...) //lint:allow hotalloc per-package task: diagnostics accumulate once per package
		}
	}
	if len(opts.Absint) > 0 {
		deps := map[string][]absint.Interval{} //lint:allow hotalloc per-package task: one dependency map per package analysis
		for _, m := range n.closure {
			for name, ivs := range m.entry.Absint {
				deps[name] = decodeIntervals(ivs)
			}
		}
		sums, ds := absint.AnalyzePackage(n.pkg, opts.Absint, deps)
		e.Absint = encodeIntervals(sums)
		diags = append(diags, ds...) //lint:allow hotalloc per-package task: diagnostics accumulate once per package
	}
	if len(opts.Perf) > 0 {
		diags = append(diags, perf.AnalyzePackage(n.pkg, opts.PerfCfg, opts.Perf)...) //lint:allow hotalloc per-package task: diagnostics accumulate once per package
	}
	if len(opts.Life) > 0 {
		deps := map[string]*life.Summary{} //lint:allow hotalloc per-package task: one dependency map per package analysis
		for _, m := range n.closure {
			for name, s := range m.entry.Life {
				deps[name] = s
			}
		}
		sums, ds := life.AnalyzePackage(n.pkg, opts.LifeCfg, deps, opts.Life...)
		e.Life = sums
		diags = append(diags, ds...) //lint:allow hotalloc per-package task: diagnostics accumulate once per package
	}
	if opts.StaleAllows {
		diags = append(diags, n.pkg.Allow().StaleAllows(ranNames(opts, n.pkg.Path))...) //lint:allow hotalloc per-package task: diagnostics accumulate once per package
	}
	lint.Sort(diags)
	for _, d := range diags {
		e.Diags = append(e.Diags, diagRec{
			File:     filepath.ToSlash(filepath.Base(d.Pos.Filename)),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return e
}

// ranNames is the set of analyzer names that actually ran against one
// package — the universe StaleAllows judges its directives against, so a
// subset run cannot declare another suite's allow stale, and a
// Match-restricted interval analyzer cannot stale-flag allows in packages
// it never looked at.
func ranNames(opts Options, pkgPath string) map[string]bool {
	ran := map[string]bool{} //lint:allow hotalloc per-package task: one set per package, amortized over the analyzer list
	for _, a := range opts.Classic {
		ran[a.Name] = true
	}
	for _, a := range opts.Flow {
		ran[a.Name] = true
	}
	for _, a := range opts.Absint {
		if a.Match == nil || a.Match(pkgPath) {
			ran[a.Name] = true
		}
	}
	for _, a := range opts.Perf {
		ran[a.Name] = true
	}
	for _, a := range opts.Life {
		if opts.LifeCfg != nil && opts.LifeCfg.Service(pkgPath) {
			ran[a.Name] = true
		}
	}
	return ran
}

func encodeIntervals(sums map[string][]absint.Interval) map[string][]ivRec {
	out := make(map[string][]ivRec, len(sums)) //lint:allow hotalloc per-package task: one encoded map per package analysis
	for name, ivs := range sums {
		recs := make([]ivRec, len(ivs)) //lint:allow hotalloc per-package task: one record slice per summarized function
		for i, iv := range ivs {
			recs[i] = ivRec{
				Lo: strconv.FormatFloat(iv.Lo, 'g', -1, 64),
				Hi: strconv.FormatFloat(iv.Hi, 'g', -1, 64),
			}
		}
		out[name] = recs
	}
	return out
}

func decodeIntervals(recs []ivRec) []absint.Interval {
	ivs := make([]absint.Interval, len(recs)) //lint:allow hotalloc per-package task: one interval slice per summarized function
	for i, r := range recs {
		lo, _ := strconv.ParseFloat(r.Lo, 64)
		hi, _ := strconv.ParseFloat(r.Hi, 64)
		ivs[i] = absint.Interval{Lo: lo, Hi: hi}
	}
	return ivs
}

// scanDir hashes a package directory's Go files and collects their
// imports, using the same file filter as lint.Loader (black-box _test
// packages excluded). It parses import clauses only.
func scanDir(dir string, includeTests bool) ([]fileHash, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []fileHash
	importSet := map[string]bool{} //lint:allow hotalloc per-directory task: one import set per package scan
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		f, err := parser.ParseFile(fset, name, data, parser.ImportsOnly)
		if err != nil {
			return nil, nil, fmt.Errorf("incr: %s: %w", filepath.Join(dir, name), err) //lint:allow hotalloc error path: formats once on the way out, never on the scan fast path
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			// Black-box test package: the Loader never analyzes it.
			continue
		}
		sum := sha256.Sum256(data)
		files = append(files, fileHash{name: name, sum: hex.EncodeToString(sum[:])}) //lint:allow hotalloc per-directory task: the hash list is the scan product
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("incr: no Go files in %s", dir) //lint:allow hotalloc error path: formats once on the way out
	}
	sort.Slice(files, func(i, j int) bool { return files[i].name < files[j].name }) //lint:allow hotescape per-directory task: one comparator per scan, amortized over the file list
	imports := make([]string, 0, len(importSet))                                    //lint:allow hotalloc per-directory task: the import list is the scan product
	for imp := range importSet {
		imports = append(imports, imp)
	}
	sort.Strings(imports)
	return files, imports, nil
}

// moduleOf finds the module path and root directory enclosing dir;
// empties when dir is outside any module (fixture trees).
func moduleOf(dir string) (path, root string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", ""
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return strings.Trim(strings.TrimSpace(rest), `"`), abs
				}
			}
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", ""
		}
		abs = parent
	}
}

// closeOverModule adds hash-only nodes for every in-module import path the
// universe references but does not contain, transitively.
func closeOverModule(universe map[string]*node, modPath, modRoot string, includeTests bool) error {
	if modPath == "" {
		return nil
	}
	pending := []string{}
	seen := map[string]bool{}
	enqueue := func(imports []string) {
		for _, imp := range imports {
			if universe[imp] == nil && !seen[imp] && inModule(imp, modPath) {
				seen[imp] = true
				pending = append(pending, imp)
			}
		}
	}
	for _, n := range sortedNodes(universe) {
		enqueue(n.imports)
	}
	for len(pending) > 0 {
		imp := pending[0]
		pending = pending[1:]
		dir := modRoot
		if imp != modPath {
			dir = filepath.Join(modRoot, filepath.FromSlash(strings.TrimPrefix(imp, modPath+"/")))
		}
		files, imports, err := scanDir(dir, includeTests)
		if err != nil {
			return fmt.Errorf("incr: dependency %s: %w", imp, err)
		}
		universe[imp] = &node{dir: dir, path: imp, files: files, imports: imports}
		enqueue(imports)
	}
	return nil
}

func inModule(imp, modPath string) bool {
	return imp == modPath || strings.HasPrefix(imp, modPath+"/")
}

// topoSort orders the universe dependencies-first (Kahn's algorithm with a
// sorted ready set, so the order — and every downstream iteration — is
// deterministic). A cycle is impossible for compilable Go but fails
// explicitly rather than hanging.
func topoSort(universe map[string]*node) ([]*node, error) {
	indeg := map[*node]int{}
	dependents := map[*node][]*node{}
	for _, n := range sortedNodes(universe) {
		indeg[n] += 0
		for _, d := range n.deps {
			indeg[n]++
			dependents[d] = append(dependents[d], n)
		}
	}
	var ready []*node
	for _, n := range sortedNodes(universe) {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	byPath := func(i, j int) bool { return ready[i].path < ready[j].path }
	sort.Slice(ready, byPath)
	var order []*node
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		changed := false
		for _, m := range dependents[n] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
				changed = true
			}
		}
		if changed {
			sort.Slice(ready, byPath)
		}
	}
	if len(order) != len(universe) {
		return nil, fmt.Errorf("incr: import cycle among %d packages", len(universe)-len(order))
	}
	return order, nil
}

// analyzedClosure collects the analyzed packages reachable through n's
// dependency edges (including through hash-only nodes), sorted by path.
// Dependencies appear earlier in topo order, so their closures are final.
func analyzedClosure(n *node) []*node {
	set := map[*node]bool{}
	for _, d := range n.deps {
		if d.analyzed {
			set[d] = true
		}
		for _, m := range d.closure {
			set[m] = true
		}
	}
	out := make([]*node, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}

// versionHash fingerprints everything that changes analysis output besides
// / package content: the facts schema, the toolchain, the test-file switch,
// the suite composition, and — the self-invalidation clause — the analyzer
// implementation's own source, hashed from the lint/driver directories
// when the module layout exposes them.
func versionHash(opts Options, modRoot string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|tests=%v|stale=%v\n", FactsVersion, runtime.Version(), opts.IncludeTests, opts.StaleAllows)
	for _, a := range opts.Classic {
		fmt.Fprintf(h, "classic:%s:%s\n", a.Name, a.Doc)
	}
	for _, a := range opts.Flow {
		fmt.Fprintf(h, "flow:%s:%s\n", a.Name, a.Doc)
	}
	for _, a := range opts.Absint {
		fmt.Fprintf(h, "absint:%s:%s\n", a.Name, a.Doc)
	}
	for _, a := range opts.Perf {
		fmt.Fprintf(h, "perf:%s:%s\n", a.Name, a.Doc)
	}
	for _, a := range opts.Life {
		fmt.Fprintf(h, "life:%s:%s\n", a.Name, a.Doc)
	}
	if modRoot != "" {
		for _, rel := range []string{
			"internal/lint",
			"internal/lint/absint",
			"internal/lint/cfg",
			"internal/lint/flow",
			"internal/lint/incr",
			"internal/lint/life",
			"internal/lint/perf",
			"cmd/verrolint",
		} {
			files, _, err := scanDir(filepath.Join(modRoot, filepath.FromSlash(rel)), false)
			if err != nil {
				continue
			}
			for _, f := range files {
				fmt.Fprintf(h, "impl:%s/%s:%s\n", rel, f.name, f.sum)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// contentKey chains a package's identity, file hashes, and dependency keys
// under the version hash. Dependencies are keyed first (topo order), so
// an edit anywhere in the dependency cone changes this key.
func contentKey(version string, n *node) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n", version, n.path)
	for _, f := range n.files {
		fmt.Fprintf(h, "file:%s:%s\n", f.name, f.sum)
	}
	deps := make([]string, 0, len(n.deps))
	for _, d := range n.deps {
		deps = append(deps, d.path+":"+d.key)
	}
	sort.Strings(deps)
	for _, d := range deps {
		fmt.Fprintf(h, "dep:%s\n", d)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func readEntry(cacheDir, key, version, path string) *entry {
	data, err := os.ReadFile(filepath.Join(cacheDir, key+".json"))
	if err != nil {
		return nil
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil
	}
	// The key already encodes version and path; the recheck guards against
	// a truncated or foreign file sitting at the right name.
	if e.Version != version || e.Path != path {
		return nil
	}
	return &e
}

func writeEntry(cacheDir, key string, e *entry) error {
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp := filepath.Join(cacheDir, key+".json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(cacheDir, key+".json"))
}

// sortedNodes returns the universe's nodes in import-path order — the
// deterministic iteration order for every graph-building loop.
func sortedNodes(universe map[string]*node) []*node {
	paths := make([]string, 0, len(universe))
	for path := range universe {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	nodes := make([]*node, len(paths))
	for i, path := range paths {
		nodes[i] = universe[path]
	}
	return nodes
}

func dedupSorted(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	j := 0
	for i, s := range out {
		if i == 0 || s != out[j-1] {
			out[j] = s
			j++
		}
	}
	return out[:j]
}
