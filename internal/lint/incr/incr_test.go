package incr_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"verro/internal/lint"
	"verro/internal/lint/absint"
	"verro/internal/lint/flow"
	"verro/internal/lint/incr"
)

// The tests build a throwaway three-package module — c routes a value from
// a.Source through b.Pass into a.Sink — and drive it with a purpose-built
// taint policy, so they exercise the real cross-package summary chain
// without paying for type-checking the verro tree.

const leakyPass = "package b\n\n// Pass hands its argument through unchanged.\nfunc Pass(v int) int { return v }\n"

const cleanPass = "package b\n\n// Pass drops its argument.\nfunc Pass(v int) int { return 0 }\n"

func writeModule(t *testing.T, root, passSrc string) {
	t.Helper()
	files := []struct{ name, src string }{
		{"go.mod", "module staletest\n\ngo 1.24.0\n"},
		{"a/a.go", "package a\n\n// Source yields a tainted value under the test policy.\nfunc Source() int { return 42 }\n\n// Sink is the test policy's sink.\nfunc Sink(v int) {}\n"},
		{"b/b.go", passSrc},
		{"c/c.go", "package c\n\nimport (\n\t\"staletest/a\"\n\t\"staletest/b\"\n)\n\n// Use routes the source through the dependency into the sink.\nfunc Use() {\n\ta.Sink(b.Pass(a.Source()))\n}\n"},
	}
	for _, f := range files {
		path := filepath.Join(root, filepath.FromSlash(f.name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(f.src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func testAnalyzer() *flow.Analyzer {
	return flow.NewAnalyzer("testleak", "test taint policy", &flow.TaintConfig{
		SourceCalls: map[string]bool{"staletest/a.Source": true},
		Sinks: map[string]*flow.Sink{
			"staletest/a.Sink": {Operands: []int{0}, What: "test sink a.Sink"},
		},
		Report: "tainted value reaches %s",
	})
}

func diagStrings(diags []lint.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}

// TestIncrMatchesDirect checks the incremental driver reproduces the plain
// whole-program drivers' diagnostics exactly, including the cross-package
// taint chain a→b→c.
func TestIncrMatchesDirect(t *testing.T) {
	root := t.TempDir()
	writeModule(t, root, leakyPass)
	t.Chdir(root)
	dirs := []string{"a", "b", "c"}

	got, stats, err := incr.Run(incr.Options{
		Dirs:   dirs,
		Flow:   []*flow.Analyzer{testAnalyzer()},
		Absint: absint.ProjectAnalyzers(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Packages != 3 || stats.Loaded != 3 || stats.CacheHits != 0 {
		t.Fatalf("stats = %+v, want 3 packages all loaded fresh", stats)
	}

	loader := lint.NewLoader()
	var pkgs []*lint.Package
	for _, d := range dirs {
		pkg, err := loader.Load(d)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	want := flow.Run(pkgs, testAnalyzer())
	want = append(want, absint.Run(pkgs, absint.ProjectAnalyzers()...)...)
	lint.Sort(want)

	gs, ws := diagStrings(got), diagStrings(want)
	if strings.Join(gs, "\n") != strings.Join(ws, "\n") {
		t.Fatalf("incremental diagnostics diverge from direct run:\nincr:\n%s\ndirect:\n%s",
			strings.Join(gs, "\n"), strings.Join(ws, "\n"))
	}
	if len(got) != 1 || !strings.Contains(got[0].Message, "test sink a.Sink") {
		t.Fatalf("want exactly the a→b→c leak, got %v", gs)
	}
	if !strings.HasSuffix(filepath.ToSlash(got[0].Pos.Filename), "c/c.go") {
		t.Fatalf("leak should be reported in c/c.go, got %s", got[0].Pos.Filename)
	}
}

// TestStaleCacheInvalidation is the stale-cache correctness gate: under a
// fully warm cache, editing a dependency must re-analyze its dependents and
// surface the finding the edit introduced, while untouched packages replay
// from the cache.
func TestStaleCacheInvalidation(t *testing.T) {
	root := t.TempDir()
	writeModule(t, root, cleanPass)
	t.Chdir(root)
	opts := func() incr.Options {
		return incr.Options{
			Dirs:      []string{"a", "b", "c"},
			CacheDir:  filepath.Join(root, "factcache"),
			ReadCache: true,
			Flow:      []*flow.Analyzer{testAnalyzer()},
			Absint:    absint.ProjectAnalyzers(),
		}
	}

	cold, stats, err := incr.Run(opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) != 0 {
		t.Fatalf("clean module should produce no diagnostics, got %v", diagStrings(cold))
	}
	if stats.Loaded != 3 || stats.CacheHits != 0 {
		t.Fatalf("cold stats = %+v, want all 3 loaded", stats)
	}

	warm, stats2, err := incr.Run(opts())
	if err != nil {
		t.Fatal(err)
	}
	if stats2.CacheHits != 3 || stats2.Loaded != 0 {
		t.Fatalf("warm stats = %+v, want all 3 cache hits", stats2)
	}
	if len(warm) != 0 {
		t.Fatalf("warm replay should match cold run, got %v", diagStrings(warm))
	}

	// Edit the dependency so it now passes taint through: b's key changes,
	// so b and its dependent c must be re-analyzed; a is untouched.
	if err := os.WriteFile(filepath.Join(root, "b", "b.go"), []byte(leakyPass), 0o644); err != nil {
		t.Fatal(err)
	}
	stale, stats3, err := incr.Run(opts())
	if err != nil {
		t.Fatal(err)
	}
	if stats3.CacheHits != 1 || stats3.Loaded != 2 {
		t.Fatalf("post-edit stats = %+v, want 1 hit (a) and 2 loads (b, c)", stats3)
	}
	if len(stale) != 1 || !strings.Contains(stale[0].Message, "test sink a.Sink") {
		t.Fatalf("edited dependency must surface the new leak in c, got %v", diagStrings(stale))
	}
	if !strings.HasSuffix(filepath.ToSlash(stale[0].Pos.Filename), "c/c.go") {
		t.Fatalf("leak should be reported in c/c.go, got %s", stale[0].Pos.Filename)
	}
}

// TestHashOnlyDependencyInvalidates covers subset runs: b is imported but
// not in the analyzed set, so it joins the key chain as a hash-only node —
// editing it must still invalidate c's entry.
func TestHashOnlyDependencyInvalidates(t *testing.T) {
	root := t.TempDir()
	writeModule(t, root, cleanPass)
	t.Chdir(root)
	opts := func() incr.Options {
		return incr.Options{
			Dirs:      []string{"a", "c"},
			CacheDir:  filepath.Join(root, "factcache"),
			ReadCache: true,
			Flow:      []*flow.Analyzer{testAnalyzer()},
		}
	}

	if _, stats, err := incr.Run(opts()); err != nil || stats.Loaded != 2 {
		t.Fatalf("cold subset run: stats=%+v err=%v", stats, err)
	}
	if _, stats, err := incr.Run(opts()); err != nil || stats.CacheHits != 2 {
		t.Fatalf("warm subset run: stats=%+v err=%v", stats, err)
	}
	if err := os.WriteFile(filepath.Join(root, "b", "b.go"), []byte(leakyPass), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stats, err := incr.Run(opts())
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 1 || stats.Loaded != 1 {
		t.Fatalf("editing a hash-only dep must invalidate its dependent: stats=%+v", stats)
	}
}
