package life

// ctxflow: request handlers must stay cancellable. The roots are
// functions (and literals) taking a *net/http.Request; everything they
// reach through same-package calls is request scope. Inside request
// scope:
//
//   - context.Background()/context.TODO() sever the request's
//     cancellation chain and are findings;
//   - time.Sleep cannot be interrupted and is a finding;
//   - a select with neither a default nor a cancellation case
//     (<-ctx.Done(), <-time.After(...), a timer/ticker .C) can park a
//     request forever, as can a bare channel send or a bare receive from
//     anything but a cancellation source.
//
// Goroutine bodies spawned from handlers are excluded — they outlive the
// request by design and goleak owns their termination story. sync.Cond
// waits are also excluded: condition variables encode their own wake
// protocol (verrod's event logs pair Wait with a context-driven waker
// goroutine), which this shape check cannot see.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewCtxFlow builds the request-cancellation analyzer.
func NewCtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "request-scope code must remain cancellable through the request context",
		run:  runCtxFlow,
	}
}

func runCtxFlow(p *pass) {
	// Index the package's named functions, then BFS request scope from
	// the handler roots.
	decls := map[string]*ast.FuncDecl{}
	for _, f := range p.pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := p.pkg.Info.Defs[fd.Name].(*types.Func); ok {
				decls[normName(obj)] = fd
			}
		}
	}

	seen := map[string]bool{}
	var queue []string
	enqueue := func(name string) {
		if _, ok := decls[name]; ok && !seen[name] {
			seen[name] = true
			queue = append(queue, name)
		}
	}

	for _, name := range sortedNames(decls) {
		if hasRequestParam(p, decls[name].Type) {
			enqueue(name)
		}
	}
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && hasRequestParam(p, lit.Type) {
				scanRequestScope(p, lit.Body, enqueue)
				return false
			}
			return true
		})
	}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		scanRequestScope(p, decls[name].Body, enqueue)
	}
}

// hasRequestParam reports whether the signature takes a *net/http.Request.
func hasRequestParam(p *pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		t := p.pkg.Info.TypeOf(f.Type)
		ptr, ok := t.(*types.Pointer)
		if !ok {
			continue
		}
		if n, ok := ptr.Elem().(*types.Named); ok {
			obj := n.Obj()
			if obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
				return true
			}
		}
	}
	return false
}

// scanRequestScope walks one request-scope body, reporting uncancellable
// shapes and enqueueing same-package callees.
func scanRequestScope(p *pass, body *ast.BlockStmt, enqueue func(string)) {
	// Channel operations appearing as select comm operands are judged as
	// part of their select, not as bare sends/receives.
	commOp := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cc := range sel.Body.List {
			comm := cc.(*ast.CommClause).Comm
			if comm == nil {
				continue
			}
			ast.Inspect(comm, func(c ast.Node) bool {
				switch u := c.(type) {
				case *ast.UnaryExpr:
					if u.Op == token.ARROW {
						commOp[u] = true
					}
				case *ast.SendStmt:
					commOp[u] = true
				}
				return true
			})
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			return false

		case *ast.SelectStmt:
			if !selectCancellable(p, x) {
				p.reportf(x.Pos(), "select in request scope has no default and no cancellation case; the request cannot be cancelled here")
			}
			return true

		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !commOp[x] && !cancellableRecv(p, x.X) {
				p.reportf(x.Pos(), "channel receive in request scope has no cancellation path; select on the request context too")
			}
			return true

		case *ast.SendStmt:
			if !commOp[x] {
				p.reportf(x.Pos(), "channel send in request scope has no cancellation path; select on the request context too")
			}
			return true

		case *ast.CallExpr:
			switch name := calleeName(p.pkg.Info, x); name {
			case "context.Background", "context.TODO":
				p.reportf(x.Pos(), "%s in request scope severs cancellation; derive the context from the request", shortName(name))
			case "time.Sleep":
				p.reportf(x.Pos(), "time.Sleep in request scope cannot be cancelled; select on the request context instead")
			default:
				enqueue(name)
			}
			return true
		}
		return true
	})
}

// selectCancellable reports whether a select can always make progress or
// be cancelled: a default clause, or a receive from a cancellation
// source in some clause.
func selectCancellable(p *pass, sel *ast.SelectStmt) bool {
	for _, cc := range sel.Body.List {
		clause := cc.(*ast.CommClause)
		if clause.Comm == nil {
			return true
		}
		cancellable := false
		ast.Inspect(clause.Comm, func(c ast.Node) bool {
			if u, ok := c.(*ast.UnaryExpr); ok && u.Op == token.ARROW && cancellableRecv(p, u.X) {
				cancellable = true
			}
			return true
		})
		if cancellable {
			return true
		}
	}
	return false
}

// cancellableRecv reports whether a receive operand is a cancellation
// source: ctx.Done(), time.After(...), or a timer/ticker .C field.
func cancellableRecv(p *pass, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if s, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && s.Sel.Name == "Done" {
			return true
		}
		return calleeName(p.pkg.Info, x) == "time.After"
	case *ast.SelectorExpr:
		return x.Sel.Name == "C"
	}
	return false
}
