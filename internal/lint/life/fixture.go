package life

import (
	"testing"

	"verro/internal/lint"
)

// CheckFixture loads the fixture directories as one program, runs the
// life analyzers over it under the project policy — extended so the
// fixture packages themselves count as service packages — and returns
// one problem per mismatch against the fixtures' `// want` comments.
func CheckFixture(l *lint.Loader, dirs []string, analyzers ...*Analyzer) (problems []string, err error) {
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	cfg := ProjectConfig()
	for _, pkg := range pkgs {
		cfg.ServicePkgs = append(cfg.ServicePkgs, pkg.Path)
	}
	return lint.CheckDiagnostics(pkgs, Run(pkgs, cfg, analyzers...))
}

// RunFixture is the testing wrapper around CheckFixture.
func RunFixture(t *testing.T, dirs []string, analyzers ...*Analyzer) {
	t.Helper()
	problems, err := CheckFixture(lint.NewLoader(), dirs, analyzers...)
	if err != nil {
		t.Fatalf("fixture %v: %v", dirs, err)
	}
	for _, p := range problems {
		t.Errorf("fixture %v: %s", dirs, p)
	}
}
