package life

// goleak: every `go` statement in a service package must start a
// goroutine with a provable termination path. Evidence forms (DESIGN.md
// §2k): a bounded loop (explicit condition, or range — ranging a channel
// is close-signaled), or a return/break/no-return call syntactically
// reachable inside every unconditional loop. The select-on-ctx.Done idiom
// satisfies this through the return or break in the Done case; `for {
// select { case <-done: break } }` does not — that break exits the
// select, which is exactly the leak shape this analyzer exists to catch.
//
// Resolution is optimistic in the under-approximating direction the
// package documents: a `go` on a function value or an unknown (stdlib)
// callee is assumed to terminate; a named callee is judged by its
// converged Diverges summary, so divergence hiding two calls deep in
// another package still surfaces at the spawn site.

import "go/ast"

// NewGoLeak builds the goroutine-termination analyzer.
func NewGoLeak() *Analyzer {
	return &Analyzer{
		Name: "goleak",
		Doc:  "every goroutine started in a service package must have a provable termination path",
		run:  runGoLeak,
	}
}

func runGoLeak(p *pass) {
	for _, f := range p.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				sum, loopPos := summarizeBody(p.pkg, p.cfg, p.look, lit.Body, nil)
				if sum.Diverges {
					pos := g.Pos()
					if loopPos.IsValid() {
						pos = loopPos
					}
					p.reportf(pos, "goroutine never terminates: unconditional loop with no return, break, or close-signaled exit")
				}
				return true
			}
			name := calleeName(p.pkg.Info, g.Call)
			if s := p.look(name); s != nil && s.Diverges {
				p.reportf(g.Pos(), "goroutine never terminates: %s contains an unconditional loop with no exit", shortName(name))
			}
			return true
		})
	}
}
