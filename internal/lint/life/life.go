// Package life is verrolint's lifecycle layer: a stdlib-only
// whole-program analysis of *service-lifetime* invariants over the verrod
// arc (cmd/verrod, internal/server, internal/store, internal/stream,
// internal/vid, internal/obs). Where the classic/flow/absint/perf suites
// prove per-clip math — determinism, taint, intervals, allocation — this
// suite proves that a long-running server survives job churn: goroutines
// terminate (goleak), acquired resources are released on every path
// (mustclose), locks are ranked and never held across a park (lockorder),
// and request handlers stay cancellable (ctxflow).
//
// The suite reuses the shared CFG lowering (internal/lint/cfg) for its
// path-sensitive analyzers and mirrors the verroflow architecture for
// whole-program reasoning: every function gets a small lifecycle summary
// (may it park? may it diverge? which parameters does it take ownership
// of? which locks does it acquire?), summaries are iterated to a
// bottom-up fixpoint in deterministic order, and the analyzers then
// replay each service-package body against the converged table.
// AnalyzePackage exposes the per-package split the incremental driver
// (internal/lint/incr) caches: facts flow strictly callee→caller, so
// analyzing packages in dependency order against their dependencies'
// converged summaries reproduces the global fixpoint exactly.
//
// Soundness direction: the suite under-approximates. Unknown callees
// (stdlib, function values) are assumed to terminate, not block, and not
// take ownership; a clean run is evidence, not proof. The reverse
// direction — every diagnostic is a real policy violation on some CFG
// path — is what the sweep relies on, and the fixtures pin it.
package life

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"verro/internal/lint"
)

// Analyzer is one lifecycle check. Like the flow suite, an analyzer sees
// converged whole-program summaries; unlike it, the reporting pass is
// confined to the service packages named by the Config.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives.
	Name string
	// Doc is the one-line invariant the analyzer encodes.
	Doc string

	run func(p *pass)
}

// Resource is one entry in the acquire table: calling the keyed function
// creates an obligation on result Result that only a Release method,
// a transfer of ownership, or (for CallRelease entries like context
// cancel funcs) calling the value itself discharges.
type Resource struct {
	// Kind labels the resource in diagnostics ("file", "ticker", ...).
	Kind string
	// Result is the index of the resource in the callee's result tuple.
	Result int
	// Release lists method names on the resource (or on its fields, as in
	// resp.Body.Close) that discharge the obligation.
	Release []string
	// CallRelease marks resources that are themselves func values,
	// discharged by being called (context.WithCancel's cancel).
	CallRelease bool
}

// Config is the lifecycle policy: which packages are under service
// discipline, which calls acquire resources, which calls park the
// goroutine, and which callees take ownership of their arguments.
type Config struct {
	// ServicePkgs lists the import paths under lifecycle policy; the
	// analyzers report only inside them (summaries are still computed
	// everywhere, so service code calling library code sees its facts).
	ServicePkgs []string
	// Resources maps normalized callee names to acquire rules.
	Resources map[string]Resource
	// Blocking lists normalized callee names that may park the calling
	// goroutine indefinitely (channel-shaped waits hiding behind calls).
	Blocking map[string]bool
	// Owners maps normalized callee names to the argument indices they
	// take ownership of, for callees outside the analyzed program whose
	// summaries cannot say so themselves (http.Server.Serve closes its
	// listener).
	Owners map[string][]int
}

// Service reports whether the import path is under lifecycle policy.
// Life fixture packages (the suite's own and the cmd/verrolint driver
// demo) are always in scope, so testdata exercises the real policy.
func (c *Config) Service(path string) bool {
	for _, p := range c.ServicePkgs {
		if path == p {
			return true
		}
	}
	return strings.Contains(path, "life/testdata") ||
		strings.Contains(path, "testdata/lifedemo")
}

// pass is one analyzer's view of one service package: its AST and types,
// the converged summary table, the policy, and the reporter.
type pass struct {
	pkg  *lint.Package
	cfg  *Config
	sums map[string]*Summary
	rep  *reporter
}

// look resolves a normalized function name to its converged summary.
func (p *pass) look(name string) *Summary {
	if name == "" {
		return nil
	}
	return p.sums[name]
}

func (p *pass) reportf(pos token.Pos, format string, args ...any) {
	p.rep.reportf(p.pkg, pos, format, args...)
}

// Run executes the lifecycle analyzers over the program formed by pkgs:
// summaries converge over every package, diagnostics are confined to the
// Config's service packages. //lint:allow directives suppress life
// analyzers exactly as they do classic ones.
func Run(pkgs []*lint.Package, cfg *Config, analyzers ...*Analyzer) []lint.Diagnostic {
	sums := Summaries(pkgs, cfg, nil)
	allow := map[*lint.Package]*lint.AllowIndex{}
	for _, pkg := range pkgs {
		allow[pkg] = pkg.Allow()
	}
	var diags []lint.Diagnostic
	for _, a := range analyzers {
		rep := &reporter{analyzer: a.Name, allow: allow, seen: map[string]bool{}}
		for _, pkg := range pkgs {
			if !cfg.Service(pkg.Path) {
				continue
			}
			a.run(&pass{pkg: pkg, cfg: cfg, sums: sums, rep: rep})
		}
		diags = append(diags, rep.diags...)
	}
	lint.Sort(diags)
	return diags
}

// AnalyzePackage runs the suite over one package against the converged
// summaries of its dependencies, returning the package's own summaries
// (for the fact cache) and its diagnostics. The split is sound for the
// same reason verroflow's is (DESIGN.md §2i): lifecycle facts flow
// strictly callee→caller and the import graph is acyclic.
func AnalyzePackage(pkg *lint.Package, cfg *Config, deps map[string]*Summary, analyzers ...*Analyzer) (map[string]*Summary, []lint.Diagnostic) {
	own := Summaries([]*lint.Package{pkg}, cfg, deps)
	var diags []lint.Diagnostic
	if cfg.Service(pkg.Path) {
		merged := make(map[string]*Summary, len(deps)+len(own))
		for k, v := range deps {
			merged[k] = v
		}
		for k, v := range own {
			merged[k] = v
		}
		allow := map[*lint.Package]*lint.AllowIndex{pkg: pkg.Allow()}
		for _, a := range analyzers {
			rep := &reporter{analyzer: a.Name, allow: allow, seen: map[string]bool{}}
			a.run(&pass{pkg: pkg, cfg: cfg, sums: merged, rep: rep})
			diags = append(diags, rep.diags...)
		}
	}
	lint.Sort(diags)
	return own, diags
}

// reporter collects one analyzer's diagnostics, deduplicating repeats
// (CFG fixpoints revisit blocks) and honoring allow directives.
type reporter struct {
	analyzer string
	allow    map[*lint.Package]*lint.AllowIndex
	seen     map[string]bool
	diags    []lint.Diagnostic
}

func (r *reporter) reportf(pkg *lint.Package, pos token.Pos, format string, args ...any) {
	position := pkg.Fset.Position(pos)
	if r.allow[pkg].Allows(r.analyzer, position) {
		return
	}
	d := lint.Diagnostic{Pos: position, Analyzer: r.analyzer, Message: fmt.Sprintf(format, args...)}
	key := d.String()
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	r.diags = append(r.diags, d)
}

// ---------------------------------------------------------------------
// Name and call resolution

// normName is a function's cross-package identity: types.Func.FullName
// with pointer-receiver stars stripped, matching the flow suite's keying.
func normName(fn *types.Func) string {
	return strings.ReplaceAll(fn.FullName(), "*", "")
}

// shortName renders a normalized name for diagnostics with the module
// prefix trimmed.
func shortName(name string) string {
	name = strings.ReplaceAll(name, "verro/internal/", "")
	name = strings.ReplaceAll(name, "verro/cmd/", "")
	return strings.ReplaceAll(name, "verro/", "")
}

// staticCallee resolves a call to its target *types.Func when the callee
// is a plain identifier or selector (possibly generic-instantiated).
// Interface method calls resolve to the interface's method, so tables can
// key "(net/http.Flusher).Flush".
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	for {
		switch f := fun.(type) {
		case *ast.Ident:
			fn, _ := info.Uses[f].(*types.Func)
			return fn
		case *ast.SelectorExpr:
			fn, _ := info.Uses[f.Sel].(*types.Func)
			return fn
		case *ast.IndexExpr:
			fun = ast.Unparen(f.X)
		case *ast.IndexListExpr:
			fun = ast.Unparen(f.X)
		default:
			return nil
		}
	}
}

// calleeName resolves a call to its normalized name, or "".
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := staticCallee(info, call); fn != nil {
		return normName(fn)
	}
	return ""
}

// baseIdent unwraps a selector chain (resp.Body.Close → resp) to its
// base identifier, or nil when the base is not a plain identifier.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedNames returns the map's keys in sorted order — the deterministic
// iteration order of every fixpoint round and reporting pass.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
