package life_test

import (
	"strings"
	"testing"

	"verro/internal/lint"
	"verro/internal/lint/life"
)

func TestGoLeakFixture(t *testing.T) {
	life.RunFixture(t, []string{"testdata/goleak"}, life.NewGoLeak())
}

func TestMustCloseFixture(t *testing.T) {
	life.RunFixture(t, []string{"testdata/mustclose"}, life.NewMustClose())
}

func TestLockOrderFixture(t *testing.T) {
	life.RunFixture(t, []string{"testdata/lockorder"}, life.NewLockOrder())
}

func TestCtxFlowFixture(t *testing.T) {
	life.RunFixture(t, []string{"testdata/ctxflow"}, life.NewCtxFlow())
}

// TestFixtureMetaFailClosed proves the fixture runner fails closed:
// withholding the analyzer leaves every want comment unmatched, so a
// fixture whose expectations could be satisfied by nothing would fail
// loudly rather than silently passing.
func TestFixtureMetaFailClosed(t *testing.T) {
	for _, dir := range []string{
		"testdata/goleak",
		"testdata/mustclose",
		"testdata/lockorder",
		"testdata/ctxflow",
	} {
		problems, err := life.CheckFixture(lint.NewLoader(), []string{dir})
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if len(problems) == 0 {
			t.Errorf("%s: no unmatched wants with analyzers withheld; fixture asserts nothing", dir)
		}
		for _, p := range problems {
			if !strings.Contains(p, "no diagnostic matching") {
				t.Errorf("%s: unexpected problem kind without analyzers: %s", dir, p)
			}
		}
	}
}

// TestSummaryPropagation pins the whole-program mechanism: goleak's
// verdict on `go spin()` exists only because spin's converged summary
// diverges; the summary table must say so.
func TestSummaryPropagation(t *testing.T) {
	l := lint.NewLoader()
	pkg, err := l.Load("testdata/goleak")
	if err != nil {
		t.Fatal(err)
	}
	sums := life.Summaries([]*lint.Package{pkg}, life.ProjectConfig(), nil)
	var spin string
	for name := range sums {
		if strings.HasSuffix(name, ".spin") {
			spin = name
		}
	}
	if spin == "" {
		t.Fatalf("no summary for spin; have %d summaries", len(sums))
	}
	if !sums[spin].Diverges {
		t.Errorf("summary for %s: want Diverges", spin)
	}
}

// TestAnalyzePackageMatchesRun pins the incremental split: analyzing the
// fixture package alone against empty deps must reproduce Run exactly.
func TestAnalyzePackageMatchesRun(t *testing.T) {
	for _, dir := range []string{"testdata/goleak", "testdata/mustclose", "testdata/lockorder", "testdata/ctxflow"} {
		l := lint.NewLoader()
		pkg, err := l.Load(dir)
		if err != nil {
			t.Fatal(err)
		}
		cfg := life.ProjectConfig()
		cfg.ServicePkgs = append(cfg.ServicePkgs, pkg.Path)
		whole := life.Run([]*lint.Package{pkg}, cfg, life.ProjectAnalyzers()...)
		_, split := life.AnalyzePackage(pkg, cfg, nil, life.ProjectAnalyzers()...)
		if len(whole) != len(split) {
			t.Fatalf("%s: Run gave %d diagnostics, AnalyzePackage %d", dir, len(whole), len(split))
		}
		for i := range whole {
			if whole[i].String() != split[i].String() {
				t.Errorf("%s: diagnostic %d differs:\n  run:   %s\n  split: %s", dir, i, whole[i], split[i])
			}
		}
	}
}
