package life

// lockorder: lock discipline for the service arc. Three invariants:
//
//  1. No self-deadlock: a lock is never reacquired while already held
//     (sync.Mutex is not reentrant), directly or through a callee whose
//     summary says it takes the same lock.
//  2. No park under a lock: while any lock is held, the goroutine must
//     not execute a channel send/receive, a select without default, a
//     WaitGroup/blocking call, or a callee that may park. This is the
//     SSE-fanout-under-mutex shape: one slow subscriber wedges every
//     request that needs the registry lock.
//  3. Consistent order: if lock A is ever held while B is acquired, no
//     path may acquire B then A. Rank edges are collected per acquisition
//     over converged held-sets and checked for cycles package-wide.
//     Only global locks (field mutexes keyed by owning type, and
//     package-level mutexes) carry rank; function-local mutexes
//     participate in held-set tracking only.
//
// sync.Cond.Wait is exempt from rule 2: it releases its lock while
// parked — that is its contract. Deferred unlocks do not clear the
// held-set (they run at exit), which is precisely what makes the
// lock-then-defer-unlock handler body visible to rule 2.

import (
	"go/ast"
	"go/token"
	"strings"

	"verro/internal/lint/cfg"
)

// NewLockOrder builds the lock-discipline analyzer.
func NewLockOrder() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "locks are acquired in a consistent order and never held across a blocking operation",
		run:  runLockOrder,
	}
}

// orderGraph accumulates held→acquired rank edges across one package.
type orderGraph struct {
	edges map[string]map[string]token.Pos
}

func (g *orderGraph) add(held, acquired string, pos token.Pos) {
	if g.edges[held] == nil {
		g.edges[held] = map[string]token.Pos{}
	}
	if _, ok := g.edges[held][acquired]; !ok {
		g.edges[held][acquired] = pos
	}
}

// reaches reports whether the rank graph has a path from→to.
func (g *orderGraph) reaches(from, to string) bool {
	seen := map[string]bool{}
	var dfs func(string) bool
	dfs = func(n string) bool {
		if n == to {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for _, next := range sortedNames(g.edges[n]) {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

func runLockOrder(p *pass) {
	g := &orderGraph{edges: map[string]map[string]token.Pos{}}
	for _, f := range p.pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				analyzeLockOrder(p, fd.Body, g)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				analyzeLockOrder(p, lit.Body, g)
			}
			return true
		})
	}

	// Package-wide inversion check over the collected rank edges.
	seenPair := map[string]bool{}
	for _, a := range sortedNames(g.edges) {
		for _, b := range sortedNames(g.edges[a]) {
			if seenPair[a+"|"+b] {
				continue
			}
			if g.reaches(b, a) {
				seenPair[a+"|"+b] = true
				seenPair[b+"|"+a] = true
				p.reportf(g.edges[a][b], "lock %s acquired while holding %s, but the opposite order also occurs (lock-order inversion)", shortName(b), shortName(a))
			}
		}
	}
}

// heldState maps held lock IDs to their acquisition positions.
type heldState struct {
	reach bool
	held  map[string]token.Pos
}

func (s heldState) clone() heldState {
	held := make(map[string]token.Pos, len(s.held))
	for k, v := range s.held {
		held[k] = v
	}
	return heldState{reach: s.reach, held: held}
}

// joinHeld unions: held on any incoming path means held (may-analysis —
// a park under a sometimes-held lock is still a park under a lock).
func joinHeld(a, b heldState) heldState {
	if !a.reach {
		return b.clone()
	}
	out := a.clone()
	for k, pos := range b.held {
		if have, ok := out.held[k]; !ok || pos < have {
			out.held[k] = pos
		}
	}
	return out
}

func eqHeld(a, b heldState) bool {
	if a.reach != b.reach || len(a.held) != len(b.held) {
		return false
	}
	for k, v := range a.held {
		if o, ok := b.held[k]; !ok || o != v {
			return false
		}
	}
	return true
}

// locker drives one body's analysis.
type locker struct {
	p           *pass
	g           *orderGraph
	report      bool
	commOf      map[ast.Stmt]*ast.SelectStmt
	hasDefault  map[*ast.SelectStmt]bool
	reportedSel map[token.Pos]bool
}

func analyzeLockOrder(p *pass, body *ast.BlockStmt, g *orderGraph) {
	m := &locker{
		p:           p,
		g:           g,
		commOf:      map[ast.Stmt]*ast.SelectStmt{},
		hasDefault:  map[*ast.SelectStmt]bool{},
		reportedSel: map[token.Pos]bool{},
	}
	// Map select comm statements back to their selects so the lowered CFG
	// (one block per clause, comm prepended) reports a park once per
	// select, not once per channel operand.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false // literals are analyzed as their own bodies
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cc := range sel.Body.List {
			clause := cc.(*ast.CommClause)
			if clause.Comm == nil {
				m.hasDefault[sel] = true
			} else {
				m.commOf[clause.Comm] = sel
			}
		}
		return true
	})

	grf := cfg.Build(body)
	n := len(grf.Blocks)
	in := make([]heldState, n)
	in[grf.Entry.ID] = heldState{reach: true, held: map[string]token.Pos{}}

	queued := make([]bool, n)
	wl := []int{grf.Entry.ID}
	queued[grf.Entry.ID] = true
	steps, maxSteps := 0, 64*n+256
	for len(wl) > 0 {
		if steps++; steps > maxSteps {
			break
		}
		id := wl[0]
		wl = wl[1:]
		queued[id] = false
		if !in[id].reach {
			continue
		}
		st := in[id].clone()
		m.execBlock(grf.Blocks[id], &st)
		for _, ed := range grf.Blocks[id].Succs {
			tgt := ed.To.ID
			merged := joinHeld(in[tgt], st)
			if !eqHeld(merged, in[tgt]) {
				in[tgt] = merged
				if !queued[tgt] {
					wl = append(wl, tgt)
					queued[tgt] = true
				}
			}
		}
	}

	// Reporting sweep over the converged states, in block order.
	m.report = true
	for id := 0; id < n; id++ {
		if !in[id].reach {
			continue
		}
		st := in[id].clone()
		m.execBlock(grf.Blocks[id], &st)
	}
}

// holding names one held lock for a diagnostic: the sorted-first ID.
func holding(held map[string]token.Pos) string {
	return shortName(sortedNames(held)[0])
}

// globalLock reports whether a lock ID from lockIdent is comparable
// across functions: field mutexes ("(pkg.Type).mu") and package-level
// mutexes ("pkg/path.name"). Local names never carry rank.
func globalLock(id string) bool {
	return strings.HasPrefix(id, "(") || strings.Contains(id, "/")
}

func (m *locker) execBlock(b *cfg.Block, st *heldState) {
	for _, s := range b.Stmts {
		m.stmt(s, st)
	}
}

func (m *locker) stmt(s ast.Stmt, st *heldState) {
	// Select comm statements park as a unit: report once per select,
	// only when every clause can block (no default).
	if sel, ok := m.commOf[s]; ok {
		if len(st.held) > 0 && !m.hasDefault[sel] && m.report && !m.reportedSel[sel.Pos()] {
			m.reportedSel[sel.Pos()] = true
			m.p.reportf(sel.Pos(), "select without default while holding %s may park the goroutine under the lock", holding(st.held))
		}
		return
	}

	switch s := s.(type) {
	case *ast.GoStmt, *ast.DeferStmt:
		// Spawned and deferred work does not run at this program point.
		return
	case *ast.SendStmt:
		if len(st.held) > 0 && m.report {
			m.p.reportf(s.Pos(), "channel send while holding %s may park the goroutine under the lock", holding(st.held))
		}
		return
	case *ast.SelectStmt:
		// The clauses arrive as their own blocks; nothing to do here.
		return
	}

	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && len(st.held) > 0 && m.report {
				m.p.reportf(x.Pos(), "channel receive while holding %s may park the goroutine under the lock", holding(st.held))
			}
			return true
		case *ast.SendStmt:
			if len(st.held) > 0 && m.report {
				m.p.reportf(x.Pos(), "channel send while holding %s may park the goroutine under the lock", holding(st.held))
			}
			return true
		case *ast.CallExpr:
			m.call(x, st)
			return true
		}
		return true
	})
}

// call folds one call into the held-set, emitting rank edges and
// park-under-lock diagnostics.
func (m *locker) call(call *ast.CallExpr, st *heldState) {
	name := calleeName(m.p.pkg.Info, call)
	if name == "" {
		return
	}

	if op, ok := mutexOp(name); ok {
		sel, selOK := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !selOK {
			return
		}
		id, global := lockIdent(m.p.pkg, sel.X)
		switch op {
		case "Lock", "RLock":
			if _, already := st.held[id]; already {
				if m.report {
					m.p.reportf(call.Pos(), "lock %s acquired while already held (self-deadlock: sync mutexes are not reentrant)", shortName(id))
				}
				return
			}
			if global && m.report {
				for h := range st.held {
					if globalLock(h) {
						m.g.add(h, id, call.Pos())
					}
				}
			}
			st.held[id] = call.Pos()
		case "Unlock", "RUnlock":
			delete(st.held, id)
		}
		return
	}

	if len(st.held) == 0 {
		return
	}

	// Cond.Wait releases its lock while parked; that is its contract.
	if name == "(sync.Cond).Wait" {
		return
	}

	blocks := m.p.cfg.Blocking[name] || name == "(sync.WaitGroup).Wait"
	sum := m.p.look(name)
	if sum != nil && sum.Blocks {
		blocks = true
	}
	if blocks && m.report {
		m.p.reportf(call.Pos(), "call to %s may block while holding %s", shortName(name), holding(st.held))
	}
	if sum != nil {
		for _, l := range sum.Locks {
			if _, already := st.held[l]; already {
				if m.report {
					m.p.reportf(call.Pos(), "call to %s acquires %s, which is already held (self-deadlock)", shortName(name), shortName(l))
				}
				continue
			}
			if m.report {
				for h := range st.held {
					if globalLock(h) {
						m.g.add(h, l, call.Pos())
					}
				}
			}
		}
	}
}
