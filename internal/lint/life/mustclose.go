package life

// mustclose: path-sensitive must-release analysis. An acquire-table call
// (os.Open, vid.OpenRawStore, time.NewTicker, context.WithCancel, ...)
// creates an obligation on its result; the obligation must be discharged
// on every CFG path that reaches a function exit. Discharges:
//
//   - a release method on the resource (f.Close(), t.Stop(),
//     resp.Body.Close()) — reached directly or via defer, which covers
//     panic exits;
//   - calling the value itself, for CallRelease resources (cancel());
//   - ownership transfer: the resource is returned, stored into a struct
//     literal or heap location, sent on a channel, captured by a
//     goroutine or closure, appended to a slice, or passed to a callee
//     whose summary (or the Owners table) says it takes ownership.
//
// Error-branch refinement keeps the analysis honest about Go's acquire
// idiom: on the `err != nil` edge after `f, err := os.Open(p)` the
// obligation dies (a failed acquire returns no resource), and likewise on
// any `f == nil` edge. Exits reached by panic/os.Exit are not charged —
// only deferred releases run there, and defers are already credited.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"verro/internal/lint/cfg"
)

// NewMustClose builds the must-release analyzer.
func NewMustClose() *Analyzer {
	return &Analyzer{
		Name: "mustclose",
		Doc:  "acquired resources must be released or ownership-transferred on every path",
		run:  runMustClose,
	}
}

func runMustClose(p *pass) {
	for _, f := range p.pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				analyzeMustClose(p, fd.Body)
			}
		}
		// Function literals are their own obligation scopes: a resource
		// acquired inside a closure must be released inside it (or
		// transferred out of it).
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				analyzeMustClose(p, lit.Body)
			}
			return true
		})
	}
}

// oblig is one live obligation: the acquire site, the rule that created
// it, the error result governing its feasibility, and the set of local
// variables currently holding the resource.
type oblig struct {
	kind        string
	source      string
	release     []string
	callRelease bool
	errObj      types.Object
	vars        map[types.Object]bool
}

func (o *oblig) clone() *oblig {
	vars := make(map[types.Object]bool, len(o.vars))
	for k, v := range o.vars {
		vars[k] = v
	}
	c := *o
	c.vars = vars
	return &c
}

// closeState is the abstract state at one program point: the set of
// may-live obligations keyed by acquire position.
type closeState struct {
	reach bool
	obs   map[token.Pos]*oblig
}

func (s closeState) clone() closeState {
	obs := make(map[token.Pos]*oblig, len(s.obs))
	for k, v := range s.obs {
		obs[k] = v.clone()
	}
	return closeState{reach: s.reach, obs: obs}
}

// joinClose unions the obligations: live on any path means live.
func joinClose(a, b closeState) closeState {
	if !a.reach {
		return b.clone()
	}
	out := a.clone()
	for pos, ob := range b.obs {
		if have, ok := out.obs[pos]; ok {
			for v := range ob.vars {
				have.vars[v] = true
			}
		} else {
			out.obs[pos] = ob.clone()
		}
	}
	return out
}

func eqClose(a, b closeState) bool {
	if a.reach != b.reach || len(a.obs) != len(b.obs) {
		return false
	}
	for pos, ob := range a.obs {
		other, ok := b.obs[pos]
		if !ok || len(ob.vars) != len(other.vars) {
			return false
		}
		for v := range ob.vars {
			if !other.vars[v] {
				return false
			}
		}
	}
	return true
}

// closer drives one body's analysis.
type closer struct {
	p        *pass
	report   bool
	reported map[token.Pos]bool
}

func analyzeMustClose(p *pass, body *ast.BlockStmt) {
	g := cfg.Build(body)
	n := len(g.Blocks)
	in := make([]closeState, n)
	in[g.Entry.ID] = closeState{reach: true, obs: map[token.Pos]*oblig{}}
	m := &closer{p: p, reported: map[token.Pos]bool{}}

	queued := make([]bool, n)
	wl := []int{g.Entry.ID}
	queued[g.Entry.ID] = true
	steps, maxSteps := 0, 64*n+256
	for len(wl) > 0 {
		if steps++; steps > maxSteps {
			break // safety net; the finite obligation lattice converges
		}
		id := wl[0]
		wl = wl[1:]
		queued[id] = false
		if !in[id].reach {
			continue
		}
		st := in[id].clone()
		m.execBlock(g.Blocks[id], &st)
		for _, ed := range g.Blocks[id].Succs {
			s2 := st.clone()
			m.applyEdge(ed, &s2)
			tgt := ed.To.ID
			merged := joinClose(in[tgt], s2)
			if !eqClose(merged, in[tgt]) {
				in[tgt] = merged
				if !queued[tgt] {
					wl = append(wl, tgt)
					queued[tgt] = true
				}
			}
		}
	}

	// Reporting sweep in block order: discarded acquires fire where they
	// happen, leaks fire at the acquire site of obligations still live at
	// a non-panic exit.
	m.report = true
	for id := 0; id < n; id++ {
		if !in[id].reach {
			continue
		}
		b := g.Blocks[id]
		st := in[id].clone()
		m.execBlock(b, &st)
		if len(b.Succs) > 0 || panicExit(b) {
			continue
		}
		var live []token.Pos
		for pos := range st.obs {
			live = append(live, pos)
		}
		sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
		for _, pos := range live {
			if m.reported[pos] {
				continue
			}
			m.reported[pos] = true
			ob := st.obs[pos]
			if ob.callRelease {
				m.p.reportf(pos, "%s from %s is not called on every path; defer it at the acquire site", ob.kind, ob.source)
			} else {
				m.p.reportf(pos, "%s from %s is not released on every path; add a defer or close it before each return", ob.kind, ob.source)
			}
		}
	}
}

// panicExit reports whether the block ends in a no-return call: defers
// (already credited) are the only releases that run there.
func panicExit(b *cfg.Block) bool {
	if len(b.Stmts) == 0 {
		return false
	}
	es, ok := b.Stmts[len(b.Stmts)-1].(*ast.ExprStmt)
	return ok && cfg.IsNoReturnCall(es.X)
}

func (m *closer) execBlock(b *cfg.Block, st *closeState) {
	for _, s := range b.Stmts {
		m.stmt(s, st)
	}
	if b.Ret != nil {
		for _, res := range b.Ret.Results {
			m.dischargeIdents(res, st)
		}
	}
}

func (m *closer) stmt(s ast.Stmt, st *closeState) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
				if rule, name, ok := m.acquireRule(call); ok {
					m.transfers(s.Rhs[0], st)
					m.bind(s.Lhs, call, rule, name, st)
					return
				}
			}
		}
		for _, r := range s.Rhs {
			m.transfers(r, st)
		}
		if len(s.Lhs) == len(s.Rhs) {
			for i := range s.Lhs {
				m.assignOne(s.Lhs[i], s.Rhs[i], st)
			}
		}

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 1 {
					continue
				}
				call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
				if !ok {
					continue
				}
				if rule, name, ok := m.acquireRule(call); ok {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					m.transfers(vs.Values[0], st)
					m.bind(lhs, call, rule, name, st)
				} else {
					m.transfers(vs.Values[0], st)
				}
			}
		}

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if m.releaseCall(call, st) {
				return
			}
			if rule, name, ok := m.acquireRule(call); ok && m.report {
				m.p.reportf(call.Pos(), "%s from %s is discarded; it can never be released", rule.Kind, shortName(name))
			}
		}
		m.transfers(s.X, st)

	case *ast.DeferStmt:
		if m.releaseCall(s.Call, st) {
			return
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			// Releases inside a deferred closure run on every later exit.
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					m.releaseCall(c, st)
				}
				return true
			})
			return
		}
		m.transfers(s.Call, st)

	case *ast.GoStmt:
		// The goroutine takes ownership of everything it references.
		m.dischargeIdents(s.Call, st)

	case *ast.SendStmt:
		m.dischargeIdents(s.Value, st)
		m.transfers(s.Chan, st)

	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				m.transfers(e, st)
				return false
			}
			return true
		})
	}
}

// bind installs a fresh obligation for an acquire's result.
func (m *closer) bind(lhs []ast.Expr, call *ast.CallExpr, rule Resource, name string, st *closeState) {
	if rule.Result >= len(lhs) {
		return
	}
	var errObj types.Object
	if len(lhs) > 1 {
		if id, ok := ast.Unparen(lhs[len(lhs)-1]).(*ast.Ident); ok && id.Name != "_" {
			if obj := m.p.pkg.Info.ObjectOf(id); obj != nil && isErrorType(obj.Type()) {
				errObj = obj
			}
		}
	}
	switch r := ast.Unparen(lhs[rule.Result]).(type) {
	case *ast.Ident:
		if r.Name == "_" {
			if m.report {
				m.p.reportf(call.Pos(), "%s from %s is discarded; it can never be released", rule.Kind, shortName(name))
			}
			return
		}
		obj := m.p.pkg.Info.ObjectOf(r)
		if obj == nil {
			return
		}
		m.rebind(obj, call.Pos(), st)
		st.obs[call.Pos()] = &oblig{
			kind:        rule.Kind,
			source:      shortName(name),
			release:     rule.Release,
			callRelease: rule.CallRelease,
			errObj:      errObj,
			vars:        map[types.Object]bool{obj: true},
		}
	default:
		// Stored straight into a field/index: immediate ownership transfer.
	}
}

// rebind removes obj from every obligation's alias set before it is
// overwritten; an obligation that loses its last alias is unreleasable
// and reported as overwritten.
func (m *closer) rebind(obj types.Object, at token.Pos, st *closeState) {
	for pos, ob := range st.obs {
		if !ob.vars[obj] {
			continue
		}
		delete(ob.vars, obj)
		if len(ob.vars) == 0 {
			delete(st.obs, pos)
			if m.report && !m.reported[pos] {
				m.reported[pos] = true
				m.p.reportf(pos, "%s from %s is overwritten while still unreleased", ob.kind, ob.source)
			}
		}
	}
}

// assignOne handles aliasing (`g := f`) and heap stores (`s.f = f`).
func (m *closer) assignOne(lhs, rhs ast.Expr, st *closeState) {
	rhsObj := identObj(m.p.pkg.Info, rhs)
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		lobj := m.p.pkg.Info.ObjectOf(l)
		if lobj == nil {
			return
		}
		if lobj.Pkg() != nil && lobj.Parent() == lobj.Pkg().Scope() {
			// Store to a package-level variable: ownership leaves.
			m.dischargeIdents(rhs, st)
			return
		}
		if rhsObj != nil {
			if tracked(st, rhsObj) {
				m.rebind(lobj, lhs.Pos(), st)
				for _, ob := range st.obs {
					if ob.vars[rhsObj] {
						ob.vars[lobj] = true
					}
				}
				return
			}
		}
		m.rebind(lobj, lhs.Pos(), st)
	default:
		// Selector/index/star store: the resource escapes to the heap.
		m.dischargeIdents(rhs, st)
	}
}

// transfers discharges obligations whose resource escapes through the
// expression: composite literals, closures, channel-free heap shapes, and
// arguments passed to owning callees.
func (m *closer) transfers(e ast.Expr, st *closeState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				m.dischargeIdents(el, st)
			}
			return false
		case *ast.FuncLit:
			// Captured by a closure: ownership moves into it.
			m.dischargeIdents(x.Body, st)
			return false
		case *ast.CallExpr:
			// A release reached through an expression context still
			// releases: `if err := f.Close(); err != nil` is the idiomatic
			// checked close.
			m.releaseCall(x, st)
			m.argTransfers(x, st)
			return true
		}
		return true
	})
}

// argTransfers discharges tracked arguments passed to callees that take
// ownership (append, the Owners table, or a converged Owns summary).
func (m *closer) argTransfers(call *ast.CallExpr, st *closeState) {
	info := m.p.pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && info.Uses[id] == types.Universe.Lookup("append") {
		for _, a := range call.Args[1:] {
			m.dischargeIdents(a, st)
		}
		return
	}
	name := calleeName(info, call)
	if name == "" {
		return
	}
	owns := append([]int(nil), m.p.cfg.Owners[name]...)
	if s := m.p.look(name); s != nil {
		owns = append(owns, s.Owns...)
	}
	for _, i := range owns {
		if i < len(call.Args) {
			m.dischargeIdents(call.Args[i], st)
		}
	}
}

// releaseCall discharges an obligation when the call is its release: a
// release method rooted at an aliased variable, or (for CallRelease
// resources) calling the variable itself.
func (m *closer) releaseCall(call *ast.CallExpr, st *closeState) bool {
	info := m.p.pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			for pos, ob := range st.obs {
				if ob.callRelease && ob.vars[obj] {
					delete(st.obs, pos)
					return true
				}
			}
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base := baseIdent(sel.X)
	if base == nil {
		return false
	}
	obj := info.ObjectOf(base)
	if obj == nil {
		return false
	}
	released := false
	for pos, ob := range st.obs {
		if !ob.vars[obj] {
			continue
		}
		for _, r := range ob.release {
			if r == sel.Sel.Name {
				delete(st.obs, pos)
				released = true
				break
			}
		}
	}
	return released
}

// dischargeIdents removes every obligation aliased by an identifier
// appearing in the subtree — the blunt instrument behind "sent away,
// captured, stored, returned".
func (m *closer) dischargeIdents(n ast.Node, st *closeState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok {
			return true
		}
		obj := m.p.pkg.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		for pos, ob := range st.obs {
			if ob.vars[obj] {
				delete(st.obs, pos)
			}
		}
		return true
	})
}

// acquireRule matches a call against the acquire table.
func (m *closer) acquireRule(call *ast.CallExpr) (Resource, string, bool) {
	name := calleeName(m.p.pkg.Info, call)
	if name == "" {
		return Resource{}, "", false
	}
	rule, ok := m.p.cfg.Resources[name]
	return rule, name, ok
}

// applyEdge refines obligations along conditional edges: a non-nil error
// or a nil resource kills the acquire's obligation on that path.
func (m *closer) applyEdge(e cfg.Edge, st *closeState) {
	if e.Kind != cfg.CondTrue && e.Kind != cfg.CondFalse {
		return
	}
	bin, ok := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return
	}
	var id *ast.Ident
	switch {
	case isNilIdent(bin.Y):
		id, _ = ast.Unparen(bin.X).(*ast.Ident)
	case isNilIdent(bin.X):
		id, _ = ast.Unparen(bin.Y).(*ast.Ident)
	}
	if id == nil {
		return
	}
	obj := m.p.pkg.Info.ObjectOf(id)
	if obj == nil {
		return
	}
	truth := e.Kind == cfg.CondTrue
	varIsNil := (bin.Op == token.EQL) == truth
	for pos, ob := range st.obs {
		if varIsNil && ob.vars[obj] {
			delete(st.obs, pos) // the resource is nil here: nothing to release
		}
		if !varIsNil && ob.errObj != nil && ob.errObj == obj {
			delete(st.obs, pos) // err != nil: the acquire failed
		}
	}
}

func tracked(st *closeState, obj types.Object) bool {
	for _, ob := range st.obs {
		if ob.vars[obj] {
			return true
		}
	}
	return false
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return info.ObjectOf(id)
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
