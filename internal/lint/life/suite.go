package life

// The project lifecycle policy: which packages live long enough to leak,
// what acquires, what parks, and who takes ownership. This is the single
// place the tables live; cmd/verrolint -life and the incremental driver
// both consume it, and the fixture runner extends ServicePkgs with the
// fixture package under test.

// ProjectAnalyzers returns the lifecycle suite in reporting order.
func ProjectAnalyzers() []*Analyzer {
	return []*Analyzer{NewGoLeak(), NewMustClose(), NewLockOrder(), NewCtxFlow()}
}

// ProjectConfig returns the lifecycle policy for the verrod service arc.
//
// Notable absences are deliberate: par.NewPool is not a resource (pools
// spawn workers per For call and hold no goroutines or fds between
// calls, so there is nothing to release), and vid.NewWriter/NewReader
// wrap caller-owned io.Writer/Reader values rather than acquiring.
func ProjectConfig() *Config {
	return &Config{
		ServicePkgs: []string{
			"verro/cmd/verrod",
			"verro/internal/server",
			"verro/internal/store",
			"verro/internal/stream",
			"verro/internal/vid",
			"verro/internal/obs",
		},
		Resources: map[string]Resource{
			// Files and sockets.
			"os.Open":       {Kind: "file", Result: 0, Release: []string{"Close"}},
			"os.Create":     {Kind: "file", Result: 0, Release: []string{"Close"}},
			"os.OpenFile":   {Kind: "file", Result: 0, Release: []string{"Close"}},
			"os.CreateTemp": {Kind: "temp file", Result: 0, Release: []string{"Close"}},
			"net.Listen":    {Kind: "listener", Result: 0, Release: []string{"Close"}},

			// HTTP responses: the obligation is on the response, released
			// through its Body (resp.Body.Close reaches it by selector
			// chain — baseIdent resolves to resp).
			"net/http.Get":         {Kind: "http response", Result: 0, Release: []string{"Close"}},
			"(net/http.Client).Do": {Kind: "http response", Result: 0, Release: []string{"Close"}},

			// Timers park goroutines until stopped.
			"time.NewTicker": {Kind: "ticker", Result: 0, Release: []string{"Stop"}},
			"time.NewTimer":  {Kind: "timer", Result: 0, Release: []string{"Stop"}},

			// Context cancel funcs: dropping one leaks the context's timer
			// and keeps the parent's children list growing.
			"context.WithCancel":   {Kind: "cancel func", Result: 1, CallRelease: true},
			"context.WithTimeout":  {Kind: "cancel func", Result: 1, CallRelease: true},
			"context.WithDeadline": {Kind: "cancel func", Result: 1, CallRelease: true},

			// The project's own file-backed handles.
			"verro/internal/vid.OpenFileSource": {Kind: "clip source", Result: 0, Release: []string{"Close"}},
			"verro/internal/vid.CreateFileSink": {Kind: "clip sink", Result: 0, Release: []string{"Close"}},
			"verro/internal/vid.OpenRawStore":   {Kind: "raw store", Result: 0, Release: []string{"Close"}},
			"verro/internal/vid.CreateRawStore": {Kind: "raw store", Result: 0, Release: []string{"Close"}},
		},
		Blocking: map[string]bool{
			// Writes to a client can stall for as long as the peer likes.
			"(net/http.ResponseWriter).Write":  true,
			"(net/http.Flusher).Flush":         true,
			"io.Copy":                          true,
			"(net.Listener).Accept":            true,
			"(net/http.Server).Serve":          true,
			"(net/http.Server).ListenAndServe": true,
			"net/http.Serve":                   true,
			"time.Sleep":                       true,
		},
		Owners: map[string][]int{
			// Serve closes the listener it is handed when the server shuts
			// down; handing it over discharges the obligation.
			"(net/http.Server).Serve": {0},
			"net/http.Serve":          {0},
		},
	}
}
