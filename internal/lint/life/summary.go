package life

// Per-function lifecycle summaries and their bottom-up fixpoint. A
// Summary is the caller-visible lifecycle behavior of one function: may
// it park the goroutine, may it never return, which parameters does it
// take ownership of, and which (package-global) locks does it acquire.
// The facts are deliberately coarse — four small fields — because they
// exist to answer the analyzers' cross-call questions, not to model the
// heap: goleak asks Diverges of a `go` statement's callee, mustclose
// asks Owns when a live resource is passed away, lockorder asks Blocks
// and Locks of calls made under a held mutex.
//
// All facts grow monotonically (false→true, sets grow), so iterating the
// summarizer in sorted name order converges; maxRounds is a safety net
// the call-graph depth never approaches.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"verro/internal/lint"
	"verro/internal/lint/cfg"
)

const maxRounds = 10

// Summary is the serialized lifecycle behavior of one function, stable
// enough to write into the incremental fact cache.
type Summary struct {
	// Blocks: the function may park its goroutine indefinitely — a
	// channel send/receive, a select without default, a Cond/WaitGroup
	// wait, or a call to something that does.
	Blocks bool `json:"blocks,omitempty"`
	// Diverges: the function contains an unconditional loop (or empty
	// select) with no reachable exit, or unconditionally calls one.
	Diverges bool `json:"diverges,omitempty"`
	// Owns lists parameter indices the function takes ownership of:
	// it releases them, stores them, sends them, or returns them.
	Owns []int `json:"owns,omitempty"`
	// Locks lists package-global lock IDs the function may acquire,
	// directly or through callees.
	Locks []string `json:"locks,omitempty"`
}

func (s *Summary) owns(i int) bool {
	for _, o := range s.Owns {
		if o == i {
			return true
		}
	}
	return false
}

func equalSummary(a, b *Summary) bool {
	if a.Blocks != b.Blocks || a.Diverges != b.Diverges {
		return false
	}
	if len(a.Owns) != len(b.Owns) || len(a.Locks) != len(b.Locks) {
		return false
	}
	for i := range a.Owns {
		if a.Owns[i] != b.Owns[i] {
			return false
		}
	}
	for i := range a.Locks {
		if a.Locks[i] != b.Locks[i] {
			return false
		}
	}
	return true
}

// Summaries converges the lifecycle summaries of every function declared
// in pkgs, resolving calls into already-analyzed dependencies through
// base. Summaries are computed for every package — not just service
// ones — so service code calling library code sees its facts.
func Summaries(pkgs []*lint.Package, cfg *Config, base map[string]*Summary) map[string]*Summary {
	type decl struct {
		pkg *lint.Package
		fd  *ast.FuncDecl
	}
	funcs := map[string]decl{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				funcs[normName(obj)] = decl{pkg: pkg, fd: fd}
			}
		}
	}
	names := sortedNames(funcs)
	sums := make(map[string]*Summary, len(funcs))
	for _, name := range names {
		sums[name] = &Summary{}
	}
	look := func(n string) *Summary {
		if s, ok := sums[n]; ok {
			return s
		}
		return base[n]
	}
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, name := range names {
			d := funcs[name]
			s, _ := summarizeBody(d.pkg, cfg, look, d.fd.Body, paramIndex(d.pkg, d.fd.Type))
			if !equalSummary(sums[name], s) {
				sums[name] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

// paramIndex maps the function's parameter objects to their positional
// indices (receivers are not parameters here; release methods discharge
// receiver state directly at call sites).
func paramIndex(pkg *lint.Package, ft *ast.FuncType) map[types.Object]int {
	m := map[types.Object]int{}
	if ft.Params == nil {
		return m
	}
	i := 0
	for _, f := range ft.Params.List {
		if len(f.Names) == 0 {
			i++
			continue
		}
		for _, n := range f.Names {
			if obj := pkg.Info.ObjectOf(n); obj != nil {
				m[obj] = i
			}
			i++
		}
	}
	return m
}

// summarizeBody computes one body's summary. The second result is the
// position of the first unconditional loop with no exit, for goleak's
// diagnostics on function literals; it is token.NoPos when the body only
// diverges through callees.
func summarizeBody(pkg *lint.Package, cfg *Config, look func(string) *Summary, body *ast.BlockStmt, params map[types.Object]int) (*Summary, token.Pos) {
	w := &sumWalker{
		pkg:    pkg,
		cfg:    cfg,
		look:   look,
		params: params,
		owns:   map[int]bool{},
		locks:  map[string]bool{},
		sum:    &Summary{},
	}
	w.scan(body, false)
	var owns []int
	for i := range w.owns {
		owns = append(owns, i)
	}
	sort.Ints(owns)
	w.sum.Owns = owns
	w.sum.Locks = sortedNames(w.locks)
	if len(w.sum.Locks) == 0 {
		w.sum.Locks = nil
	}
	return w.sum, w.loopPos
}

type sumWalker struct {
	pkg    *lint.Package
	cfg    *Config
	look   func(string) *Summary
	params map[types.Object]int

	sum     *Summary
	owns    map[int]bool
	locks   map[string]bool
	loopPos token.Pos
}

func (w *sumWalker) noteLoop(pos token.Pos) {
	if !w.loopPos.IsValid() {
		w.loopPos = pos
	}
}

// markOwns records ownership transfer of any parameter identifier
// appearing in e.
func (w *sumWalker) markOwns(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.pkg.Info.ObjectOf(id); obj != nil {
				if i, ok := w.params[obj]; ok {
					w.owns[i] = true
				}
			}
		}
		return true
	})
}

// scan walks a subtree. With ownsOnly the walk records only ownership
// transfer (the subtree runs on another goroutine or in an uninvoked
// closure, so its parks and loops are not this function's behavior).
func (w *sumWalker) scan(n ast.Node, ownsOnly bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch x := c.(type) {
		case *ast.GoStmt:
			// The spawned body is not caller behavior; captured/passed
			// parameters move to the goroutine.
			w.markOwns(x.Call.Fun)
			for _, a := range x.Call.Args {
				w.markOwns(a)
			}
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				w.scan(lit.Body, true)
			}
			return false

		case *ast.DeferStmt:
			// Deferred work runs on this goroutine at exit.
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				w.scan(lit.Body, ownsOnly)
			} else {
				w.call(x.Call, ownsOnly)
			}
			for _, a := range x.Call.Args {
				w.scan(a, ownsOnly)
			}
			return false

		case *ast.FuncLit:
			// A bare literal (not deferred, not go'd, not immediately
			// invoked) only captures; its body runs who-knows-where.
			w.scan(x.Body, true)
			return false

		case *ast.CallExpr:
			if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				// Immediately-invoked literal runs inline.
				w.scan(lit.Body, ownsOnly)
			} else {
				w.call(x, ownsOnly)
				// Chained calls hide in the callee chain (a().b()).
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					w.scan(sel.X, ownsOnly)
				}
			}
			for _, a := range x.Args {
				w.scan(a, ownsOnly)
			}
			return false

		case *ast.SelectStmt:
			if !ownsOnly {
				if len(x.Body.List) == 0 {
					w.sum.Diverges = true
					w.noteLoop(x.Pos())
				}
				hasDefault := false
				for _, cc := range x.Body.List {
					if cc.(*ast.CommClause).Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault && len(x.Body.List) > 0 {
					w.sum.Blocks = true
				}
			}
			// The comm operations belong to the select (accounted above);
			// scan their operands and the clause bodies.
			for _, cc := range x.Body.List {
				cc := cc.(*ast.CommClause)
				w.scanComm(cc.Comm, ownsOnly)
				for _, s := range cc.Body {
					w.scan(s, ownsOnly)
				}
			}
			return false

		case *ast.SendStmt:
			if !ownsOnly {
				w.sum.Blocks = true
			}
			w.markOwns(x.Value)
			w.scan(x.Chan, ownsOnly)
			w.scan(x.Value, ownsOnly)
			return false

		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !ownsOnly {
				w.sum.Blocks = true
			}
			return true

		case *ast.ForStmt:
			if x.Cond == nil && !ownsOnly {
				if !loopExits(x.Body, nil) {
					w.sum.Diverges = true
					w.noteLoop(x.Pos())
				}
			}
			return true

		case *ast.LabeledStmt:
			if loop, ok := x.Stmt.(*ast.ForStmt); ok && loop.Cond == nil && !ownsOnly {
				if !loopExits(loop.Body, x.Label) {
					w.sum.Diverges = true
					w.noteLoop(loop.Pos())
				}
				// The ForStmt case will re-test without the label and may
				// wrongly conclude no-exit on `L: for { break L }`; scan
				// children here and skip the generic descent.
				w.scan(loop.Body, ownsOnly)
				if loop.Init != nil {
					w.scan(loop.Init, ownsOnly)
				}
				if loop.Post != nil {
					w.scan(loop.Post, ownsOnly)
				}
				return false
			}
			return true

		case *ast.CompositeLit:
			for _, el := range x.Elts {
				w.markOwns(el)
			}
			return true

		case *ast.AssignStmt:
			// A store through a selector/index (heap-shaped LHS) or to a
			// package-level variable transfers ownership of parameters on
			// the RHS.
			heap := false
			for _, l := range x.Lhs {
				switch lhs := ast.Unparen(l).(type) {
				case *ast.Ident:
					if obj := w.pkg.Info.ObjectOf(lhs); obj != nil && obj.Pkg() != nil &&
						obj.Parent() == obj.Pkg().Scope() {
						heap = true
					}
				default:
					heap = true
				}
			}
			if heap {
				for _, r := range x.Rhs {
					w.markOwns(r)
				}
			}
			return true

		case *ast.ReturnStmt:
			for _, r := range x.Results {
				w.markOwns(r)
			}
			return true
		}
		return true
	})
}

// scanComm scans a select comm statement's operands without counting the
// comm itself as an independent blocking operation.
func (w *sumWalker) scanComm(comm ast.Stmt, ownsOnly bool) {
	switch s := comm.(type) {
	case nil:
	case *ast.SendStmt:
		w.markOwns(s.Value)
		w.scan(s.Chan, ownsOnly)
		w.scan(s.Value, ownsOnly)
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			w.scan(u.X, ownsOnly)
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				w.scan(u.X, ownsOnly)
			}
		}
	}
}

// call folds one resolved call's behavior into the summary.
func (w *sumWalker) call(call *ast.CallExpr, ownsOnly bool) {
	info := w.pkg.Info
	name := calleeName(info, call)
	if !ownsOnly && name != "" {
		if w.cfg.Blocking[name] {
			w.sum.Blocks = true
		}
		switch name {
		case "(sync.Cond).Wait", "(sync.WaitGroup).Wait":
			w.sum.Blocks = true
		}
		if s := w.look(name); s != nil {
			if s.Blocks {
				w.sum.Blocks = true
			}
			if s.Diverges {
				w.sum.Diverges = true
			}
			for _, l := range s.Locks {
				w.locks[l] = true
			}
		}
		if op, ok := mutexOp(name); ok && (op == "Lock" || op == "RLock") {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if id, global := lockIdent(w.pkg, sel.X); global {
					w.locks[id] = true
				}
			}
		}
	}

	// Ownership: parameters passed to an owning callee or through append.
	var calleeOwns []int
	if name != "" {
		calleeOwns = w.cfg.Owners[name]
		if s := w.look(name); s != nil {
			calleeOwns = append(calleeOwns, s.Owns...)
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && info.Uses[id] == types.Universe.Lookup("append") {
		for _, a := range call.Args[1:] {
			w.markOwns(a)
		}
	}
	for i, a := range call.Args {
		aid, ok := ast.Unparen(a).(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.ObjectOf(aid)
		if obj == nil {
			continue
		}
		pi, isParam := w.params[obj]
		if !isParam {
			continue
		}
		for _, oi := range calleeOwns {
			if oi == i {
				w.owns[pi] = true
			}
		}
	}

	// Release method invoked on a parameter (p.Close(), resp.Body.Close()).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isReleaseName(sel.Sel.Name) {
		if base := baseIdent(sel.X); base != nil {
			if obj := info.ObjectOf(base); obj != nil {
				if pi, ok := w.params[obj]; ok {
					w.owns[pi] = true
				}
			}
		}
	}
	// A parameter that is itself called discharges CallRelease resources.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			if pi, ok := w.params[obj]; ok {
				w.owns[pi] = true
			}
		}
	}
}

// isReleaseName reports whether a method name discharges a resource.
func isReleaseName(name string) bool {
	switch name {
	case "Close", "Stop", "Shutdown":
		return true
	}
	return false
}

// mutexOp maps a normalized callee name to its sync lock operation.
func mutexOp(name string) (op string, ok bool) {
	switch name {
	case "(sync.Mutex).Lock", "(sync.RWMutex).Lock":
		return "Lock", true
	case "(sync.RWMutex).RLock":
		return "RLock", true
	case "(sync.Mutex).Unlock", "(sync.RWMutex).Unlock":
		return "Unlock", true
	case "(sync.RWMutex).RUnlock":
		return "RUnlock", true
	}
	return "", false
}

// lockIdent names the mutex an expression denotes. Field mutexes are
// identified by their owning named type ("(pkg.Type).mu" — every instance
// shares one rank), package-level mutexes by qualified name; both are
// global (comparable across functions). Function-local mutexes get a
// local name and participate only in held-set tracking, never in
// cross-function rank edges.
func lockIdent(pkg *lint.Package, e ast.Expr) (id string, global bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		t := pkg.Info.TypeOf(x.X)
		for {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
				continue
			}
			break
		}
		if n, ok := t.(*types.Named); ok {
			obj := n.Obj()
			qual := obj.Name()
			if obj.Pkg() != nil {
				qual = obj.Pkg().Path() + "." + qual
			}
			return "(" + qual + ")." + x.Sel.Name, true
		}
		return x.Sel.Name, false
	case *ast.Ident:
		if obj := pkg.Info.ObjectOf(x); obj != nil && obj.Pkg() != nil &&
			obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + x.Name, true
		}
		return "local " + x.Name, false
	}
	return "?", false
}

// loopExits reports whether an unconditional loop's body can leave the
// loop: a return, a break reaching this loop, a goto, or a no-return
// call. The classic bug this catches is `for { select { case <-done:
// break } }` — that break exits the select, not the loop.
func loopExits(body *ast.BlockStmt, label *ast.Ident) bool {
	inner := map[string]bool{}
	var stmtExits func(s ast.Stmt, depth int) bool
	listExits := func(list []ast.Stmt, depth int) bool {
		for _, s := range list {
			if stmtExits(s, depth) {
				return true
			}
		}
		return false
	}
	stmtExits = func(s ast.Stmt, depth int) bool {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BranchStmt:
			switch s.Tok {
			case token.BREAK:
				if s.Label == nil {
					return depth == 0
				}
				if label != nil && s.Label.Name == label.Name {
					return true
				}
				// A labeled break whose target is not nested inside this
				// loop exits through it.
				return !inner[s.Label.Name]
			case token.GOTO:
				return true // target may be outside; optimistic
			}
			return false
		case *ast.ExprStmt:
			return cfg.IsNoReturnCall(s.X)
		case *ast.BlockStmt:
			return listExits(s.List, depth)
		case *ast.IfStmt:
			if listExits(s.Body.List, depth) {
				return true
			}
			if s.Else != nil {
				return stmtExits(s.Else, depth)
			}
			return false
		case *ast.ForStmt:
			return listExits(s.Body.List, depth+1)
		case *ast.RangeStmt:
			return listExits(s.Body.List, depth+1)
		case *ast.SwitchStmt:
			for _, cc := range s.Body.List {
				if listExits(cc.(*ast.CaseClause).Body, depth+1) {
					return true
				}
			}
			return false
		case *ast.TypeSwitchStmt:
			for _, cc := range s.Body.List {
				if listExits(cc.(*ast.CaseClause).Body, depth+1) {
					return true
				}
			}
			return false
		case *ast.SelectStmt:
			for _, cc := range s.Body.List {
				if listExits(cc.(*ast.CommClause).Body, depth+1) {
					return true
				}
			}
			return false
		case *ast.LabeledStmt:
			inner[s.Label.Name] = true
			return stmtExits(s.Stmt, depth)
		}
		return false
	}
	return listExits(body.List, 0)
}
