// Package ctxflow is the fixture for the request-cancellation analyzer:
// handler-reachable code must not sever the request context or park on
// channels with no cancellation path.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

type srv struct {
	jobs chan string
}

// Handle severs cancellation twice and reaches park through a helper.
func (s *srv) Handle(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "context.Background in request scope severs cancellation"
	_ = ctx
	time.Sleep(time.Millisecond) // want "time.Sleep in request scope cannot be cancelled"
	s.park(r)
}

// park is request scope by reachability (and by its own request param).
func (s *srv) park(r *http.Request) {
	v := <-s.jobs // want "channel receive in request scope has no cancellation path"
	_ = v
	s.jobs <- r.URL.Path // want "channel send in request scope has no cancellation path"
	select {             // want "select in request scope has no default and no cancellation case"
	case v := <-s.jobs:
		_ = v
	}
}

// OK shows the accepted shapes: a Done case makes the wait cancellable,
// a default makes the send non-blocking.
func (s *srv) OK(w http.ResponseWriter, r *http.Request) {
	select {
	case v := <-s.jobs:
		_ = v
	case <-r.Context().Done():
	}
	select {
	case s.jobs <- r.URL.Path:
	default:
	}
}

// notRequestScope is unreachable from any handler; its bare receive is
// not a finding.
func notRequestScope(c chan int) int {
	return <-c
}

var _ = notRequestScope
