// Package goleak is the fixture for the goleak analyzer: goroutines with
// no provable termination path are findings; return, labeled break,
// close-signaled range, and no-return calls are accepted evidence.
package goleak

import "time"

func spin() {
	for {
	}
}

// Leak spawns a named callee whose converged summary diverges.
func Leak() {
	go spin() // want "goroutine never terminates: .*spin contains an unconditional loop"
}

// LeakLit is the classic shape: the break exits the select, not the loop.
func LeakLit(done chan struct{}) {
	go func() {
		for { // want "goroutine never terminates: unconditional loop with no return, break, or close-signaled exit"
			select {
			case <-done:
				break
			case <-time.After(time.Millisecond):
			}
		}
	}()
}

// OKReturn terminates through the done case.
func OKReturn(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
}

// OKRange terminates when the channel is closed.
func OKRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// OKLabeled terminates through the labeled break.
func OKLabeled(done chan struct{}) {
	go func() {
	loop:
		for {
			select {
			case <-done:
				break loop
			case <-time.After(time.Millisecond):
			}
		}
	}()
}

// OKCond loops under an explicit condition; bounded by assumption.
func OKCond(n int) {
	go func() {
		for i := 0; i < n; i++ {
		}
	}()
}
