// Package lockorder is the fixture for the lock-discipline analyzer:
// self-deadlocks, parks under a held lock, and package-wide lock-order
// inversions.
package lockorder

import "sync"

var a sync.Mutex
var b sync.Mutex

type reg struct {
	mu   sync.Mutex
	subs []chan int
}

// SelfDeadlock reacquires a held, non-reentrant mutex.
func SelfDeadlock() {
	a.Lock()
	a.Lock() // want "acquired while already held"
	a.Unlock()
	a.Unlock()
}

// InversionAB takes a then b; InversionBA takes b then a. One edge of
// the cycle is reported, at the first acquisition in rank order.
func InversionAB() {
	a.Lock()
	b.Lock() // want "opposite order also occurs"
	b.Unlock()
	a.Unlock()
}

func InversionBA() {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}

func lockA() {
	a.Lock()
	a.Unlock()
}

// NestedSelf deadlocks through a callee whose summary takes the lock.
func NestedSelf() {
	a.Lock()
	lockA() // want "already held"
	a.Unlock()
}

// Publish is the SSE-fanout shape: an unbuffered send to a subscriber
// while holding the registry lock wedges every caller of the registry.
func (r *reg) Publish(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ch := range r.subs {
		ch <- v // want "channel send while holding"
	}
}

// WaitUnder parks on a WaitGroup while holding the lock.
func (r *reg) WaitUnder(wg *sync.WaitGroup) {
	r.mu.Lock()
	wg.Wait() // want "may block while holding"
	r.mu.Unlock()
}

// ParkSelect selects with no default while holding the lock.
func (r *reg) ParkSelect(ch chan int, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select { // want "select without default while holding"
	case ch <- v:
	}
}

// OKTrySend is the fix: the default clause makes the send non-blocking.
func (r *reg) OKTrySend(ch chan int, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case ch <- v:
	default:
	}
}

// OKSnapshot copies under the lock and sends after releasing it.
func (r *reg) OKSnapshot(v int) {
	r.mu.Lock()
	subs := append([]chan int(nil), r.subs...)
	r.mu.Unlock()
	for _, ch := range subs {
		ch <- v
	}
}

// OKNested takes a then b everywhere else too: consistent order, no
// report.
var c sync.Mutex
var d sync.Mutex

func OKNested() {
	c.Lock()
	d.Lock()
	d.Unlock()
	c.Unlock()
}

func OKNestedAgain() {
	c.Lock()
	d.Lock()
	d.Unlock()
	c.Unlock()
}
