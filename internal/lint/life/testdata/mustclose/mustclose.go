// Package mustclose is the fixture for the must-release analyzer:
// acquires must be closed, deferred, or ownership-transferred on every
// CFG path; error branches kill the obligation on the failure path.
package mustclose

import (
	"context"
	"os"
)

type holder struct {
	f *os.File
}

// Leak closes on one path but returns early on another.
func Leak(path string) error {
	f, err := os.Open(path) // want "file from os.Open is not released on every path"
	if err != nil {
		return err
	}
	if len(path) > 7 {
		return nil
	}
	f.Close()
	return nil
}

// Discard throws the handle away at the acquire site.
func Discard(path string) {
	_, _ = os.Open(path) // want "file from os.Open is discarded"
}

// Overwrite drops the first handle by rebinding its only variable.
func Overwrite(a, b string) {
	f, _ := os.Open(a) // want "file from os.Open is overwritten while still unreleased"
	f, _ = os.Open(b)
	f.Close()
}

// LeakCancel calls cancel on one path only.
func LeakCancel(ctx context.Context, cond bool) {
	_, cancel := context.WithCancel(ctx) // want "cancel func from context.WithCancel is not called on every path"
	if cond {
		cancel()
	}
}

// OKDefer is the idiom: acquire, check the error, defer the release.
func OKDefer(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

// OKCancel defers the cancel at the acquire site.
func OKCancel(parent context.Context) context.Context {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	return ctx
}

// OKTransfer moves the handle into a returned struct.
func OKTransfer(path string) (*holder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &holder{f: f}, nil
}

func take(f *os.File) {
	f.Close()
}

// OKHandoff passes the handle to a callee whose summary owns it.
func OKHandoff(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	take(f)
	return nil
}

// OKNilCheck releases only on the non-nil path; the nil edge kills the
// obligation.
func OKNilCheck(path string) {
	f, _ := os.Open(path)
	if f != nil {
		f.Close()
	}
}

// OKCheckedClose is the atomic-write idiom: the release happens in an
// if-init assignment so its error can be checked.
func OKCheckedClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}
