// Package lint is VERRO's stdlib-only static-analysis framework. It exists
// because the project's load-bearing invariants — seeded runs are
// bit-identical at any worker count, tracing is observational-only, and the
// ε-indistinguishability math never silently degrades — are invisible to the
// compiler and were previously guarded only by equivalence tests that catch
// violations after they ship. The framework loads a package per directory
// with go/parser, type-checks it with go/types (source importer, so no
// x/tools dependency), and runs a set of Analyzers over the typed syntax,
// producing position-tagged diagnostics.
//
// Suppression is explicit and grep-able: a `//lint:allow <analyzer>` comment
// (see directive.go for the grammar) silences one analyzer on its own line
// and on the line directly below, so every intentional exception carries an
// annotation at the call site.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Run inspects the typed package in
// the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is the one-line invariant the analyzer encodes.
	Doc string
	// Match, when non-nil, restricts the analyzer to packages whose import
	// path it accepts. A nil Match runs everywhere.
	Match func(pkgPath string) bool
	// Run performs the check.
	Run func(*Pass)
}

// Diagnostic is one finding: where, which analyzer, and what.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	allow *AllowIndex
	sink  *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a //lint:allow directive for
// this analyzer covers the position's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow.Allows(p.Analyzer.Name, position) {
		return
	}
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-safe shorthand for the expression's type (nil when the
// checker could not infer one).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// PkgNameOf resolves the identifier to the imported package it names, or ""
// when it is not a package qualifier. This is how analyzers match
// `rand.Intn` to math/rand regardless of import renaming.
func (p *Pass) PkgNameOf(id *ast.Ident) string {
	if p.Info == nil {
		return ""
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// CalleeOf returns the imported package path and selector name of a call's
// target when the call has the form pkg.Func(...); ok is false otherwise.
func (p *Pass) CalleeOf(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	path := p.PkgNameOf(id)
	if path == "" {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// Run executes the analyzers over the package and returns their combined
// diagnostics sorted by position. Analyzers whose Match rejects the package
// path are skipped.
func Run(pkg *Package, analyzers ...*Analyzer) []Diagnostic {
	var diags []Diagnostic
	allow := pkg.Allow()
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			allow:    allow,
			sink:     &diags,
		}
		a.Run(pass)
	}
	Sort(diags)
	return diags
}

// Sort orders diagnostics by file, line, column, and analyzer — the stable
// output order every driver (lint.Run, the flow engine, cmd/verrolint)
// presents.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
