package lint

import (
	"strings"
	"testing"
)

// One fixture per analyzer; each fixture contains at least one flagged line
// (asserted by a want comment) and one //lint:allow-suppressed line
// (asserted by the absence of a want comment — an unexpected diagnostic
// there fails the fixture).
func TestDetRandFixture(t *testing.T)   { RunFixture(t, "testdata/detrand", NewDetRand()) }
func TestWallTimeFixture(t *testing.T)  { RunFixture(t, "testdata/walltime", NewWallTime()) }
func TestMapOrderFixture(t *testing.T)  { RunFixture(t, "testdata/maporder", NewMapOrder()) }
func TestFloatEqFixture(t *testing.T)   { RunFixture(t, "testdata/floateq", NewFloatEq()) }
func TestPanicFreeFixture(t *testing.T) { RunFixture(t, "testdata/panicfree", NewPanicFree()) }

// TestProjectSuite pins the suite's composition: five analyzers, each
// resolvable by name, with the package scoping DESIGN.md §2d documents.
func TestProjectSuite(t *testing.T) {
	suite := ProjectAnalyzers()
	if len(suite) != 5 {
		t.Fatalf("suite has %d analyzers, want 5", len(suite))
	}
	for _, name := range []string{"detrand", "walltime", "maporder", "floateq", "panicfree"} {
		a := ByName(name)
		if a == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of unknown analyzer should be nil")
	}

	cases := []struct {
		analyzer, pkg string
		want          bool
	}{
		{"walltime", "verro/internal/obs", false},
		{"walltime", "verro/internal/par", false},
		{"walltime", "verro/internal/core", true},
		{"floateq", "verro/internal/ldp", true},
		{"floateq", "verro/internal/lp", true},
		{"floateq", "verro/internal/vid", false},
		{"panicfree", "verro/internal/motio", true},
		{"panicfree", "verro/cmd/verro", false},
	}
	for _, c := range cases {
		a := ByName(c.analyzer)
		got := a.Match == nil || a.Match(c.pkg)
		if got != c.want {
			t.Errorf("%s.Match(%q) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
	// Unscoped analyzers run everywhere.
	for _, name := range []string{"detrand", "maporder"} {
		if ByName(name).Match != nil {
			t.Errorf("%s should run in every package", name)
		}
	}
}

// TestRunOverOwnPackage smoke-tests the loader + runner over this package:
// internal/lint must be clean under its own suite.
func TestRunOverOwnPackage(t *testing.T) {
	l := NewLoader()
	pkg, err := l.Load(".")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "verro/internal/lint" {
		t.Fatalf("import path = %q, want verro/internal/lint", pkg.Path)
	}
	if diags := Run(pkg, ProjectAnalyzers()...); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected: %s", d)
		}
	}
}

// TestDiagnosticString pins the human-readable diagnostic format the CLI
// prints.
func TestDiagnosticString(t *testing.T) {
	l := NewLoader()
	pkg, err := l.Load("testdata/floateq")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkg, NewFloatEq())
	if len(diags) == 0 {
		t.Fatal("no diagnostics from floateq fixture")
	}
	s := diags[0].String()
	if !strings.Contains(s, "testdata/floateq/floateq.go:") || !strings.Contains(s, "(floateq)") {
		t.Errorf("diagnostic format %q missing file position or analyzer tag", s)
	}
}
