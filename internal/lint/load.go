package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package directory.
type Package struct {
	// Dir is the directory the package was loaded from.
	Dir string
	// Path is the package's import path ("verro/internal/core"), or a
	// fixture placeholder when the directory is outside a module.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	allow *AllowIndex
}

// Allow returns the package's //lint:allow index, built on first use and
// shared by every suite that analyzes the package — sharing is what lets
// suppression hits accumulate across suites so StaleAllows sees the whole
// run. Not concurrency-safe; drivers analyze one package from one
// goroutine at a time.
func (p *Package) Allow() *AllowIndex {
	if p.allow == nil {
		p.allow = BuildAllowIndex(p.Fset, p.Files)
	}
	return p.allow
}

// Loader parses and type-checks package directories. It shares one FileSet
// and one source importer across Load calls, so dependencies are
// type-checked once per Loader rather than once per importing package.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
	// IncludeTests makes Load parse _test.go files as well. The in-package
	// test files join the package; black-box _test packages are skipped
	// (they only exercise the public API and hold no pipeline code).
	IncludeTests bool
}

// NewLoader returns a loader backed by the stdlib source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Fset exposes the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses every .go file in dir (non-recursively, mirroring a Go
// package) and type-checks the result. Type errors are tolerated — the
// analyzers work from whatever type information survives — but parse errors
// fail the load, since analyzers need complete syntax.
func (l *Loader) Load(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	byPkg := map[string][]*ast.File{}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		byPkg[f.Name.Name] = append(byPkg[f.Name.Name], f)
	}
	// A directory can hold the package plus its black-box _test package;
	// analyze the non-_test one.
	var files []*ast.File
	var pkgName string
	for name, fs := range byPkg {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		if pkgName != "" {
			return nil, fmt.Errorf("lint: multiple packages %q and %q in %s", pkgName, name, dir)
		}
		pkgName, files = name, fs
	}
	if pkgName == "" {
		return nil, fmt.Errorf("lint: only test packages in %s", dir)
	}

	path := importPath(dir, pkgName)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l.imp,
		// Collect-and-continue: analyzers run on best-effort type info.
		Error: func(error) {},
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	return &Package{Dir: dir, Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// DirImportPath derives the import path a Load of dir would assign, without
// parsing anything: module path + the directory's location under the go.mod
// root. Directories outside any module (fixtures) fall back to the base
// directory name. The incremental driver uses this to build the package
// dependency graph before deciding what actually needs loading.
func DirImportPath(dir string) string {
	return importPath(dir, filepath.Base(dir))
}

// importPath derives the package's import path from the enclosing module:
// module path + the directory's location under the go.mod root. Directories
// outside any module (lint fixtures) fall back to the package name.
func importPath(dir, pkgName string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return pkgName
	}
	root := abs
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			if mod := modulePath(data); mod != "" {
				rel, err := filepath.Rel(root, abs)
				if err != nil || rel == "." {
					return mod
				}
				return mod + "/" + filepath.ToSlash(rel)
			}
		}
		parent := filepath.Dir(root)
		if parent == root {
			return pkgName
		}
		root = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			return strings.Trim(rest, `"`)
		}
	}
	return ""
}
