package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewMapOrder builds the maporder analyzer: Go randomizes map iteration
// order per range statement, so a `range` over a map whose body does
// order-sensitive work — appending to a slice, accumulating floats (float
// addition does not commute at the bit level), or writing output — produces
// different bytes on every run and breaks bit-identical replay. The
// sanctioned pattern is a sorted-keys preamble; the analyzer recognizes the
// equivalent collect-then-sort idiom (append inside the loop, sort of the
// same slice after the loop — including after an enclosing loop) and stays
// quiet there.
func NewMapOrder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "forbid order-sensitive work inside range-over-map; iterate sorted keys",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkBlock(pass, fd.Body.List, nil)
				}
			}
		}
	}
	return a
}

// checkBlock walks the statements of one block. follow carries the
// statements that execute after the block — the continuation — so a sort
// following an enclosing loop still counts as the sorted-after idiom for an
// append nested inside it.
func checkBlock(pass *Pass, stmts []ast.Stmt, follow []ast.Stmt) {
	for i, stmt := range stmts {
		rest := make([]ast.Stmt, 0, len(stmts)-i-1+len(follow))
		rest = append(rest, stmts[i+1:]...)
		rest = append(rest, follow...)
		checkStmt(pass, stmt, rest)
	}
}

func checkStmt(pass *Pass, stmt ast.Stmt, follow []ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.LabeledStmt:
		checkStmt(pass, s.Stmt, follow)
	case *ast.RangeStmt:
		if isMapRange(pass, s) {
			checkMapRange(pass, s, follow)
		} else {
			checkBlock(pass, s.Body.List, follow)
		}
	case *ast.ForStmt:
		checkBlock(pass, s.Body.List, follow)
	case *ast.IfStmt:
		checkBlock(pass, s.Body.List, follow)
		if s.Else != nil {
			checkStmt(pass, s.Else, follow)
		}
	case *ast.BlockStmt:
		checkBlock(pass, s.List, follow)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				checkBlock(pass, cc.Body, follow)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				checkBlock(pass, cc.Body, follow)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				checkBlock(pass, cc.Body, follow)
			}
		}
	default:
		// Function literals in expression position (go/defer/assignments/
		// calls) start a fresh continuation: nothing in the enclosing block
		// is known to run after the literal's body.
		ast.Inspect(stmt, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkBlock(pass, lit.Body.List, nil)
				return false
			}
			return true
		})
	}
}

func isMapRange(pass *Pass, rng *ast.RangeStmt) bool {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange reports order-sensitive statements anywhere in the loop
// body (nested loops included — they still execute per map iteration).
// follow is the loop's continuation, consulted for the sorted-after idiom.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, follow []ast.Stmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, s, follow)
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if pkg, name, ok := pass.CalleeOf(call); ok && pkg == "fmt" && isPrintName(name) {
					pass.Reportf(call.Pos(),
						"fmt.%s inside range over map emits output in nondeterministic order; iterate sorted keys", name)
				}
			}
		}
		return true
	})
}

func checkAssign(pass *Pass, s *ast.AssignStmt, follow []ast.Stmt) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range s.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) {
				continue
			}
			var target types.Object
			if i < len(s.Lhs) {
				if id, ok := s.Lhs[i].(*ast.Ident); ok {
					target = pass.objectOf(id)
				}
			}
			if target != nil && sortedAfter(pass, target, follow) {
				continue
			}
			pass.Reportf(call.Pos(),
				"append inside range over map accumulates in nondeterministic order; iterate sorted keys or sort the result")
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(s.Lhs) == 1 && isFloat(pass.TypeOf(s.Lhs[0])) {
			pass.Reportf(s.Pos(),
				"floating-point accumulation inside range over map is order-dependent at the bit level; iterate sorted keys")
		}
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if pass.Info == nil {
		return true
	}
	_, builtin := pass.Info.Uses[id].(*types.Builtin)
	return builtin
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isPrintName(name string) bool {
	switch name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// sortedAfter reports whether a statement in the loop's continuation sorts
// the slice the loop appended to — sort.X(target, ...) or
// slices.SortX(target, ...).
func sortedAfter(pass *Pass, target types.Object, follow []ast.Stmt) bool {
	for _, stmt := range follow {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		pkg, _, ok := pass.CalleeOf(call)
		if !ok || (pkg != "sort" && pkg != "slices") {
			continue
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.objectOf(id) == target {
				return true
			}
		}
	}
	return false
}

func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}
