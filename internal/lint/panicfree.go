package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewPanicFree builds the panicfree analyzer: library packages must report
// failures as errors — a panic in a pipeline stage tears down the whole
// serving process. The only sanctioned panics are programmer-invariant
// guards (index/range violations that cannot be triggered by input data),
// and each one must carry a //lint:allow panicfree annotation with a reason.
// only restricts the analyzer to the listed package path prefixes; empty
// means every package.
func NewPanicFree(only ...string) *Analyzer {
	a := &Analyzer{
		Name: "panicfree",
		Doc:  "forbid panic in library packages; return errors (annotated invariant guards excepted)",
	}
	if len(only) > 0 {
		a.Match = func(pkgPath string) bool {
			for _, o := range only {
				if pkgPath == o || strings.HasPrefix(pkgPath, o+"/") {
					return true
				}
			}
			return false
		}
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if pass.Info != nil {
					if _, builtin := pass.Info.Uses[id].(*types.Builtin); !builtin {
						return true // shadowed identifier, not the builtin
					}
				}
				pass.Reportf(call.Pos(),
					"panic in library package; return an error (annotate true invariant guards with //lint:allow panicfree)")
				return true
			})
		}
	}
	return a
}
