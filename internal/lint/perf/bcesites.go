package perf

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"verro/internal/lint"
)

// IndexSites classifies every index expression syntactically inside a
// loop of one package's hot regions: the returned map is keyed by the
// index operand's position (exactly where absint's index hook fires) and
// records whether the syntactic prover shows the compiler's prove pass
// eliminates the bounds check. The bce analyzer reports hot sites that
// are neither syntactically proven here nor value-proven by the interval
// engine.
//
// The prover mirrors the dominating-check shapes the compiler's prove
// pass was observed to handle (each rule below was validated against
// `-gcflags=-d=ssa/check_bce` output; shapes the compiler keeps — offset
// indices like s[i+1], step>1 counters, i+c conditions — are
// deliberately NOT proven here even when a human could argue them):
//
//   - range rule: s[i] where i is the key of an enclosing `for i := range s`
//     over the same expression, with neither i nor s written in the body;
//   - counter rule: s[i] under `for i := c0; i < len(s)[-c] ; i++` (or
//     `i <= len(s)-c`, c ≥ 1) with c0 a nonnegative constant, step exactly
//     one, and neither i nor s written in the body;
//   - assert rule: s[i] under `for i := c0; i < n; i++` where a
//     `_ = s[n-1]` statement precedes the loop in the same region, with
//     none of i, s, n written in the body — the hoisted bound assertion
//     the analyzer's message recommends;
//   - clamp rule: like the assert rule, but n's bound on len(s) comes from
//     the min-clamp prologue `n := len(s)` / `if len(s) < n { n = len(s) }`;
//   - mirror rule: out[i] under `for i := range v` where the region defined
//     `out := make([]T, len(v))`;
//   - repeat rule: an index expression with identical source text appears
//     earlier in the same loop body, so its check dominates this one;
//   - guard rule: `if i < 0 || i >= len(s) { continue }` earlier in the
//     loop body dominates s[i];
//   - subslice rule: p[k] (constant k) or p[c] under `for c := 0; c < K; c++`
//     where the region defined `p := s[e : e+n]` with constant n and k < n,
//     K ≤ n — the hoisted channel-triple idiom.
//
// Everything else — compound row-major addressing, cross-slice bounds,
// data-dependent indices — is left unproven: exactly the sites where the
// compiler emits IsInBounds and the kernel should be rewritten to a
// provable stride (the gate test in groundtruth_test.go checks the
// "unproven ⊆ compiler-checked" inclusion against -d=ssa/check_bce).
func IndexSites(pkg *lint.Package, cfg *Config) map[token.Pos]bool {
	hs := buildHotSet(pkg, cfg)
	sites := map[token.Pos]bool{}
	for _, r := range hs.regions {
		// facts accumulates the region's bound knowledge in source order;
		// by the time a loop body is scanned, every fact established
		// textually above it is recorded.
		facts := newRegionFacts()
		s := &scanner{hs: hs, r: r}
		s.visit = func(n ast.Node, loops []ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				facts.record(pkg, as)
			}
			ie, ok := n.(*ast.IndexExpr)
			if !ok || len(loops) == 0 {
				return true
			}
			// Generic instantiations parse as index expressions; the hook
			// never fires for them, so spurious entries are harmless, but
			// skip them anyway to keep the map honest.
			if tv, ok := pkg.Info.Types[ie.X]; ok {
				if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
					return true
				}
			}
			sites[ie.Index.Pos()] = provenEliminable(pkg, ie, loops, facts)
			return true
		}
		s.scan()
	}
	return sites
}

// assertFact is one hoisted bound assertion: `_ = base[bound-1]`.
type assertFact struct {
	baseStr  string
	boundStr string
}

// regionFacts is the bound knowledge one region's straight-line prefix
// establishes. All three fact kinds may be recorded from positions that
// do not strictly dominate the loop that uses them (inside an if arm,
// say); that over-proves and therefore silences — which never breaks the
// ground-truth gate, whose only failure mode is reporting a check the
// compiler eliminates.
type regionFacts struct {
	// asserts are `_ = s[n-1]` statements: len(s) ≥ n afterwards.
	asserts []assertFact
	// bounded maps a variable to the slices it is clamped under:
	// `n := len(a)` then `if len(b) < n { n = len(b) }` records n ≤ len(a)
	// and n ≤ len(b) — the min-clamp prologue the similarity kernels use.
	bounded map[types.Object]map[string]bool
	// mirror maps a slice to the expression whose length it was made
	// with: `out := make([]T, len(v))` records len(out) == len(v), which
	// lets `for i := range v` prove out[i].
	mirror map[types.Object]string
	// sliceLen maps a variable to its known constant length:
	// `p := s[e : e+3]` records len(p) == 3, which proves p[0] and
	// `for c := 0; c < 3; c++ { p[c] }` — the hoisted channel-triple
	// idiom of the pixel kernels. The defining statement is kept so the
	// writes check can exempt it (the definition usually sits inside the
	// loop it serves).
	sliceLen map[types.Object]sliceLenFact
}

// sliceLenFact is one fixed-length subslice definition.
type sliceLenFact struct {
	n   int64
	def ast.Node
}

func newRegionFacts() *regionFacts {
	return &regionFacts{
		bounded:  map[types.Object]map[string]bool{},
		mirror:   map[types.Object]string{},
		sliceLen: map[types.Object]sliceLenFact{},
	}
}

// record digests one assignment into facts: hoisted assertions, len
// clamps, and make-mirrored slices. A non-len assignment to a tracked
// variable drops its bounds.
func (f *regionFacts) record(pkg *lint.Package, as *ast.AssignStmt) {
	if af, ok := parseAssert(pkg, as); ok {
		f.asserts = append(f.asserts, af)
		return
	}
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := identObj(pkg, id)
	if obj == nil {
		return
	}
	if bs, ok := lenArg(pkg, as.Rhs[0]); ok {
		if as.Tok == token.DEFINE || f.bounded[obj] == nil {
			f.bounded[obj] = map[string]bool{}
		}
		f.bounded[obj][bs] = true
		return
	}
	delete(f.bounded, obj)
	if as.Tok == token.DEFINE {
		if vs, ok := makeLenArg(pkg, as.Rhs[0]); ok {
			f.mirror[obj] = vs
			return
		}
		if n, ok := subsliceLen(pkg, as.Rhs[0]); ok {
			delete(f.mirror, obj)
			f.sliceLen[obj] = sliceLenFact{n: n, def: as}
			return
		}
	}
	delete(f.mirror, obj)
	delete(f.sliceLen, obj)
}

// subsliceLen matches a fixed-length slice expression — `s[e : e+c]`
// (the offset matched textually) or `s[c1:c2]` with constant bounds — and
// returns the resulting length.
func subsliceLen(pkg *lint.Package, e ast.Expr) (int64, bool) {
	se, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || se.Low == nil || se.High == nil {
		return 0, false
	}
	lo, hi := ast.Unparen(se.Low), ast.Unparen(se.High)
	if cl, ok := constInt(pkg, lo); ok {
		if ch, ok := constInt(pkg, hi); ok && ch >= cl {
			return ch - cl, true
		}
	}
	add, ok := hi.(*ast.BinaryExpr)
	if !ok || add.Op != token.ADD {
		return 0, false
	}
	loStr := types.ExprString(lo)
	if types.ExprString(ast.Unparen(add.X)) == loStr {
		if c, ok := constInt(pkg, add.Y); ok && c >= 0 {
			return c, true
		}
	}
	if types.ExprString(ast.Unparen(add.Y)) == loStr {
		if c, ok := constInt(pkg, add.X); ok && c >= 0 {
			return c, true
		}
	}
	return 0, false
}

// parseAssert matches the hoisted-assertion statement `_ = s[n-1]`.
func parseAssert(pkg *lint.Package, as *ast.AssignStmt) (assertFact, bool) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return assertFact{}, false
	}
	if id, ok := as.Lhs[0].(*ast.Ident); !ok || id.Name != "_" {
		return assertFact{}, false
	}
	ie, ok := ast.Unparen(as.Rhs[0]).(*ast.IndexExpr)
	if !ok {
		return assertFact{}, false
	}
	sub, ok := ast.Unparen(ie.Index).(*ast.BinaryExpr)
	if !ok || sub.Op != token.SUB {
		return assertFact{}, false
	}
	if c, ok := constInt(pkg, sub.Y); !ok || c != 1 {
		return assertFact{}, false
	}
	return assertFact{
		baseStr:  types.ExprString(ast.Unparen(ie.X)),
		boundStr: types.ExprString(ast.Unparen(sub.X)),
	}, true
}

// makeLenArg matches `make([]T, len(v), ...)` and returns v's string.
func makeLenArg(pkg *lint.Package, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return "", false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return "", false
	}
	return lenArg(pkg, call.Args[1])
}

// provenEliminable applies the prover's rules against every enclosing
// loop, innermost outward. The index-based rules demand a bare
// loop-variable index (k = 0): the compiler keeps the check for offset
// indices like s[i+1] even under slack conditions, so proving them here
// would report nothing but lie about the generated code.
func provenEliminable(pkg *lint.Package, ie *ast.IndexExpr, loops []ast.Node, facts *regionFacts) bool {
	base := ast.Unparen(ie.X)
	baseStr := types.ExprString(base)
	innerBody := loopBody(loops[len(loops)-1])
	// Repeat rule: an identical index expression earlier in the same loop
	// body already paid the check, and the compiler reuses its dominating
	// bounds fact for this one. This is the only rule that tolerates a
	// compound index (m.Pix[i+c] read then written back).
	if innerBody != nil && repeatAccess(innerBody, ie) {
		return true
	}
	// Subslice rule, constant index: p[k] where p is a known
	// fixed-length subslice and k is below its length.
	if f, ok := subsliceFact(pkg, base, facts); ok &&
		!writesBaseOutside(pkg, loops, base, baseStr, f.def) {
		if k, isConst := constInt(pkg, ie.Index); isConst && k >= 0 && k < f.n {
			return true
		}
	}
	idx, k := splitIndex(pkg, ie.Index)
	if idx == nil || k != 0 {
		return false
	}
	idxObj := pkg.Info.Uses[idx]
	if idxObj == nil {
		return false
	}
	// Guard rule: a preceding `if i < 0 || i >= len(base) { continue }`
	// in the same loop body dominates the access.
	if innerBody != nil && guardDominates(pkg, innerBody, ie, idxObj, baseStr) {
		return true
	}
	for li := len(loops) - 1; li >= 0; li-- {
		switch l := loops[li].(type) {
		case *ast.RangeStmt:
			key, ok := l.Key.(*ast.Ident)
			if !ok || identObj(pkg, key) != idxObj {
				continue
			}
			rangedStr := types.ExprString(ast.Unparen(l.X))
			if rangedStr != baseStr {
				// Mirror rule: base was made with length len(ranged), so
				// the range key stays in bounds for it too.
				bObj := rootIdentObj(pkg, base)
				if bObj == nil || facts.mirror[bObj] != rangedStr {
					continue
				}
			}
			if writesIn(pkg, l.Body, idxObj, base, baseStr) {
				continue
			}
			return true
		case *ast.ForStmt:
			if !nonnegInit(pkg, l.Init, idxObj) || !unitStep(pkg, l.Post, idxObj) {
				continue
			}
			if writesIn(pkg, l.Body, idxObj, base, baseStr) {
				continue
			}
			// Counter rule: the condition bounds i by len(base) itself.
			if slack, condBase, condIdx := condSlack(pkg, l.Cond); condIdx != nil &&
				identObj(pkg, condIdx) == idxObj && condBase == baseStr && slack >= 0 {
				return true
			}
			if bound, condIdx := condBound(pkg, l.Cond); condIdx != nil &&
				identObj(pkg, condIdx) == idxObj {
				boundStr := types.ExprString(bound)
				if writesBound(pkg, l.Body, boundStr) {
					continue
				}
				// Assert rule: a hoisted `_ = base[bound-1]` ties the
				// condition's bound to len(base).
				for _, af := range facts.asserts {
					if af.baseStr == baseStr && af.boundStr == boundStr {
						return true
					}
				}
				// Clamp rule: the bound is a variable clamped to
				// min(len(base), ...) by the region's prologue.
				if bid, ok := bound.(*ast.Ident); ok {
					if bObj := identObj(pkg, bid); bObj != nil && facts.bounded[bObj][baseStr] {
						return true
					}
				}
				// Subslice rule, counter: the bound is a constant no
				// larger than base's known fixed length.
				if kBound, isConst := constInt(pkg, bound); isConst {
					if f, ok := subsliceFact(pkg, base, facts); ok && kBound <= f.n &&
						!writesBaseOutside(pkg, loops, base, baseStr, f.def) {
						return true
					}
				}
			}
		}
	}
	return false
}

// subsliceFact returns the fixed-length fact for a bare-identifier base.
func subsliceFact(pkg *lint.Package, base ast.Expr, facts *regionFacts) (sliceLenFact, bool) {
	bid, ok := base.(*ast.Ident)
	if !ok {
		return sliceLenFact{}, false
	}
	obj := identObj(pkg, bid)
	if obj == nil {
		return sliceLenFact{}, false
	}
	f, ok := facts.sliceLen[obj]
	return f, ok
}

// writesBaseOutside reports whether any enclosing loop body writes base
// (or takes its address) anywhere other than its defining statement —
// re-slicing the subslice mid-loop would invalidate the length fact even
// though the definition itself re-establishes it each iteration.
func writesBaseOutside(pkg *lint.Package, loops []ast.Node, base ast.Expr, baseStr string, def ast.Node) bool {
	baseObj := rootIdentObj(pkg, base)
	found := false
	target := func(e ast.Expr) {
		e = ast.Unparen(e)
		if types.ExprString(e) == baseStr {
			found = true
			return
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := identObj(pkg, id); obj != nil && obj == baseObj {
				found = true
			}
		}
	}
	for _, l := range loops {
		body := loopBody(l)
		if body == nil {
			continue
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if found || n == def {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					target(lhs)
				}
			case *ast.IncDecStmt:
				target(n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					target(n.X)
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// loopBody returns a for/range statement's block.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// repeatAccess reports whether an index expression with the identical
// source text appears earlier in the same loop body — its bounds check
// dominates this site. An earlier occurrence inside a non-dominating
// branch over-proves (silences), which is gate-safe; writes between the
// two occurrences likewise only cost a finding, never a false one.
func repeatAccess(body *ast.BlockStmt, ie *ast.IndexExpr) bool {
	want := types.ExprString(ie)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		x, ok := n.(*ast.IndexExpr)
		if ok && x != ie && x.End() <= ie.Pos() && types.ExprString(x) == want {
			found = true
			return false
		}
		return true
	})
	return found
}

// guardDominates matches the explicit range-guard idiom: a statement
// `if i < 0 || i >= len(base) { continue }` (or break/return) earlier in
// the loop body, with no write to i or base after the guard.
func guardDominates(pkg *lint.Package, body *ast.BlockStmt, ie *ast.IndexExpr, idxObj types.Object, baseStr string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Init != nil || ifs.Else != nil || ifs.End() > ie.Pos() {
			return true
		}
		if !isRangeGuardCond(pkg, ifs.Cond, idxObj, baseStr) || !exitsIteration(ifs.Body) {
			return true
		}
		if writesAfter(pkg, body, idxObj, baseStr, ifs.End()) {
			return true
		}
		found = true
		return false
	})
	return found
}

// isRangeGuardCond matches `i < 0 || i >= len(base)` in either order.
func isRangeGuardCond(pkg *lint.Package, cond ast.Expr, idxObj types.Object, baseStr string) bool {
	or, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || or.Op != token.LOR {
		return false
	}
	return (isNegCheck(pkg, or.X, idxObj) && isOverCheck(pkg, or.Y, idxObj, baseStr)) ||
		(isNegCheck(pkg, or.Y, idxObj) && isOverCheck(pkg, or.X, idxObj, baseStr))
}

// isNegCheck matches `i < 0`.
func isNegCheck(pkg *lint.Package, e ast.Expr, idxObj types.Object) bool {
	b, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || b.Op != token.LSS {
		return false
	}
	id, ok := ast.Unparen(b.X).(*ast.Ident)
	if !ok || identObj(pkg, id) != idxObj {
		return false
	}
	c, isConst := constInt(pkg, b.Y)
	return isConst && c == 0
}

// isOverCheck matches `i >= len(base)`.
func isOverCheck(pkg *lint.Package, e ast.Expr, idxObj types.Object, baseStr string) bool {
	b, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || b.Op != token.GEQ {
		return false
	}
	id, ok := ast.Unparen(b.X).(*ast.Ident)
	if !ok || identObj(pkg, id) != idxObj {
		return false
	}
	bs, ok := lenArg(pkg, b.Y)
	return ok && bs == baseStr
}

// exitsIteration reports whether a guard body is a single continue,
// break, or return — the access is unreachable when the guard fires.
func exitsIteration(body *ast.BlockStmt) bool {
	if len(body.List) != 1 {
		return false
	}
	switch s := body.List[0].(type) {
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK
	case *ast.ReturnStmt:
		return true
	}
	return false
}

// writesAfter is writesIn restricted to writes positioned after a guard —
// the guard's bounds fact survives up to the access as long as nothing
// past it mutates the index or the slice.
func writesAfter(pkg *lint.Package, body ast.Node, idxObj types.Object, baseStr string, after token.Pos) bool {
	found := false
	target := func(e ast.Expr) {
		if e.Pos() <= after {
			return
		}
		e = ast.Unparen(e)
		if types.ExprString(e) == baseStr {
			found = true
			return
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := identObj(pkg, id); obj != nil && obj == idxObj {
				found = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				target(lhs)
			}
		case *ast.IncDecStmt:
			target(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				target(n.X)
			}
		}
		return !found
	})
	return found
}

// splitIndex decomposes an index expression into `ident + constant`:
// plain idents return (ident, 0), i+3 and 3+i return (i, 3), anything
// else (multiplications, calls, non-constant offsets) returns nil.
func splitIndex(pkg *lint.Package, e ast.Expr) (*ast.Ident, int64) {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		return id, 0
	}
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != token.ADD {
		return nil, 0
	}
	if id, ok := ast.Unparen(b.X).(*ast.Ident); ok {
		if c, ok := constInt(pkg, b.Y); ok && c >= 0 {
			return id, c
		}
	}
	if id, ok := ast.Unparen(b.Y).(*ast.Ident); ok {
		if c, ok := constInt(pkg, b.X); ok && c >= 0 {
			return id, c
		}
	}
	return nil, 0
}

// condSlack parses a loop condition of the forms `i < len(B)`,
// `i < len(B)-c`, `i <= len(B)-c` and returns the condition's headroom
// below len(B) (≥ 0 when `B[i]` is safe at every admitted i), the bound
// expression's string, and the loop ident. The left side must be the
// bare loop variable: the compiler's prove pass does not normalize
// `i+c < len(B)`, so neither does this. A nil ident means the condition
// is not a recognized bound.
func condSlack(pkg *lint.Package, cond ast.Expr) (slack int64, baseStr string, idx *ast.Ident) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (b.Op != token.LSS && b.Op != token.LEQ) {
		return 0, "", nil
	}
	idx, ok = ast.Unparen(b.X).(*ast.Ident)
	if !ok {
		return 0, "", nil
	}
	baseStr, sub, ok := lenMinus(pkg, b.Y)
	if !ok {
		return 0, "", nil
	}
	slack = sub
	if b.Op == token.LEQ {
		slack--
	}
	if slack < 0 {
		return 0, "", nil
	}
	return slack, baseStr, idx
}

// condBound parses `i < bound` for an arbitrary bound expression, the
// shape the assert and clamp rules consume.
func condBound(pkg *lint.Package, cond ast.Expr) (bound ast.Expr, idx *ast.Ident) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || b.Op != token.LSS {
		return nil, nil
	}
	idx, ok = ast.Unparen(b.X).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	return ast.Unparen(b.Y), idx
}

// writesBound reports whether the body assigns to (or takes the address
// of) anything whose expression string matches the assert rule's bound.
func writesBound(pkg *lint.Package, body ast.Node, boundStr string) bool {
	found := false
	target := func(e ast.Expr) {
		if types.ExprString(ast.Unparen(e)) == boundStr {
			found = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				target(lhs)
			}
		case *ast.IncDecStmt:
			target(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				target(n.X)
			}
		}
		return !found
	})
	return found
}

// lenMinus parses `len(B)` or `len(B)-c`, returning B's string and c.
func lenMinus(pkg *lint.Package, e ast.Expr) (baseStr string, sub int64, ok bool) {
	e = ast.Unparen(e)
	if b, isBin := e.(*ast.BinaryExpr); isBin && b.Op == token.SUB {
		c, isConst := constInt(pkg, b.Y)
		if !isConst || c < 0 {
			return "", 0, false
		}
		baseStr, ok = lenArg(pkg, b.X)
		return baseStr, c, ok
	}
	baseStr, ok = lenArg(pkg, e)
	return baseStr, 0, ok
}

// lenArg matches a call to the len builtin and returns its argument's
// string form.
func lenArg(pkg *lint.Package, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "len" {
		return "", false
	}
	return types.ExprString(ast.Unparen(call.Args[0])), true
}

// nonnegInit requires the loop variable to be defined in the loop's init
// with a nonnegative constant — the lower-bound half of the proof.
func nonnegInit(pkg *lint.Package, init ast.Stmt, obj types.Object) bool {
	as, ok := init.(*ast.AssignStmt)
	if !ok || as.Tok != token.DEFINE {
		return false
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || identObj(pkg, id) != obj || i >= len(as.Rhs) {
			continue
		}
		c, isConst := constInt(pkg, as.Rhs[i])
		return isConst && c >= 0
	}
	return false
}

// unitStep requires the loop post statement to advance the variable by
// exactly one: i++ or i += 1. Larger strides defeat the compiler's
// induction-variable detection (verified against -d=ssa/check_bce), so
// they must stay unproven.
func unitStep(pkg *lint.Package, post ast.Stmt, obj types.Object) bool {
	switch p := post.(type) {
	case *ast.IncDecStmt:
		id, ok := p.X.(*ast.Ident)
		return ok && identObj(pkg, id) == obj && p.Tok == token.INC
	case *ast.AssignStmt:
		if p.Tok != token.ADD_ASSIGN || len(p.Lhs) != 1 || len(p.Rhs) != 1 {
			return false
		}
		id, ok := p.Lhs[0].(*ast.Ident)
		if !ok || identObj(pkg, id) != obj {
			return false
		}
		c, isConst := constInt(pkg, p.Rhs[0])
		return isConst && c == 1
	}
	return false
}

// writesIn reports whether the body writes the loop variable, writes the
// indexed expression (or its root), or takes either's address — anything
// that would invalidate the dominating-check argument.
func writesIn(pkg *lint.Package, body ast.Node, idxObj types.Object, base ast.Expr, baseStr string) bool {
	rootObj := rootIdentObj(pkg, base)
	found := false
	target := func(e ast.Expr) {
		e = ast.Unparen(e)
		if types.ExprString(e) == baseStr {
			found = true
			return
		}
		if id, ok := e.(*ast.Ident); ok {
			obj := identObj(pkg, id)
			if obj != nil && (obj == idxObj || (rootObj != nil && obj == rootObj)) {
				found = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				target(lhs)
			}
		case *ast.IncDecStmt:
			target(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				target(n.X)
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				target(n.Key)
			}
			if n.Value != nil {
				target(n.Value)
			}
		}
		return !found
	})
	return found
}

// rootIdentObj returns the object of the leftmost identifier of a
// selector/index chain (m in m.Pix, s in s[i].f).
func rootIdentObj(pkg *lint.Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return identObj(pkg, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func identObj(pkg *lint.Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// constInt evaluates a compile-time integer constant expression.
func constInt(pkg *lint.Package, e ast.Expr) (int64, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	s := tv.Value.ExactString()
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
