package perf

import (
	"testing"

	"verro/internal/lint"
)

// CheckFixture loads the fixture directories, runs the perf analyzers
// over them, and returns one problem per mismatch against `// want`
// comments. With kernel true the fixture packages are added to the
// config's kernel list (every function a hot root — the hotalloc and
// hotescape fixtures); with kernel false hotness comes only from the
// par constructs the fixture calls (the hotpar fixture), proving the
// worker-pool roots work outside kernel packages.
func CheckFixture(l *lint.Loader, dirs []string, kernel bool, analyzers ...*Analyzer) (problems []string, err error) {
	cfg := ProjectConfig()
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := l.Load(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
		if kernel {
			cfg.KernelPkgs = append(cfg.KernelPkgs, pkg.Path)
		}
	}
	return lint.CheckDiagnostics(pkgs, Run(pkgs, cfg, analyzers...))
}

// RunFixture is the testing wrapper around CheckFixture.
func RunFixture(t *testing.T, dirs []string, kernel bool, analyzers ...*Analyzer) {
	t.Helper()
	problems, err := CheckFixture(lint.NewLoader(), dirs, kernel, analyzers...)
	if err != nil {
		t.Fatalf("fixture %v: %v", dirs, err)
	}
	for _, p := range problems {
		t.Errorf("fixture %v: %s", dirs, p)
	}
}
