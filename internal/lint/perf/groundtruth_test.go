package perf

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"verro/internal/lint"
	"verro/internal/lint/absint"
)

// The ground-truth gate: every site the bce analyzer reports must be one
// where the compiler really keeps a bounds check. The direction matters —
// bce may stay silent on kept checks (under-reporting loses findings, not
// trust), but a report on an eliminated check would teach people to
// "fix" code the compiler already handles, so it fails the build here.

// keptChecks builds the packages with -d=ssa/check_bce under a throwaway
// GOCACHE (forcing a cold compile so the diagnostic output actually
// appears) and returns the kept-check sites as "file.go:line" keys.
func keptChecks(t *testing.T, dir string, patterns ...string) map[string]bool {
	t.Helper()
	args := append([]string{"build", "-gcflags=-d=ssa/check_bce"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOCACHE="+t.TempDir(), "GOFLAGS=")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		t.Fatalf("go %s: %v\n%s", strings.Join(args, " "), err, out.String())
	}
	kept := map[string]bool{}
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.Contains(line, "Found Is") {
			continue
		}
		// "./kernel.go:18:15: Found IsInBounds" — keep basename and line.
		parts := strings.SplitN(line, ":", 3)
		if len(parts) < 3 {
			continue
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		kept[fmt.Sprintf("%s:%d", filepath.Base(parts[0]), n)] = true
	}
	return kept
}

// bceReports runs the project bce analyzer over the directories and
// returns its diagnostics as "file.go:line" keys (suppressed sites do not
// appear, matching what a verrolint run would fail on).
func bceReports(t *testing.T, dirs []string) map[string]bool {
	t.Helper()
	loader := lint.NewLoader()
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	reports := map[string]bool{}
	for _, d := range absint.Run(pkgs, NewProjectBCE()) {
		reports[fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)] = true
	}
	return reports
}

func assertSubset(t *testing.T, reports, kept map[string]bool) {
	t.Helper()
	for site := range reports {
		if !kept[site] {
			t.Errorf("bce reported %s, but the compiler eliminates that bounds check (-d=ssa/check_bce)", site)
		}
	}
}

// TestGroundTruthFixture compiles the self-contained fixture module and
// checks the subset property plus non-vacuity: the fixture's known-kept
// shapes must be reported, so the gate cannot silently pass by reporting
// nothing.
func TestGroundTruthFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("cold compiles under a throwaway GOCACHE; run without -short")
	}
	kept := keptChecks(t, "testdata/groundtruth", ".")
	reports := bceReports(t, []string{"testdata/groundtruth"})
	assertSubset(t, reports, kept)
	for _, site := range []string{"kernel.go:18", "kernel.go:28", "kernel.go:38", "kernel.go:116"} {
		if !reports[site] {
			t.Errorf("bce missed the known-kept check at %s; the gate would be vacuous", site)
		}
	}
	for _, site := range []string{
		"kernel.go:47", "kernel.go:56", "kernel.go:69", "kernel.go:81", // range/counter/row/assert
		"kernel.go:95", "kernel.go:105", "kernel.go:117", // clamp/mirror/repeat
		"kernel.go:130", "kernel.go:132", "kernel.go:149", // subslice const/counter, guard
	} {
		if reports[site] {
			t.Errorf("bce reported the compiler-eliminated site %s", site)
		}
	}
}

// TestGroundTruthKernels runs the same subset gate over the real kernel
// packages: after the hot-path sweep they should be clean, and whatever
// remains (or regresses) must at least be honest about the generated
// code.
func TestGroundTruthKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("cold compiles under a throwaway GOCACHE; run without -short")
	}
	kernels := []string{"img", "hog", "inpaint", "blur", "keyframe"}
	patterns := make([]string, len(kernels))
	dirs := make([]string, len(kernels))
	for i, k := range kernels {
		patterns[i] = "verro/internal/" + k
		dirs[i] = filepath.Join("..", "..", k)
	}
	kept := keptChecks(t, filepath.Join("..", "..", ".."), patterns...)
	reports := bceReports(t, dirs)
	assertSubset(t, reports, kept)
}
