package perf

import (
	"go/ast"
	"go/token"
	"go/types"

	"verro/internal/lint"
)

// NewHotAlloc builds the hotalloc analyzer: no heap allocation inside a
// hot loop. Every flagged construct allocates per iteration — make, new,
// map/slice composite literals, &T{} escapes, growing a nil slice with
// append, string↔[]byte conversion copies, fmt-style calls that box their
// arguments into interfaces, and defer (whose frame is heap-allocated
// per iteration). The fix idioms are in README's perf-lint section:
// hoist the buffer, preallocate with capacity, or move the formatting
// out of the kernel.
func NewHotAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "hot loops must not allocate (make/new/literals/append-growth/conversions/boxing/defer)",
		run:  runHotAlloc,
	}
}

// boxPkgs are packages whose calls take ...any and therefore box every
// concrete argument, allocating per call.
var boxPkgs = map[string]bool{"fmt": true, "log": true, "errors": true}

func runHotAlloc(p *pass) {
	for _, r := range p.hs.regions {
		prealloc := preallocInfo(p.pkg, r.decl)
		s := &scanner{hs: p.hs, r: r}
		s.visit = func(n ast.Node, loops []ast.Node) bool {
			if !s.inLoop(loops) {
				return true
			}
			switch n := n.(type) {
			case *ast.DeferStmt:
				p.report(n.Pos(), "defer in a hot loop allocates its frame per iteration and delays the call to function exit")
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, ok := n.X.(*ast.CompositeLit); ok {
						p.report(n.Pos(), "&composite literal allocates on the heap per hot-loop iteration; hoist the value or reuse one")
					}
				}
			case *ast.CompositeLit:
				t := p.pkg.Info.TypeOf(n)
				if t == nil {
					return true
				}
				switch t.Underlying().(type) {
				case *types.Slice:
					p.report(n.Pos(), "slice literal allocates per hot-loop iteration; hoist the slice out of the loop")
				case *types.Map:
					p.report(n.Pos(), "map literal allocates per hot-loop iteration; hoist the map and clear it instead")
				}
			case *ast.CallExpr:
				checkHotCall(p, prealloc, n)
			}
			return true
		}
		s.scan()
	}
}

// checkHotCall classifies one call inside a hot loop: builtin allocators,
// append growth, allocating conversions, and boxing calls.
func checkHotCall(p *pass, prealloc map[types.Object]bool, call *ast.CallExpr) {
	info := p.pkg.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if len(call.Args) == 0 {
					return
				}
				t := info.TypeOf(call.Args[0])
				if t == nil {
					return
				}
				switch t.Underlying().(type) {
				case *types.Slice:
					p.report(call.Pos(), "make allocates a slice per hot-loop iteration; hoist the buffer out of the loop and reuse it")
				case *types.Map:
					p.report(call.Pos(), "make allocates a map per hot-loop iteration; hoist the map and clear it instead")
				case *types.Chan:
					p.report(call.Pos(), "make allocates a channel per hot-loop iteration; hoist it out of the loop")
				}
			case "new":
				p.report(call.Pos(), "new allocates per hot-loop iteration; hoist the value out of the loop")
			case "append":
				checkAppend(p, prealloc, call)
			}
			return
		}
	}
	// A type conversion parses as a call whose Fun denotes a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := info.TypeOf(call.Args[0])
		if src != nil && conversionAllocates(dst, src.Underlying()) {
			p.report(call.Pos(), "string↔[]byte conversion copies and allocates per hot-loop iteration; keep one representation through the loop")
		}
		return
	}
	if fn := staticCallee(info, call); fn != nil && fn.Pkg() != nil && boxPkgs[fn.Pkg().Path()] {
		p.report(call.Pos(), "%s.%s boxes its arguments into interfaces and allocates per hot-loop iteration; move formatting out of the kernel", fn.Pkg().Name(), fn.Name())
	}
}

// conversionAllocates reports whether converting src to dst copies the
// contents: string↔[]byte (and string→[]rune).
func conversionAllocates(dst, src types.Type) bool {
	return (isString(dst) && isByteSlice(src)) ||
		(isByteSlice(dst) && isString(src)) ||
		(isRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Rune
}

// checkAppend flags appends that grow a slice declared with no capacity.
// Appending into a slice made with an explicit length or capacity is the
// preallocation idiom and stays silent — the analyzer only claims an
// allocation when the destination provably started nil or empty.
func checkAppend(p *pass, prealloc map[types.Object]bool, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := p.pkg.Info.Uses[id]
	if obj == nil {
		obj = p.pkg.Info.Defs[id]
	}
	if obj == nil || !prealloc[obj] {
		return
	}
	p.report(call.Pos(), "append grows %s from a nil slice per hot-loop iteration; preallocate with make(%s, 0, n) before the loop", id.Name, types.TypeString(obj.Type(), types.RelativeTo(p.pkg.Types)))
}

// preallocInfo scans one function declaration for slice variables that
// provably start with no capacity: `var x []T` and `x := []T{}`. Only
// those destinations make an in-loop append a reportable allocation;
// parameters, fields, and make-initialized slices stay silent.
func preallocInfo(pkg *lint.Package, decl *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if decl == nil || decl.Body == nil {
		return out
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
							out[obj] = true
						}
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				lit, ok := ast.Unparen(n.Rhs[i]).(*ast.CompositeLit)
				if !ok || len(lit.Elts) != 0 {
					continue
				}
				if obj := pkg.Info.Defs[id]; obj != nil {
					if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
						out[obj] = true
					}
				}
			}
		}
		return true
	})
	return out
}
