package perf

import (
	"go/ast"
	"go/token"
	"go/types"

	"verro/internal/lint"
)

// NewHotEscape builds the hotescape analyzer: hot-loop locals must stay on
// the stack. Three constructs defeat the compiler's escape analysis per
// iteration — building a closure (its environment is heap-allocated when
// it outlives the statement), launching a goroutine (its closure and
// arguments escape), and letting a local's address leave the analyzed
// package (a call the compiler cannot see through must assume the pointer
// is retained). Addresses passed to same-package functions stay silent:
// the compiler inlines or analyzes those, and so could we, but the cheap
// rule already matches where escape analysis actually gives up.
func NewHotEscape() *Analyzer {
	return &Analyzer{
		Name: "hotescape",
		Doc:  "hot-loop locals must not escape (closures, goroutines, addresses leaving the package)",
		run:  runHotEscape,
	}
}

func runHotEscape(p *pass) {
	for _, r := range p.hs.regions {
		s := &scanner{hs: p.hs, r: r}
		s.visit = func(n ast.Node, loops []ast.Node) bool {
			if !s.inLoop(loops) {
				return true
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				p.report(n.Pos(), "goroutine launched per hot-loop iteration; its closure and arguments escape — use the worker pool instead")
			case *ast.FuncLit:
				// The scanner never visits par-closure or immediately-
				// invoked literals, so every literal seen here is a real
				// per-iteration closure value.
				p.report(n.Pos(), "closure built per hot-loop iteration allocates its environment; hoist it out of the loop or pass values directly")
			case *ast.CallExpr:
				checkEscapingArgs(p, n)
			case *ast.AssignStmt:
				checkEscapingStore(p, n)
			}
			return true
		}
		s.scan()
	}
}

// checkEscapingArgs flags &local arguments to calls the compiler cannot
// analyze from here: dynamic calls and calls into other packages.
func checkEscapingArgs(p *pass, call *ast.CallExpr) {
	var local *ast.Ident
	for _, a := range call.Args {
		if id := addrOfLocal(p.pkg, a); id != nil {
			local = id
			break
		}
	}
	if local == nil {
		return
	}
	fn := staticCallee(p.pkg.Info, call)
	if fn == nil {
		// Builtins (append(&x...) is not legal, but be safe) resolve to
		// *types.Builtin, not *types.Func; they do not retain pointers.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := p.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				return
			}
		}
		p.report(local.Pos(), "address of hot-loop local %s passed through a dynamic call; escape analysis must heap-allocate it", local.Name)
		return
	}
	if fn.Pkg() != nil && p.pkg.Types != nil && fn.Pkg().Path() == p.pkg.Types.Path() {
		return
	}
	p.report(local.Pos(), "address of hot-loop local %s leaves the package via %s; escape analysis must heap-allocate it", local.Name, fn.Name())
}

// checkEscapingStore flags storing a local's address into a structure
// that outlives the iteration (field or element target).
func checkEscapingStore(p *pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		id := addrOfLocal(p.pkg, rhs)
		if id == nil || i >= len(as.Lhs) {
			continue
		}
		switch ast.Unparen(as.Lhs[i]).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			p.report(id.Pos(), "address of hot-loop local %s stored outside the loop frame; it escapes to the heap", id.Name)
		}
	}
}

// addrOfLocal matches &x where x is a function-local variable (not a
// field selector, not a package-level var) and returns the ident.
func addrOfLocal(pkg *lint.Package, e ast.Expr) *ast.Ident {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	id, ok := ast.Unparen(u.X).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if pkg.Types != nil && v.Parent() == pkg.Types.Scope() {
		return nil
	}
	return id
}
