// Package perf is verrolint's performance layer: analyzers that prove the
// repository's hot loops are allocation-free and bounds-check-eliminable
// before anyone spends a PR making them faster. The privacy suites ask
// "can raw data leak?"; this suite asks "will the per-frame kernels churn
// the GC or re-check every index?" — the prerequisite hygiene for the
// SIMD-class kernel work on the roadmap.
//
// The unit of policy is the hot set (DESIGN.md §2j): a per-package set of
// functions that run per frame or per pixel. Roots are (a) every function
// declared in a configured kernel package, (b) extra named entrypoints
// (the Phase-II render cores), and (c) every closure passed to a
// worker-pool construct (par.For, par.Map, par.MapPool, (par.Pool).For).
// Hotness propagates through same-package static calls at two strengths:
// hot (the body's own loops are hot loops) and loop-hot (the function is
// called from inside a hot loop, so its entire body counts as loop
// interior). Cross-package hotness needs no propagation: the kernel
// packages' functions are roots in their own package, and Go's import
// graph is acyclic, so a package's hot set depends only on its own source
// — which is what lets the incremental driver cache perf diagnostics
// per package with no cross-package summaries at all.
//
// Known under-approximations, accepted for sweep-clean signal: calls
// through interfaces or stored func values do not propagate hotness, and
// a par closure calling into a non-kernel dependency package does not
// mark that dependency hot.
package perf

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"verro/internal/lint"
)

// Analyzer is one hot-path check. Perf analyzers are strictly per-package
// (see the package comment for why that loses nothing), so unlike the
// flow/absint suites there is no whole-program fixpoint to share.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow
	// directives.
	Name string
	// Doc is the one-line invariant the analyzer encodes.
	Doc string

	run func(p *pass)
}

// Config declares what is hot. The project policy lives in suite.go;
// tests substitute fixture-sized configs.
type Config struct {
	// KernelPkgs are package paths (exact or prefix) whose every declared
	// function is a hot root: they are the per-frame compute kernels.
	KernelPkgs []string
	// HotFuncs are extra hot roots by normalized full name — entrypoints
	// that live outside kernel packages, like the Phase-II render cores.
	HotFuncs map[string]bool
	// ParChunk maps normalized callee names of worker-pool constructs
	// whose closure argument runs once per index chunk (par.For): only
	// loops inside the closure are hot loops.
	ParChunk map[string]bool
	// ParElem maps constructs whose closure runs once per element
	// (par.Map, par.MapPool): the whole closure body is loop interior.
	ParElem map[string]bool
}

// Kernel reports whether the package path is a configured kernel package.
func (c *Config) Kernel(pkgPath string) bool {
	for _, k := range c.KernelPkgs {
		if pkgPath == k || strings.HasPrefix(pkgPath, k+"/") {
			return true
		}
	}
	return false
}

// Run executes the perf analyzers over each package and returns the
// combined diagnostics sorted by position, with //lint:allow honored
// exactly as in the other suites.
func Run(pkgs []*lint.Package, cfg *Config, analyzers ...*Analyzer) []lint.Diagnostic {
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, AnalyzePackage(pkg, cfg, analyzers)...)
	}
	lint.Sort(diags)
	return diags
}

// AnalyzePackage runs the perf analyzers over one package and returns its
// sorted diagnostics. This is the incremental driver's entrypoint; because
// hot sets are a pure function of one package's source, it needs no
// dependency facts and its output is identical to Run's view of the same
// package.
func AnalyzePackage(pkg *lint.Package, cfg *Config, analyzers []*Analyzer) []lint.Diagnostic {
	hs := buildHotSet(pkg, cfg)
	var diags []lint.Diagnostic
	allow := pkg.Allow()
	for _, a := range analyzers {
		p := &pass{
			pkg:  pkg,
			hs:   hs,
			seen: map[string]bool{},
		}
		p.report = func(pos token.Pos, format string, args ...any) {
			position := pkg.Fset.Position(pos)
			if allow.Allows(a.Name, position) {
				return
			}
			d := lint.Diagnostic{Pos: position, Analyzer: a.Name, Message: fmt.Sprintf(format, args...)}
			key := d.String()
			if p.seen[key] {
				return
			}
			p.seen[key] = true
			diags = append(diags, d)
		}
		a.run(p)
	}
	lint.Sort(diags)
	return diags
}

// pass carries one analyzer's view of one package's hot set.
type pass struct {
	pkg    *lint.Package
	hs     *hotSet
	seen   map[string]bool
	report func(pos token.Pos, format string, args ...any)
}

// ---------------------------------------------------------------------
// Hot-set construction

// region is one contiguous body of hot code to scan: a hot function's
// body, or a par closure's body. baseLoop means the whole region is loop
// interior (loop-hot functions, per-element closures).
type region struct {
	body     *ast.BlockStmt
	baseLoop bool
	// decl is the enclosing declaration, for prealloc lookups that need
	// to see definitions outside the region (a par closure appending to a
	// captured slice).
	decl *ast.FuncDecl
}

// edge is one same-package static call out of a function or par closure.
type edge struct {
	callee string
	inLoop bool
}

// fnNode is one function declaration's hot-set state.
type fnNode struct {
	decl    *ast.FuncDecl
	edges   []edge
	hot     bool
	loopHot bool
}

// hotSet is the computed hot-code map of one package.
type hotSet struct {
	pkg     *lint.Package
	cfg     *Config
	fns     map[string]*fnNode
	regions []region
	// parBodies marks closure bodies handed to worker-pool constructs;
	// region walks skip them (each has its own region with the right
	// loop base), and hotescape exempts them from closure-in-loop
	// reporting (they are the sharding boundary, not per-iteration
	// garbage).
	parBodies map[*ast.BlockStmt]bool
}

// buildHotSet indexes the package's functions, finds the hot roots, and
// propagates hotness through same-package static calls to a fixpoint.
func buildHotSet(pkg *lint.Package, cfg *Config) *hotSet {
	hs := &hotSet{pkg: pkg, cfg: cfg, fns: map[string]*fnNode{}, parBodies: map[*ast.BlockStmt]bool{}}

	type parRoot struct {
		lit   *ast.FuncLit
		elem  bool
		decl  *ast.FuncDecl
		edges []edge
	}
	var parRoots []parRoot
	// Named same-package functions handed to par constructs are roots too
	// (par.MapPool(pool, n, 1, renderFrame) with renderFrame declared, not
	// a literal).
	var parFnRoots []parFn

	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &fnNode{decl: fd}
			hs.fns[normName(obj)] = n
			w := &edgeWalker{hs: hs}
			w.walk(fd.Body, 0)
			n.edges = w.edges
			parFnRoots = append(parFnRoots, w.parFns...)
			for _, pr := range w.par {
				pw := &edgeWalker{hs: hs}
				base := 0
				if pr.elem {
					base = 1
				}
				pw.walk(pr.lit.Body, base)
				parRoots = append(parRoots, parRoot{lit: pr.lit, elem: pr.elem, decl: fd, edges: pw.edges})
				parFnRoots = append(parFnRoots, pw.parFns...)
				// Closures nested inside a par closure that are themselves
				// handed to a par construct are rare but legal; fold their
				// roots in too.
				for _, inner := range pw.par {
					parRoots = append(parRoots, parRoot{lit: inner.lit, elem: inner.elem, decl: fd})
				}
			}
		}
	}

	// Seed and propagate. mark returns true when the callee's state rose,
	// keeping the worklist loop a monotone fixpoint over a finite lattice.
	var work []string
	mark := func(name string, loopHot bool) {
		n := hs.fns[name]
		if n == nil {
			return
		}
		changed := false
		if !n.hot {
			n.hot = true
			changed = true
		}
		if loopHot && !n.loopHot {
			n.loopHot = true
			changed = true
		}
		if changed {
			work = append(work, name)
		}
	}
	kernel := cfg.Kernel(pkg.Path)
	for name, n := range hs.fns {
		if kernel || cfg.HotFuncs[name] {
			n.hot = true
			work = append(work, name)
		}
	}
	sort.Strings(work)
	for _, pr := range parRoots {
		hs.parBodies[pr.lit.Body] = true
		for _, e := range pr.edges {
			mark(e.callee, pr.elem || e.inLoop)
		}
	}
	for _, pf := range parFnRoots {
		mark(pf.name, pf.elem)
	}
	for len(work) > 0 {
		name := work[len(work)-1]
		work = work[:len(work)-1]
		n := hs.fns[name]
		for _, e := range n.edges {
			mark(e.callee, n.loopHot || e.inLoop)
		}
	}

	// Materialize the scan regions in deterministic (position) order.
	for _, name := range sortedNames(hs.fns) {
		n := hs.fns[name]
		if n.hot || n.loopHot {
			hs.regions = append(hs.regions, region{body: n.decl.Body, baseLoop: n.loopHot, decl: n.decl})
		}
	}
	for _, pr := range parRoots {
		hs.regions = append(hs.regions, region{body: pr.lit.Body, baseLoop: pr.elem, decl: pr.decl})
	}
	sort.Slice(hs.regions, func(i, j int) bool { return hs.regions[i].body.Pos() < hs.regions[j].body.Pos() })
	return hs
}

func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// normName matches the flow/absint convention: types.Func.FullName with
// pointer-receiver stars stripped.
func normName(fn *types.Func) string {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return strings.ReplaceAll(fn.FullName(), "*", "")
}

// edgeWalker collects one body's same-package call edges and par-closure
// roots. Nested closures restart the loop depth at zero: a closure built
// in a loop may run anywhere, so its interior only counts as loop code
// through its own loops (hotescape separately flags the closure's
// construction).
type edgeWalker struct {
	hs     *hotSet
	edges  []edge
	parFns []parFn
	par    []struct {
		lit  *ast.FuncLit
		elem bool
	}
}

// parFn is a named function used as a par-construct body.
type parFn struct {
	name string
	elem bool
}

func (w *edgeWalker) walk(n ast.Node, depth int) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.ForStmt:
		w.walkEach(depth, n.Init, n.Cond, n.Post)
		w.walk(n.Body, depth+1)
		return
	case *ast.RangeStmt:
		w.walkEach(depth, n.Key, n.Value, n.X)
		w.walk(n.Body, depth+1)
		return
	case *ast.FuncLit:
		w.walk(n.Body, 0)
		return
	case *ast.CallExpr:
		if fn := staticCallee(w.hs.pkg.Info, n); fn != nil {
			name := normName(fn)
			elem := w.hs.cfg.ParElem[name]
			if (w.hs.cfg.ParChunk[name] || elem) && len(n.Args) > 0 {
				last := n.Args[len(n.Args)-1]
				if lit, ok := last.(*ast.FuncLit); ok {
					w.par = append(w.par, struct {
						lit  *ast.FuncLit
						elem bool
					}{lit, elem})
					for _, a := range n.Args[:len(n.Args)-1] {
						w.walk(a, depth)
					}
					return
				}
				if body := funcValue(w.hs.pkg, last); body != nil {
					w.parFns = append(w.parFns, parFn{name: normName(body), elem: elem})
				}
			}
			if fn.Pkg() != nil && w.hs.pkg.Types != nil && fn.Pkg().Path() == w.hs.pkg.Types.Path() {
				w.edges = append(w.edges, edge{callee: name, inLoop: depth > 0})
			}
		}
	}
	for _, c := range children(n) {
		w.walk(c, depth)
	}
}

func (w *edgeWalker) walkEach(depth int, nodes ...ast.Node) {
	for _, n := range nodes {
		if n != nil {
			w.walk(n, depth)
		}
	}
}

// children returns a node's direct AST children, the generic recursion
// step for walkers that manage loop depth themselves.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	if n == nil {
		return nil
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if c == n {
			return true
		}
		out = append(out, c)
		return false
	})
	return out
}

// funcValue resolves an expression used as a function argument to the
// same-package *types.Func it names, or nil.
func funcValue(pkg *lint.Package, e ast.Expr) *types.Func {
	var fn *types.Func
	switch f := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ = pkg.Info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pkg.Info.Uses[f.Sel].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || pkg.Types == nil || fn.Pkg().Path() != pkg.Types.Path() {
		return nil
	}
	return fn
}

// staticCallee resolves a call to its target *types.Func when the callee
// is a plain identifier or selector (possibly generic-instantiated) —
// the flow engine's resolution, repeated here because the packages do not
// export it to each other.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	for {
		switch f := fun.(type) {
		case *ast.Ident:
			fn, _ := info.Uses[f].(*types.Func)
			return fn
		case *ast.SelectorExpr:
			fn, _ := info.Uses[f.Sel].(*types.Func)
			return fn
		case *ast.IndexExpr:
			fun = ast.Unparen(f.X)
		case *ast.IndexListExpr:
			fun = ast.Unparen(f.X)
		default:
			return nil
		}
	}
}
