package perf

import (
	"testing"

	"verro/internal/lint/absint"
)

func TestHotAllocFixture(t *testing.T) {
	RunFixture(t, []string{"testdata/hotalloc"}, true, NewHotAlloc())
}

func TestHotEscapeFixture(t *testing.T) {
	RunFixture(t, []string{"testdata/hotescape"}, true, NewHotEscape())
}

// TestHotParFixture runs both perf analyzers over the par-roots fixture:
// the package is not a kernel, so every finding there proves the
// worker-pool constructs seed the hot set on their own.
func TestHotParFixture(t *testing.T) {
	RunFixture(t, []string{"testdata/hotpar"}, false, ProjectAnalyzers()...)
}

// TestBCEFixture drives the interval-backed bce analyzer through the
// absint engine, exactly as the driver wires it.
func TestBCEFixture(t *testing.T) {
	absint.RunFixture(t, []string{"testdata/bce"}, NewProjectBCE())
}

// TestAnalyzerNamesDistinct guards the shared-baseline contract within
// the perf suite (cross-suite uniqueness is asserted in the driver test).
func TestAnalyzerNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range ProjectAnalyzers() {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
	}
}

// TestKernelPrefixMatch pins Config.Kernel's prefix semantics: exact
// package or subpackage, never a sibling sharing a name prefix.
func TestKernelPrefixMatch(t *testing.T) {
	cfg := &Config{KernelPkgs: []string{"verro/internal/img"}}
	for path, want := range map[string]bool{
		"verro/internal/img":      true,
		"verro/internal/img/raw":  true,
		"verro/internal/imgcodec": false,
		"verro/internal/hog":      false,
	} {
		if got := cfg.Kernel(path); got != want {
			t.Errorf("Kernel(%q) = %v, want %v", path, got, want)
		}
	}
}
