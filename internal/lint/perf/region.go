package perf

import (
	"go/ast"
)

// scanner walks one hot region, tracking the stack of enclosing loop
// statements so visitors know whether a node sits in loop interior and
// which loops dominate it. Nested closures restart the stack (their
// execution context is unknown); closures handed to par constructs are
// skipped entirely — each is its own region. Immediately-invoked literals
// keep the current stack: they run inline.
type scanner struct {
	hs *hotSet
	r  region
	// visit is called for every node. loops is the stack of enclosing
	// for/range statements within the region, innermost last; it is only
	// valid during the call. Returning false prunes the subtree.
	visit func(n ast.Node, loops []ast.Node) bool
}

// inLoop reports whether a visit with the given stack is loop interior —
// syntactically inside a loop, or anywhere in a region whose every
// statement is loop interior (loop-hot functions, per-element closures).
func (s *scanner) inLoop(loops []ast.Node) bool {
	return s.r.baseLoop || len(loops) > 0
}

func (s *scanner) scan() {
	s.walk(s.r.body, nil)
}

func (s *scanner) walk(n ast.Node, loops []ast.Node) {
	if n == nil {
		return
	}
	// Par-closure literals are invisible to visitors — each is its own
	// region — so the skip must come before the visit call.
	if lit, ok := n.(*ast.FuncLit); ok && s.hs.parBodies[lit.Body] {
		return
	}
	if !s.visit(n, loops) {
		return
	}
	switch n := n.(type) {
	case *ast.ForStmt:
		s.walkEach(loops, n.Init, n.Cond, n.Post)
		s.walk(n.Body, append(loops, n))
		return
	case *ast.RangeStmt:
		s.walkEach(loops, n.Key, n.Value, n.X)
		s.walk(n.Body, append(loops, n))
		return
	case *ast.FuncLit:
		s.walk(n.Body, nil)
		return
	case *ast.CallExpr:
		if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
			for _, a := range n.Args {
				s.walk(a, loops)
			}
			s.walk(lit.Body, loops)
			return
		}
	}
	for _, c := range children(n) {
		s.walk(c, loops)
	}
}

func (s *scanner) walkEach(loops []ast.Node, nodes ...ast.Node) {
	for _, n := range nodes {
		if n != nil {
			s.walk(n, loops)
		}
	}
}
