package perf

import (
	"go/token"
	"strings"
	"sync"

	"verro/internal/lint"
	"verro/internal/lint/absint"
)

// ProjectConfig is this repository's hot-set policy: the per-frame CV
// kernels are hot wholesale, the Phase-II render cores are named roots,
// and every worker-pool closure is hot wherever it appears.
func ProjectConfig() *Config {
	return &Config{
		KernelPkgs: []string{
			"verro/internal/img",
			"verro/internal/hog",
			"verro/internal/inpaint",
			"verro/internal/blur",
			"verro/internal/keyframe",
		},
		HotFuncs: map[string]bool{
			// Phase-II stream/render stage cores outside the kernel
			// packages: per-frame geometry and rendering.
			"(verro/internal/core.phase2Plan).renderRange":   true,
			"(verro/internal/core.phase2Plan).geometryRange": true,
		},
		ParChunk: map[string]bool{
			"verro/internal/par.For":        true,
			"(verro/internal/par.Pool).For": true,
		},
		ParElem: map[string]bool{
			"verro/internal/par.Map":     true,
			"verro/internal/par.MapPool": true,
		},
	}
}

// fixtureConfig treats a perf fixture package as one kernel with the real
// par construct names, so testdata exercises the same policy shapes.
func fixtureConfig(pkgPath string) *Config {
	cfg := ProjectConfig()
	cfg.KernelPkgs = append(cfg.KernelPkgs, pkgPath)
	return cfg
}

// ProjectAnalyzers returns the perf suite configured for this repository.
func ProjectAnalyzers() []*Analyzer {
	return []*Analyzer{NewHotAlloc(), NewHotEscape()}
}

// NewProjectBCE builds the bce interval analyzer bound to the project
// hot-set policy. It lives here rather than in the absint suite because
// the hot-loop site classification is perf's; absint contributes the
// value facts. Match covers the kernel packages plus the perf fixtures.
func NewProjectBCE() *absint.Analyzer {
	cfg := ProjectConfig()
	a := absint.NewBCE(SiteFilter(cfg))
	a.Match = func(pkgPath string) bool {
		if cfg.Kernel(pkgPath) {
			return true
		}
		// The perf analyzer fixtures and the cmd/verrolint driver fixture
		// (hot via its par.For closure, not via a kernel package).
		return strings.Contains(pkgPath, "perf/testdata") ||
			strings.Contains(pkgPath, "testdata/perfdemo")
	}
	return a
}

// SiteFilter adapts IndexSites into the per-position callback absint's
// bce hook consumes, memoizing per package. The absint engine constructs
// hooks once per analyzed function, and the incremental driver analyzes
// packages concurrently, so the memo is locked.
func SiteFilter(cfg *Config) func(pkg *lint.Package, pos token.Pos) (hot, proven bool) {
	var mu sync.Mutex
	memo := map[*lint.Package]map[token.Pos]bool{}
	return func(pkg *lint.Package, pos token.Pos) (hot, proven bool) {
		mu.Lock()
		sites, ok := memo[pkg]
		if !ok {
			c := cfg
			if strings.Contains(pkg.Path, "perf/testdata") {
				c = fixtureConfig(pkg.Path)
			}
			sites = IndexSites(pkg, c)
			memo[pkg] = sites
		}
		mu.Unlock()
		proven, hot = sites[pos]
		return hot, proven
	}
}
