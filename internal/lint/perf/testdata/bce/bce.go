// Package bce exercises the bce analyzer: indexing inside a hot loop
// must be provably bounds-check-eliminable, either syntactically (the
// range and counter rules) or by interval value facts. The fixture is
// treated as a kernel package, so every loop here is hot.
package bce

// rowMajor is the repository's canonical offender: y*stride+x is opaque
// to the prove pass, so the compiler keeps an IsInBounds per pixel.
func rowMajor(pix []float64, w, h, stride int) float64 {
	total := 0.0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			total += pix[y*stride+x] // want "bounds check in hot loop is not provably eliminable"
		}
	}
	return total
}

// ranged is clean: the range rule proves xs[i] for i := range xs.
func ranged(xs []float64) float64 {
	total := 0.0
	for i := range xs {
		total += xs[i]
	}
	return total
}

// counter is clean: i < len(xs) with i := 0 and i++ dominates xs[i].
func counter(xs []float64) float64 {
	total := 0.0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	return total
}

// headroom is clean: i < len(xs)-1 admits every i the body indexes.
func headroom(xs []float64) float64 {
	total := 0.0
	for i := 0; i < len(xs)-1; i++ {
		total += xs[i]
	}
	return total
}

// leqBound is clean: i <= len(xs)-1 normalizes to the counter rule.
func leqBound(xs []float64) float64 {
	total := 0.0
	for i := 0; i <= len(xs)-1; i++ {
		total += xs[i]
	}
	return total
}

// offsetIndex: the compiler does NOT eliminate offset indices even under
// slack conditions (verified against -d=ssa/check_bce), so the prover
// must report both sites — a human argument that i+1 < len(xs) covers
// them is an argument the prove pass never makes.
func offsetIndex(xs []float64) float64 {
	total := 0.0
	for i := 0; i+1 < len(xs); i++ {
		total += xs[i] + xs[i+1] // want "bounds check in hot loop" "bounds check in hot loop"
	}
	return total
}

// strided: step two defeats induction-variable detection.
func strided(xs []float64) float64 {
	total := 0.0
	for i := 0; i < len(xs); i += 2 {
		total += xs[i] // want "bounds check in hot loop is not provably eliminable"
	}
	return total
}

// hoistAssert is clean: the `_ = xs[n-1]` assertion before the loop ties
// n to len(xs), exactly the idiom the diagnostic recommends.
func hoistAssert(xs []float64, n int) float64 {
	total := 0.0
	_ = xs[n-1]
	for i := 0; i < n; i++ {
		total += xs[i]
	}
	return total
}

// valueProven is clean: no syntactic rule applies to a constant index,
// but the interval engine knows xs has length 8 and the index is 3.
func valueProven(n int) float64 {
	xs := make([]float64, 8)
	total := 0.0
	for i := 0; i < n; i++ {
		total += xs[3]
	}
	return total
}

// mutatedBase re-slices the indexed slice inside the body, invalidating
// the dominating-check argument.
func mutatedBase(xs []float64) float64 {
	total := 0.0
	for i := range xs {
		xs = xs[:len(xs)-1]
		total += xs[i] // want "bounds check in hot loop is not provably eliminable"
	}
	return total
}

// dataDependent: idx[i] is range-proven, but xs[idx[i]] depends on data
// the prover cannot bound.
func dataDependent(xs []float64, idx []int) float64 {
	total := 0.0
	for i := range idx {
		total += xs[idx[i]] // want "bounds check in hot loop is not provably eliminable"
	}
	return total
}

// minClamp is clean: the prologue clamps n to min(len(a), len(b)), so
// both accesses under i < n are proven by the clamp rule.
func minClamp(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += a[i] * b[i]
	}
	return total
}

// clampMissing: n is clamped against a only, so b[i] stays unproven.
func clampMissing(a, b []float64) float64 {
	n := len(a)
	total := 0.0
	for i := 0; i < n; i++ {
		total += b[i] // want "bounds check in hot loop is not provably eliminable"
	}
	return total
}

// makeMirror is clean: out shares v's length by construction, so the
// range key proves out[i] via the mirror rule.
func makeMirror(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * 2
	}
	return out
}

// mirrorMissing: out's length is unrelated to v's, so out[i] under
// range v stays unproven.
func mirrorMissing(v []float64, m int) []float64 {
	out := make([]float64, m)
	for i, x := range v {
		out[i] = x * 2 // want "bounds check in hot loop is not provably eliminable"
	}
	return out
}

// repeated: the first pix[i] pays the kept check; the write-back is
// dominated by it and proven by the repeat rule.
func repeated(pix []float64, w, h, stride int) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*stride + x
			v := pix[i] // want "bounds check in hot loop is not provably eliminable"
			pix[i] = v * 0.5
		}
	}
}

// guarded is clean on prev[px]: the explicit range guard dominates the
// access (cur[x] is counter-proven).
func guarded(prev, cur []float64, shift int) float64 {
	total := 0.0
	for x := 0; x < len(cur); x++ {
		px := x + shift
		if px < 0 || px >= len(prev) {
			continue
		}
		total += prev[px] - cur[x]
	}
	return total
}

// halfGuarded: checking only the upper bound leaves the negative case,
// so the compiler keeps the check and the guard rule must not fire.
func halfGuarded(prev, cur []float64, shift int) float64 {
	total := 0.0
	for x := 0; x < len(cur); x++ {
		px := x + shift
		if px >= len(prev) {
			continue
		}
		total += prev[px] // want "bounds check in hot loop is not provably eliminable"
	}
	return total
}

// subslice is clean: p is defined in-region as a three-element window,
// so constant indices below three and the c < 3 counter are proven by
// the subslice rule.
func subslice(pix []float64, w, h, stride int) float64 {
	total := 0.0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p := pix[(y*stride+x)*3 : (y*stride+x)*3+3]
			total += p[0] + p[1] + p[2]
			for c := 0; c < 3; c++ {
				total += p[c]
			}
		}
	}
	return total
}

// subsliceOver: the constant index equals the window length, and the
// counter bound exceeds it — both stay unproven.
func subsliceOver(pix []float64, w, stride int) float64 {
	total := 0.0
	for x := 0; x < w; x++ {
		p := pix[x*stride : x*stride+3]
		total += p[3] // want "bounds check in hot loop is not provably eliminable"
		for c := 0; c < 4; c++ {
			total += p[c] // want "bounds check in hot loop is not provably eliminable"
		}
	}
	return total
}

// hoistAllowed documents the suppression contract for the sites that
// stay hot on purpose.
func hoistAllowed(xs []float64, stride int) float64 {
	total := 0.0
	for i := 0; i < len(xs); i++ {
		total += xs[(i*stride)%len(xs)] //lint:allow bce fixture demonstrates suppression
	}
	return total
}
