module perf/testdata/groundtruth

go 1.24
