// Package groundtruth is a self-contained module the ground-truth gate
// test compiles with -gcflags=-d=ssa/check_bce and also runs the bce
// analyzer over: every site the analyzer reports must appear in the
// compiler's kept-check output. The package deliberately mixes shapes the
// compiler eliminates (which bce must stay silent on — a report there is
// a gate failure, not a style nit) with shapes it keeps (which make the
// subset assertion non-vacuous even after the kernel sweep drives the
// real packages clean). Its own go.mod keeps `go build` of the repo from
// seeing it while giving the test a dependency-free compile target.
package groundtruth

// RowMajor keeps one IsInBounds per pixel: y*stride+x is opaque to the
// prove pass. bce must report it.
func RowMajor(pix []float64, w, h, stride int) float64 {
	total := 0.0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			total += pix[y*stride+x]
		}
	}
	return total
}

// DataDependent keeps a check on xs[idx[i]]. bce must report it.
func DataDependent(xs []float64, idx []int) float64 {
	total := 0.0
	for i := range idx {
		total += xs[idx[i]]
	}
	return total
}

// OffsetIndex keeps checks on both xs[i] and xs[i+1] despite the slack
// condition. bce must report both.
func OffsetIndex(xs []float64) float64 {
	total := 0.0
	for i := 0; i+1 < len(xs); i++ {
		total += xs[i] + xs[i+1]
	}
	return total
}

// Ranged is fully eliminated; bce must stay silent.
func Ranged(xs []float64) float64 {
	total := 0.0
	for i := range xs {
		total += xs[i]
	}
	return total
}

// Counter is fully eliminated; bce must stay silent.
func Counter(xs []float64) float64 {
	total := 0.0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	return total
}

// HoistedRow is the sweep's row idiom: the slicing keeps one
// IsSliceInBounds per row (bce does not model slice expressions), and the
// inner loop is eliminated — bce must stay silent on row[x].
func HoistedRow(pix []float64, w, h, stride int) float64 {
	total := 0.0
	for y := 0; y < h; y++ {
		row := pix[y*stride : y*stride+w]
		for x := 0; x < len(row); x++ {
			total += row[x]
		}
	}
	return total
}

// HoistAssert is the recommended assertion idiom: the in-loop check is
// eliminated — bce must stay silent there.
func HoistAssert(xs []float64, n int) float64 {
	total := 0.0
	_ = xs[n-1]
	for i := 0; i < n; i++ {
		total += xs[i]
	}
	return total
}

// MinClamp is the similarity kernels' prologue: n ≤ len(a) and n ≤ len(b),
// so both in-loop checks are eliminated — bce must stay silent.
func MinClamp(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	total := 0.0
	for i := 0; i < n; i++ {
		total += a[i] * b[i]
	}
	return total
}

// MakeMirror writes through a slice made with the ranged slice's length;
// the compiler carries the length equality — bce must stay silent.
func MakeMirror(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * 2
	}
	return out
}

// RepeatAccess pays one kept check on the first pix[i] read; the
// write-back reuses its bounds fact — bce must stay silent on the second.
func RepeatAccess(pix []float64, w, h, stride int) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*stride + x
			v := pix[i]
			pix[i] = v * 0.5
		}
	}
}

// Subslice is the channel-triple idiom: p has known length 3, so the
// constant indices and the c < 3 counter are all eliminated — bce must
// stay silent on every p access.
func Subslice(pix []float64, w, h, stride int) float64 {
	total := 0.0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p := pix[(y*stride+x)*3 : (y*stride+x)*3+3]
			total += p[0] + p[1] + p[2]
			for c := 0; c < 3; c++ {
				total += p[c]
			}
		}
	}
	return total
}

// GuardContinue is the shifted-window idiom: the explicit range guard
// dominates prev[px], so its check is eliminated — bce must stay silent
// there (cur[x] is counter-proven).
func GuardContinue(prev, cur []float64, shift int) float64 {
	total := 0.0
	for x := 0; x < len(cur); x++ {
		px := x + shift
		if px < 0 || px >= len(prev) {
			continue
		}
		total += prev[px] - cur[x]
	}
	return total
}
