// Package hotalloc exercises the hotalloc analyzer: hot loops must not
// allocate. The fixture runs in kernel mode, so every function is a hot
// root — its loops are hot loops, but straight-line code is not.
package hotalloc

import (
	"errors"
	"fmt"
)

func perIterationBuiltins(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		buf := make([]float64, 8) // want "make allocates a slice per hot-loop iteration"
		seen := make(map[int]int) // want "make allocates a map per hot-loop iteration"
		ch := make(chan int, 1)   // want "make allocates a channel per hot-loop iteration"
		p := new(int)             // want "new allocates per hot-loop iteration"
		total += len(buf) + len(seen) + cap(ch) + *p
	}
	return total
}

func perIterationLiterals(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		xs := []int{i, i + 1} // want "slice literal allocates per hot-loop iteration"
		m := map[string]int{} // want "map literal allocates per hot-loop iteration"
		b := &box{v: i}       // want "&composite literal allocates on the heap per hot-loop iteration"
		total += xs[0] + len(m) + b.v
	}
	return total
}

type box struct{ v int }

func perIterationConversions(words []string, raw [][]byte) int {
	total := 0
	for i := range words {
		bs := []byte(words[i]) // want "conversion copies and allocates per hot-loop iteration"
		total += len(bs)
	}
	for i := range raw {
		s := string(raw[i]) // want "conversion copies and allocates per hot-loop iteration"
		total += len(s)
	}
	return total
}

func perIterationBoxing(n int) error {
	for i := 0; i < n; i++ {
		if i == n-1 {
			return fmt.Errorf("stopped at %d", i) // want "fmt.Errorf boxes its arguments"
		}
		if i < 0 {
			return errors.New("negative") // want "errors.New boxes its arguments"
		}
	}
	return nil
}

func perIterationDefer(n int) {
	for i := 0; i < n; i++ {
		defer release(i) // want "defer in a hot loop allocates its frame per iteration"
	}
}

func release(int) {}

// appendGrowth: appending to a provably capacity-less slice is a
// per-iteration reallocation; appending into a preallocated one is the
// fix idiom and stays silent.
func appendGrowth(xs []float64) ([]int, []int, []float64) {
	var grown []int
	empty := []int{}
	pre := make([]int, 0, len(xs))
	for i := range xs {
		grown = append(grown, i) // want "append grows grown from a nil slice"
		empty = append(empty, i) // want "append grows empty from a nil slice"
		pre = append(pre, i)
	}
	// Reslice-and-refill is the buffer-reuse idiom: the destination was
	// make-initialized, so append never reallocates.
	buf := make([]float64, 0, len(xs))
	for range xs {
		buf = append(buf[:0], xs...)
	}
	return grown, empty, buf
}

// straightLine is hot (kernel mode) but has no loop: allocation in
// straight-line code runs once per call, not per iteration, and is fine.
func straightLine(n int) []float64 {
	buf := make([]float64, n)
	_ = fmt.Sprintf("%d", n)
	return buf
}

// helper is called from inside perLoopCallee's hot loop, so its whole
// body — including straight-line allocations — is loop interior.
func helper(n int) []float64 {
	return make([]float64, n) // want "make allocates a slice per hot-loop iteration"
}

func perLoopCallee(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += len(helper(i))
	}
	return total
}

// allowed documents the directive contract: a justified //lint:allow
// suppresses the diagnostic, so the line carries no want comment.
func allowed(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		buf := make([]byte, 1) //lint:allow hotalloc fixture demonstrates suppression
		total += len(buf)
	}
	return total
}
