// Package hotescape exercises the hotescape analyzer: hot-loop locals
// must stay on the stack. The fixture runs in kernel mode, so every
// function is a hot root.
package hotescape

import "sync/atomic"

func closurePerIteration(xs []float64) float64 {
	total := 0.0
	for i := range xs {
		f := func() float64 { return xs[i] } // want "closure built per hot-loop iteration"
		total += f()
	}
	return total
}

func goroutinePerIteration(n int, out chan<- int) {
	for i := 0; i < n; i++ {
		go func(v int) { out <- v }(i) // want "goroutine launched per hot-loop iteration"
	}
}

func addressLeavesPackage(n int) int64 {
	var total int64
	for i := 0; i < n; i++ {
		local := int64(i)
		atomic.AddInt64(&local, 1) // want "address of hot-loop local local leaves the package via AddInt64"
		total += local
	}
	return total
}

func addressThroughDynamicCall(fns []func(*int), n int) int {
	total := 0
	for i := 0; i < n; i++ {
		x := i
		fns[0](&x) // want "address of hot-loop local x passed through a dynamic call"
		total += x
	}
	return total
}

type node struct{ p *int }

func addressStored(nodes []node, n int) {
	for i := 0; i < n; i++ {
		v := i * 2
		nodes[i].p = &v // want "address of hot-loop local v stored outside the loop frame"
	}
}

// samePackageCallee: &local passed to a function in this package stays
// silent — the compiler's escape analysis sees through it, and so does a
// reviewer.
func samePackageCallee(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		x := i
		bump(&x)
		total += x
	}
	return total
}

func bump(p *int) { *p++ }

// straightLine: a closure or escaping address outside any loop is
// once-per-call, not per-iteration, and is fine.
func straightLine(n int) func() int {
	x := n
	atomic.AddInt64(new(int64), 1)
	return func() int { return x }
}
