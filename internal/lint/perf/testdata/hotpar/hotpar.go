// Package hotpar exercises the hot-set roots the worker-pool constructs
// create: this package is NOT a kernel package, so the only hot code is
// what par.For / par.Map / par.MapPool closures (and the same-package
// functions they call) reach. It is the fixture proof that perf's policy
// follows the parallelism API wherever it is used.
package hotpar

import "verro/internal/par"

// chunked: a par.For closure runs once per chunk, so its straight-line
// body is setup code (clean) and only its own loops are hot loops.
func chunked(xs []float64) {
	par.For(len(xs), 1, func(lo, hi int) {
		scratch := make([]float64, 4)
		for i := lo; i < hi; i++ {
			tmp := make([]float64, 4) // want "make allocates a slice per hot-loop iteration"
			xs[i] += tmp[0] + scratch[0]
		}
	})
}

// perElement: a par.Map closure runs once per element, so its whole body
// is loop interior.
func perElement(n int) []int {
	return par.Map(n, 1, func(i int) int {
		buf := make([]int, 1) // want "make allocates a slice per hot-loop iteration"
		return buf[0] + i
	})
}

// pooled: (par.Pool).For and par.MapPool are the same constructs on an
// explicit pool.
func pooled(p *par.Pool, xs []float64) []float64 {
	p.For(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] = float64(len(make([]byte, 1))) // want "make allocates a slice per hot-loop iteration"
		}
	})
	return par.MapPool(p, len(xs), 1, func(i int) float64 {
		box := &holder{v: xs[i]} // want "&composite literal allocates on the heap per hot-loop iteration"
		return box.v
	})
}

type holder struct{ v float64 }

// namedBody: a declared function passed to a per-element construct is a
// hot root with a loop-interior body, same as a literal.
func namedBody(n int) []int {
	return par.Map(n, 1, element)
}

func element(i int) int {
	buf := make([]int, 1) // want "make allocates a slice per hot-loop iteration"
	return buf[0] + i
}

// propagated: a helper called from inside a par closure's hot loop is
// loop-hot — its whole body is loop interior.
func propagated(xs []float64) {
	par.For(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xs[i] = leafAlloc(i)
		}
	})
}

func leafAlloc(i int) float64 {
	tmp := make([]float64, 1) // want "make allocates a slice per hot-loop iteration"
	tmp[0] = float64(i)
	return tmp[0]
}

// cold: nothing here touches a par construct, and the package is not a
// kernel, so allocation in an ordinary loop stays silent.
func cold(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		buf := make([]int, 4)
		total += len(buf)
	}
	return total
}

// parClosureNotReported: the par closure itself is the sharding
// boundary, not per-iteration garbage — hotescape must not flag its
// construction even when the call site sits in a hot loop of a par.Map
// body.
func parClosureNotReported(frames [][]float64) {
	par.Map(len(frames), 1, func(i int) int {
		par.For(len(frames[i]), 1, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				frames[i][j] = 0
			}
		})
		return i
	})
}
