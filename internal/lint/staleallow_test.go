package lint

import (
	"strings"
	"testing"
)

// loadAndRun loads the fixture directory and runs the floateq analyzer
// through the package's shared allow index, the setup every StaleAllows
// test needs: hits recorded, stale directives left over.
func loadAndRun(t *testing.T, src string) *Package {
	t.Helper()
	dir := writeFixture(t, src)
	pkg, err := NewLoader().Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	Run(pkg, NewFloatEq())
	return pkg
}

func TestStaleAllowReported(t *testing.T) {
	pkg := loadAndRun(t, `package fixture

func live(a, b float64) bool {
	return a == b //lint:allow floateq still suppressing
}

func stale(a, b int) bool {
	return a == b //lint:allow floateq integers never trip floateq
}
`)
	diags := pkg.Allow().StaleAllows(map[string]bool{"floateq": true})
	if len(diags) != 1 {
		t.Fatalf("want exactly the stale directive reported, got %v", diags)
	}
	d := diags[0]
	if d.Analyzer != StaleAllowsName {
		t.Errorf("analyzer = %q, want %q", d.Analyzer, StaleAllowsName)
	}
	if !strings.Contains(d.Message, "//lint:allow floateq no longer suppresses") {
		t.Errorf("message = %q", d.Message)
	}
	if d.Pos.Line != 8 {
		t.Errorf("reported line %d, want 8 (the stale directive)", d.Pos.Line)
	}
}

// TestStaleAllowNextLineScope: a directive above its statement is a hit
// via the line-below cell and must not be reported.
func TestStaleAllowNextLineScope(t *testing.T) {
	pkg := loadAndRun(t, `package fixture

func above(a, b float64) bool {
	//lint:allow floateq comment-above style
	return a == b
}
`)
	if diags := pkg.Allow().StaleAllows(map[string]bool{"floateq": true}); len(diags) != 0 {
		t.Fatalf("comment-above directive wrongly stale: %v", diags)
	}
}

// TestStaleAllowOutsideRanSkipped: a subset run must not judge another
// suite's directives.
func TestStaleAllowOutsideRanSkipped(t *testing.T) {
	pkg := loadAndRun(t, `package fixture

func f(a, b int) bool {
	return a == b //lint:allow privleak different suite, not run here
}
`)
	if diags := pkg.Allow().StaleAllows(map[string]bool{"floateq": true}); len(diags) != 0 {
		t.Fatalf("directive outside the ran set wrongly reported: %v", diags)
	}
	if diags := pkg.Allow().StaleAllows(map[string]bool{"floateq": true, "privleak": true}); len(diags) != 1 {
		t.Fatalf("directive inside the ran set not reported: %v", diags)
	}
}

// TestStaleAllowSelfSuppression: //lint:allow staleallow on the directive
// line keeps a deliberately speculative allow.
func TestStaleAllowSelfSuppression(t *testing.T) {
	pkg := loadAndRun(t, `package fixture

func f(a, b int) bool {
	return a == b //lint:allow floateq,staleallow kept for a pending float refactor
}
`)
	if diags := pkg.Allow().StaleAllows(map[string]bool{"floateq": true}); len(diags) != 0 {
		t.Fatalf("staleallow self-suppression ignored: %v", diags)
	}
}

// TestStaleAllowMultiName: one comma-list directive is judged per
// analyzer — the hitting name survives, the idle one is stale.
func TestStaleAllowMultiName(t *testing.T) {
	pkg := loadAndRun(t, `package fixture

func f(a, b float64) bool {
	return a == b //lint:allow floateq,detrand only floateq fires here
}
`)
	diags := pkg.Allow().StaleAllows(map[string]bool{"floateq": true, "detrand": true})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "//lint:allow detrand") {
		t.Fatalf("want exactly the detrand half stale, got %v", diags)
	}
}

func TestStaleAllowNilIndex(t *testing.T) {
	var idx *AllowIndex
	if diags := idx.StaleAllows(map[string]bool{"floateq": true}); diags != nil {
		t.Fatalf("nil index must report nothing, got %v", diags)
	}
}
