package lint

// ProjectAnalyzers returns the analyzer suite with VERRO's package scoping,
// the configuration `make lint` runs over the whole repository:
//
//   - detrand and maporder run everywhere — determinism is a global
//     invariant.
//   - walltime exempts internal/obs (span timing is its purpose) and
//     internal/par (worker busy gauges); the span-timing call sites in
//     internal/core carry //lint:allow walltime annotations instead, so
//     each one is individually visible.
//   - floateq is scoped to the privacy-math and optimization packages
//     (internal/ldp, internal/core, internal/lp) where an exact float
//     comparison can break the ε bound or a pivot rule.
//   - panicfree is scoped to library packages under internal/ — binaries
//     and examples may still panic on startup misconfiguration.
func ProjectAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewDetRand(),
		NewWallTime("verro/internal/obs", "verro/internal/par"),
		NewMapOrder(),
		NewFloatEq("verro/internal/ldp", "verro/internal/core", "verro/internal/lp"),
		NewPanicFree("verro/internal"),
	}
}

// ByName returns the named analyzer from the project suite, or nil.
func ByName(name string) *Analyzer {
	for _, a := range ProjectAnalyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
