// Fixture for the detrand analyzer: global math/rand draws and wall-clock
// seeding are flagged; threaded seeded generators and annotated sites pass.
package fixture

import (
	"math/rand"
	"time"
)

func globalDraws() float64 {
	n := rand.Intn(10)                 // want "global math/rand.Intn"
	return rand.Float64() + float64(n) // want "global math/rand.Float64"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle"
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the wall clock"
}

func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func allowedDraw() int {
	return rand.Intn(3) //lint:allow detrand fixture demonstrates the directive
}

func allowedAbove() int {
	//lint:allow detrand fixture demonstrates comment-above suppression
	return rand.Intn(3)
}
