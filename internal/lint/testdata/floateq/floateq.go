// Fixture for the floateq analyzer: exact float comparison is flagged;
// tolerance comparison, integer comparison, and annotated sentinels pass.
package fixture

import "math"

func exactEq(a, b float64) bool {
	return a == b // want "== on floating-point operands"
}

func exactNeq(a float64) bool {
	return a != 0 // want "!= on floating-point operands"
}

func exactEq32(a, b float32) bool {
	return a == b // want "== on floating-point operands"
}

func intEq(a, b int) bool {
	return a == b // ok: integers compare exactly
}

func tolerant(a, b float64) bool {
	return math.Abs(a-b) < 1e-9 // ok: tolerance comparison
}

func nanCheck(a float64) bool {
	return math.IsNaN(a) // ok: the sanctioned NaN test
}

func sentinel(f float64) bool {
	return f == 0.5 //lint:allow floateq 0.5 is exactly representable
}
