// Fixture for the maporder analyzer: order-sensitive work inside a map
// range is flagged; the collect-keys-then-sort idiom, commutative integer
// arithmetic, and annotated sites pass.
package fixture

import (
	"fmt"
	"sort"
)

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append inside range over map"
	}
	return keys
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: sorted directly after the loop
	}
	sort.Strings(keys)
	return keys
}

func collectThenSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: sort.Slice after the loop
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func nestedCollectThenSort(ms []map[string]int) []string {
	var keys []string
	for _, m := range ms {
		for k := range m {
			keys = append(keys, k) // ok: sorted after the enclosing loop
		}
	}
	sort.Strings(keys)
	return keys
}

func floatAccum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "floating-point accumulation"
	}
	return sum
}

func intAccum(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v // ok: integer addition commutes exactly
	}
	return n
}

func printLoop(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "nondeterministic order"
	}
}

func sliceRangeFine(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v // ok: slices iterate in index order
	}
	return sum
}

func allowedAccum(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //lint:allow maporder aggregate only compared with tolerance
	}
	return sum
}
