// Fixture for the panicfree analyzer: panics are flagged unless annotated
// as invariant guards; shadowed identifiers named panic pass.
package fixture

import "fmt"

func onError(err error) {
	if err != nil {
		panic(err) // want "panic in library package"
	}
}

func message(n int) {
	panic(fmt.Sprintf("bad %d", n)) // want "panic in library package"
}

func guard(n int) {
	if n < 0 {
		panic("negative length") //lint:allow panicfree invariant guard, unreachable from input data
	}
}

func shadowed() {
	panic := func(v any) { _ = v }
	panic("not the builtin") // ok: local identifier shadows the builtin
}
