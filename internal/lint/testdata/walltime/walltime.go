// Fixture for the walltime analyzer: clock reads are flagged unless the
// call site carries a //lint:allow walltime annotation.
package fixture

import "time"

func stamp() time.Time {
	return time.Now() // want "wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall clock"
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want "wall clock"
}

func sleeping() {
	time.Sleep(time.Millisecond) // ok: sleeping reads no clock value
}

func spanTiming() time.Duration {
	start := time.Now() //lint:allow walltime span timing, never leaves the trace
	//lint:allow walltime span timing, never leaves the trace
	return time.Since(start)
}
